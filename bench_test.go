// Benchmark harness: one benchmark per paper table and figure, plus the
// ablation studies DESIGN.md calls out. Each benchmark regenerates its
// experiment and reports the headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` reproduces the paper's evaluation.
//
// Microarchitectural benchmarks default to a reduced 256x192 frame so
// the whole suite runs in minutes; set GPUCHAR_BENCH_FULL=1 for the
// paper's 1024x768.
package gpuchar_test

import (
	"os"
	"testing"

	"gpuchar"
	"gpuchar/internal/core"
	"gpuchar/internal/geom"
	"gpuchar/internal/mem"
	"gpuchar/internal/workloads"
)

// benchCtx builds a fresh experiment context at benchmark scale.
func benchCtx() *gpuchar.Context {
	ctx := gpuchar.NewContext()
	ctx.APIFrames = 60
	ctx.SimFrames = 1
	if os.Getenv("GPUCHAR_BENCH_FULL") == "" {
		ctx.W, ctx.H = 256, 192
	}
	return ctx
}

// runExperiment drives one experiment per iteration.
func runExperiment(b *testing.B, id string) *gpuchar.ExperimentResult {
	b.Helper()
	var last *gpuchar.ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := gpuchar.RunExperiment(id, benchCtx())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	return last
}

// --- API-level tables and figures ---

func BenchmarkTable1Registry(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkTable2Config(b *testing.B)      { runExperiment(b, "table2") }
func BenchmarkTable6SystemBuses(b *testing.B) { runExperiment(b, "table6") }

func BenchmarkFig1BatchesPerFrame(b *testing.B) {
	res := runExperiment(b, "fig1")
	if len(res.Figures) > 0 && len(res.Figures[0].Series) > 0 {
		b.ReportMetric(res.Figures[0].Series[0].Mean(), "batches/frame")
	}
}

func BenchmarkTable3Indices(b *testing.B) {
	var last *core.APIResult
	for i := 0; i < b.N; i++ {
		r, err := gpuchar.ProfileAPI(gpuchar.ProfileByName("UT2004/Primeval"), 60)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgIndicesPerFrame(), "idx/frame")
	b.ReportMetric(last.AvgIndicesPerBatch(), "idx/batch")
	b.ReportMetric(last.IndexBWAt100FPS(), "MB/s@100fps")
}

func BenchmarkFig2IndexBW(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig3StateCalls(b *testing.B) { runExperiment(b, "fig3") }

func BenchmarkTable4VertexShader(b *testing.B) {
	var last *core.APIResult
	for i := 0; i < b.N; i++ {
		r, err := gpuchar.ProfileAPI(gpuchar.ProfileByName("Quake4/demo4"), 60)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgVSInstr(0, 0), "VSinstr")
}

func BenchmarkTable5Primitives(b *testing.B) {
	var last *core.APIResult
	for i := 0; i < b.N; i++ {
		r, err := gpuchar.ProfileAPI(gpuchar.ProfileByName("Oblivion/Anvil Castle"), 40)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	mix := last.PrimMixPct()
	b.ReportMetric(mix[0], "TL%")
	b.ReportMetric(mix[1], "TS%")
	b.ReportMetric(last.AvgPrimitives(), "prims/frame")
}

func BenchmarkTable12FragmentShader(b *testing.B) {
	var last *core.APIResult
	for i := 0; i < b.N; i++ {
		r, err := gpuchar.ProfileAPI(gpuchar.ProfileByName("FEAR/interval2"), 60)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.AvgFSInstr(), "FSinstr")
	b.ReportMetric(last.AvgFSTex(), "FStex")
	b.ReportMetric(last.ALUTexRatio(), "ALU/tex")
}

func BenchmarkFig8FragmentInstr(b *testing.B) { runExperiment(b, "fig8") }

// --- Microarchitectural tables and figures (simulated) ---

// simBench simulates one frame of a demo per iteration and hands the
// result to report.
func simBench(b *testing.B, demo string, report func(*core.MicroResult)) {
	b.Helper()
	w, h := 256, 192
	if os.Getenv("GPUCHAR_BENCH_FULL") != "" {
		w, h = 1024, 768
	}
	prof := gpuchar.ProfileByName(demo)
	var last *core.MicroResult
	for i := 0; i < b.N; i++ {
		r, err := core.RunMicro(prof, 1, w, h)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	report(last)
}

func BenchmarkFig5VertexCache(b *testing.B) {
	simBench(b, "UT2004/Primeval", func(r *core.MicroResult) {
		b.ReportMetric(r.VertexCacheHitRate(), "vcache-hit")
	})
}

func BenchmarkFig6Triangles(b *testing.B) {
	simBench(b, "Doom3/trdemo2", func(r *core.MicroResult) {
		idx, asm, trav := r.TriangleFlowSeries()
		b.ReportMetric(idx.Mean(), "indices/frame")
		b.ReportMetric(asm.Mean(), "assembled/frame")
		b.ReportMetric(trav.Mean(), "traversed/frame")
	})
}

func BenchmarkTable7ClipCull(b *testing.B) {
	simBench(b, "Quake4/demo4", func(r *core.MicroResult) {
		clip, cull, trav := r.ClipCullPct()
		b.ReportMetric(clip, "clip%")
		b.ReportMetric(cull, "cull%")
		b.ReportMetric(trav, "trav%")
	})
}

func BenchmarkFig7TriangleSize(b *testing.B) {
	simBench(b, "UT2004/Primeval", func(r *core.MicroResult) {
		raster, _, _ := r.TriangleSizeSeries()
		b.ReportMetric(raster.Mean(), "frags/tri")
	})
}

func BenchmarkTable8TriangleSize(b *testing.B) {
	simBench(b, "Doom3/trdemo2", func(r *core.MicroResult) {
		raster, _, _, blend := r.TriangleSize()
		b.ReportMetric(raster, "raster-frags/tri")
		b.ReportMetric(blend, "blend-frags/tri")
	})
}

func BenchmarkTable9QuadKills(b *testing.B) {
	simBench(b, "Doom3/trdemo2", func(r *core.MicroResult) {
		hz, zs, _, mask, blend := r.QuadKillPct()
		b.ReportMetric(hz, "HZ%")
		b.ReportMetric(zs, "zst%")
		b.ReportMetric(mask, "mask%")
		b.ReportMetric(blend, "blend%")
	})
}

func BenchmarkTable10QuadEfficiency(b *testing.B) {
	simBench(b, "UT2004/Primeval", func(r *core.MicroResult) {
		raster, zs := r.QuadEfficiency()
		b.ReportMetric(raster, "raster%")
		b.ReportMetric(zs, "zst%")
	})
}

func BenchmarkTable11Overdraw(b *testing.B) {
	simBench(b, "Quake4/demo4", func(r *core.MicroResult) {
		raster, zs, shade, blend := r.Overdraw()
		b.ReportMetric(raster, "raster-od")
		b.ReportMetric(zs, "zst-od")
		b.ReportMetric(shade, "shade-od")
		b.ReportMetric(blend, "blend-od")
	})
}

func BenchmarkTable13Bilinear(b *testing.B) {
	simBench(b, "UT2004/Primeval", func(r *core.MicroResult) {
		b.ReportMetric(r.BilinearPerRequest(), "bilinear/req")
		b.ReportMetric(r.ALUPerBilinear(), "ALU/bilinear")
	})
}

func BenchmarkTable14Caches(b *testing.B) {
	simBench(b, "Doom3/trdemo2", func(r *core.MicroResult) {
		z, l0, _, color := r.CacheHitRates()
		b.ReportMetric(z, "zcache%")
		b.ReportMetric(l0, "texL0%")
		b.ReportMetric(color, "colorcache%")
	})
}

func BenchmarkTable15Memory(b *testing.B) {
	simBench(b, "UT2004/Primeval", func(r *core.MicroResult) {
		mb, rd, _, gbs := r.MemoryProfile()
		b.ReportMetric(mb, "MB/frame")
		b.ReportMetric(rd, "read%")
		b.ReportMetric(gbs, "GB/s@100fps")
	})
}

func BenchmarkTable16TrafficSplit(b *testing.B) {
	simBench(b, "Doom3/trdemo2", func(r *core.MicroResult) {
		s := r.TrafficSplit()
		b.ReportMetric(s[mem.ClientZStencil], "zst%")
		b.ReportMetric(s[mem.ClientTexture], "tex%")
		b.ReportMetric(s[mem.ClientColor], "color%")
	})
}

func BenchmarkTable17BytesPer(b *testing.B) {
	simBench(b, "Quake4/demo4", func(r *core.MicroResult) {
		v, zs, sh, col := r.BytesPer()
		b.ReportMetric(v, "B/vertex")
		b.ReportMetric(zs, "B/zst-frag")
		b.ReportMetric(sh, "B/shaded-frag")
		b.ReportMetric(col, "B/blend-frag")
	})
}

// --- Ablation studies (DESIGN.md) ---

// ablationRun simulates one frame with a configuration tweak.
func ablationRun(b *testing.B, demo string, tweak func(*gpuchar.GPUConfig),
	metric func(*core.MicroResult) (float64, string)) {
	b.Helper()
	w, h := 256, 192
	if os.Getenv("GPUCHAR_BENCH_FULL") != "" {
		w, h = 1024, 768
	}
	prof := gpuchar.ProfileByName(demo)
	var last *core.MicroResult
	for i := 0; i < b.N; i++ {
		cfg := gpuchar.R520Config(w, h)
		if tweak != nil {
			tweak(&cfg)
		}
		r, err := core.RunMicroConfig(prof, 1, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	v, name := metric(last)
	b.ReportMetric(v, name)
}

// Hierarchical Z on/off: the paper credits HZ with removing 50-90% of
// the z-killed fragments before they cost GDDR bandwidth.
func BenchmarkAblationHZOn(b *testing.B) {
	ablationRun(b, "Doom3/trdemo2", nil, func(r *core.MicroResult) (float64, string) {
		mb, _, _, _ := r.MemoryProfile()
		return mb, "MB/frame"
	})
}

func BenchmarkAblationHZOff(b *testing.B) {
	ablationRun(b, "Doom3/trdemo2", func(c *gpuchar.GPUConfig) { c.HZ = false },
		func(r *core.MicroResult) (float64, string) {
			mb, _, _, _ := r.MemoryProfile()
			return mb, "MB/frame"
		})
}

// Z compression + fast clear on/off: the paper credits them with halving
// z & stencil bandwidth.
func BenchmarkAblationZCompressOn(b *testing.B) {
	ablationRun(b, "Quake4/demo4", nil, func(r *core.MicroResult) (float64, string) {
		_, zs, _, _ := r.BytesPer()
		return zs, "B/zst-frag"
	})
}

func BenchmarkAblationZCompressOff(b *testing.B) {
	ablationRun(b, "Quake4/demo4", func(c *gpuchar.GPUConfig) {
		c.ZCompression = false
		c.FastClear = false
	}, func(r *core.MicroResult) (float64, string) {
		_, zs, _, _ := r.BytesPer()
		return zs, "B/zst-frag"
	})
}

// Vertex cache size sweep around the paper's ~66% bound.
func BenchmarkAblationVCache4(b *testing.B)  { vcacheAblation(b, 4) }
func BenchmarkAblationVCache16(b *testing.B) { vcacheAblation(b, 16) }
func BenchmarkAblationVCache64(b *testing.B) { vcacheAblation(b, 64) }

func vcacheAblation(b *testing.B, size int) {
	b.Helper()
	ablationRun(b, "UT2004/Primeval", func(c *gpuchar.GPUConfig) {
		c.VertexCacheSize = size
	}, func(r *core.MicroResult) (float64, string) {
		return r.VertexCacheHitRate(), "vcache-hit"
	})
}

// Triangle lists vs strips under a vertex cache: the paper's Table V
// discussion — with the cache, lists shade exactly as few vertices as
// strips, so developers pick lists and pay only index bandwidth.
func BenchmarkAblationListVsStrip(b *testing.B) {
	var st workloads.SharingStats
	for i := 0; i < b.N; i++ {
		st = workloads.ListVsStrip(100_000, 16)
	}
	b.ReportMetric(float64(st.ListShades)/float64(st.StripShades), "shade-ratio")
	b.ReportMetric(float64(st.ListIndices)/float64(st.StripIndices), "index-ratio")
}

// Front-to-back vs back-to-front draw order sensitivity of HZ: measured
// through the UT2004 frame which mixes both.
func BenchmarkAblationDrawOrder(b *testing.B) {
	ablationRun(b, "UT2004/Primeval", nil, func(r *core.MicroResult) (float64, string) {
		hz, _, _, _, _ := r.QuadKillPct()
		return hz, "HZ-kill%"
	})
}

// --- End-to-end pipeline throughput ---

func BenchmarkPipelineFrameUT2004(b *testing.B) {
	benchFrame(b, "UT2004/Primeval")
}

func BenchmarkPipelineFrameDoom3(b *testing.B) {
	benchFrame(b, "Doom3/trdemo2")
}

func BenchmarkPipelineFrameQuake4(b *testing.B) {
	benchFrame(b, "Quake4/demo4")
}

func benchFrame(b *testing.B, demo string) {
	b.Helper()
	w, h := 256, 192
	if os.Getenv("GPUCHAR_BENCH_FULL") != "" {
		w, h = 1024, 768
	}
	prof := gpuchar.ProfileByName(demo)
	g := gpuchar.NewGPU(gpuchar.R520Config(w, h))
	dev := gpuchar.NewDevice(prof.API, g)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.RenderFrame()
	}
	b.StopTimer()
	frames := g.Frames()
	if len(frames) > 0 {
		var frags int64
		for _, f := range frames {
			frags += f.Rast.Fragments
		}
		b.ReportMetric(float64(frags)/float64(len(frames)), "frags/frame")
	}
}

// BenchmarkAPIFrame measures the pure API-level path (null backend).
func BenchmarkAPIFrame(b *testing.B) {
	prof := gpuchar.ProfileByName("Half Life 2 LC/built-in")
	dev := gpuchar.NewDevice(prof.API, gpuchar.NullBackend{})
	wl := gpuchar.NewWorkload(prof, dev, 1024, 768)
	if err := wl.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.RenderFrame()
	}
}

// sanity: the workloads registry stays consistent with the paper data.
func BenchmarkRegistryLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range workloads.Registry() {
			if gpuchar.ProfileByName(p.Name) == nil {
				b.Fatal("lookup failed")
			}
		}
	}
	_ = geom.TriangleList
}
