// Package gpuchar reproduces "Workload Characterization of 3D Games"
// (Roca, Moya, González, Solís, Fernández, Espasa — IISWC 2006): a
// functional GPU pipeline simulator in the mould of ATTILA, an abstract
// graphics API with trace record/replay, synthetic re-creations of the
// paper's twelve game timedemos, and a characterization engine that
// regenerates every table and figure of the paper's evaluation.
//
// This package is the public facade over the internal packages. Typical
// use:
//
//	prof := gpuchar.ProfileByName("Doom3/trdemo2")
//	res, err := gpuchar.Characterize(prof, 2)      // simulate 2 frames
//	clip, cull, trav := res.ClipCullPct()           // Table VII
//
// or run a whole experiment:
//
//	ctx := gpuchar.NewContext()
//	result, err := gpuchar.RunExperiment("table16", ctx)
//	result.Tables[0].Render(os.Stdout)
package gpuchar

import (
	"gpuchar/internal/core"
	"gpuchar/internal/explorer"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/hwconfig"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
	"gpuchar/internal/sweep"
	"gpuchar/internal/trace"
	"gpuchar/internal/workloads"
)

// Re-exported core types. The aliases expose the full method sets of the
// internal implementations.
type (
	// Profile describes one of the paper's Table I game timedemos.
	Profile = workloads.Profile
	// Workload drives a profile's synthetic timedemo through a device.
	Workload = workloads.Workload
	// Device is the abstract graphics API front-end (the OGL/D3D
	// boundary the paper instruments).
	Device = gfxapi.Device
	// Backend consumes draw calls: the GPU simulator or NullBackend.
	Backend = gfxapi.Backend
	// NullBackend discards GPU work, keeping API statistics only.
	NullBackend = gfxapi.NullBackend
	// GPU is the ATTILA-like pipeline simulator.
	GPU = gpu.GPU
	// GPUConfig is the simulator configuration (Table II).
	GPUConfig = gpu.Config
	// FrameStats is one simulated frame's microarchitectural counters.
	FrameStats = gpu.FrameStats
	// APIResult is a demo's API-level characterization.
	APIResult = core.APIResult
	// MicroResult is a demo's microarchitectural characterization.
	MicroResult = core.MicroResult
	// Context carries experiment parameters and caches runs.
	Context = core.Context
	// Experiment regenerates one paper table or figure.
	Experiment = core.Experiment
	// ExperimentResult holds regenerated tables and figures.
	ExperimentResult = core.Result
	// ExperimentError is one failure inside an experiment sweep.
	ExperimentError = core.ExperimentError
	// ExperimentErrors aggregates the failures of a keep-going sweep.
	ExperimentErrors = core.ExperimentErrors
	// TraceRecorder captures a device's API call stream.
	TraceRecorder = trace.Recorder
	// TracePlayer replays a captured stream into a device.
	TracePlayer = trace.Player
	// Tracer is the low-overhead execution tracer; bind one to
	// GPUConfig.Trace or Context.Trace and export Chrome/Perfetto JSON
	// with WriteChromeJSON. A nil *Tracer is the disabled tracer.
	Tracer = obsv.Tracer
	// TracerOptions configures a Tracer (ring capacity, span sampling).
	TracerOptions = obsv.Options
	// ProgressTracker aggregates run progress for the -progress ticker
	// and the observability server's /progress endpoint.
	ProgressTracker = obsv.ProgressTracker
	// Progress is a point-in-time run progress report.
	Progress = obsv.Progress
	// ObservabilityServer serves /metrics, /progress, /healthz and
	// /debug/pprof for a running characterization.
	ObservabilityServer = obsv.Server
	// ServerSources are the data feeds an ObservabilityServer renders.
	ServerSources = obsv.ServerSources
	// HWVariant is one named, sweepable hardware configuration: every
	// gpu.Config parameter plus a canonical content digest. Bind one to
	// Context.HW to characterize under it.
	HWVariant = hwconfig.Variant
	// SweepSpec describes a (config x demo x experiment) sweep grid.
	SweepSpec = sweep.Spec
	// SweepResult is a completed sweep: rows plus pivot-table and
	// CSV/JSON renderers.
	SweepResult = sweep.Result
	// SweepRunner computes one sweep cell (local or via a daemon).
	SweepRunner = sweep.Runner
	// SweepOptions tunes the sweep orchestrator.
	SweepOptions = sweep.Options
	// LocalSweepRunner computes sweep cells in-process.
	LocalSweepRunner = sweep.LocalRunner
	// QueueSweepRunner computes sweep cells through a gpuchard daemon.
	QueueSweepRunner = sweep.QueueRunner
	// MetricsSnapshot is one immutable set of named counters — the unit
	// the explorer records, diffs and streams.
	MetricsSnapshot = metrics.Snapshot
	// ExplorerRegistry records completed runs and serves the embedded
	// explorer UI, /api/runs, /api/compare and the /api/events SSE
	// stream; Mount it on an ObservabilityServer's mux.
	ExplorerRegistry = explorer.Registry
	// ExplorerRun is one recorded run: identity, configuration, and the
	// snapshots backing /api/compare.
	ExplorerRun = explorer.Run
	// ExplorerEvent is one SSE event (progress tick, frame counter
	// delta, or run-recorded notice).
	ExplorerEvent = explorer.Event
	// CompareDoc is the gpuchar/compare/v1 two-run diff document.
	CompareDoc = explorer.CompareDoc
)

// Graphics API dialects (Table I).
const (
	OpenGL   = gfxapi.OpenGL
	Direct3D = gfxapi.Direct3D
)

// Profiles returns the twelve Table I workload profiles.
func Profiles() []Profile { return workloads.Registry() }

// AllProfiles returns every workload profile: the twelve Table I
// timedemos plus the modern render-to-texture families.
func AllProfiles() []Profile { return workloads.All() }

// ProfileByName returns the profile with the given Table I name, or nil.
func ProfileByName(name string) *Profile { return workloads.ByName(name) }

// SimulatedProfiles returns the three demos the paper measures
// microarchitecturally.
func SimulatedProfiles() []Profile { return workloads.Simulated() }

// R520Config returns the paper's Table II simulator configuration at the
// given framebuffer size.
func R520Config(w, h int) GPUConfig { return gpu.R520Config(w, h) }

// NewGPU creates a pipeline simulator.
func NewGPU(cfg GPUConfig) *GPU { return gpu.New(cfg) }

// NewDevice creates a graphics device over a backend.
func NewDevice(api gfxapi.API, b Backend) *Device { return gfxapi.NewDevice(api, b) }

// NewWorkload prepares a profile's generator on a device at w x h.
func NewWorkload(p *Profile, d *Device, w, h int) *Workload {
	return workloads.New(p, d, w, h)
}

// ProfileAPI runs frames of a demo at the API level (null backend) and
// returns its Table III/IV/V/XII statistics.
func ProfileAPI(p *Profile, frames int) (*APIResult, error) {
	return core.RunAPI(p, frames)
}

// Characterize simulates frames of a demo through the R520-like GPU at
// 1024x768 and returns its microarchitectural characterization
// (Tables VII-XVII).
func Characterize(p *Profile, frames int) (*MicroResult, error) {
	return core.RunMicro(p, frames, 1024, 768)
}

// CharacterizeConfig is Characterize with an explicit GPU configuration,
// for ablation studies.
func CharacterizeConfig(p *Profile, frames int, cfg GPUConfig) (*MicroResult, error) {
	return core.RunMicroConfig(p, frames, cfg)
}

// MicroResultFromGPU wraps an already-run GPU's frames as a MicroResult.
func MicroResultFromGPU(p *Profile, g *GPU, cfg GPUConfig) *MicroResult {
	return core.MicroResultFromGPU(p, g, cfg)
}

// NewContext returns an experiment context with paper-resolution
// defaults.
func NewContext() *Context { return core.NewContext() }

// NewTracer creates an execution tracer (see Tracer).
func NewTracer(o TracerOptions) *Tracer { return obsv.New(o) }

// NewProgressTracker starts tracking a run of totalExperiments
// experiments (0 for runs that are not experiment-shaped).
func NewProgressTracker(totalExperiments int) *ProgressTracker {
	return obsv.NewProgressTracker(totalExperiments)
}

// StartObservabilityServer serves the observability endpoints on addr
// until Close.
func StartObservabilityServer(addr string, src ServerSources) (*ObservabilityServer, error) {
	return obsv.StartServer(addr, src)
}

// HWConfigs returns the named hardware variant registry: the r520
// default plus the cache-scaled, ablation, resolution and tile-worker
// families.
func HWConfigs() []HWVariant { return hwconfig.All() }

// HWConfigByName resolves one registry variant.
func HWConfigByName(name string) (HWVariant, bool) { return hwconfig.ByName(name) }

// HWConfigNames lists the registry variant names in listing order.
func HWConfigNames() []string { return hwconfig.Names() }

// DefaultHWConfig returns the paper's r520 hardware point.
func DefaultHWConfig() HWVariant { return hwconfig.Default() }

// NewExplorerRegistry creates a run registry retaining at most maxRuns
// completed runs (<= 0 uses the default retention).
func NewExplorerRegistry(maxRuns int) *ExplorerRegistry {
	return explorer.NewRegistry(maxRuns)
}

// CompareRuns builds the gpuchar/compare/v1 diff document between two
// recorded runs; its Tables render the per-metric diff tables.
func CompareRuns(a, b *ExplorerRun) *CompareDoc { return explorer.Compare(a, b) }

// RunSweep expands a sweep spec and computes every cell through the
// runner, returning the comparative grid.
func RunSweep(spec SweepSpec, r SweepRunner, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(spec, r, opts)
}

// Experiments lists every regenerable paper table and figure.
func Experiments() []Experiment { return core.Experiments() }

// RunExperiment regenerates one table or figure by id ("table7",
// "fig5", ...).
func RunExperiment(id string, ctx *Context) (*ExperimentResult, error) {
	e := core.ByID(id)
	if e == nil {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(ctx)
}

// RunExperiments regenerates several experiments, rendering the demos
// they need concurrently on ctx.Workers goroutines. Results come back
// in the requested order and are identical to a serial run at any
// worker count. With ctx.KeepGoing set, failed experiments yield nil
// result slots and the error is an ExperimentErrors aggregate returned
// alongside the surviving results.
func RunExperiments(ids []string, ctx *Context) ([]*ExperimentResult, error) {
	return core.RunExperiments(ctx, ids)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "gpuchar: unknown experiment " + string(e)
}
