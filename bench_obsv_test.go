// Observability overhead guards: the tracer is designed so that a nil
// *Tracer costs one pointer check per hook site, and these tests keep
// that promise honest. TestNilTracerOverheadGuard bounds the untraced
// hot path's hook cost below 2% of a frame; the Traced benchmark makes
// the cost of full tracing visible in `go test -bench` output.
package gpuchar_test

import (
	"testing"

	"gpuchar"
)

// benchWorkload builds a ready-to-render simulated pipeline, optionally
// traced.
func benchWorkload(tb testing.TB, tr *gpuchar.Tracer, w, h int) (*gpuchar.Workload, *gpuchar.GPU) {
	tb.Helper()
	prof := gpuchar.ProfileByName("Doom3/trdemo2")
	cfg := gpuchar.R520Config(w, h)
	cfg.Trace = tr
	cfg.TraceProcess = prof.Name
	g := gpuchar.NewGPU(cfg)
	dev := gpuchar.NewDevice(prof.API, g)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Setup(); err != nil {
		tb.Fatal(err)
	}
	return wl, g
}

// BenchmarkPipelineFrameTraced is BenchmarkPipelineFrameDoom3 with a
// full-rate tracer attached: every draw sampled, stage clocks on.
// Compare against the untraced benchmark to see what tracing costs.
func BenchmarkPipelineFrameTraced(b *testing.B) {
	w, h := 256, 192
	tr := gpuchar.NewTracer(gpuchar.TracerOptions{})
	wl, _ := benchWorkload(b, tr, w, h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.RenderFrame()
	}
}

// nilClockHook reproduces the shape of the untraced hot-path hook: load
// a pointer field, branch on nil, do nothing. noinline so the benchmark
// measures an upper bound — the real hooks inline to less.
//
//go:noinline
func nilClockHook(clk *int64) int64 {
	if clk != nil {
		return *clk
	}
	return 0
}

// TestNilTracerOverheadGuard asserts the acceptance bound: with tracing
// disabled the per-hook nil checks add <2% to a rendered frame. It
// measures one frame's wall time, measures the cost of a
// worse-than-real hook (a non-inlined nil-pointer branch), counts the
// hook executions a frame performs (dominated by the per-quad checks in
// the fragment backend), and compares.
func TestNilTracerOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed guard; skipped in -short mode")
	}
	w, h := 256, 192
	wl, g := benchWorkload(t, nil, w, h)

	// Warm frame: counts the per-frame hook executions.
	if err := wl.Run(1); err != nil {
		t.Fatal(err)
	}
	attrs := g.MetricsSnapshot().Attrs()
	quads, _ := attrs["rast/quads_emitted"].(int64)
	tris, _ := attrs["rast/triangles_setup"].(int64)
	if quads == 0 {
		t.Fatal("warm frame emitted no quads; counter name drifted?")
	}
	// processQuad executes at most 5 clk-nil checks on its longest
	// control path; budget 8 per quad. Per-draw hooks are bounded by a
	// per-triangle budget (draws << triangles), plus per-frame slack, so
	// the bound keeps holding as hook sites are added.
	hooksPerFrame := 8*quads + 4*tris + 64

	frame := testing.Benchmark(func(b *testing.B) {
		wl, _ := benchWorkload(b, nil, w, h)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wl.RenderFrame()
		}
	})
	var sink int64
	hook := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += nilClockHook(nil)
		}
	})
	_ = sink

	frameNs := float64(frame.T.Nanoseconds()) / float64(frame.N)
	hookNs := float64(hook.T.Nanoseconds()) / float64(hook.N)
	overheadNs := hookNs * float64(hooksPerFrame)
	pct := 100 * overheadNs / frameNs
	t.Logf("frame=%.0fns hook=%.2fns hooks/frame=%d overhead=%.0fns (%.3f%%)",
		frameNs, hookNs, hooksPerFrame, overheadNs, pct)
	if pct >= 2 {
		t.Errorf("nil-tracer hook overhead %.3f%% of a frame, want < 2%%", pct)
	}
}
