// Benchmarks for the parallel characterization engine: the tile-parallel
// fragment backend (Config.TileWorkers) and the coarse experiment
// fan-out (Context.Workers), each swept over worker counts so
// `go test -bench 'PipelineFrame|CharacterizeAll' -benchmem` shows the
// scaling curve and the allocation profile on one line per count.
package gpuchar_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"gpuchar"
)

// workerCounts returns the benchmark sweep: 1, 2, 4, 8 and NumCPU when
// it exceeds the fixed points. Counts above NumCPU still run — the
// bucket scheduler's behavior under oversubscription is part of what
// the sweep pins down.
func workerCounts() []int {
	counts := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n > 8 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkPipelineFrame renders Doom3 frames through the full simulator
// at each tile-worker count. workers=1 is the serial pipeline; the
// framebuffer is identical at every count.
func BenchmarkPipelineFrame(b *testing.B) {
	for _, n := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			benchFrameWorkers(b, "Doom3/trdemo2", n)
		})
	}
}

func benchFrameWorkers(b *testing.B, demo string, tileWorkers int) {
	b.Helper()
	w, h := 256, 192
	if os.Getenv("GPUCHAR_BENCH_FULL") != "" {
		w, h = 1024, 768
	}
	prof := gpuchar.ProfileByName(demo)
	cfg := gpuchar.R520Config(w, h)
	cfg.TileWorkers = tileWorkers
	g := gpuchar.NewGPU(cfg)
	dev := gpuchar.NewDevice(prof.API, g)
	wl := gpuchar.NewWorkload(prof, dev, w, h)
	if err := wl.Setup(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.RenderFrame()
	}
}

// BenchmarkCharacterizeAll regenerates every paper experiment at each
// coarse worker count — the `characterize -exp all -workers N` path.
// Output is identical at every count; only wall clock changes.
func BenchmarkCharacterizeAll(b *testing.B) {
	var ids []string
	for _, e := range gpuchar.Experiments() {
		ids = append(ids, e.ID)
	}
	counts := []int{1, runtime.NumCPU()}
	if counts[1] == 1 {
		counts = counts[:1]
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				ctx.Workers = n
				if _, err := gpuchar.RunExperiments(ids, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
