// API trace: record a few frames of a synthetic timedemo, replay the
// trace into a fresh device, and verify the replay reproduces the same
// API-level statistics — the reproducibility property the paper's
// tracing methodology (§II.B) depends on.
//
//	go run ./examples/apitrace
package main

import (
	"bytes"
	"fmt"

	"gpuchar"
	"gpuchar/internal/trace"
)

func main() {
	prof := gpuchar.ProfileByName("FEAR/interval2")
	const frames = 8

	// Record.
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, prof.API)
	check(err)
	src := gpuchar.NewDevice(prof.API, gpuchar.NullBackend{})
	src.SetRecorder(rec)
	wl := gpuchar.NewWorkload(prof, src, 1024, 768)
	check(wl.Run(frames))
	check(rec.Close())
	fmt.Printf("recorded %d frames of %s: %d commands, %d bytes\n",
		frames, prof.Name, rec.Commands(), buf.Len())

	// Replay.
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	check(err)
	dst := gpuchar.NewDevice(r.API(), gpuchar.NullBackend{})
	played, err := trace.NewPlayer(dst).Play(r)
	check(err)
	fmt.Printf("replayed %d frames\n", played)

	// Compare per-frame statistics.
	a, b := src.Frames(), dst.Frames()
	identical := len(a) == len(b)
	for i := range a {
		if !identical || a[i] != b[i] {
			identical = false
			break
		}
	}
	fmt.Printf("statistics identical: %v\n", identical)
	var batches, indices int64
	for _, f := range b {
		batches += f.Batches
		indices += f.Indices
	}
	fmt.Printf("totals: %d batches, %d indices (%.0f idx/batch — paper Table III: %d)\n",
		batches, indices, float64(indices)/float64(batches), prof.AvgIndicesPerBatch)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
