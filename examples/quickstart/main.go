// Quickstart: render a textured triangle through the whole simulated
// pipeline and read back the image and the per-stage statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gpuchar"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
)

func main() {
	// A small GPU with the paper's R520-like configuration.
	g := gpuchar.NewGPU(gpuchar.R520Config(64, 48))
	dev := gpuchar.NewDevice(gpuchar.OpenGL, g)

	// Geometry: one clip-space triangle with texture coordinates.
	pos := []gmath.Vec4{
		{X: -0.9, Y: -0.9, Z: 0, W: 1},
		{X: 0.9, Y: -0.9, Z: 0, W: 1},
		{X: 0, Y: 0.9, Z: 0, W: 1},
	}
	uv := []gmath.Vec4{{W: 1}, {X: 1, W: 1}, {X: 0.5, Y: 1, W: 1}}
	col := []gmath.Vec4{
		{X: 1, Y: 1, Z: 1, W: 1}, {X: 1, Y: 1, Z: 1, W: 1}, {X: 1, Y: 1, Z: 1, W: 1},
	}
	vb := dev.CreateVertexBuffer([][]gmath.Vec4{pos, uv, col}, 48)
	ib := dev.CreateIndexBuffer([]uint32{0, 1, 2}, 2)

	// Shaders: library transform VS and textured FS.
	vs, err := dev.CreateProgram(shader.BasicTransformVS())
	check(err)
	fs, err := dev.CreateProgram(shader.TexturedFS())
	check(err)

	// A DXT1 checkerboard texture, sampled bilinearly.
	tex, err := dev.CreateTexture(gfxapi.TextureSpec{
		Name: "checker", Format: texture.FormatDXT1, W: 64, H: 64,
		Kind: gfxapi.KindChecker, Cell: 8,
		ColorA: texture.RGBA{R: 230, G: 230, B: 230, A: 255},
		ColorB: texture.RGBA{R: 30, G: 30, B: 120, A: 255},
	})
	check(err)
	dev.BindTexture(0, tex, texture.SamplerState{Filter: texture.FilterBilinear})

	// Identity transform, clear, draw, present.
	dev.SetMatrix(0, gmath.Identity())
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	dev.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	dev.EndFrame()

	// ASCII dump of the rendered frame (top row last: window y is up).
	w, h := g.Target().Size()
	shades := " .:-=+*#%@"
	for y := h - 1; y >= 0; y -= 2 {
		for x := 0; x < w; x++ {
			c := g.Target().At(x, y)
			lum := 0.3*c.X + 0.6*c.Y + 0.1*c.Z
			idx := int(lum * float32(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			fmt.Print(string(shades[idx]))
		}
		fmt.Println()
	}

	f := g.Frames()[0]
	fmt.Printf("\ntriangles traversed: %d\n", f.Geom.TrianglesTraversed)
	fmt.Printf("fragments rasterized: %d (quad efficiency %.1f%%)\n",
		f.Rast.Fragments, f.Rast.QuadEfficiency())
	fmt.Printf("fragments shaded: %d, texture requests: %d\n",
		f.Frag.FragmentsShaded, f.Tex.Requests)
	fmt.Printf("bilinear samples per request: %.2f\n", f.Tex.AvgBilinearPerRequest())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
