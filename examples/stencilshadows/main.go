// Stencil shadows: a miniature Doom3-style multipass frame — depth
// prepass, z-fail ("Carmack's reverse") shadow volume, and an additive
// lighting pass masked by the stencil — with the stage-kill analysis the
// paper's Table IX performs on the real games.
//
//	go run ./examples/stencilshadows
package main

import (
	"fmt"

	"gpuchar"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/zst"
)

func quadBuffers(dev *gpuchar.Device, x0, y0, x1, y1, z float32) (*geom.VertexBuffer, *geom.IndexBuffer) {
	pos := []gmath.Vec4{
		{X: x0, Y: y0, Z: z, W: 1}, {X: x1, Y: y0, Z: z, W: 1},
		{X: x1, Y: y1, Z: z, W: 1}, {X: x0, Y: y1, Z: z, W: 1},
	}
	attr := make([]gmath.Vec4, 4)
	for i := range attr {
		attr[i] = gmath.V4(1, 1, 1, 1)
	}
	vb := dev.CreateVertexBuffer([][]gmath.Vec4{pos, attr, attr}, 48)
	ib := dev.CreateIndexBuffer([]uint32{0, 1, 2, 0, 2, 3}, 2)
	return vb, ib
}

func main() {
	g := gpuchar.NewGPU(gpuchar.R520Config(128, 96))
	dev := gpuchar.NewDevice(gpuchar.OpenGL, g)
	dev.SetMatrix(0, gmath.Identity())

	vs, _ := dev.CreateProgram(shader.DepthOnlyVS())
	vsFull, _ := dev.CreateProgram(shader.BasicTransformVS())
	fsFlat, _ := dev.CreateProgram(shader.StencilVolumeFS())
	fsLight, _ := dev.CreateProgram(shader.MustAssemble("light",
		shader.FragmentProgram, "mov o0, c8"))
	dev.SetConst(8, gmath.V4(1, 0.9, 0.6, 1)) // warm light

	// Scene: a floor quad across the screen at depth 0.5.
	floorVB, floorIB := quadBuffers(dev, -1, -1, 1, 1, 0)
	// Shadow volume: covers the left half, placed behind the floor so
	// its z-fail increments the stencil there.
	volVB, volIB := quadBuffers(dev, -1, -1, 0, 1, 0.8)

	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true,
		ClearStencil: true, Z: 1})

	// Pass 1: depth prepass, color masked off.
	dev.SetRopState(rop.State{})
	dev.SetZState(zst.DefaultState())
	dev.DrawIndexed(floorVB, floorIB, geom.TriangleList, vs, fsFlat)

	// Pass 2: shadow volume back faces, z-fail increments stencil.
	// A full volume has front and back faces; this miniature uses its
	// single quad as the back cap, so both face ops increment on z-fail.
	vol := zst.DefaultState()
	vol.ZWrite = false
	vol.StencilTest = true
	vol.StencilFunc = zst.CmpAlways
	vol.Back = zst.FaceOps{Fail: zst.OpKeep, ZFail: zst.OpIncrWrap, ZPass: zst.OpKeep}
	vol.Front = zst.FaceOps{Fail: zst.OpKeep, ZFail: zst.OpIncrWrap, ZPass: zst.OpKeep}
	dev.SetZState(vol)
	dev.SetCull(geom.CullNone)
	dev.DrawIndexed(volVB, volIB, geom.TriangleList, vs, fsFlat)
	dev.SetCull(geom.CullBack)

	// Pass 3: additive lighting where stencil is still zero.
	lit := zst.DefaultState()
	lit.ZFunc = zst.CmpEqual
	lit.ZWrite = false
	lit.StencilTest = true
	lit.StencilFunc = zst.CmpEqual
	lit.StencilRef = 0
	dev.SetZState(lit)
	dev.SetRopState(rop.AdditiveBlend())
	dev.DrawIndexed(floorVB, floorIB, geom.TriangleList, vsFull, fsLight)
	dev.EndFrame()

	// The left half is in shadow (stencil 1), the right half is lit.
	left := g.Target().At(32, 48)
	right := g.Target().At(96, 48)
	fmt.Printf("shadowed pixel: %+.2v\n", left)
	fmt.Printf("lit pixel:      %+.2v\n", right)
	fmt.Printf("stencil left=%d right=%d\n",
		g.ZBuffer().StencilAt(32, 48), g.ZBuffer().StencilAt(96, 48))

	// Table IX-style quad accounting for the frame.
	f := g.Frames()[0]
	tot := f.Rast.QuadsEmitted
	fmt.Printf("\nquads: %d total\n", tot)
	fmt.Printf("  z&stencil killed: %d (stencil-masked lighting)\n", f.ZSt.QuadsKilled)
	fmt.Printf("  color masked:     %d (prepass + volume)\n", f.Rop.QuadsMasked)
	fmt.Printf("  blended:          %d (lit area)\n", f.Rop.QuadsOut)
}
