// Terrain: an Oblivion-style open-terrain scene rendered as triangle
// strips under anisotropic filtering, demonstrating the two effects the
// paper ties to that workload: strips sharing vertices by construction
// (Table V) and the dynamic cost of anisotropic footprints on oblique
// surfaces (Table XIII).
//
//	go run ./examples/terrain
package main

import (
	"fmt"
	"math"

	"gpuchar"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
)

func main() {
	const w, h = 256, 192
	g := gpuchar.NewGPU(gpuchar.R520Config(w, h))
	dev := gpuchar.NewDevice(gpuchar.Direct3D, g)

	// A ground plane receding to the horizon: perspective projection
	// makes the far texture footprints highly anisotropic.
	proj := gmath.Perspective(float32(math.Pi/3), float32(w)/float32(h), 0.5, 200)
	view := gmath.LookAt(gmath.V3(0, 2, 0), gmath.V3(0, 0, -10), gmath.V3(0, 1, 0))
	dev.SetMatrix(0, proj.Mul(view))

	// Terrain mesh: a grid strip per row, vertices shared by
	// construction.
	const cols, rows = 32, 32
	var pos, uv, col []gmath.Vec4
	for r := 0; r <= rows; r++ {
		for c := 0; c <= cols; c++ {
			x := (float32(c)/cols - 0.5) * 120
			z := -2 - float32(r)/rows*120
			y := float32(math.Sin(float64(c)*0.7)+math.Cos(float64(r)*0.5)) * 0.4
			pos = append(pos, gmath.V4(x, y, z, 1))
			uv = append(uv, gmath.V4(float32(c)/4, float32(r)/4, 0, 1))
			col = append(col, gmath.V4(0.5, 0.7, 0.4, 1))
		}
	}
	vb := dev.CreateVertexBuffer([][]gmath.Vec4{pos, uv, col}, 48)

	// One triangle strip per terrain row (far row first keeps the
	// winding front-facing from this camera).
	var strips []*geom.IndexBuffer
	for r := 0; r < rows; r++ {
		var idx []uint32
		for c := 0; c <= cols; c++ {
			idx = append(idx, uint32((r+1)*(cols+1)+c), uint32(r*(cols+1)+c))
		}
		strips = append(strips, dev.CreateIndexBuffer(idx, 2))
	}

	vs, _ := dev.CreateProgram(shader.BasicTransformVS())
	fs, _ := dev.CreateProgram(shader.TexturedFS())
	tex, err := dev.CreateTexture(gfxapi.TextureSpec{
		Name: "grass", Format: texture.FormatDXT1, W: 256, H: 256,
		Kind: gfxapi.KindNoise, Seed: 99,
	})
	if err != nil {
		panic(err)
	}
	dev.BindTexture(0, tex, texture.SamplerState{
		Filter: texture.FilterAniso, MaxAniso: 16,
	})

	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1,
		Color: gmath.V4(0.4, 0.6, 0.9, 1)})
	for _, ib := range strips {
		dev.DrawIndexed(vb, ib, geom.TriangleStrip, vs, fs)
	}
	dev.EndFrame()

	f := g.Frames()[0]
	fmt.Printf("terrain: %d strips, %d indices, %d triangles assembled\n",
		len(strips), f.Geom.Indices, f.Geom.TrianglesAssembled)
	fmt.Printf("vertex shader runs per triangle: %.2f "+
		"(strips share vertices by construction; a list would need 3)\n",
		float64(f.Geom.VerticesShaded)/float64(f.Geom.TrianglesAssembled))
	fmt.Printf("clipped %.1f%%  culled %.1f%%  traversed %.1f%%\n",
		pct(f.Geom.TrianglesClipped, f.Geom.TrianglesAssembled),
		pct(f.Geom.TrianglesCulled, f.Geom.TrianglesAssembled),
		pct(f.Geom.TrianglesTraversed, f.Geom.TrianglesAssembled))
	fmt.Printf("fragments shaded: %d\n", f.Frag.FragmentsShaded)
	fmt.Printf("bilinear samples per texture request: %.2f "+
		"(oblique terrain drives anisotropy)\n", f.Tex.AvgBilinearPerRequest())
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
