package gpu

import (
	"reflect"
	"testing"

	"gpuchar/internal/metrics"
)

// countLeaves counts the int64 leaves of v (recursing through nested
// structs and arrays), panicking on any other leaf kind so a FrameStats
// field the registry could not bind fails loudly here.
func countLeaves(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			n += countLeaves(v.Field(i))
		}
		return n
	case reflect.Array:
		n := 0
		for i := 0; i < v.Len(); i++ {
			n += countLeaves(v.Index(i))
		}
		return n
	case reflect.Int64:
		return 1
	default:
		panic("gpu: FrameStats leaf of unsupported kind " + v.Kind().String())
	}
}

// fillLeaves assigns f(i) to the i-th int64 leaf of v in field order.
func fillLeaves(v reflect.Value, n *int, f func(i int) int64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillLeaves(v.Field(i), n, f)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillLeaves(v.Index(i), n, f)
		}
	default:
		v.SetInt(f(*n))
		*n++
	}
}

// leafValues flattens every int64 leaf of v in field order.
func leafValues(v reflect.Value, out *[]int64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			leafValues(v.Field(i), out)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			leafValues(v.Index(i), out)
		}
	default:
		*out = append(*out, v.Int())
	}
}

// TestEveryFrameStatsFieldIsRegistered pins the exhaustiveness
// invariant of the unified registry: every int64 leaf of FrameStats is
// bound to exactly one counter (a stage that grows a field without
// registering it fails here), every counter name is well-formed, and
// every counter lands in exactly one known export namespace.
func TestEveryFrameStatsFieldIsRegistered(t *testing.T) {
	var f FrameStats
	r := metrics.NewRegistry()
	f.register(r)

	leaves := countLeaves(reflect.ValueOf(&f).Elem())
	if r.Len() != leaves {
		t.Fatalf("registry binds %d counters but FrameStats has %d int64 leaves; "+
			"a stage field is missing from its Register method", r.Len(), leaves)
	}
	if leaves < 40 {
		t.Fatalf("FrameStats has only %d counters; reflection walk is broken", leaves)
	}

	namespaces := map[string]bool{
		"geom": true, "rast": true, "zst": true, "frag": true, "rop": true,
		"tex": true, "cache": true, "shader": true, "mem": true,
	}
	for _, name := range r.Names() {
		if !metrics.ValidName(name) {
			t.Errorf("counter %q has a malformed name", name)
		}
		if ns := metrics.Namespace(name); !namespaces[ns] {
			t.Errorf("counter %q is outside the known export namespaces", name)
		}
	}
}

// TestSnapshotRoundTrip gives every counter a distinct value and checks
// that diffStats and Accumulate (now snapshot arithmetic) transform
// each leaf independently and losslessly.
func TestSnapshotRoundTrip(t *testing.T) {
	var now, before FrameStats
	n := 0
	fillLeaves(reflect.ValueOf(&now).Elem(), &n, func(i int) int64 { return 100_000 + 7*int64(i) })
	leaves := n
	n = 0
	fillLeaves(reflect.ValueOf(&before).Elem(), &n, func(i int) int64 { return 3 * int64(i) })

	diff := diffStats(now, before)
	var got []int64
	leafValues(reflect.ValueOf(&diff).Elem(), &got)
	if len(got) != leaves {
		t.Fatalf("diff visited %d leaves, want %d", len(got), leaves)
	}
	for i, v := range got {
		want := 100_000 + 7*int64(i) - 3*int64(i)
		if v != want {
			t.Errorf("diff leaf %d = %d, want %d", i, v, want)
		}
	}

	acc := before
	acc.Accumulate(diff)
	var accLeaves []int64
	leafValues(reflect.ValueOf(&acc).Elem(), &accLeaves)
	for i, v := range accLeaves {
		want := 100_000 + 7*int64(i)
		if v != want {
			t.Errorf("accumulate leaf %d = %d, want %d", i, v, want)
		}
	}
}

// TestLiveRegistryMatchesFrameStats pins the invariant that makes
// frameStatsFromSnapshot lossless: a live GPU (with tile workers, whose
// shard counters must merge under the serial names) produces snapshots
// whose counter set is exactly the FrameStats registry's, so Load drops
// nothing in either direction.
func TestLiveRegistryMatchesFrameStats(t *testing.T) {
	cfg := R520Config(64, 64)
	cfg.TileWorkers = 3
	g := New(cfg)
	live := g.MetricsSnapshot()

	var f FrameStats
	r := metrics.NewRegistry()
	f.register(r)

	if unmatched := r.Load(live); unmatched != 0 {
		t.Fatalf("%d live counters have no FrameStats binding", unmatched)
	}
	if live.Len() != r.Len() {
		t.Fatalf("live snapshot has %d counters, FrameStats registry %d",
			live.Len(), r.Len())
	}
	names := r.Names()
	for i, c := range live.Counters() {
		if c.Name != names[i] {
			t.Fatalf("live counter %d is %q, want %q", i, c.Name, names[i])
		}
	}

	// Shard snapshots carry the shard label and a subset of the serial
	// counter names.
	shards := g.ShardSnapshots()
	if len(shards) != 3 {
		t.Fatalf("ShardSnapshots returned %d snapshots, want 3", len(shards))
	}
	for i, s := range shards {
		if s.Label("shard") == "" {
			t.Errorf("shard %d snapshot has no shard label", i)
		}
		for _, c := range s.Counters() {
			if _, ok := live.Get(c.Name); !ok {
				t.Errorf("shard counter %q absent from the merged snapshot", c.Name)
			}
		}
	}
}

// TestDiffStatsMatchesCumulativeShape renders nothing but checks that a
// zero diff of a live GPU's cumulative snapshot is exactly zero — the
// identity that EndFrame's bookkeeping depends on.
func TestDiffStatsMatchesCumulativeShape(t *testing.T) {
	g := New(R520Config(64, 64))
	cur := frameStatsFromSnapshot(g.MetricsSnapshot())
	d := diffStats(cur, cur)
	var zeros []int64
	leafValues(reflect.ValueOf(&d).Elem(), &zeros)
	for i, v := range zeros {
		if v != 0 {
			t.Fatalf("self-diff leaf %d = %d, want 0", i, v)
		}
	}
}
