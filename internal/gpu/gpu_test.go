package gpu

import (
	"math"
	"testing"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// newScene builds a device over a small GPU and returns both.
func newScene(t *testing.T, w, h int) (*gfxapi.Device, *GPU) {
	t.Helper()
	cfg := R520Config(w, h)
	g := New(cfg)
	return gfxapi.NewDevice(gfxapi.OpenGL, g), g
}

// fullscreenQuadVB returns a clip-space quad as two triangles (CCW).
func fullscreenQuadVB(d *gfxapi.Device, z float32) (*geom.VertexBuffer, *geom.IndexBuffer) {
	pos := []gmath.Vec4{
		{X: -1, Y: -1, Z: z, W: 1},
		{X: 1, Y: -1, Z: z, W: 1},
		{X: 1, Y: 1, Z: z, W: 1},
		{X: -1, Y: 1, Z: z, W: 1},
	}
	uv := []gmath.Vec4{
		{X: 0, Y: 0, W: 1}, {X: 1, Y: 0, W: 1}, {X: 1, Y: 1, W: 1}, {X: 0, Y: 1, W: 1},
	}
	col := []gmath.Vec4{
		{X: 1, Y: 1, Z: 1, W: 1}, {X: 1, Y: 1, Z: 1, W: 1},
		{X: 1, Y: 1, Z: 1, W: 1}, {X: 1, Y: 1, Z: 1, W: 1},
	}
	vb := d.CreateVertexBuffer([][]gmath.Vec4{pos, uv, col}, 48)
	ib := d.CreateIndexBuffer([]uint32{0, 1, 2, 0, 2, 3}, 2)
	return vb, ib
}

func identityMVP(d *gfxapi.Device) {
	d.SetMatrix(0, gmath.Identity())
}

func TestRenderFullscreenQuad(t *testing.T) {
	d, g := newScene(t, 64, 64)
	identityMVP(d)
	vb, ib := fullscreenQuadVB(d, 0)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.MustAssemble("red", shader.FragmentProgram,
		"mov o0, c8"))
	d.SetConst(8, gmath.V4(1, 0, 0, 1))
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fsProg)
	d.EndFrame()

	// Every pixel is red.
	for _, p := range [][2]int{{0, 0}, {31, 31}, {63, 63}, {5, 60}} {
		c := g.Target().At(p[0], p[1])
		if c.X < 0.99 || c.Y > 0.01 {
			t.Fatalf("pixel %v = %v, want red", p, c)
		}
	}
	frames := g.Frames()
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	f := frames[0]
	if f.Rast.Fragments != 64*64 {
		t.Errorf("rasterized fragments = %d, want 4096", f.Rast.Fragments)
	}
	if f.Geom.TrianglesTraversed != 2 {
		t.Errorf("traversed = %d", f.Geom.TrianglesTraversed)
	}
	if f.Rop.Fragments != 64*64 {
		t.Errorf("blended fragments = %d", f.Rop.Fragments)
	}
	// Depth was written everywhere.
	if g.ZBuffer().DepthAt(10, 10) != 0.5 { // z=0 clip -> 0.5 window
		t.Errorf("depth = %v", g.ZBuffer().DepthAt(10, 10))
	}
}

func TestDepthOcclusionBetweenDraws(t *testing.T) {
	d, g := newScene(t, 64, 64)
	identityMVP(d)
	vbNear, ibNear := fullscreenQuadVB(d, -0.5) // closer
	vbFar, ibFar := fullscreenQuadVB(d, 0.5)    // farther
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.MustAssemble("flat", shader.FragmentProgram,
		"mov o0, c8"))
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	// Near quad in green.
	d.SetConst(8, gmath.V4(0, 1, 0, 1))
	d.DrawIndexed(vbNear, ibNear, geom.TriangleList, vs, fsProg)
	// Far quad in red: all fragments must fail z.
	d.SetConst(8, gmath.V4(1, 0, 0, 1))
	d.DrawIndexed(vbFar, ibFar, geom.TriangleList, vs, fsProg)
	d.EndFrame()

	if c := g.Target().At(32, 32); c.Y < 0.99 {
		t.Fatalf("center = %v, want green", c)
	}
	f := g.Frames()[0]
	killed := f.ZSt.QuadsKilledHZ + f.ZSt.QuadsKilled
	if killed < 64*64/4/2 {
		t.Errorf("killed quads = %d, want at least the far quad's %d",
			killed, 64*64/4/2)
	}
	// HZ catches most of them once blocks are fully covered.
	if f.ZSt.QuadsKilledHZ == 0 {
		t.Error("HZ never killed anything")
	}
}

func TestHZDisabledAblation(t *testing.T) {
	cfg := R520Config(64, 64)
	cfg.HZ = false
	g := New(cfg)
	d := gfxapi.NewDevice(gfxapi.OpenGL, g)
	identityMVP(d)
	vbNear, ibNear := fullscreenQuadVB(d, -0.5)
	vbFar, ibFar := fullscreenQuadVB(d, 0.5)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.MustAssemble("flat", shader.FragmentProgram, "mov o0, c8"))
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	d.DrawIndexed(vbNear, ibNear, geom.TriangleList, vs, fsProg)
	d.DrawIndexed(vbFar, ibFar, geom.TriangleList, vs, fsProg)
	d.EndFrame()
	f := g.Frames()[0]
	if f.ZSt.QuadsKilledHZ != 0 {
		t.Errorf("HZ kills with HZ disabled = %d", f.ZSt.QuadsKilledHZ)
	}
	if f.ZSt.QuadsKilled == 0 {
		t.Error("z test killed nothing")
	}
}

func TestTexturedDraw(t *testing.T) {
	d, g := newScene(t, 64, 64)
	identityMVP(d)
	vb, ib := fullscreenQuadVB(d, 0)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.TexturedFS())
	tex, err := d.CreateTexture(gfxapi.TextureSpec{
		Name: "checker", Format: texture.FormatDXT1, W: 64, H: 64,
		Kind: gfxapi.KindChecker, Cell: 32,
		ColorA: texture.RGBA{R: 255, G: 255, B: 255, A: 255},
		ColorB: texture.RGBA{A: 255},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.BindTexture(0, tex, texture.SamplerState{Filter: texture.FilterBilinear})
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fsProg)
	d.EndFrame()

	f := g.Frames()[0]
	// The sampler serves whole quads, so helper lanes on triangle edges
	// also issue requests: exactly 4 per shaded quad.
	if f.Tex.Requests != f.Frag.QuadsShaded*4 {
		t.Errorf("texture requests = %d, want %d (4 per shaded quad)",
			f.Tex.Requests, f.Frag.QuadsShaded*4)
	}
	if f.Tex.Requests < 64*64 {
		t.Errorf("texture requests = %d, want >= 4096", f.Tex.Requests)
	}
	if f.Mem[mem.ClientTexture].ReadBytes == 0 {
		t.Error("no texture memory traffic")
	}
	// The white cell is white, the black cell black (uv (0.2,0.2) is in
	// the first 32x32 cell).
	if c := g.Target().At(12, 12); c.X < 0.9 {
		t.Errorf("white cell = %v", c)
	}
	if c := g.Target().At(44, 12); c.X > 0.1 {
		t.Errorf("black cell = %v", c)
	}
}

func TestAlphaKillPath(t *testing.T) {
	d, g := newScene(t, 64, 64)
	identityMVP(d)
	vb, ib := fullscreenQuadVB(d, 0)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	// Kill every fragment via constant alpha below the threshold.
	fsProg, _ := d.CreateProgram(shader.MustAssemble("killall", shader.FragmentProgram, `
		sub r0, c8, c9
		kil r0
		mov o0, c8
	`))
	d.SetConst(8, gmath.V4(0.2, 0.2, 0.2, 0.2))
	d.SetConst(9, gmath.V4(0.5, 0.5, 0.5, 0.5))
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fsProg)
	d.EndFrame()
	f := g.Frames()[0]
	if f.Frag.QuadsKilledAlpha != f.Frag.QuadsShaded {
		t.Errorf("alpha-killed %d of %d quads, want all",
			f.Frag.QuadsKilledAlpha, f.Frag.QuadsShaded)
	}
	if f.Rop.QuadsIn != 0 {
		t.Errorf("killed quads reached color stage: %d", f.Rop.QuadsIn)
	}
	// Late z: depth untouched because kill happens before the z write.
	if g.ZBuffer().DepthAt(5, 5) != 1 {
		t.Errorf("killed fragment wrote depth: %v", g.ZBuffer().DepthAt(5, 5))
	}
}

func TestStencilShadowFrame(t *testing.T) {
	// A miniature Doom3 frame: z prepass, stencil volume, lit pass.
	d, g := newScene(t, 64, 64)
	identityMVP(d)
	vb, ib := fullscreenQuadVB(d, 0)
	vs, _ := d.CreateProgram(shader.DepthOnlyVS())
	vsFull, _ := d.CreateProgram(shader.BasicTransformVS())
	fsFlat, _ := d.CreateProgram(shader.StencilVolumeFS())
	fsLight, _ := d.CreateProgram(shader.MustAssemble("light", shader.FragmentProgram,
		"mov o0, c8"))
	d.SetConst(8, gmath.V4(1, 1, 0, 1))

	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, ClearStencil: true, Z: 1})

	// 1. Depth prepass, color masked off.
	maskOff := rop.State{}
	d.SetRopState(maskOff)
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fsFlat)

	// 2. Shadow volume behind the geometry: stencil increments on z-fail.
	volZ := zst.DefaultState()
	volZ.ZWrite = false
	volZ.StencilTest = true
	volZ.StencilFunc = zst.CmpAlways
	volZ.Back = zst.FaceOps{Fail: zst.OpKeep, ZFail: zst.OpIncr, ZPass: zst.OpKeep}
	volZ.Front = zst.FaceOps{Fail: zst.OpKeep, ZFail: zst.OpIncr, ZPass: zst.OpKeep}
	d.SetZState(volZ)
	vbVol, ibVol := fullscreenQuadVB(d, 0.9) // behind the prepassed z=0.5
	d.DrawIndexed(vbVol, ibVol, geom.TriangleList, vs, fsFlat)

	// 3. Lighting pass where stencil == 0 (everything is 1 -> all fail).
	lit := zst.DefaultState()
	lit.ZFunc = zst.CmpEqual
	lit.ZWrite = false
	lit.StencilTest = true
	lit.StencilFunc = zst.CmpEqual
	lit.StencilRef = 0
	d.SetZState(lit)
	d.SetRopState(rop.AdditiveBlend())
	d.DrawIndexed(vb, ib, geom.TriangleList, vsFull, fsLight)
	d.EndFrame()

	f := g.Frames()[0]
	// The volume pass quads reached zst but never the color stage
	// (masked) — and the lit pass was stencil-rejected.
	if f.Rop.QuadsMasked == 0 {
		t.Error("no color-masked quads recorded")
	}
	if c := g.Target().At(32, 32); c.X > 0.01 {
		t.Errorf("shadowed pixel lit: %v", c)
	}
	// Stencil buffer holds 1 everywhere the volume z-failed.
	if g.ZBuffer().StencilAt(32, 32) != 1 {
		t.Errorf("stencil = %d, want 1", g.ZBuffer().StencilAt(32, 32))
	}
}

func TestPerFrameStatsAreDeltas(t *testing.T) {
	d, g := newScene(t, 32, 32)
	identityMVP(d)
	vb, ib := fullscreenQuadVB(d, 0)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.MustAssemble("f", shader.FragmentProgram, "mov o0, v2"))
	for frame := 0; frame < 3; frame++ {
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fsProg)
		d.EndFrame()
	}
	frames := g.Frames()
	if len(frames) != 3 {
		t.Fatalf("frames = %d", len(frames))
	}
	for i, f := range frames {
		if f.Rast.Fragments != 32*32 {
			t.Errorf("frame %d fragments = %d, want 1024", i, f.Rast.Fragments)
		}
		if f.Geom.TrianglesAssembled != 2 {
			t.Errorf("frame %d assembled = %d", i, f.Geom.TrianglesAssembled)
		}
	}
}

func TestMemoryClientsAllAccounted(t *testing.T) {
	d, g := newScene(t, 64, 64)
	identityMVP(d)
	vb, ib := fullscreenQuadVB(d, 0)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.TexturedFS())
	tex, _ := d.CreateTexture(gfxapi.TextureSpec{
		Name: "n", Format: texture.FormatDXT1, W: 256, H: 256,
		Kind: gfxapi.KindNoise, Seed: 1,
	})
	d.BindTexture(0, tex, texture.SamplerState{Filter: texture.FilterTrilinear})
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fsProg)
	d.EndFrame()
	f := g.Frames()[0]
	for _, c := range []mem.Client{mem.ClientVertex, mem.ClientTexture,
		mem.ClientDAC, mem.ClientCP} {
		if f.Mem[c].Total() == 0 {
			t.Errorf("client %v has no traffic", c)
		}
	}
	// DAC reads exactly one frame.
	if f.Mem[mem.ClientDAC].ReadBytes != 64*64*4 {
		t.Errorf("DAC = %d", f.Mem[mem.ClientDAC].ReadBytes)
	}
}

func TestR520ConfigMatchesTableII(t *testing.T) {
	cfg := R520Config(1024, 768)
	if cfg.UnifiedShaders != 16 || cfg.TrianglesPerCycle != 2 ||
		cfg.BilinearsPerCycle != 16 || cfg.ZStencilRate != 16 ||
		cfg.ColorRate != 16 || cfg.MemBytesPerCycle != 64 {
		t.Errorf("config = %+v", cfg)
	}
}

func TestDefaultDimensions(t *testing.T) {
	g := New(Config{})
	if g.Cfg.Width != 1024 || g.Cfg.Height != 768 {
		t.Errorf("default dims = %dx%d", g.Cfg.Width, g.Cfg.Height)
	}
}

func TestPerspectiveSceneOverdraw(t *testing.T) {
	// Two walls at different depths drawn back to front: overdraw = 2 in
	// covered areas; rasterized fragments accumulate across draws.
	d, g := newScene(t, 64, 64)
	proj := gmath.Perspective(float32(math.Pi/2), 1, 0.1, 100)
	view := gmath.LookAt(gmath.V3(0, 0, 5), gmath.V3(0, 0, 0), gmath.V3(0, 1, 0))
	d.SetMatrix(0, proj.Mul(view))
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fsProg, _ := d.CreateProgram(shader.MustAssemble("f", shader.FragmentProgram, "mov o0, v2"))

	mkWall := func(z, ext float32) (*geom.VertexBuffer, *geom.IndexBuffer) {
		pos := []gmath.Vec4{
			{X: -ext, Y: -ext, Z: z, W: 1}, {X: ext, Y: -ext, Z: z, W: 1},
			{X: ext, Y: ext, Z: z, W: 1}, {X: -ext, Y: ext, Z: z, W: 1},
		}
		attr := make([]gmath.Vec4, 4)
		vb := d.CreateVertexBuffer([][]gmath.Vec4{pos, attr, attr}, 48)
		ib := d.CreateIndexBuffer([]uint32{0, 1, 2, 0, 2, 3}, 2)
		return vb, ib
	}
	// With a 90-degree fov from z=5, a wall at depth z needs half-extent
	// (5-z) to fill the frame.
	farVB, farIB := mkWall(-10, 20)
	nearVB, nearIB := mkWall(-2, 10)
	d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	d.DrawIndexed(farVB, farIB, geom.TriangleList, vs, fsProg)
	d.DrawIndexed(nearVB, nearIB, geom.TriangleList, vs, fsProg)
	d.EndFrame()
	f := g.Frames()[0]
	// Both walls cover the full screen: raster overdraw = 2.
	overdraw := float64(f.Rast.Fragments) / float64(64*64)
	if overdraw < 1.9 || overdraw > 2.1 {
		t.Errorf("raster overdraw = %v, want ~2", overdraw)
	}
}
