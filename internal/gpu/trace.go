// Pipeline execution tracing: the gpu package's wiring into the obsv
// tracer. With Config.Trace set, every simulated frame emits structural
// spans — one per frame, one per pipeline stage, one per draw (sampled)
// and one per tile-worker drain (sampled) — onto tracks grouped under
// the demo's process name, so a whole characterize run opens in
// ui.perfetto.dev with tile workers as separate rows.
//
// Stage time is accounted by lightweight clocks: the serial pipe and
// each tile worker accumulate per-stage busy nanoseconds as quads flow
// through them, and EndFrame materializes the sums as one span per
// stage laid across the frame's interval. Stage spans therefore show
// busy time, not wall-clock extent: with N tile workers the fragment
// stage's span can exceed the frame span, which is exactly the
// parallelism visible at a glance.
//
// Each frame and stage span carries the frame's counter deltas from the
// metrics registry as span attributes — frame spans the full diff,
// stage spans their own namespaces — so summing the frame spans of a
// run reproduces the final snapshot exactly (pinned by trace_test.go).
//
// With Config.Trace nil every hook is a branch on a nil pointer; the
// overhead guard in bench_obsv_test.go pins the cost below 2% of a
// frame.
package gpu

import (
	"fmt"

	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
)

// stage indexes the timed pipeline stages.
type stage int

const (
	stGeom stage = iota
	stRast
	stZST
	stFrag
	stRop
	numStages
)

// stageNames are the span names and track labels of the timed stages.
var stageNames = [numStages]string{"geom", "rast", "zst", "frag", "rop"}

// stageAttrPrefixes maps each timed stage to the counter namespaces its
// span carries. Together with the mem track the sets partition every
// namespace the GPU registry binds, so the union of one frame's stage
// attributes equals the frame span's full diff (pinned by
// TestStageSpanAttrsPartitionFrame).
var stageAttrPrefixes = [numStages][]string{
	stGeom: {PrefixGeom, PrefixVCache, PrefixVS},
	stRast: {PrefixRast},
	stZST:  {PrefixZSt, PrefixZCache},
	stFrag: {PrefixFrag, PrefixFS, PrefixTex, PrefixTexL0, PrefixTexL1},
	stRop:  {PrefixRop, PrefixColorCache},
}

// stageClock accumulates per-stage busy nanoseconds. Each clock has a
// single writer (the serial pipe or one tile worker), so no atomics:
// the frame-end reader runs after the draw barrier.
type stageClock struct {
	ns [numStages]int64
}

// lap charges the time since *mark to stage s and advances the mark.
func (c *stageClock) lap(s stage, mark *int64) {
	now := obsv.Nanotime()
	c.ns[s] += now - *mark
	*mark = now
}

// addAll folds o's accumulators into c.
func (c *stageClock) addAll(o *stageClock) {
	for i := range c.ns {
		c.ns[i] += o.ns[i]
	}
}

// gpuTracer is a GPU's tracing state: the resolved tracks, the stage
// clocks, and the frame/draw counters driving sampling.
type gpuTracer struct {
	tr       *obsv.Tracer
	frameTk  obsv.Track
	drawTk   obsv.Track
	memTk    obsv.Track
	stageTk  [numStages]obsv.Track
	workerTk []obsv.Track

	serial stageClock
	worker []stageClock // parallel to GPU.workers
	total  stageClock   // cumulative across frames (StageNanos)

	frameStart int64
	frame      uint64
	draws      uint64
}

// newGPUTracer resolves the GPU's tracks on tr. process groups the
// tracks in the trace viewer — typically the demo name.
func newGPUTracer(tr *obsv.Tracer, process string, workers int) *gpuTracer {
	if process == "" {
		process = "gpu"
	}
	t := &gpuTracer{
		tr:         tr,
		frameTk:    tr.Track(process, "frames"),
		drawTk:     tr.Track(process, "draws"),
		memTk:      tr.Track(process, "mem"),
		frameStart: obsv.Nanotime(),
	}
	for s := stage(0); s < numStages; s++ {
		t.stageTk[s] = tr.Track(process, "stage "+stageNames[s])
	}
	for i := 0; i < workers; i++ {
		t.workerTk = append(t.workerTk, tr.Track(process, fmt.Sprintf("tile-worker-%d", i)))
	}
	t.worker = make([]stageClock, workers)
	return t
}

// finishSerialDraw closes out one serial-path draw: the rasterizer gets
// the loop's wall time minus the backend stage time charged inside
// processQuad, and a sampled draw span lands on the draws track.
func (t *gpuTracer) finishSerialDraw(pre stageClock, drawStart, loopStart int64, tris int) {
	now := obsv.Nanotime()
	backend := (t.serial.ns[stZST] - pre.ns[stZST]) +
		(t.serial.ns[stFrag] - pre.ns[stFrag]) +
		(t.serial.ns[stRop] - pre.ns[stRop])
	if rast := now - loopStart - backend; rast > 0 {
		t.serial.ns[stRast] += rast
	}
	if t.tr.Sampled(t.draws) {
		t.tr.Emit(t.drawTk, "draw", drawStart, now-drawStart,
			map[string]any{"tris": int64(tris), "draw": int64(t.draws)})
	}
}

// endFrame emits the frame's structural spans and resets the clocks.
// diff is the frame's counter activity (the cumulative snapshot minus
// the previous frame boundary's).
func (t *gpuTracer) endFrame(diff metrics.Snapshot) {
	now := obsv.Nanotime()
	frame := int64(t.frame)

	frameArgs := diff.Attrs()
	frameArgs["frame"] = frame
	t.tr.Emit(t.frameTk, "frame", t.frameStart, now-t.frameStart, frameArgs)

	merged := t.serial
	for i := range t.worker {
		merged.addAll(&t.worker[i])
		t.worker[i] = stageClock{}
	}
	t.serial = stageClock{}

	for s := stage(0); s < numStages; s++ {
		args := diff.AttrsUnder(stageAttrPrefixes[s]...)
		args["frame"] = frame
		t.tr.Emit(t.stageTk[s], stageNames[s], t.frameStart, merged.ns[s], args)
		t.total.ns[s] += merged.ns[s]
	}
	memArgs := diff.AttrsUnder(PrefixMem)
	memArgs["frame"] = frame
	t.tr.Emit(t.memTk, "mem", t.frameStart, 0, memArgs)

	t.frame++
	t.frameStart = now
}

// StageNanos returns the cumulative per-stage busy time (serial pipe
// plus all tile-worker shards) accumulated since construction, keyed by
// stage name. It returns nil unless the GPU was created with a tracer —
// the stage clocks only run while tracing. cmd/benchjson derives the
// per-stage wall-clock shares in BENCH_pipeline.json from this.
func (g *GPU) StageNanos() map[string]int64 {
	if g.gt == nil {
		return nil
	}
	sum := g.gt.total
	sum.addAll(&g.gt.serial)
	for i := range g.gt.worker {
		sum.addAll(&g.gt.worker[i])
	}
	out := make(map[string]int64, numStages)
	for s := stage(0); s < numStages; s++ {
		out[stageNames[s]] = sum.ns[s]
	}
	return out
}

// PublishedSnapshot returns the cumulative metrics snapshot captured at
// the most recent frame boundary, and whether one exists yet. Unlike
// MetricsSnapshot it is safe to call concurrently with rendering — the
// observability server's /metrics endpoint scrapes it live.
func (g *GPU) PublishedSnapshot() (metrics.Snapshot, bool) {
	p := g.published.Load()
	if p == nil {
		return metrics.Snapshot{}, false
	}
	return *p, true
}
