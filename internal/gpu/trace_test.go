package gpu

import (
	"strings"
	"sync"
	"testing"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/obsv"
	"gpuchar/internal/shader"
)

// renderTraced renders frames of fullscreen-quad draws through a GPU
// with the given tracer bound and returns the GPU for inspection.
func renderTraced(t testing.TB, tr *obsv.Tracer, workers, frames int) *GPU {
	t.Helper()
	cfg := R520Config(64, 64)
	cfg.TileWorkers = workers
	cfg.Trace = tr
	cfg.TraceProcess = "test"
	g := New(cfg)
	d := gfxapi.NewDevice(gfxapi.OpenGL, g)
	d.SetMatrix(0, gmath.Identity())
	vb, ib := fullscreenQuadVB(d, 0.5)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fs, _ := d.CreateProgram(shader.MustAssemble("flat", shader.FragmentProgram,
		"mov o0, c8"))
	d.SetConst(8, gmath.V4(0, 1, 0, 1))
	for f := 0; f < frames; f++ {
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
		d.EndFrame()
	}
	return g
}

// argNums extracts an event's numeric attributes (counter deltas plus
// the "frame" correlation arg) as int64s.
func argNums(e obsv.Event) map[string]int64 {
	out := map[string]int64{}
	for k, v := range e.Args {
		if n, ok := v.(int64); ok {
			out[k] = n
		}
	}
	return out
}

// TestFrameSpanAttrsSumToSnapshot pins the export invariant the trace
// is designed around: summing the per-frame spans' counter attributes
// over a run reproduces the run's final metrics snapshot exactly.
func TestFrameSpanAttrsSumToSnapshot(t *testing.T) {
	for _, workers := range []int{0, 3} {
		tr := obsv.New(obsv.Options{})
		g := renderTraced(t, tr, workers, 3)

		sum := map[string]int64{}
		frameSpans := 0
		for _, e := range tr.Events() {
			if e.Name != "frame" || e.Ph != 'X' {
				continue
			}
			frameSpans++
			for k, v := range argNums(e) {
				if k == "frame" {
					continue
				}
				sum[k] += v
			}
		}
		if frameSpans != 3 {
			t.Fatalf("workers=%d: frame spans = %d, want 3", workers, frameSpans)
		}

		want := map[string]int64{}
		for k, v := range g.MetricsSnapshot().Attrs() {
			want[k] = v.(int64)
		}
		if len(sum) != len(want) {
			t.Errorf("workers=%d: %d summed counters, snapshot has %d non-zero",
				workers, len(sum), len(want))
		}
		for k, v := range want {
			if sum[k] != v {
				t.Errorf("workers=%d: frame-span sum %s = %d, snapshot = %d",
					workers, k, sum[k], v)
			}
		}
		for k := range sum {
			if _, ok := want[k]; !ok {
				t.Errorf("workers=%d: frame spans carry %s, absent from snapshot", workers, k)
			}
		}
	}
}

// TestStageSpanAttrsPartitionFrame pins the stage-attribute partition:
// within one frame, each counter delta appears on exactly one stage (or
// mem) span, and the union reproduces the frame span's attributes.
func TestStageSpanAttrsPartitionFrame(t *testing.T) {
	tr := obsv.New(obsv.Options{})
	renderTraced(t, tr, 2, 1)

	stageNamesSet := map[string]bool{"mem": true}
	for _, n := range stageNames {
		stageNamesSet[n] = true
	}
	var frameArgs map[string]int64
	union := map[string]int64{}
	owner := map[string]string{}
	for _, e := range tr.Events() {
		switch {
		case e.Name == "frame" && e.Ph == 'X':
			frameArgs = argNums(e)
			delete(frameArgs, "frame")
		case stageNamesSet[e.Name] && e.Ph == 'X':
			for k, v := range argNums(e) {
				if k == "frame" {
					continue
				}
				if prev, dup := owner[k]; dup {
					t.Errorf("counter %s on both %s and %s spans", k, prev, e.Name)
				}
				owner[k] = e.Name
				union[k] += v
			}
		}
	}
	if frameArgs == nil {
		t.Fatal("no frame span recorded")
	}
	if len(union) != len(frameArgs) {
		t.Errorf("stage spans carry %d counters, frame span %d", len(union), len(frameArgs))
	}
	for k, v := range frameArgs {
		if union[k] != v {
			t.Errorf("stage union %s = %d, frame span = %d", k, union[k], v)
		}
	}
	for k, st := range owner {
		if !strings.Contains(k, "/") && k != st {
			// Top-level counters ("geom", ...) should sit on their stage.
			t.Errorf("counter %s landed on span %s", k, st)
		}
	}
}

// TestStageNanosAccountsStages checks the benchjson feed: a traced run
// accumulates busy time for every pipeline stage.
func TestStageNanosAccountsStages(t *testing.T) {
	tr := obsv.New(obsv.Options{})
	g := renderTraced(t, tr, 2, 2)
	ns := g.StageNanos()
	if len(ns) != int(numStages) {
		t.Fatalf("StageNanos has %d stages, want %d", len(ns), numStages)
	}
	for _, name := range stageNames {
		if ns[name] <= 0 {
			t.Errorf("stage %s accumulated %d ns, want > 0", name, ns[name])
		}
	}
	// Untraced GPUs keep the clocks off entirely.
	if plain := New(R520Config(8, 8)); plain.StageNanos() != nil {
		t.Error("StageNanos() non-nil without a tracer")
	}
}

// TestTileParallelTraceRace is the race-detector workout for concurrent
// span emission: tile workers emit drain spans and bump stage clocks
// while another goroutine scrapes the tracer and the published
// snapshot, exactly as the observability server does mid-run.
func TestTileParallelTraceRace(t *testing.T) {
	tr := obsv.New(obsv.Options{Capacity: 1 << 12})
	cfg := R520Config(64, 64)
	cfg.TileWorkers = 4
	cfg.Trace = tr
	cfg.TraceProcess = "race"
	g := New(cfg)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			tr.Events()
			tr.Dropped()
			g.PublishedSnapshot()
		}
	}()
	d := gfxapi.NewDevice(gfxapi.OpenGL, g)
	d.SetMatrix(0, gmath.Identity())
	vb, ib := fullscreenQuadVB(d, 0.5)
	vs, _ := d.CreateProgram(shader.BasicTransformVS())
	fs, _ := d.CreateProgram(shader.MustAssemble("flat", shader.FragmentProgram,
		"mov o0, c8"))
	d.SetConst(8, gmath.V4(1, 0, 0, 1))
	for f := 0; f < 4; f++ {
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
		d.EndFrame()
	}
	close(done)
	wg.Wait()
	if _, ok := g.PublishedSnapshot(); !ok {
		t.Fatal("no published snapshot after 4 frames")
	}
}
