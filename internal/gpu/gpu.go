// Package gpu assembles the full rendering pipeline — geometry,
// rasterization, hierarchical Z, z & stencil, fragment shading with
// texturing, and the color stage — into a GPU simulator that implements
// the gfxapi.Backend interface, in the mould of the ATTILA simulator the
// paper drives its microarchitectural measurements with (§II.B).
//
// The simulator is functional plus exact traffic accounting: every
// statistic the paper reports (fragment counts, quad kill rates, cache
// hit rates, per-stage memory traffic) is a count, not a latency, so no
// cycle timing is modelled. The Table II rate parameters are kept in
// Config for bandwidth projections.
package gpu

import (
	"gpuchar/internal/cache"
	"gpuchar/internal/fragment"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/rast"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// Config is the simulated GPU configuration. R520Config reproduces the
// paper's Table II.
type Config struct {
	Width, Height int

	// Informational rate parameters (Table II).
	UnifiedShaders    int
	TrianglesPerCycle int
	BilinearsPerCycle int
	ZStencilRate      int
	ColorRate         int
	MemBytesPerCycle  int

	// VertexCacheSize is the post-transform FIFO depth.
	VertexCacheSize int

	// Feature toggles for ablation studies.
	HZ               bool
	ZCompression     bool
	ColorCompression bool
	FastClear        bool
}

// R520Config returns the ATTILA configuration of Table II at the given
// framebuffer size (the paper uses 1024x768).
func R520Config(w, h int) Config {
	return Config{
		Width: w, Height: h,
		UnifiedShaders:    16,
		TrianglesPerCycle: 2,
		BilinearsPerCycle: 16,
		ZStencilRate:      16,
		ColorRate:         16,
		MemBytesPerCycle:  64,
		VertexCacheSize:   geom.DefaultVertexCacheSize,
		HZ:                true,
		ZCompression:      true,
		ColorCompression:  true,
		FastClear:         true,
	}
}

// FrameStats gathers every stage's per-frame counters — the raw data
// for all the microarchitectural tables of the paper.
type FrameStats struct {
	Geom geom.Stats
	Rast rast.Stats
	ZSt  zst.Stats
	Frag fragment.Stats
	Rop  rop.Stats
	Tex  texture.SampleStats

	VCache     cache.Stats
	ZCache     cache.Stats
	TexL0      cache.Stats
	TexL1      cache.Stats
	ColorCache cache.Stats

	VS shader.ExecStats
	FS shader.ExecStats

	Mem [mem.NumClients]mem.Traffic
}

// GPU is the pipeline simulator.
type GPU struct {
	Cfg Config
	Mem *mem.Controller

	vsMachine *shader.Machine
	fsMachine *shader.Machine
	geom      *geom.Pipeline
	rast      *rast.Rasterizer
	zbuf      *zst.Buffer
	texUnit   *texture.Unit
	frag      *fragment.Stage
	target    *rop.Target

	frames    []FrameStats
	prev      FrameStats // cumulative snapshot at last frame boundary
	geomAccum geom.Stats // geometry stats accumulated across draws
}

// New creates a GPU simulator with the given configuration.
func New(cfg Config) *GPU {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg.Width, cfg.Height = 1024, 768
	}
	if cfg.VertexCacheSize <= 0 {
		cfg.VertexCacheSize = geom.DefaultVertexCacheSize
	}
	m := mem.NewController()
	vs := shader.NewMachine()
	fs := shader.NewMachine()
	g := &GPU{
		Cfg:       cfg,
		Mem:       m,
		vsMachine: vs,
		fsMachine: fs,
		geom:      geom.NewPipeline(vs, m),
		rast:      rast.New(),
		zbuf:      zst.NewBuffer(cfg.Width, cfg.Height, 0x0200_0000, m),
		texUnit:   texture.NewUnit(m),
		frag:      fragment.NewStage(fs),
		target:    rop.NewTarget(cfg.Width, cfg.Height, 0x0400_0000, m),
	}
	g.geom.VCache = cache.NewVertexCache(cfg.VertexCacheSize)
	g.fsMachine.Sampler = g.texUnit
	g.zbuf.Compression = cfg.ZCompression
	g.zbuf.FastClear = cfg.FastClear
	g.target.Compression = cfg.ColorCompression
	g.target.FastClear = cfg.FastClear
	return g
}

// Target exposes the render target (for image inspection).
func (g *GPU) Target() *rop.Target { return g.target }

// ZBuffer exposes the depth/stencil buffer (for inspection).
func (g *GPU) ZBuffer() *zst.Buffer { return g.zbuf }

// Frames returns the completed per-frame statistics.
func (g *GPU) Frames() []FrameStats { return g.frames }

// cpBytesPerDraw approximates the command processor's fetch of one draw
// packet (command header plus state deltas).
const cpBytesPerDraw = 512

// zeroColors feeds WriteQuad for quads that skip shading because their
// color writes are masked off.
var zeroColors [4]gmath.Vec4

// Execute runs one draw call through the whole pipeline.
func (g *GPU) Execute(dc *gfxapi.DrawCall) {
	// Load the unified constant file into both shader stages.
	g.vsMachine.Consts = dc.Consts
	g.fsMachine.Consts = dc.Consts

	// Bind textures.
	for unit, b := range dc.State.Tex {
		if b.Tex != nil {
			g.texUnit.Bind(unit, b.Tex, b.State)
		}
	}

	// Command processor fetch.
	g.Mem.Read(mem.ClientCP, cpBytesPerDraw)

	zstate := dc.State.Z
	if !g.Cfg.HZ {
		zstate.HZ = false
	}
	// Early z is legal when shading cannot change the outcome of the
	// depth test: no KIL (ATTILA's alpha test) in the fragment program.
	earlyZ := !dc.FS.UsesKill()

	gcfg := geom.Config{
		ViewportW: g.Cfg.Width, ViewportH: g.Cfg.Height, Cull: dc.State.Cull,
	}
	tris, gstats := g.geom.Draw(dc.VB, dc.IB, dc.Prim, dc.VS, gcfg)
	g.geomAccum.Add(gstats)

	rcfg := rast.Config{Width: g.Cfg.Width, Height: g.Cfg.Height}
	ropState := dc.State.Rop
	for i := range tris {
		tri := &tris[i]
		setup := rast.Setup(tri)
		if setup == nil {
			continue
		}
		g.rast.Rasterize(setup, rcfg, func(q *rast.Quad) {
			g.processQuad(q, dc, &zstate, &ropState, earlyZ, tri.FrontFacing)
		})
	}
}

func (g *GPU) processQuad(q *rast.Quad, dc *gfxapi.DrawCall,
	zstate *zst.State, ropState *rop.State, earlyZ, frontFacing bool) {

	mask := q.Mask

	// Hierarchical Z runs before shading regardless of early/late z.
	if !g.zbuf.HZTestQuad(q, zstate) {
		g.zbuf.RecordHZKill(q, mask)
		return
	}

	if earlyZ {
		mask = g.zbuf.TestQuad(q, mask, zstate, frontFacing)
		if mask == 0 {
			return
		}
		if ropState.MaskedOff() {
			// Color writes are masked (z prepass, stencil volumes): the
			// quad reaches the color stage without being shaded, where
			// it is dropped — the paper's Table IX "Color Mask" bucket.
			g.target.WriteQuad(q, mask, &zeroColors, ropState)
			return
		}
		live, colors := g.frag.ShadeQuad(q, mask, dc.FS)
		if live == 0 {
			return
		}
		g.target.WriteQuad(q, live, colors, ropState)
		return
	}

	// Late z: shade first (the program may kill), then test.
	live, colors := g.frag.ShadeQuad(q, mask, dc.FS)
	if live == 0 {
		return
	}
	live = g.zbuf.TestQuad(q, live, zstate, frontFacing)
	if live == 0 {
		return
	}
	g.target.WriteQuad(q, live, colors, ropState)
}

// Clear fast-clears the requested buffers.
func (g *GPU) Clear(op gfxapi.ClearOp) {
	g.Mem.Read(mem.ClientCP, 64)
	switch {
	case op.ClearDepth:
		g.zbuf.Clear(op.Z, op.Stencil)
	case op.ClearStencil:
		g.zbuf.ClearStencil(op.Stencil)
	}
	if op.ClearColor {
		g.target.Clear(op.Color)
	}
}

// EndFrame flushes caches, scans out the frame and snapshots per-frame
// statistics.
func (g *GPU) EndFrame() {
	g.zbuf.FlushCache()
	g.target.FlushCache()
	g.target.ScanOut()

	cur := g.cumulative()
	g.frames = append(g.frames, diffStats(cur, g.prev))
	g.prev = cur
}

// cumulative snapshots all stage counters since construction.
func (g *GPU) cumulative() FrameStats {
	return FrameStats{
		Geom:       g.geomAccum,
		Rast:       g.rast.Stats(),
		ZSt:        g.zbuf.Stats(),
		Frag:       g.frag.Stats(),
		Rop:        g.target.Stats(),
		Tex:        g.texUnit.Stats(),
		VCache:     g.geom.VCache.Stats(),
		ZCache:     g.zbuf.CacheStats(),
		TexL0:      g.texUnit.L0Stats(),
		TexL1:      g.texUnit.L1Stats(),
		ColorCache: g.target.CacheStats(),
		VS:         g.vsMachine.Stats(),
		FS:         g.fsMachine.Stats(),
		Mem:        g.Mem.Snapshot(),
	}
}
