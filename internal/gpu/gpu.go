// Package gpu assembles the full rendering pipeline — geometry,
// rasterization, hierarchical Z, z & stencil, fragment shading with
// texturing, and the color stage — into a GPU simulator that implements
// the gfxapi.Backend interface, in the mould of the ATTILA simulator the
// paper drives its microarchitectural measurements with (§II.B).
//
// The simulator is functional plus exact traffic accounting: every
// statistic the paper reports (fragment counts, quad kill rates, cache
// hit rates, per-stage memory traffic) is a count, not a latency, so no
// cycle timing is modelled. The Table II rate parameters are kept in
// Config for bandwidth projections.
//
// # Parallel fragment backend
//
// With Config.TileWorkers > 1 the fragment backend runs sort-middle
// tile-parallel: geometry and triangle setup stay serial, rasterized
// quads are binned to screen-space buckets of 8 horizontally
// consecutive 8x8 blocks (64x8 pixels), and buckets are assigned to N
// workers per draw by greedy longest-bucket-first load balancing. Each
// worker runs HZ -> z & stencil -> fragment shading -> blend for its
// quads in submission order against private shader machine, texture
// unit, cache and stat shards. Because every 8x8 framebuffer block (the
// granularity of the z/color cache lines, the HZ mirror and the
// compression metadata) is owned by exactly one worker within a draw
// and quads never straddle blocks, all order-dependent results —
// framebuffer bytes, kill counts, overdraw — are exactly those of the
// serial pipeline at any worker count. The contiguous bucket runs exist
// to kill false sharing: a 64-byte cache line of the shared float32
// pixel planes spans 16 horizontally adjacent pixels — two 8x8 blocks —
// so per-block round-robin ownership put every pixel line on two
// workers. Cache hit rates and memory traffic are per-shard and merged
// at frame end; they are deterministic for a fixed worker count but
// shift slightly with N (see DESIGN.md "Parallel architecture").
package gpu

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"gpuchar/internal/cache"
	"gpuchar/internal/fragment"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
	"gpuchar/internal/rast"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// Config is the simulated GPU configuration. R520Config reproduces the
// paper's Table II; internal/hwconfig materializes named sweep variants
// into Configs.
//
// Fields split into two classes. Behavioral parameters change what the
// simulator computes — framebuffer bytes, traffic counts, cache hit
// rates: Width/Height, VertexCacheSize, the four cache geometries,
// TileWorkers/TileBucketBlocks (cache-counter sharding only; the
// framebuffer stays exact) and the feature toggles. Informational
// parameters only label reports and scale bandwidth projections — the
// Table II rates: UnifiedShaders, TrianglesPerCycle, BilinearsPerCycle,
// ZStencilRate, ColorRate and MemBytesPerCycle. The hwconfig registry's
// exhaustiveness test pins this classification.
type Config struct {
	// Width, Height is the framebuffer size (behavioral).
	Width, Height int

	// Informational rate parameters (Table II): carried into reports
	// and bandwidth-at-fps projections, never into traffic counts.
	UnifiedShaders    int
	TrianglesPerCycle int
	BilinearsPerCycle int
	ZStencilRate      int
	ColorRate         int
	MemBytesPerCycle  int

	// VertexCacheSize is the post-transform FIFO depth (behavioral:
	// Figure 5 hit rates and vertex traffic). 0 takes the Table II
	// default.
	VertexCacheSize int

	// Cache geometries (behavioral: Table XIV hit rates, Tables XV-XVII
	// traffic). Zero values take the paper's Table XIV defaults. The z
	// and color caches keep their one-line-per-8x8-block addressing at
	// any line size.
	ZCache     cache.Config
	TexL0      cache.Config
	TexL1      cache.Config
	ColorCache cache.Config

	// TileWorkers is the number of tile-parallel fragment-backend
	// workers. 0 or 1 selects the serial pipeline; larger values shard
	// the framebuffer into disjoint 8x8-block sets processed
	// concurrently. The framebuffer and all order-dependent statistics
	// are bit-identical at any worker count; cache counters are sharded
	// (deterministic per count, slightly different across counts).
	TileWorkers int
	// TileBucketBlocks is the number of horizontally consecutive 8x8
	// blocks per parallel-assignment bucket (0 takes the default 8).
	// Pure scheduling granularity: the framebuffer is exact at any
	// value, and it only matters when TileWorkers > 1.
	TileBucketBlocks int

	// Feature toggles for ablation studies (behavioral: traffic and
	// kill counts; never framebuffer contents).
	HZ               bool
	ZCompression     bool
	ColorCompression bool
	FastClear        bool

	// Trace, when non-nil, receives per-frame, per-stage, per-draw and
	// per-tile-worker spans (see trace.go). Nil keeps tracing compiled
	// down to a branch per hook. Runtime wiring, not a hardware
	// parameter.
	Trace *obsv.Tracer
	// TraceProcess names the process grouping the GPU's tracks in the
	// trace viewer — typically the demo name. Empty means "gpu".
	TraceProcess string
}

// R520Config returns the ATTILA configuration of Table II at the given
// framebuffer size (the paper uses 1024x768), with the Table XIV cache
// geometries spelled out.
func R520Config(w, h int) Config {
	return Config{
		Width: w, Height: h,
		UnifiedShaders:    16,
		TrianglesPerCycle: 2,
		BilinearsPerCycle: 16,
		ZStencilRate:      16,
		ColorRate:         16,
		MemBytesPerCycle:  mem.DefaultBytesPerCycle,
		VertexCacheSize:   geom.DefaultVertexCacheSize,
		ZCache:            zst.ZCacheConfig,
		TexL0:             texture.L0Config,
		TexL1:             texture.L1Config,
		ColorCache:        rop.ColorCacheConfig,
		TileBucketBlocks:  groupBlocks,
		HZ:                true,
		ZCompression:      true,
		ColorCompression:  true,
		FastClear:         true,
	}
}

// FrameStats gathers every stage's per-frame counters — the raw data
// for all the microarchitectural tables of the paper.
type FrameStats struct {
	Geom geom.Stats
	Rast rast.Stats
	ZSt  zst.Stats
	Frag fragment.Stats
	Rop  rop.Stats
	Tex  texture.SampleStats

	VCache     cache.Stats
	ZCache     cache.Stats
	TexL0      cache.Stats
	TexL1      cache.Stats
	ColorCache cache.Stats

	VS shader.ExecStats
	FS shader.ExecStats

	Mem [mem.NumClients]mem.Traffic
}

// pipe groups the per-quad backend stages. The serial pipeline uses the
// GPU's own stages; each tile worker carries shard views of the z and
// color buffers plus a private shading stage.
type pipe struct {
	zbuf   *zst.Buffer
	frag   *fragment.Stage
	target *rop.Target
	// clk accumulates per-stage busy time while tracing; nil (the
	// default) keeps the quad path free of timing calls.
	clk *stageClock
}

// tileWorker is one fragment-backend worker: a pipe over buffer shards,
// a private fragment shader machine with its own texture unit, a
// private memory-controller shard, and the buckets assigned to it for
// the current draw.
type tileWorker struct {
	pipe
	fs  *shader.Machine
	tex *texture.Unit
	mem *mem.Controller
	// groups lists the bucket indices this worker drains this draw, and
	// quads their total quad count. Both are written by the assignment
	// pass on the main thread before the worker goroutines start.
	groups []int32
	quads  int
	// reg binds the worker's shard counters under the same names as the
	// serial registry, so shard snapshots Merge element-for-element.
	reg *metrics.Registry
}

// quadWork is one binned quad: a copy of the rasterizer's scratch quad
// plus the facing of its triangle (which selects the stencil op set).
type quadWork struct {
	q     rast.Quad
	front bool
}

// surface is one renderable color + depth pair: the backbuffer or an
// off-screen render target. Each carries its own bucket geometry for the
// tile-parallel backend (targets differ in size) and, for render
// targets, its own counter registries so per-pass metrics can be
// labeled. The backbuffer's counters stay in the GPU's main registries,
// keeping forward-only snapshots byte-identical to the single-surface
// pipeline.
type surface struct {
	name   string
	w, h   int
	zbuf   *zst.Buffer
	target *rop.Target
	// Per-worker shard views, parallel to GPU.workers.
	wz []*zst.Buffer
	wt []*rop.Target
	// reg and wreg bind this surface's z & color counters under the
	// standard prefixes; nil for the backbuffer.
	reg  *metrics.Registry
	wreg []*metrics.Registry
	// Parallel-backend bucket geometry (see binner).
	bucketPx int
	groupsX  int
	buckets  [][]quadWork
}

// initBuckets sizes the parallel-assignment bucket grid for the surface.
func (s *surface) initBuckets(bucketBlocks int) {
	blocksX := (s.w + tileDim - 1) / tileDim
	s.bucketPx = tileDim * bucketBlocks
	s.groupsX = (blocksX + bucketBlocks - 1) / bucketBlocks
	groupsY := (s.h + tileDim - 1) / tileDim
	s.buckets = make([][]quadWork, s.groupsX*groupsY)
}

// GPU is the pipeline simulator.
type GPU struct {
	Cfg Config
	Mem *mem.Controller

	vsMachine *shader.Machine
	fsMachine *shader.Machine
	geom      *geom.Pipeline
	rast      *rast.Rasterizer
	zbuf      *zst.Buffer
	texUnit   *texture.Unit
	frag      *fragment.Stage
	target    *rop.Target

	serial pipe    // serial backend over the stages above
	emit   emitCtx // reusable serial emitter (no per-draw closure)

	// Tile-parallel backend state (Cfg.TileWorkers > 1).
	workers  []*tileWorker
	touched  []int32         // non-empty bucket indices this draw
	order    []int32         // assignment scratch: touched sorted by load
	loads    []int           // assignment scratch: per-worker quad counts
	setupBuf []rast.SetupTri // per-draw triangle setups, reused

	// Multipass state: back is the backbuffer surface, cur the surface
	// draws currently land in, rtSurfs the off-screen targets in
	// creation order (the per-pass snapshot order).
	back    *surface
	cur     *surface
	rtSurfs []*surface
	rtByRT  map[*gfxapi.RenderTarget]*surface

	// reg binds every serial-stage counter by pointer; worker shards
	// carry their own registries. Snapshots of these registries are the
	// single source of all per-frame statistics.
	reg *metrics.Registry

	frames []FrameStats
	prev   metrics.Snapshot // cumulative snapshot at last frame boundary

	// gt is the tracing state (nil unless Config.Trace was set).
	gt *gpuTracer
	// published is the cumulative snapshot at the last frame boundary,
	// readable concurrently with rendering (the /metrics live feed).
	published atomic.Pointer[metrics.Snapshot]
}

// tileDim is the screen-space binning granularity of the parallel
// backend: 8x8 pixels, matching the z/color cache line footprint, the
// HZ block and the compression metadata, so one worker owns every
// order-dependent structure a quad touches.
const tileDim = 8

// groupBlocks is the number of horizontally consecutive 8x8 blocks per
// assignment bucket (64 pixels). The shared pixel planes are row-major
// float32, so a 64-byte cache line spans 16 adjacent pixels — two
// blocks; buckets of 8 blocks keep every such line (and every whole
// 1024-byte bucket row at common widths) on one worker, where per-block
// round-robin assignment made horizontally adjacent blocks ping the
// same lines between workers.
const groupBlocks = 8

// New creates a GPU simulator with the given configuration. Zero-valued
// cache geometries, the vertex cache size, the memory rate and the
// bucket width take the Table II / Table XIV defaults, so a zero Config
// (plus a resolution) is the paper's hardware point.
func New(cfg Config) *GPU {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		cfg.Width, cfg.Height = 1024, 768
	}
	if cfg.VertexCacheSize <= 0 {
		cfg.VertexCacheSize = geom.DefaultVertexCacheSize
	}
	if cfg.ZCache == (cache.Config{}) {
		cfg.ZCache = zst.ZCacheConfig
	}
	if cfg.TexL0 == (cache.Config{}) {
		cfg.TexL0 = texture.L0Config
	}
	if cfg.TexL1 == (cache.Config{}) {
		cfg.TexL1 = texture.L1Config
	}
	if cfg.ColorCache == (cache.Config{}) {
		cfg.ColorCache = rop.ColorCacheConfig
	}
	if cfg.TileBucketBlocks <= 0 {
		cfg.TileBucketBlocks = groupBlocks
	}
	m := mem.NewControllerRate(cfg.MemBytesPerCycle)
	vs := shader.NewMachine()
	fs := shader.NewMachine()
	g := &GPU{
		Cfg:       cfg,
		Mem:       m,
		vsMachine: vs,
		fsMachine: fs,
		geom:      geom.NewPipeline(vs, m),
		rast:      rast.New(),
		zbuf:      zst.NewBufferCache(cfg.Width, cfg.Height, 0x0200_0000, m, cfg.ZCache),
		texUnit:   texture.NewUnitCaches(m, cfg.TexL0, cfg.TexL1),
		frag:      fragment.NewStage(fs),
		target:    rop.NewTargetCache(cfg.Width, cfg.Height, 0x0400_0000, m, cfg.ColorCache),
	}
	g.geom.VCache = cache.MustVertexCache(cfg.VertexCacheSize)
	g.fsMachine.Sampler = g.texUnit
	g.zbuf.Compression = cfg.ZCompression
	g.zbuf.FastClear = cfg.FastClear
	g.target.Compression = cfg.ColorCompression
	g.target.FastClear = cfg.FastClear
	g.serial = pipe{zbuf: g.zbuf, frag: g.frag, target: g.target}

	// Bind every serial-stage counter into the GPU registry. This is the
	// one place the live pipeline's counter names are wired; FrameStats
	// registers the same names via the shared prefix constants.
	g.reg = metrics.NewRegistry()
	g.geom.RegisterMetrics(g.reg, PrefixGeom)
	g.rast.RegisterMetrics(g.reg, PrefixRast)
	g.zbuf.RegisterMetrics(g.reg, PrefixZSt, PrefixZCache)
	g.frag.RegisterMetrics(g.reg, PrefixFrag)
	g.target.RegisterMetrics(g.reg, PrefixRop, PrefixColorCache)
	g.texUnit.RegisterMetrics(g.reg, PrefixTex, PrefixTexL0, PrefixTexL1)
	g.geom.VCache.RegisterMetrics(g.reg, PrefixVCache)
	g.vsMachine.RegisterMetrics(g.reg, PrefixVS)
	g.fsMachine.RegisterMetrics(g.reg, PrefixFS)
	g.Mem.RegisterMetrics(g.reg, PrefixMem)

	if cfg.TileWorkers > 1 {
		// Shards must be created after the Compression/FastClear flags
		// above are final: they copy the flags at creation.
		g.loads = make([]int, cfg.TileWorkers)
		for i := 0; i < cfg.TileWorkers; i++ {
			wmem := mem.NewControllerRate(cfg.MemBytesPerCycle)
			wfs := shader.NewMachine()
			wtex := texture.NewUnitCaches(wmem, cfg.TexL0, cfg.TexL1)
			wfs.Sampler = wtex
			w := &tileWorker{
				pipe: pipe{
					zbuf:   g.zbuf.NewShard(wmem),
					frag:   fragment.NewStage(wfs),
					target: g.target.NewShard(wmem),
				},
				fs:  wfs,
				tex: wtex,
				mem: wmem,
				reg: metrics.NewRegistry(),
			}
			// Worker counters bind under the serial names: shard
			// snapshots are a subset shape that Merge folds in.
			w.zbuf.RegisterMetrics(w.reg, PrefixZSt, PrefixZCache)
			w.frag.RegisterMetrics(w.reg, PrefixFrag)
			w.target.RegisterMetrics(w.reg, PrefixRop, PrefixColorCache)
			w.tex.RegisterMetrics(w.reg, PrefixTex, PrefixTexL0, PrefixTexL1)
			w.fs.RegisterMetrics(w.reg, PrefixFS)
			w.mem.RegisterMetrics(w.reg, PrefixMem)
			g.workers = append(g.workers, w)
		}
	}
	// The backbuffer is surface zero; off-screen render targets join
	// rtSurfs as CreateRenderTarget materializes them.
	g.back = &surface{name: "back", w: cfg.Width, h: cfg.Height, zbuf: g.zbuf, target: g.target}
	for _, w := range g.workers {
		g.back.wz = append(g.back.wz, w.zbuf)
		g.back.wt = append(g.back.wt, w.target)
	}
	if cfg.TileWorkers > 1 {
		g.back.initBuckets(cfg.TileBucketBlocks)
	}
	g.cur = g.back
	g.rtByRT = map[*gfxapi.RenderTarget]*surface{}
	if cfg.Trace != nil {
		g.gt = newGPUTracer(cfg.Trace, cfg.TraceProcess, len(g.workers))
		g.serial.clk = &g.gt.serial
		for i, w := range g.workers {
			w.clk = &g.gt.worker[i]
		}
	}
	return g
}

// Target exposes the render target (for image inspection).
func (g *GPU) Target() *rop.Target { return g.target }

// ZBuffer exposes the depth/stencil buffer (for inspection).
func (g *GPU) ZBuffer() *zst.Buffer { return g.zbuf }

// Frames returns the completed per-frame statistics.
func (g *GPU) Frames() []FrameStats { return g.frames }

// cpBytesPerDraw approximates the command processor's fetch of one draw
// packet (command header plus state deltas).
const cpBytesPerDraw = 512

// zeroColors feeds WriteQuad for quads that skip shading because their
// color writes are masked off.
var zeroColors [4]gmath.Vec4

// emitCtx is the serial path's QuadEmitter: the per-draw state is
// stored by value on the GPU so the hot loop allocates neither a
// closure nor escaping state.
type emitCtx struct {
	g        *GPU
	fs       *shader.Program
	zstate   zst.State
	ropState rop.State
	earlyZ   bool
	front    bool
}

// EmitQuad routes one rasterized quad through the serial backend.
func (e *emitCtx) EmitQuad(q *rast.Quad) {
	e.g.serial.processQuad(q, e.fs, &e.zstate, &e.ropState, e.earlyZ, e.front)
}

// Execute runs one draw call through the whole pipeline.
func (g *GPU) Execute(dc *gfxapi.DrawCall) {
	// Load the unified constant file into both shader stages.
	g.vsMachine.Consts = dc.Consts
	g.fsMachine.Consts = dc.Consts

	// Bind textures.
	for unit, b := range dc.State.Tex {
		if b.Tex != nil {
			g.texUnit.Bind(unit, b.Tex, b.State)
		}
	}

	// Command processor fetch.
	g.Mem.Read(mem.ClientCP, cpBytesPerDraw)

	zstate := dc.State.Z
	if !g.Cfg.HZ {
		zstate.HZ = false
	}
	// Early z is legal when shading cannot change the outcome of the
	// depth test: no KIL (ATTILA's alpha test) in the fragment program.
	earlyZ := !dc.FS.UsesKill()

	gcfg := geom.Config{
		ViewportW: g.cur.w, ViewportH: g.cur.h, Cull: dc.State.Cull,
	}
	var drawStart, mark int64
	if g.gt != nil {
		g.gt.draws++
		drawStart = obsv.Nanotime()
		mark = drawStart
	}
	tris, _ := g.geom.Draw(dc.VB, dc.IB, dc.Prim, dc.VS, gcfg)
	if g.gt != nil {
		g.gt.serial.lap(stGeom, &mark)
	}

	rcfg := rast.Config{Width: g.cur.w, Height: g.cur.h}
	if len(g.workers) > 0 {
		g.executeParallel(tris, dc, rcfg, &zstate, earlyZ, drawStart)
		return
	}

	var pre stageClock
	if g.gt != nil {
		pre = g.gt.serial
	}
	g.emit = emitCtx{g: g, fs: dc.FS, zstate: zstate, ropState: dc.State.Rop, earlyZ: earlyZ}
	var setup rast.SetupTri
	for i := range tris {
		tri := &tris[i]
		if !rast.SetupInto(tri, &setup) {
			continue
		}
		g.emit.front = tri.FrontFacing
		g.rast.RasterizeTo(&setup, rcfg, &g.emit)
	}
	if g.gt != nil {
		g.gt.finishSerialDraw(pre, drawStart, mark, len(tris))
	}
}

// binner is the parallel path's QuadEmitter: it copies each rasterized
// quad into the bucket of the 64x8-pixel block run that owns the quad,
// in submission order. Buckets are handed to workers wholesale after
// rasterization, so binning itself never touches worker state.
type binner struct {
	g     *GPU
	front bool
}

// EmitQuad bins one quad to its bucket.
func (bn *binner) EmitQuad(q *rast.Quad) {
	g := bn.g
	s := g.cur
	// Quads are 2x2 at even coordinates, so a quad never straddles an
	// 8x8 block; the top-left pixel identifies the bucket.
	gi := (q.Y/tileDim)*s.groupsX + q.X/s.bucketPx
	b := &s.buckets[gi]
	if len(*b) == 0 {
		g.touched = append(g.touched, int32(gi))
	}
	*b = append(*b, quadWork{q: *q, front: bn.front})
}

// assignBuckets distributes this draw's non-empty buckets over the
// workers with greedy longest-processing-time scheduling: buckets
// sorted by quad count (descending, bucket index breaking ties) each go
// to the least-loaded worker so far. The assignment is deterministic,
// and because the per-draw barrier means ownership only has to be
// stable within one draw, it can follow the load of every draw
// individually — round-robin block ownership left workers idle whenever
// the draw's coverage was spatially clustered.
func (g *GPU) assignBuckets() {
	buckets := g.cur.buckets
	g.order = append(g.order[:0], g.touched...)
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		la, lb := len(buckets[a]), len(buckets[b])
		if la != lb {
			return la > lb
		}
		return a < b
	})
	for i := range g.loads {
		g.loads[i] = 0
	}
	for _, w := range g.workers {
		w.groups = w.groups[:0]
		w.quads = 0
	}
	for _, gi := range g.order {
		wi := 0
		for i := 1; i < len(g.loads); i++ {
			if g.loads[i] < g.loads[wi] {
				wi = i
			}
		}
		w := g.workers[wi]
		w.groups = append(w.groups, gi)
		n := len(buckets[gi])
		w.quads += n
		g.loads[wi] += n
	}
	// Workers drain their buckets in screen order: within one draw the
	// buckets are disjoint block sets, so any order is exact, and screen
	// order keeps the worker's private texture/z cache shards coherent
	// with the rasterizer's traversal.
	for _, w := range g.workers {
		slices.Sort(w.groups)
	}
}

// executeParallel runs the draw's fragment backend tile-parallel:
// serial setup + binning into buckets, load-aware bucket assignment,
// then one goroutine per worker draining its buckets in submission
// order. The per-draw barrier keeps Clear and EndFrame (main-thread
// operations) trivially safe.
func (g *GPU) executeParallel(tris []geom.Triangle, dc *gfxapi.DrawCall,
	rcfg rast.Config, zstate *zst.State, earlyZ bool, drawStart int64) {

	for _, w := range g.workers {
		w.fs.Consts = dc.Consts
		for unit, b := range dc.State.Tex {
			if b.Tex != nil {
				w.tex.Bind(unit, b.Tex, b.State)
			}
		}
	}

	// Setups must outlive binning (queued quads point into them), so
	// they live in a per-draw scratch slice reused across draws. Stale
	// pointers into an outgrown backing array stay valid: setups are
	// never mutated after SetupInto.
	var binStart int64
	if g.gt != nil {
		binStart = obsv.Nanotime()
	}
	g.setupBuf = g.setupBuf[:0]
	bn := binner{g: g}
	for i := range tris {
		tri := &tris[i]
		if len(g.setupBuf) == cap(g.setupBuf) {
			g.setupBuf = append(g.setupBuf, rast.SetupTri{})
		} else {
			g.setupBuf = g.setupBuf[:len(g.setupBuf)+1]
		}
		s := &g.setupBuf[len(g.setupBuf)-1]
		if !rast.SetupInto(tri, s) {
			g.setupBuf = g.setupBuf[:len(g.setupBuf)-1]
			continue
		}
		bn.front = tri.FrontFacing
		g.rast.RasterizeTo(s, rcfg, &bn)
	}
	g.assignBuckets()
	sampled := false
	if g.gt != nil {
		g.gt.serial.lap(stRast, &binStart)
		sampled = g.gt.tr.Sampled(g.gt.draws)
	}

	var wg sync.WaitGroup
	for wi, w := range g.workers {
		if len(w.groups) == 0 {
			continue
		}
		wg.Add(1)
		go func(wi int, w *tileWorker) {
			defer wg.Done()
			var sp obsv.Span
			if sampled {
				sp = g.gt.tr.Begin(g.gt.workerTk[wi], "drain")
			}
			ropState := dc.State.Rop
			zs := *zstate
			for _, gi := range w.groups {
				b := g.cur.buckets[gi]
				for i := range b {
					qw := &b[i]
					w.processQuad(&qw.q, dc.FS, &zs, &ropState, earlyZ, qw.front)
				}
			}
			if sampled {
				sp.EndArgs(map[string]any{
					"quads": int64(w.quads), "buckets": int64(len(w.groups)),
				})
			}
		}(wi, w)
	}
	wg.Wait()
	for _, gi := range g.touched {
		g.cur.buckets[gi] = g.cur.buckets[gi][:0]
	}
	g.touched = g.touched[:0]
	if sampled {
		now := obsv.Nanotime()
		g.gt.tr.Emit(g.gt.drawTk, "draw", drawStart, now-drawStart,
			map[string]any{"tris": int64(len(tris)), "draw": int64(g.gt.draws)})
	}
}

// processQuad runs one quad through HZ, z & stencil, shading and the
// color stage of this pipe.
func (p *pipe) processQuad(q *rast.Quad, fs *shader.Program,
	zstate *zst.State, ropState *rop.State, earlyZ, frontFacing bool) {

	mask := q.Mask
	clk := p.clk
	var mark int64
	if clk != nil {
		mark = obsv.Nanotime()
	}

	// Hierarchical Z runs before shading regardless of early/late z.
	if !p.zbuf.HZTestQuad(q, zstate) {
		p.zbuf.RecordHZKill(q, mask)
		if clk != nil {
			clk.lap(stZST, &mark)
		}
		return
	}

	if earlyZ {
		mask = p.zbuf.TestQuad(q, mask, zstate, frontFacing)
		if clk != nil {
			clk.lap(stZST, &mark)
		}
		if mask == 0 {
			return
		}
		if ropState.MaskedOff() {
			// Color writes are masked (z prepass, stencil volumes): the
			// quad reaches the color stage without being shaded, where
			// it is dropped — the paper's Table IX "Color Mask" bucket.
			p.target.WriteQuad(q, mask, &zeroColors, ropState)
			if clk != nil {
				clk.lap(stRop, &mark)
			}
			return
		}
		live, colors := p.frag.ShadeQuad(q, mask, fs)
		if clk != nil {
			clk.lap(stFrag, &mark)
		}
		if live == 0 {
			return
		}
		p.target.WriteQuad(q, live, colors, ropState)
		if clk != nil {
			clk.lap(stRop, &mark)
		}
		return
	}

	// Late z: shade first (the program may kill), then test.
	live, colors := p.frag.ShadeQuad(q, mask, fs)
	if clk != nil {
		clk.lap(stFrag, &mark)
	}
	if live == 0 {
		return
	}
	live = p.zbuf.TestQuad(q, live, zstate, frontFacing)
	if clk != nil {
		clk.lap(stZST, &mark)
	}
	if live == 0 {
		return
	}
	p.target.WriteQuad(q, live, colors, ropState)
	if clk != nil {
		clk.lap(stRop, &mark)
	}
}

// Clear fast-clears the requested buffers of the bound surface.
func (g *GPU) Clear(op gfxapi.ClearOp) {
	g.Mem.Read(mem.ClientCP, 64)
	switch {
	case op.ClearDepth:
		g.cur.zbuf.Clear(op.Z, op.Stencil)
	case op.ClearStencil:
		g.cur.zbuf.ClearStencil(op.Stencil)
	}
	if op.ClearColor {
		g.cur.target.Clear(op.Color)
	}
}

// EndFrame flushes caches, scans out the frame and snapshots per-frame
// statistics. Shard caches flush in worker order, so the merged
// counters are deterministic for a fixed worker count.
func (g *GPU) EndFrame() {
	var mark int64
	if g.gt != nil {
		mark = obsv.Nanotime()
	}
	// Z flushes then color flushes (each shard flushes into its own mem
	// counters, so the split loops keep the merged totals identical to
	// the interleaved order) — the split lets the stage clocks charge
	// flush time to the right stage.
	g.zbuf.FlushCache()
	for _, wz := range g.back.wz {
		wz.FlushCache()
	}
	if g.gt != nil {
		g.gt.serial.lap(stZST, &mark)
	}
	g.target.FlushCache()
	for _, wt := range g.back.wt {
		wt.FlushCache()
	}
	g.target.ScanOut()
	if g.gt != nil {
		g.gt.serial.lap(stRop, &mark)
	}

	cur := g.MetricsSnapshot()
	diff := cur.Diff(g.prev)
	g.frames = append(g.frames, frameStatsFromSnapshot(diff))
	g.prev = cur
	g.published.Store(&cur)
	if g.gt != nil {
		g.gt.endFrame(diff)
	}
}

// MetricsSnapshot captures every stage counter since construction as
// one snapshot, merging the tile-worker shards into the serial stages'
// counters. This is the machine-readable view behind both FrameStats
// and the `attilasim -metrics` export.
func (g *GPU) MetricsSnapshot() metrics.Snapshot {
	s := g.reg.Snapshot()
	for _, w := range g.workers {
		s.Merge(w.reg.Snapshot())
	}
	// Off-screen pass activity folds into the same counter names, so
	// aggregate tables and bandwidth projections see multi-pass traffic
	// without any schema change.
	for _, rs := range g.rtSurfs {
		s.Merge(rs.reg.Snapshot())
		for _, wr := range rs.wreg {
			s.Merge(wr.Snapshot())
		}
	}
	return s
}

// PassSnapshots returns one merged counter snapshot per off-screen
// render target, labeled pass=<name>, in creation order — the per-pass
// dimension of the z/color cache and bandwidth metrics. Nil when the
// workload never left the backbuffer.
func (g *GPU) PassSnapshots() []metrics.Snapshot {
	if len(g.rtSurfs) == 0 {
		return nil
	}
	out := make([]metrics.Snapshot, 0, len(g.rtSurfs))
	for _, rs := range g.rtSurfs {
		s := rs.reg.Snapshot()
		for _, wr := range rs.wreg {
			s.Merge(wr.Snapshot())
		}
		out = append(out, s.WithLabels("pass", rs.name))
	}
	return out
}

// CreateRenderTarget materializes the off-screen surface for rt: a
// color target and depth buffer at rt's allocated addresses, tile-worker
// shards, and per-surface registries binding the standard z/color
// counter names (so pass snapshots Merge into the aggregate).
func (g *GPU) CreateRenderTarget(rt *gfxapi.RenderTarget) {
	g.ensureSurface(rt)
}

// SetRenderTarget swaps the serial pipe and every worker pipe onto the
// surface backing rt (nil selects the backbuffer). Draws and clears
// between here and the next swap land in that surface.
func (g *GPU) SetRenderTarget(rt *gfxapi.RenderTarget) {
	s := g.back
	if rt != nil {
		s = g.ensureSurface(rt)
	}
	g.cur = s
	g.serial.zbuf, g.serial.target = s.zbuf, s.target
	for i, w := range g.workers {
		w.pipe.zbuf, w.pipe.target = s.wz[i], s.wt[i]
	}
}

// ResolveRenderTarget flushes the pass's dirty cache lines (serial shard
// first, then workers in order, the EndFrame discipline) and returns the
// surface's pixels quantized to RGBA8. The resolve engine's traffic —
// one color-plane read, one texture-footprint write — is charged to the
// shared memory controller.
func (g *GPU) ResolveRenderTarget(rt *gfxapi.RenderTarget) []texture.RGBA {
	s := g.ensureSurface(rt)
	s.zbuf.FlushCache()
	for _, wz := range s.wz {
		wz.FlushCache()
	}
	s.target.FlushCache()
	for _, wt := range s.wt {
		wt.FlushCache()
	}
	g.Mem.Read(mem.ClientColor, int64(s.w*s.h*4))
	if rt.Tex != nil {
		g.Mem.Write(mem.ClientTexture, int64(rt.Tex.TotalBytes()))
	}
	out := make([]texture.RGBA, s.w*s.h)
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			c := s.target.At(x, y).Clamp01()
			out[y*s.w+x] = texture.RGBA{
				R: uint8(c.X*255 + 0.5),
				G: uint8(c.Y*255 + 0.5),
				B: uint8(c.Z*255 + 0.5),
				A: uint8(c.W*255 + 0.5),
			}
		}
	}
	return out
}

// ensureSurface returns the surface for rt, building it on first use.
func (g *GPU) ensureSurface(rt *gfxapi.RenderTarget) *surface {
	if s, ok := g.rtByRT[rt]; ok {
		return s
	}
	s := &surface{name: rt.Name, w: rt.W, h: rt.H}
	s.zbuf = zst.NewBufferCache(rt.W, rt.H, rt.ZBaseAddr, g.Mem, g.Cfg.ZCache)
	s.target = rop.NewTargetCache(rt.W, rt.H, rt.BaseAddr, g.Mem, g.Cfg.ColorCache)
	// Flags must be final before shards copy them at creation.
	s.zbuf.Compression = g.Cfg.ZCompression
	s.zbuf.FastClear = g.Cfg.FastClear
	s.target.Compression = g.Cfg.ColorCompression
	s.target.FastClear = g.Cfg.FastClear
	s.reg = metrics.NewRegistry()
	s.zbuf.RegisterMetrics(s.reg, PrefixZSt, PrefixZCache)
	s.target.RegisterMetrics(s.reg, PrefixRop, PrefixColorCache)
	for _, w := range g.workers {
		wz := s.zbuf.NewShard(w.mem)
		wt := s.target.NewShard(w.mem)
		wr := metrics.NewRegistry()
		wz.RegisterMetrics(wr, PrefixZSt, PrefixZCache)
		wt.RegisterMetrics(wr, PrefixRop, PrefixColorCache)
		s.wz = append(s.wz, wz)
		s.wt = append(s.wt, wt)
		s.wreg = append(s.wreg, wr)
	}
	if g.Cfg.TileWorkers > 1 {
		s.initBuckets(g.Cfg.TileBucketBlocks)
	}
	g.rtSurfs = append(g.rtSurfs, s)
	g.rtByRT[rt] = s
	return s
}

// ShardSnapshots returns the per-worker shard snapshots labeled
// shard=0..N-1 (nil for the serial pipeline) — the per-worker
// granularity of the metrics export.
func (g *GPU) ShardSnapshots() []metrics.Snapshot {
	if len(g.workers) == 0 {
		return nil
	}
	out := make([]metrics.Snapshot, len(g.workers))
	for i, w := range g.workers {
		out[i] = w.reg.Snapshot().WithLabels("shard", fmt.Sprintf("%d", i))
	}
	return out
}
