package gpu

import (
	"gpuchar/internal/cache"
	"gpuchar/internal/fragment"
	"gpuchar/internal/geom"
	"gpuchar/internal/mem"
	"gpuchar/internal/rast"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// diffStats subtracts two cumulative snapshots to produce one frame's
// activity.
func diffStats(now, before FrameStats) FrameStats {
	return FrameStats{
		Geom: geom.Stats{
			Indices:            now.Geom.Indices - before.Geom.Indices,
			VerticesShaded:     now.Geom.VerticesShaded - before.Geom.VerticesShaded,
			TrianglesAssembled: now.Geom.TrianglesAssembled - before.Geom.TrianglesAssembled,
			TrianglesClipped:   now.Geom.TrianglesClipped - before.Geom.TrianglesClipped,
			TrianglesCulled:    now.Geom.TrianglesCulled - before.Geom.TrianglesCulled,
			TrianglesTraversed: now.Geom.TrianglesTraversed - before.Geom.TrianglesTraversed,
		},
		Rast: rast.Stats{
			TrianglesSetup: now.Rast.TrianglesSetup - before.Rast.TrianglesSetup,
			QuadsEmitted:   now.Rast.QuadsEmitted - before.Rast.QuadsEmitted,
			Fragments:      now.Rast.Fragments - before.Rast.Fragments,
			CompleteQuads:  now.Rast.CompleteQuads - before.Rast.CompleteQuads,
		},
		ZSt: zst.Stats{
			QuadsIn:          now.ZSt.QuadsIn - before.ZSt.QuadsIn,
			QuadsKilledHZ:    now.ZSt.QuadsKilledHZ - before.ZSt.QuadsKilledHZ,
			QuadsKilled:      now.ZSt.QuadsKilled - before.ZSt.QuadsKilled,
			QuadsOut:         now.ZSt.QuadsOut - before.ZSt.QuadsOut,
			CompleteOut:      now.ZSt.CompleteOut - before.ZSt.CompleteOut,
			FragmentsIn:      now.ZSt.FragmentsIn - before.ZSt.FragmentsIn,
			FragmentsOut:     now.ZSt.FragmentsOut - before.ZSt.FragmentsOut,
			ZKilledFragments: now.ZSt.ZKilledFragments - before.ZSt.ZKilledFragments,
		},
		Frag: fragment.Stats{
			QuadsIn:          now.Frag.QuadsIn - before.Frag.QuadsIn,
			QuadsShaded:      now.Frag.QuadsShaded - before.Frag.QuadsShaded,
			QuadsKilledAlpha: now.Frag.QuadsKilledAlpha - before.Frag.QuadsKilledAlpha,
			FragmentsShaded:  now.Frag.FragmentsShaded - before.Frag.FragmentsShaded,
			FragmentsKilled:  now.Frag.FragmentsKilled - before.Frag.FragmentsKilled,
			QuadsOut:         now.Frag.QuadsOut - before.Frag.QuadsOut,
			CompleteOut:      now.Frag.CompleteOut - before.Frag.CompleteOut,
		},
		Rop: rop.Stats{
			QuadsIn:     now.Rop.QuadsIn - before.Rop.QuadsIn,
			QuadsMasked: now.Rop.QuadsMasked - before.Rop.QuadsMasked,
			QuadsOut:    now.Rop.QuadsOut - before.Rop.QuadsOut,
			Fragments:   now.Rop.Fragments - before.Rop.Fragments,
		},
		Tex: texture.SampleStats{
			Requests:        now.Tex.Requests - before.Tex.Requests,
			BilinearSamples: now.Tex.BilinearSamples - before.Tex.BilinearSamples,
			TexelFetches:    now.Tex.TexelFetches - before.Tex.TexelFetches,
		},

		VCache:     subCache(now.VCache, before.VCache),
		ZCache:     subCache(now.ZCache, before.ZCache),
		TexL0:      subCache(now.TexL0, before.TexL0),
		TexL1:      subCache(now.TexL1, before.TexL1),
		ColorCache: subCache(now.ColorCache, before.ColorCache),

		VS:  subExec(now.VS, before.VS),
		FS:  subExec(now.FS, before.FS),
		Mem: mem.Delta(now.Mem, before.Mem),
	}
}

func subCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:           a.Hits - b.Hits,
		Misses:         a.Misses - b.Misses,
		FillBytes:      a.FillBytes - b.FillBytes,
		WritebackBytes: a.WritebackBytes - b.WritebackBytes,
	}
}

func subExec(a, b shader.ExecStats) shader.ExecStats {
	return shader.ExecStats{
		Invocations:     a.Invocations - b.Invocations,
		Instructions:    a.Instructions - b.Instructions,
		TexInstructions: a.TexInstructions - b.TexInstructions,
		Kills:           a.Kills - b.Kills,
	}
}

// Accumulate adds b's counters into a — used to aggregate per-frame
// statistics over a run.
func (a *FrameStats) Accumulate(b FrameStats) {
	a.Geom.Add(b.Geom)
	a.Rast.Add(b.Rast)
	a.ZSt.Add(b.ZSt)
	a.Frag.Add(b.Frag)
	a.Rop.Add(b.Rop)
	a.Tex.Requests += b.Tex.Requests
	a.Tex.BilinearSamples += b.Tex.BilinearSamples
	a.Tex.TexelFetches += b.Tex.TexelFetches
	a.VCache = addCache(a.VCache, b.VCache)
	a.ZCache = addCache(a.ZCache, b.ZCache)
	a.TexL0 = addCache(a.TexL0, b.TexL0)
	a.TexL1 = addCache(a.TexL1, b.TexL1)
	a.ColorCache = addCache(a.ColorCache, b.ColorCache)
	a.VS.Add(b.VS)
	a.FS.Add(b.FS)
	for c := 0; c < int(mem.NumClients); c++ {
		a.Mem[c].Add(b.Mem[c])
	}
}

func addCache(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:           a.Hits + b.Hits,
		Misses:         a.Misses + b.Misses,
		FillBytes:      a.FillBytes + b.FillBytes,
		WritebackBytes: a.WritebackBytes + b.WritebackBytes,
	}
}
