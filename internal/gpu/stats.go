package gpu

import (
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
)

// Counter name prefixes shared by the live stage registries (wired in
// New) and the FrameStats registry below. Keeping them as constants in
// one place is what guarantees the two registries bind identical names,
// so snapshots taken from a running GPU materialize losslessly into
// FrameStats values and vice versa (pinned by TestLiveRegistryMatchesFrameStats).
const (
	PrefixGeom       = "geom"
	PrefixRast       = "rast"
	PrefixZSt        = "zst"
	PrefixFrag       = "frag"
	PrefixRop        = "rop"
	PrefixTex        = "tex"
	PrefixVCache     = "cache/vertex"
	PrefixZCache     = "cache/z"
	PrefixTexL0      = "cache/tex_l0"
	PrefixTexL1      = "cache/tex_l1"
	PrefixColorCache = "cache/color"
	PrefixVS         = "shader/vs"
	PrefixFS         = "shader/fs"
	PrefixMem        = "mem"
)

// register binds every counter of f into r, using the same per-stage
// Register methods (and the same prefixes) as the live GPU registries.
func (f *FrameStats) register(r *metrics.Registry) {
	f.Geom.Register(r, PrefixGeom)
	f.Rast.Register(r, PrefixRast)
	f.ZSt.Register(r, PrefixZSt)
	f.Frag.Register(r, PrefixFrag)
	f.Rop.Register(r, PrefixRop)
	f.Tex.Register(r, PrefixTex)
	f.VCache.Register(r, PrefixVCache)
	f.ZCache.Register(r, PrefixZCache)
	f.TexL0.Register(r, PrefixTexL0)
	f.TexL1.Register(r, PrefixTexL1)
	f.ColorCache.Register(r, PrefixColorCache)
	f.VS.Register(r, PrefixVS)
	f.FS.Register(r, PrefixFS)
	for c := mem.Client(0); c < mem.NumClients; c++ {
		f.Mem[c].Register(r, PrefixMem+"/"+c.Slug())
	}
}

// MetricsSnapshot captures every counter of f as a metrics snapshot,
// the machine-readable form the exporters consume.
func (f *FrameStats) MetricsSnapshot() metrics.Snapshot {
	r := metrics.NewRegistry()
	f.register(r)
	return r.Snapshot()
}

// FrameStatsFromSnapshot materializes a snapshot back into the struct
// form the report tables read — the inverse of MetricsSnapshot, used by
// the serve layer to rebuild checkpointed frames. Counters in s with no
// FrameStats field are dropped.
func FrameStatsFromSnapshot(s metrics.Snapshot) FrameStats {
	return frameStatsFromSnapshot(s)
}

// frameStatsFromSnapshot materializes a snapshot back into the struct
// form the report tables read. Counters in s with no FrameStats field
// are dropped; the exhaustiveness test pins that the live GPU registry
// produces none.
func frameStatsFromSnapshot(s metrics.Snapshot) FrameStats {
	var f FrameStats
	r := metrics.NewRegistry()
	f.register(r)
	r.Load(s)
	return f
}

// diffStats subtracts two cumulative snapshots to produce one frame's
// activity.
func diffStats(now, before FrameStats) FrameStats {
	return frameStatsFromSnapshot(now.MetricsSnapshot().Diff(before.MetricsSnapshot()))
}

// Accumulate adds b's counters into a — used to aggregate per-frame
// statistics over a run.
func (a *FrameStats) Accumulate(b FrameStats) {
	s := a.MetricsSnapshot()
	s.Merge(b.MetricsSnapshot())
	*a = frameStatsFromSnapshot(s)
}
