package gpu

import (
	"reflect"
	"testing"
)

// fillLeaves assigns f(i) to the i-th integer leaf of v (in field
// order) and returns the number of leaves visited. It panics on any
// leaf kind walkStats cannot handle, so a FrameStats field that the
// snapshot arithmetic would silently drop fails this test instead.
func fillLeaves(v reflect.Value, n *int, f func(i int) int64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillLeaves(v.Field(i), n, f)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillLeaves(v.Index(i), n, f)
		}
	default:
		v.SetInt(f(*n))
		*n++
	}
}

// leafValues flattens every integer leaf of v in field order.
func leafValues(v reflect.Value, out *[]int64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			leafValues(v.Field(i), out)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			leafValues(v.Index(i), out)
		}
	default:
		*out = append(*out, v.Int())
	}
}

// TestFrameStatsArithmeticCoversEveryField gives every counter in
// FrameStats a distinct value and checks that diffStats and Accumulate
// transform each leaf independently — so a stage can add a counter
// without touching the snapshot arithmetic, and shard merging cannot
// drift from the per-frame diff.
func TestFrameStatsArithmeticCoversEveryField(t *testing.T) {
	var now, before FrameStats
	n := 0
	fillLeaves(reflect.ValueOf(&now).Elem(), &n, func(i int) int64 { return 100_000 + 7*int64(i) })
	leaves := n
	if leaves < 40 {
		t.Fatalf("FrameStats has only %d counters; reflection walk is broken", leaves)
	}
	n = 0
	fillLeaves(reflect.ValueOf(&before).Elem(), &n, func(i int) int64 { return 3 * int64(i) })

	diff := diffStats(now, before)
	var got []int64
	leafValues(reflect.ValueOf(&diff).Elem(), &got)
	if len(got) != leaves {
		t.Fatalf("diff visited %d leaves, want %d", len(got), leaves)
	}
	for i, v := range got {
		want := 100_000 + 7*int64(i) - 3*int64(i)
		if v != want {
			t.Errorf("diff leaf %d = %d, want %d", i, v, want)
		}
	}

	acc := before
	acc.Accumulate(diff)
	var accLeaves []int64
	leafValues(reflect.ValueOf(&acc).Elem(), &accLeaves)
	for i, v := range accLeaves {
		want := 100_000 + 7*int64(i)
		if v != want {
			t.Errorf("accumulate leaf %d = %d, want %d", i, v, want)
		}
	}
}

// TestDiffStatsMatchesCumulativeShape renders nothing but checks that a
// zero diff of a live GPU's cumulative snapshot is exactly zero — the
// identity that EndFrame's bookkeeping depends on.
func TestDiffStatsMatchesCumulativeShape(t *testing.T) {
	g := New(R520Config(64, 64))
	cur := g.cumulative()
	d := diffStats(cur, cur)
	var zeros []int64
	leafValues(reflect.ValueOf(&d).Elem(), &zeros)
	for i, v := range zeros {
		if v != 0 {
			t.Fatalf("self-diff leaf %d = %d, want 0", i, v)
		}
	}
}
