package cache

import (
	"fmt"

	"gpuchar/internal/metrics"
)

// VertexCache models the post-transform vertex cache of a modern GPU:
// a small FIFO of recently shaded vertex indices. When an index hits, the
// already-transformed vertex is reused and the vertex shader run is
// skipped.
//
// The FIFO (rather than LRU) policy matches real hardware and is what the
// paper's Figure 5 measures: for a well-ordered indexed triangle list each
// triangle shares two vertices with its neighbourhood, so the steady-state
// hit rate approaches the theoretical 66% bound (one miss per triangle,
// three index references per triangle).
type VertexCache struct {
	entries []uint32
	pos     map[uint32]int // index -> slot, for O(1) lookup
	head    int
	size    int
	stats   Stats
}

// NewVertexCache creates a FIFO post-transform cache holding n vertices.
// Real GPUs of the paper's era used 16-32 entries; n must be positive or
// an error is returned (the size reaches here from CLI flags and
// ablation sweeps, i.e. runtime input).
func NewVertexCache(n int) (*VertexCache, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cache: vertex cache size %d must be positive", n)
	}
	return &VertexCache{
		entries: make([]uint32, n),
		pos:     make(map[uint32]int, n),
		size:    0,
	}, nil
}

// MustVertexCache is NewVertexCache for statically known sizes; it
// panics on error.
func MustVertexCache(n int) *VertexCache {
	vc, err := NewVertexCache(n)
	if err != nil {
		panic(err)
	}
	return vc
}

// Lookup consults the cache for vertex index idx and inserts it on a miss,
// evicting the oldest entry when full. It returns true on a hit.
func (vc *VertexCache) Lookup(idx uint32) bool {
	if _, ok := vc.pos[idx]; ok {
		vc.stats.Hits++
		return true
	}
	vc.stats.Misses++
	if vc.size == len(vc.entries) {
		old := vc.entries[vc.head]
		delete(vc.pos, old)
	} else {
		vc.size++
	}
	vc.entries[vc.head] = idx
	vc.pos[idx] = vc.head
	vc.head = (vc.head + 1) % len(vc.entries)
	return false
}

// Clear empties the cache, as happens between draw batches (a batch
// boundary changes vertex buffers and shader state, invalidating any
// transformed results).
func (vc *VertexCache) Clear() {
	vc.head = 0
	vc.size = 0
	for k := range vc.pos {
		delete(vc.pos, k)
	}
}

// Stats returns a snapshot of the hit/miss counters.
func (vc *VertexCache) Stats() Stats { return vc.stats }

// ResetStats clears the counters but keeps the cache contents.
func (vc *VertexCache) ResetStats() { vc.stats = Stats{} }

// RegisterMetrics binds the cache's live counters into r under prefix.
func (vc *VertexCache) RegisterMetrics(r *metrics.Registry, prefix string) {
	vc.stats.Register(r, prefix)
}

// Capacity returns the number of entries the cache can hold.
func (vc *VertexCache) Capacity() int { return len(vc.entries) }
