package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigString(t *testing.T) {
	c := Config{Ways: 64, Sets: 1, LineBytes: 256}
	if c.String() != "64w x 256B" {
		t.Errorf("String = %q", c.String())
	}
	c2 := Config{Ways: 16, Sets: 16, LineBytes: 64}
	if c2.String() != "16w x 16s x 64B" {
		t.Errorf("String = %q", c2.String())
	}
	if c.Size() != 64*256 {
		t.Errorf("Size = %d", c.Size())
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Ways: 0, Sets: 1, LineBytes: 64},
		{Ways: 1, Sets: 0, LineBytes: 64},
		{Ways: 1, Sets: 1, LineBytes: 0},
		{Ways: 1, Sets: 1, LineBytes: 48}, // not a power of two
	}
	for _, cfg := range cases {
		if c, err := New(cfg); err == nil || c != nil {
			t.Errorf("New(%+v) = %v, %v; want nil, error", cfg, c, err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustNew(%+v) did not panic", cfg)
				}
			}()
			MustNew(cfg)
		}()
	}
}

func TestCacheHitOnRepeat(t *testing.T) {
	c := MustNew(Config{Ways: 2, Sets: 4, LineBytes: 64})
	if c.Access(0x100, false) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100, false) {
		t.Error("second access should hit")
	}
	// Same line, different byte.
	if !c.Access(0x13F, false) {
		t.Error("access within same line should hit")
	}
	// Next line misses.
	if c.Access(0x140, false) {
		t.Error("next line should miss")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("hits=%d misses=%d", s.Hits, s.Misses)
	}
	if s.FillBytes != 128 {
		t.Errorf("FillBytes = %d, want 128", s.FillBytes)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct construction: 1 set, 2 ways, 64B lines. Three distinct lines
	// force an eviction of the least recently used.
	c := MustNew(Config{Ways: 2, Sets: 1, LineBytes: 64})
	c.Access(0*64, false) // A
	c.Access(1*64, false) // B
	c.Access(0*64, false) // touch A; B becomes LRU
	c.Access(2*64, false) // C evicts B
	if !c.Access(0*64, false) {
		t.Error("A should still be resident")
	}
	if c.Access(1*64, false) {
		t.Error("B should have been evicted")
	}
}

func TestCacheWriteback(t *testing.T) {
	c := MustNew(Config{Ways: 1, Sets: 1, LineBytes: 64})
	c.Access(0, true)  // dirty A
	c.Access(64, true) // evicts dirty A -> writeback
	s := c.Stats()
	if s.WritebackBytes != 64 {
		t.Errorf("WritebackBytes = %d, want 64", s.WritebackBytes)
	}
	c.Flush() // B is dirty -> writeback
	if c.Stats().WritebackBytes != 128 {
		t.Errorf("after flush WritebackBytes = %d, want 128", c.Stats().WritebackBytes)
	}
	// After flush everything misses again.
	if c.Access(64, false) {
		t.Error("flushed line should miss")
	}
}

func TestCacheInvalidateDropsDirty(t *testing.T) {
	c := MustNew(Config{Ways: 1, Sets: 1, LineBytes: 64})
	c.Access(0, true)
	c.Invalidate()
	if c.Stats().WritebackBytes != 0 {
		t.Error("Invalidate should not write back")
	}
	if c.Access(0, false) {
		t.Error("invalidated line should miss")
	}
}

func TestCacheHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("idle hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
	if s.Accesses() != 4 {
		t.Errorf("accesses = %d", s.Accesses())
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := MustNew(Config{Ways: 2, Sets: 2, LineBytes: 64})
	c.Access(0, false)
	c.ResetStats()
	if c.Stats().Accesses() != 0 {
		t.Error("stats not reset")
	}
	if !c.Access(0, false) {
		t.Error("contents should survive ResetStats")
	}
}

func TestVertexCacheSequentialStrip(t *testing.T) {
	// A triangle-strip-ordered list: triangle i uses indices (i, i+1, i+2).
	// After warm-up each triangle misses exactly once -> hit rate -> 2/3.
	vc := MustVertexCache(16)
	for tri := 0; tri < 1000; tri++ {
		for k := 0; k < 3; k++ {
			vc.Lookup(uint32(tri + k))
		}
	}
	hr := vc.Stats().HitRate()
	if hr < 0.65 || hr > 0.67 {
		t.Errorf("strip-ordered hit rate = %v, want ~0.666", hr)
	}
}

func TestVertexCacheNoReuse(t *testing.T) {
	vc := MustVertexCache(16)
	for i := uint32(0); i < 300; i++ {
		if vc.Lookup(i * 100) {
			t.Fatal("distinct indices should never hit")
		}
	}
	if vc.Stats().HitRate() != 0 {
		t.Errorf("hit rate = %v", vc.Stats().HitRate())
	}
}

func TestVertexCacheFIFOEviction(t *testing.T) {
	vc := MustVertexCache(2)
	vc.Lookup(1)
	vc.Lookup(2)
	vc.Lookup(1) // hit: FIFO does NOT refresh recency
	vc.Lookup(3) // evicts 1 (oldest by insertion)
	if vc.Lookup(1) {
		t.Error("FIFO should have evicted 1 despite the recent hit")
	}
}

func TestVertexCacheClear(t *testing.T) {
	vc := MustVertexCache(4)
	vc.Lookup(7)
	vc.Clear()
	if vc.Lookup(7) {
		t.Error("cleared cache should miss")
	}
	if vc.Capacity() != 4 {
		t.Errorf("capacity = %d", vc.Capacity())
	}
}

func TestVertexCacheRejectsBadSize(t *testing.T) {
	if vc, err := NewVertexCache(0); err == nil || vc != nil {
		t.Errorf("MustVertexCache(0) = %v, %v; want nil, error", vc, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustVertexCache(0) did not panic")
		}
	}()
	MustVertexCache(0)
}

// Property: fills equal misses times line size; a second pass over a
// working set smaller than capacity hits entirely.
func TestQuickCacheConservation(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := MustNew(Config{Ways: 4, Sets: 16, LineBytes: 64})
		for _, a := range addrs {
			c.Access(uint64(a), a%2 == 0)
		}
		s := c.Stats()
		return s.FillBytes == s.Misses*64 && s.Accesses() == int64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSecondPassFullyHits(t *testing.T) {
	c := MustNew(Config{Ways: 4, Sets: 4, LineBytes: 64})
	// Working set: 8 lines, capacity 16 lines.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 8; i++ {
			c.Access(i*64, false)
		}
	}
	s := c.Stats()
	if s.Misses != 8 || s.Hits != 8 {
		t.Errorf("hits=%d misses=%d, want 8/8", s.Hits, s.Misses)
	}
}
