package cache

import (
	"math/rand"
	"testing"
)

// refCache is the original scan-based set-associative LRU model, kept
// verbatim as the oracle for the O(1) Cache: per-access way scan for
// lookup and an age-stamp victim scan preferring invalid lines. The
// production Cache must reproduce its behavior exactly — same hit/miss
// outcomes, same victim choices (observable through write-back traffic)
// and same statistics.
type refLine struct {
	tag   uint64
	valid bool
	dirty bool
	age   uint64
}

type refCache struct {
	cfg       Config
	lines     []refLine
	stamp     uint64
	stats     Stats
	lineShift uint
}

func newRefCache(cfg Config) *refCache {
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &refCache{
		cfg:       cfg,
		lines:     make([]refLine, cfg.Sets*cfg.Ways),
		lineShift: shift,
	}
}

func (c *refCache) Access(addr uint64, write bool) bool {
	lineAddr := addr >> c.lineShift
	c.stamp++
	set := int(lineAddr % uint64(c.cfg.Sets))
	tag := lineAddr / uint64(c.cfg.Sets)
	base := set * c.cfg.Ways

	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			ln.age = c.stamp
			if write {
				ln.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}

	victim := base
	for i := 1; i < c.cfg.Ways; i++ {
		v, cand := &c.lines[victim], &c.lines[base+i]
		if !cand.valid {
			victim = base + i
			break
		}
		if v.valid && cand.age < v.age {
			victim = base + i
		}
	}
	v := &c.lines[victim]
	if v.valid && v.dirty {
		c.stats.WritebackBytes += int64(c.cfg.LineBytes)
	}
	c.stats.Misses++
	c.stats.FillBytes += int64(c.cfg.LineBytes)
	*v = refLine{tag: tag, valid: true, dirty: write, age: c.stamp}
	return false
}

func (c *refCache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.stats.WritebackBytes += int64(c.cfg.LineBytes)
		}
		c.lines[i] = refLine{}
	}
}

func (c *refCache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = refLine{}
	}
}

// TestCacheMatchesReference drives the production cache and the
// reference scan model through long random access sequences over every
// geometry the pipeline uses (plus stress shapes) and demands identical
// outcomes and statistics after every operation.
func TestCacheMatchesReference(t *testing.T) {
	configs := []Config{
		{Ways: 64, Sets: 1, LineBytes: 256}, // z & color caches
		{Ways: 64, Sets: 1, LineBytes: 64},  // texture L0
		{Ways: 16, Sets: 16, LineBytes: 64}, // texture L1
		{Ways: 1, Sets: 8, LineBytes: 32},   // direct-mapped stress
		{Ways: 4, Sets: 3, LineBytes: 16},   // non-power-of-two sets
		{Ways: 2, Sets: 1, LineBytes: 64},   // tiny, eviction-heavy
	}
	for _, cfg := range configs {
		t.Run(cfg.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cfg.Size())))
			got := MustNew(cfg)
			want := newRefCache(cfg)
			// A small address universe forces plenty of conflict misses;
			// scale with capacity so sets overflow their ways.
			universe := uint64(cfg.Size()) * 4
			for op := 0; op < 200000; op++ {
				switch r := rng.Intn(100); {
				case r == 0:
					got.Flush()
					want.Flush()
				case r == 1:
					got.Invalidate()
					want.Invalidate()
				default:
					addr := rng.Uint64() % universe
					write := rng.Intn(3) == 0
					g := got.Access(addr, write)
					w := want.Access(addr, write)
					if g != w {
						t.Fatalf("op %d: Access(%#x, %v) = %v, reference %v",
							op, addr, write, g, w)
					}
				}
				if gs, ws := got.Stats(), want.stats; gs != ws {
					t.Fatalf("op %d: stats diverged: got %+v, reference %+v", op, gs, ws)
				}
			}
		})
	}
}

// TestCacheRepeatAccessFastPath pins the MRU fast path: repeated
// accesses to one line must not disturb LRU order relative to the
// reference model.
func TestCacheRepeatAccessFastPath(t *testing.T) {
	cfg := Config{Ways: 2, Sets: 1, LineBytes: 64}
	got := MustNew(cfg)
	want := newRefCache(cfg)
	seq := []struct {
		addr  uint64
		write bool
	}{
		{0, false}, {64, false}, {64, false}, {64, true}, {0, false},
		{128, false}, // evicts 64 (LRU), not 0
		{64, false}, {0, false}, {128, false},
	}
	for i, s := range seq {
		if g, w := got.Access(s.addr, s.write), want.Access(s.addr, s.write); g != w {
			t.Fatalf("step %d: Access(%#x) = %v, reference %v", i, s.addr, g, w)
		}
	}
	if gs, ws := got.Stats(), want.stats; gs != ws {
		t.Fatalf("stats diverged: got %+v, reference %+v", gs, ws)
	}
}
