// Package cache provides the cache models used across the GPU pipeline:
// a set-associative write-back LRU cache (z & stencil, texture L0/L1 and
// color caches, Table XIV of the paper) and a FIFO stream cache matching
// the post-transform vertex cache of real GPUs (Figure 5).
//
// The models are functional: they track hits, misses and the memory
// traffic implied by line fills and dirty write-backs, but not timing.
package cache

import (
	"fmt"

	"gpuchar/internal/metrics"
)

// Config describes a set-associative cache geometry.
type Config struct {
	// Ways is the associativity (lines per set).
	Ways int
	// Sets is the number of sets. Ways*Sets*LineBytes is the capacity.
	Sets int
	// LineBytes is the line size in bytes. Must be a power of two.
	LineBytes int
}

// Size returns the total capacity in bytes.
func (c Config) Size() int { return c.Ways * c.Sets * c.LineBytes }

// String renders the geometry like the paper's Table XIV ("64w x 256B").
func (c Config) String() string {
	if c.Sets == 1 {
		return fmt.Sprintf("%dw x %dB", c.Ways, c.LineBytes)
	}
	return fmt.Sprintf("%dw x %ds x %dB", c.Ways, c.Sets, c.LineBytes)
}

// Stats accumulates cache activity.
type Stats struct {
	Hits           int64
	Misses         int64
	FillBytes      int64 // bytes read from memory on line fills
	WritebackBytes int64 // bytes written to memory on dirty evictions
}

// Register binds every counter of s into the registry under prefix
// (e.g. "cache/z/hits"). It is the single definition of the cache
// counter names shared by live stages and frame snapshots.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/hits", &s.Hits)
	r.Bind(prefix+"/misses", &s.Misses)
	r.Bind(prefix+"/fill_bytes", &s.FillBytes)
	r.Bind(prefix+"/writeback_bytes", &s.WritebackBytes)
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// HitRate returns hits/accesses in [0,1], or 0 when idle.
func (s Stats) HitRate() float64 {
	t := s.Accesses()
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// age is a per-set LRU stamp; larger is more recent.
	age uint64
}

// Cache is a set-associative, write-allocate, write-back cache with LRU
// replacement.
type Cache struct {
	cfg       Config
	lines     []line // sets*ways lines, set-major
	stamp     uint64
	stats     Stats
	lineShift uint

	// mru short-circuits the way scan for repeated accesses to the same
	// line — the dominant pattern for texture fetches. Semantics are
	// identical to a full lookup (the hit is counted and the LRU age
	// refreshed).
	mruLineAddr uint64
	mruLine     *line
}

// New creates a cache. LineBytes must be a positive power of two and
// Ways and Sets must be positive; New returns an error otherwise, so
// callers wiring user-supplied geometry (config files, CLI flags) can
// reject it instead of crashing.
func New(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 || cfg.Sets <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid config %+v", cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineBytes)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.Sets*cfg.Ways),
		lineShift: shift,
	}, nil
}

// MustNew is New for statically known geometry (the paper's Table XIV
// configurations); it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// RegisterMetrics binds the cache's live counters into r under prefix.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

// Access touches the line containing addr. If write is true the line is
// marked dirty. It returns true on a hit. On a miss the line is filled
// (FillBytes grows by one line) and, if the victim was dirty, written
// back (WritebackBytes grows by one line).
func (c *Cache) Access(addr uint64, write bool) bool {
	lineAddr := addr >> c.lineShift
	c.stamp++
	if c.mruLine != nil && c.mruLineAddr == lineAddr && c.mruLine.valid {
		c.mruLine.age = c.stamp
		if write {
			c.mruLine.dirty = true
		}
		c.stats.Hits++
		return true
	}
	set := int(lineAddr % uint64(c.cfg.Sets))
	tag := lineAddr / uint64(c.cfg.Sets)
	base := set * c.cfg.Ways

	// Lookup.
	for i := 0; i < c.cfg.Ways; i++ {
		ln := &c.lines[base+i]
		if ln.valid && ln.tag == tag {
			ln.age = c.stamp
			if write {
				ln.dirty = true
			}
			c.stats.Hits++
			c.mruLineAddr, c.mruLine = lineAddr, ln
			return true
		}
	}

	// Miss: pick the LRU victim (preferring invalid lines).
	victim := base
	for i := 1; i < c.cfg.Ways; i++ {
		v, cand := &c.lines[victim], &c.lines[base+i]
		if !cand.valid {
			victim = base + i
			break
		}
		if v.valid && cand.age < v.age {
			victim = base + i
		}
	}
	v := &c.lines[victim]
	if v.valid && v.dirty {
		c.stats.WritebackBytes += int64(c.cfg.LineBytes)
	}
	c.stats.Misses++
	c.stats.FillBytes += int64(c.cfg.LineBytes)
	*v = line{tag: tag, valid: true, dirty: write, age: c.stamp}
	c.mruLineAddr, c.mruLine = lineAddr, v
	return false
}

// Flush writes back all dirty lines and invalidates the cache, adding the
// corresponding write-back traffic. Real pipelines do this between frames.
func (c *Cache) Flush() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			c.stats.WritebackBytes += int64(c.cfg.LineBytes)
		}
		c.lines[i] = line{}
	}
	c.mruLine = nil
}

// Invalidate drops all lines without writing anything back. Used for
// fast-clear semantics where the backing store is reset wholesale.
func (c *Cache) Invalidate() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.mruLine = nil
}
