// Package cache provides the cache models used across the GPU pipeline:
// a set-associative write-back LRU cache (z & stencil, texture L0/L1 and
// color caches, Table XIV of the paper) and a FIFO stream cache matching
// the post-transform vertex cache of real GPUs (Figure 5).
//
// The models are functional: they track hits, misses and the memory
// traffic implied by line fills and dirty write-backs, but not timing.
package cache

import (
	"fmt"

	"gpuchar/internal/metrics"
)

// Config describes a set-associative cache geometry.
type Config struct {
	// Ways is the associativity (lines per set).
	Ways int
	// Sets is the number of sets. Ways*Sets*LineBytes is the capacity.
	Sets int
	// LineBytes is the line size in bytes. Must be a power of two.
	LineBytes int
}

// Size returns the total capacity in bytes.
func (c Config) Size() int { return c.Ways * c.Sets * c.LineBytes }

// String renders the geometry like the paper's Table XIV ("64w x 256B").
func (c Config) String() string {
	if c.Sets == 1 {
		return fmt.Sprintf("%dw x %dB", c.Ways, c.LineBytes)
	}
	return fmt.Sprintf("%dw x %ds x %dB", c.Ways, c.Sets, c.LineBytes)
}

// Stats accumulates cache activity.
type Stats struct {
	Hits           int64
	Misses         int64
	FillBytes      int64 // bytes read from memory on line fills
	WritebackBytes int64 // bytes written to memory on dirty evictions
}

// Register binds every counter of s into the registry under prefix
// (e.g. "cache/z/hits"). It is the single definition of the cache
// counter names shared by live stages and frame snapshots.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/hits", &s.Hits)
	r.Bind(prefix+"/misses", &s.Misses)
	r.Bind(prefix+"/fill_bytes", &s.FillBytes)
	r.Bind(prefix+"/writeback_bytes", &s.WritebackBytes)
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() int64 { return s.Hits + s.Misses }

// HitRate returns hits/accesses in [0,1], or 0 when idle.
func (s Stats) HitRate() float64 {
	t := s.Accesses()
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type line struct {
	// lineAddr is the full line address (addr >> lineShift); it doubles
	// as the index key, so eviction can drop the map entry.
	lineAddr uint64
	dirty    bool
	// prev/next chain the line into its set's LRU list (-1 terminated);
	// the list runs LRU (head) to MRU (tail). A line is valid iff it is
	// on a list.
	prev, next int32
}

// Cache is a set-associative, write-allocate, write-back cache with LRU
// replacement.
//
// Lookups and victim selection are O(1): a line-address index replaces
// the way scan and an intrusive per-set LRU list replaces the age-stamp
// victim scan. The observable behavior — every hit/miss outcome, victim
// choice, fill and write-back — is byte-identical to the reference
// scan-based model (kept in the package tests as refCache), including
// its fill order for not-yet-valid ways: the reference victim scan
// starts preferring invalid lines at way 1, so a set fills ways
// 1, 2, …, W-1 and then way 0.
type Cache struct {
	cfg       Config
	lines     []line // sets*ways lines, set-major
	stats     Stats
	lineShift uint

	// idx maps line address -> index into lines for valid lines.
	idx map[uint64]int32
	// used counts the valid ways of each set; lines only invalidate
	// wholesale (Flush/Invalidate), so a set's valid ways are exactly
	// the first used entries of its fill order.
	used []int32
	// head/tail are the per-set LRU list ends (-1 when empty).
	head, tail []int32

	// mru short-circuits the index lookup for repeated accesses to the
	// same line — the dominant pattern for texture fetches. The MRU line
	// is by construction already the tail of its set's list, so the fast
	// path touches no list state.
	mruLineAddr uint64
	mruIdx      int32
}

// New creates a cache. LineBytes must be a positive power of two and
// Ways and Sets must be positive; New returns an error otherwise, so
// callers wiring user-supplied geometry (config files, CLI flags) can
// reject it instead of crashing.
func New(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 || cfg.Sets <= 0 || cfg.LineBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid config %+v", cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineBytes)
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.Sets*cfg.Ways),
		lineShift: shift,
		idx:       make(map[uint64]int32, cfg.Sets*cfg.Ways),
		used:      make([]int32, cfg.Sets),
		head:      make([]int32, cfg.Sets),
		tail:      make([]int32, cfg.Sets),
		mruIdx:    -1,
	}
	for s := range c.head {
		c.head[s], c.tail[s] = -1, -1
	}
	return c, nil
}

// MustNew is New for statically known geometry (the paper's Table XIV
// configurations); it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics but keeps cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// RegisterMetrics binds the cache's live counters into r under prefix.
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

// unlink removes line i from set's LRU list.
func (c *Cache) unlink(set int, i int32) {
	ln := &c.lines[i]
	if ln.prev >= 0 {
		c.lines[ln.prev].next = ln.next
	} else {
		c.head[set] = ln.next
	}
	if ln.next >= 0 {
		c.lines[ln.next].prev = ln.prev
	} else {
		c.tail[set] = ln.prev
	}
}

// pushMRU appends line i at the MRU end of set's LRU list.
func (c *Cache) pushMRU(set int, i int32) {
	ln := &c.lines[i]
	ln.next = -1
	ln.prev = c.tail[set]
	if c.tail[set] >= 0 {
		c.lines[c.tail[set]].next = i
	} else {
		c.head[set] = i
	}
	c.tail[set] = i
}

// Access touches the line containing addr. If write is true the line is
// marked dirty. It returns true on a hit. On a miss the line is filled
// (FillBytes grows by one line) and, if the victim was dirty, written
// back (WritebackBytes grows by one line).
func (c *Cache) Access(addr uint64, write bool) bool {
	lineAddr := addr >> c.lineShift
	if c.mruIdx >= 0 && c.mruLineAddr == lineAddr {
		if write {
			c.lines[c.mruIdx].dirty = true
		}
		c.stats.Hits++
		return true
	}
	if i, ok := c.idx[lineAddr]; ok {
		set := int(lineAddr % uint64(c.cfg.Sets))
		if c.tail[set] != i {
			c.unlink(set, i)
			c.pushMRU(set, i)
		}
		if write {
			c.lines[i].dirty = true
		}
		c.stats.Hits++
		c.mruLineAddr, c.mruIdx = lineAddr, i
		return true
	}

	// Miss: fill an unused way while the set has any (in the reference
	// model's order: ways 1, 2, …, W-1, then 0), else evict the LRU line.
	set := int(lineAddr % uint64(c.cfg.Sets))
	var vi int32
	if int(c.used[set]) < c.cfg.Ways {
		base := int32(set * c.cfg.Ways)
		if int(c.used[set])+1 < c.cfg.Ways {
			vi = base + c.used[set] + 1
		} else {
			vi = base
		}
		c.used[set]++
	} else {
		vi = c.head[set]
		v := &c.lines[vi]
		if v.dirty {
			c.stats.WritebackBytes += int64(c.cfg.LineBytes)
		}
		delete(c.idx, v.lineAddr)
		c.unlink(set, vi)
	}
	c.stats.Misses++
	c.stats.FillBytes += int64(c.cfg.LineBytes)
	c.lines[vi] = line{lineAddr: lineAddr, dirty: write, prev: -1, next: -1}
	c.pushMRU(set, vi)
	c.idx[lineAddr] = vi
	c.mruLineAddr, c.mruIdx = lineAddr, vi
	return false
}

// Flush writes back all dirty lines and invalidates the cache, adding the
// corresponding write-back traffic. Real pipelines do this between frames.
func (c *Cache) Flush() {
	for s := range c.head {
		for i := c.head[s]; i >= 0; i = c.lines[i].next {
			if c.lines[i].dirty {
				c.stats.WritebackBytes += int64(c.cfg.LineBytes)
			}
		}
	}
	c.dropAll()
}

// Invalidate drops all lines without writing anything back. Used for
// fast-clear semantics where the backing store is reset wholesale.
func (c *Cache) Invalidate() { c.dropAll() }

func (c *Cache) dropAll() {
	clear(c.idx)
	for s := range c.head {
		c.head[s], c.tail[s] = -1, -1
		c.used[s] = 0
	}
	c.mruIdx = -1
}
