// Package rop implements the raster output stage: alpha blending, the
// color write mask, and the color buffer with its cache, fast clear and
// same-color block compression.
//
// The stage produces the color-mask and blending quad percentages of the
// paper's Table IX (Doom3/Quake4 send huge numbers of stencil-only quads
// whose color writes are masked off) and the color traffic of Tables
// XV-XVII, where the same-color compressor only pays off in games with
// large flat (shadowed) regions.
package rop

import (
	"image"
	"image/color"
	"image/png"
	"io"

	"gpuchar/internal/cache"
	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/rast"
)

// BlendFactor scales a blend operand.
type BlendFactor uint8

// Blend factors (OpenGL semantics).
const (
	FactorZero BlendFactor = iota
	FactorOne
	FactorSrcAlpha
	FactorOneMinusSrcAlpha
	FactorDstColor
	FactorSrcColor
)

// State is the color stage configuration for one draw.
type State struct {
	// Blend enables src*SrcFactor + dst*DstFactor combining; when off
	// the source color replaces the destination.
	Blend     bool
	SrcFactor BlendFactor
	DstFactor BlendFactor
	// WriteMask enables the R, G, B, A channels. All-false turns the
	// draw into a no-color-update pass (stencil volumes, z prepass).
	WriteMask [4]bool
}

// DefaultState returns opaque rendering with all channels enabled.
func DefaultState() State {
	return State{WriteMask: [4]bool{true, true, true, true}}
}

// AdditiveBlend returns the src*1 + dst*1 state used by multipass
// lighting.
func AdditiveBlend() State {
	return State{
		Blend: true, SrcFactor: FactorOne, DstFactor: FactorOne,
		WriteMask: [4]bool{true, true, true, true},
	}
}

// AlphaBlend returns standard transparency blending.
func AlphaBlend() State {
	return State{
		Blend: true, SrcFactor: FactorSrcAlpha, DstFactor: FactorOneMinusSrcAlpha,
		WriteMask: [4]bool{true, true, true, true},
	}
}

// MaskedOff reports whether every channel is disabled.
func (s *State) MaskedOff() bool {
	return !s.WriteMask[0] && !s.WriteMask[1] && !s.WriteMask[2] && !s.WriteMask[3]
}

// Stats accumulates color-stage activity.
type Stats struct {
	QuadsIn     int64
	QuadsMasked int64 // removed by an all-false color write mask
	QuadsOut    int64 // quads updating the color buffer
	Fragments   int64 // fragments blended/written
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the color-stage counter names.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/quads_in", &s.QuadsIn)
	r.Bind(prefix+"/quads_masked", &s.QuadsMasked)
	r.Bind(prefix+"/quads_out", &s.QuadsOut)
	r.Bind(prefix+"/fragments", &s.Fragments)
}

// blockDim is the pixel footprint of a 256-byte color cache line
// (8x8 x 4 bytes), also the granularity of fast clear and same-color
// compression.
const blockDim = 8

// ColorCacheConfig is the paper's Table XIV color cache geometry — the
// default for targets created without an explicit geometry.
var ColorCacheConfig = cache.Config{Ways: 64, Sets: 1, LineBytes: 256}

// compressedLineBytes is the cost of transferring a same-color block:
// the color plus block metadata.
const compressedLineBytes = 32

// Target is the render target: an RGBA8 color buffer with cache, fast
// clear and same-color compression.
type Target struct {
	w, h     int
	pix      []gmath.Vec4 // stored as float for blending precision
	baseAddr uint64

	clearLine []bool       // fast-clear flag per block
	uniform   []bool       // same-color compressibility per block
	blockCol  []gmath.Vec4 // the uniform color per block
	clearCol  gmath.Vec4

	// cacheCfg is the target's color-cache geometry: one line per 8x8
	// pixel block regardless of the configured line size (the same
	// block-granular model as the z cache).
	cacheCfg cache.Config
	cache    *cache.Cache
	memctl   *mem.Controller
	stats    Stats

	// shards lists the tile-worker views created by NewShard so Clear
	// can propagate the clear register and cache invalidations. Only
	// the parent target has a non-empty list.
	shards []*Target

	// Compression and FastClear enable the color bandwidth reduction
	// techniques (on by default); ablation benches switch them off.
	Compression bool
	FastClear   bool
}

// NewTarget creates a w x h render target at baseAddr with the Table
// XIV cache geometry; memctl may be nil to skip traffic accounting.
func NewTarget(w, h int, baseAddr uint64, memctl *mem.Controller) *Target {
	return NewTargetCache(w, h, baseAddr, memctl, ColorCacheConfig)
}

// NewTargetCache is NewTarget with an explicit color-cache geometry,
// the hook the sweepable hardware variants configure. The geometry must
// be valid per cache.New; hwconfig.Variant.Validate vets user-supplied
// configs before they reach this constructor.
func NewTargetCache(w, h int, baseAddr uint64, memctl *mem.Controller, cc cache.Config) *Target {
	nb := blocks(w) * blocks(h)
	t := &Target{
		w: w, h: h,
		pix:       make([]gmath.Vec4, w*h),
		baseAddr:  baseAddr,
		clearLine: make([]bool, nb),
		uniform:   make([]bool, nb),
		blockCol:  make([]gmath.Vec4, nb),
		cacheCfg:  cc,
		cache:     cache.MustNew(cc),
		memctl:    memctl,

		Compression: true,
		FastClear:   true,
	}
	t.Clear(gmath.Vec4{})
	return t
}

// NewShard returns a tile-worker view of the target: it shares the
// pixel plane and the per-8x8-block fast-clear/uniformity state (so
// disjoint block ownership keeps accesses race-free) while carrying a
// private color cache, private statistics and a private memory
// controller shard. Create shards after the parent's Compression and
// FastClear flags are final; the parent's Clear propagates to shards.
func (t *Target) NewShard(memctl *mem.Controller) *Target {
	s := &Target{
		w: t.w, h: t.h,
		pix:       t.pix,
		baseAddr:  t.baseAddr,
		clearLine: t.clearLine,
		uniform:   t.uniform,
		blockCol:  t.blockCol,
		clearCol:  t.clearCol,
		cacheCfg:  t.cacheCfg,
		cache:     cache.MustNew(t.cacheCfg),
		memctl:    memctl,

		Compression: t.Compression,
		FastClear:   t.FastClear,
	}
	t.shards = append(t.shards, s)
	return s
}

func blocks(n int) int { return (n + blockDim - 1) / blockDim }

// Clear fast-clears the target to color c with no memory traffic.
func (t *Target) Clear(c gmath.Vec4) {
	t.clearCol = c
	for i := range t.pix {
		t.pix[i] = c
	}
	for i := range t.clearLine {
		t.clearLine[i] = true
		t.uniform[i] = true
		t.blockCol[i] = c
	}
	t.cache.Invalidate()
	for _, s := range t.shards {
		s.clearCol = c
		s.cache.Invalidate()
	}
}

// Stats returns the accumulated statistics.
func (t *Target) Stats() Stats { return t.stats }

// ResetStats clears counters (contents survive).
func (t *Target) ResetStats() {
	t.stats = Stats{}
	t.cache.ResetStats()
}

// CacheStats exposes the color cache counters for Table XIV.
func (t *Target) CacheStats() cache.Stats { return t.cache.Stats() }

// RegisterMetrics binds the stage and color-cache counters into r under
// the two prefixes.
func (t *Target) RegisterMetrics(r *metrics.Registry, statPrefix, cachePrefix string) {
	t.stats.Register(r, statPrefix)
	t.cache.RegisterMetrics(r, cachePrefix)
}

// At returns the stored color (for tests and the DAC).
func (t *Target) At(x, y int) gmath.Vec4 { return t.pix[y*t.w+x] }

// Size returns the target dimensions.
func (t *Target) Size() (w, h int) { return t.w, t.h }

func (t *Target) blockIndex(x, y int) int {
	return (y/blockDim)*blocks(t.w) + x/blockDim
}

// WriteQuad blends the covered fragments of a quad into the target.
// colors holds the shaded fragment colors per lane.
func (t *Target) WriteQuad(q *rast.Quad, mask uint8, colors *[4]gmath.Vec4, st *State) {
	t.stats.QuadsIn++
	if mask == 0 {
		return
	}
	if st.MaskedOff() {
		// The quad reaches the color stage but is immediately removed
		// (Table IX "Color Mask" column); no buffer traffic.
		t.stats.QuadsMasked++
		return
	}
	t.touchLine(q.X, q.Y)
	bi := t.blockIndex(q.X, q.Y)
	for lane := 0; lane < 4; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		x, y := q.PixelX(lane), q.PixelY(lane)
		idx := y*t.w + x
		src := colors[lane].Clamp01()
		dst := t.pix[idx]
		var out gmath.Vec4
		if st.Blend {
			out = src.Mul(factor(st.SrcFactor, src, dst)).
				Add(dst.Mul(factor(st.DstFactor, src, dst))).Clamp01()
		} else {
			out = src
		}
		for c := 0; c < 4; c++ {
			if st.WriteMask[c] {
				dst = dst.SetComp(c, out.Comp(c))
			}
		}
		t.pix[idx] = dst
		t.stats.Fragments++
		// Maintain same-color compressibility.
		if t.uniform[bi] && dst != t.blockCol[bi] {
			t.uniform[bi] = false
		}
	}
	t.stats.QuadsOut++
}

func factor(f BlendFactor, src, dst gmath.Vec4) gmath.Vec4 {
	switch f {
	case FactorZero:
		return gmath.Vec4{}
	case FactorOne:
		return gmath.V4(1, 1, 1, 1)
	case FactorSrcAlpha:
		return gmath.V4(src.W, src.W, src.W, src.W)
	case FactorOneMinusSrcAlpha:
		a := 1 - src.W
		return gmath.V4(a, a, a, a)
	case FactorDstColor:
		return dst
	default: // FactorSrcColor
		return src
	}
}

// touchLine drives the color cache. Blending (and partial-line writes
// in general) make every line fill a read-modify-write: fills of
// cleared lines are free, same-color lines fill at the compressed rate,
// others transfer a full line. Write-backs follow the same ladder.
func (t *Target) touchLine(x, y int) {
	bi := t.blockIndex(x, y)
	addr := t.baseAddr + uint64(bi)*uint64(t.cacheCfg.LineBytes)
	before := t.cache.Stats()
	hit := t.cache.Access(addr, true)
	if t.memctl == nil {
		return
	}
	after := t.cache.Stats()
	if wb := after.WritebackBytes - before.WritebackBytes; wb > 0 {
		// The evicted line's compressibility decides its cost. We no
		// longer know which block it held, so approximate with this
		// block's state before the write: uniform blocks write back
		// compressed. This matches the aggregate behaviour the paper
		// describes (compression pays off when much of the frame stays
		// one color).
		if t.uniform[bi] && t.Compression {
			t.memctl.Write(mem.ClientColor, compressedLineBytes)
		} else {
			t.memctl.Write(mem.ClientColor, wb)
		}
	}
	if !hit {
		switch {
		case t.clearLine[bi] && t.FastClear:
			// Fast clear: fill from the on-die clear register.
			t.clearLine[bi] = false
		case t.uniform[bi] && t.Compression:
			t.memctl.Read(mem.ClientColor, compressedLineBytes)
		default:
			t.memctl.Read(mem.ClientColor, int64(t.cacheCfg.LineBytes))
		}
	}
	t.clearLine[bi] = false
}

// FlushCache writes back dirty lines, costing full or compressed
// transfers depending on block uniformity; approximated at the full
// rate for mixed blocks.
func (t *Target) FlushCache() {
	before := t.cache.Stats()
	t.cache.Flush()
	if t.memctl == nil {
		return
	}
	wb := t.cache.Stats().WritebackBytes - before.WritebackBytes
	if wb == 0 {
		return
	}
	// Estimate the compressed share from the current uniform-block
	// fraction.
	uni := 0
	for _, u := range t.uniform {
		if u {
			uni++
		}
	}
	frac := float64(uni) / float64(len(t.uniform))
	if !t.Compression {
		frac = 0
	}
	lines := wb / int64(t.cacheCfg.LineBytes)
	compLines := int64(frac * float64(lines))
	t.memctl.Write(mem.ClientColor,
		compLines*compressedLineBytes+(lines-compLines)*int64(t.cacheCfg.LineBytes))
}

// ScanOut models the DAC reading the full frame for display, charging
// the uncompressed frame size to the DAC client.
func (t *Target) ScanOut() {
	if t.memctl != nil {
		t.memctl.Read(mem.ClientDAC, int64(t.w*t.h*4))
	}
}

// Image converts the render target to an 8-bit RGBA image for
// inspection or PNG export. Row 0 of the image is the top of the frame
// (window y points up, image y points down).
func (t *Target) Image() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, t.w, t.h))
	for y := 0; y < t.h; y++ {
		for x := 0; x < t.w; x++ {
			c := t.pix[y*t.w+x].Clamp01()
			img.SetRGBA(x, t.h-1-y, color.RGBA{
				R: uint8(c.X*255 + 0.5),
				G: uint8(c.Y*255 + 0.5),
				B: uint8(c.Z*255 + 0.5),
				A: uint8(c.W*255 + 0.5),
			})
		}
	}
	return img
}

// EncodePNG writes the rendered frame as a PNG.
func (t *Target) EncodePNG(w io.Writer) error {
	return png.Encode(w, t.Image())
}
