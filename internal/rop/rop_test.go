package rop

import (
	"bytes"
	"image/png"
	"testing"

	"gpuchar/internal/gmath"
	"gpuchar/internal/mem"
	"gpuchar/internal/rast"
)

func fullQuad(x, y int) *rast.Quad {
	return &rast.Quad{X: x, Y: y, Mask: 0xF}
}

func uniformColors(c gmath.Vec4) [4]gmath.Vec4 {
	return [4]gmath.Vec4{c, c, c, c}
}

func newTestTarget() (*Target, *mem.Controller) {
	m := mem.NewController()
	return NewTarget(64, 64, 0x400000, m), m
}

func TestOpaqueWrite(t *testing.T) {
	tgt, _ := newTestTarget()
	st := DefaultState()
	colors := uniformColors(gmath.V4(1, 0.5, 0.25, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	got := tgt.At(0, 0)
	if got != gmath.V4(1, 0.5, 0.25, 1) {
		t.Errorf("pixel = %v", got)
	}
	if tgt.At(1, 1) != gmath.V4(1, 0.5, 0.25, 1) {
		t.Error("lane 3 not written")
	}
	s := tgt.Stats()
	if s.QuadsIn != 1 || s.QuadsOut != 1 || s.Fragments != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAdditiveBlend(t *testing.T) {
	tgt, _ := newTestTarget()
	opaque := DefaultState()
	base := uniformColors(gmath.V4(0.25, 0.25, 0.25, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &base, &opaque)
	add := AdditiveBlend()
	light := uniformColors(gmath.V4(0.5, 0, 0, 0))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &light, &add)
	got := tgt.At(0, 0)
	if got.X != 0.75 || got.Y != 0.25 {
		t.Errorf("additive result = %v", got)
	}
	// Saturation clamps at 1.
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &light, &add)
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &light, &add)
	if got := tgt.At(0, 0); got.X != 1 {
		t.Errorf("saturated = %v", got)
	}
}

func TestAlphaBlend(t *testing.T) {
	tgt, _ := newTestTarget()
	opaque := DefaultState()
	base := uniformColors(gmath.V4(0, 0, 1, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &base, &opaque)
	ab := AlphaBlend()
	// 50% red over blue -> purple-ish.
	overlay := uniformColors(gmath.V4(1, 0, 0, 0.5))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &overlay, &ab)
	got := tgt.At(0, 0)
	if got.X != 0.5 || got.Z != 0.5 {
		t.Errorf("alpha blend = %v", got)
	}
}

func TestColorMaskDropsQuad(t *testing.T) {
	tgt, m := newTestTarget()
	st := State{} // all channels off
	if !st.MaskedOff() {
		t.Fatal("zero state should be masked off")
	}
	colors := uniformColors(gmath.V4(1, 1, 1, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	if tgt.At(0, 0) != (gmath.Vec4{}) {
		t.Error("masked write changed pixel")
	}
	if m.ClientTraffic(mem.ClientColor).Total() != 0 {
		t.Error("masked quad generated traffic")
	}
	s := tgt.Stats()
	if s.QuadsMasked != 1 || s.QuadsOut != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPartialChannelMask(t *testing.T) {
	tgt, _ := newTestTarget()
	st := DefaultState()
	st.WriteMask = [4]bool{true, false, false, false} // red only
	colors := uniformColors(gmath.V4(1, 1, 1, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	got := tgt.At(0, 0)
	if got.X != 1 || got.Y != 0 || got.Z != 0 || got.W != 0 {
		t.Errorf("red-only write = %v", got)
	}
}

func TestPartialMaskFragments(t *testing.T) {
	tgt, _ := newTestTarget()
	st := DefaultState()
	colors := uniformColors(gmath.V4(1, 1, 1, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0b0001, &colors, &st)
	if tgt.At(1, 0) != (gmath.Vec4{}) {
		t.Error("uncovered fragment written")
	}
	if tgt.Stats().Fragments != 1 {
		t.Errorf("fragments = %d", tgt.Stats().Fragments)
	}
	// Empty mask is a no-op beyond the QuadsIn count.
	tgt.WriteQuad(fullQuad(8, 8), 0, &colors, &st)
	if tgt.Stats().QuadsIn != 2 || tgt.Stats().QuadsOut != 1 {
		t.Errorf("stats = %+v", tgt.Stats())
	}
}

func TestFastClearNoTraffic(t *testing.T) {
	tgt, m := newTestTarget()
	st := DefaultState()
	colors := uniformColors(gmath.V4(0.5, 0.5, 0.5, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	if m.ClientTraffic(mem.ClientColor).ReadBytes != 0 {
		t.Error("first touch of cleared line read memory")
	}
}

func TestUniformBlockCompression(t *testing.T) {
	m := mem.NewController()
	// 64x128: 128 blocks, cache holds 64 lines -> evictions happen.
	tgt := NewTarget(64, 128, 0x400000, m)
	st := DefaultState()
	// Paint every block a single color (uniform): write-backs should be
	// compressed (32B), not full lines (256B).
	colors := uniformColors(gmath.Vec4{}) // same as clear color: stays uniform
	for i := 0; i < 128; i++ {
		x := (i % 8) * 8
		y := (i / 8) * 8
		tgt.WriteQuad(fullQuad(x, y), 0xF, &colors, &st)
	}
	w := m.ClientTraffic(mem.ClientColor).WriteBytes
	if w == 0 {
		t.Skip("no evictions: cache larger than expected")
	}
	if w%compressedLineBytes != 0 || w >= 128*int64(ColorCacheConfig.LineBytes) {
		t.Errorf("uniform write-backs = %d bytes, want compressed multiples of %d",
			w, compressedLineBytes)
	}
}

func TestNonUniformBlockFullTraffic(t *testing.T) {
	tgt, _ := newTestTarget()
	st := DefaultState()
	colors := [4]gmath.Vec4{
		gmath.V4(1, 0, 0, 1), gmath.V4(0, 1, 0, 1),
		gmath.V4(0, 0, 1, 1), gmath.V4(1, 1, 1, 1),
	}
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	// The block is no longer uniform.
	if tgt.uniform[0] {
		t.Error("block with mixed colors still marked uniform")
	}
}

func TestClearResetsEverything(t *testing.T) {
	tgt, _ := newTestTarget()
	st := DefaultState()
	colors := uniformColors(gmath.V4(1, 0, 0, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	tgt.Clear(gmath.V4(0, 0, 0.5, 1))
	if tgt.At(0, 0) != gmath.V4(0, 0, 0.5, 1) {
		t.Error("clear color not applied")
	}
	if !tgt.uniform[0] || !tgt.clearLine[0] {
		t.Error("clear flags not reset")
	}
}

func TestScanOutChargesDAC(t *testing.T) {
	tgt, m := newTestTarget()
	tgt.ScanOut()
	want := int64(64 * 64 * 4)
	if got := m.ClientTraffic(mem.ClientDAC).ReadBytes; got != want {
		t.Errorf("DAC traffic = %d, want %d", got, want)
	}
}

func TestFlushCache(t *testing.T) {
	tgt, m := newTestTarget()
	st := DefaultState()
	colors := uniformColors(gmath.V4(0.3, 0.3, 0.3, 1))
	tgt.WriteQuad(fullQuad(0, 0), 0xF, &colors, &st)
	tgt.FlushCache()
	if m.ClientTraffic(mem.ClientColor).WriteBytes == 0 {
		t.Error("flush wrote nothing")
	}
}

func TestSizeAccessor(t *testing.T) {
	tgt, _ := newTestTarget()
	w, h := tgt.Size()
	if w != 64 || h != 64 {
		t.Errorf("size = %dx%d", w, h)
	}
}

func TestBlendFactors(t *testing.T) {
	src := gmath.V4(0.5, 0.5, 0.5, 0.25)
	dst := gmath.V4(1, 0, 1, 1)
	cases := []struct {
		f    BlendFactor
		want gmath.Vec4
	}{
		{FactorZero, gmath.Vec4{}},
		{FactorOne, gmath.V4(1, 1, 1, 1)},
		{FactorSrcAlpha, gmath.V4(0.25, 0.25, 0.25, 0.25)},
		{FactorOneMinusSrcAlpha, gmath.V4(0.75, 0.75, 0.75, 0.75)},
		{FactorDstColor, dst},
		{FactorSrcColor, src},
	}
	for _, c := range cases {
		if got := factor(c.f, src, dst); got != c.want {
			t.Errorf("factor %d = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestImageAndPNG(t *testing.T) {
	tgt, _ := newTestTarget()
	st := DefaultState()
	colors := uniformColors(gmath.V4(1, 0, 0, 1))
	tgt.WriteQuad(fullQuad(0, 62), 0xF, &colors, &st) // top-left in window coords
	img := tgt.Image()
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 64 {
		t.Fatalf("image bounds = %v", img.Bounds())
	}
	// Window y is up; image y is down: window (0,63) is image (0,0).
	r, _, _, a := img.At(0, 0).RGBA()
	if r>>8 != 255 || a>>8 != 255 {
		t.Errorf("top-left pixel = %v", img.At(0, 0))
	}
	var buf bytes.Buffer
	if err := tgt.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 64 {
		t.Errorf("decoded bounds = %v", decoded.Bounds())
	}
}
