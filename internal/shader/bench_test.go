package shader

import (
	"testing"

	"gpuchar/internal/gmath"
)

// BenchmarkRunQuad compares the compiled quad-kernel path against the
// reference interpreter on the alpha-tested fragment shader (the
// heaviest library program: texture fetch plus KIL). The nil sampler
// isolates executor cost from the texture hierarchy. The compiled path
// must not allocate — operand staging lives on the Machine precisely so
// nothing escapes per invocation.
func BenchmarkRunQuad(b *testing.B) {
	prog := AlphaTestedFS()
	var in [4][NumInputs]gmath.Vec4
	for lane := range in {
		for i := range in[lane] {
			in[lane][i] = gmath.V4(0.1+0.25*float32(lane), 0.03*float32(i), 0.5, 1)
		}
	}
	var out [4][NumOutputs]gmath.Vec4

	b.Run("compiled", func(b *testing.B) {
		m := NewMachine()
		prog.Compiled()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunQuad(prog, &in, 0xF, &out)
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		m := NewMachine()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RunQuadInterpreted(prog, &in, 0xF, &out)
		}
	})
}
