package shader

import (
	"math"

	"gpuchar/internal/gmath"
)

// This file implements the shader program compiler. Programs are few and
// hot — a frame shades millions of quads with a handful of fragment
// programs — so each Program is lowered once into a chain of specialized
// Go closures and the per-quad cost drops to one indirect call per
// instruction for all four lanes:
//
//   - swizzle, negate and write-mask handling are resolved at compile
//     time: the identity swizzle + full mask path compiles to direct
//     struct reads and writes with no per-operand branching;
//   - constant-file operands are read and swizzled once per quad and
//     broadcast, instead of once per lane;
//   - register zeroing is bounded by the program's high-water marks and
//     uses the builtin clear();
//   - the instruction/texture statistics of a run are known statically
//     (the ISA has no control flow), so RunQuad counts them with two
//     multiplies instead of per-instruction increments.
//
// The lowering is exact: outputs, the surviving KIL mask and every
// ExecStats counter are byte-identical to the reference interpreter
// (RunQuadInterpreted / RunVertexInterpreted), which is kept as the
// differential-testing and fuzzing oracle.

// quadFile is the register-bank view one compiled fragment invocation
// executes against: four lockstep lanes over shared constants and a
// shared sampler. live carries the KIL mask across kernels; kills
// accumulates the lanes discarded during this invocation.
type quadFile struct {
	in      *[4][NumInputs]gmath.Vec4
	out     *[4][NumOutputs]gmath.Vec4
	temps   *[4][NumTemps]gmath.Vec4
	consts  *[NumConsts]gmath.Vec4
	sampler Sampler
	live    uint8
	kills   int64

	// s0..s2 and r are the operand and result staging slots the kernels
	// compute through. They live here rather than as kernel locals
	// because their addresses cross indirect calls (quadOp, wr4Fn,
	// Sampler.SampleQuad) — as locals every one of them would escape to
	// the heap on every instruction.
	s0, s1, s2, r [4]gmath.Vec4
}

// quadKernel executes one compiled instruction for all four lanes.
type quadKernel func(f *quadFile)

// laneFile is the single-lane register view of a vertex invocation.
type laneFile struct {
	in     *[NumInputs]gmath.Vec4
	out    *[NumOutputs]gmath.Vec4
	temps  *[NumTemps]gmath.Vec4
	consts *[NumConsts]gmath.Vec4
}

// laneKernel executes one compiled instruction for a single lane.
type laneKernel func(f *laneFile)

// Compiled is the executable form of a Program: a kernel chain per
// execution mode plus the statically known statistics and register
// bounds RunQuad needs.
type Compiled struct {
	quad []quadKernel
	lane []laneKernel

	// tempHi and outHi are the program's register high-water marks
	// (exclusive): RunQuad zeroes exactly these registers per lane.
	tempHi, outHi uint8

	// instrs and texInstrs are per-lane execution counts; the ISA has
	// no control flow, so stats are instrs*activeLanes exactly.
	instrs, texInstrs int64
}

// Compiled returns the compiled form of the program, lowering it on
// first use. The result is cached on the Program itself, so the cache
// is keyed by program identity and a compiled program is shared by
// every Machine (serial pipeline and tile workers alike) — the kernels
// close over instruction encodings only, never over machine state.
func (p *Program) Compiled() *Compiled {
	p.compileOnce.Do(func() {
		p.compiled = compile(p)
	})
	return p.compiled
}

// compile lowers every instruction to its quad and lane kernels.
func compile(p *Program) *Compiled {
	tempHi, outHi := p.regBounds()
	c := &Compiled{
		tempHi: tempHi, outHi: outHi,
		instrs:    int64(len(p.Instrs)),
		texInstrs: int64(p.TexCount()),
	}
	c.quad = make([]quadKernel, len(p.Instrs))
	c.lane = make([]laneKernel, len(p.Instrs))
	for i := range p.Instrs {
		ins := &p.Instrs[i]
		c.quad[i] = compileQuadInstr(ins)
		c.lane[i] = compileLaneInstr(ins)
	}
	return c
}

// ---------------------------------------------------------------------
// Source operand readers.

// src4Fn reads one source operand for all four lanes.
type src4Fn func(f *quadFile) [4]gmath.Vec4

// swizNeg applies a swizzle and optional negation exactly like the
// interpreter's readSrc (negation is Scale(-1), preserving its float
// semantics).
func swizNeg(v gmath.Vec4, sw Swizzle, neg bool) gmath.Vec4 {
	if sw != SwizzleIdentity {
		v = gmath.Vec4{
			X: v.Comp(int(sw[0])),
			Y: v.Comp(int(sw[1])),
			Z: v.Comp(int(sw[2])),
			W: v.Comp(int(sw[3])),
		}
	}
	if neg {
		v = v.Scale(-1)
	}
	return v
}

// compileSrc4 builds the quad reader for one source operand, resolving
// the register file, swizzle and negation at compile time.
func compileSrc4(s Src) src4Fn {
	idx := int(s.Index)
	direct := s.Swizzle == SwizzleIdentity && !s.Negate
	sw, neg := s.Swizzle, s.Negate
	switch s.File {
	case FileTemp:
		if direct {
			return func(f *quadFile) [4]gmath.Vec4 {
				t := f.temps
				return [4]gmath.Vec4{t[0][idx], t[1][idx], t[2][idx], t[3][idx]}
			}
		}
		return func(f *quadFile) [4]gmath.Vec4 {
			t := f.temps
			return [4]gmath.Vec4{
				swizNeg(t[0][idx], sw, neg), swizNeg(t[1][idx], sw, neg),
				swizNeg(t[2][idx], sw, neg), swizNeg(t[3][idx], sw, neg),
			}
		}
	case FileInput:
		if direct {
			return func(f *quadFile) [4]gmath.Vec4 {
				in := f.in
				return [4]gmath.Vec4{in[0][idx], in[1][idx], in[2][idx], in[3][idx]}
			}
		}
		return func(f *quadFile) [4]gmath.Vec4 {
			in := f.in
			return [4]gmath.Vec4{
				swizNeg(in[0][idx], sw, neg), swizNeg(in[1][idx], sw, neg),
				swizNeg(in[2][idx], sw, neg), swizNeg(in[3][idx], sw, neg),
			}
		}
	case FileConst:
		// Constants are uniform across lanes: read and swizzle once per
		// quad, broadcast.
		if direct {
			return func(f *quadFile) [4]gmath.Vec4 {
				v := f.consts[idx]
				return [4]gmath.Vec4{v, v, v, v}
			}
		}
		return func(f *quadFile) [4]gmath.Vec4 {
			v := swizNeg(f.consts[idx], sw, neg)
			return [4]gmath.Vec4{v, v, v, v}
		}
	default:
		// Unreadable file: the interpreter reads zero (then swizzles and
		// negates it), so fold the whole operand at compile time.
		zv := swizNeg(gmath.Vec4{}, sw, neg)
		return func(f *quadFile) [4]gmath.Vec4 {
			return [4]gmath.Vec4{zv, zv, zv, zv}
		}
	}
}

// src1Fn reads one source operand for a single lane.
type src1Fn func(f *laneFile) gmath.Vec4

// compileSrc1 builds the lane reader for one source operand.
func compileSrc1(s Src) src1Fn {
	idx := int(s.Index)
	direct := s.Swizzle == SwizzleIdentity && !s.Negate
	sw, neg := s.Swizzle, s.Negate
	switch s.File {
	case FileTemp:
		if direct {
			return func(f *laneFile) gmath.Vec4 { return f.temps[idx] }
		}
		return func(f *laneFile) gmath.Vec4 { return swizNeg(f.temps[idx], sw, neg) }
	case FileInput:
		if direct {
			return func(f *laneFile) gmath.Vec4 { return f.in[idx] }
		}
		return func(f *laneFile) gmath.Vec4 { return swizNeg(f.in[idx], sw, neg) }
	case FileConst:
		if direct {
			return func(f *laneFile) gmath.Vec4 { return f.consts[idx] }
		}
		return func(f *laneFile) gmath.Vec4 { return swizNeg(f.consts[idx], sw, neg) }
	default:
		zv := swizNeg(gmath.Vec4{}, sw, neg)
		return func(f *laneFile) gmath.Vec4 { return zv }
	}
}

// ---------------------------------------------------------------------
// Destination writers.

// wr4Fn writes a quad result through the destination's write mask.
type wr4Fn func(f *quadFile, v *[4]gmath.Vec4)

// maskWrite merges v into *dst under the component mask.
func maskWrite(dst *gmath.Vec4, v gmath.Vec4, mask uint8) {
	if mask&1 != 0 {
		dst.X = v.X
	}
	if mask&2 != 0 {
		dst.Y = v.Y
	}
	if mask&4 != 0 {
		dst.Z = v.Z
	}
	if mask&8 != 0 {
		dst.W = v.W
	}
}

// compileWr4 builds the quad writer for a destination operand. The full
// mask compiles to four direct struct assignments.
func compileWr4(d Dst) wr4Fn {
	idx := int(d.Index)
	mask := d.Mask
	switch d.File {
	case FileTemp:
		if mask == MaskXYZW {
			return func(f *quadFile, v *[4]gmath.Vec4) {
				t := f.temps
				t[0][idx], t[1][idx], t[2][idx], t[3][idx] = v[0], v[1], v[2], v[3]
			}
		}
		return func(f *quadFile, v *[4]gmath.Vec4) {
			t := f.temps
			maskWrite(&t[0][idx], v[0], mask)
			maskWrite(&t[1][idx], v[1], mask)
			maskWrite(&t[2][idx], v[2], mask)
			maskWrite(&t[3][idx], v[3], mask)
		}
	case FileOutput:
		if mask == MaskXYZW {
			return func(f *quadFile, v *[4]gmath.Vec4) {
				o := f.out
				o[0][idx], o[1][idx], o[2][idx], o[3][idx] = v[0], v[1], v[2], v[3]
			}
		}
		return func(f *quadFile, v *[4]gmath.Vec4) {
			o := f.out
			maskWrite(&o[0][idx], v[0], mask)
			maskWrite(&o[1][idx], v[1], mask)
			maskWrite(&o[2][idx], v[2], mask)
			maskWrite(&o[3][idx], v[3], mask)
		}
	default:
		// Unwritable file (matches the interpreter's writeMasked no-op
		// for e.g. the zero-value Dst of a KIL run through RunVertex).
		return func(f *quadFile, v *[4]gmath.Vec4) {}
	}
}

// wr1Fn writes a lane result through the destination's write mask.
type wr1Fn func(f *laneFile, v gmath.Vec4)

// compileWr1 builds the lane writer for a destination operand.
func compileWr1(d Dst) wr1Fn {
	idx := int(d.Index)
	mask := d.Mask
	switch d.File {
	case FileTemp:
		if mask == MaskXYZW {
			return func(f *laneFile, v gmath.Vec4) { f.temps[idx] = v }
		}
		return func(f *laneFile, v gmath.Vec4) { maskWrite(&f.temps[idx], v, mask) }
	case FileOutput:
		if mask == MaskXYZW {
			return func(f *laneFile, v gmath.Vec4) { f.out[idx] = v }
		}
		return func(f *laneFile, v gmath.Vec4) { maskWrite(&f.out[idx], v, mask) }
	default:
		return func(f *laneFile, v gmath.Vec4) {}
	}
}

// ---------------------------------------------------------------------
// ALU operation kernels: one function per opcode, all four lanes
// unrolled by a fixed-trip loop. Every lane computes with exactly the
// arithmetic of the interpreter's compute() so results are bit-equal.

// quadOp computes dst = op(a, b, c) for four lanes. Operands the opcode
// does not consume are nil.
type quadOp func(r, a, b, c *[4]gmath.Vec4)

var quadOps = [numOpcodes]quadOp{
	OpMOV: func(r, a, b, c *[4]gmath.Vec4) { *r = *a },
	OpADD: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = a[l].Add(b[l])
		}
	},
	OpSUB: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = a[l].Sub(b[l])
		}
	},
	OpMUL: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = a[l].Mul(b[l])
		}
	},
	OpMAD: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = a[l].Mul(b[l]).Add(c[l])
		}
	},
	OpDP3: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			d := a[l].Dot3(b[l])
			r[l] = gmath.V4(d, d, d, d)
		}
	},
	OpDP4: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			d := a[l].Dot(b[l])
			r[l] = gmath.V4(d, d, d, d)
		}
	},
	OpMIN: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = gmath.Vec4{
				X: minf(a[l].X, b[l].X), Y: minf(a[l].Y, b[l].Y),
				Z: minf(a[l].Z, b[l].Z), W: minf(a[l].W, b[l].W),
			}
		}
	},
	OpMAX: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = gmath.Vec4{
				X: maxf(a[l].X, b[l].X), Y: maxf(a[l].Y, b[l].Y),
				Z: maxf(a[l].Z, b[l].Z), W: maxf(a[l].W, b[l].W),
			}
		}
	},
	OpSLT: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = cmpEach(a[l], b[l], func(x, y float32) bool { return x < y })
		}
	},
	OpSGE: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = cmpEach(a[l], b[l], func(x, y float32) bool { return x >= y })
		}
	},
	OpRCP: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			v := float32(1) / a[l].X
			r[l] = gmath.V4(v, v, v, v)
		}
	},
	OpRSQ: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			v := float32(1 / math.Sqrt(math.Abs(float64(a[l].X))))
			r[l] = gmath.V4(v, v, v, v)
		}
	},
	OpEX2: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			v := float32(math.Exp2(float64(a[l].X)))
			r[l] = gmath.V4(v, v, v, v)
		}
	},
	OpLG2: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			v := float32(math.Log2(math.Abs(float64(a[l].X))))
			r[l] = gmath.V4(v, v, v, v)
		}
	},
	OpPOW: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			v := float32(math.Pow(float64(a[l].X), float64(b[l].X)))
			r[l] = gmath.V4(v, v, v, v)
		}
	},
	OpFRC: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = gmath.Vec4{
				X: frc(a[l].X), Y: frc(a[l].Y), Z: frc(a[l].Z), W: frc(a[l].W),
			}
		}
	},
	OpFLR: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = gmath.Vec4{
				X: flr(a[l].X), Y: flr(a[l].Y), Z: flr(a[l].Z), W: flr(a[l].W),
			}
		}
	},
	OpABS: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = gmath.Vec4{
				X: absf(a[l].X), Y: absf(a[l].Y), Z: absf(a[l].Z), W: absf(a[l].W),
			}
		}
	},
	OpLRP: func(r, a, b, c *[4]gmath.Vec4) {
		one := gmath.V4(1, 1, 1, 1)
		for l := 0; l < 4; l++ {
			r[l] = a[l].Mul(b[l]).Add(one.Sub(a[l]).Mul(c[l]))
		}
	},
	OpXPD: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = a[l].Vec3().Cross(b[l].Vec3()).Vec4(0)
		}
	},
	OpCMP: func(r, a, b, c *[4]gmath.Vec4) {
		for l := 0; l < 4; l++ {
			r[l] = gmath.Vec4{
				X: cmpSel(a[l].X, b[l].X, c[l].X),
				Y: cmpSel(a[l].Y, b[l].Y, c[l].Y),
				Z: cmpSel(a[l].Z, b[l].Z, c[l].Z),
				W: cmpSel(a[l].W, b[l].W, c[l].W),
			}
		}
	},
}

// ---------------------------------------------------------------------
// Per-instruction compilation.

// compileQuadInstr lowers one instruction to its quad kernel.
func compileQuadInstr(ins *Instruction) quadKernel {
	if ins.Op.IsTexture() {
		return compileTexQuad(ins)
	}
	if ins.Op == OpKIL {
		return compileKilQuad(ins)
	}
	return compileALUQuad(ins)
}

// compileTexQuad lowers TEX/TXB/TXP: coordinates are gathered for all
// four lanes and sampled in one SampleQuad call, exactly like the
// interpreter's execTex.
func compileTexQuad(ins *Instruction) quadKernel {
	src := compileSrc4(ins.Src[0])
	wr := compileWr4(ins.Dst)
	unit := int(ins.TexUnit)
	txb := ins.Op == OpTXB
	txp := ins.Op == OpTXP
	return func(f *quadFile) {
		f.s0 = src(f)
		var bias float32
		if txb {
			// The bias is taken from the first lane's w; real hardware
			// also evaluates the bias per quad.
			bias = f.s0[0].W
		}
		f.r = [4]gmath.Vec4{}
		if f.sampler != nil {
			f.r = f.sampler.SampleQuad(unit, &f.s0, bias, txp)
		}
		wr(f, &f.r)
	}
}

// compileKilQuad lowers KIL: live lanes with any negative component are
// removed from the mask and counted.
func compileKilQuad(ins *Instruction) quadKernel {
	src := compileSrc4(ins.Src[0])
	return func(f *quadFile) {
		if f.live&0xF == 0 {
			return
		}
		a := src(f)
		for lane := 0; lane < 4; lane++ {
			bit := uint8(1) << lane
			if f.live&bit == 0 {
				continue
			}
			v := a[lane]
			if v.X < 0 || v.Y < 0 || v.Z < 0 || v.W < 0 {
				f.live &^= bit
				f.kills++
			}
		}
	}
}

// compileALUQuad lowers an ALU instruction: operand reads are fused
// into the kernel and the op runs over all four lanes in one call.
func compileALUQuad(ins *Instruction) quadKernel {
	op := quadOps[ins.Op]
	wr := compileWr4(ins.Dst)
	switch ins.Op.srcCount() {
	case 1:
		s0 := compileSrc4(ins.Src[0])
		if ins.Op == OpMOV {
			// MOV needs no compute stage: read, then write.
			return func(f *quadFile) {
				f.s0 = s0(f)
				wr(f, &f.s0)
			}
		}
		return func(f *quadFile) {
			f.s0 = s0(f)
			op(&f.r, &f.s0, nil, nil)
			wr(f, &f.r)
		}
	case 2:
		s0 := compileSrc4(ins.Src[0])
		s1 := compileSrc4(ins.Src[1])
		return func(f *quadFile) {
			f.s0 = s0(f)
			f.s1 = s1(f)
			op(&f.r, &f.s0, &f.s1, nil)
			wr(f, &f.r)
		}
	default:
		s0 := compileSrc4(ins.Src[0])
		s1 := compileSrc4(ins.Src[1])
		s2 := compileSrc4(ins.Src[2])
		return func(f *quadFile) {
			f.s0 = s0(f)
			f.s1 = s1(f)
			f.s2 = s2(f)
			op(&f.r, &f.s0, &f.s1, &f.s2)
			wr(f, &f.r)
		}
	}
}

// compileLaneInstr lowers one instruction to its single-lane (vertex)
// kernel. The interpreter runs every opcode through gather + compute +
// writeMasked in this mode — texture and KIL opcodes compute a zero
// vector — and the lane kernels mirror that exactly.
func compileLaneInstr(ins *Instruction) laneKernel {
	op := ins.Op
	wr := compileWr1(ins.Dst)
	n := op.srcCount()
	var s0, s1, s2 src1Fn
	if n > 0 {
		s0 = compileSrc1(ins.Src[0])
	}
	if n > 1 {
		s1 = compileSrc1(ins.Src[1])
	}
	if n > 2 {
		s2 = compileSrc1(ins.Src[2])
	}
	switch n {
	case 1:
		return func(f *laneFile) {
			wr(f, compute(op, [3]gmath.Vec4{s0(f)}))
		}
	case 2:
		return func(f *laneFile) {
			wr(f, compute(op, [3]gmath.Vec4{s0(f), s1(f)}))
		}
	default:
		return func(f *laneFile) {
			wr(f, compute(op, [3]gmath.Vec4{s0(f), s1(f), s2(f)}))
		}
	}
}
