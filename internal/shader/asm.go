package shader

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a text shader program. The syntax is ARB-assembly
// flavoured, one instruction per line:
//
//	# comment
//	dp4 o0.x, c0, v0
//	mad r0.xyz, r1, c2.w, -v2
//	tex r1, v3, t0
//	kil r1
//
// Registers: rN temporaries, vN inputs, oN outputs, cN constants, tN
// texture units. Destinations take an optional write mask (.xyz);
// sources take an optional swizzle (one component broadcasts, four
// select) and a leading '-' for negation.
func Assemble(name string, kind Kind, src string) (*Program, error) {
	p := &Program{Name: name, Kind: kind}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		in, err := assembleLine(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo+1, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for statically known programs; it panics on
// error.
func MustAssemble(name string, kind Kind, src string) *Program {
	p, err := Assemble(name, kind, src)
	if err != nil {
		panic(err)
	}
	return p
}

func assembleLine(line string) (Instruction, error) {
	var in Instruction
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := opByName(strings.ToLower(mnemonic))
	if !ok {
		return in, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	in.Op = op

	var operands []string
	for _, f := range strings.Split(rest, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			operands = append(operands, f)
		}
	}

	want := op.srcCount()
	if op.hasDst() {
		want++
	}
	if op.IsTexture() {
		want++ // trailing texture unit
	}
	if len(operands) != want {
		return in, fmt.Errorf("%s: got %d operands, want %d", op, len(operands), want)
	}

	i := 0
	if op.hasDst() {
		d, err := parseDst(operands[i])
		if err != nil {
			return in, err
		}
		in.Dst = d
		i++
	}
	for s := 0; s < op.srcCount(); s++ {
		src, err := parseSrc(operands[i])
		if err != nil {
			return in, err
		}
		in.Src[s] = src
		i++
	}
	if op.IsTexture() {
		unit, err := parseTexUnit(operands[i])
		if err != nil {
			return in, err
		}
		in.TexUnit = unit
	}
	return in, nil
}

func opByName(name string) (Opcode, bool) {
	for i, n := range opNames {
		if n == name {
			return Opcode(i), true
		}
	}
	return 0, false
}

func parseReg(tok string) (RegFile, uint8, string, error) {
	if tok == "" {
		return 0, 0, "", fmt.Errorf("empty register")
	}
	var file RegFile
	switch tok[0] {
	case 'r':
		file = FileTemp
	case 'v', 'i':
		file = FileInput
	case 'o':
		file = FileOutput
	case 'c':
		file = FileConst
	default:
		return 0, 0, "", fmt.Errorf("bad register %q", tok)
	}
	rest := tok[1:]
	numEnd := 0
	for numEnd < len(rest) && rest[numEnd] >= '0' && rest[numEnd] <= '9' {
		numEnd++
	}
	if numEnd == 0 {
		return 0, 0, "", fmt.Errorf("register %q missing index", tok)
	}
	n, err := strconv.Atoi(rest[:numEnd])
	if err != nil || n > 255 {
		return 0, 0, "", fmt.Errorf("register %q bad index", tok)
	}
	return file, uint8(n), rest[numEnd:], nil
}

func parseDst(tok string) (Dst, error) {
	file, idx, suffix, err := parseReg(tok)
	if err != nil {
		return Dst{}, err
	}
	d := Dst{File: file, Index: idx, Mask: MaskXYZW}
	if suffix != "" {
		if suffix[0] != '.' {
			return Dst{}, fmt.Errorf("bad destination suffix %q", suffix)
		}
		mask := uint8(0)
		for _, c := range suffix[1:] {
			ci := strings.IndexRune(compNames, c)
			if ci < 0 {
				return Dst{}, fmt.Errorf("bad mask component %q", string(c))
			}
			mask |= 1 << ci
		}
		if mask == 0 {
			return Dst{}, fmt.Errorf("empty write mask in %q", tok)
		}
		d.Mask = mask
	}
	return d, nil
}

func parseSrc(tok string) (Src, error) {
	s := Src{Swizzle: SwizzleIdentity}
	if strings.HasPrefix(tok, "-") {
		s.Negate = true
		tok = tok[1:]
	}
	file, idx, suffix, err := parseReg(tok)
	if err != nil {
		return Src{}, err
	}
	s.File, s.Index = file, idx
	if suffix != "" {
		if suffix[0] != '.' {
			return Src{}, fmt.Errorf("bad source suffix %q", suffix)
		}
		sw := suffix[1:]
		switch len(sw) {
		case 1:
			ci := strings.IndexByte(compNames, sw[0])
			if ci < 0 {
				return Src{}, fmt.Errorf("bad swizzle %q", sw)
			}
			c := uint8(ci)
			s.Swizzle = Swizzle{c, c, c, c}
		case 4:
			for i := 0; i < 4; i++ {
				ci := strings.IndexByte(compNames, sw[i])
				if ci < 0 {
					return Src{}, fmt.Errorf("bad swizzle %q", sw)
				}
				s.Swizzle[i] = uint8(ci)
			}
		default:
			return Src{}, fmt.Errorf("swizzle %q must have 1 or 4 components", sw)
		}
	}
	return s, nil
}

func parseTexUnit(tok string) (uint8, error) {
	if len(tok) < 2 || tok[0] != 't' {
		return 0, fmt.Errorf("bad texture unit %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= NumTexUnits {
		return 0, fmt.Errorf("texture unit %q out of range", tok)
	}
	return uint8(n), nil
}
