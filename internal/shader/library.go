package shader

import "fmt"

// This file provides canonical programs and a program synthesizer. The
// workload generators need shader programs whose instruction and texture
// counts match the per-game averages of the paper's Tables IV and XII;
// Synthesize builds valid programs with exact counts that still perform
// meaningful arithmetic, so interpreter results stay well-defined.

// BasicTransformVS returns the minimal vertex program: a 4x4
// model-view-projection transform (constants c0..c3 hold the matrix rows)
// plus pass-through of one texture coordinate and one color.
func BasicTransformVS() *Program {
	return MustAssemble("basic-transform", VertexProgram, `
		dp4 o0.x, c0, v0
		dp4 o0.y, c1, v0
		dp4 o0.z, c2, v0
		dp4 o0.w, c3, v0
		mov o1, v1   # texcoord
		mov o2, v2   # color
	`)
}

// DepthOnlyVS returns the vertex program used by depth-prepass and
// stencil shadow volume batches: position transform only.
func DepthOnlyVS() *Program {
	return MustAssemble("depth-only", VertexProgram, `
		dp4 o0.x, c0, v0
		dp4 o0.y, c1, v0
		dp4 o0.z, c2, v0
		dp4 o0.w, c3, v0
	`)
}

// TexturedFS returns a minimal fragment program: one texture lookup
// modulated by the interpolated color.
func TexturedFS() *Program {
	return MustAssemble("textured", FragmentProgram, `
		tex r0, v1, t0
		mul o0, r0, v2
	`)
}

// StencilVolumeFS returns the trivial fragment program bound during
// stencil shadow volume rendering; color writes are masked off so the
// result is irrelevant, but hardware still needs a bound program.
func StencilVolumeFS() *Program {
	return MustAssemble("stencil-volume", FragmentProgram, `
		mov o0, v2
	`)
}

// AlphaTestedFS returns a fragment program implementing alpha test via
// KIL, the way ATTILA models alpha test (paper, Table IX footnote): the
// fragment is discarded when the sampled alpha falls below the reference
// in c15.x.
func AlphaTestedFS() *Program {
	return MustAssemble("alpha-tested", FragmentProgram, `
		tex r0, v1, t0
		sub r1.x, r0.w, c15.x
		kil r1.x
		mul o0, r0, v2
	`)
}

// SynthesizeVS builds a vertex program with exactly total instructions.
// The program always starts with the 4-instruction position transform
// and forwards the texture coordinate and color varyings; the remainder
// are arithmetic instructions typical of skinning and per-vertex
// lighting. total must be at least 6.
func SynthesizeVS(name string, total int) (*Program, error) {
	if total < 6 {
		return nil, fmt.Errorf("shader: vertex program needs >= 6 instructions, got %d", total)
	}
	p := &Program{Name: name, Kind: VertexProgram}
	p.Instrs = append(p.Instrs,
		dp4(DstC(FileOutput, 0, 1), SrcReg(FileConst, 0), SrcReg(FileInput, 0)),
		dp4(DstC(FileOutput, 0, 2), SrcReg(FileConst, 1), SrcReg(FileInput, 0)),
		dp4(DstC(FileOutput, 0, 4), SrcReg(FileConst, 2), SrcReg(FileInput, 0)),
		dp4(DstC(FileOutput, 0, 8), SrcReg(FileConst, 3), SrcReg(FileInput, 0)),
		Instruction{Op: OpMOV, Dst: DstReg(FileOutput, 1), Src: [3]Src{SrcReg(FileInput, 1)}},
		Instruction{Op: OpMOV, Dst: DstReg(FileOutput, 2), Src: [3]Src{SrcReg(FileInput, 2)}},
	)
	// Fill with a lighting-flavoured MAD/DP3/MUL rotation writing temps.
	fill := total - 6
	for i := 0; i < fill; i++ {
		r := uint8(i % 4)
		switch i % 3 {
		case 0:
			p.Instrs = append(p.Instrs, Instruction{
				Op:  OpMAD,
				Dst: DstReg(FileTemp, int(r)),
				Src: [3]Src{SrcReg(FileInput, 1), SrcReg(FileConst, 4+int(r)), SrcReg(FileConst, 8)},
			})
		case 1:
			p.Instrs = append(p.Instrs, Instruction{
				Op:  OpDP3,
				Dst: Dst{File: FileTemp, Index: r, Mask: 1},
				Src: [3]Src{SrcReg(FileTemp, int(r)), SrcReg(FileConst, 9)},
			})
		default:
			// Only varying slots o3/o4 are scratch; o1/o2 carry the
			// texture coordinate and color pass-throughs.
			p.Instrs = append(p.Instrs, Instruction{
				Op:  OpMUL,
				Dst: DstReg(FileOutput, 3+int(r)%2),
				Src: [3]Src{SrcReg(FileTemp, int(r)), SrcReg(FileConst, 10)},
			})
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SynthesizeFS builds a fragment program with exactly total instructions
// of which tex are texture lookups, cycling over the first texUnits
// sampler units. The ALU part is a MAD/MUL/DP3 combiner chain over the
// sampled values; output o0 is always written last. Requirements:
// total >= tex+1, tex >= 0, texUnits >= 1 when tex > 0.
func SynthesizeFS(name string, total, tex, texUnits int) (*Program, error) {
	if tex < 0 || total < tex+1 || total < 1 {
		return nil, fmt.Errorf("shader: bad fragment program shape total=%d tex=%d", total, tex)
	}
	if tex > 0 && texUnits < 1 {
		return nil, fmt.Errorf("shader: tex instructions need texUnits >= 1")
	}
	p := &Program{Name: name, Kind: FragmentProgram}
	// Interleave texture lookups with ALU work the way real shaders do:
	// sample, combine, sample, combine...
	alu := total - tex - 1 // reserve the final output move/mul
	for i := 0; i < tex; i++ {
		p.Instrs = append(p.Instrs, Instruction{
			Op:      OpTEX,
			Dst:     DstReg(FileTemp, i%4),
			Src:     [3]Src{SrcReg(FileInput, 1)},
			TexUnit: uint8(i % texUnits),
		})
		// Spread the ALU instructions between texture lookups.
		share := alu / max(tex, 1)
		if i == tex-1 {
			share = alu - share*(tex-1)
		}
		appendALUChain(p, share, i)
	}
	if tex == 0 {
		appendALUChain(p, alu, 0)
	}
	// Final combine into the color output.
	src := SrcReg(FileTemp, 0)
	if tex == 0 && alu == 0 {
		src = SrcReg(FileInput, 2)
	}
	p.Instrs = append(p.Instrs, Instruction{
		Op:  OpMUL,
		Dst: DstReg(FileOutput, 0),
		Src: [3]Src{src, SrcReg(FileInput, 2)},
	})
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SynthesizeAlphaFS builds an alpha-tested fragment program with exactly
// total instructions of which tex are texture lookups: the first lookup
// feeds a KIL against the alpha reference in c15.x (ATTILA's alpha-test
// model). Requires total >= tex+3 and tex >= 1.
func SynthesizeAlphaFS(name string, total, tex, texUnits int) (*Program, error) {
	if tex < 1 || total < tex+3 {
		return nil, fmt.Errorf("shader: bad alpha program shape total=%d tex=%d", total, tex)
	}
	if texUnits < 1 {
		return nil, fmt.Errorf("shader: alpha program needs texUnits >= 1")
	}
	p := &Program{Name: name, Kind: FragmentProgram}
	// Sample, compare alpha against the reference, kill.
	p.Instrs = append(p.Instrs,
		Instruction{Op: OpTEX, Dst: DstReg(FileTemp, 0),
			Src: [3]Src{SrcReg(FileInput, 1)}, TexUnit: 0},
		Instruction{Op: OpSUB, Dst: DstC(FileTemp, 3, 1),
			Src: [3]Src{swizzleW(SrcReg(FileTemp, 0)), swizzleX(SrcReg(FileConst, 15))}},
		// Broadcast .x so stale components of the scratch register can
		// never trigger the kill.
		Instruction{Op: OpKIL, Src: [3]Src{swizzleX(SrcReg(FileTemp, 3))}},
	)
	for i := 1; i < tex; i++ {
		p.Instrs = append(p.Instrs, Instruction{
			Op: OpTEX, Dst: DstReg(FileTemp, i%4),
			Src: [3]Src{SrcReg(FileInput, 1)}, TexUnit: uint8(i % texUnits),
		})
	}
	appendALUChain(p, total-tex-3, 1)
	p.Instrs = append(p.Instrs, Instruction{
		Op:  OpMUL,
		Dst: DstReg(FileOutput, 0),
		Src: [3]Src{SrcReg(FileTemp, 0), SrcReg(FileInput, 2)},
	})
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func swizzleW(s Src) Src {
	s.Swizzle = Swizzle{3, 3, 3, 3}
	return s
}

func swizzleX(s Src) Src {
	s.Swizzle = Swizzle{0, 0, 0, 0}
	return s
}

func appendALUChain(p *Program, n, salt int) {
	for i := 0; i < n; i++ {
		r := (salt + i) % 4
		switch i % 3 {
		case 0:
			p.Instrs = append(p.Instrs, Instruction{
				Op:  OpMAD,
				Dst: DstReg(FileTemp, r),
				Src: [3]Src{SrcReg(FileTemp, r), SrcReg(FileConst, 4), SrcReg(FileConst, 5)},
			})
		case 1:
			p.Instrs = append(p.Instrs, Instruction{
				Op:  OpMUL,
				Dst: DstReg(FileTemp, (r+1)%4),
				Src: [3]Src{SrcReg(FileTemp, r), SrcReg(FileInput, 2)},
			})
		default:
			p.Instrs = append(p.Instrs, Instruction{
				Op:  OpDP3,
				Dst: Dst{File: FileTemp, Index: uint8(r), Mask: MaskXYZW},
				Src: [3]Src{SrcReg(FileTemp, r), SrcReg(FileConst, 6)},
			})
		}
	}
}

// dp4 builds a DP4 instruction.
func dp4(d Dst, a, b Src) Instruction {
	return Instruction{Op: OpDP4, Dst: d, Src: [3]Src{a, b}}
}

// DstC builds a destination with an explicit component mask.
func DstC(file RegFile, index int, mask uint8) Dst {
	return Dst{File: file, Index: uint8(index), Mask: mask}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
