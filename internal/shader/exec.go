package shader

import (
	"math"
	"math/bits"

	"gpuchar/internal/gmath"
	"gpuchar/internal/metrics"
)

// Sampler provides texture sampling to fragment programs. The interpreter
// always samples a whole 2x2 quad at once so the implementation can
// compute level-of-detail from coordinate derivatives, exactly as the
// hardware texture unit does.
type Sampler interface {
	// SampleQuad samples texture unit for four lockstep fragments.
	// coords holds the per-lane texture coordinates (s, t in x, y; the
	// q coordinate for projective lookups in w). bias is a per-lane LOD
	// bias (from TXB), and projective requests division by w (TXP).
	SampleQuad(unit int, coords *[4]gmath.Vec4, bias float32, projective bool) [4]gmath.Vec4
}

// ExecStats counts interpreter activity in the units the paper reports.
type ExecStats struct {
	// Invocations is the number of per-vertex or per-fragment program
	// runs (lanes, not quads).
	Invocations int64
	// Instructions is the number of instructions executed summed over
	// lanes; Instructions/Invocations is the paper's "average shader
	// instructions" metric.
	Instructions int64
	// TexInstructions counts executed texture instructions over lanes.
	TexInstructions int64
	// Kills counts fragments discarded by KIL.
	Kills int64
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the shader execution counter names.
func (s *ExecStats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/invocations", &s.Invocations)
	r.Bind(prefix+"/instructions", &s.Instructions)
	r.Bind(prefix+"/tex_instructions", &s.TexInstructions)
	r.Bind(prefix+"/kills", &s.Kills)
}

// AvgInstructions returns instructions per invocation.
func (s ExecStats) AvgInstructions() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Invocations)
}

// AvgTexInstructions returns texture instructions per invocation.
func (s ExecStats) AvgTexInstructions() float64 {
	if s.Invocations == 0 {
		return 0
	}
	return float64(s.TexInstructions) / float64(s.Invocations)
}

// Machine executes shader programs. It holds the constant register bank
// (shared by all invocations of a program, like real hardware) and the
// texture sampler binding.
type Machine struct {
	Consts  [NumConsts]gmath.Vec4
	Sampler Sampler

	stats ExecStats
	// scratch register state, reused across invocations
	temps [4][NumTemps]gmath.Vec4

	// qf and lf are the register-bank views the compiled kernels run
	// against. They live on the Machine (not the stack) because their
	// addresses pass through indirect kernel calls — as locals, escape
	// analysis would heap-allocate them on every invocation.
	qf quadFile
	lf laneFile
}

// NewMachine returns a Machine with zeroed constants and no sampler.
func NewMachine() *Machine { return &Machine{} }

// Stats returns the accumulated execution statistics.
func (m *Machine) Stats() ExecStats { return m.stats }

// ResetStats zeroes the statistics counters.
func (m *Machine) ResetStats() { m.stats = ExecStats{} }

// RegisterMetrics binds the machine's live counters into r under prefix.
func (m *Machine) RegisterMetrics(r *metrics.Registry, prefix string) {
	m.stats.Register(r, prefix)
}

// RunVertex executes a vertex program on a single vertex. in holds the
// vertex attributes; the shaded results are written to out. Execution
// uses the compiled form of the program (see compile.go).
func (m *Machine) RunVertex(p *Program, in *[NumInputs]gmath.Vec4, out *[NumOutputs]gmath.Vec4) {
	c := p.Compiled()
	m.stats.Invocations++
	m.stats.Instructions += c.instrs
	f := &m.lf
	f.in, f.out, f.temps, f.consts = in, out, &m.temps[0], &m.Consts
	for _, k := range c.lane {
		k(f)
	}
}

// RunQuad executes a fragment program on a 2x2 quad in lockstep.
// activeMask bit i enables lane i (lanes outside the triangle are helper
// lanes: they execute for derivative purposes but their outputs are
// ignored by the caller). The returned liveMask clears lanes killed by
// KIL. Statistics count only lanes active on entry. Execution uses the
// compiled form of the program (see compile.go); the ISA has no control
// flow, so the instruction counts of a run are known statically.
func (m *Machine) RunQuad(p *Program, in *[4][NumInputs]gmath.Vec4, activeMask uint8,
	out *[4][NumOutputs]gmath.Vec4) (liveMask uint8) {

	c := p.Compiled()
	active := int64(bits.OnesCount8(activeMask & 0xF))
	m.stats.Invocations += active
	m.stats.Instructions += c.instrs * active
	m.stats.TexInstructions += c.texInstrs * active

	// Zero the registers this program can touch so the invocation is a
	// pure function of its inputs: with scratch residue, the shaded
	// colors would depend on which machine (serial or tile worker)
	// shaded the previous quad.
	for lane := 0; lane < 4; lane++ {
		clear(m.temps[lane][:c.tempHi])
		clear(out[lane][:c.outHi])
	}

	f := &m.qf
	f.in, f.out, f.temps, f.consts = in, out, &m.temps, &m.Consts
	f.sampler, f.live, f.kills = m.Sampler, activeMask, 0
	for _, k := range c.quad {
		k(f)
	}
	m.stats.Kills += f.kills
	return f.live
}

// RunVertexInterpreted is the reference interpreter for vertex programs.
// It is semantically identical to RunVertex and is kept as the oracle
// for the compiled executor's differential and fuzz tests.
func (m *Machine) RunVertexInterpreted(p *Program, in *[NumInputs]gmath.Vec4,
	out *[NumOutputs]gmath.Vec4) {

	m.stats.Invocations++
	m.stats.Instructions += int64(len(p.Instrs))
	temps := &m.temps[0]
	for i := range p.Instrs {
		in0 := &p.Instrs[i]
		a := m.gather(in0, 0, in, temps)
		m.writeResult(in0, compute(in0.Op, a), temps, out)
	}
}

// RunQuadInterpreted is the reference interpreter for fragment programs:
// per-instruction, per-lane execution with no compiled specialization.
// It is semantically identical to RunQuad — same outputs, same live
// mask, same statistics — and is kept as the oracle for the compiled
// executor's differential and fuzz tests (and as the baseline of the
// shader_exec benchmark section).
func (m *Machine) RunQuadInterpreted(p *Program, in *[4][NumInputs]gmath.Vec4, activeMask uint8,
	out *[4][NumOutputs]gmath.Vec4) (liveMask uint8) {

	active := int64(bits.OnesCount8(activeMask & 0xF))
	m.stats.Invocations += active
	m.stats.Instructions += int64(len(p.Instrs)) * active
	liveMask = activeMask

	// See RunQuad: invocations must be pure functions of their inputs.
	tempHi, outHi := p.regBounds()
	for lane := 0; lane < 4; lane++ {
		clear(m.temps[lane][:tempHi])
		clear(out[lane][:outHi])
	}

	for i := range p.Instrs {
		ins := &p.Instrs[i]
		switch {
		case ins.Op.IsTexture():
			m.stats.TexInstructions += active
			m.execTex(ins, in, out)
		case ins.Op == OpKIL:
			for lane := 0; lane < 4; lane++ {
				if liveMask&(1<<lane) == 0 {
					continue
				}
				v := m.gather(ins, lane, &in[lane], &m.temps[lane])[0]
				if v.X < 0 || v.Y < 0 || v.Z < 0 || v.W < 0 {
					liveMask &^= 1 << lane
					m.stats.Kills++
				}
			}
		default:
			for lane := 0; lane < 4; lane++ {
				a := m.gather(ins, lane, &in[lane], &m.temps[lane])
				m.writeResult(ins, compute(ins.Op, a), &m.temps[lane], &out[lane])
			}
		}
	}
	return liveMask
}

// execTex evaluates a texture instruction for all four lanes at once.
func (m *Machine) execTex(ins *Instruction, in *[4][NumInputs]gmath.Vec4,
	out *[4][NumOutputs]gmath.Vec4) {

	var coords [4]gmath.Vec4
	var bias float32
	for lane := 0; lane < 4; lane++ {
		c := m.readSrc(ins.Src[0], &in[lane], &m.temps[lane])
		coords[lane] = c
	}
	if ins.Op == OpTXB {
		// The bias is taken from the first lane's w; real hardware also
		// evaluates the bias per quad.
		bias = coords[0].W
	}
	var texels [4]gmath.Vec4
	if m.Sampler != nil {
		texels = m.Sampler.SampleQuad(int(ins.TexUnit), &coords, bias, ins.Op == OpTXP)
	}
	for lane := 0; lane < 4; lane++ {
		writeMasked(ins.Dst, texels[lane], &m.temps[lane], &out[lane])
	}
}

// gather reads the source operands of ins for one lane.
func (m *Machine) gather(ins *Instruction, lane int, in *[NumInputs]gmath.Vec4,
	temps *[NumTemps]gmath.Vec4) [3]gmath.Vec4 {

	var a [3]gmath.Vec4
	n := ins.Op.srcCount()
	for s := 0; s < n; s++ {
		a[s] = m.readSrc(ins.Src[s], in, temps)
	}
	return a
}

func (m *Machine) readSrc(s Src, in *[NumInputs]gmath.Vec4,
	temps *[NumTemps]gmath.Vec4) gmath.Vec4 {

	var v gmath.Vec4
	switch s.File {
	case FileTemp:
		v = temps[s.Index]
	case FileInput:
		v = in[s.Index]
	case FileConst:
		v = m.Consts[s.Index]
	}
	if s.Swizzle != SwizzleIdentity {
		v = gmath.Vec4{
			X: v.Comp(int(s.Swizzle[0])),
			Y: v.Comp(int(s.Swizzle[1])),
			Z: v.Comp(int(s.Swizzle[2])),
			W: v.Comp(int(s.Swizzle[3])),
		}
	}
	if s.Negate {
		v = v.Scale(-1)
	}
	return v
}

func (m *Machine) writeResult(ins *Instruction, v gmath.Vec4,
	temps *[NumTemps]gmath.Vec4, out *[NumOutputs]gmath.Vec4) {
	writeMasked(ins.Dst, v, temps, out)
}

func writeMasked(d Dst, v gmath.Vec4, temps *[NumTemps]gmath.Vec4,
	out *[NumOutputs]gmath.Vec4) {

	var dst *gmath.Vec4
	switch d.File {
	case FileTemp:
		dst = &temps[d.Index]
	case FileOutput:
		dst = &out[d.Index]
	default:
		return
	}
	if d.Mask == MaskXYZW {
		*dst = v
		return
	}
	if d.Mask&1 != 0 {
		dst.X = v.X
	}
	if d.Mask&2 != 0 {
		dst.Y = v.Y
	}
	if d.Mask&4 != 0 {
		dst.Z = v.Z
	}
	if d.Mask&8 != 0 {
		dst.W = v.W
	}
}

// compute evaluates a non-texture, non-kill ALU operation.
func compute(op Opcode, a [3]gmath.Vec4) gmath.Vec4 {
	switch op {
	case OpMOV:
		return a[0]
	case OpADD:
		return a[0].Add(a[1])
	case OpSUB:
		return a[0].Sub(a[1])
	case OpMUL:
		return a[0].Mul(a[1])
	case OpMAD:
		return a[0].Mul(a[1]).Add(a[2])
	case OpDP3:
		d := a[0].Dot3(a[1])
		return gmath.V4(d, d, d, d)
	case OpDP4:
		d := a[0].Dot(a[1])
		return gmath.V4(d, d, d, d)
	case OpMIN:
		return gmath.Vec4{
			X: minf(a[0].X, a[1].X), Y: minf(a[0].Y, a[1].Y),
			Z: minf(a[0].Z, a[1].Z), W: minf(a[0].W, a[1].W),
		}
	case OpMAX:
		return gmath.Vec4{
			X: maxf(a[0].X, a[1].X), Y: maxf(a[0].Y, a[1].Y),
			Z: maxf(a[0].Z, a[1].Z), W: maxf(a[0].W, a[1].W),
		}
	case OpSLT:
		return cmpEach(a[0], a[1], func(x, y float32) bool { return x < y })
	case OpSGE:
		return cmpEach(a[0], a[1], func(x, y float32) bool { return x >= y })
	case OpRCP:
		r := float32(1) / a[0].X
		return gmath.V4(r, r, r, r)
	case OpRSQ:
		r := float32(1 / math.Sqrt(math.Abs(float64(a[0].X))))
		return gmath.V4(r, r, r, r)
	case OpEX2:
		r := float32(math.Exp2(float64(a[0].X)))
		return gmath.V4(r, r, r, r)
	case OpLG2:
		r := float32(math.Log2(math.Abs(float64(a[0].X))))
		return gmath.V4(r, r, r, r)
	case OpPOW:
		r := float32(math.Pow(float64(a[0].X), float64(a[1].X)))
		return gmath.V4(r, r, r, r)
	case OpFRC:
		return gmath.Vec4{
			X: frc(a[0].X), Y: frc(a[0].Y), Z: frc(a[0].Z), W: frc(a[0].W),
		}
	case OpFLR:
		return gmath.Vec4{
			X: flr(a[0].X), Y: flr(a[0].Y), Z: flr(a[0].Z), W: flr(a[0].W),
		}
	case OpABS:
		return gmath.Vec4{
			X: absf(a[0].X), Y: absf(a[0].Y), Z: absf(a[0].Z), W: absf(a[0].W),
		}
	case OpLRP:
		// dst = src0*src1 + (1-src0)*src2
		one := gmath.V4(1, 1, 1, 1)
		return a[0].Mul(a[1]).Add(one.Sub(a[0]).Mul(a[2]))
	case OpXPD:
		c := a[0].Vec3().Cross(a[1].Vec3())
		return c.Vec4(0)
	case OpCMP:
		return gmath.Vec4{
			X: cmpSel(a[0].X, a[1].X, a[2].X),
			Y: cmpSel(a[0].Y, a[1].Y, a[2].Y),
			Z: cmpSel(a[0].Z, a[1].Z, a[2].Z),
			W: cmpSel(a[0].W, a[1].W, a[2].W),
		}
	}
	return gmath.Vec4{}
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func absf(a float32) float32 {
	if a < 0 {
		return -a
	}
	return a
}

func frc(a float32) float32 { return a - flr(a) }

func flr(a float32) float32 { return float32(math.Floor(float64(a))) }

func cmpSel(c, a, b float32) float32 {
	if c < 0 {
		return a
	}
	return b
}

func cmpEach(a, b gmath.Vec4, pred func(x, y float32) bool) gmath.Vec4 {
	sel := func(x, y float32) float32 {
		if pred(x, y) {
			return 1
		}
		return 0
	}
	return gmath.Vec4{
		X: sel(a.X, b.X), Y: sel(a.Y, b.Y), Z: sel(a.Z, b.Z), W: sel(a.W, b.W),
	}
}
