package shader

import (
	"math"
	"math/rand"
	"testing"

	"gpuchar/internal/gmath"
)

// vecBits exposes a Vec4 as raw float bits, so comparisons are
// bit-exact: NaNs compare equal and +0 differs from -0 (Go's == would
// do the opposite on both counts). NaNs are canonicalized first: the
// payload and sign of a generated NaN depend on how the compiler
// schedules the float expression at each inline site (x86 mulss/addss
// propagate whichever source operand register holds a NaN), so two
// textually identical expressions can yield differently-signed NaNs.
// NaN sign and payload are invisible to every ISA operation — all
// comparisons (KIL, CMP, SLT, SGE, MIN, MAX) treat any NaN as false —
// so canonical comparison is the exact observable contract.
func vecBits(v gmath.Vec4) [4]uint32 {
	b := [4]uint32{
		math.Float32bits(v.X), math.Float32bits(v.Y),
		math.Float32bits(v.Z), math.Float32bits(v.W),
	}
	for i, x := range b {
		if x&0x7f80_0000 == 0x7f80_0000 && x&0x007f_ffff != 0 {
			b[i] = 0x7fc0_0000
		}
	}
	return b
}

func quadBanksEqual(a, b *[4][NumOutputs]gmath.Vec4) bool {
	for lane := range a {
		for r := range a[lane] {
			if vecBits(a[lane][r]) != vecBits(b[lane][r]) {
				return false
			}
		}
	}
	return true
}

func laneBanksEqual(a, b *[NumOutputs]gmath.Vec4) bool {
	for r := range a {
		if vecBits(a[r]) != vecBits(b[r]) {
			return false
		}
	}
	return true
}

// The compiled executor (compile.go) must be indistinguishable from the
// reference interpreter: identical outputs, identical surviving KIL
// masks, identical ExecStats. These tests drive both through every
// library program, every synthesized program shape, and fuzz-generated
// programs, with randomized inputs, constants and active masks.

// diffSampler is a deterministic pure-function sampler: the texel is a
// hash-free mix of unit, lane coordinates, bias and projective flag, so
// both executors see exactly the same texture results without standing
// up a texture unit.
type diffSampler struct{ calls int }

func (d *diffSampler) SampleQuad(unit int, coords *[4]gmath.Vec4, bias float32,
	projective bool) [4]gmath.Vec4 {

	d.calls++
	var out [4]gmath.Vec4
	pf := float32(1)
	if projective {
		pf = 2
	}
	for lane := 0; lane < 4; lane++ {
		c := coords[lane]
		out[lane] = gmath.V4(
			c.X*0.5+float32(unit)*0.125,
			c.Y*0.25+bias,
			c.Z*pf-c.W*0.0625,
			frc(c.X+c.Y+float32(lane)*0.3),
		)
	}
	return out
}

// fillRandom populates a quad input bank with values in [-2, 2),
// including exact zeros and negatives to exercise KIL and CMP edges.
func fillRandom(rng *rand.Rand, in *[4][NumInputs]gmath.Vec4) {
	for lane := range in {
		for r := range in[lane] {
			for cidx := 0; cidx < 4; cidx++ {
				var v float32
				switch rng.Intn(8) {
				case 0:
					v = 0
				case 1:
					v = -1
				default:
					v = rng.Float32()*4 - 2
				}
				in[lane][r] = in[lane][r].SetComp(cidx, v)
			}
		}
	}
}

// diffQuad runs p through the compiled executor and the interpreter on
// identical machines and fails the test on any divergence.
func diffQuad(t *testing.T, p *Program, rng *rand.Rand, rounds int) {
	t.Helper()
	var consts [NumConsts]gmath.Vec4
	for i := range consts {
		consts[i] = gmath.V4(rng.Float32()*4-2, rng.Float32()*4-2,
			rng.Float32()*4-2, rng.Float32()*4-2)
	}
	mc := NewMachine()
	mi := NewMachine()
	mc.Consts, mi.Consts = consts, consts
	sc, si := &diffSampler{}, &diffSampler{}
	mc.Sampler, mi.Sampler = sc, si

	var in [4][NumInputs]gmath.Vec4
	var outC, outI [4][NumOutputs]gmath.Vec4
	for round := 0; round < rounds; round++ {
		fillRandom(rng, &in)
		// Dirty both output banks identically: untouched registers
		// must end identical too (zeroing is bounded by outHi).
		for lane := range outC {
			for r := range outC[lane] {
				v := gmath.V4(float32(lane), float32(r), 9, -9)
				outC[lane][r], outI[lane][r] = v, v
			}
		}
		mask := uint8(rng.Intn(16))
		liveC := mc.RunQuad(p, &in, mask, &outC)
		liveI := mi.RunQuadInterpreted(p, &in, mask, &outI)
		if liveC != liveI {
			t.Fatalf("%s round %d mask %#x: liveMask compiled %#x, interpreted %#x",
				p.Name, round, mask, liveC, liveI)
		}
		if !quadBanksEqual(&outC, &outI) {
			t.Fatalf("%s round %d mask %#x: outputs diverged\ncompiled:    %v\ninterpreted: %v",
				p.Name, round, mask, outC, outI)
		}
		if cs, is := mc.Stats(), mi.Stats(); cs != is {
			t.Fatalf("%s round %d: stats diverged: compiled %+v, interpreted %+v",
				p.Name, round, cs, is)
		}
		if sc.calls != si.calls {
			t.Fatalf("%s round %d: sampler calls diverged: compiled %d, interpreted %d",
				p.Name, round, sc.calls, si.calls)
		}
	}
}

// diffVertex runs a vertex program through both executors.
func diffVertex(t *testing.T, p *Program, rng *rand.Rand, rounds int) {
	t.Helper()
	mc := NewMachine()
	mi := NewMachine()
	for i := range mc.Consts {
		c := gmath.V4(rng.Float32()*4-2, rng.Float32()*4-2,
			rng.Float32()*4-2, rng.Float32()*4-2)
		mc.Consts[i], mi.Consts[i] = c, c
	}
	var in [NumInputs]gmath.Vec4
	var outC, outI [NumOutputs]gmath.Vec4
	for round := 0; round < rounds; round++ {
		for r := range in {
			in[r] = gmath.V4(rng.Float32()*4-2, rng.Float32()*4-2,
				rng.Float32()*4-2, rng.Float32()*4-2)
		}
		// RunVertex does not zero registers; dirty both banks alike.
		for r := range outC {
			v := gmath.V4(float32(r), -3, 7, 0.5)
			outC[r], outI[r] = v, v
		}
		mc.RunVertex(p, &in, &outC)
		mi.RunVertexInterpreted(p, &in, &outI)
		if !laneBanksEqual(&outC, &outI) {
			t.Fatalf("%s round %d: outputs diverged\ncompiled:    %v\ninterpreted: %v",
				p.Name, round, outC, outI)
		}
		if cs, is := mc.Stats(), mi.Stats(); cs != is {
			t.Fatalf("%s round %d: stats diverged: compiled %+v, interpreted %+v",
				p.Name, round, cs, is)
		}
	}
}

// TestCompiledMatchesInterpreterLibrary runs every library and
// synthesized program through both executors.
func TestCompiledMatchesInterpreterLibrary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vsProgs := []*Program{BasicTransformVS(), DepthOnlyVS()}
	if p, err := SynthesizeVS("synthvs", 17); err == nil {
		vsProgs = append(vsProgs, p)
	} else {
		t.Fatalf("SynthesizeVS: %v", err)
	}
	for _, p := range vsProgs {
		diffVertex(t, p, rng, 50)
	}

	fsProgs := []*Program{TexturedFS(), StencilVolumeFS(), AlphaTestedFS()}
	if p, err := SynthesizeFS("synthfs", 23, 4, 3); err == nil {
		fsProgs = append(fsProgs, p)
	} else {
		t.Fatalf("SynthesizeFS: %v", err)
	}
	if p, err := SynthesizeAlphaFS("synthafs", 19, 3, 2); err == nil {
		fsProgs = append(fsProgs, p)
	} else {
		t.Fatalf("SynthesizeAlphaFS: %v", err)
	}
	for _, p := range fsProgs {
		diffQuad(t, p, rng, 50)
	}
}

// TestCompiledNilSampler pins the nil-sampler edge: texture
// instructions must still write zero texels through the write mask.
func TestCompiledNilSampler(t *testing.T) {
	p := MustAssemble("niltex", FragmentProgram, `
		mov r0, v0
		tex r0.xy, v1, t0
		mov o0, r0
	`)
	mc, mi := NewMachine(), NewMachine()
	var in [4][NumInputs]gmath.Vec4
	for lane := range in {
		in[lane][0] = gmath.V4(1, 2, 3, 4)
		in[lane][1] = gmath.V4(5, 6, 7, 8)
	}
	var outC, outI [4][NumOutputs]gmath.Vec4
	liveC := mc.RunQuad(p, &in, 0xF, &outC)
	liveI := mi.RunQuadInterpreted(p, &in, 0xF, &outI)
	if liveC != liveI || !quadBanksEqual(&outC, &outI) {
		t.Fatalf("nil-sampler divergence: live %#x/%#x out %v / %v",
			liveC, liveI, outC, outI)
	}
	want := gmath.V4(0, 0, 3, 4) // xy overwritten by zero texel, zw kept
	if outC[0][0] != want {
		t.Fatalf("nil-sampler texel: got %v, want %v", outC[0][0], want)
	}
}

// genProgram decodes a fuzz byte stream into a valid fragment program:
// every field is masked into range, so arbitrary bytes explore opcodes,
// swizzles, negation, write masks, register files and texture units
// without tripping validation.
func genProgram(data []byte) *Program {
	if len(data) < 4 {
		return nil
	}
	n := int(data[0])%24 + 1
	p := &Program{Name: "fuzz", Kind: FragmentProgram}
	pos := 1
	next := func() byte {
		if pos >= len(data) {
			pos = 1 // wrap, keeping streams of any length useful
		}
		b := data[pos]
		pos++
		return b
	}
	srcFiles := [4]RegFile{FileTemp, FileInput, FileConst, FileConst}
	for i := 0; i < n; i++ {
		var ins Instruction
		ins.Op = Opcode(next()) % numOpcodes
		if ins.Op.hasDst() {
			if next()&1 == 0 {
				ins.Dst.File = FileTemp
			} else {
				ins.Dst.File = FileOutput
			}
			ins.Dst.Index = next() % NumTemps
			ins.Dst.Mask = next()%MaskXYZW + 1
		}
		for s := 0; s < ins.Op.srcCount(); s++ {
			b := next()
			ins.Src[s].File = srcFiles[b&3]
			ins.Src[s].Index = next() % NumTemps
			sw := next()
			ins.Src[s].Swizzle = Swizzle{sw & 3, (sw >> 2) & 3, (sw >> 4) & 3, (sw >> 6) & 3}
			ins.Src[s].Negate = b&4 != 0
		}
		if ins.Op.IsTexture() {
			ins.TexUnit = next() % NumTexUnits
		}
		p.Instrs = append(p.Instrs, ins)
	}
	return p
}

// FuzzCompiledMatchesReference fuzzes program shapes and inputs: any
// divergence between the compiled executor and the interpreter —
// outputs, live mask, statistics — is a crash.
func FuzzCompiledMatchesReference(f *testing.F) {
	f.Add([]byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, int64(1))
	f.Add([]byte{24, 22, 1, 200, 13, 77, 0, 255, 31, 64, 128, 3}, int64(2))
	f.Add([]byte{3, 25, 9, 0, 0, 0, 22, 4, 4, 4}, int64(3)) // kil + tex
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		p := genProgram(data)
		if p == nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v\n%s", err, p)
		}
		rng := rand.New(rand.NewSource(seed))
		diffQuad(t, p, rng, 4)

		// The same instruction stream as a vertex program (tex/KIL
		// degrade to zero-compute writes in both executors).
		vp := &Program{Name: "fuzz-vs", Kind: VertexProgram, Instrs: p.Instrs}
		diffVertex(t, vp, rng, 4)
	})
}
