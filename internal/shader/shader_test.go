package shader

import (
	"strings"
	"testing"

	"gpuchar/internal/gmath"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble("t", VertexProgram, `
		# position transform
		dp4 o0.x, c0, v0
		mov o1, v1
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Instrs[0].Op != OpDP4 || p.Instrs[0].Dst.Mask != 1 {
		t.Errorf("instr0 = %+v", p.Instrs[0])
	}
	if p.Instrs[1].Op != OpMOV || p.Instrs[1].Dst.File != FileOutput {
		t.Errorf("instr1 = %+v", p.Instrs[1])
	}
}

func TestAssembleSwizzleNegate(t *testing.T) {
	p, err := Assemble("t", FragmentProgram, "add r0, -v0.wzyx, c1.y")
	if err != nil {
		t.Fatal(err)
	}
	s0 := p.Instrs[0].Src[0]
	if !s0.Negate || s0.Swizzle != (Swizzle{3, 2, 1, 0}) {
		t.Errorf("src0 = %+v", s0)
	}
	s1 := p.Instrs[0].Src[1]
	if s1.Swizzle != (Swizzle{1, 1, 1, 1}) {
		t.Errorf("broadcast swizzle = %+v", s1)
	}
}

func TestAssembleTexAndKil(t *testing.T) {
	p, err := Assemble("t", FragmentProgram, `
		tex r0, v1, t3
		kil r0
		mov o0, r0
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].TexUnit != 3 {
		t.Errorf("tex unit = %d", p.Instrs[0].TexUnit)
	}
	if p.TexCount() != 1 || p.ALUCount() != 2 {
		t.Errorf("tex=%d alu=%d", p.TexCount(), p.ALUCount())
	}
	if !p.UsesKill() {
		t.Error("UsesKill = false")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		kind Kind
		src  string
	}{
		{VertexProgram, "bogus r0, r1"},        // unknown opcode
		{VertexProgram, "add r0"},              // missing operand
		{VertexProgram, "tex r0, v0, t0"},      // tex in vertex program
		{VertexProgram, "kil r0"},              // kil in vertex program
		{FragmentProgram, "mov c0, r0"},        // write to const
		{FragmentProgram, "mov o0, o1"},        // read from output
		{FragmentProgram, "mov r99, r0"},       // temp out of range
		{FragmentProgram, "tex r0, v0, t99"},   // tex unit out of range
		{FragmentProgram, "mov r0.q, r1"},      // bad mask
		{FragmentProgram, "add r0, r1.xy, r2"}, // bad swizzle length
		{FragmentProgram, ""},                  // empty program
		{FragmentProgram, "mov r0, x1"},        // bad register file
	}
	for _, c := range cases {
		if _, err := Assemble("bad", c.kind, c.src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", c.src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		dp4 o0.x, c0, v0
		mad r1.xyz, -r0.wzyx, c2.y, v3
		tex r2, v1, t5
		kil r2
		mul o0, r2, v2
	`
	p, err := Assemble("rt", FragmentProgram, src)
	if err != nil {
		t.Fatal(err)
	}
	text := p.String()
	// Reassemble the disassembly (skip the header line).
	lines := strings.SplitN(text, "\n", 2)
	p2, err := Assemble("rt2", FragmentProgram, lines[1])
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("round trip changed length: %d vs %d", len(p2.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Errorf("instr %d: %+v vs %+v", i, p.Instrs[i], p2.Instrs[i])
		}
	}
}

func runVS(t *testing.T, src string, in0 gmath.Vec4, consts map[int]gmath.Vec4) [NumOutputs]gmath.Vec4 {
	t.Helper()
	p, err := Assemble("t", VertexProgram, src)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine()
	for i, v := range consts {
		m.Consts[i] = v
	}
	var in [NumInputs]gmath.Vec4
	in[0] = in0
	var out [NumOutputs]gmath.Vec4
	m.RunVertex(p, &in, &out)
	return out
}

func TestExecArithmetic(t *testing.T) {
	out := runVS(t, `
		add r0, v0, c0
		mul r1, r0, c1
		mov o0, r1
	`, gmath.V4(1, 2, 3, 4), map[int]gmath.Vec4{
		0: gmath.V4(1, 1, 1, 1),
		1: gmath.V4(2, 2, 2, 2),
	})
	want := gmath.V4(4, 6, 8, 10)
	if out[0] != want {
		t.Errorf("out = %v, want %v", out[0], want)
	}
}

func TestExecDP4WriteMask(t *testing.T) {
	out := runVS(t, `
		mov o0, c2
		dp4 o0.x, c0, v0
	`, gmath.V4(1, 2, 3, 1), map[int]gmath.Vec4{
		0: gmath.V4(1, 0, 0, 10), // x + 10
		2: gmath.V4(9, 9, 9, 9),
	})
	if out[0] != gmath.V4(11, 9, 9, 9) {
		t.Errorf("out = %v", out[0])
	}
}

func TestExecScalarOps(t *testing.T) {
	out := runVS(t, `
		rcp r0, c0.x
		rsq r1, c0.y
		ex2 r2, c0.z
		mov o0.x, r0
		mov o0.y, r1
		mov o0.z, r2
		lg2 r3, c0.w
		mov o0.w, r3
	`, gmath.V4(0, 0, 0, 0), map[int]gmath.Vec4{
		0: gmath.V4(4, 16, 3, 8),
	})
	if out[0].X != 0.25 {
		t.Errorf("rcp(4) = %v", out[0].X)
	}
	if out[0].Y != 0.25 {
		t.Errorf("rsq(16) = %v", out[0].Y)
	}
	if out[0].Z != 8 {
		t.Errorf("ex2(3) = %v", out[0].Z)
	}
	if out[0].W != 3 {
		t.Errorf("lg2(8) = %v", out[0].W)
	}
}

func TestExecCmpSltSge(t *testing.T) {
	out := runVS(t, `
		slt r0, v0, c0
		sge r1, v0, c0
		cmp r2, v0, c1, c2
		add r3, r0, r1
		mov o0, r3
		mov o1, r2
	`, gmath.V4(-1, 0, 1, 2), map[int]gmath.Vec4{
		0: gmath.V4(0, 0, 0, 0),
		1: gmath.V4(5, 5, 5, 5),
		2: gmath.V4(7, 7, 7, 7),
	})
	// slt + sge must always sum to exactly 1 per component.
	if out[0] != gmath.V4(1, 1, 1, 1) {
		t.Errorf("slt+sge = %v", out[0])
	}
	// cmp selects c1 where v0 < 0, c2 elsewhere.
	if out[1] != gmath.V4(5, 7, 7, 7) {
		t.Errorf("cmp = %v", out[1])
	}
}

func TestExecLrpFrcFlrAbsXpd(t *testing.T) {
	out := runVS(t, `
		lrp r0, c0, c1, c2
		frc r1, c3
		flr r2, c3
		abs r3, -c3
		xpd r4, c4, c5
		mov o0, r0
		mov o1, r1
		mov o2, r2
		mov o3, r3
		mov o4, r4
	`, gmath.V4(0, 0, 0, 0), map[int]gmath.Vec4{
		0: gmath.V4(0.5, 0, 1, 0.25),
		1: gmath.V4(10, 10, 10, 10),
		2: gmath.V4(20, 20, 20, 20),
		3: gmath.V4(1.5, -0.25, 3, -2.5),
		4: gmath.V4(1, 0, 0, 0),
		5: gmath.V4(0, 1, 0, 0),
	})
	if out[0] != gmath.V4(15, 20, 10, 17.5) {
		t.Errorf("lrp = %v", out[0])
	}
	if out[1] != gmath.V4(0.5, 0.75, 0, 0.5) {
		t.Errorf("frc = %v", out[1])
	}
	if out[2] != gmath.V4(1, -1, 3, -3) {
		t.Errorf("flr = %v", out[2])
	}
	if out[3] != gmath.V4(1.5, 0.25, 3, 2.5) {
		t.Errorf("abs = %v", out[3])
	}
	if out[4].Vec3() != gmath.V3(0, 0, 1) {
		t.Errorf("xpd = %v", out[4])
	}
}

func TestExecStatsCounting(t *testing.T) {
	p := MustAssemble("count", VertexProgram, `
		add r0, v0, v0
		mov o0, r0
	`)
	m := NewMachine()
	var in [NumInputs]gmath.Vec4
	var out [NumOutputs]gmath.Vec4
	for i := 0; i < 10; i++ {
		m.RunVertex(p, &in, &out)
	}
	s := m.Stats()
	if s.Invocations != 10 || s.Instructions != 20 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgInstructions() != 2 {
		t.Errorf("avg = %v", s.AvgInstructions())
	}
	m.ResetStats()
	if m.Stats().Invocations != 0 {
		t.Error("ResetStats failed")
	}
}

// fakeSampler returns a fixed color and records calls.
type fakeSampler struct {
	calls int
	unit  int
	color gmath.Vec4
}

func (f *fakeSampler) SampleQuad(unit int, coords *[4]gmath.Vec4, bias float32,
	projective bool) [4]gmath.Vec4 {
	f.calls++
	f.unit = unit
	return [4]gmath.Vec4{f.color, f.color, f.color, f.color}
}

func TestRunQuadTexture(t *testing.T) {
	p := MustAssemble("fs", FragmentProgram, `
		tex r0, v1, t2
		mul o0, r0, v2
	`)
	m := NewMachine()
	fs := &fakeSampler{color: gmath.V4(0.5, 0.5, 0.5, 1)}
	m.Sampler = fs
	var in [4][NumInputs]gmath.Vec4
	for lane := range in {
		in[lane][2] = gmath.V4(1, 2, 2, 1)
	}
	var out [4][NumOutputs]gmath.Vec4
	live := m.RunQuad(p, &in, 0xF, &out)
	if live != 0xF {
		t.Errorf("live = %x", live)
	}
	if fs.calls != 1 || fs.unit != 2 {
		t.Errorf("sampler calls=%d unit=%d", fs.calls, fs.unit)
	}
	if out[0][0] != gmath.V4(0.5, 1, 1, 1) {
		t.Errorf("out = %v", out[0][0])
	}
	s := m.Stats()
	if s.Invocations != 4 || s.Instructions != 8 || s.TexInstructions != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRunQuadKill(t *testing.T) {
	p := MustAssemble("killer", FragmentProgram, `
		kil v0
		mov o0, v0
	`)
	m := NewMachine()
	var in [4][NumInputs]gmath.Vec4
	in[0][0] = gmath.V4(1, 1, 1, 1)  // survives
	in[1][0] = gmath.V4(-1, 1, 1, 1) // killed
	in[2][0] = gmath.V4(1, 1, 1, -1) // killed
	in[3][0] = gmath.V4(0, 0, 0, 0)  // survives (>= 0)
	var out [4][NumOutputs]gmath.Vec4
	live := m.RunQuad(p, &in, 0xF, &out)
	if live != 0b1001 {
		t.Errorf("live = %04b, want 1001", live)
	}
	if m.Stats().Kills != 2 {
		t.Errorf("kills = %d", m.Stats().Kills)
	}
}

func TestRunQuadPartialMask(t *testing.T) {
	p := MustAssemble("fs", FragmentProgram, "mov o0, v0")
	m := NewMachine()
	var in [4][NumInputs]gmath.Vec4
	var out [4][NumOutputs]gmath.Vec4
	live := m.RunQuad(p, &in, 0b0101, &out)
	if live != 0b0101 {
		t.Errorf("live = %04b", live)
	}
	// Stats only count active lanes.
	if m.Stats().Invocations != 2 {
		t.Errorf("invocations = %d", m.Stats().Invocations)
	}
}

func TestLibraryPrograms(t *testing.T) {
	for _, p := range []*Program{
		BasicTransformVS(), DepthOnlyVS(), TexturedFS(),
		StencilVolumeFS(), AlphaTestedFS(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if !AlphaTestedFS().UsesKill() {
		t.Error("AlphaTestedFS should use KIL")
	}
	if DepthOnlyVS().Len() != 4 {
		t.Errorf("DepthOnlyVS len = %d", DepthOnlyVS().Len())
	}
}

func TestSynthesizeVS(t *testing.T) {
	for _, n := range []int{6, 7, 17, 23, 38} {
		p, err := SynthesizeVS("vs", n)
		if err != nil {
			t.Fatalf("SynthesizeVS(%d): %v", n, err)
		}
		if p.Len() != n {
			t.Errorf("SynthesizeVS(%d) len = %d", n, p.Len())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("SynthesizeVS(%d): %v", n, err)
		}
	}
	if _, err := SynthesizeVS("vs", 5); err == nil {
		t.Error("SynthesizeVS(5) should fail")
	}
}

func TestSynthesizeFS(t *testing.T) {
	cases := []struct{ total, tex int }{
		{5, 2}, {13, 4}, {16, 4}, {21, 3}, {2, 1}, {1, 0}, {15, 1},
	}
	for _, c := range cases {
		p, err := SynthesizeFS("fs", c.total, c.tex, 4)
		if err != nil {
			t.Fatalf("SynthesizeFS(%d,%d): %v", c.total, c.tex, err)
		}
		if p.Len() != c.total || p.TexCount() != c.tex {
			t.Errorf("SynthesizeFS(%d,%d) got len=%d tex=%d",
				c.total, c.tex, p.Len(), p.TexCount())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("SynthesizeFS(%d,%d): %v", c.total, c.tex, err)
		}
	}
	if _, err := SynthesizeFS("fs", 2, 2, 4); err == nil {
		t.Error("total==tex should fail (no room for output write)")
	}
	if _, err := SynthesizeFS("fs", 5, 2, 0); err == nil {
		t.Error("tex>0 with no units should fail")
	}
}

func TestSynthesizedProgramsExecute(t *testing.T) {
	// Synthesized programs must actually run without touching
	// out-of-range registers.
	vs, _ := SynthesizeVS("vs", 24)
	m := NewMachine()
	var in [NumInputs]gmath.Vec4
	var out [NumOutputs]gmath.Vec4
	m.RunVertex(vs, &in, &out)

	fs, _ := SynthesizeFS("fs", 16, 4, 4)
	m.Sampler = &fakeSampler{color: gmath.V4(1, 1, 1, 1)}
	var qin [4][NumInputs]gmath.Vec4
	var qout [4][NumOutputs]gmath.Vec4
	m.RunQuad(fs, &qin, 0xF, &qout)
	if m.Stats().TexInstructions != 16 { // 4 tex * 4 lanes
		t.Errorf("tex instructions = %d", m.Stats().TexInstructions)
	}
}

func TestALUTexRatioMatchesPaperDefinition(t *testing.T) {
	// Paper Table XII: UT2004 has 4.63 total, 1.54 tex, ratio 2.01 —
	// i.e. ratio = (total-tex)/tex. Verify our Program computes it so.
	p, err := SynthesizeFS("ut", 463, 154, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := p.ALUTexRatio()
	want := float64(463-154) / 154
	if ratio != want {
		t.Errorf("ratio = %v, want %v", ratio, want)
	}
}
