package shader

import (
	"fmt"
	"strings"
	"sync"
)

// Kind distinguishes vertex from fragment programs.
type Kind uint8

// Program kinds.
const (
	VertexProgram Kind = iota
	FragmentProgram
)

// String names the program kind.
func (k Kind) String() string {
	if k == VertexProgram {
		return "vertex"
	}
	return "fragment"
}

// Program is a validated shader program.
type Program struct {
	Name   string
	Kind   Kind
	Instrs []Instruction

	// Register high-water marks (exclusive), computed lazily by
	// regBounds so the machine can zero exactly the registers an
	// invocation can touch.
	boundsOnce    sync.Once
	tempHi, outHi uint8

	// Compiled form, lowered lazily by Compiled(). Caching on the
	// Program itself keys the compiled-program cache by identity with
	// no lookup cost, and lets every Machine share one lowering.
	compileOnce sync.Once
	compiled    *Compiled
}

// regBounds returns the exclusive upper bounds of the temp and output
// registers the program reads or writes. The machine zeroes these at
// invocation start, making every invocation a pure function of its
// inputs — required for the tile-parallel backend, where quads from one
// draw are shaded by different machines than in a serial run.
func (p *Program) regBounds() (tempHi, outHi uint8) {
	p.boundsOnce.Do(func() {
		for _, in := range p.Instrs {
			if in.Op.hasDst() {
				switch in.Dst.File {
				case FileTemp:
					if in.Dst.Index >= p.tempHi {
						p.tempHi = in.Dst.Index + 1
					}
				case FileOutput:
					if in.Dst.Index >= p.outHi {
						p.outHi = in.Dst.Index + 1
					}
				}
			}
			for s := 0; s < in.Op.srcCount(); s++ {
				if in.Src[s].File == FileTemp && in.Src[s].Index >= p.tempHi {
					p.tempHi = in.Src[s].Index + 1
				}
			}
		}
	})
	return p.tempHi, p.outHi
}

// Len returns the total instruction count, the unit of the paper's
// Tables IV and XII.
func (p *Program) Len() int { return len(p.Instrs) }

// TexCount returns the number of texture instructions.
func (p *Program) TexCount() int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op.IsTexture() {
			n++
		}
	}
	return n
}

// ALUCount returns the number of non-texture instructions.
func (p *Program) ALUCount() int { return p.Len() - p.TexCount() }

// ALUTexRatio returns ALUCount/TexCount, the balance metric of the
// paper's Table XII. It returns 0 when the program has no texture
// instructions.
func (p *Program) ALUTexRatio() float64 {
	t := p.TexCount()
	if t == 0 {
		return 0
	}
	return float64(p.ALUCount()) / float64(t)
}

// UsesKill reports whether the program contains a KIL instruction, which
// forces the z & stencil test after shading (late z) in the pipeline.
func (p *Program) UsesKill() bool {
	for _, in := range p.Instrs {
		if in.Op == OpKIL {
			return true
		}
	}
	return false
}

// Validate checks register indices, operand counts and kind-specific
// rules (vertex programs cannot sample textures in this ISA generation,
// and KIL is fragment-only).
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	for i, in := range p.Instrs {
		if in.Op >= numOpcodes {
			return fmt.Errorf("program %q instr %d: bad opcode %d", p.Name, i, in.Op)
		}
		if in.Op.IsTexture() {
			if p.Kind == VertexProgram {
				return fmt.Errorf("program %q instr %d: %s not allowed in vertex program",
					p.Name, i, in.Op)
			}
			if in.TexUnit >= NumTexUnits {
				return fmt.Errorf("program %q instr %d: texture unit %d out of range",
					p.Name, i, in.TexUnit)
			}
		}
		if in.Op == OpKIL && p.Kind == VertexProgram {
			return fmt.Errorf("program %q instr %d: kil not allowed in vertex program",
				p.Name, i)
		}
		if in.Op.hasDst() {
			if err := checkDst(in.Dst); err != nil {
				return fmt.Errorf("program %q instr %d: %v", p.Name, i, err)
			}
		}
		for s := 0; s < in.Op.srcCount(); s++ {
			if err := checkSrc(in.Src[s]); err != nil {
				return fmt.Errorf("program %q instr %d src %d: %v", p.Name, i, s, err)
			}
		}
	}
	return nil
}

func checkDst(d Dst) error {
	switch d.File {
	case FileTemp:
		if d.Index >= NumTemps {
			return fmt.Errorf("temp register r%d out of range", d.Index)
		}
	case FileOutput:
		if d.Index >= NumOutputs {
			return fmt.Errorf("output register o%d out of range", d.Index)
		}
	default:
		return fmt.Errorf("cannot write register file %d", d.File)
	}
	if d.Mask == 0 || d.Mask > MaskXYZW {
		return fmt.Errorf("bad write mask %#x", d.Mask)
	}
	return nil
}

func checkSrc(s Src) error {
	var limit uint8
	switch s.File {
	case FileTemp:
		limit = NumTemps
	case FileInput:
		limit = NumInputs
	case FileConst:
		limit = NumConsts - 1 // uint8 max index is 255 anyway
		return nil
	case FileOutput:
		return fmt.Errorf("cannot read output register")
	default:
		return fmt.Errorf("bad register file %d", s.File)
	}
	if s.Index >= limit {
		return fmt.Errorf("register %s%d out of range", filePrefix[s.File], s.Index)
	}
	return nil
}

// String disassembles the whole program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "!!%s program %q (%d instructions, %d tex)\n",
		p.Kind, p.Name, p.Len(), p.TexCount())
	for _, in := range p.Instrs {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String disassembles one instruction.
func (in Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Op.hasDst() {
		b.WriteByte(' ')
		b.WriteString(in.Dst.String())
	}
	for s := 0; s < in.Op.srcCount(); s++ {
		if s == 0 && !in.Op.hasDst() {
			b.WriteByte(' ')
		} else {
			b.WriteString(", ")
		}
		b.WriteString(in.Src[s].String())
	}
	if in.Op.IsTexture() {
		fmt.Fprintf(&b, ", t%d", in.TexUnit)
	}
	return b.String()
}

const compNames = "xyzw"

// String renders the destination operand with its write mask.
func (d Dst) String() string {
	s := fmt.Sprintf("%s%d", filePrefix[d.File], d.Index)
	if d.Mask != MaskXYZW {
		s += "."
		for i := 0; i < 4; i++ {
			if d.Mask&(1<<i) != 0 {
				s += string(compNames[i])
			}
		}
	}
	return s
}

// String renders the source operand with swizzle and negation.
func (s Src) String() string {
	out := ""
	if s.Negate {
		out = "-"
	}
	out += fmt.Sprintf("%s%d", filePrefix[s.File], s.Index)
	if s.Swizzle != SwizzleIdentity {
		out += "."
		for i := 0; i < 4; i++ {
			out += string(compNames[s.Swizzle[i]])
		}
	}
	return out
}
