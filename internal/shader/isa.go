// Package shader implements the programmable shader model of the
// simulated GPU: an ARB-assembly-style SIMD4 instruction set, a text
// assembler and disassembler, and a lockstep interpreter that executes
// vertex programs (one lane) and fragment programs (2x2 quad, four lanes,
// as required for texture level-of-detail derivatives).
//
// The paper's Tables IV and XII report the average number of vertex and
// fragment program instructions executed, the number of texture
// instructions, and the ALU-to-texture ratio; the interpreter counts all
// three per invocation.
package shader

import "fmt"

// Opcode identifies one ISA operation. The set mirrors the
// ARB_vertex_program / ARB_fragment_program instructions the paper's era
// of games compiled to.
type Opcode uint8

// Instruction opcodes.
const (
	OpMOV Opcode = iota // dst = src0
	OpADD               // dst = src0 + src1
	OpSUB               // dst = src0 - src1
	OpMUL               // dst = src0 * src1
	OpMAD               // dst = src0 * src1 + src2
	OpDP3               // dst = src0 . src1 (xyz), broadcast
	OpDP4               // dst = src0 . src1 (xyzw), broadcast
	OpMIN               // dst = min(src0, src1)
	OpMAX               // dst = max(src0, src1)
	OpSLT               // dst = src0 < src1 ? 1 : 0
	OpSGE               // dst = src0 >= src1 ? 1 : 0
	OpRCP               // dst = 1/src0.x, broadcast
	OpRSQ               // dst = 1/sqrt(|src0.x|), broadcast
	OpEX2               // dst = 2^src0.x, broadcast
	OpLG2               // dst = log2(|src0.x|), broadcast
	OpPOW               // dst = src0.x ^ src1.x, broadcast
	OpFRC               // dst = src0 - floor(src0)
	OpFLR               // dst = floor(src0)
	OpABS               // dst = |src0|
	OpLRP               // dst = src0*src1 + (1-src0)*src2
	OpXPD               // dst.xyz = src0 x src1
	OpCMP               // dst = src0 < 0 ? src1 : src2
	OpTEX               // dst = texture[unit] sampled at src0
	OpTXB               // TEX with LOD bias in src0.w
	OpTXP               // TEX with projective divide by src0.w
	OpKIL               // kill fragment if any component of src0 < 0
	numOpcodes
)

var opNames = [numOpcodes]string{
	"mov", "add", "sub", "mul", "mad", "dp3", "dp4", "min", "max",
	"slt", "sge", "rcp", "rsq", "ex2", "lg2", "pow", "frc", "flr",
	"abs", "lrp", "xpd", "cmp", "tex", "txb", "txp", "kil",
}

// String returns the assembly mnemonic.
func (o Opcode) String() string {
	if int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// IsTexture reports whether the opcode samples a texture. These are the
// instructions counted in the paper's "Texture Instructions" column.
func (o Opcode) IsTexture() bool {
	return o == OpTEX || o == OpTXB || o == OpTXP
}

// srcCount returns how many source operands each opcode consumes.
func (o Opcode) srcCount() int {
	switch o {
	case OpMOV, OpRCP, OpRSQ, OpEX2, OpLG2, OpFRC, OpFLR, OpABS, OpKIL,
		OpTEX, OpTXB, OpTXP:
		return 1
	case OpMAD, OpLRP, OpCMP:
		return 3
	default:
		return 2
	}
}

// hasDst reports whether the opcode writes a destination register.
func (o Opcode) hasDst() bool { return o != OpKIL }

// RegFile identifies a register bank.
type RegFile uint8

// Register banks.
const (
	FileTemp   RegFile = iota // r0..r15, read/write scratch
	FileInput                 // v0..v15, per-vertex attributes or varyings
	FileOutput                // o0..o15, shaded results
	FileConst                 // c0..c255, uniform parameters
)

var filePrefix = [...]string{"r", "v", "o", "c"}

// Limits of each register bank.
const (
	NumTemps   = 16
	NumInputs  = 16
	NumOutputs = 16
	NumConsts  = 256
	// NumTexUnits is the number of bindable texture samplers.
	NumTexUnits = 16
)

// Swizzle selects and replicates source components. Each element is a
// component index 0..3 (x,y,z,w).
type Swizzle [4]uint8

// SwizzleIdentity is the no-op swizzle .xyzw.
var SwizzleIdentity = Swizzle{0, 1, 2, 3}

// Src is a source operand: a register reference with swizzle and optional
// negation.
type Src struct {
	File    RegFile
	Index   uint8
	Swizzle Swizzle
	Negate  bool
}

// Dst is a destination operand: a register reference with a component
// write mask (bit i enables component i).
type Dst struct {
	File  RegFile
	Index uint8
	Mask  uint8
}

// MaskXYZW writes all four components.
const MaskXYZW = 0xF

// Instruction is one decoded ISA instruction.
type Instruction struct {
	Op  Opcode
	Dst Dst
	Src [3]Src
	// TexUnit selects the sampler for TEX/TXB/TXP.
	TexUnit uint8
}

// SrcReg is a convenience constructor for a plain source operand.
func SrcReg(file RegFile, index int) Src {
	return Src{File: file, Index: uint8(index), Swizzle: SwizzleIdentity}
}

// DstReg is a convenience constructor for a full-mask destination.
func DstReg(file RegFile, index int) Dst {
	return Dst{File: file, Index: uint8(index), Mask: MaskXYZW}
}
