package mem

import (
	"testing"
	"testing/quick"
)

func TestClientString(t *testing.T) {
	want := map[Client]string{
		ClientVertex:   "Vertex",
		ClientZStencil: "Z&Stencil",
		ClientTexture:  "Texture",
		ClientColor:    "Color",
		ClientDAC:      "DAC",
		ClientCP:       "CP",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if Client(99).String() != "Client(99)" {
		t.Errorf("out-of-range String = %q", Client(99).String())
	}
}

func TestControllerAccounting(t *testing.T) {
	m := NewController()
	m.Read(ClientTexture, 100)
	m.Write(ClientColor, 50)
	m.Read(ClientTexture, 28)
	if got := m.ClientTraffic(ClientTexture).ReadBytes; got != 128 {
		t.Errorf("texture reads = %d", got)
	}
	if got := m.ClientTraffic(ClientColor).WriteBytes; got != 50 {
		t.Errorf("color writes = %d", got)
	}
	total := m.Total()
	if total.ReadBytes != 128 || total.WriteBytes != 50 || total.Total() != 178 {
		t.Errorf("total = %+v", total)
	}
}

func TestControllerReset(t *testing.T) {
	m := NewController()
	m.Read(ClientDAC, 1000)
	m.Reset()
	if m.Total().Total() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestSnapshotDelta(t *testing.T) {
	m := NewController()
	m.Read(ClientVertex, 10)
	before := m.Snapshot()
	m.Read(ClientVertex, 5)
	m.Write(ClientZStencil, 7)
	d := Delta(m.Snapshot(), before)
	if d[ClientVertex].ReadBytes != 5 {
		t.Errorf("vertex delta = %+v", d[ClientVertex])
	}
	if d[ClientZStencil].WriteBytes != 7 {
		t.Errorf("zst delta = %+v", d[ClientZStencil])
	}
	if s := SumTraffic(d); s.Total() != 12 {
		t.Errorf("sum = %+v", s)
	}
}

func TestBWAtFPS(t *testing.T) {
	// 81 MB/frame at 100 fps should be ~7.9 GB/s, which the paper rounds
	// to 8 GB/s for UT2004 in Table XV.
	perFrame := 81.0 * 1024 * 1024
	gbs := GBs(BWAtFPS(perFrame, 100))
	if gbs < 7.8 || gbs > 8.0 {
		t.Errorf("UT2004 projection = %v GB/s, want ~7.9", gbs)
	}
}

func TestUnits(t *testing.T) {
	if MB(1024*1024) != 1 {
		t.Errorf("MB(1MiB) = %v", MB(1024*1024))
	}
	if GBs(1024*1024*1024) != 1 {
		t.Errorf("GBs(1GiB/s) = %v", GBs(1024*1024*1024))
	}
}

func TestSystemBuses(t *testing.T) {
	buses := SystemBuses()
	if len(buses) != 5 {
		t.Fatalf("bus count = %d", len(buses))
	}
	// Table VI: AGP 8X = 2.112 GB/s, PCIe x16 = 4 GB/s.
	byName := map[string]int64{}
	for _, b := range buses {
		byName[b.Name] = b.BandwidthBytes
	}
	if byName["AGP 8X"] != 2112*GB/1000 {
		t.Errorf("AGP 8X = %d", byName["AGP 8X"])
	}
	if byName["PCI Express x16 lanes"] != 4*GB {
		t.Errorf("PCIe x16 = %d", byName["PCI Express x16 lanes"])
	}
}

func TestPCIeBandwidth(t *testing.T) {
	// 250 MB/s per lane after 8b/10b.
	if got := PCIeBandwidth(1); got != 250_000_000 {
		t.Errorf("1 lane = %d", got)
	}
	if got := PCIeBandwidth(16); got != 4*GB {
		t.Errorf("16 lanes = %d, want 4GB", got)
	}
	// Table VI consistency.
	for _, b := range SystemBuses() {
		switch b.Name {
		case "PCI Express x4 lanes":
			if PCIeBandwidth(4) != b.BandwidthBytes {
				t.Errorf("x4 mismatch: %d vs %d", PCIeBandwidth(4), b.BandwidthBytes)
			}
		case "PCI Express x8 lanes":
			if PCIeBandwidth(8) != b.BandwidthBytes {
				t.Errorf("x8 mismatch")
			}
		}
	}
}

// Property: controller totals equal the sum of what was fed in.
func TestQuickControllerConservation(t *testing.T) {
	f := func(ops []struct {
		C     uint8
		N     uint16
		Write bool
	}) bool {
		m := NewController()
		var wantR, wantW int64
		for _, op := range ops {
			c := Client(int(op.C) % int(NumClients))
			if op.Write {
				m.Write(c, int64(op.N))
				wantW += int64(op.N)
			} else {
				m.Read(c, int64(op.N))
				wantR += int64(op.N)
			}
		}
		tot := m.Total()
		return tot.ReadBytes == wantR && tot.WriteBytes == wantW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
