package mem

// BusSpec describes a CPU-to-GPU system bus, reproducing the reference
// data of the paper's Table VI. The paper uses these figures to argue that
// index traffic (well under 1 GB/s) never saturates the host bus, which
// explains why developers prefer triangle lists over strips.
type BusSpec struct {
	Name string
	// WidthBits is the link width in bits (PCIe lanes are serial).
	WidthBits int
	// ClockDesc describes the signalling rate, as printed in the paper.
	ClockDesc string
	// BandwidthBytes is the usable bandwidth in bytes per second.
	BandwidthBytes int64
}

// GB is one decimal gigabyte, the unit Table VI uses.
const GB = 1000 * 1000 * 1000

// SystemBuses returns the Table VI reference rows. PCI Express figures
// account for the 10 bits/byte (8b/10b) encoding of the serial links.
func SystemBuses() []BusSpec {
	return []BusSpec{
		{Name: "AGP 4X", WidthBits: 32, ClockDesc: "66x4 MHz", BandwidthBytes: 1056 * GB / 1000},
		{Name: "AGP 8X", WidthBits: 32, ClockDesc: "66x8 MHz", BandwidthBytes: 2112 * GB / 1000},
		{Name: "PCI Express x4 lanes", WidthBits: 1, ClockDesc: "2.5 Gbaud x 4", BandwidthBytes: 1 * GB},
		{Name: "PCI Express x8 lanes", WidthBits: 1, ClockDesc: "2.5 Gbaud x 8", BandwidthBytes: 2 * GB},
		{Name: "PCI Express x16 lanes", WidthBits: 1, ClockDesc: "2.5 Gbaud x 16", BandwidthBytes: 4 * GB},
	}
}

// PCIeBandwidth returns the usable bandwidth of a PCIe 1.x link with the
// given lane count: 2.5 Gbaud per lane with 8b/10b encoding gives
// 250 MB/s per lane.
func PCIeBandwidth(lanes int) int64 {
	const baudPerLane = 2_500_000_000 // 2.5 Gbaud
	const bitsPerByte = 10            // 8b/10b encoding
	return int64(lanes) * baudPerLane / bitsPerByte
}
