// Package mem models the GPU memory subsystem at the traffic level: every
// pipeline stage that touches GDDR registers its reads and writes against
// a named client, and the controller aggregates per-frame totals, the
// read/write split and the per-stage distribution reported in the paper's
// Tables XV and XVI.
//
// The model is bandwidth-accounting only. The paper's memory results
// (MB/frame, traffic split, bytes per vertex/fragment) are pure byte
// counts, so no timing model is needed; the R520-style peak rate is kept
// to express results as "GB/s at N fps" like the paper does.
package mem

import (
	"fmt"

	"gpuchar/internal/metrics"
)

// Client identifies a memory traffic source, matching the stage breakdown
// of the paper's Table XVI.
type Client int

// Memory clients in the order the paper reports them.
const (
	ClientVertex   Client = iota // index + vertex attribute fetch
	ClientZStencil               // z & stencil buffer traffic
	ClientTexture                // texture sampling
	ClientColor                  // color buffer read-modify-write
	ClientDAC                    // display scan-out
	ClientCP                     // command processor
	NumClients
)

var clientNames = [NumClients]string{
	"Vertex", "Z&Stencil", "Texture", "Color", "DAC", "CP",
}

// clientSlugs are the metric-name-safe client names ("Z&Stencil" cannot
// appear in a counter path).
var clientSlugs = [NumClients]string{
	"vertex", "zstencil", "texture", "color", "dac", "cp",
}

// Slug returns the lowercase metric-name segment for the client.
func (c Client) Slug() string {
	if c < 0 || c >= NumClients {
		return fmt.Sprintf("client%d", int(c))
	}
	return clientSlugs[c]
}

// String returns the stage name used in the paper's tables.
func (c Client) String() string {
	if c < 0 || c >= NumClients {
		return fmt.Sprintf("Client(%d)", int(c))
	}
	return clientNames[c]
}

// Traffic is a read/write byte pair.
type Traffic struct {
	ReadBytes  int64
	WriteBytes int64
}

// Total returns read + write bytes.
func (t Traffic) Total() int64 { return t.ReadBytes + t.WriteBytes }

// Add accumulates other into t.
func (t *Traffic) Add(o Traffic) {
	t.ReadBytes += o.ReadBytes
	t.WriteBytes += o.WriteBytes
}

// Register binds the traffic pair into the registry under prefix.
func (t *Traffic) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/read_bytes", &t.ReadBytes)
	r.Bind(prefix+"/write_bytes", &t.WriteBytes)
}

// Controller accumulates per-client memory traffic.
type Controller struct {
	perClient [NumClients]Traffic
	// BytesPerCycle is the peak GDDR transfer rate (Table II: 64 B/cycle
	// for the R520-like configuration).
	BytesPerCycle int

	// Trailing pad: tile workers carry one Controller shard each, bumped
	// on every cache fill, and the shards are allocated back to back —
	// without the pad the tail counters of one worker share a cache line
	// with the head counters of the next.
	_ [64]byte
}

// DefaultBytesPerCycle is the R520-like peak GDDR rate of Table II.
const DefaultBytesPerCycle = 64

// NewController returns a controller with the R520-like 64 bytes/cycle
// peak rate.
func NewController() *Controller {
	return NewControllerRate(DefaultBytesPerCycle)
}

// NewControllerRate returns a controller with an explicit peak transfer
// rate (bytes/cycle); 0 or negative takes the Table II default. The
// rate is informational — traffic counts never depend on it — but
// variant configs carry it so bandwidth projections scale with the
// modelled memory system.
func NewControllerRate(bytesPerCycle int) *Controller {
	if bytesPerCycle <= 0 {
		bytesPerCycle = DefaultBytesPerCycle
	}
	return &Controller{BytesPerCycle: bytesPerCycle}
}

// Read records n bytes read from memory by client c.
func (m *Controller) Read(c Client, n int64) { m.perClient[c].ReadBytes += n }

// Write records n bytes written to memory by client c.
func (m *Controller) Write(c Client, n int64) { m.perClient[c].WriteBytes += n }

// ClientTraffic returns the accumulated traffic for one client.
func (m *Controller) ClientTraffic(c Client) Traffic { return m.perClient[c] }

// Total returns the traffic summed over all clients.
func (m *Controller) Total() Traffic {
	var t Traffic
	for c := Client(0); c < NumClients; c++ {
		t.Add(m.perClient[c])
	}
	return t
}

// Snapshot captures the current per-client totals.
func (m *Controller) Snapshot() [NumClients]Traffic { return m.perClient }

// RegisterMetrics binds the per-client traffic counters into r, one
// pair per client under prefix+"/"+slug (e.g. "mem/zstencil/read_bytes").
func (m *Controller) RegisterMetrics(r *metrics.Registry, prefix string) {
	for c := Client(0); c < NumClients; c++ {
		m.perClient[c].Register(r, prefix+"/"+c.Slug())
	}
}

// Reset zeroes all counters (typically at frame boundaries).
func (m *Controller) Reset() { m.perClient = [NumClients]Traffic{} }

// Delta returns the traffic accumulated since an earlier snapshot.
func Delta(now, before [NumClients]Traffic) [NumClients]Traffic {
	var d [NumClients]Traffic
	for c := 0; c < int(NumClients); c++ {
		d[c] = Traffic{
			ReadBytes:  now[c].ReadBytes - before[c].ReadBytes,
			WriteBytes: now[c].WriteBytes - before[c].WriteBytes,
		}
	}
	return d
}

// SumTraffic totals a per-client traffic array.
func SumTraffic(t [NumClients]Traffic) Traffic {
	var s Traffic
	for c := 0; c < int(NumClients); c++ {
		s.Add(t[c])
	}
	return s
}

// BWAtFPS converts bytes-per-frame into bytes-per-second at the given
// frame rate, the projection the paper uses for its "BW @100fps" columns.
func BWAtFPS(bytesPerFrame float64, fps float64) float64 {
	return bytesPerFrame * fps
}

// MB expresses bytes as binary megabytes (the unit of Table XV).
func MB(bytes float64) float64 { return bytes / (1024 * 1024) }

// GBs expresses bytes/second as binary gigabytes per second.
func GBs(bytesPerSecond float64) float64 {
	return bytesPerSecond / (1024 * 1024 * 1024)
}
