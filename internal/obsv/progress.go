// Progress model for long characterization runs: one tracker shared by
// the experiment fan-out, the per-frame workload hooks, the `/progress`
// HTTP endpoint and the `-progress` stderr ticker, so every consumer
// reports from the same numbers.
package obsv

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// rateWindow is how many recent frame completions the frames/sec
// estimate averages over.
const rateWindow = 64

// ExperimentProgress is the experiment-level slice of a Progress report.
type ExperimentProgress struct {
	Total   int      `json:"total"`
	Done    int      `json:"done"`
	Running []string `json:"running,omitempty"`
}

// FrameProgress is the frame-level slice of a Progress report.
type FrameProgress struct {
	Done   int64   `json:"done"`
	PerSec float64 `json:"per_sec"`
}

// Progress is the point-in-time state of a run: the `/progress`
// endpoint's JSON document.
type Progress struct {
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Experiments    ExperimentProgress `json:"experiments"`
	Frames         FrameProgress      `json:"frames"`
	// Demos maps each demo that has completed at least one frame to its
	// last finished zero-based frame index.
	Demos map[string]int `json:"demos,omitempty"`
	// ETASeconds extrapolates the remaining experiments from the average
	// time per finished one; 0 until the first experiment completes.
	ETASeconds float64 `json:"eta_seconds"`
}

// ProgressTracker accumulates run progress. All methods are safe for
// concurrent use and nil-safe, so instrumented code calls them
// unconditionally. Create one with NewProgressTracker.
type ProgressTracker struct {
	// LogEvery, when > 0, prints a liveness line to LogTo after every
	// LogEvery-th completed frame — the `characterize -progress` ticker.
	LogEvery int
	// LogTo receives the ticker lines (typically os.Stderr).
	LogTo io.Writer
	// OnFrame, when non-nil, receives every completed frame after the
	// tracker's own accounting — the hook `characterize -listen` streams
	// explorer progress events from. Called without the tracker lock
	// held; set it before the run starts.
	OnFrame func(demo string, frame int)

	mu        sync.Mutex
	start     time.Time
	total     int
	done      int
	running   map[string]bool
	frames    int64
	times     [rateWindow]time.Time // ring of recent frame completions
	demoFrame map[string]int
}

// NewProgressTracker starts tracking a run of totalExperiments
// experiments (0 when the run is not experiment-shaped, e.g. attilasim).
func NewProgressTracker(totalExperiments int) *ProgressTracker {
	return &ProgressTracker{
		start:     time.Now(),
		total:     totalExperiments,
		running:   map[string]bool{},
		demoFrame: map[string]int{},
	}
}

// StartExperiment marks an experiment as running.
func (p *ProgressTracker) StartExperiment(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running[id] = true
	p.mu.Unlock()
}

// EndExperiment marks an experiment as finished (however it ended).
func (p *ProgressTracker) EndExperiment(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.running, id)
	p.done++
	p.mu.Unlock()
}

// FrameDone records one completed frame of a demo render and, when the
// ticker is configured, prints the liveness line every LogEvery frames.
func (p *ProgressTracker) FrameDone(demo string, frame int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.demoFrame[demo] = frame
	p.times[p.frames%rateWindow] = time.Now()
	p.frames++
	tick := p.LogEvery > 0 && p.LogTo != nil && p.frames%int64(p.LogEvery) == 0
	var rate float64
	if tick {
		rate = p.rateLocked()
	}
	w := p.LogTo
	p.mu.Unlock()
	if tick {
		fmt.Fprintf(w, "progress: demo=%s frame=%d frames/sec=%.1f\n", demo, frame, rate)
	}
	if p.OnFrame != nil {
		p.OnFrame(demo, frame)
	}
}

// rateLocked estimates frames/sec over the recent completion window.
// Callers hold p.mu.
func (p *ProgressTracker) rateLocked() float64 {
	n := p.frames
	if n < 2 {
		return 0
	}
	span := int64(rateWindow)
	if n < span {
		span = n
	}
	newest := p.times[(n-1)%rateWindow]
	oldest := p.times[(n-span)%rateWindow]
	dt := newest.Sub(oldest).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(span-1) / dt
}

// Snapshot returns the current progress report.
func (p *ProgressTracker) Snapshot() Progress {
	if p == nil {
		return Progress{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Progress{
		ElapsedSeconds: time.Since(p.start).Seconds(),
		Experiments:    ExperimentProgress{Total: p.total, Done: p.done},
		Frames:         FrameProgress{Done: p.frames, PerSec: p.rateLocked()},
	}
	for id := range p.running {
		out.Experiments.Running = append(out.Experiments.Running, id)
	}
	sort.Strings(out.Experiments.Running)
	if len(p.demoFrame) > 0 {
		out.Demos = make(map[string]int, len(p.demoFrame))
		for d, f := range p.demoFrame {
			out.Demos[d] = f
		}
	}
	if p.done > 0 && p.total > p.done {
		perExp := time.Since(p.start).Seconds() / float64(p.done)
		out.ETASeconds = perExp * float64(p.total-p.done)
	}
	return out
}
