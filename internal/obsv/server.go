// The observability HTTP server: a small mux over the live metrics
// registry snapshots, the run's progress model, and the standard pprof
// profiling endpoints, mounted behind `-listen` on both attilasim and
// characterize so multi-minute runs are inspectable while they execute.
//
//	/metrics       Prometheus text: live counter snapshots + run gauges
//	/progress      Progress JSON (experiments done/running, frames/sec, ETA)
//	/healthz       liveness probe
//	/debug/pprof/  CPU/heap/goroutine profiles (net/http/pprof)
package obsv

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"gpuchar/internal/metrics"
)

// ServerSources are the data feeds the server renders. Either may be
// nil: /metrics then serves only the run gauges, /progress an empty
// report.
type ServerSources struct {
	// Snapshots returns the live counter snapshots to expose on
	// /metrics. It is called per scrape and must be safe for concurrent
	// use with the running simulation (the GPU publishes frame-boundary
	// snapshots for exactly this reason).
	Snapshots func() []metrics.Snapshot
	// Progress returns the run's progress report for /progress and the
	// obsv_* gauges on /metrics.
	Progress func() Progress
	// Mount, when non-nil, registers additional routes on the server's
	// mux before it starts serving — how the characterization daemon
	// hangs its /jobs API next to /metrics and /progress. It must not
	// claim the built-in paths (the mux panics on duplicates).
	Mount func(mux *http.ServeMux)
	// Health, when non-nil, drives /healthz: (false, detail) turns the
	// probe into a 503 so orchestrators stop routing to a degraded
	// daemon. Nil keeps the always-ok behavior.
	Health func() (ok bool, detail string)
}

// Server is a running observability server. Create with StartServer,
// stop with Close.
type Server struct {
	Addr string // actual listen address (resolves ":0" ports)
	srv  *http.Server
	ln   net.Listener
}

// StartServer listens on addr and serves the observability endpoints in
// a background goroutine until Close.
func StartServer(addr string, src ServerSources) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		if src.Health != nil {
			if ok, detail := src.Health(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, detail)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		writeRunGauges(w, src)
		if src.Snapshots != nil {
			_ = metrics.WriteProm(w, "gpuchar", src.Snapshots())
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		var p Progress
		if src.Progress != nil {
			p = src.Progress()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if src.Mount != nil {
		src.Mount(mux)
	}

	s := &Server{
		Addr: ln.Addr().String(),
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			// Reap idle keep-alive connections so a scrape-happy client
			// population cannot pin file descriptors forever. No blanket
			// ReadTimeout/WriteTimeout: the /jobs long-poll and big trace
			// uploads manage their own deadlines.
			IdleTimeout: 2 * time.Minute,
		},
		ln: ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// writeRunGauges renders the server's own gauges, so /metrics is
// non-empty from the first scrape even before any snapshot exists.
func writeRunGauges(w http.ResponseWriter, src ServerSources) {
	var p Progress
	if src.Progress != nil {
		p = src.Progress()
	}
	fmt.Fprintf(w, "obsv_up 1\n")
	fmt.Fprintf(w, "obsv_elapsed_seconds %g\n", p.ElapsedSeconds)
	fmt.Fprintf(w, "obsv_experiments_total %d\n", p.Experiments.Total)
	fmt.Fprintf(w, "obsv_experiments_done %d\n", p.Experiments.Done)
	fmt.Fprintf(w, "obsv_experiments_running %d\n", len(p.Experiments.Running))
	fmt.Fprintf(w, "obsv_frames_done %d\n", p.Frames.Done)
	fmt.Fprintf(w, "obsv_frames_per_second %g\n", p.Frames.PerSec)
	fmt.Fprintf(w, "obsv_eta_seconds %g\n", p.ETASeconds)
}

// Close stops the server immediately, dropping in-flight requests, and
// releases the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the server gracefully: the listener closes at once (no
// new connections), in-flight requests drain to completion, and ctx
// bounds the wait — on expiry the remaining connections are dropped and
// ctx's error returned. The daemon's signal handler uses it so a job
// result being streamed at SIGTERM still arrives whole.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		// Past the deadline: tear the stragglers down.
		s.srv.Close()
		return err
	}
	return nil
}
