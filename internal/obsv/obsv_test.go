package obsv

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer Enabled() = true")
	}
	if tr.Sampled(0) {
		t.Error("nil tracer Sampled() = true")
	}
	tk := tr.Track("p", "t")
	if tk != (Track{}) {
		t.Errorf("nil tracer Track() = %+v, want zero", tk)
	}
	tr.Emit(tk, "x", 0, 1, nil)
	tr.Instant(tk, "x", nil)
	tr.Counter(tk, "x", 1)
	sp := tr.Begin(tk, "x")
	sp.End()
	sp.EndArgs(map[string]any{"k": 1})
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer Dropped() != 0")
	}
}

func TestTrackRegistration(t *testing.T) {
	tr := New(Options{})
	a := tr.Track("demoA", "frames")
	b := tr.Track("demoA", "draws")
	c := tr.Track("demoB", "frames")
	if a.Pid != b.Pid {
		t.Errorf("same process got pids %d and %d", a.Pid, b.Pid)
	}
	if a.Tid == b.Tid {
		t.Errorf("distinct threads share tid %d", a.Tid)
	}
	if a.Pid == c.Pid {
		t.Errorf("distinct processes share pid %d", a.Pid)
	}
	if again := tr.Track("demoA", "frames"); again != a {
		t.Errorf("re-registration moved track: %+v vs %+v", again, a)
	}
}

func TestRingOverwriteAndDropped(t *testing.T) {
	tr := New(Options{Capacity: 4})
	tk := tr.Track("p", "t")
	for i := 0; i < 10; i++ {
		tr.Emit(tk, "e", int64(i), 1, nil)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	// Oldest-first: the survivors are events 6..9.
	for i, e := range evs {
		if e.TS != int64(6+i) {
			t.Errorf("event %d TS = %d, want %d", i, e.TS, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{SampleEvery: 4})
	hits := 0
	for n := uint64(0); n < 16; n++ {
		if tr.Sampled(n) {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("1-in-4 sampling hit %d of 16", hits)
	}
	all := New(Options{})
	for n := uint64(0); n < 8; n++ {
		if !all.Sampled(n) {
			t.Fatalf("unsampled tracer skipped span %d", n)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(Options{Capacity: 1 << 10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tk := tr.Track("p", "t")
			for i := 0; i < 100; i++ {
				tr.Emit(tk, "e", int64(i), 1, nil)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 800 {
		t.Errorf("Events() = %d, want 800", got)
	}
}

// TestWriteChromeJSON pins the export shape Perfetto needs: metadata
// naming events first, microsecond timestamps, dur on 'X' spans and the
// schema marker in otherData.
func TestWriteChromeJSON(t *testing.T) {
	tr := New(Options{})
	tk := tr.Track("demo", "frames")
	tr.Emit(tk, "frame", 2000, 3000, map[string]any{"frame": int64(0)})
	tr.Instant(tk, "mark", nil)

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int32          `json:"pid"`
			Tid  int32          `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.OtherData["schema"] != TraceSchemaID {
		t.Errorf("schema = %v, want %s", doc.OtherData["schema"], TraceSchemaID)
	}
	var haveProc, haveThread bool
	var frame *int
	for i, e := range doc.TraceEvents {
		switch e.Name {
		case "process_name":
			haveProc = true
			if e.Ph != "M" {
				t.Errorf("process_name ph = %q", e.Ph)
			}
		case "thread_name":
			haveThread = true
		case "frame":
			idx := i
			frame = &idx
		}
	}
	if !haveProc || !haveThread {
		t.Fatalf("metadata missing: process=%v thread=%v", haveProc, haveThread)
	}
	if frame == nil {
		t.Fatal("frame span missing")
	}
	f := doc.TraceEvents[*frame]
	if f.TS != 2 || f.Dur == nil || *f.Dur != 3 {
		t.Errorf("frame ts/dur = %g/%v, want 2/3 (microseconds)", f.TS, f.Dur)
	}

	// An empty tracer still exports a well-formed document with an
	// events array (not null).
	var empty bytes.Buffer
	if err := New(Options{}).WriteChromeJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"traceEvents":[]`) &&
		!strings.Contains(empty.String(), `"traceEvents": []`) {
		t.Errorf("empty export lacks traceEvents array: %s", empty.String())
	}
}

func TestProgressTracker(t *testing.T) {
	p := NewProgressTracker(3)
	p.StartExperiment("table7")
	p.StartExperiment("table9")
	s := p.Snapshot()
	if s.Experiments.Total != 3 || s.Experiments.Done != 0 {
		t.Errorf("total/done = %d/%d, want 3/0", s.Experiments.Total, s.Experiments.Done)
	}
	if len(s.Experiments.Running) != 2 || s.Experiments.Running[0] != "table7" {
		t.Errorf("running = %v, want sorted [table7 table9]", s.Experiments.Running)
	}
	for f := 0; f < 5; f++ {
		p.FrameDone("Doom3/trdemo2", f)
	}
	p.EndExperiment("table7")
	s = p.Snapshot()
	if s.Experiments.Done != 1 || len(s.Experiments.Running) != 1 {
		t.Errorf("after end: done=%d running=%v", s.Experiments.Done, s.Experiments.Running)
	}
	if s.Frames.Done != 5 {
		t.Errorf("frames done = %d, want 5", s.Frames.Done)
	}
	if s.Demos["Doom3/trdemo2"] != 4 {
		t.Errorf("demo frame = %d, want 4", s.Demos["Doom3/trdemo2"])
	}
	if s.ETASeconds < 0 {
		t.Errorf("ETA = %f", s.ETASeconds)
	}

	// Nil tracker: every method is a no-op.
	var nilP *ProgressTracker
	nilP.StartExperiment("x")
	nilP.EndExperiment("x")
	nilP.FrameDone("d", 0)
	if got := nilP.Snapshot(); got.Frames.Done != 0 {
		t.Errorf("nil tracker snapshot = %+v", got)
	}
}

func TestProgressTicker(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressTracker(1)
	p.LogEvery = 2
	p.LogTo = &buf
	for f := 0; f < 4; f++ {
		p.FrameDone("UT2004/Primeval", f)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("ticker printed %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "demo=UT2004/Primeval") ||
		!strings.Contains(lines[0], "frame=1") ||
		!strings.Contains(lines[0], "frames/sec=") {
		t.Errorf("ticker line = %q", lines[0])
	}
}

func TestNanotimeMonotonic(t *testing.T) {
	a := Nanotime()
	time.Sleep(time.Millisecond)
	b := Nanotime()
	if b <= a {
		t.Errorf("Nanotime not monotonic: %d then %d", a, b)
	}
}
