// Package obsv is the pipeline's execution-observability layer: a
// low-overhead span/event tracer whose output opens directly in
// ui.perfetto.dev (chrome.go), a progress model for long characterization
// runs (progress.go), and an HTTP server exposing live metrics, progress
// and pprof endpoints (server.go).
//
// The tracer is designed around one invariant: when tracing is off it
// must cost nothing but a branch. Every method on *Tracer and Span is
// nil-safe, so instrumented code holds a possibly-nil *Tracer and calls
// it unconditionally; with a nil receiver each hook compiles to a
// pointer test and an immediate return. No build tags, no interface
// dispatch, no indirection through function values.
//
// When tracing is on, events go into a fixed-capacity ring under a
// mutex: multi-minute runs are bounded in memory (the newest events
// win, the overwrite count is reported in the export) and tile workers
// can emit concurrently. Fine-grained spans (per-draw, per-worker-drain)
// honor a 1-in-N sampling knob; structural spans (per-frame, per-stage,
// per-experiment) are always recorded.
package obsv

import (
	"sync"
	"time"
)

// base anchors Nanotime: all tracer timestamps are monotonic
// nanoseconds since process start, so spans from concurrently rendering
// demos land on one consistent timeline.
var base = time.Now()

// Nanotime returns monotonic nanoseconds since process start.
func Nanotime() int64 { return int64(time.Since(base)) }

// Track identifies one timeline in the trace: a (process, thread) pair
// in Chrome trace-event terms. Processes group tracks (one per demo, or
// "experiments"); threads are the individual rows inside the group
// ("frames", "geom", "tile-worker-3", ...). The zero Track is valid and
// maps to an unnamed process/thread 0.
type Track struct {
	Pid, Tid int32
}

// Event is one recorded trace event. Ph follows the Chrome trace-event
// phase alphabet; the tracer emits 'X' (complete span), 'i' (instant)
// and 'C' (counter).
type Event struct {
	Name string
	Ph   byte
	Pid  int32
	Tid  int32
	TS   int64 // ns since process start
	Dur  int64 // ns, 'X' only
	Args map[string]any
}

// Options configures a Tracer.
type Options struct {
	// Capacity is the ring size in events; once full, new events
	// overwrite the oldest. <= 0 selects DefaultCapacity.
	Capacity int
	// SampleEvery records 1-in-N fine-grained spans (per-draw,
	// per-worker-drain). <= 1 records all of them. Structural spans
	// ignore it.
	SampleEvery int
}

// DefaultCapacity is the default ring size: large enough for a full
// characterize run's structural spans, bounded enough to cap memory at
// a few tens of megabytes.
const DefaultCapacity = 1 << 20

// Tracer collects spans and events into a ring buffer. A nil *Tracer is
// the disabled tracer: every method is a no-op and Begin/Emit cost one
// branch. Create one with New; share it freely across goroutines.
type Tracer struct {
	sample uint64

	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever written; buf index is next % len
	procs   []string
	procIDs map[string]int32
	threads []trackName
}

// trackName records a registered thread track for export metadata.
type trackName struct {
	pid  int32
	tid  int32
	name string
}

// New creates a tracer. The zero Options give a DefaultCapacity ring
// with no sampling.
func New(o Options) *Tracer {
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	sample := o.SampleEvery
	if sample < 1 {
		sample = 1
	}
	return &Tracer{
		sample:  uint64(sample),
		buf:     make([]Event, 0, capacity),
		procIDs: map[string]int32{},
	}
}

// Enabled reports whether the tracer records anything; callers use it
// to skip argument construction on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Sampled reports whether the n-th fine-grained span should be
// recorded under the tracer's 1-in-N sampling. Structural spans skip
// this check and are always recorded.
func (t *Tracer) Sampled(n uint64) bool {
	return t != nil && (t.sample <= 1 || n%t.sample == 0)
}

// Track registers (or finds) the timeline for the given process and
// thread names and returns its id. Registration takes the tracer lock;
// instrumented code resolves its tracks once, up front, and emits
// against the ids. A nil tracer returns the zero Track.
func (t *Tracer) Track(process, thread string) Track {
	if t == nil {
		return Track{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid, ok := t.procIDs[process]
	if !ok {
		t.procs = append(t.procs, process)
		pid = int32(len(t.procs)) // 1-based: pid 0 stays unnamed
		t.procIDs[process] = pid
	}
	for _, tn := range t.threads {
		if tn.pid == pid && tn.name == thread {
			return Track{Pid: pid, Tid: tn.tid}
		}
	}
	tid := int32(1)
	for _, tn := range t.threads {
		if tn.pid == pid && tn.tid >= tid {
			tid = tn.tid + 1
		}
	}
	t.threads = append(t.threads, trackName{pid: pid, tid: tid, name: thread})
	return Track{Pid: pid, Tid: tid}
}

// emit appends one event to the ring, overwriting the oldest once full.
func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next%uint64(len(t.buf))] = e
	}
	t.next++
	t.mu.Unlock()
}

// Emit records a complete span with explicit timing: the path for
// synthetic spans reconstructed from accumulated stage clocks rather
// than live Begin/End pairs. startNS is Nanotime-based; durNS >= 0.
func (t *Tracer) Emit(tk Track, name string, startNS, durNS int64, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Ph: 'X', Pid: tk.Pid, Tid: tk.Tid, TS: startNS, Dur: durNS, Args: args})
}

// Instant records a zero-duration event.
func (t *Tracer) Instant(tk Track, name string, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Ph: 'i', Pid: tk.Pid, Tid: tk.Tid, TS: Nanotime(), Args: args})
}

// Counter records a counter sample (a stepped time series in Perfetto).
func (t *Tracer) Counter(tk Track, name string, value float64) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Ph: 'C', Pid: tk.Pid, Tid: tk.Tid, TS: Nanotime(),
		Args: map[string]any{"value": value}})
}

// Span is an in-flight interval opened by Begin. The zero Span (from a
// nil tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	tk    Track
	name  string
	start int64
}

// Begin opens a span on the given track. On a nil tracer this is one
// branch and returns the no-op Span.
func (t *Tracer) Begin(tk Track, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, tk: tk, name: name, start: Nanotime()}
}

// End closes the span.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span, attaching the given attributes.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	s.t.emit(Event{Name: s.name, Ph: 'X', Pid: s.tk.Pid, Tid: s.tk.Tid,
		TS: s.start, Dur: Nanotime() - s.start, Args: args})
}

// Events returns a copy of the recorded events, oldest first. With a
// wrapped ring only the newest Capacity events remain.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.next > uint64(len(t.buf)) { // wrapped: oldest is at next % len
		start := t.next % uint64(len(t.buf))
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(len(t.buf)) {
		return 0
	}
	return t.next - uint64(len(t.buf))
}
