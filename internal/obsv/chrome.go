// Chrome trace-event export: the tracer's ring serialized as the JSON
// object format that chrome://tracing and ui.perfetto.dev load
// directly. Every registered track becomes a named process/thread pair,
// so a characterize run shows one process per demo with frame, stage
// and tile-worker rows inside it.
package obsv

import (
	"encoding/json"
	"io"
)

// TraceSchemaID identifies the exported trace document; the checked-in
// trace_events_schema.json validates against it in CI.
const TraceSchemaID = "gpuchar/trace/v1"

// chromeEvent is one trace-event in Chrome's JSON object format.
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level trace document.
type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// us converts tracer nanoseconds to trace-event microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeJSON serializes the recorded events as a Chrome
// trace-event document. Metadata events naming every registered track
// come first, then the payload events oldest-first. Safe to call while
// other goroutines still emit; the export is a consistent point-in-time
// copy.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	doc := chromeDoc{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"schema": TraceSchemaID},
	}
	if t != nil {
		t.mu.Lock()
		procs := append([]string(nil), t.procs...)
		threads := append([]trackName(nil), t.threads...)
		dropped := uint64(0)
		if t.next > uint64(len(t.buf)) {
			dropped = t.next - uint64(len(t.buf))
		}
		t.mu.Unlock()
		if dropped > 0 {
			doc.OtherData["dropped_events"] = dropped
		}
		for i, name := range procs {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: int32(i + 1), Tid: 0,
				Args: map[string]any{"name": name},
			})
		}
		for _, tn := range threads {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: tn.pid, Tid: tn.tid,
				Args: map[string]any{"name": tn.name},
			})
		}
		for _, e := range t.Events() {
			ce := chromeEvent{
				Name: e.Name, Ph: string(e.Ph), Pid: e.Pid, Tid: e.Tid,
				TS: us(e.TS), Args: e.Args,
			}
			if e.Ph == 'X' {
				d := us(e.Dur)
				ce.Dur = &d
			}
			if e.Ph == 'i' {
				ce.S = "t" // thread-scoped instant
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
	}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
