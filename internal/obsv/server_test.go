package obsv

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuchar/internal/metrics"
)

// startTestServer brings up a server on an ephemeral port with one live
// counter snapshot and a progress feed.
func startTestServer(t *testing.T) *Server {
	t.Helper()
	reg := metrics.NewRegistry()
	var frags int64 = 4096
	reg.Bind("rast/fragments", &frags)
	snap := reg.Snapshot().WithLabels("demo", "Doom3/trdemo2", "state", "running")
	p := NewProgressTracker(2)
	p.StartExperiment("table7")
	p.FrameDone("Doom3/trdemo2", 0)

	srv, err := StartServer("127.0.0.1:0", ServerSources{
		Snapshots: func() []metrics.Snapshot { return []metrics.Snapshot{snap} },
		Progress:  p.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv := startTestServer(t)

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"obsv_up 1",
		"obsv_experiments_total 2",
		"obsv_frames_done 1",
		"gpuchar_rast_fragments",
		`demo="Doom3/trdemo2"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
	for _, want := range []string{`"total": 2`, `"table7"`, `"done": 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/progress missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestServerNilSources checks the endpoints degrade gracefully with no
// data feeds: /metrics still serves the run gauges (CI scrapes once and
// asserts non-empty output).
func TestServerNilSources(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "obsv_up 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get(t, srv, "/progress")
	if code != http.StatusOK || !strings.Contains(body, `"elapsed_seconds"`) {
		t.Errorf("/progress = %d %q", code, body)
	}
}

func TestServerClose(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close() = %v", err)
	}
}

// TestServerMount pins the extension hook: routes registered through
// ServerSources.Mount serve alongside the built-ins.
func TestServerMount(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerSources{
		Mount: func(mux *http.ServeMux) {
			mux.HandleFunc("/extra", func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprint(w, "mounted")
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, body := get(t, srv, "/extra"); code != 200 || body != "mounted" {
		t.Errorf("GET /extra = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/healthz"); code != 200 {
		t.Errorf("built-in /healthz lost after Mount: %d", code)
	}
}

// TestServerGracefulShutdown pins the drain contract: a request in
// flight when Shutdown begins still completes, and new connections are
// refused.
func TestServerGracefulShutdown(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	srv, err := StartServer("127.0.0.1:0", ServerSources{
		Mount: func(mux *http.ServeMux) {
			mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
				close(inHandler)
				<-release
				fmt.Fprint(w, "drained")
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("http://%s/slow", srv.Addr))
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- result{code: resp.StatusCode, body: string(body), err: err}
	}()
	<-inHandler

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	// Let Shutdown close the listener, then release the handler.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr)); err != nil {
			break // listener closed: new connections refused
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)

	r := <-got
	if r.err != nil || r.code != 200 || r.body != "drained" {
		t.Errorf("in-flight request: %d %q %v; want it to drain to completion", r.code, r.body, r.err)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestHealthzReflectsDegradedState pins the Health source: /healthz
// turns 503 with the detail line while the daemon reports itself
// unhealthy, and recovers to 200 ok.
func TestHealthzReflectsDegradedState(t *testing.T) {
	var degraded int32
	srv, err := StartServer("127.0.0.1:0", ServerSources{
		Health: func() (bool, string) {
			if atomic.LoadInt32(&degraded) == 1 {
				return false, "degraded: spool on fire"
			}
			return true, "ok"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthy /healthz = %d %q", code, body)
	}
	atomic.StoreInt32(&degraded, 1)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "spool on fire") {
		t.Errorf("degraded /healthz = %d %q; want 503 with detail", code, body)
	}
	atomic.StoreInt32(&degraded, 0)
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Errorf("recovered /healthz = %d; want 200", code)
	}
}

// TestResponseHeadersPinned pins the exact Content-Type (including
// charset) and Cache-Control of every observability endpoint, so curl
// and browser views never render mojibake or stale state.
func TestResponseHeadersPinned(t *testing.T) {
	srv := startTestServer(t)
	cases := []struct {
		path        string
		contentType string
	}{
		{"/healthz", "text/plain; charset=utf-8"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/progress", "application/json; charset=utf-8"},
	}
	for _, tc := range cases {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, tc.path))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != tc.contentType {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, ct, tc.contentType)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", tc.path, cc)
		}
	}
}
