package obsv

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"gpuchar/internal/metrics"
)

// startTestServer brings up a server on an ephemeral port with one live
// counter snapshot and a progress feed.
func startTestServer(t *testing.T) *Server {
	t.Helper()
	reg := metrics.NewRegistry()
	var frags int64 = 4096
	reg.Bind("rast/fragments", &frags)
	snap := reg.Snapshot().WithLabels("demo", "Doom3/trdemo2", "state", "running")
	p := NewProgressTracker(2)
	p.StartExperiment("table7")
	p.FrameDone("Doom3/trdemo2", 0)

	srv, err := StartServer("127.0.0.1:0", ServerSources{
		Snapshots: func() []metrics.Snapshot { return []metrics.Snapshot{snap} },
		Progress:  p.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv := startTestServer(t)

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"obsv_up 1",
		"obsv_experiments_total 2",
		"obsv_frames_done 1",
		"gpuchar_rast_fragments",
		`demo="Doom3/trdemo2"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress = %d", code)
	}
	for _, want := range []string{`"total": 2`, `"table7"`, `"done": 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("/progress missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestServerNilSources checks the endpoints degrade gracefully with no
// data feeds: /metrics still serves the run gauges (CI scrapes once and
// asserts non-empty output).
func TestServerNilSources(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "obsv_up 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	code, body = get(t, srv, "/progress")
	if code != http.StatusOK || !strings.Contains(body, `"elapsed_seconds"`) {
		t.Errorf("/progress = %d %q", code, body)
	}
}

func TestServerClose(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerSources{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil server Close() = %v", err)
	}
}
