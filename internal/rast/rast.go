// Package rast implements the rasterization stage: linear edge-function
// triangle setup and the recursive tiled traversal used by ATTILA
// (paper §III.C) — a 16x16-pixel upper tile level, 8x8 inner tiles, and
// 2x2 fragment quads, the working unit of the rest of the pipeline.
//
// The stage produces the statistics behind Table VIII / Figure 7
// (fragments per triangle at rasterization) and Table X (quad
// efficiency: the fraction of emitted quads with all four fragments
// covered).
package rast

import (
	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/metrics"
)

// Tile dimensions of the recursive rasterizer.
const (
	OuterTile = 16 // upper traversal level footprint
	InnerTile = 8  // per-cycle generation tile
	QuadDim   = 2  // fragment quad
)

// Quad is a 2x2 block of fragments, the pipeline's working unit. X, Y
// are the window coordinates of the top-left fragment (always even).
type Quad struct {
	X, Y int
	// Mask bit i covers fragment i in order (0,0),(1,0),(0,1),(1,1).
	Mask uint8
	// Z holds the interpolated depth per fragment.
	Z [4]float32
	// Tri points at the owning triangle's interpolation setup.
	Tri *SetupTri
}

// FragCount returns the number of covered fragments in the quad.
func (q *Quad) FragCount() int {
	n := 0
	for i := 0; i < 4; i++ {
		if q.Mask&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// Complete reports whether all four fragments are covered — the quad
// efficiency numerator of the paper's Table X.
func (q *Quad) Complete() bool { return q.Mask == 0xF }

// PixelX and PixelY return the window coordinates of lane i.
func (q *Quad) PixelX(i int) int { return q.X + i&1 }

// PixelY returns the y window coordinate of lane i.
func (q *Quad) PixelY(i int) int { return q.Y + i>>1 }

// plane is an affine screen-space interpolant v(x,y) = a*x + b*y + c.
type plane struct{ a, b, c float32 }

func (p plane) at(x, y float32) float32 { return p.a*x + p.b*y + p.c }

// SetupTri is a triangle after setup: edge equations plus interpolation
// planes for depth, 1/w and the perspective-corrected varyings.
type SetupTri struct {
	// Edge functions, positive inside.
	e [3]plane
	// topLeft marks edges that include boundary samples (fill rule).
	topLeft [3]bool
	z       plane
	invW    plane
	// varying planes: [slot][component], premultiplied by 1/w.
	vr [geom.NumVaryings][4]plane

	minX, minY, maxX, maxY int
}

// Varying evaluates varying slot at pixel center (x, y) with perspective
// correction.
func (t *SetupTri) Varying(slot int, x, y int) gmath.Vec4 {
	fx, fy := float32(x)+0.5, float32(y)+0.5
	iw := t.invW.at(fx, fy)
	if iw == 0 {
		iw = 1e-9
	}
	w := 1 / iw
	return gmath.Vec4{
		X: t.vr[slot][0].at(fx, fy) * w,
		Y: t.vr[slot][1].at(fx, fy) * w,
		Z: t.vr[slot][2].at(fx, fy) * w,
		W: t.vr[slot][3].at(fx, fy) * w,
	}
}

// Stats accumulates rasterizer activity.
type Stats struct {
	TrianglesSetup int64
	QuadsEmitted   int64
	Fragments      int64 // covered fragments generated
	CompleteQuads  int64
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the rasterizer counter names.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/triangles_setup", &s.TrianglesSetup)
	r.Bind(prefix+"/quads_emitted", &s.QuadsEmitted)
	r.Bind(prefix+"/fragments", &s.Fragments)
	r.Bind(prefix+"/complete_quads", &s.CompleteQuads)
}

// QuadEfficiency returns the percentage of complete quads (Table X).
func (s Stats) QuadEfficiency() float64 {
	if s.QuadsEmitted == 0 {
		return 0
	}
	return 100 * float64(s.CompleteQuads) / float64(s.QuadsEmitted)
}

// Config bounds rasterization to the viewport and an optional scissor
// rectangle.
type Config struct {
	Width, Height int
	// Scissor, when non-zero, restricts output to [X0,X1) x [Y0,Y1).
	ScissorX0, ScissorY0, ScissorX1, ScissorY1 int
}

func (c Config) bounds() (x0, y0, x1, y1 int) {
	x0, y0, x1, y1 = 0, 0, c.Width, c.Height
	if c.ScissorX1 > c.ScissorX0 && c.ScissorY1 > c.ScissorY0 {
		x0, y0 = maxInt(x0, c.ScissorX0), maxInt(y0, c.ScissorY0)
		x1, y1 = minInt(x1, c.ScissorX1), minInt(y1, c.ScissorY1)
	}
	return
}

// QuadEmitter consumes the quads a triangle traversal produces. The
// *Quad passed to EmitQuad is scratch owned by the rasterizer and valid
// only for the duration of the call; consumers that defer processing
// (the tile binner) must copy it.
type QuadEmitter interface {
	EmitQuad(*Quad)
}

// funcEmitter adapts a plain function to the QuadEmitter interface for
// the legacy callback API.
type funcEmitter func(*Quad)

func (f funcEmitter) EmitQuad(q *Quad) { f(q) }

// Rasterizer traverses triangles into quads.
type Rasterizer struct {
	stats Stats
	// q is the scratch quad passed to emitters; kept on the rasterizer
	// because taking its address for the QuadEmitter interface call
	// would otherwise heap-allocate one quad per triangle.
	q Quad
}

// New creates a rasterizer.
func New() *Rasterizer { return &Rasterizer{} }

// Stats returns accumulated statistics.
func (r *Rasterizer) Stats() Stats { return r.stats }

// ResetStats clears the counters.
func (r *Rasterizer) ResetStats() { r.stats = Stats{} }

// RegisterMetrics binds the rasterizer's live counters into reg under
// prefix.
func (r *Rasterizer) RegisterMetrics(reg *metrics.Registry, prefix string) {
	r.stats.Register(reg, prefix)
}

// Setup computes the edge and interpolation equations of a screen
// triangle. It returns nil for triangles with non-positive area (the
// geometry stage has already oriented front faces counter-clockwise).
func Setup(tri *geom.Triangle) *SetupTri {
	s := &SetupTri{}
	if !SetupInto(tri, s) {
		return nil
	}
	return s
}

// SetupInto is Setup into caller-owned storage, so per-triangle setup
// runs without heap allocation on the pipeline's hot path. Every field
// of s is overwritten. It reports false (s undefined) for triangles
// with non-positive area.
func SetupInto(tri *geom.Triangle, s *SetupTri) bool {
	v0, v1, v2 := &tri.V[0], &tri.V[1], &tri.V[2]
	area2 := (v1.X-v0.X)*(v2.Y-v0.Y) - (v2.X-v0.X)*(v1.Y-v0.Y)
	if area2 <= 0 {
		return false
	}
	s.e[0] = edgePlane(v1, v2)
	s.e[1] = edgePlane(v2, v0)
	s.e[2] = edgePlane(v0, v1)
	for i := 0; i < 3; i++ {
		// Top-left rule: an edge is top (horizontal, going left) or left
		// (going down) when its normal components satisfy these signs.
		a, b := s.e[i].a, s.e[i].b
		s.topLeft[i] = a > 0 || (a == 0 && b > 0)
	}
	inv := 1 / area2
	s.z = interpPlane(v0, v1, v2, v0.Z, v1.Z, v2.Z, inv)
	s.invW = interpPlane(v0, v1, v2, v0.InvW, v1.InvW, v2.InvW, inv)
	for slot := 0; slot < geom.NumVaryings; slot++ {
		for c := 0; c < 4; c++ {
			s.vr[slot][c] = interpPlane(v0, v1, v2,
				v0.Var[slot].Comp(c), v1.Var[slot].Comp(c), v2.Var[slot].Comp(c), inv)
		}
	}
	s.minX = int(floor3(v0.X, v1.X, v2.X))
	s.minY = int(floor3(v0.Y, v1.Y, v2.Y))
	s.maxX = int(ceil3(v0.X, v1.X, v2.X))
	s.maxY = int(ceil3(v0.Y, v1.Y, v2.Y))
	return true
}

// edgePlane builds the edge function through a->b, positive on the left
// side (inside for CCW triangles): E(x,y) = A*x + B*y + C with
// A = -(b.Y-a.Y), B = (b.X-a.X), and C chosen so E(a) = 0.
func edgePlane(a, b *geom.ScreenVertex) plane {
	ea := -(b.Y - a.Y)
	eb := b.X - a.X
	return plane{a: ea, b: eb, c: -(ea*a.X + eb*a.Y)}
}

// interpPlane solves the affine interpolant through the three vertices.
func interpPlane(v0, v1, v2 *geom.ScreenVertex, f0, f1, f2, invArea2 float32) plane {
	// Gradient via the standard plane equation solution.
	d10x, d10y, d20x, d20y := v1.X-v0.X, v1.Y-v0.Y, v2.X-v0.X, v2.Y-v0.Y
	df10, df20 := f1-f0, f2-f0
	a := (df10*d20y - df20*d10y) * invArea2
	b := (df20*d10x - df10*d20x) * invArea2
	c := f0 - a*v0.X - b*v0.Y
	return plane{a, b, c}
}

// Rasterize traverses one prepared triangle, invoking emit for every
// quad with at least one covered fragment. It is the closure-based
// convenience over RasterizeTo; the pipeline uses RasterizeTo directly
// so the inner loop carries no closure.
func (r *Rasterizer) Rasterize(s *SetupTri, cfg Config, emit func(*Quad)) {
	r.RasterizeTo(s, cfg, funcEmitter(emit))
}

// RasterizeTo traverses one prepared triangle, passing every quad with
// at least one covered fragment to em. Statistics accumulate on the
// rasterizer.
func (r *Rasterizer) RasterizeTo(s *SetupTri, cfg Config, em QuadEmitter) {
	if s == nil {
		return
	}
	r.stats.TrianglesSetup++
	bx0, by0, bx1, by1 := cfg.bounds()
	x0 := maxInt(s.minX, bx0) &^ (OuterTile - 1)
	y0 := maxInt(s.minY, by0) &^ (OuterTile - 1)
	x1 := minInt(s.maxX+1, bx1)
	y1 := minInt(s.maxY+1, by1)

	q := &r.q
	q.Tri = s
	for ty := y0; ty < y1; ty += OuterTile {
		for tx := x0; tx < x1; tx += OuterTile {
			if !s.tileOverlaps(tx, ty, OuterTile) {
				continue
			}
			// Descend into 8x8 inner tiles.
			for iy := ty; iy < ty+OuterTile && iy < y1; iy += InnerTile {
				for ix := tx; ix < tx+OuterTile && ix < x1; ix += InnerTile {
					if !s.tileOverlaps(ix, iy, InnerTile) {
						continue
					}
					r.emitQuads(s, ix, iy, bx0, by0, x1, y1, q, em)
				}
			}
		}
	}
}

// tileOverlaps conservatively tests whether a tile can contain covered
// samples by evaluating each edge at its most-inside corner.
func (s *SetupTri) tileOverlaps(tx, ty, dim int) bool {
	fx0, fy0 := float32(tx), float32(ty)
	fx1, fy1 := float32(tx+dim), float32(ty+dim)
	for i := 0; i < 3; i++ {
		e := s.e[i]
		// Choose the corner maximizing the edge function.
		x, y := fx0, fy0
		if e.a > 0 {
			x = fx1
		}
		if e.b > 0 {
			y = fy1
		}
		if e.at(x, y) < 0 {
			return false
		}
	}
	return true
}

// emitQuads walks the 2x2 quads of one 8x8 inner tile.
func (r *Rasterizer) emitQuads(s *SetupTri, ix, iy, bx0, by0, x1, y1 int,
	q *Quad, em QuadEmitter) {

	for qy := iy; qy < iy+InnerTile && qy < y1; qy += QuadDim {
		if qy+QuadDim <= by0 {
			continue
		}
		for qx := ix; qx < ix+InnerTile && qx < x1; qx += QuadDim {
			if qx+QuadDim <= bx0 {
				continue
			}
			mask := uint8(0)
			for lane := 0; lane < 4; lane++ {
				px := qx + lane&1
				py := qy + lane>>1
				if px < bx0 || px >= x1 || py < by0 || py >= y1 {
					continue
				}
				if s.covers(float32(px)+0.5, float32(py)+0.5) {
					mask |= 1 << lane
				}
			}
			if mask == 0 {
				continue
			}
			q.X, q.Y, q.Mask = qx, qy, mask
			for lane := 0; lane < 4; lane++ {
				q.Z[lane] = s.z.at(float32(qx+lane&1)+0.5, float32(qy+lane>>1)+0.5)
			}
			r.stats.QuadsEmitted++
			r.stats.Fragments += int64(q.FragCount())
			if q.Complete() {
				r.stats.CompleteQuads++
			}
			em.EmitQuad(q)
		}
	}
}

// covers applies the top-left fill rule at a sample position.
func (s *SetupTri) covers(x, y float32) bool {
	for i := 0; i < 3; i++ {
		v := s.e[i].at(x, y)
		if v < 0 || (v == 0 && !s.topLeft[i]) {
			return false
		}
	}
	return true
}

func floor3(a, b, c float32) float32 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func ceil3(a, b, c float32) float32 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
