package rast

import (
	"testing"

	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
)

// tri builds a screen triangle with constant InvW=1 and one varying.
func tri(x0, y0, x1, y1, x2, y2 float32) *geom.Triangle {
	t := &geom.Triangle{CountsAsTraversed: true}
	coords := [3][2]float32{{x0, y0}, {x1, y1}, {x2, y2}}
	for i, c := range coords {
		t.V[i] = geom.ScreenVertex{X: c[0], Y: c[1], Z: 0.5, InvW: 1}
		t.V[i].Var[0] = gmath.V4(c[0], c[1], 0, 1) // varying = position
	}
	return t
}

func collect(r *Rasterizer, s *SetupTri, cfg Config) []Quad {
	var quads []Quad
	r.Rasterize(s, cfg, func(q *Quad) {
		quads = append(quads, *q)
	})
	return quads
}

var cfg64 = Config{Width: 64, Height: 64}

func TestSetupRejectsBackfacing(t *testing.T) {
	// Clockwise triangle: negative area.
	if s := Setup(tri(0, 0, 0, 10, 10, 0)); s != nil {
		t.Error("backfacing triangle should not set up")
	}
	// Degenerate.
	if s := Setup(tri(0, 0, 5, 5, 10, 10)); s != nil {
		t.Error("degenerate triangle should not set up")
	}
}

func TestFullSquareCoverage(t *testing.T) {
	// Two triangles covering exactly a 16x16 square: fragment count
	// must equal 256 with no double counting on the shared diagonal.
	r := New()
	t1 := Setup(tri(0, 0, 16, 0, 16, 16))
	t2 := Setup(tri(0, 0, 16, 16, 0, 16))
	if t1 == nil || t2 == nil {
		t.Fatal("setup failed")
	}
	total := 0
	for _, s := range []*SetupTri{t1, t2} {
		for _, q := range collect(r, s, cfg64) {
			total += q.FragCount()
		}
	}
	if total != 256 {
		t.Errorf("two triangles over 16x16 = %d fragments, want 256", total)
	}
}

func TestSharedEdgeNoDoubleCount(t *testing.T) {
	// Four triangles sharing a central vertex, covering a square fan.
	// Total coverage must still be exact.
	r := New()
	quadsArea := 0
	pts := [][6]float32{
		{0, 0, 32, 0, 16, 16},
		{32, 0, 32, 32, 16, 16},
		{32, 32, 0, 32, 16, 16},
		{0, 32, 0, 0, 16, 16},
	}
	for _, p := range pts {
		s := Setup(tri(p[0], p[1], p[2], p[3], p[4], p[5]))
		if s == nil {
			t.Fatalf("setup failed for %v", p)
		}
		for _, q := range collect(r, s, cfg64) {
			quadsArea += q.FragCount()
		}
	}
	if quadsArea != 32*32 {
		t.Errorf("fan coverage = %d, want 1024", quadsArea)
	}
}

func TestQuadMaskLayout(t *testing.T) {
	// A tiny triangle covering only pixel (2,2) yields one quad at
	// (2,2) with mask bit 0.
	r := New()
	s := Setup(tri(2, 2, 3.2, 2, 2, 3.2))
	quads := collect(r, s, cfg64)
	if len(quads) != 1 {
		t.Fatalf("quads = %d", len(quads))
	}
	q := quads[0]
	if q.X != 2 || q.Y != 2 {
		t.Errorf("quad at (%d,%d)", q.X, q.Y)
	}
	if q.Mask != 1 {
		t.Errorf("mask = %04b, want 0001", q.Mask)
	}
	if q.FragCount() != 1 || q.Complete() {
		t.Error("FragCount/Complete wrong")
	}
	if q.PixelX(3) != 3 || q.PixelY(3) != 3 {
		t.Errorf("lane 3 pixel = (%d,%d)", q.PixelX(3), q.PixelY(3))
	}
}

func TestZInterpolation(t *testing.T) {
	// Triangle with z varying across x: z=0 at x=0, z=1 at x=32.
	tr := &geom.Triangle{}
	tr.V[0] = geom.ScreenVertex{X: 0, Y: 0, Z: 0, InvW: 1}
	tr.V[1] = geom.ScreenVertex{X: 32, Y: 0, Z: 1, InvW: 1}
	tr.V[2] = geom.ScreenVertex{X: 0, Y: 32, Z: 0, InvW: 1}
	s := Setup(tr)
	if s == nil {
		t.Fatal("setup failed")
	}
	r := New()
	for _, q := range collect(r, s, cfg64) {
		for lane := 0; lane < 4; lane++ {
			if q.Mask&(1<<lane) == 0 {
				continue
			}
			wantZ := (float32(q.PixelX(lane)) + 0.5) / 32
			if diff := q.Z[lane] - wantZ; diff > 0.001 || diff < -0.001 {
				t.Fatalf("z at x=%d: %v, want %v", q.PixelX(lane), q.Z[lane], wantZ)
			}
		}
	}
}

func TestVaryingPerspectiveCorrection(t *testing.T) {
	// A triangle with InvW varying: perspective-correct interpolation of
	// a varying equal to the original (pre-divide) value must recover it.
	tr := &geom.Triangle{}
	// v0 at w=1, v1 at w=4 (InvW .25), varying holds u: 0 at v0, 1 at v1.
	tr.V[0] = geom.ScreenVertex{X: 0, Y: 0, Z: 0, InvW: 1}
	tr.V[0].Var[0] = gmath.V4(0, 0, 0, 0).Scale(tr.V[0].InvW)
	tr.V[1] = geom.ScreenVertex{X: 32, Y: 0, Z: 0, InvW: 0.25}
	tr.V[1].Var[0] = gmath.V4(1, 0, 0, 0).Scale(tr.V[1].InvW)
	tr.V[2] = geom.ScreenVertex{X: 0, Y: 32, Z: 0, InvW: 1}
	tr.V[2].Var[0] = gmath.V4(0, 0, 0, 0).Scale(tr.V[2].InvW)
	s := Setup(tr)
	if s == nil {
		t.Fatal("setup failed")
	}
	// At screen midpoint x=16 on the bottom edge, the perspective-correct
	// u is w-weighted: u = (0.5/4)/(0.5*1/1*... ) — compute directly:
	// invW mid = (1+0.25)/2 = 0.625; u*invW mid = (0+0.25)/2 = 0.125;
	// u = 0.125/0.625 = 0.2.
	u := s.Varying(0, 15, 0) // pixel center 15.5 ~ half of 31-ish
	if u.X < 0.15 || u.X > 0.25 {
		t.Errorf("perspective-corrected u = %v, want ~0.2", u.X)
	}
}

func TestScissor(t *testing.T) {
	r := New()
	s := Setup(tri(0, 0, 32, 0, 0, 32))
	cfg := cfg64
	cfg.ScissorX0, cfg.ScissorY0, cfg.ScissorX1, cfg.ScissorY1 = 0, 0, 8, 8
	for _, q := range collect(r, s, cfg) {
		for lane := 0; lane < 4; lane++ {
			if q.Mask&(1<<lane) == 0 {
				continue
			}
			if q.PixelX(lane) >= 8 || q.PixelY(lane) >= 8 {
				t.Fatalf("fragment (%d,%d) outside scissor",
					q.PixelX(lane), q.PixelY(lane))
			}
		}
	}
}

func TestViewportClamp(t *testing.T) {
	// A triangle extending past the viewport emits no out-of-range
	// fragments.
	r := New()
	s := Setup(tri(-20, -20, 100, -20, -20, 100))
	for _, q := range collect(r, s, Config{Width: 32, Height: 32}) {
		for lane := 0; lane < 4; lane++ {
			if q.Mask&(1<<lane) == 0 {
				continue
			}
			x, y := q.PixelX(lane), q.PixelY(lane)
			if x < 0 || x >= 32 || y < 0 || y >= 32 {
				t.Fatalf("fragment (%d,%d) outside viewport", x, y)
			}
		}
	}
}

func TestStatsAccumulation(t *testing.T) {
	r := New()
	s := Setup(tri(0, 0, 32, 0, 0, 32))
	quads := collect(r, s, cfg64)
	st := r.Stats()
	if st.TrianglesSetup != 1 {
		t.Errorf("setup count = %d", st.TrianglesSetup)
	}
	if st.QuadsEmitted != int64(len(quads)) {
		t.Errorf("quads = %d vs %d", st.QuadsEmitted, len(quads))
	}
	var frag, complete int64
	for _, q := range quads {
		frag += int64(q.FragCount())
		if q.Complete() {
			complete++
		}
	}
	if st.Fragments != frag || st.CompleteQuads != complete {
		t.Errorf("stats = %+v, want frag=%d complete=%d", st, frag, complete)
	}
	// A 32x32 right triangle has ~512 fragments.
	if st.Fragments < 480 || st.Fragments > 544 {
		t.Errorf("fragments = %d, want ~512", st.Fragments)
	}
	r.ResetStats()
	if r.Stats().QuadsEmitted != 0 {
		t.Error("ResetStats failed")
	}
}

func TestQuadEfficiencyLargeTriangle(t *testing.T) {
	// Big triangles have mostly complete quads (paper: >90% in games).
	r := New()
	s := Setup(tri(0, 0, 63, 0, 0, 63))
	collect(r, s, cfg64)
	if eff := r.Stats().QuadEfficiency(); eff < 85 {
		t.Errorf("large triangle quad efficiency = %v%%, want > 85%%", eff)
	}
}

func TestQuadEfficiencySmallTriangles(t *testing.T) {
	// Tiny triangles degrade quad efficiency, the effect the paper
	// contrasts with [1].
	r := New()
	for i := 0; i < 16; i++ {
		x := float32(i * 4)
		s := Setup(tri(x, 0, x+1.5, 0, x, 1.5))
		collect(r, s, cfg64)
	}
	if eff := r.Stats().QuadEfficiency(); eff > 50 {
		t.Errorf("tiny triangle quad efficiency = %v%%, want < 50%%", eff)
	}
}

func TestEmptyStatsEfficiency(t *testing.T) {
	var s Stats
	if s.QuadEfficiency() != 0 {
		t.Error("idle efficiency should be 0")
	}
}

func TestRasterizeNilSetup(t *testing.T) {
	r := New()
	r.Rasterize(nil, cfg64, func(*Quad) { t.Fatal("emitted from nil") })
	if r.Stats().TrianglesSetup != 0 {
		t.Error("nil setup should not count")
	}
}
