// Package fragment implements the fragment shading stage: quads arriving
// from the z & stencil (or hierarchical Z) stage have their varyings
// evaluated with perspective correction, are shaded in 2x2 lockstep by
// the shader interpreter — helper lanes included, so texture
// level-of-detail derivatives are exact — and may be discarded by the
// KIL instruction, which is how ATTILA models the alpha test (paper,
// Table IX).
package fragment

import (
	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/metrics"
	"gpuchar/internal/rast"
	"gpuchar/internal/shader"
)

// Stats accumulates shading-stage activity.
type Stats struct {
	QuadsIn          int64
	QuadsShaded      int64
	QuadsKilledAlpha int64 // quads fully discarded by KIL
	FragmentsShaded  int64 // covered fragments shaded
	FragmentsKilled  int64
	QuadsOut         int64
	CompleteOut      int64
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the fragment-stage counter names.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/quads_in", &s.QuadsIn)
	r.Bind(prefix+"/quads_shaded", &s.QuadsShaded)
	r.Bind(prefix+"/quads_killed_alpha", &s.QuadsKilledAlpha)
	r.Bind(prefix+"/fragments_shaded", &s.FragmentsShaded)
	r.Bind(prefix+"/fragments_killed", &s.FragmentsKilled)
	r.Bind(prefix+"/quads_out", &s.QuadsOut)
	r.Bind(prefix+"/complete_out", &s.CompleteOut)
}

// Stage is the fragment shading engine. The Machine carries the bound
// constants and texture sampler.
type Stage struct {
	Machine *shader.Machine
	stats   Stats

	// scratch reused across quads
	in     [4][shader.NumInputs]gmath.Vec4
	out    [4][shader.NumOutputs]gmath.Vec4
	colors [4]gmath.Vec4
}

// NewStage creates a fragment stage around a shader machine.
func NewStage(m *shader.Machine) *Stage { return &Stage{Machine: m} }

// Stats returns accumulated statistics.
func (s *Stage) Stats() Stats { return s.stats }

// ResetStats clears the counters.
func (s *Stage) ResetStats() { s.stats = Stats{} }

// RegisterMetrics binds the stage's live counters into r under prefix.
func (s *Stage) RegisterMetrics(r *metrics.Registry, prefix string) {
	s.stats.Register(r, prefix)
}

// ShadeQuad runs the fragment program on a quad. mask selects the
// fragments still alive after earlier tests; all four lanes execute (the
// dead ones as helper lanes for derivatives) but only live lanes count.
// It returns the surviving mask after KIL and the shaded colors.
func (s *Stage) ShadeQuad(q *rast.Quad, mask uint8, fs *shader.Program) (uint8, *[4]gmath.Vec4) {
	s.stats.QuadsIn++
	if mask == 0 {
		return 0, nil
	}

	// Build shader inputs: v0 = window position (x, y, z, 1/w),
	// v1..v4 = the interpolated varyings.
	for lane := 0; lane < 4; lane++ {
		x, y := q.PixelX(lane), q.PixelY(lane)
		s.in[lane][0] = gmath.V4(float32(x)+0.5, float32(y)+0.5, q.Z[lane], 1)
		for slot := 0; slot < geom.NumVaryings; slot++ {
			s.in[lane][1+slot] = q.Tri.Varying(slot, x, y)
		}
	}

	live := s.Machine.RunQuad(fs, &s.in, mask, &s.out)

	n := popcount(mask)
	s.stats.QuadsShaded++
	s.stats.FragmentsShaded += int64(n)
	s.stats.FragmentsKilled += int64(n - popcount(live))
	if live == 0 {
		s.stats.QuadsKilledAlpha++
		return 0, nil
	}
	s.stats.QuadsOut++
	if live == 0xF {
		s.stats.CompleteOut++
	}

	for lane := 0; lane < 4; lane++ {
		s.colors[lane] = s.out[lane][0]
	}
	// The returned slice of colors is scratch owned by the stage and
	// valid until the next ShadeQuad call.
	return live, &s.colors
}

func popcount(m uint8) int {
	n := 0
	for i := 0; i < 4; i++ {
		if m&(1<<i) != 0 {
			n++
		}
	}
	return n
}
