package fragment

import (
	"gpuchar/internal/metrics"
	"testing"

	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rast"
	"gpuchar/internal/shader"
)

// setupTri builds a large screen triangle whose varying 1 is a color and
// varying 0 is a texcoord, mirroring the BasicTransformVS conventions.
func setupTri(t *testing.T) *rast.SetupTri {
	t.Helper()
	tr := &geom.Triangle{}
	pts := [3][2]float32{{0, 0}, {64, 0}, {0, 64}}
	for i, p := range pts {
		tr.V[i] = geom.ScreenVertex{X: p[0], Y: p[1], Z: 0.5, InvW: 1}
		tr.V[i].Var[0] = gmath.V4(p[0]/64, p[1]/64, 0, 1) // texcoord
		tr.V[i].Var[1] = gmath.V4(1, 0.5, 0.25, 1)        // flat color
	}
	s := rast.Setup(tr)
	if s == nil {
		t.Fatal("setup failed")
	}
	return s
}

func quadOf(s *rast.SetupTri, x, y int) *rast.Quad {
	return &rast.Quad{X: x, Y: y, Mask: 0xF, Tri: s,
		Z: [4]float32{0.5, 0.5, 0.5, 0.5}}
}

func TestShadeQuadPassThroughColor(t *testing.T) {
	m := shader.NewMachine()
	st := NewStage(m)
	fs := shader.MustAssemble("flat", shader.FragmentProgram, "mov o0, v2")
	s := setupTri(t)
	live, colors := st.ShadeQuad(quadOf(s, 4, 4), 0xF, fs)
	if live != 0xF {
		t.Fatalf("live = %04b", live)
	}
	want := gmath.V4(1, 0.5, 0.25, 1)
	for lane := 0; lane < 4; lane++ {
		c := colors[lane]
		if absf(c.X-want.X) > 0.01 || absf(c.Y-want.Y) > 0.01 {
			t.Errorf("lane %d color = %v, want ~%v", lane, c, want)
		}
	}
	stats := st.Stats()
	if stats.QuadsShaded != 1 || stats.FragmentsShaded != 4 || stats.QuadsOut != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestVaryingInterpolationAcrossQuad(t *testing.T) {
	m := shader.NewMachine()
	st := NewStage(m)
	fs := shader.MustAssemble("uv", shader.FragmentProgram, "mov o0, v1")
	s := setupTri(t)
	_, colors := st.ShadeQuad(quadOf(s, 16, 16), 0xF, fs)
	// texcoord.x at pixel 16.5 of 64 -> ~0.258.
	if absf(colors[0].X-16.5/64) > 0.01 {
		t.Errorf("u at x=16 = %v, want ~%v", colors[0].X, 16.5/64)
	}
	// Lane 1 is one pixel right: u increases by 1/64.
	if absf(colors[1].X-colors[0].X-1.0/64) > 0.005 {
		t.Errorf("du across lanes = %v, want ~%v", colors[1].X-colors[0].X, 1.0/64)
	}
}

func TestWindowPositionInput(t *testing.T) {
	m := shader.NewMachine()
	st := NewStage(m)
	fs := shader.MustAssemble("pos", shader.FragmentProgram, "mov o0, v0")
	s := setupTri(t)
	_, colors := st.ShadeQuad(quadOf(s, 8, 10), 0xF, fs)
	if colors[0].X != 8.5 || colors[0].Y != 10.5 {
		t.Errorf("window pos = %v, want (8.5,10.5)", colors[0])
	}
	if colors[3].X != 9.5 || colors[3].Y != 11.5 {
		t.Errorf("lane 3 pos = %v", colors[3])
	}
}

func TestKillAllFragments(t *testing.T) {
	m := shader.NewMachine()
	m.Consts[0] = gmath.V4(-1, -1, -1, -1)
	st := NewStage(m)
	fs := shader.MustAssemble("killall", shader.FragmentProgram, `
		kil c0
		mov o0, v1
	`)
	s := setupTri(t)
	live, colors := st.ShadeQuad(quadOf(s, 4, 4), 0xF, fs)
	if live != 0 || colors != nil {
		t.Errorf("live = %04b, colors = %v", live, colors)
	}
	stats := st.Stats()
	if stats.QuadsKilledAlpha != 1 || stats.FragmentsKilled != 4 || stats.QuadsOut != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPartialMaskCounting(t *testing.T) {
	m := shader.NewMachine()
	st := NewStage(m)
	fs := shader.MustAssemble("flat", shader.FragmentProgram, "mov o0, v2")
	s := setupTri(t)
	live, _ := st.ShadeQuad(quadOf(s, 4, 4), 0b0110, fs)
	if live != 0b0110 {
		t.Errorf("live = %04b", live)
	}
	stats := st.Stats()
	if stats.FragmentsShaded != 2 || stats.CompleteOut != 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Interpreter invocations also reflect two active lanes.
	if m.Stats().Invocations != 2 {
		t.Errorf("invocations = %d", m.Stats().Invocations)
	}
}

func TestEmptyMaskNoShading(t *testing.T) {
	m := shader.NewMachine()
	st := NewStage(m)
	fs := shader.MustAssemble("flat", shader.FragmentProgram, "mov o0, v2")
	s := setupTri(t)
	live, colors := st.ShadeQuad(quadOf(s, 4, 4), 0, fs)
	if live != 0 || colors != nil {
		t.Error("empty mask should shade nothing")
	}
	if st.Stats().QuadsShaded != 0 {
		t.Error("empty mask counted as shaded")
	}
	if st.Stats().QuadsIn != 1 {
		t.Error("QuadsIn must count arrivals")
	}
}

func TestStatsRegister(t *testing.T) {
	a := Stats{QuadsIn: 1, QuadsShaded: 2, QuadsKilledAlpha: 3,
		FragmentsShaded: 4, FragmentsKilled: 5, QuadsOut: 6, CompleteOut: 7}
	r := metrics.NewRegistry()
	a.Register(r, "frag")
	s := r.Snapshot()
	s.Merge(s)
	if r.Load(s) != 0 {
		t.Fatal("snapshot did not round-trip through the registry")
	}
	if a.QuadsIn != 2 || a.CompleteOut != 14 {
		t.Errorf("merged stats = %+v", a)
	}
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
