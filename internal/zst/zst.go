// Package zst implements the depth and stencil stage: the on-die
// Hierarchical Z buffer, the combined z & stencil test with two-sided
// stencil operations (Doom3/Quake4 shadow volumes), and the z & stencil
// cache with fast clear and 2:1 block compression.
//
// This stage generates the quad-kill statistics of the paper's Table IX
// (HZ vs z&stencil removals), the z&stencil quad efficiency of Table X,
// and — via the cache — the z traffic of Tables XV-XVII, which fast
// clear and compression cut roughly in half (paper §III.E).
package zst

import (
	"gpuchar/internal/cache"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/rast"
)

// CompareFunc is a depth or stencil comparison.
type CompareFunc uint8

// Comparison functions (OpenGL semantics).
const (
	CmpNever CompareFunc = iota
	CmpLess
	CmpLEqual
	CmpEqual
	CmpGreater
	CmpGEqual
	CmpNotEqual
	CmpAlways
)

// eval applies the comparison to (new, stored).
func (c CompareFunc) eval(a, b float32) bool {
	switch c {
	case CmpNever:
		return false
	case CmpLess:
		return a < b
	case CmpLEqual:
		return a <= b
	case CmpEqual:
		return a == b
	case CmpGreater:
		return a > b
	case CmpGEqual:
		return a >= b
	case CmpNotEqual:
		return a != b
	default:
		return true
	}
}

func (c CompareFunc) evalU8(a, b uint8) bool {
	return c.eval(float32(a), float32(b))
}

// StencilOp updates a stencil value.
type StencilOp uint8

// Stencil operations.
const (
	OpKeep StencilOp = iota
	OpZero
	OpReplace
	OpIncr
	OpDecr
	OpIncrWrap
	OpDecrWrap
	OpInvert
)

func (o StencilOp) apply(v, ref uint8) uint8 {
	switch o {
	case OpZero:
		return 0
	case OpReplace:
		return ref
	case OpIncr:
		if v == 255 {
			return v
		}
		return v + 1
	case OpDecr:
		if v == 0 {
			return v
		}
		return v - 1
	case OpIncrWrap:
		return v + 1
	case OpDecrWrap:
		return v - 1
	case OpInvert:
		return ^v
	default:
		return v
	}
}

// FaceOps is the stencil operation triple for one triangle facing.
type FaceOps struct {
	Fail  StencilOp // stencil test failed
	ZFail StencilOp // stencil passed, depth failed
	ZPass StencilOp // both passed
}

// State is the z & stencil pipeline state of a draw call.
type State struct {
	ZTest  bool
	ZFunc  CompareFunc
	ZWrite bool

	StencilTest bool
	StencilFunc CompareFunc
	StencilRef  uint8
	StencilMask uint8
	Front       FaceOps
	Back        FaceOps

	// HZ gates the Hierarchical Z early rejection for this draw. Real
	// drivers disable it for z modes HZ cannot express.
	HZ bool
}

// DefaultState returns plain less-than depth testing with writes.
func DefaultState() State {
	return State{
		ZTest: true, ZFunc: CmpLess, ZWrite: true,
		StencilMask: 0xFF,
		Front:       FaceOps{OpKeep, OpKeep, OpKeep},
		Back:        FaceOps{OpKeep, OpKeep, OpKeep},
		HZ:          true,
	}
}

// Stats accumulates stage activity.
type Stats struct {
	QuadsIn       int64
	QuadsKilledHZ int64 // removed whole by Hierarchical Z
	QuadsKilled   int64 // removed whole by the z & stencil test
	QuadsOut      int64
	CompleteOut   int64 // quads leaving with all four fragments
	FragmentsIn   int64
	FragmentsOut  int64
	// HZWouldPassButZFails counts fragments the z test killed that HZ
	// let through — the headroom a better HZ could claim (paper §III.C).
	ZKilledFragments int64
}

// Register binds every counter of s into the registry under prefix —
// the single definition of the z & stencil counter names.
func (s *Stats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/quads_in", &s.QuadsIn)
	r.Bind(prefix+"/quads_killed_hz", &s.QuadsKilledHZ)
	r.Bind(prefix+"/quads_killed", &s.QuadsKilled)
	r.Bind(prefix+"/quads_out", &s.QuadsOut)
	r.Bind(prefix+"/complete_out", &s.CompleteOut)
	r.Bind(prefix+"/fragments_in", &s.FragmentsIn)
	r.Bind(prefix+"/fragments_out", &s.FragmentsOut)
	r.Bind(prefix+"/z_killed_fragments", &s.ZKilledFragments)
}

// hzBlockDim is the footprint of one Hierarchical Z entry. ATTILA uses
// 8x8 blocks over the framebuffer, matching the inner rasterizer tile.
const hzBlockDim = 8

// lineDim is the footprint of one z-cache line: 256 bytes of 4-byte
// depth+stencil values = an 8x8 pixel block (Table XIV: 64w x 256B).
const lineDim = 8

// ZCacheConfig is the paper's Table XIV z & stencil cache geometry —
// the default for buffers created without an explicit geometry.
var ZCacheConfig = cache.Config{Ways: 64, Sets: 1, LineBytes: 256}

// Buffer is the combined depth (float) + stencil (uint8) framebuffer
// with its Hierarchical Z mirror and cache.
type Buffer struct {
	w, h     int
	depth    []float32
	stencil  []uint8
	baseAddr uint64

	// HZ state, per 8x8 block.
	hzMax    []float32
	cover    []uint64 // per-block coverage bitmask since clear
	maxSince []float32

	// Per-line clear flag for fast clear: a set bit means the line
	// still holds the clear value and costs nothing to fill.
	clearLine []bool
	clearZ    float32
	clearS    uint8

	// cacheCfg is the buffer's z-cache geometry: one line per 8x8
	// pixel block regardless of the configured line size, so shrinking
	// LineBytes models a cheaper (leakier) cache without changing the
	// block footprint the stage tests against.
	cacheCfg cache.Config
	zcache   *cache.Cache
	memctl   *mem.Controller
	stats    Stats

	// shards lists the tile-worker views created by NewShard, so that
	// Clear/ClearStencil can propagate the clear registers and cache
	// invalidations. Only the parent buffer has a non-empty list.
	shards []*Buffer

	// Compression and FastClear enable the bandwidth reduction
	// techniques (on by default); the ablation benches switch them off
	// to measure the paper's "reduced by half" claim.
	Compression bool
	FastClear   bool
}

// NewBuffer creates a w x h depth/stencil buffer with the Table XIV
// cache geometry. baseAddr places it in the GPU address space for cache
// addressing; memctl may be nil.
func NewBuffer(w, h int, baseAddr uint64, memctl *mem.Controller) *Buffer {
	return NewBufferCache(w, h, baseAddr, memctl, ZCacheConfig)
}

// NewBufferCache is NewBuffer with an explicit z-cache geometry, the
// hook the sweepable hardware variants configure. The geometry must be
// valid per cache.New; hwconfig.Variant.Validate vets user-supplied
// configs before they reach this constructor.
func NewBufferCache(w, h int, baseAddr uint64, memctl *mem.Controller, cc cache.Config) *Buffer {
	blocksX := (w + hzBlockDim - 1) / hzBlockDim
	blocksY := (h + hzBlockDim - 1) / hzBlockDim
	nb := blocksX * blocksY
	b := &Buffer{
		w: w, h: h,
		depth:     make([]float32, w*h),
		stencil:   make([]uint8, w*h),
		baseAddr:  baseAddr,
		hzMax:     make([]float32, nb),
		cover:     make([]uint64, nb),
		maxSince:  make([]float32, nb),
		clearLine: make([]bool, nb),
		cacheCfg:  cc,
		zcache:    cache.MustNew(cc),
		memctl:    memctl,

		Compression: true,
		FastClear:   true,
	}
	b.Clear(1, 0)
	return b
}

// NewShard returns a tile-worker view of the buffer: it shares the
// depth/stencil planes, the Hierarchical Z mirror and the fast-clear
// flags (all indexed per pixel or per 8x8 block, so disjoint tile
// ownership keeps accesses race-free), while carrying a private z-cache,
// private statistics and a private memory-controller shard. Create
// shards after the parent's Compression/FastClear flags are final; the
// parent's Clear and ClearStencil propagate to shards.
func (b *Buffer) NewShard(memctl *mem.Controller) *Buffer {
	s := &Buffer{
		w: b.w, h: b.h,
		depth:     b.depth,
		stencil:   b.stencil,
		baseAddr:  b.baseAddr,
		hzMax:     b.hzMax,
		cover:     b.cover,
		maxSince:  b.maxSince,
		clearLine: b.clearLine,
		clearZ:    b.clearZ,
		clearS:    b.clearS,
		cacheCfg:  b.cacheCfg,
		zcache:    cache.MustNew(b.cacheCfg),
		memctl:    memctl,

		Compression: b.Compression,
		FastClear:   b.FastClear,
	}
	b.shards = append(b.shards, s)
	return s
}

// Clear fast-clears the buffer: every block is tagged clear (no memory
// traffic — the clear value lives in a register) and HZ resets.
func (b *Buffer) Clear(z float32, sten uint8) {
	b.clearZ, b.clearS = z, sten
	for i := range b.depth {
		b.depth[i] = z
	}
	for i := range b.stencil {
		b.stencil[i] = sten
	}
	for i := range b.hzMax {
		b.hzMax[i] = z
		b.cover[i] = 0
		b.maxSince[i] = 0
		b.clearLine[i] = true
	}
	b.zcache.Invalidate()
	for _, s := range b.shards {
		s.clearZ, s.clearS = z, sten
		s.zcache.Invalidate()
	}
}

// ClearStencil fast-clears only the stencil plane, leaving depth and
// Hierarchical Z intact — the per-light stencil reset of the Doom3
// shadow algorithm.
func (b *Buffer) ClearStencil(s uint8) {
	b.clearS = s
	for i := range b.stencil {
		b.stencil[i] = s
	}
	for _, sh := range b.shards {
		sh.clearS = s
	}
}

// Stats returns the accumulated statistics.
func (b *Buffer) Stats() Stats { return b.stats }

// ResetStats clears statistics (buffer contents survive).
func (b *Buffer) ResetStats() {
	b.stats = Stats{}
	b.zcache.ResetStats()
}

// CacheStats exposes the z & stencil cache counters for Table XIV.
func (b *Buffer) CacheStats() cache.Stats { return b.zcache.Stats() }

// RegisterMetrics binds the stage and z-cache counters into r under the
// two prefixes.
func (b *Buffer) RegisterMetrics(r *metrics.Registry, statPrefix, cachePrefix string) {
	b.stats.Register(r, statPrefix)
	b.zcache.RegisterMetrics(r, cachePrefix)
}

// DepthAt returns the stored depth (for tests and debugging).
func (b *Buffer) DepthAt(x, y int) float32 { return b.depth[y*b.w+x] }

// StencilAt returns the stored stencil value.
func (b *Buffer) StencilAt(x, y int) uint8 { return b.stencil[y*b.w+x] }

func (b *Buffer) blockIndex(x, y int) int {
	blocksX := (b.w + hzBlockDim - 1) / hzBlockDim
	return (y/hzBlockDim)*blocksX + x/hzBlockDim
}

// HZTestQuad performs the Hierarchical Z early rejection for a quad. It
// returns false when the whole quad provably fails the depth test and
// can be discarded without touching GDDR. Only less-style comparisons
// are accelerated, like real HyperZ.
func (b *Buffer) HZTestQuad(q *rast.Quad, st *State) bool {
	if !st.HZ || !st.ZTest {
		return true
	}
	if st.ZFunc != CmpLess && st.ZFunc != CmpLEqual && st.ZFunc != CmpEqual {
		return true
	}
	// A z-fail stencil update (Doom3-style shadow volumes) must observe
	// every depth failure, so HZ cannot discard those quads — one of the
	// "z and stencil modes" the paper notes HZ is disabled for.
	if st.StencilTest && (st.Front.ZFail != OpKeep || st.Back.ZFail != OpKeep) {
		return true
	}
	bi := b.blockIndex(q.X, q.Y)
	minZ := q.Z[0]
	for i := 1; i < 4; i++ {
		if q.Z[i] < minZ {
			minZ = q.Z[i]
		}
	}
	if st.ZFunc == CmpLess {
		return minZ < b.hzMax[bi]
	}
	// LEqual passes on minZ <= max. Equal can only pass if some stored z
	// equals the quad z, which requires minZ <= max as well — so the
	// same conservative bound rejects hidden geometry in Doom3-style
	// equal-z lighting passes.
	return minZ <= b.hzMax[bi]
}

// TestQuad runs the z & stencil test for the covered fragments of a
// quad, updating the buffers, HZ and cache traffic. mask selects the
// fragments still alive; the surviving mask is returned. frontFacing
// selects the stencil operation set.
func (b *Buffer) TestQuad(q *rast.Quad, mask uint8, st *State, frontFacing bool) uint8 {
	b.stats.QuadsIn++
	b.stats.FragmentsIn += int64(popcount(mask))

	if !st.ZTest && !st.StencilTest {
		// Stage bypassed entirely: no buffer traffic.
		b.stats.QuadsOut++
		b.stats.FragmentsOut += int64(popcount(mask))
		if mask == 0xF {
			b.stats.CompleteOut++
		}
		return mask
	}

	b.touchLine(q.X, q.Y, st.ZWrite || st.StencilTest)

	ops := &st.Front
	if !frontFacing {
		ops = &st.Back
	}
	out := uint8(0)
	for lane := 0; lane < 4; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		x, y := q.PixelX(lane), q.PixelY(lane)
		idx := y*b.w + x
		pass := true

		if st.StencilTest {
			sv := b.stencil[idx]
			if !st.StencilFunc.evalU8(st.StencilRef&st.StencilMask, sv&st.StencilMask) {
				b.stencil[idx] = ops.Fail.apply(sv, st.StencilRef)
				pass = false
			} else if st.ZTest && !st.ZFunc.eval(q.Z[lane], b.depth[idx]) {
				b.stencil[idx] = ops.ZFail.apply(sv, st.StencilRef)
				pass = false
				b.stats.ZKilledFragments++
			} else {
				b.stencil[idx] = ops.ZPass.apply(sv, st.StencilRef)
			}
		} else if st.ZTest && !st.ZFunc.eval(q.Z[lane], b.depth[idx]) {
			pass = false
			b.stats.ZKilledFragments++
		}

		if pass {
			out |= 1 << lane
			if st.ZWrite {
				b.writeDepth(x, y, idx, q.Z[lane])
			}
		}
	}
	if out == 0 {
		b.stats.QuadsKilled++
		return 0
	}
	b.stats.QuadsOut++
	b.stats.FragmentsOut += int64(popcount(out))
	if out == 0xF {
		b.stats.CompleteOut++
	}
	return out
}

// RecordHZKill accounts a quad removed by HZTestQuad.
func (b *Buffer) RecordHZKill(q *rast.Quad, mask uint8) {
	b.stats.QuadsIn++
	b.stats.FragmentsIn += int64(popcount(mask))
	b.stats.QuadsKilledHZ++
}

// writeDepth updates the depth value and maintains the HZ mirror.
func (b *Buffer) writeDepth(x, y, idx int, z float32) {
	b.depth[idx] = z
	bi := b.blockIndex(x, y)
	// Coverage bit within the 8x8 block.
	cbit := uint64(1) << uint((y%hzBlockDim)*hzBlockDim+(x%hzBlockDim))
	b.cover[bi] |= cbit
	if z > b.maxSince[bi] {
		b.maxSince[bi] = z
	}
	if b.cover[bi] == ^uint64(0) {
		// Every pixel of the block has been written since clear: the
		// conservative max of all writes bounds the true block max.
		if b.maxSince[bi] < b.hzMax[bi] {
			b.hzMax[bi] = b.maxSince[bi]
		}
	}
}

// touchLine drives the z-cache for the 8x8 line containing the quad.
// Fast clear makes fills of still-clear lines free; compression halves
// fill and write-back traffic (accounted by charging half a line).
func (b *Buffer) touchLine(x, y int, write bool) {
	bi := b.blockIndex(x, y)
	addr := b.baseAddr + uint64(bi)*uint64(b.cacheCfg.LineBytes)
	before := b.zcache.Stats()
	hit := b.zcache.Access(addr, write)
	if b.memctl == nil {
		return
	}
	after := b.zcache.Stats()
	// Write-back traffic from evictions, at the 2:1 compressed rate.
	if wb := after.WritebackBytes - before.WritebackBytes; wb > 0 {
		b.memctl.Write(mem.ClientZStencil, b.compressed(wb))
	}
	if !hit {
		if b.clearLine[bi] && b.FastClear {
			// Fast clear: line materializes from the on-die clear value.
			b.clearLine[bi] = false
		} else {
			b.memctl.Read(mem.ClientZStencil,
				b.compressed(int64(b.cacheCfg.LineBytes)))
		}
		if write {
			b.clearLine[bi] = false
		}
	} else if write {
		b.clearLine[bi] = false
	}
}

// compressed applies the 2:1 z compression rate when enabled.
func (b *Buffer) compressed(n int64) int64 {
	if b.Compression {
		return n / 2
	}
	return n
}

// FlushCache writes back dirty lines at the compressed rate, modelling
// the end-of-frame flush.
func (b *Buffer) FlushCache() {
	before := b.zcache.Stats()
	b.zcache.Flush()
	if b.memctl != nil {
		wb := b.zcache.Stats().WritebackBytes - before.WritebackBytes
		b.memctl.Write(mem.ClientZStencil, b.compressed(wb))
	}
}

func popcount(m uint8) int {
	n := 0
	for i := 0; i < 4; i++ {
		if m&(1<<i) != 0 {
			n++
		}
	}
	return n
}
