package zst

import (
	"gpuchar/internal/metrics"
	"testing"

	"gpuchar/internal/mem"
	"gpuchar/internal/rast"
)

// quadAt builds a full quad at (x, y) with uniform depth z.
func quadAt(x, y int, z float32) *rast.Quad {
	return &rast.Quad{X: x, Y: y, Mask: 0xF, Z: [4]float32{z, z, z, z}}
}

func newTestBuffer() (*Buffer, *mem.Controller) {
	m := mem.NewController()
	return NewBuffer(64, 64, 0x200000, m), m
}

func TestCompareFuncs(t *testing.T) {
	cases := []struct {
		f    CompareFunc
		a, b float32
		want bool
	}{
		{CmpNever, 0, 1, false},
		{CmpAlways, 1, 0, true},
		{CmpLess, 0.5, 1, true},
		{CmpLess, 1, 0.5, false},
		{CmpLEqual, 1, 1, true},
		{CmpEqual, 1, 1, true},
		{CmpEqual, 1, 2, false},
		{CmpGreater, 2, 1, true},
		{CmpGEqual, 1, 1, true},
		{CmpNotEqual, 1, 2, true},
	}
	for _, c := range cases {
		if got := c.f.eval(c.a, c.b); got != c.want {
			t.Errorf("cmp %d (%v,%v) = %v, want %v", c.f, c.a, c.b, got, c.want)
		}
	}
}

func TestStencilOps(t *testing.T) {
	cases := []struct {
		op     StencilOp
		v, ref uint8
		want   uint8
	}{
		{OpKeep, 5, 9, 5},
		{OpZero, 5, 9, 0},
		{OpReplace, 5, 9, 9},
		{OpIncr, 5, 0, 6},
		{OpIncr, 255, 0, 255}, // saturate
		{OpDecr, 5, 0, 4},
		{OpDecr, 0, 0, 0}, // saturate
		{OpIncrWrap, 255, 0, 0},
		{OpDecrWrap, 0, 0, 255},
		{OpInvert, 0x0F, 0, 0xF0},
	}
	for _, c := range cases {
		if got := c.op.apply(c.v, c.ref); got != c.want {
			t.Errorf("op %d apply(%d,%d) = %d, want %d", c.op, c.v, c.ref, got, c.want)
		}
	}
}

func TestBasicDepthTest(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	// First quad at z=0.5 passes against the cleared 1.0.
	q := quadAt(0, 0, 0.5)
	if out := b.TestQuad(q, 0xF, &st, true); out != 0xF {
		t.Fatalf("first quad mask = %04b", out)
	}
	if b.DepthAt(0, 0) != 0.5 {
		t.Errorf("depth not written: %v", b.DepthAt(0, 0))
	}
	// Second quad behind fails completely.
	q2 := quadAt(0, 0, 0.8)
	if out := b.TestQuad(q2, 0xF, &st, true); out != 0 {
		t.Errorf("occluded quad mask = %04b", out)
	}
	// Closer quad passes.
	q3 := quadAt(0, 0, 0.3)
	if out := b.TestQuad(q3, 0xF, &st, true); out != 0xF {
		t.Errorf("closer quad mask = %04b", out)
	}
	s := b.Stats()
	if s.QuadsIn != 3 || s.QuadsOut != 2 || s.QuadsKilled != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestZWriteDisabled(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	st.ZWrite = false
	b.TestQuad(quadAt(0, 0, 0.5), 0xF, &st, true)
	if b.DepthAt(0, 0) != 1 {
		t.Errorf("depth written despite ZWrite=false: %v", b.DepthAt(0, 0))
	}
}

func TestZEqualPassAfterPrepass(t *testing.T) {
	// Doom3-style: depth prepass then shading with CmpEqual.
	b, _ := newTestBuffer()
	pre := DefaultState()
	b.TestQuad(quadAt(4, 4, 0.25), 0xF, &pre, true)
	shade := DefaultState()
	shade.ZFunc = CmpEqual
	shade.ZWrite = false
	shade.HZ = false
	if out := b.TestQuad(quadAt(4, 4, 0.25), 0xF, &shade, true); out != 0xF {
		t.Errorf("equal-z shading pass mask = %04b", out)
	}
	if out := b.TestQuad(quadAt(4, 4, 0.26), 0xF, &shade, true); out != 0 {
		t.Errorf("non-equal z mask = %04b", out)
	}
}

func TestHZKillsOccludedQuad(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	// Fill the whole 8x8 block at depth 0.2 so HZ learns the block max.
	for y := 0; y < 8; y += 2 {
		for x := 0; x < 8; x += 2 {
			b.TestQuad(quadAt(x, y, 0.2), 0xF, &st, true)
		}
	}
	// A quad behind the block must now be HZ-rejected.
	q := quadAt(2, 2, 0.9)
	if b.HZTestQuad(q, &st) {
		t.Error("HZ failed to reject occluded quad")
	}
	// A quad in front still passes HZ.
	if !b.HZTestQuad(quadAt(2, 2, 0.1), &st) {
		t.Error("HZ rejected visible quad")
	}
}

func TestHZConservativeBeforeFullCoverage(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	// Write only one quad: block not fully covered, HZ must stay at the
	// clear value and admit everything.
	b.TestQuad(quadAt(0, 0, 0.1), 0xF, &st, true)
	if !b.HZTestQuad(quadAt(4, 4, 0.99), &st) {
		t.Error("HZ rejected a quad while block still partially clear")
	}
}

func TestHZDisabledModes(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	st.ZFunc = CmpGreater
	if !b.HZTestQuad(quadAt(0, 0, 0.5), &st) {
		t.Error("HZ must not reject under greater-than depth tests")
	}
	st2 := DefaultState()
	st2.HZ = false
	if !b.HZTestQuad(quadAt(0, 0, 0.5), &st2) {
		t.Error("HZ disabled must pass")
	}
}

func TestStencilShadowVolumePattern(t *testing.T) {
	// Depth-fail ("Carmack's reverse") shadow volumes: front faces
	// decrement on z-fail, back faces increment on z-fail.
	b, _ := newTestBuffer()

	// Scene geometry at depth 0.5.
	scene := DefaultState()
	b.TestQuad(quadAt(0, 0, 0.5), 0xF, &scene, true)

	vol := DefaultState()
	vol.ZWrite = false
	vol.HZ = false
	vol.StencilTest = true
	vol.StencilFunc = CmpAlways
	vol.Front = FaceOps{OpKeep, OpDecr, OpKeep}
	vol.Back = FaceOps{OpKeep, OpIncr, OpKeep}

	// Shadow volume spanning depth: back face behind the scene z-fails
	// and increments; front face behind too -> decrements. A pixel
	// enclosed by the volume but with geometry inside gets +1 then 0...
	// here both faces are behind the scene: net 0 (not in shadow).
	b.TestQuad(quadAt(0, 0, 0.9), 0xF, &vol, false) // back face, z-fail -> +1
	if b.StencilAt(0, 0) != 1 {
		t.Fatalf("stencil after back face = %d, want 1", b.StencilAt(0, 0))
	}
	b.TestQuad(quadAt(0, 0, 0.8), 0xF, &vol, true) // front face, z-fail -> -1
	if b.StencilAt(0, 0) != 0 {
		t.Fatalf("stencil after front face = %d, want 0", b.StencilAt(0, 0))
	}
	// Volume enclosing the geometry: back face z-fails (+1), front face
	// z-passes (keep) -> stencil 1 = in shadow.
	b.TestQuad(quadAt(0, 0, 0.9), 0xF, &vol, false)
	b.TestQuad(quadAt(0, 0, 0.1), 0xF, &vol, true)
	if b.StencilAt(0, 0) != 1 {
		t.Fatalf("shadowed stencil = %d, want 1", b.StencilAt(0, 0))
	}

	// Lighting pass: stencil func Equal 0 masks shadowed pixels.
	light := DefaultState()
	light.ZFunc = CmpEqual
	light.ZWrite = false
	light.HZ = false
	light.StencilTest = true
	light.StencilFunc = CmpEqual
	light.StencilRef = 0
	light.Front = FaceOps{OpKeep, OpKeep, OpKeep}
	if out := b.TestQuad(quadAt(0, 0, 0.5), 0xF, &light, true); out != 0 {
		t.Errorf("shadowed pixels lit: mask = %04b", out)
	}
}

func TestFastClearNoTrafficOnFirstTouch(t *testing.T) {
	b, m := newTestBuffer()
	st := DefaultState()
	b.TestQuad(quadAt(0, 0, 0.5), 0xF, &st, true)
	// The first touch of a cleared line must not read memory.
	if r := m.ClientTraffic(mem.ClientZStencil).ReadBytes; r != 0 {
		t.Errorf("fast clear read traffic = %d, want 0", r)
	}
}

func TestCompressedTrafficOnRefill(t *testing.T) {
	m := mem.NewController()
	// 64x128 buffer = 128 distinct 8x8 lines, double the 64-line cache.
	b := NewBuffer(64, 128, 0x200000, m)
	st := DefaultState()
	// Touch more 8x8 lines than the 64-line cache holds so lines evict
	// (dirty -> compressed write-back) and refill (compressed read).
	for i := 0; i < 128; i++ {
		x := (i % 8) * 8
		y := (i / 8) * 8
		b.TestQuad(quadAt(x, y, 0.4), 0xF, &st, true)
	}
	// Second sweep revisits evicted lines: compressed refills.
	for i := 0; i < 128; i++ {
		x := (i % 8) * 8
		y := (i / 8) * 8
		b.TestQuad(quadAt(x, y, 0.3), 0xF, &st, true)
	}
	tr := m.ClientTraffic(mem.ClientZStencil)
	if tr.ReadBytes == 0 || tr.WriteBytes == 0 {
		t.Fatalf("traffic = %+v, want both read and write", tr)
	}
	// All traffic is at the 2:1 compressed rate: multiples of 128.
	if tr.ReadBytes%128 != 0 || tr.WriteBytes%128 != 0 {
		t.Errorf("traffic not compressed-sized: %+v", tr)
	}
}

func TestBypassWhenDisabled(t *testing.T) {
	b, m := newTestBuffer()
	st := State{} // everything off
	out := b.TestQuad(quadAt(0, 0, 0.5), 0xF, &st, true)
	if out != 0xF {
		t.Errorf("bypass mask = %04b", out)
	}
	if m.Total().Total() != 0 {
		t.Error("bypass generated traffic")
	}
	s := b.Stats()
	if s.QuadsIn != 1 || s.QuadsOut != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPartialQuadMask(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	q := quadAt(0, 0, 0.5)
	out := b.TestQuad(q, 0b0011, &st, true)
	if out != 0b0011 {
		t.Errorf("mask = %04b", out)
	}
	// Only the tested fragments were written.
	if b.DepthAt(0, 1) != 1 {
		t.Error("untested fragment written")
	}
	s := b.Stats()
	if s.FragmentsIn != 2 || s.FragmentsOut != 2 || s.CompleteOut != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRecordHZKill(t *testing.T) {
	b, _ := newTestBuffer()
	b.RecordHZKill(quadAt(0, 0, 0.5), 0xF)
	s := b.Stats()
	if s.QuadsIn != 1 || s.QuadsKilledHZ != 1 || s.FragmentsIn != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestClearResetsState(t *testing.T) {
	b, _ := newTestBuffer()
	st := DefaultState()
	b.TestQuad(quadAt(0, 0, 0.2), 0xF, &st, true)
	b.Clear(1, 0)
	if b.DepthAt(0, 0) != 1 || b.StencilAt(0, 0) != 0 {
		t.Error("clear did not reset values")
	}
	// After clear, behind-everything quads pass again.
	if out := b.TestQuad(quadAt(0, 0, 0.99), 0xF, &st, true); out != 0xF {
		t.Errorf("post-clear mask = %04b", out)
	}
}

func TestFlushCacheWritesBackCompressed(t *testing.T) {
	b, m := newTestBuffer()
	st := DefaultState()
	b.TestQuad(quadAt(0, 0, 0.5), 0xF, &st, true)
	before := m.ClientTraffic(mem.ClientZStencil).WriteBytes
	b.FlushCache()
	after := m.ClientTraffic(mem.ClientZStencil).WriteBytes
	if after-before != 128 { // one dirty 256B line at 2:1
		t.Errorf("flush wrote %d bytes, want 128", after-before)
	}
}

func TestStatsRegister(t *testing.T) {
	a := Stats{QuadsIn: 1, QuadsKilledHZ: 2, QuadsKilled: 3, QuadsOut: 4,
		CompleteOut: 5, FragmentsIn: 6, FragmentsOut: 7, ZKilledFragments: 8}
	r := metrics.NewRegistry()
	a.Register(r, "zst")
	s := r.Snapshot()
	s.Merge(s)
	if r.Load(s) != 0 {
		t.Fatal("snapshot did not round-trip through the registry")
	}
	if a.QuadsIn != 2 || a.ZKilledFragments != 16 {
		t.Errorf("merged stats = %+v", a)
	}
}
