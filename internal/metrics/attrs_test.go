package metrics

import (
	"reflect"
	"testing"
)

// attrsFixture builds a snapshot with nested counters, a zero counter,
// a float gauge and a prefix-collision name ("zstx" vs "zst").
func attrsFixture() Snapshot {
	reg := NewRegistry()
	var (
		zst   int64 = 7
		hz    int64 = 11
		zero  int64
		zstx  int64 = 13
		ratio       = 0.25
	)
	reg.Bind("zst", &zst)
	reg.Bind("zst/hz_killed_quads", &hz)
	reg.Bind("zst/idle", &zero)
	reg.Bind("zstx/other", &zstx)
	reg.BindFloat("frag/alu_per_tex", &ratio)
	return reg.Snapshot()
}

func TestAttrsDropsZerosAndKeepsTypes(t *testing.T) {
	got := attrsFixture().Attrs()
	want := map[string]any{
		"zst":                 int64(7),
		"zst/hz_killed_quads": int64(11),
		"zstx/other":          int64(13),
		"frag/alu_per_tex":    0.25,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Attrs() = %#v, want %#v", got, want)
	}
	if _, ok := got["zst/idle"]; ok {
		t.Error("zero counter survived into attrs")
	}
	if _, ok := got["zst"].(int64); !ok {
		t.Errorf("integer counter rendered as %T, want int64", got["zst"])
	}
	if _, ok := got["frag/alu_per_tex"].(float64); !ok {
		t.Errorf("float counter rendered as %T, want float64", got["frag/alu_per_tex"])
	}
}

// TestAttrsUnderPrefixBoundary pins the prefix semantics the stage
// spans rely on: a prefix matches itself and its "/"-nested children,
// never a sibling that merely shares leading characters.
func TestAttrsUnderPrefixBoundary(t *testing.T) {
	s := attrsFixture()
	got := s.AttrsUnder("zst")
	want := map[string]any{
		"zst":                 int64(7),
		"zst/hz_killed_quads": int64(11),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf(`AttrsUnder("zst") = %#v, want %#v`, got, want)
	}

	if got := s.AttrsUnder("frag", "zstx"); len(got) != 2 {
		t.Errorf(`AttrsUnder("frag", "zstx") = %#v, want 2 entries`, got)
	}
	if got := s.AttrsUnder("nope"); len(got) != 0 {
		t.Errorf(`AttrsUnder("nope") = %#v, want empty`, got)
	}
	// No prefixes = unrestricted, identical to Attrs.
	if got := s.AttrsUnder(); !reflect.DeepEqual(got, s.Attrs()) {
		t.Errorf("AttrsUnder() = %#v, want Attrs()", got)
	}
}

// TestAttrsPartition checks that disjoint prefix sets split a snapshot
// without overlap or loss — the invariant behind the per-stage spans
// summing to the frame span.
func TestAttrsPartition(t *testing.T) {
	s := attrsFixture()
	parts := [][]string{{"zst"}, {"zstx"}, {"frag"}}
	union := map[string]any{}
	for _, p := range parts {
		for k, v := range s.AttrsUnder(p...) {
			if _, dup := union[k]; dup {
				t.Errorf("counter %s matched two prefix sets", k)
			}
			union[k] = v
		}
	}
	if !reflect.DeepEqual(union, s.Attrs()) {
		t.Errorf("partition union = %#v, want %#v", union, s.Attrs())
	}
}
