package metrics

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// sample builds a labeled two-counter snapshot for the export tests.
func sample(t *testing.T) Snapshot {
	t.Helper()
	var hits, misses int64 = 42, 8
	var w float64 = 1.5
	r := NewRegistry()
	r.Bind("cache/z/hits", &hits)
	r.Bind("cache/z/misses", &misses)
	r.BindFloat("api/weight_vertices", &w)
	return r.Snapshot().WithLabels("demo", "Doom3/trdemo2", "frame", "1")
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Snapshot{sample(t)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    string `json:"schema"`
		Snapshots []struct {
			Labels   map[string]string  `json:"labels"`
			Counters map[string]int64   `json:"counters"`
			Gauges   map[string]float64 `json:"gauges"`
		} `json:"snapshots"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Schema != SchemaID {
		t.Errorf("schema = %q, want %q", doc.Schema, SchemaID)
	}
	s := doc.Snapshots[0]
	if s.Labels["demo"] != "Doom3/trdemo2" || s.Counters["cache/z/hits"] != 42 {
		t.Errorf("bad snapshot: %+v", s)
	}
	if s.Gauges["api/weight_vertices"] != 1.5 {
		t.Errorf("gauge = %v", s.Gauges)
	}
	if _, isCounter := s.Counters["api/weight_vertices"]; isCounter {
		t.Errorf("float counter leaked into integer counters")
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	snap := sample(t)
	if err := WriteJSON(&a, []Snapshot{snap}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, []Snapshot{snap}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("JSON export not deterministic")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Snapshot{sample(t)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header+1 row, got %d lines:\n%s", len(lines), buf.String())
	}
	wantHeader := "demo,frame,api/weight_vertices,cache/z/hits,cache/z/misses"
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	if lines[1] != "Doom3/trdemo2,1,1.5,42,8" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteCSVMissingCellsEmpty(t *testing.T) {
	var only int64 = 5
	r := NewRegistry()
	r.Bind("cache/z/hits", &only)
	narrow := r.Snapshot().WithLabels("demo", "x")
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Snapshot{sample(t), narrow}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// narrow has no frame label, no weight, no misses: empty cells, not
	// zeros.
	if lines[2] != "x,,,5," {
		t.Errorf("narrow row = %q, want %q", lines[2], "x,,,5,")
	}
}

func TestWriteProm(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, "gpuchar", []Snapshot{sample(t)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `gpuchar_cache_z_hits{demo="Doom3/trdemo2",frame="1"} 42`
	if !strings.Contains(out, want) {
		t.Errorf("prom output missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "gpuchar_api_weight_vertices{") {
		t.Errorf("prom output missing gauge:\n%s", out)
	}
}

func TestPromEscape(t *testing.T) {
	var v int64 = 1
	r := NewRegistry()
	r.Bind("n", &v)
	s := r.Snapshot().WithLabels("demo", `a"b\c`+"\n")
	var buf bytes.Buffer
	if err := WriteProm(&buf, "", []Snapshot{s}); err != nil {
		t.Fatal(err)
	}
	want := `n{demo="a\"b\\c\n"} 1`
	if got := strings.TrimSpace(buf.String()); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestJSONRoundTrip pins the decode path the serve checkpoints rely on:
// WriteJSON then ReadJSON reproduces the snapshots exactly, including a
// second encode being byte-identical to the first.
func TestJSONRoundTrip(t *testing.T) {
	orig := []Snapshot{
		sample(t),
		sample(t).WithLabels("frame", "2"),
	}
	var a bytes.Buffer
	if err := WriteJSON(&a, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("got %d snapshots, want %d", len(back), len(orig))
	}
	for i, s := range back {
		if s.Len() != orig[i].Len() {
			t.Errorf("snapshot %d: %d counters, want %d", i, s.Len(), orig[i].Len())
		}
		if v, ok := s.Get("cache/z/hits"); !ok || v != 42 {
			t.Errorf("snapshot %d: hits = %d, %v", i, v, ok)
		}
		if v, ok := s.GetFloat("api/weight_vertices"); !ok || v != 1.5 {
			t.Errorf("snapshot %d: gauge = %v, %v", i, v, ok)
		}
	}
	if back[1].Label("frame") != "2" {
		t.Errorf("labels lost: %v", back[1].Labels())
	}
	var b bytes.Buffer
	if err := WriteJSON(&b, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("re-encoded document differs from original")
	}
}

// TestJSONRoundTripFloatExact checks that awkward float values survive
// the encode/decode cycle bit-exactly (encoding/json uses the shortest
// representation that round-trips).
func TestJSONRoundTripFloatExact(t *testing.T) {
	vals := []float64{1.0 / 3.0, 0.1, 123456789.123456789, 2.2250738585072014e-308}
	r := NewRegistry()
	stored := make([]float64, len(vals))
	copy(stored, vals)
	for i := range stored {
		r.BindFloat("api/v"+strconv.Itoa(i), &stored[i])
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Snapshot{r.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if got, ok := back[0].GetFloat("api/v" + strconv.Itoa(i)); !ok || got != want {
			t.Errorf("v%d = %v, want %v", i, got, want)
		}
	}
}

// TestReadJSONRejects pins the failure modes: wrong schema tag, invalid
// counter names, and a name claimed by both kinds.
func TestReadJSONRejects(t *testing.T) {
	cases := map[string]string{
		"wrong schema": `{"schema":"other/v9","snapshots":[]}`,
		"bad name":     `{"schema":"gpuchar/metrics/v1","snapshots":[{"counters":{"BAD NAME":1}}]}`,
		"dual kind":    `{"schema":"gpuchar/metrics/v1","snapshots":[{"counters":{"api/x":1},"gauges":{"api/x":2}}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadJSON accepted %s", name, doc)
		}
	}
}
