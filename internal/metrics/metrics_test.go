package metrics

import (
	"reflect"
	"testing"
)

func TestValidName(t *testing.T) {
	good := []string{"geom", "geom/indices", "mem/texture/read_bytes", "a_1/b2"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	bad := []string{"", "/geom", "geom/", "geom//x", "Geom", "geom-x", "geom indices"}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestNamespace(t *testing.T) {
	if ns := Namespace("mem/texture/read_bytes"); ns != "mem" {
		t.Errorf("Namespace = %q, want mem", ns)
	}
	if ns := Namespace("geom"); ns != "geom" {
		t.Errorf("Namespace = %q, want geom", ns)
	}
}

func TestBindPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	var v int64
	r := NewRegistry()
	r.Bind("a/b", &v)
	mustPanic("duplicate", func() { r.Bind("a/b", &v) })
	mustPanic("invalid", func() { r.Bind("A/b", &v) })
}

func TestSnapshotReflectsLiveFields(t *testing.T) {
	var hits, misses int64
	var weight float64
	r := NewRegistry()
	r.Bind("cache/hits", &hits)
	r.Bind("cache/misses", &misses)
	r.BindFloat("api/weight", &weight)

	hits, misses, weight = 3, 1, 2.5
	s := r.Snapshot()
	if v, ok := s.Get("cache/hits"); !ok || v != 3 {
		t.Errorf("hits = %d,%v want 3,true", v, ok)
	}
	if v, ok := s.GetFloat("api/weight"); !ok || v != 2.5 {
		t.Errorf("weight = %g,%v want 2.5,true", v, ok)
	}
	// The snapshot is a copy: later increments don't alter it.
	hits = 100
	if v, _ := s.Get("cache/hits"); v != 3 {
		t.Errorf("snapshot mutated by live increment: %d", v)
	}
	// Names come out sorted regardless of registration order.
	want := []string{"api/weight", "cache/hits", "cache/misses"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
}

func TestDiffMergeRoundTrip(t *testing.T) {
	var a, b int64
	var f float64
	r := NewRegistry()
	r.Bind("x/a", &a)
	r.Bind("x/b", &b)
	r.BindFloat("x/f", &f)

	a, b, f = 10, 20, 1.5
	before := r.Snapshot()
	a, b, f = 17, 21, 4.0
	now := r.Snapshot()

	d := now.Diff(before)
	if v, _ := d.Get("x/a"); v != 7 {
		t.Errorf("diff a = %d, want 7", v)
	}
	if v, _ := d.Get("x/b"); v != 1 {
		t.Errorf("diff b = %d, want 1", v)
	}
	if v, _ := d.GetFloat("x/f"); v != 2.5 {
		t.Errorf("diff f = %g, want 2.5", v)
	}

	// before + diff == now.
	sum := before
	sum.Merge(d)
	for _, c := range now.Counters() {
		got, _ := sum.GetFloat(c.Name)
		if got != c.Value() {
			t.Errorf("merge %s = %g, want %g", c.Name, got, c.Value())
		}
	}
}

func TestMergeDisjointShapes(t *testing.T) {
	// A serial snapshot with geometry counters merges with a worker
	// shard that never bound them: one-sided counters pass through.
	var g, z1, z2 int64
	serial := NewRegistry()
	serial.Bind("geom/indices", &g)
	serial.Bind("zst/quads_in", &z1)
	shard := NewRegistry()
	shard.Bind("zst/quads_in", &z2)

	g, z1, z2 = 5, 10, 32
	s := serial.Snapshot()
	s.Merge(shard.Snapshot())
	if v, _ := s.Get("geom/indices"); v != 5 {
		t.Errorf("one-sided geom = %d, want 5", v)
	}
	if v, _ := s.Get("zst/quads_in"); v != 42 {
		t.Errorf("merged zst = %d, want 42", v)
	}

	// Subtraction with a counter only on the right negates it.
	d := serial.Snapshot().Diff(s)
	if v, _ := d.Get("zst/quads_in"); v != -32 {
		t.Errorf("diff zst = %d, want -32", v)
	}
}

func TestSum(t *testing.T) {
	var a1, a2, a3 int64
	mk := func(p *int64) Snapshot {
		r := NewRegistry()
		r.Bind("n", p)
		return r.Snapshot()
	}
	a1, a2, a3 = 1, 2, 3
	s := Sum(mk(&a1), mk(&a2), mk(&a3))
	if v, _ := s.Get("n"); v != 6 {
		t.Errorf("Sum = %d, want 6", v)
	}
	if Sum().Len() != 0 {
		t.Errorf("empty Sum should be empty")
	}
}

func TestLoad(t *testing.T) {
	var src1, src2 int64
	var srcF float64
	src := NewRegistry()
	src.Bind("a/x", &src1)
	src.Bind("a/y", &src2)
	src.BindFloat("a/w", &srcF)
	src1, src2, srcF = 7, 9, 0.25
	snap := src.Snapshot()

	var d1, d2, stale int64
	var dF float64
	dst := NewRegistry()
	dst.Bind("a/x", &d1)
	dst.Bind("a/y", &d2)
	dst.Bind("a/z", &stale) // bound but absent from snapshot: zeroed
	dst.BindFloat("a/w", &dF)
	stale = 99
	if unmatched := dst.Load(snap); unmatched != 0 {
		t.Errorf("unmatched = %d, want 0", unmatched)
	}
	if d1 != 7 || d2 != 9 || dF != 0.25 || stale != 0 {
		t.Errorf("Load: got %d %d %g %d, want 7 9 0.25 0", d1, d2, dF, stale)
	}

	// A snapshot entry with no bound counter is reported.
	narrow := NewRegistry()
	var only int64
	narrow.Bind("a/x", &only)
	if unmatched := narrow.Load(snap); unmatched != 2 {
		t.Errorf("unmatched = %d, want 2", unmatched)
	}
}

func TestLabels(t *testing.T) {
	var v int64 = 1
	r := NewRegistry()
	r.Bind("n", &v)
	s := r.Snapshot().WithLabels("demo", "Doom3/trdemo2", "frame", "1")
	if s.Label("demo") != "Doom3/trdemo2" || s.Label("frame") != "1" {
		t.Errorf("labels = %v", s.Labels())
	}
	// WithLabels copies: extending one snapshot's labels leaves the
	// original untouched.
	s2 := s.WithLabels("shard", "0")
	if s.Label("shard") != "" || s2.Label("shard") != "0" {
		t.Errorf("label aliasing: %v vs %v", s.Labels(), s2.Labels())
	}
	// Labels survive Diff and are ignored by arithmetic.
	d := s2.Diff(s)
	if d.Label("shard") != "0" {
		t.Errorf("diff dropped labels: %v", d.Labels())
	}
}
