// Span-attribute rendering: the bridge between counter snapshots and
// the observability tracer. A frame's snapshot diff becomes the
// attribute map attached to that frame's span, so a Perfetto trace
// carries the same numbers the tables are computed from; summing the
// frame spans' attributes reproduces the run's final snapshot exactly
// (pinned by the gpu package's trace tests).
package metrics

import "strings"

// Attrs renders the snapshot as span attributes: one entry per
// non-zero counter, keyed by counter name, integer counters as int64
// and float-valued ones as float64. Zero counters are dropped to keep
// traces compact — absence means "no activity", matching the CSV
// exporter's empty-cell convention. Labels are not included.
func (s Snapshot) Attrs() map[string]any {
	return s.AttrsUnder()
}

// AttrsUnder is Attrs restricted to counters whose name equals one of
// the given prefixes or lives under it ("zst" matches "zst" and
// "zst/hz_killed_quads" but not "zstx/..."). No prefixes means no
// restriction. The per-stage pipeline spans use this to carry exactly
// their own stage's counter deltas.
func (s Snapshot) AttrsUnder(prefixes ...string) map[string]any {
	out := map[string]any{}
	for _, c := range s.counters {
		if len(prefixes) > 0 && !underAny(c.Name, prefixes) {
			continue
		}
		switch {
		case c.IsFloat && c.Float != 0:
			out[c.Name] = c.Float
		case !c.IsFloat && c.Int != 0:
			out[c.Name] = c.Int
		}
	}
	return out
}

// underAny reports whether name is one of the prefixes or nested under
// one of them.
func underAny(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if name == p || strings.HasPrefix(name, p+"/") {
			return true
		}
	}
	return false
}
