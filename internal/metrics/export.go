// Machine-readable export backends for counter snapshots: a JSON
// document (the `characterize -json` format), CSV (one row per
// snapshot), and a Prometheus-style text dump (`attilasim -metrics`).
// All three render counters in sorted name order and snapshots in the
// order given, so output is deterministic for deterministic input.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaID identifies the JSON export format; schema validators key off
// it before trusting the rest of the document.
const SchemaID = "gpuchar/metrics/v1"

// MarshalJSON renders a snapshot as
// {"labels":{...},"counters":{...},"gauges":{...}} with sorted keys
// (encoding/json sorts map keys). Integer counters stay integers;
// float-valued ones go under "gauges" so consumers need no kind field.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	counters := make(map[string]int64)
	gauges := make(map[string]float64)
	for _, c := range s.counters {
		if c.IsFloat {
			gauges[c.Name] = c.Float
		} else {
			counters[c.Name] = c.Int
		}
	}
	doc := struct {
		Labels   map[string]string  `json:"labels,omitempty"`
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges,omitempty"`
	}{Labels: s.labels, Counters: counters}
	if len(gauges) > 0 {
		doc.Gauges = gauges
	}
	return json.Marshal(doc)
}

// jsonDoc is the top-level `characterize -json` document.
type jsonDoc struct {
	Schema    string     `json:"schema"`
	Snapshots []Snapshot `json:"snapshots"`
}

// WriteJSON writes snapshots as one indented JSON document tagged with
// SchemaID.
func WriteJSON(w io.Writer, snaps []Snapshot) error {
	buf, err := json.MarshalIndent(jsonDoc{Schema: SchemaID, Snapshots: snaps}, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// UnmarshalJSON is the inverse of MarshalJSON: it reads the
// {"labels":...,"counters":...,"gauges":...} form back into a snapshot.
// The round trip is lossless — counter values are int64, gauges use
// encoding/json's shortest-round-trip float formatting — which is what
// lets the serve layer's checkpoints and cached results rebuild the
// exact FrameStats a run produced.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	var doc struct {
		Labels   map[string]string  `json:"labels"`
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	counters := make([]Counter, 0, len(doc.Counters)+len(doc.Gauges))
	for name, v := range doc.Counters {
		if !ValidName(name) {
			return fmt.Errorf("metrics: invalid counter name %q", name)
		}
		counters = append(counters, Counter{Name: name, Int: v})
	}
	for name, v := range doc.Gauges {
		if !ValidName(name) {
			return fmt.Errorf("metrics: invalid gauge name %q", name)
		}
		if _, dup := doc.Counters[name]; dup {
			return fmt.Errorf("metrics: %q is both counter and gauge", name)
		}
		counters = append(counters, Counter{Name: name, Float: v, IsFloat: true})
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	s.counters = counters
	s.labels = doc.Labels
	return nil
}

// ReadJSON parses a WriteJSON document, rejecting payloads whose schema
// tag is not SchemaID.
func ReadJSON(r io.Reader) ([]Snapshot, error) {
	var doc jsonDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metrics: decode: %w", err)
	}
	if doc.Schema != SchemaID {
		return nil, fmt.Errorf("metrics: schema %q, want %q", doc.Schema, SchemaID)
	}
	return doc.Snapshots, nil
}

// labelKeys returns the sorted union of label keys across snapshots.
func labelKeys(snaps []Snapshot) []string {
	set := map[string]bool{}
	for _, s := range snaps {
		for k := range s.labels {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// counterNames returns the sorted union of counter names across
// snapshots.
func counterNames(snaps []Snapshot) []string {
	set := map[string]bool{}
	for _, s := range snaps {
		for _, c := range s.counters {
			set[c.Name] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteCSV writes snapshots as CSV: label columns first (sorted key
// union), then one column per counter (sorted name union). Snapshots
// missing a counter leave the cell empty, distinguishing "not measured"
// from a true zero.
func WriteCSV(w io.Writer, snaps []Snapshot) error {
	keys := labelKeys(snaps)
	names := counterNames(snaps)
	cw := csv.NewWriter(w)
	header := append(append([]string{}, keys...), names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, s := range snaps {
		row = row[:0]
		for _, k := range keys {
			row = append(row, s.labels[k])
		}
		for _, n := range names {
			c, ok := s.get(n)
			switch {
			case !ok:
				row = append(row, "")
			case c.IsFloat:
				row = append(row, strconv.FormatFloat(c.Float, 'g', -1, 64))
			default:
				row = append(row, strconv.FormatInt(c.Int, 10))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// promName mangles a hierarchical counter name into a Prometheus metric
// name: namespace prefix plus the path with slashes as underscores.
func promName(namespace, name string) string {
	mangled := strings.ReplaceAll(name, "/", "_")
	if namespace == "" {
		return mangled
	}
	return namespace + "_" + mangled
}

// promEscape escapes a label value per the Prometheus text format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders a sorted {k="v",...} block, or "" when unlabeled.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, promEscape(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes snapshots in the Prometheus text exposition format,
// one line per counter, metric names prefixed with namespace (typically
// "gpuchar") and labels carried through:
//
//	gpuchar_zst_hz_killed_quads{demo="Doom3/trdemo2",frame="1"} 8713
func WriteProm(w io.Writer, namespace string, snaps []Snapshot) error {
	for _, s := range snaps {
		lbl := promLabels(s.labels)
		for _, c := range s.counters {
			var err error
			if c.IsFloat {
				_, err = fmt.Fprintf(w, "%s%s %s\n", promName(namespace, c.Name), lbl,
					strconv.FormatFloat(c.Float, 'g', -1, 64))
			} else {
				_, err = fmt.Fprintf(w, "%s%s %d\n", promName(namespace, c.Name), lbl, c.Int)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}
