// Package metrics is the unified counter model shared by every pipeline
// stage: a registry of hierarchically named counters bound by pointer to
// the plain int64 (or float64) fields the stages increment on their hot
// paths, point-in-time snapshots of those counters, and the snapshot
// arithmetic — Diff for frame boundaries, Merge for tile-worker shards —
// that previously existed as reflection walkers and hand-written
// per-stage Add methods.
//
// The model is deliberately two-phase. Registration happens once, at
// construction time, and is the only place names are parsed or maps are
// touched; after that a stage increments its own struct fields directly,
// so the registry adds zero per-increment overhead. Reading happens at
// frame boundaries (or export time) through Snapshot, which copies every
// bound value into an immutable, name-sorted view.
//
// Counter names are slash-separated hierarchies of lowercase
// [a-z0-9_] segments ("zst/hz_killed_quads", "mem/texture/read_bytes");
// the first segment is the counter's export namespace. Snapshots carry
// optional string labels (demo, frame, shard, ...) that the exporters in
// export.go render but the arithmetic ignores.
package metrics

import (
	"fmt"
	"sort"
)

// ValidName reports whether name is a well-formed counter name:
// slash-separated, non-empty segments of lowercase letters, digits and
// underscores, not starting or ending with a slash.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	segStart := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '/':
			if segStart {
				return false // empty segment
			}
			segStart = true
		case (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_':
			segStart = false
		default:
			return false
		}
	}
	return !segStart
}

// Namespace returns the first segment of a counter name — the export
// namespace the exhaustiveness tests partition counters by.
func Namespace(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '/' {
			return name[:i]
		}
	}
	return name
}

// binding couples a counter name with the live field it reads.
type binding struct {
	name string
	ip   *int64
	fp   *float64 // exactly one of ip/fp is non-nil
}

// Registry binds named counters to the fields that back them. All
// registration must happen before the first Snapshot; Bind and BindFloat
// panic on invalid or duplicate names, which is a construction-time
// programming error (like expvar.Publish or prometheus.MustRegister),
// not a runtime condition.
type Registry struct {
	bindings []binding
	byName   map[string]int
	sorted   bool // bindings currently in name order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

func (r *Registry) add(name string, ip *int64, fp *float64) {
	if !ValidName(name) {
		panic(fmt.Sprintf("metrics: invalid counter name %q", name))
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate counter %q", name))
	}
	r.byName[name] = len(r.bindings)
	r.bindings = append(r.bindings, binding{name: name, ip: ip, fp: fp})
	r.sorted = false
}

// Bind registers an int64 counter under name. The registry reads *c at
// snapshot time and writes it in Load; the owner keeps incrementing the
// field directly.
func (r *Registry) Bind(name string, c *int64) { r.add(name, c, nil) }

// BindFloat registers a float64-valued counter (a weighted sum such as
// the API layer's instruction-weight accumulators). It participates in
// Snapshot, Diff, Merge and Load exactly like an integer counter.
func (r *Registry) BindFloat(name string, c *float64) { r.add(name, nil, c) }

// Len returns the number of bound counters.
func (r *Registry) Len() int { return len(r.bindings) }

// ensureSorted orders bindings by name once; byName is rebuilt to match.
func (r *Registry) ensureSorted() {
	if r.sorted {
		return
	}
	sort.Slice(r.bindings, func(i, j int) bool {
		return r.bindings[i].name < r.bindings[j].name
	})
	for i, b := range r.bindings {
		r.byName[b.name] = i
	}
	r.sorted = true
}

// Names returns the bound counter names in sorted order.
func (r *Registry) Names() []string {
	r.ensureSorted()
	out := make([]string, len(r.bindings))
	for i, b := range r.bindings {
		out[i] = b.name
	}
	return out
}

// Snapshot copies every bound counter into an immutable view. Names come
// out sorted, so snapshots of registries that bound the same counters —
// a tile-worker shard and its serial counterpart, say — line up
// element-for-element regardless of registration order.
func (r *Registry) Snapshot() Snapshot {
	r.ensureSorted()
	s := Snapshot{counters: make([]Counter, len(r.bindings))}
	for i, b := range r.bindings {
		c := Counter{Name: b.name}
		if b.ip != nil {
			c.Int = *b.ip
		} else {
			c.Float = *b.fp
			c.IsFloat = true
		}
		s.counters[i] = c
	}
	return s
}

// Load writes a snapshot's values back into the bound counters: the
// inverse of Snapshot, used to materialize a merged or diffed snapshot
// as a plain stats struct. Counters bound but absent from the snapshot
// are zeroed; snapshot entries with no bound counter are counted in the
// return value (zero whenever both sides describe the same stage set —
// the invariant the gpu package's exhaustiveness test pins).
func (r *Registry) Load(s Snapshot) (unmatched int) {
	r.ensureSorted()
	matched := 0
	for _, b := range r.bindings {
		c, ok := s.get(b.name)
		if ok {
			matched++
		}
		switch {
		case b.ip != nil && ok:
			*b.ip = c.Int
		case b.ip != nil:
			*b.ip = 0
		case ok:
			*b.fp = c.Float
		default:
			*b.fp = 0
		}
	}
	return len(s.counters) - matched
}

// Counter is one named value in a snapshot. Integer counters carry Int;
// float-valued ones set IsFloat and carry Float.
type Counter struct {
	Name    string
	Int     int64
	Float   float64
	IsFloat bool
}

// Value returns the counter as a float64 regardless of kind.
func (c Counter) Value() float64 {
	if c.IsFloat {
		return c.Float
	}
	return float64(c.Int)
}

// Snapshot is an immutable, name-sorted set of counter values plus
// optional labels. The zero value is an empty snapshot.
type Snapshot struct {
	counters []Counter
	labels   map[string]string
}

// Len returns the number of counters in the snapshot.
func (s Snapshot) Len() int { return len(s.counters) }

// Counters returns the counters in name order. The slice is shared; do
// not modify it.
func (s Snapshot) Counters() []Counter { return s.counters }

// get finds a counter by name via binary search.
func (s Snapshot) get(name string) (Counter, bool) {
	i := sort.Search(len(s.counters), func(i int) bool {
		return s.counters[i].Name >= name
	})
	if i < len(s.counters) && s.counters[i].Name == name {
		return s.counters[i], true
	}
	return Counter{}, false
}

// Get returns the integer value of a counter, and whether it exists.
func (s Snapshot) Get(name string) (int64, bool) {
	c, ok := s.get(name)
	return c.Int, ok
}

// GetFloat returns a counter's value as float64, and whether it exists.
func (s Snapshot) GetFloat(name string) (float64, bool) {
	c, ok := s.get(name)
	return c.Value(), ok
}

// Labels returns the snapshot's labels (nil when unlabeled). The map is
// shared; treat it as read-only.
func (s Snapshot) Labels() map[string]string { return s.labels }

// Label returns one label value, or "".
func (s Snapshot) Label(key string) string { return s.labels[key] }

// WithLabels returns a copy of the snapshot with the given key/value
// pairs added (values share the counter storage). Odd trailing arguments
// are ignored.
func (s Snapshot) WithLabels(kv ...string) Snapshot {
	out := s
	out.labels = make(map[string]string, len(s.labels)+len(kv)/2)
	for k, v := range s.labels {
		out.labels[k] = v
	}
	for i := 0; i+1 < len(kv); i += 2 {
		out.labels[kv[i]] = kv[i+1]
	}
	return out
}

// combine merge-joins two sorted counter sets with op applied to values
// present on both sides; one-sided counters pass through with op applied
// against zero. It is total: shape mismatches widen the result instead
// of failing, so a serial-only counter (geometry, vertex cache) merges
// cleanly with a worker shard that never bound it.
func combine(a, b []Counter, op func(x, y float64) float64,
	iop func(x, y int64) int64) []Counter {

	out := make([]Counter, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name == b[j].Name:
			c := a[i]
			if c.IsFloat || b[j].IsFloat {
				c.IsFloat = true
				c.Float = op(a[i].Value(), b[j].Value())
				c.Int = 0
			} else {
				c.Int = iop(a[i].Int, b[j].Int)
			}
			out = append(out, c)
			i++
			j++
		case a[i].Name < b[j].Name:
			out = append(out, apply1(a[i], op, iop, false))
			i++
		default:
			out = append(out, apply1(b[j], op, iop, true))
			j++
		}
	}
	for ; i < len(a); i++ {
		out = append(out, apply1(a[i], op, iop, false))
	}
	for ; j < len(b); j++ {
		out = append(out, apply1(b[j], op, iop, true))
	}
	return out
}

// apply1 applies op to a one-sided counter, with the counter on the
// right side when rhs is set (so subtraction negates correctly).
func apply1(c Counter, op func(x, y float64) float64,
	iop func(x, y int64) int64, rhs bool) Counter {

	if c.IsFloat {
		if rhs {
			c.Float = op(0, c.Float)
		} else {
			c.Float = op(c.Float, 0)
		}
		return c
	}
	if rhs {
		c.Int = iop(0, c.Int)
	} else {
		c.Int = iop(c.Int, 0)
	}
	return c
}

// Diff returns s - before, the frame's activity between two cumulative
// snapshots. Labels are taken from s.
func (s Snapshot) Diff(before Snapshot) Snapshot {
	return Snapshot{
		labels: s.labels,
		counters: combine(s.counters, before.counters,
			func(x, y float64) float64 { return x - y },
			func(x, y int64) int64 { return x - y }),
	}
}

// Merge adds o's counters into s — the generic replacement for every
// per-stage shard-merge Add method. Counters present on only one side
// pass through unchanged, so merging a tile-worker shard (which has no
// geometry counters) into the serial snapshot is well-defined. Labels
// of s are kept.
func (s *Snapshot) Merge(o Snapshot) {
	s.counters = combine(s.counters, o.counters,
		func(x, y float64) float64 { return x + y },
		func(x, y int64) int64 { return x + y })
}

// Sum returns the merge of all snapshots (an empty snapshot when none).
func Sum(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out.Merge(s)
	}
	return out
}
