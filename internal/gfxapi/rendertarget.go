package gfxapi

import (
	"fmt"

	"gpuchar/internal/texture"
)

// RenderTarget is an off-screen color + depth surface a device can
// redirect draws into and later resolve into a sampleable texture — the
// render-to-texture primitive behind deferred shading, shadow maps and
// post-processed particle passes. The paper's 2006 corpus never leaves
// the backbuffer; these targets are what opens the multi-pass workload
// families.
type RenderTarget struct {
	// Name labels the pass in per-pass metrics ("gbuffer", "shadow0").
	Name string
	// W, H are the surface dimensions. Both must be powers of two so the
	// resolve texture keeps the standard mip chain layout.
	W, H int
	// BaseAddr and ZBaseAddr are the GPU virtual addresses of the color
	// and depth/stencil planes, allocated by the device like any other
	// resource so render-target traffic is addressable in the caches.
	BaseAddr  uint64
	ZBaseAddr uint64
	// Tex is the resolve texture. ResolveToTexture re-encodes the
	// surface's pixels into it in place, so the handle (and its GPU
	// address) stays stable across frames — which is what makes traces
	// and kill/restart resumes byte-identical.
	Tex *texture.Texture
}

// MultipassBackend is the optional Backend capability for
// render-to-texture. The GPU simulator implements it; NullBackend does
// not, in which case the device resolves a deterministic placeholder so
// API-level runs and replays stay reproducible.
type MultipassBackend interface {
	// CreateRenderTarget materializes backing surfaces for rt.
	CreateRenderTarget(rt *RenderTarget)
	// SetRenderTarget redirects subsequent draws and clears into rt
	// (nil selects the backbuffer).
	SetRenderTarget(rt *RenderTarget)
	// ResolveRenderTarget flushes rt's caches and returns its pixels
	// quantized to 8-bit RGBA, row-major, W*H texels.
	ResolveRenderTarget(rt *RenderTarget) []texture.RGBA
}

// CreateRenderTarget allocates an off-screen surface and its resolve
// texture. Creation is a state call, like every other resource creation.
// Dimensions must be positive powers of two.
func (d *Device) CreateRenderTarget(name string, w, h int) (*RenderTarget, error) {
	if w <= 0 || h <= 0 || w&(w-1) != 0 || h&(h-1) != 0 {
		return nil, fmt.Errorf("gfxapi: render target %q: dimensions %dx%d must be powers of two", name, w, h)
	}
	rt := &RenderTarget{Name: name, W: w, H: h}
	rt.BaseAddr = d.alloc(w * h * 4)  // RGBA8 color plane
	rt.ZBaseAddr = d.alloc(w * h * 5) // 4 B depth + 1 B stencil
	tex, err := texture.FromRGBA(name+"/resolve", texture.FormatRGBA8, w, h,
		make([]texture.RGBA, w*h))
	if err != nil {
		return nil, fmt.Errorf("gfxapi: render target %q: %w", name, err)
	}
	tex.BaseAddr = d.alloc(tex.TotalBytes())
	rt.Tex = tex
	id := d.assignID(rt)
	d.rts[id] = rt
	texID := d.assignID(tex)
	d.texs[texID] = tex
	d.frame.StateCalls++
	if d.recorder != nil {
		d.recorder.Record(Command{
			Op: OpCreateRT, ID: id, ID2: texID,
			RTName: name, RTW: w, RTH: h,
		})
	}
	if mp, ok := d.backend.(MultipassBackend); ok {
		mp.CreateRenderTarget(rt)
	}
	return rt, nil
}

// SetRenderTarget redirects subsequent draws and clears into rt; nil
// restores the backbuffer. One state call.
func (d *Device) SetRenderTarget(rt *RenderTarget) {
	d.curRT = rt
	var id uint32
	if rt != nil {
		id = d.ids[rt]
	}
	d.stateCall(Command{Op: OpSetRT, ID: id})
	if mp, ok := d.backend.(MultipassBackend); ok {
		mp.SetRenderTarget(rt)
	}
}

// CurrentRenderTarget returns the bound target (nil for the backbuffer).
func (d *Device) CurrentRenderTarget() *RenderTarget { return d.curRT }

// ResolveToTexture re-encodes rt's current pixels into its resolve
// texture, in place, so the texture handle every sampler holds stays
// valid. On a backend without multipass support the texture receives a
// deterministic placeholder (API-level statistics never depend on texel
// content). One state call.
func (d *Device) ResolveToTexture(rt *RenderTarget) error {
	if rt == nil || rt.Tex == nil {
		return fmt.Errorf("gfxapi: resolve of nil render target")
	}
	var pix []texture.RGBA
	if mp, ok := d.backend.(MultipassBackend); ok {
		pix = mp.ResolveRenderTarget(rt)
	}
	if pix == nil {
		pix = placeholderResolve(rt, d.ids[rt])
	}
	if err := rt.Tex.UpdateRGBA(pix); err != nil {
		return fmt.Errorf("gfxapi: resolve %q: %w", rt.Name, err)
	}
	d.stateCall(Command{Op: OpResolveTex, ID: d.ids[rt]})
	return nil
}

// placeholderResolve fills the resolve texture with a flat color derived
// from the target's id — stable content for backends that discard GPU
// work, so replays of API-only traces are byte-for-byte reproducible.
func placeholderResolve(rt *RenderTarget, id uint32) []texture.RGBA {
	c := texture.RGBA{R: uint8(id), G: 0x80, B: uint8(id >> 8), A: 255}
	pix := make([]texture.RGBA, rt.W*rt.H)
	for i := range pix {
		pix[i] = c
	}
	return pix
}
