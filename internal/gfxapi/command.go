package gfxapi

import (
	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// Op is a traceable API operation, the unit GLInterceptor-style tracers
// store and replay.
type Op uint8

// Trace operations.
const (
	OpCreateVB Op = iota
	OpCreateIB
	OpCreateTex
	OpCreateProgram
	OpSetZState
	OpSetRopState
	OpSetCull
	OpBindTexture
	OpSetConst
	OpDraw
	OpClear
	OpEndFrame
	// Render-to-texture ops (v2 traces). Appended past OpEndFrame so v1
	// readers resync over them instead of misparsing.
	OpCreateRT
	OpSetRT
	OpResolveTex
)

var opNames = [...]string{
	"CreateVB", "CreateIB", "CreateTex", "CreateProgram",
	"SetZState", "SetRopState", "SetCull", "BindTexture",
	"SetConst", "Draw", "Clear", "EndFrame",
	"CreateRT", "SetRT", "ResolveTex",
}

// String names the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "Op?"
}

// Command is one recorded API call. It is a tagged union: which fields
// are meaningful depends on Op. Resource references use IDs so traces
// can be re-materialized by a player.
type Command struct {
	Op   Op
	ID   uint32 // primary resource id
	ID2  uint32 // secondary (index buffer of a draw)
	Unit uint8  // texture unit or constant index

	// Creation payloads.
	VBData  [][]gmath.Vec4
	IBData  []uint32
	Stride  int
	TexSpec TextureSpec
	Program *shader.Program

	// State payloads.
	ZState   *zst.State
	RopState *rop.State
	Cull     geom.CullMode
	Sampler  *texture.SamplerState
	Vec      gmath.Vec4
	ClearOp  *ClearOp

	// Draw payload.
	Prim    geom.PrimitiveType
	ProgID  uint32 // vertex program id
	ProgID2 uint32 // fragment program id

	// Render-target payload (OpCreateRT; ID2 carries the resolve
	// texture id).
	RTName   string
	RTW, RTH int
}

// TextureKind selects how a TextureSpec generates texel content.
type TextureKind uint8

// Texture content kinds. Procedural kinds keep traces small; KindData
// carries explicit texels.
const (
	KindChecker TextureKind = iota
	KindNoise
	KindFlat
	KindData
	// KindBlockNoise is hash noise constant over Cell x Cell texel
	// blocks, giving alpha-tested materials a controllable kill rate.
	KindBlockNoise
)

// TextureSpec is a serializable description of a texture: the synthetic
// workloads use procedural content, so a compact spec fully determines
// the texture.
type TextureSpec struct {
	Name   string
	Format texture.Format
	W, H   int
	Kind   TextureKind
	// Checker parameters.
	Cell   int
	ColorA texture.RGBA
	ColorB texture.RGBA
	// Noise seed.
	Seed uint32
	// Explicit data for KindData.
	Data []texture.RGBA
}

// Build materializes the texture described by the spec.
func (s TextureSpec) Build() (*texture.Texture, error) {
	switch s.Kind {
	case KindChecker:
		return texture.New(s.Name, s.Format, s.W, s.H,
			texture.Checker(s.Cell, s.ColorA, s.ColorB))
	case KindNoise:
		return texture.New(s.Name, s.Format, s.W, s.H, texture.Noise(s.Seed))
	case KindFlat:
		return texture.New(s.Name, s.Format, s.W, s.H, texture.Flat(s.ColorA))
	case KindBlockNoise:
		return texture.New(s.Name, s.Format, s.W, s.H,
			texture.BlockNoise(s.Seed, s.Cell))
	default:
		return texture.FromRGBA(s.Name, s.Format, s.W, s.H, s.Data)
	}
}
