// Package gfxapi provides the abstract graphics device the workloads
// render through — the equivalent of the OpenGL / Direct3D boundary the
// paper instruments with GLInterceptor and PIX (§II.B). Every method
// call is an "API call": draw calls are batches, everything else is a
// state call, and the per-frame counts of both are the raw material of
// the paper's CPU-load analysis (Figures 1-3, Table III).
//
// The device validates calls, keeps the current render state, counts
// API activity per frame, optionally records the call stream for the
// trace package, and forwards complete draw calls to a Backend (the GPU
// simulator, or a null backend for API-level-only profiling).
package gfxapi

import (
	"fmt"

	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/metrics"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// API identifies the dialect a workload uses, as listed in Table I.
type API uint8

// Graphics APIs.
const (
	OpenGL API = iota
	Direct3D
)

// String names the API.
func (a API) String() string {
	if a == OpenGL {
		return "OpenGL"
	}
	return "Direct3D"
}

// TexBinding couples a texture handle with its sampler state.
type TexBinding struct {
	Tex   *texture.Texture
	State texture.SamplerState
}

// RenderState is the full fixed-function state vector snapshotted into
// each draw call.
type RenderState struct {
	Z    zst.State
	Rop  rop.State
	Cull geom.CullMode
	Tex  [shader.NumTexUnits]TexBinding
}

// DrawCall is one batch: a complete, self-contained unit of GPU work.
type DrawCall struct {
	VB    *geom.VertexBuffer
	IB    *geom.IndexBuffer
	Prim  geom.PrimitiveType
	VS    *shader.Program
	FS    *shader.Program
	State RenderState
	// Consts is the constant register file at draw time (shared
	// between the vertex and fragment programs, like ATTILA's unified
	// shader model).
	Consts [shader.NumConsts]gmath.Vec4
}

// ClearOp describes a framebuffer clear.
type ClearOp struct {
	Color        gmath.Vec4
	Z            float32
	Stencil      uint8
	ClearColor   bool
	ClearDepth   bool
	ClearStencil bool
}

// Backend consumes finished draw calls: the GPU simulator, or NullBackend
// when only API-level statistics are wanted.
type Backend interface {
	Execute(dc *DrawCall)
	Clear(op ClearOp)
	EndFrame()
}

// NullBackend discards all work; the Device still gathers API statistics.
type NullBackend struct{}

// Execute discards the draw call.
func (NullBackend) Execute(*DrawCall) {}

// Clear discards the clear.
func (NullBackend) Clear(ClearOp) {}

// EndFrame does nothing.
func (NullBackend) EndFrame() {}

// FrameStats is the per-frame API activity record.
type FrameStats struct {
	Batches    int64
	Indices    int64
	IndexBytes int64
	StateCalls int64
	// Primitives counted by assembly arithmetic (Table V).
	Primitives int64
	// Per-primitive-type index counts, for the Table V mix.
	IndicesByPrim [3]int64
	// Instruction-weighted sums for Tables IV and XII: each draw adds
	// program length x indices.
	VSInstrWeighted float64
	FSInstrWeighted float64
	FSTexWeighted   float64
	WeightVertices  float64 // total weight (indices)
}

// Register binds every counter of f into the registry under prefix —
// the single definition of the API-level counter names. The
// instruction-weighted sums are float-valued and register as gauges.
func (f *FrameStats) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/batches", &f.Batches)
	r.Bind(prefix+"/indices", &f.Indices)
	r.Bind(prefix+"/index_bytes", &f.IndexBytes)
	r.Bind(prefix+"/state_calls", &f.StateCalls)
	r.Bind(prefix+"/primitives", &f.Primitives)
	r.Bind(prefix+"/indices_list", &f.IndicesByPrim[0])
	r.Bind(prefix+"/indices_strip", &f.IndicesByPrim[1])
	r.Bind(prefix+"/indices_fan", &f.IndicesByPrim[2])
	r.BindFloat(prefix+"/vs_instr_weighted", &f.VSInstrWeighted)
	r.BindFloat(prefix+"/fs_instr_weighted", &f.FSInstrWeighted)
	r.BindFloat(prefix+"/fs_tex_weighted", &f.FSTexWeighted)
	r.BindFloat(prefix+"/weight_vertices", &f.WeightVertices)
}

// AvgVSInstr returns the index-weighted average vertex program length.
func (f FrameStats) AvgVSInstr() float64 {
	if f.WeightVertices == 0 {
		return 0
	}
	return f.VSInstrWeighted / f.WeightVertices
}

// AvgFSInstr returns the index-weighted average fragment program length.
func (f FrameStats) AvgFSInstr() float64 {
	if f.WeightVertices == 0 {
		return 0
	}
	return f.FSInstrWeighted / f.WeightVertices
}

// AvgFSTex returns the index-weighted average texture instruction count.
func (f FrameStats) AvgFSTex() float64 {
	if f.WeightVertices == 0 {
		return 0
	}
	return f.FSTexWeighted / f.WeightVertices
}

// Recorder receives every API call for tracing. Implemented by
// trace.Recorder; nil disables recording.
type Recorder interface {
	Record(cmd Command)
}

// Device is the graphics device front-end.
type Device struct {
	api      API
	backend  Backend
	recorder Recorder

	state  RenderState
	consts [shader.NumConsts]gmath.Vec4

	frame  FrameStats
	frames []FrameStats

	// curRT is the bound render target (nil = backbuffer).
	curRT *RenderTarget

	// resource registries, for traces and bookkeeping
	nextID   uint32
	vbs      map[uint32]*geom.VertexBuffer
	ibs      map[uint32]*geom.IndexBuffer
	texs     map[uint32]*texture.Texture
	programs map[uint32]*shader.Program
	rts      map[uint32]*RenderTarget
	ids      map[interface{}]uint32

	// nextAddr allocates GPU virtual addresses for resources.
	nextAddr uint64
}

// NewDevice creates a device speaking the given API dialect into a
// backend. backend must not be nil (use NullBackend{}).
func NewDevice(api API, backend Backend) *Device {
	return &Device{
		api:      api,
		backend:  backend,
		state:    DefaultRenderState(),
		vbs:      map[uint32]*geom.VertexBuffer{},
		ibs:      map[uint32]*geom.IndexBuffer{},
		texs:     map[uint32]*texture.Texture{},
		programs: map[uint32]*shader.Program{},
		rts:      map[uint32]*RenderTarget{},
		ids:      map[interface{}]uint32{},
		nextAddr: 0x1000_0000,
	}
}

// DefaultRenderState returns the state a fresh context starts with.
func DefaultRenderState() RenderState {
	return RenderState{
		Z:    zst.DefaultState(),
		Rop:  rop.DefaultState(),
		Cull: geom.CullBack,
	}
}

// SetRecorder attaches (or detaches, with nil) a call-stream recorder.
func (d *Device) SetRecorder(r Recorder) { d.recorder = r }

// API returns the device dialect.
func (d *Device) API() API { return d.api }

// Frames returns the completed per-frame statistics.
func (d *Device) Frames() []FrameStats { return d.frames }

// CurrentFrame returns the in-progress frame statistics.
func (d *Device) CurrentFrame() FrameStats { return d.frame }

func (d *Device) alloc(n int) uint64 {
	a := d.nextAddr
	// Keep 256-byte alignment like a real allocator.
	d.nextAddr += (uint64(n) + 255) &^ 255
	return a
}

func (d *Device) assignID(res interface{}) uint32 {
	d.nextID++
	d.ids[res] = d.nextID
	return d.nextID
}

// CreateVertexBuffer registers vertex data with the device. Creation is
// a state call (it happens during level loads, producing the startup
// spikes of Figure 3).
func (d *Device) CreateVertexBuffer(attribs [][]gmath.Vec4, strideBytes int) *geom.VertexBuffer {
	vb := &geom.VertexBuffer{Attribs: attribs, StrideBytes: strideBytes}
	vb.BaseAddr = d.alloc(vb.NumVertices() * strideBytes)
	id := d.assignID(vb)
	d.vbs[id] = vb
	d.frame.StateCalls++
	if d.recorder != nil {
		d.recorder.Record(Command{Op: OpCreateVB, ID: id, VBData: attribs, Stride: strideBytes})
	}
	return vb
}

// CreateIndexBuffer registers an index list. bytesPerIndex is 2 or 4
// (Table III shows it is fixed per middleware).
func (d *Device) CreateIndexBuffer(indices []uint32, bytesPerIndex int) *geom.IndexBuffer {
	ib := &geom.IndexBuffer{Indices: indices, BytesPerIndex: bytesPerIndex}
	ib.BaseAddr = d.alloc(len(indices) * bytesPerIndex)
	id := d.assignID(ib)
	d.ibs[id] = ib
	d.frame.StateCalls++
	if d.recorder != nil {
		d.recorder.Record(Command{Op: OpCreateIB, ID: id, IBData: indices, Stride: bytesPerIndex})
	}
	return ib
}

// CreateTexture materializes a texture from a spec and places it in GPU
// memory.
func (d *Device) CreateTexture(spec TextureSpec) (*texture.Texture, error) {
	t, err := spec.Build()
	if err != nil {
		return nil, err
	}
	t.BaseAddr = d.alloc(t.TotalBytes())
	id := d.assignID(t)
	d.texs[id] = t
	d.frame.StateCalls++
	if d.recorder != nil {
		d.recorder.Record(Command{Op: OpCreateTex, ID: id, TexSpec: spec})
	}
	return t, nil
}

// CreateProgram validates and registers a shader program.
func (d *Device) CreateProgram(p *shader.Program) (*shader.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("gfxapi: %w", err)
	}
	id := d.assignID(p)
	d.programs[id] = p
	d.frame.StateCalls++
	if d.recorder != nil {
		d.recorder.Record(Command{Op: OpCreateProgram, ID: id, Program: p})
	}
	return p, nil
}

// SetZState sets the depth/stencil state (one state call).
func (d *Device) SetZState(s zst.State) {
	d.state.Z = s
	d.stateCall(Command{Op: OpSetZState, ZState: &s})
}

// SetRopState sets the blend/mask state (one state call).
func (d *Device) SetRopState(s rop.State) {
	d.state.Rop = s
	d.stateCall(Command{Op: OpSetRopState, RopState: &s})
}

// SetCull sets the face culling mode (one state call).
func (d *Device) SetCull(c geom.CullMode) {
	d.state.Cull = c
	d.stateCall(Command{Op: OpSetCull, Cull: c})
}

// BindTexture binds a texture and sampler state to a unit (one state
// call).
func (d *Device) BindTexture(unit int, t *texture.Texture, st texture.SamplerState) {
	if unit < 0 || unit >= shader.NumTexUnits {
		return
	}
	d.state.Tex[unit] = TexBinding{Tex: t, State: st}
	d.stateCall(Command{Op: OpBindTexture, Unit: uint8(unit), ID: d.ids[t], Sampler: &st})
}

// SetConst loads one constant register (one state call; games issue
// these in volume, e.g. skinning matrices).
func (d *Device) SetConst(idx int, v gmath.Vec4) {
	if idx < 0 || idx >= shader.NumConsts {
		return
	}
	d.consts[idx] = v
	d.stateCall(Command{Op: OpSetConst, Unit: uint8(idx), Vec: v})
}

// SetMatrix loads a 4x4 matrix into four consecutive constant registers
// (counted as four state calls, matching how APIs upload matrices).
func (d *Device) SetMatrix(baseIdx int, m gmath.Mat4) {
	for r := 0; r < 4; r++ {
		d.SetConst(baseIdx+r, m.Row(r))
	}
}

func (d *Device) stateCall(cmd Command) {
	d.frame.StateCalls++
	if d.recorder != nil {
		d.recorder.Record(cmd)
	}
}

// DrawIndexed issues one batch with the current state.
func (d *Device) DrawIndexed(vb *geom.VertexBuffer, ib *geom.IndexBuffer,
	prim geom.PrimitiveType, vs, fs *shader.Program) {

	dc := &DrawCall{
		VB: vb, IB: ib, Prim: prim, VS: vs, FS: fs,
		State:  d.state,
		Consts: d.consts,
	}
	n := len(ib.Indices)
	d.frame.Batches++
	d.frame.Indices += int64(n)
	d.frame.IndexBytes += int64(n * ib.BytesPerIndex)
	d.frame.Primitives += int64(prim.TriangleCount(n))
	// Guard the per-type array: an out-of-range primitive byte (possible
	// only through a hostile trace; the decoder rejects it, this is
	// defense in depth) must not crash the statistics counter.
	if int(prim) < len(d.frame.IndicesByPrim) {
		d.frame.IndicesByPrim[prim] += int64(n)
	}
	w := float64(n)
	d.frame.WeightVertices += w
	d.frame.VSInstrWeighted += w * float64(vs.Len())
	d.frame.FSInstrWeighted += w * float64(fs.Len())
	d.frame.FSTexWeighted += w * float64(fs.TexCount())
	if d.recorder != nil {
		d.recorder.Record(Command{
			Op: OpDraw, ID: d.ids[vb], ID2: d.ids[ib],
			Prim: prim, ProgID: d.ids[vs], ProgID2: d.ids[fs],
		})
	}
	d.backend.Execute(dc)
}

// Clear clears the framebuffer (one state call).
func (d *Device) Clear(op ClearOp) {
	d.stateCall(Command{Op: OpClear, ClearOp: &op})
	d.backend.Clear(op)
}

// EndFrame closes the current frame: statistics are archived and the
// backend presents.
func (d *Device) EndFrame() {
	if d.recorder != nil {
		d.recorder.Record(Command{Op: OpEndFrame})
	}
	d.backend.EndFrame()
	d.frames = append(d.frames, d.frame)
	d.frame = FrameStats{}
}

// DropFrame discards the in-progress frame's statistics without
// archiving them. A resumed render uses it to shed the resource-creation
// burst its fresh Setup just emitted: in the continuous run that burst
// belongs to frame 0, which the resume already has in its checkpoint.
func (d *Device) DropFrame() {
	d.frame = FrameStats{}
}
