package gfxapi

import (
	"testing"

	"gpuchar/internal/geom"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// countingBackend records what reaches the backend.
type countingBackend struct {
	draws  []*DrawCall
	clears int
	frames int
}

func (c *countingBackend) Execute(dc *DrawCall) { c.draws = append(c.draws, dc) }
func (c *countingBackend) Clear(ClearOp)        { c.clears++ }
func (c *countingBackend) EndFrame()            { c.frames++ }

type recordingRecorder struct{ cmds []Command }

func (r *recordingRecorder) Record(c Command) { r.cmds = append(r.cmds, c) }

func newTestDevice() (*Device, *countingBackend) {
	b := &countingBackend{}
	return NewDevice(OpenGL, b), b
}

func simpleResources(t *testing.T, d *Device) (*geom.VertexBuffer, *geom.IndexBuffer,
	*shader.Program, *shader.Program) {
	t.Helper()
	pos := []gmath.Vec4{{W: 1}, {X: 1, W: 1}, {Y: 1, W: 1}}
	vb := d.CreateVertexBuffer([][]gmath.Vec4{pos, pos, pos}, 48)
	ib := d.CreateIndexBuffer([]uint32{0, 1, 2}, 2)
	vs, err := d.CreateProgram(shader.BasicTransformVS())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.CreateProgram(shader.TexturedFS())
	if err != nil {
		t.Fatal(err)
	}
	return vb, ib, vs, fs
}

func TestAPIString(t *testing.T) {
	if OpenGL.String() != "OpenGL" || Direct3D.String() != "Direct3D" {
		t.Error("API names wrong")
	}
}

func TestDrawCountsBatchAndIndices(t *testing.T) {
	d, b := newTestDevice()
	vb, ib, vs, fs := simpleResources(t, d)
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	d.EndFrame()
	frames := d.Frames()
	if len(frames) != 1 {
		t.Fatalf("frames = %d", len(frames))
	}
	f := frames[0]
	if f.Batches != 1 || f.Indices != 3 || f.IndexBytes != 6 {
		t.Errorf("frame = %+v", f)
	}
	if f.Primitives != 1 {
		t.Errorf("primitives = %d", f.Primitives)
	}
	if len(b.draws) != 1 || b.frames != 1 {
		t.Errorf("backend saw %d draws %d frames", len(b.draws), b.frames)
	}
}

func TestStateCallCounting(t *testing.T) {
	d, _ := newTestDevice()
	base := d.CurrentFrame().StateCalls
	d.SetZState(zst.DefaultState())
	d.SetRopState(rop.AdditiveBlend())
	d.SetCull(geom.CullNone)
	d.SetConst(0, gmath.V4(1, 2, 3, 4))
	d.SetMatrix(4, gmath.Identity()) // 4 calls
	got := d.CurrentFrame().StateCalls - base
	if got != 8 {
		t.Errorf("state calls = %d, want 8", got)
	}
}

func TestResourceCreationCountsAsStateCalls(t *testing.T) {
	d, _ := newTestDevice()
	simpleResources(t, d)
	// 1 VB + 1 IB + 2 programs = 4 calls.
	if got := d.CurrentFrame().StateCalls; got != 4 {
		t.Errorf("creation state calls = %d, want 4", got)
	}
}

func TestDrawSnapshotsState(t *testing.T) {
	d, b := newTestDevice()
	vb, ib, vs, fs := simpleResources(t, d)
	st := zst.DefaultState()
	st.ZFunc = zst.CmpEqual
	d.SetZState(st)
	d.SetConst(9, gmath.V4(7, 7, 7, 7))
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	// Mutating device state afterwards must not affect the captured call.
	d.SetZState(zst.DefaultState())
	d.SetConst(9, gmath.Vec4{})
	dc := b.draws[0]
	if dc.State.Z.ZFunc != zst.CmpEqual {
		t.Error("draw call state not snapshotted")
	}
	if dc.Consts[9] != gmath.V4(7, 7, 7, 7) {
		t.Error("constants not snapshotted")
	}
}

func TestWeightedShaderAverages(t *testing.T) {
	d, _ := newTestDevice()
	vb, ib, _, _ := simpleResources(t, d)
	vsShort, _ := shader.SynthesizeVS("short", 10)
	vsLong, _ := shader.SynthesizeVS("long", 30)
	fs, _ := shader.SynthesizeFS("f", 12, 4, 4)
	// Two draws with the same index count: average VS length = 20.
	d.DrawIndexed(vb, ib, geom.TriangleList, vsShort, fs)
	d.DrawIndexed(vb, ib, geom.TriangleList, vsLong, fs)
	d.EndFrame()
	f := d.Frames()[0]
	if got := f.AvgVSInstr(); got != 20 {
		t.Errorf("avg VS instr = %v, want 20", got)
	}
	if got := f.AvgFSInstr(); got != 12 {
		t.Errorf("avg FS instr = %v, want 12", got)
	}
	if got := f.AvgFSTex(); got != 4 {
		t.Errorf("avg FS tex = %v, want 4", got)
	}
}

func TestPrimitiveMixTracking(t *testing.T) {
	d, _ := newTestDevice()
	vb, ib, vs, fs := simpleResources(t, d)
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	d.DrawIndexed(vb, ib, geom.TriangleStrip, vs, fs)
	d.EndFrame()
	f := d.Frames()[0]
	if f.IndicesByPrim[geom.TriangleList] != 3 ||
		f.IndicesByPrim[geom.TriangleStrip] != 3 {
		t.Errorf("mix = %v", f.IndicesByPrim)
	}
	// TL: 1 triangle; TS with 3 indices: 1 triangle.
	if f.Primitives != 2 {
		t.Errorf("primitives = %d", f.Primitives)
	}
}

func TestCreateTextureSpecs(t *testing.T) {
	d, _ := newTestDevice()
	specs := []TextureSpec{
		{Name: "c", Format: texture.FormatDXT1, W: 64, H: 64, Kind: KindChecker,
			Cell: 8, ColorA: texture.RGBA{R: 255, A: 255}, ColorB: texture.RGBA{B: 255, A: 255}},
		{Name: "n", Format: texture.FormatDXT5, W: 32, H: 32, Kind: KindNoise, Seed: 3},
		{Name: "f", Format: texture.FormatRGBA8, W: 16, H: 16, Kind: KindFlat,
			ColorA: texture.RGBA{R: 1, G: 2, B: 3, A: 4}},
	}
	var addrs []uint64
	for _, s := range specs {
		tex, err := d.CreateTexture(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if tex.BaseAddr == 0 {
			t.Errorf("%s: no address assigned", s.Name)
		}
		addrs = append(addrs, tex.BaseAddr)
	}
	// Addresses must not overlap.
	if addrs[0] == addrs[1] || addrs[1] == addrs[2] {
		t.Error("texture addresses collide")
	}
	// Bad spec surfaces the error.
	if _, err := d.CreateTexture(TextureSpec{Name: "bad", W: 100, H: 64}); err == nil {
		t.Error("non-power-of-two spec accepted")
	}
}

func TestCreateProgramValidates(t *testing.T) {
	d, _ := newTestDevice()
	bad := &shader.Program{Name: "empty", Kind: shader.FragmentProgram}
	if _, err := d.CreateProgram(bad); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestRecorderSeesCalls(t *testing.T) {
	d, _ := newTestDevice()
	r := &recordingRecorder{}
	d.SetRecorder(r)
	vb, ib, vs, fs := simpleResources(t, d)
	d.SetCull(geom.CullNone)
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	d.Clear(ClearOp{ClearDepth: true, Z: 1})
	d.EndFrame()
	// 4 creations + cull + draw + clear + endframe = 8 commands.
	if len(r.cmds) != 8 {
		t.Fatalf("recorded %d commands", len(r.cmds))
	}
	wantOps := []Op{OpCreateVB, OpCreateIB, OpCreateProgram, OpCreateProgram,
		OpSetCull, OpDraw, OpClear, OpEndFrame}
	for i, w := range wantOps {
		if r.cmds[i].Op != w {
			t.Errorf("cmd %d = %v, want %v", i, r.cmds[i].Op, w)
		}
	}
	// The draw command references the created resources by id.
	draw := r.cmds[5]
	if draw.ID == 0 || draw.ID2 == 0 || draw.ProgID == 0 || draw.ProgID2 == 0 {
		t.Errorf("draw ids = %+v", draw)
	}
}

func TestBindTextureOutOfRangeIgnored(t *testing.T) {
	d, _ := newTestDevice()
	before := d.CurrentFrame().StateCalls
	d.BindTexture(-1, nil, texture.SamplerState{})
	d.BindTexture(99, nil, texture.SamplerState{})
	if d.CurrentFrame().StateCalls != before {
		t.Error("out-of-range binds counted")
	}
}

func TestSetConstOutOfRangeIgnored(t *testing.T) {
	d, _ := newTestDevice()
	before := d.CurrentFrame().StateCalls
	d.SetConst(-1, gmath.Vec4{})
	d.SetConst(shader.NumConsts, gmath.Vec4{})
	if d.CurrentFrame().StateCalls != before {
		t.Error("out-of-range consts counted")
	}
}

func TestFrameStatsResetPerFrame(t *testing.T) {
	d, _ := newTestDevice()
	vb, ib, vs, fs := simpleResources(t, d)
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	d.EndFrame()
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
	d.EndFrame()
	fs1, fs2 := d.Frames()[0], d.Frames()[1]
	if fs1.Batches != 1 || fs2.Batches != 2 {
		t.Errorf("batches = %d, %d", fs1.Batches, fs2.Batches)
	}
}

func TestEmptyFrameAverages(t *testing.T) {
	var f FrameStats
	if f.AvgVSInstr() != 0 || f.AvgFSInstr() != 0 || f.AvgFSTex() != 0 {
		t.Error("empty frame averages should be 0")
	}
}

func TestOpString(t *testing.T) {
	if OpDraw.String() != "Draw" || OpEndFrame.String() != "EndFrame" {
		t.Error("op names wrong")
	}
	if Op(200).String() != "Op?" {
		t.Error("unknown op name")
	}
}
