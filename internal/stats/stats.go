// Package stats provides the lightweight statistics primitives used
// throughout the characterization framework: running means, per-frame
// series, counters with ratios, and simple histograms.
//
// The paper reports two kinds of data: averages over a whole timedemo
// (tables) and per-frame series (figures). Mean and Series mirror those
// two shapes directly.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean accumulates a running arithmetic mean without storing samples.
type Mean struct {
	sum float64
	n   int64
}

// Add accumulates one sample.
func (m *Mean) Add(x float64) { m.sum += x; m.n++ }

// AddN accumulates a pre-summed batch of n samples.
func (m *Mean) AddN(sum float64, n int64) { m.sum += sum; m.n += n }

// Value returns the mean of the accumulated samples, or 0 when empty.
// Callers that must distinguish an empty mean from a true zero (a table
// cell for a never-exercised stage, say) should check Valid first.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Valid reports whether the mean has accumulated any samples — the
// disambiguation of Value's 0-when-empty convention.
func (m *Mean) Valid() bool { return m.n > 0 }

// Sum returns the total of all accumulated samples.
func (m *Mean) Sum() float64 { return m.sum }

// Count returns the number of accumulated samples.
func (m *Mean) Count() int64 { return m.n }

// Series is an ordered per-frame sequence of values, the unit of data
// behind every figure in the paper.
type Series struct {
	Name   string
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Append adds one frame's value.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of frames recorded.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the arithmetic mean of the series, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Min returns the smallest value in the series, or 0 when empty.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	min := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest value in the series, or 0 when empty.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	max := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MeanRange returns the mean of values[from:to] (clamped), the tool used
// for Oblivion's two-region vertex shader statistic in Table IV.
func (s *Series) MeanRange(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from >= to {
		return 0
	}
	var sum float64
	for _, v := range s.Values[from:to] {
		sum += v
	}
	return sum / float64(to-from)
}

// Percentile returns the p-th percentile (0-100) using nearest-rank on a
// sorted copy. It returns 0 when the series is empty.
func (s *Series) Percentile(p float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Downsample returns a new series keeping every stride-th frame, used when
// plotting long runs compactly.
func (s *Series) Downsample(stride int) *Series {
	if stride < 1 {
		stride = 1
	}
	out := NewSeries(s.Name)
	for i := 0; i < len(s.Values); i += stride {
		out.Append(s.Values[i])
	}
	return out
}

// Counter counts discrete events.
type Counter struct {
	n int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Ratio returns c / total as a float in [0,1], or 0 when total is zero.
func Ratio(c, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Percent returns 100 * c / total, or 0 when total is zero.
func Percent(c, total int64) float64 { return 100 * Ratio(c, total) }

// Histogram is a fixed-bucket histogram over [min, max).
type Histogram struct {
	Min, Max float64
	Buckets  []int64
	under    int64
	over     int64
}

// NewHistogram creates a histogram with n equal-width buckets over
// [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{Min: min, Max: max, Buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Min {
		h.under++
		return
	}
	if x >= h.Max {
		h.over++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Buckets)))
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.under + h.over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// String renders a short textual summary of the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) n=%d under=%d over=%d",
		h.Min, h.Max, h.Total(), h.under, h.over)
}
