package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Errorf("empty mean = %v, want 0", m.Value())
	}
	for _, x := range []float64{1, 2, 3, 4} {
		m.Add(x)
	}
	if m.Value() != 2.5 {
		t.Errorf("mean = %v, want 2.5", m.Value())
	}
	if m.Count() != 4 || m.Sum() != 10 {
		t.Errorf("count=%d sum=%v", m.Count(), m.Sum())
	}
	m.AddN(10, 2) // two samples totalling 10
	if m.Value() != 20.0/6 {
		t.Errorf("mean after AddN = %v", m.Value())
	}
}

func TestMeanValid(t *testing.T) {
	var m Mean
	if m.Valid() {
		t.Error("empty mean reports Valid")
	}
	m.Add(0)
	if !m.Valid() {
		t.Error("mean with a zero sample must be Valid — that is the whole point")
	}
	if m.Value() != 0 {
		t.Errorf("mean of {0} = %v", m.Value())
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("batches")
	for _, v := range []float64{5, 1, 9, 3} {
		s.Append(v)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Mean() != 4.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("min=%v max=%v", s.Min(), s.Max())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series should return zeros")
	}
}

func TestSeriesMeanRange(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	if got := s.MeanRange(0, 5); got != 2 {
		t.Errorf("MeanRange(0,5) = %v, want 2", got)
	}
	if got := s.MeanRange(5, 10); got != 7 {
		t.Errorf("MeanRange(5,10) = %v, want 7", got)
	}
	// Clamping behaviour.
	if got := s.MeanRange(-3, 100); got != 4.5 {
		t.Errorf("clamped MeanRange = %v, want 4.5", got)
	}
	if got := s.MeanRange(7, 3); got != 0 {
		t.Errorf("inverted range = %v, want 0", got)
	}
}

func TestSeriesPercentile(t *testing.T) {
	s := NewSeries("x")
	for i := 1; i <= 100; i++ {
		s.Append(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	d := s.Downsample(3)
	want := []float64{0, 3, 6, 9}
	if len(d.Values) != len(want) {
		t.Fatalf("downsampled len = %d", len(d.Values))
	}
	for i, v := range want {
		if d.Values[i] != v {
			t.Errorf("d[%d] = %v, want %v", i, d.Values[i], v)
		}
	}
	if d0 := s.Downsample(0); d0.Len() != s.Len() {
		t.Errorf("stride 0 should behave as 1")
	}
}

func TestRatioPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero total should be 0")
	}
	if Ratio(1, 4) != 0.25 {
		t.Errorf("Ratio = %v", Ratio(1, 4))
	}
	if Percent(1, 4) != 25 {
		t.Errorf("Percent = %v", Percent(1, 4))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Errorf("bucket1 = %d", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Errorf("bucket4 = %d", h.Buckets[4])
	}
	if h.under != 1 || h.over != 2 {
		t.Errorf("under=%d over=%d", h.under, h.over)
	}
	if h.String() == "" {
		t.Error("String should be non-empty")
	}
}

// Property: the running mean matches a direct computation.
func TestQuickMeanMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		var m Mean
		var sum float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological inputs
			}
			// Keep magnitudes reasonable to avoid float blow-up.
			x = math.Mod(x, 1e6)
			m.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return m.Value() == 0
		}
		want := sum / float64(len(xs))
		diff := math.Abs(m.Value() - want)
		scale := math.Abs(want) + 1
		ok = diff/scale < 1e-9
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: series mean lies between min and max.
func TestQuickSeriesMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		s := NewSeries("q")
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Append(math.Mod(x, 1e9))
		}
		if s.Len() == 0 {
			return true
		}
		const slack = 1e-6
		return s.Mean() >= s.Min()-slack && s.Mean() <= s.Max()+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
