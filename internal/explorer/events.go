package explorer

import (
	"sync"
	"sync/atomic"

	"gpuchar/internal/metrics"
)

// Event types on the /api/events stream.
const (
	// EventHello opens every subscription with the hub's current stats.
	EventHello = "hello"
	// EventProgress is a frame-count tick for an in-flight run.
	EventProgress = "progress"
	// EventFrame carries the counter delta of one completed simulated
	// frame (the GPU's published frame-boundary snapshot diffed against
	// the previous boundary).
	EventFrame = "frame"
	// EventRun announces a newly recorded run.
	EventRun = "run"
)

// Event is one message on the explorer stream. Fields are sparse; each
// type fills the subset it needs.
type Event struct {
	Type string `json:"type"`
	// Seq is a monotone publication counter, assigned by the hub.
	Seq int64 `json:"seq"`
	// Run names the job/run the event belongs to ("" for whole-process
	// progress ticks from characterize).
	Run   string `json:"run,omitempty"`
	Demo  string `json:"demo,omitempty"`
	Frame int    `json:"frame,omitempty"`
	// FramesDone / FramesTotal carry progress-tick counts.
	FramesDone  int `json:"frames_done,omitempty"`
	FramesTotal int `json:"frames_total,omitempty"`
	// State carries a job state or run kind, per event type.
	State string `json:"state,omitempty"`
	// Counters holds the nonzero per-counter deltas of a frame event.
	Counters map[string]float64 `json:"counters,omitempty"`
}

// FrameEvent builds a frame-boundary event from a delta snapshot,
// keeping only nonzero counters.
func FrameEvent(run, demo string, frame int, delta metrics.Snapshot) Event {
	counters := make(map[string]float64, delta.Len())
	for _, c := range delta.Counters() {
		if v := c.Value(); v != 0 {
			counters[c.Name] = v
		}
	}
	return Event{Type: EventFrame, Run: run, Demo: demo, Frame: frame, Counters: counters}
}

// DefaultSubscriberBuffer is the per-subscriber channel depth when the
// caller passes none: deep enough to absorb flush latency, shallow
// enough that one stuck consumer costs little memory.
const DefaultSubscriberBuffer = 64

// Subscriber is one event stream consumer. Receive from C until it
// closes (hub shut down), then call Unsubscribe.
type Subscriber struct {
	C  <-chan Event
	ch chan Event
	// dropped counts events discarded because this subscriber's buffer
	// was full — the same never-block contract as the tracer's ring
	// (dropped_events): publishers never wait on a slow consumer.
	dropped atomic.Int64
}

// Dropped returns how many events this subscriber missed to a full
// buffer.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Hub fans events out to SSE subscribers. Publish never blocks: a
// subscriber whose buffer is full loses the event and its drop counter
// advances. All methods are nil-safe.
type Hub struct {
	mu      sync.Mutex
	subs    map[*Subscriber]bool
	closed  bool
	seq     int64
	dropped atomic.Int64
}

// HubStats is the hub's counter block, reported under /api/runs.
type HubStats struct {
	Subscribers int   `json:"subscribers"`
	Published   int64 `json:"published"`
	Dropped     int64 `json:"dropped"`
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[*Subscriber]bool{}}
}

// Subscribe registers a consumer with the given buffer depth (<= 0
// takes DefaultSubscriberBuffer). On a closed hub the returned
// subscriber's channel is already closed.
func (h *Hub) Subscribe(buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	sub := &Subscriber{ch: make(chan Event, buffer)}
	sub.C = sub.ch
	if h == nil {
		close(sub.ch)
		return sub
	}
	h.mu.Lock()
	if h.closed {
		close(sub.ch)
	} else {
		h.subs[sub] = true
	}
	h.mu.Unlock()
	return sub
}

// Unsubscribe removes a consumer and closes its channel (unless the hub
// close already did).
func (h *Hub) Unsubscribe(sub *Subscriber) {
	if h == nil || sub == nil {
		return
	}
	h.mu.Lock()
	if h.subs[sub] {
		delete(h.subs, sub)
		close(sub.ch)
	}
	h.mu.Unlock()
}

// Publish assigns the event its sequence number and offers it to every
// subscriber without blocking; full buffers drop it and account the
// loss.
func (h *Hub) Publish(e Event) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.seq++
	e.Seq = h.seq
	for sub := range h.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

// Close shuts the hub down: every subscriber's channel closes so active
// streams terminate, and later Publish/Subscribe calls are no-ops on
// dead channels. Safe to call twice.
func (h *Hub) Close() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for sub := range h.subs {
			delete(h.subs, sub)
			close(sub.ch)
		}
	}
	h.mu.Unlock()
}

// Stats snapshots the hub's counters.
func (h *Hub) Stats() HubStats {
	if h == nil {
		return HubStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Subscribers: len(h.subs),
		Published:   h.seq,
		Dropped:     h.dropped.Load(),
	}
}
