package explorer

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gpuchar/internal/metrics"
)

//go:embed ui.html
var uiHTML []byte

// RunsSchemaID / RunSchemaID tag the list and detail documents.
const (
	RunsSchemaID = "gpuchar/runs/v1"
	RunSchemaID  = "gpuchar/run/v1"
)

// runSummary is one /api/runs entry.
type runSummary struct {
	ID           string   `json:"id"`
	Kind         string   `json:"kind"`
	Config       string   `json:"config,omitempty"`
	ConfigDigest string   `json:"config_digest,omitempty"`
	Experiments  []string `json:"experiments,omitempty"`
	Demos        []string `json:"demos,omitempty"`
	CacheHit     bool     `json:"cache_hit,omitempty"`
	SimFrames    int      `json:"sim_frames,omitempty"`
	Started      string   `json:"started,omitempty"`
	Finished     string   `json:"finished,omitempty"`
	Snapshots    int      `json:"snapshots"`
	Counters     int      `json:"counters"`
}

func summarize(r *Run) runSummary {
	s := runSummary{
		ID:           r.ID,
		Kind:         r.Kind,
		Config:       r.Config,
		ConfigDigest: r.ConfigDigest,
		Experiments:  r.Experiments,
		Demos:        r.Demos,
		CacheHit:     r.CacheHit,
		SimFrames:    r.SimFrames,
		Snapshots:    len(r.Snapshots),
		Counters:     r.FinalSnapshot().Len(),
	}
	if !r.Started.IsZero() {
		s.Started = r.Started.UTC().Format(time.RFC3339Nano)
	}
	if !r.Finished.IsZero() {
		s.Finished = r.Finished.UTC().Format(time.RFC3339Nano)
	}
	return s
}

// writeJSON emits a response with the pinned headers: an explicit
// charset on the content type and no-store so curl/browser views never
// cache live state.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError reports an error as a JSON body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Mount registers the explorer API and the embedded UI on the server
// mux, the obsv.ServerSources.Mount hook:
//
//	GET /            embedded single-page UI
//	GET /api/runs    run list + event-hub stats
//	GET /api/runs/X  one run: final counters, snapshot series, stages
//	GET /api/compare?a=&b=  gpuchar/compare/v1 diff document
//	GET /api/events  SSE stream (progress/frame/run events)
func (g *Registry) Mount(mux *http.ServeMux) {
	if g == nil {
		return
	}
	mux.HandleFunc("/api/runs", g.handleRuns)
	mux.HandleFunc("/api/runs/", g.handleRun)
	mux.HandleFunc("/api/compare", g.handleCompare)
	mux.HandleFunc("/api/events", g.handleEvents)
	mux.HandleFunc("/", g.handleUI)
}

func (g *Registry) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	runs := g.Runs()
	list := make([]runSummary, 0, len(runs))
	for _, run := range runs {
		list = append(list, summarize(run))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema":  RunsSchemaID,
		"evicted": g.Evicted(),
		"events":  g.hub.Stats(),
		"runs":    list,
	})
}

func (g *Registry) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/runs/")
	run, ok := g.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	doc := map[string]any{
		"schema":  RunSchemaID,
		"run":     summarize(run),
		"final":   run.FinalSnapshot(),
		"spans":   run.StageNanos,
		"spec":    run.Spec,
		"history": run.Snapshots,
	}
	if run.TraceRef != "" {
		doc["trace_ref"] = run.TraceRef
	}
	writeJSON(w, http.StatusOK, doc)
}

func (g *Registry) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	qa, qb := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if qa == "" || qb == "" {
		httpError(w, http.StatusBadRequest, "need a= and b= (run id, config name, or digest prefix)")
		return
	}
	a, ok := g.Resolve(qa)
	if !ok {
		httpError(w, http.StatusNotFound, "no run matches a=%q", qa)
		return
	}
	b, ok := g.Resolve(qb)
	if !ok {
		httpError(w, http.StatusNotFound, "no run matches b=%q", qb)
		return
	}
	writeJSON(w, http.StatusOK, Compare(a, b))
}

func (g *Registry) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	buffer := 0
	if s := r.URL.Query().Get("buffer"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			buffer = n
		}
	}
	sub := g.hub.Subscribe(buffer)
	defer g.hub.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	writeEvent(w, Event{Type: EventHello, FramesTotal: g.Len()})
	flusher.Flush()

	for {
		select {
		case e, open := <-sub.C:
			if !open {
				// Hub closed: the server is shutting down; end the
				// stream so Shutdown's drain completes.
				return
			}
			writeEvent(w, e)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent emits one SSE frame: "event: <type>\ndata: <json>\n\n".
func writeEvent(w http.ResponseWriter, e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
}

func (g *Registry) handleUI(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "no such path %q", r.URL.Path)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	w.Write(uiHTML)
}

// interface check: Run's snapshot series must round-trip through the
// detail endpoint via metrics' own JSON form.
var _ json.Marshaler = metrics.Snapshot{}
