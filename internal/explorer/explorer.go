// Package explorer is the live visual face of the characterization
// service: a bounded registry of completed runs (jobs, experiments,
// sweep cells), a comparison/query JSON API over it, an SSE event hub
// streaming progress ticks and frame-boundary counter deltas, and an
// embedded single-page UI. It mounts on the observability HTTP server
// through obsv.ServerSources.Mount, next to /metrics and /jobs.
//
// Dependency direction: serve and the binaries import explorer;
// explorer imports only metrics and report. The snapshot label
// vocabulary is therefore redeclared here rather than imported from
// core.
package explorer

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"gpuchar/internal/metrics"
)

// Snapshot label vocabulary, mirrored from internal/core (pinned equal
// by TestLabelVocabularyMatchesCore). Redeclared locally so the
// dependency arrow stays serve -> explorer, never explorer -> core.
const (
	LabelDemo      = "demo"
	LabelFrame     = "frame"
	LabelSource    = "source"
	LabelPass      = "pass"
	SourceAPI      = "api"
	SourceSim      = "sim"
	LabelAllFrames = "all"
)

// Run kinds: what produced the recorded result.
const (
	// KindJob is a serve-queue job (including sweep cells, which ride
	// the job API).
	KindJob = "job"
	// KindExperiment is one experiment of a local characterize run.
	KindExperiment = "experiment"
	// KindConfig is an ad-hoc whole-config run, e.g. one side of a
	// `characterize -sweep-diff` comparison.
	KindConfig = "config"
)

// Run is one completed characterization recorded in the registry: its
// identity and spec, the hardware point it ran under, and the full
// snapshot series its result document carried. Runs are immutable once
// recorded.
type Run struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Config / ConfigDigest name the hardware variant ("inline" with a
	// digest when the spec carried a parameter document).
	Config       string `json:"config,omitempty"`
	ConfigDigest string `json:"config_digest,omitempty"`
	// Experiments echoes the experiment IDs the run computed.
	Experiments []string `json:"experiments,omitempty"`
	// Demos lists the demo labels present in the snapshot series.
	Demos []string `json:"demos,omitempty"`
	// Spec is the submitter's normalized spec document, verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
	// CacheHit marks a run served from the content-addressed cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// SimFrames is the simulated frame count behind the per-frame
	// normalization of derived metrics (mem_mb_per_frame).
	SimFrames int `json:"sim_frames,omitempty"`
	// Started / Finished bound the run's wall-clock execution.
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	// StageNanos is the per-stage busy time, when the run was traced.
	StageNanos map[string]int64 `json:"stage_nanos,omitempty"`
	// TraceRef points at the run's trace artifact (a -trace file path),
	// when one exists.
	TraceRef string `json:"trace_ref,omitempty"`
	// Snapshots is the full labeled series from the run's
	// gpuchar/metrics/v1 document: per-demo aggregates (frame="all")
	// followed by per-frame snapshots.
	Snapshots []metrics.Snapshot `json:"-"`
}

// FinalSnapshot merges the run's whole-run aggregates (every
// frame="all" snapshot, API and simulated alike) into the single
// snapshot comparisons diff. It is recomputed per call from the
// immutable series, so it can never go stale.
func (r *Run) FinalSnapshot() metrics.Snapshot {
	if r == nil {
		return metrics.Snapshot{}
	}
	var out metrics.Snapshot
	for _, s := range r.Snapshots {
		// Per-pass (pass=<target>) snapshots are already folded into
		// their demo's aggregate; merging them again would double count.
		if s.Label(LabelFrame) == LabelAllFrames && s.Label(LabelPass) == "" {
			out.Merge(s)
		}
	}
	return out
}

// SimAggregate returns the demo's whole-run simulated aggregate
// (frame="all", source="sim"), the snapshot the derived comparative
// metrics are computed from.
func (r *Run) SimAggregate(demo string) (metrics.Snapshot, bool) {
	if r == nil {
		return metrics.Snapshot{}, false
	}
	for _, s := range r.Snapshots {
		if s.Label(LabelDemo) == demo &&
			s.Label(LabelFrame) == LabelAllFrames &&
			s.Label(LabelSource) == SourceSim &&
			s.Label(LabelPass) == "" {
			return s, true
		}
	}
	return metrics.Snapshot{}, false
}

// demoOrder lists the distinct demo labels in series order.
func (r *Run) demoOrder() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range r.Snapshots {
		d := s.Label(LabelDemo)
		if d != "" && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// DefaultMaxRuns bounds the registry when the caller passes no limit:
// enough for a day of interactive sweeps, small enough that a
// long-lived daemon's memory stays flat.
const DefaultMaxRuns = 128

// Registry is the bounded run store behind the explorer API. All
// methods are safe for concurrent use and nil-safe, so recording code
// calls them unconditionally.
type Registry struct {
	mu      sync.Mutex
	max     int
	runs    []*Run // insertion order, oldest first
	byID    map[string]*Run
	seq     int
	evicted int64

	hub *Hub
}

// NewRegistry creates a registry retaining at most maxRuns completed
// runs (<= 0 takes DefaultMaxRuns); recording past the bound evicts the
// oldest.
func NewRegistry(maxRuns int) *Registry {
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	return &Registry{
		max:  maxRuns,
		byID: map[string]*Run{},
		hub:  NewHub(),
	}
}

// Events returns the registry's SSE hub (nil for a nil registry).
func (g *Registry) Events() *Hub {
	if g == nil {
		return nil
	}
	return g.hub
}

// Publish forwards an event to the hub; a nil registry drops it.
func (g *Registry) Publish(e Event) {
	if g == nil {
		return
	}
	g.hub.Publish(e)
}

// Close terminates the event hub: every subscriber's channel closes, so
// active SSE streams end and an obsv server Shutdown can drain them.
// The recorded runs stay readable.
func (g *Registry) Close() {
	if g == nil {
		return
	}
	g.hub.Close()
}

// Record stores a completed run, evicting the oldest past the retention
// bound, and publishes a "run" event. Empty IDs are assigned
// ("r0001", ...); a re-recorded ID replaces the prior run in place. The
// stored copy is returned.
func (g *Registry) Record(run Run) *Run {
	if g == nil {
		return nil
	}
	if run.Finished.IsZero() {
		run.Finished = time.Now()
	}
	if run.Started.IsZero() {
		run.Started = run.Finished
	}
	if len(run.Demos) == 0 {
		run.Demos = run.demoOrder()
	}
	if run.Kind == "" {
		run.Kind = KindJob
	}
	g.mu.Lock()
	if run.ID == "" {
		g.seq++
		run.ID = fmt.Sprintf("r%04d", g.seq)
	}
	r := &run
	if prev, ok := g.byID[run.ID]; ok {
		for i, p := range g.runs {
			if p == prev {
				g.runs[i] = r
				break
			}
		}
	} else {
		g.runs = append(g.runs, r)
		for len(g.runs) > g.max {
			old := g.runs[0]
			g.runs = g.runs[1:]
			delete(g.byID, old.ID)
			g.evicted++
		}
	}
	g.byID[run.ID] = r
	g.mu.Unlock()

	g.hub.Publish(Event{Type: EventRun, Run: r.ID, Demo: "", State: r.Kind})
	return r
}

// RecordResult parses a gpuchar/metrics/v1 result document into the
// run's snapshot series and records it. A malformed document records
// nothing and returns the parse error — recording is observational and
// must never fail the run that produced the document.
func (g *Registry) RecordResult(run Run, doc []byte) (*Run, error) {
	if g == nil {
		return nil, nil
	}
	snaps, err := metrics.ReadJSON(bytes.NewReader(doc))
	if err != nil {
		return nil, fmt.Errorf("explorer: record %s: %w", run.ID, err)
	}
	run.Snapshots = snaps
	return g.Record(run), nil
}

// Get returns a run by exact ID.
func (g *Registry) Get(id string) (*Run, bool) {
	if g == nil {
		return nil, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.byID[id]
	return r, ok
}

// Resolve finds the run a compare query names: an exact run ID, else
// the newest run under a config name, else the newest run whose config
// digest has the query as a prefix (at least 8 hex chars).
func (g *Registry) Resolve(q string) (*Run, bool) {
	if g == nil || q == "" {
		return nil, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if r, ok := g.byID[q]; ok {
		return r, true
	}
	for i := len(g.runs) - 1; i >= 0; i-- {
		if g.runs[i].Config == q {
			return g.runs[i], true
		}
	}
	if len(q) >= 8 {
		for i := len(g.runs) - 1; i >= 0; i-- {
			if d := g.runs[i].ConfigDigest; len(d) >= len(q) && d[:len(q)] == q {
				return g.runs[i], true
			}
		}
	}
	return nil, false
}

// Runs lists the retained runs, oldest first.
func (g *Registry) Runs() []*Run {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Run{}, g.runs...)
}

// Len returns the retained run count.
func (g *Registry) Len() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs)
}

// Evicted returns how many runs retention has dropped.
func (g *Registry) Evicted() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.evicted
}
