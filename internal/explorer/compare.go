package explorer

import (
	"fmt"
	"sort"

	"gpuchar/internal/report"
)

// CompareSchemaID tags the comparison document
// (compare_schema.json gates it in CI).
const CompareSchemaID = "gpuchar/compare/v1"

// Side identifies one run of a comparison.
type Side struct {
	ID           string `json:"id"`
	Kind         string `json:"kind,omitempty"`
	Config       string `json:"config,omitempty"`
	ConfigDigest string `json:"config_digest,omitempty"`
	SimFrames    int    `json:"sim_frames,omitempty"`
}

// label names the side in table headers: config name when known, run ID
// otherwise.
func (s Side) label() string {
	if s.Config != "" && s.Config != "inline" {
		return s.Config
	}
	return s.ID
}

// DeltaRow is one metric compared across the two sides. Delta is b-a
// exactly as metrics.Snapshot.Diff computes it for raw counters; Ratio
// is b/a, omitted when a is zero.
type DeltaRow struct {
	Name  string   `json:"name"`
	A     float64  `json:"a"`
	B     float64  `json:"b"`
	Delta float64  `json:"delta"`
	Ratio *float64 `json:"ratio,omitempty"`
}

// DemoDelta compares the derived metrics of one demo across the sides.
type DemoDelta struct {
	Demo    string     `json:"demo"`
	Metrics []DeltaRow `json:"metrics"`
}

// CompareDoc is the gpuchar/compare/v1 document: a full per-counter
// diff of the runs' final snapshots, plus the derived comparative
// metrics pivoted per demo the way internal/sweep's tables are.
type CompareDoc struct {
	Schema   string      `json:"schema"`
	A        Side        `json:"a"`
	B        Side        `json:"b"`
	Counters []DeltaRow  `json:"counters"`
	Demos    []DemoDelta `json:"demos,omitempty"`
}

// ratioOf returns b/a as an optional ratio.
func ratioOf(a, b float64) *float64 {
	if a == 0 {
		return nil
	}
	r := b / a
	return &r
}

// side summarizes a run for the document header.
func side(r *Run) Side {
	return Side{
		ID:           r.ID,
		Kind:         r.Kind,
		Config:       r.Config,
		ConfigDigest: r.ConfigDigest,
		SimFrames:    r.SimFrames,
	}
}

// Compare builds the comparison document for two recorded runs. The
// counter section is driven by b.FinalSnapshot().Diff(a.FinalSnapshot())
// so every delta is exactly the metrics.Snapshot.Diff value — the
// acceptance contract the tests pin. The demo section derives the
// comparative metrics (DeriveMetrics) per demo present on either side.
func Compare(a, b *Run) *CompareDoc {
	doc := &CompareDoc{
		Schema: CompareSchemaID,
		A:      side(a),
		B:      side(b),
	}

	fa, fb := a.FinalSnapshot(), b.FinalSnapshot()
	diff := fb.Diff(fa)
	doc.Counters = make([]DeltaRow, 0, diff.Len())
	for _, c := range diff.Counters() {
		av, bv := 0.0, 0.0
		if ca, ok := fa.GetFloat(c.Name); ok {
			av = ca
		}
		if cb, ok := fb.GetFloat(c.Name); ok {
			bv = cb
		}
		doc.Counters = append(doc.Counters, DeltaRow{
			Name:  c.Name,
			A:     av,
			B:     bv,
			Delta: c.Value(),
			Ratio: ratioOf(av, bv),
		})
	}

	// Demo section: union of both sides' demos, a-side order first.
	demoSeen := map[string]bool{}
	var demos []string
	for _, r := range []*Run{a, b} {
		for _, d := range r.demoOrder() {
			if !demoSeen[d] {
				demoSeen[d] = true
				demos = append(demos, d)
			}
		}
	}
	for _, demo := range demos {
		sa, oka := a.SimAggregate(demo)
		sb, okb := b.SimAggregate(demo)
		if !oka && !okb {
			continue
		}
		ma := map[string]float64{}
		mb := map[string]float64{}
		if oka {
			ma = DeriveMetrics(sa, a.SimFrames)
		}
		if okb {
			mb = DeriveMetrics(sb, b.SimFrames)
		}
		var rows []DeltaRow
		for _, name := range MetricNames {
			av, hasA := ma[name]
			bv, hasB := mb[name]
			if !hasA && !hasB {
				continue
			}
			rows = append(rows, DeltaRow{
				Name:  name,
				A:     av,
				B:     bv,
				Delta: bv - av,
				Ratio: ratioOf(av, bv),
			})
		}
		if len(rows) > 0 {
			doc.Demos = append(doc.Demos, DemoDelta{Demo: demo, Metrics: rows})
		}
	}
	return doc
}

// topCounterDeltas is how many raw-counter rows the CLI table shows.
const topCounterDeltas = 16

// Tables renders the document the way sweep pivots render: one table
// per derived metric (demo rows × a/b/delta columns), then the largest
// raw-counter movements. The same renderer backs `characterize
// -sweep-diff` and `gpuchard client compare`.
func (d *CompareDoc) Tables() []*report.Table {
	aLab, bLab := d.A.label(), d.B.label()
	if aLab == bLab {
		aLab, bLab = "a:"+aLab, "b:"+bLab
	}
	var out []*report.Table

	byMetric := map[string]map[string]DeltaRow{}
	for _, dd := range d.Demos {
		for _, row := range dd.Metrics {
			if byMetric[row.Name] == nil {
				byMetric[row.Name] = map[string]DeltaRow{}
			}
			byMetric[row.Name][dd.Demo] = row
		}
	}
	for _, metric := range MetricNames {
		perDemo, ok := byMetric[metric]
		if !ok {
			continue
		}
		t := &report.Table{
			ID:      "compare/" + metric,
			Title:   fmt.Sprintf("%s: %s vs %s", metric, aLab, bLab),
			Headers: []string{"Game/Timedemo", aLab, bLab, "delta"},
		}
		for _, dd := range d.Demos {
			row, ok := perDemo[dd.Demo]
			if !ok {
				continue
			}
			t.AddRow(dd.Demo, report.F(row.A), report.F(row.B), report.F(row.Delta))
		}
		out = append(out, t)
	}

	moved := make([]DeltaRow, 0, len(d.Counters))
	for _, row := range d.Counters {
		if row.Delta != 0 {
			moved = append(moved, row)
		}
	}
	sort.Slice(moved, func(i, j int) bool {
		di, dj := moved[i].Delta, moved[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return moved[i].Name < moved[j].Name
	})
	if len(moved) > topCounterDeltas {
		moved = moved[:topCounterDeltas]
	}
	t := &report.Table{
		ID:      "compare/counters",
		Title:   fmt.Sprintf("largest counter deltas: %s vs %s", aLab, bLab),
		Headers: []string{"Counter", aLab, bLab, "delta", "ratio"},
		Notes:   []string{fmt.Sprintf("top %d of %d differing counters by |delta|", len(moved), countMoved(d.Counters))},
	}
	for _, row := range moved {
		ratio := ""
		if row.Ratio != nil {
			ratio = report.F(*row.Ratio)
		}
		t.AddRow(row.Name, report.F(row.A), report.F(row.B), report.F(row.Delta), ratio)
	}
	out = append(out, t)
	return out
}

// countMoved counts rows with a nonzero delta.
func countMoved(rows []DeltaRow) int {
	n := 0
	for _, r := range rows {
		if r.Delta != 0 {
			n++
		}
	}
	return n
}
