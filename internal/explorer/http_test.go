package explorer

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuchar/internal/obsv"
)

// testServer mounts a registry on an httptest server.
func testServer(t *testing.T, g *Registry) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	g.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestResponseHeadersPinned pins the exact Content-Type (with charset)
// and Cache-Control values of every explorer endpoint, success and
// error paths alike.
func TestResponseHeadersPinned(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()
	g.Record(Run{ID: "r1"})
	srv := testServer(t, g)

	cases := []struct {
		path        string
		status      int
		contentType string
	}{
		{"/api/runs", http.StatusOK, "application/json; charset=utf-8"},
		{"/api/runs/r1", http.StatusOK, "application/json; charset=utf-8"},
		{"/api/runs/nope", http.StatusNotFound, "application/json; charset=utf-8"},
		{"/api/compare", http.StatusBadRequest, "application/json; charset=utf-8"},
		{"/", http.StatusOK, "text/html; charset=utf-8"},
		{"/no/such/page", http.StatusNotFound, "application/json; charset=utf-8"},
	}
	for _, tc := range cases {
		resp, _ := get(t, srv.URL+tc.path)
		if resp.StatusCode != tc.status {
			t.Errorf("%s status = %d, want %d", tc.path, resp.StatusCode, tc.status)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.contentType {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, ct, tc.contentType)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", tc.path, cc)
		}
	}

	// The SSE stream: headers pinned, then hang up.
	resp, err := http.Get(srv.URL + "/api/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream; charset=utf-8" {
		t.Errorf("/api/events Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("/api/events Cache-Control = %q", cc)
	}
	resp.Body.Close()
}

func TestAPIRunsAndDetail(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()
	g.Record(Run{
		ID: "r1", Kind: KindJob, Config: "r520", ConfigDigest: "aaaa1111aaaa1111",
		Experiments: []string{"table14"}, SimFrames: 2,
		StageNanos: map[string]int64{"fragment": 123},
		Snapshots:  simRun("", "", "", map[string]int64{"zst/quads_in": 7}).Snapshots,
	})
	srv := testServer(t, g)

	resp, body := get(t, srv.URL+"/api/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Schema  string            `json:"schema"`
		Evicted int64             `json:"evicted"`
		Events  HubStats          `json:"events"`
		Runs    []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if list.Schema != RunsSchemaID {
		t.Errorf("schema = %q, want %q", list.Schema, RunsSchemaID)
	}
	if len(list.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(list.Runs))
	}

	_, body = get(t, srv.URL+"/api/runs/r1")
	var detail struct {
		Schema string                      `json:"schema"`
		Run    struct{ ID, Config string } `json:"run"`
		Spans  map[string]int64            `json:"spans"`
		Final  struct {
			Counters map[string]float64 `json:"counters"`
		} `json:"final"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Schema != RunSchemaID || detail.Run.ID != "r1" || detail.Run.Config != "r520" {
		t.Errorf("detail = %+v", detail)
	}
	if detail.Spans["fragment"] != 123 {
		t.Errorf("spans = %v", detail.Spans)
	}
	if detail.Final.Counters["zst/quads_in"] != 7 {
		t.Errorf("final counters = %v", detail.Final.Counters)
	}
}

func TestAPICompare(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()
	a := simRun("ra", "r520", "aaaa1111aaaa1111", map[string]int64{"zst/quads_in": 100, "zst/quads_killed_hz": 20})
	b := simRun("rb", "no-hz", "bbbb2222bbbb2222", map[string]int64{"zst/quads_in": 100, "zst/quads_killed_hz": 0})
	g.Record(*a)
	g.Record(*b)
	srv := testServer(t, g)

	if resp, _ := get(t, srv.URL+"/api/compare?a=ra"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing b= -> %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/api/compare?a=ra&b=missing"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown b= -> %d, want 404", resp.StatusCode)
	}

	// Resolution works by ID, config name and digest prefix alike.
	for _, q := range []string{"a=ra&b=rb", "a=r520&b=no-hz", "a=aaaa1111&b=bbbb2222"} {
		resp, body := get(t, srv.URL+"/api/compare?"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compare?%s -> %d: %s", q, resp.StatusCode, body)
		}
		var doc CompareDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		if doc.Schema != CompareSchemaID {
			t.Errorf("schema = %q", doc.Schema)
		}
		if doc.A.ID != "ra" || doc.B.ID != "rb" {
			t.Errorf("compare?%s sides = %s / %s", q, doc.A.ID, doc.B.ID)
		}
		// The served deltas are the Snapshot.Diff values.
		diff := b.FinalSnapshot().Diff(a.FinalSnapshot())
		for i, c := range diff.Counters() {
			if doc.Counters[i].Name != c.Name || doc.Counters[i].Delta != c.Value() {
				t.Errorf("counter %d = %+v, want %s %v", i, doc.Counters[i], c.Name, c.Value())
			}
		}
	}
}

func TestUIServedAtRoot(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()
	srv := testServer(t, g)
	resp, body := get(t, srv.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "gpuchar explorer") {
		t.Error("UI page missing its title")
	}
	if resp, _ := get(t, srv.URL+"/favicon.ico"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("non-root path -> %d, want 404", resp.StatusCode)
	}
}

// sseClient reads SSE frames off a response body.
type sseClient struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func dialSSE(t *testing.T, url string) *sseClient {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body)}
}

// next returns the next (event, data) frame, or ok=false at stream end.
func (c *sseClient) next() (event, data string, ok bool) {
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			return event, data, true
		}
	}
	return "", "", false
}

func TestSSEStreamDeliversEvents(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()
	srv := testServer(t, g)

	c := dialSSE(t, srv.URL+"/api/events")
	ev, _, ok := c.next()
	if !ok || ev != EventHello {
		t.Fatalf("first frame = %q ok=%v, want hello", ev, ok)
	}

	g.Publish(Event{Type: EventProgress, Run: "j1", FramesDone: 3, FramesTotal: 10})
	ev, data, ok := c.next()
	if !ok || ev != EventProgress {
		t.Fatalf("frame = %q ok=%v, want progress", ev, ok)
	}
	var e Event
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		t.Fatal(err)
	}
	if e.Run != "j1" || e.FramesDone != 3 || e.FramesTotal != 10 || e.Seq == 0 {
		t.Errorf("progress event = %+v", e)
	}

	g.Publish(FrameEvent("j1", "Doom3/trdemo2", 1,
		snap(map[string]int64{"zst/quads_in": 5, "zst/zero": 0})))
	ev, data, ok = c.next()
	if !ok || ev != EventFrame {
		t.Fatalf("frame = %q, want frame event", ev)
	}
	if err := json.Unmarshal([]byte(data), &e); err != nil {
		t.Fatal(err)
	}
	if e.Counters["zst/quads_in"] != 5 {
		t.Errorf("frame counters = %v", e.Counters)
	}
	if _, has := e.Counters["zst/zero"]; has {
		t.Error("zero-delta counter not filtered from the frame event")
	}
}

// TestShutdownDrainsActiveStreams pins the shutdown ordering contract:
// an obsv server's graceful Shutdown waits on in-flight requests, and an
// SSE stream is one — closing the registry first ends the stream, so
// Shutdown completes within its budget.
func TestShutdownDrainsActiveStreams(t *testing.T) {
	g := NewRegistry(0)
	srv, err := obsv.StartServer("127.0.0.1:0", obsv.ServerSources{
		Mount: func(mux *http.ServeMux) { g.Mount(mux) },
	})
	if err != nil {
		t.Fatal(err)
	}

	c := dialSSE(t, fmt.Sprintf("http://%s/api/events", srv.Addr))
	if ev, _, ok := c.next(); !ok || ev != EventHello {
		t.Fatalf("no hello on the stream (%q, %v)", ev, ok)
	}
	g.Publish(Event{Type: EventProgress, FramesDone: 1})
	if ev, _, ok := c.next(); !ok || ev != EventProgress {
		t.Fatalf("no progress on the stream (%q, %v)", ev, ok)
	}

	// Close the hub, then shut down: the drain must finish well inside
	// the deadline because the stream handler returns on hub close.
	g.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain the SSE stream: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v", elapsed)
	}
	// The client sees a clean end of stream.
	if ev, _, ok := c.next(); ok {
		t.Errorf("unexpected frame after close: %q", ev)
	}
}
