package explorer

import (
	"sync"
	"testing"
	"time"
)

func TestHubPublishOrderAndSeq(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(8)
	defer h.Unsubscribe(sub)

	for i := 0; i < 3; i++ {
		h.Publish(Event{Type: EventProgress, Frame: i})
	}
	for i := 0; i < 3; i++ {
		e := <-sub.C
		if e.Frame != i {
			t.Errorf("event %d frame = %d", i, e.Frame)
		}
		if e.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
	}
	st := h.Stats()
	if st.Published != 3 || st.Dropped != 0 || st.Subscribers != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHubSlowConsumerDrops pins the never-block contract: a full
// subscriber buffer loses events and advances the drop counters, the
// same accounting pattern as the tracer's dropped_events.
func TestHubSlowConsumerDrops(t *testing.T) {
	h := NewHub()
	defer h.Close()
	slow := h.Subscribe(1)
	defer h.Unsubscribe(slow)
	fast := h.Subscribe(16)
	defer h.Unsubscribe(fast)

	for i := 0; i < 5; i++ {
		h.Publish(Event{Type: EventFrame, Frame: i})
	}
	if got := slow.Dropped(); got != 4 {
		t.Errorf("slow subscriber dropped %d, want 4", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", got)
	}
	if st := h.Stats(); st.Dropped != 4 {
		t.Errorf("hub dropped = %d, want 4", st.Dropped)
	}
	// The slow subscriber still holds the first event; nothing blocked.
	if e := <-slow.C; e.Frame != 0 {
		t.Errorf("slow subscriber buffered frame %d, want 0", e.Frame)
	}
}

func TestHubCloseTerminatesStreams(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(4)
	h.Publish(Event{Type: EventProgress})
	h.Close()
	h.Close() // idempotent

	// Drain: the buffered event, then the close.
	if e, open := <-sub.C; !open || e.Type != EventProgress {
		t.Errorf("buffered event lost on close: %+v open=%v", e, open)
	}
	if _, open := <-sub.C; open {
		t.Error("channel still open after hub close")
	}

	// Post-close operations are safe no-ops.
	h.Publish(Event{Type: EventProgress})
	h.Unsubscribe(sub)
	late := h.Subscribe(4)
	if _, open := <-late.C; open {
		t.Error("post-close subscription channel not closed")
	}

	var nilHub *Hub
	nilHub.Publish(Event{})
	nilHub.Close()
	nilHub.Unsubscribe(nil)
	if s := nilHub.Subscribe(1); s == nil {
		t.Error("nil hub Subscribe returned nil")
	} else if _, open := <-s.C; open {
		t.Error("nil hub subscription channel not closed")
	}
	if st := nilHub.Stats(); st != (HubStats{}) {
		t.Errorf("nil hub stats = %+v", st)
	}
}

// TestHubConcurrentJoinLeave floods the hub from several publishers
// while subscribers churn — the race-detector workout for the SSE
// fan-out. Every event a live subscriber observes must arrive in seq
// order, and received+dropped must never exceed published.
func TestHubConcurrentJoinLeave(t *testing.T) {
	h := NewHub()
	const publishers = 4
	const perPublisher = 500
	const churners = 8

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				h.Publish(Event{Type: EventFrame, Frame: i})
			}
		}()
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub := h.Subscribe(4)
				var last int64
				for j := 0; j < 16; j++ {
					select {
					case e, open := <-sub.C:
						if !open {
							t.Error("channel closed while hub is live")
							return
						}
						if e.Seq <= last {
							t.Errorf("seq went backwards: %d after %d", e.Seq, last)
							return
						}
						last = e.Seq
					case <-time.After(time.Millisecond):
					}
				}
				h.Unsubscribe(sub)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Publishers finish on their own; then release the churners.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("hub deadlocked under concurrent join/leave")
	}

	st := h.Stats()
	if st.Published != publishers*perPublisher {
		t.Errorf("published = %d, want %d", st.Published, publishers*perPublisher)
	}
	h.Close()
}

// TestHubCloseDuringPublish races Close against a publish flood: no
// panic (send on closed channel) and no deadlock.
func TestHubCloseDuringPublish(t *testing.T) {
	for round := 0; round < 20; round++ {
		h := NewHub()
		var subs []*Subscriber
		for i := 0; i < 4; i++ {
			subs = append(subs, h.Subscribe(1))
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Publish(Event{Type: EventFrame, Frame: i})
			}
		}()
		go func() {
			defer wg.Done()
			h.Close()
		}()
		wg.Wait()
		for _, sub := range subs {
			for range sub.C { // must drain to close without hanging
			}
		}
	}
}
