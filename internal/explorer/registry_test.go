package explorer

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"time"

	"gpuchar/internal/metrics"
)

// snap builds a labeled snapshot from literal counter values, the way a
// parsed gpuchar/metrics/v1 document would carry them.
func snap(vals map[string]int64, labels ...string) metrics.Snapshot {
	reg := metrics.NewRegistry()
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	store := make([]int64, len(names))
	for i, name := range names {
		store[i] = vals[name]
		reg.Bind(name, &store[i])
	}
	return reg.Snapshot().WithLabels(labels...)
}

// simRun builds a one-demo run whose aggregate carries the given
// counters.
func simRun(id, config, digest string, vals map[string]int64) *Run {
	return &Run{
		ID:           id,
		Kind:         KindJob,
		Config:       config,
		ConfigDigest: digest,
		SimFrames:    2,
		Snapshots: []metrics.Snapshot{
			snap(vals, LabelDemo, "Doom3/trdemo2", LabelSource, SourceSim, LabelFrame, LabelAllFrames),
		},
	}
}

func TestRecordDefaults(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()

	r := g.Record(Run{Snapshots: []metrics.Snapshot{
		snap(map[string]int64{"a/x": 1}, LabelDemo, "Doom3/trdemo2", LabelFrame, LabelAllFrames),
		snap(map[string]int64{"a/x": 1}, LabelDemo, "Quake4/demo4", LabelFrame, LabelAllFrames),
	}})
	if r.ID != "r0001" {
		t.Errorf("assigned ID = %q, want r0001", r.ID)
	}
	if r.Kind != KindJob {
		t.Errorf("default kind = %q, want %q", r.Kind, KindJob)
	}
	if r.Finished.IsZero() || !r.Started.Equal(r.Finished) {
		t.Errorf("timestamps not defaulted: started %v finished %v", r.Started, r.Finished)
	}
	if want := []string{"Doom3/trdemo2", "Quake4/demo4"}; len(r.Demos) != 2 ||
		r.Demos[0] != want[0] || r.Demos[1] != want[1] {
		t.Errorf("demos = %v, want %v", r.Demos, want)
	}
	if r2 := g.Record(Run{}); r2.ID != "r0002" {
		t.Errorf("second assigned ID = %q, want r0002", r2.ID)
	}
}

func TestRecordRetention(t *testing.T) {
	g := NewRegistry(2)
	defer g.Close()

	g.Record(Run{ID: "a"})
	g.Record(Run{ID: "b"})
	g.Record(Run{ID: "c"})
	if g.Len() != 2 {
		t.Fatalf("len = %d, want 2", g.Len())
	}
	if g.Evicted() != 1 {
		t.Errorf("evicted = %d, want 1", g.Evicted())
	}
	if _, ok := g.Get("a"); ok {
		t.Error("oldest run survived past the retention bound")
	}
	runs := g.Runs()
	if len(runs) != 2 || runs[0].ID != "b" || runs[1].ID != "c" {
		t.Errorf("runs = %v, want [b c]", []string{runs[0].ID, runs[1].ID})
	}

	// Re-recording an ID replaces in place: no growth, no eviction.
	g.Record(Run{ID: "b", Kind: KindConfig})
	if g.Len() != 2 || g.Evicted() != 1 {
		t.Errorf("after replace: len %d evicted %d, want 2, 1", g.Len(), g.Evicted())
	}
	if r, _ := g.Get("b"); r.Kind != KindConfig {
		t.Errorf("replaced run kind = %q, want %q", r.Kind, KindConfig)
	}
}

func TestRecordResult(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()

	var doc bytes.Buffer
	if err := metrics.WriteJSON(&doc, []metrics.Snapshot{
		snap(map[string]int64{"zst/quads_in": 100},
			LabelDemo, "Doom3/trdemo2", LabelSource, SourceSim, LabelFrame, LabelAllFrames),
	}); err != nil {
		t.Fatal(err)
	}
	r, err := g.RecordResult(Run{ID: "j1"}, doc.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshots) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(r.Snapshots))
	}
	if v, _ := r.FinalSnapshot().Get("zst/quads_in"); v != 100 {
		t.Errorf("parsed counter = %d, want 100", v)
	}

	// A malformed document records nothing and reports the parse error.
	if _, err := g.RecordResult(Run{ID: "bad"}, []byte("{not json")); err == nil {
		t.Error("malformed document recorded without error")
	}
	if _, ok := g.Get("bad"); ok {
		t.Error("malformed document left a run behind")
	}
}

func TestResolve(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()

	g.Record(Run{ID: "r1", Config: "r520", ConfigDigest: strings.Repeat("ab", 16)})
	g.Record(Run{ID: "r2", Config: "r520", ConfigDigest: strings.Repeat("ab", 16)})
	g.Record(Run{ID: "r3", Config: "no-hz", ConfigDigest: strings.Repeat("cd", 16)})

	if r, ok := g.Resolve("r1"); !ok || r.ID != "r1" {
		t.Errorf("Resolve(r1) = %v, %v", r, ok)
	}
	// Config name resolves to the newest run under it.
	if r, ok := g.Resolve("r520"); !ok || r.ID != "r2" {
		t.Errorf("Resolve(r520) -> %+v, want newest (r2)", r)
	}
	// Digest prefixes need at least 8 characters.
	if r, ok := g.Resolve("cdcdcdcd"); !ok || r.ID != "r3" {
		t.Errorf("Resolve(cdcdcdcd) -> %+v, want r3", r)
	}
	if _, ok := g.Resolve("cdcd"); ok {
		t.Error("4-char digest prefix resolved; want at least 8")
	}
	if _, ok := g.Resolve("nope"); ok {
		t.Error("unknown query resolved")
	}
	if _, ok := g.Resolve(""); ok {
		t.Error("empty query resolved")
	}
}

func TestFinalSnapshotMergesAllFrameAggregates(t *testing.T) {
	r := &Run{Snapshots: []metrics.Snapshot{
		snap(map[string]int64{"a/x": 3}, LabelDemo, "d1", LabelFrame, LabelAllFrames),
		snap(map[string]int64{"a/x": 4}, LabelDemo, "d2", LabelFrame, LabelAllFrames),
		// Per-frame snapshots must not be double-counted.
		snap(map[string]int64{"a/x": 100}, LabelDemo, "d1", LabelFrame, "1"),
	}}
	if v, _ := r.FinalSnapshot().Get("a/x"); v != 7 {
		t.Errorf("final a/x = %d, want 7 (aggregates only)", v)
	}
}

func TestSimAggregate(t *testing.T) {
	r := &Run{Snapshots: []metrics.Snapshot{
		snap(map[string]int64{"a/x": 1}, LabelDemo, "d1", LabelSource, SourceAPI, LabelFrame, LabelAllFrames),
		snap(map[string]int64{"a/x": 2}, LabelDemo, "d1", LabelSource, SourceSim, LabelFrame, LabelAllFrames),
	}}
	s, ok := r.SimAggregate("d1")
	if !ok {
		t.Fatal("sim aggregate not found")
	}
	if v, _ := s.Get("a/x"); v != 2 {
		t.Errorf("sim aggregate a/x = %d, want 2 (not the api aggregate)", v)
	}
	if _, ok := r.SimAggregate("d2"); ok {
		t.Error("aggregate for absent demo found")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var g *Registry
	g.Publish(Event{Type: EventProgress})
	g.Close()
	if r := g.Record(Run{ID: "x"}); r != nil {
		t.Error("nil registry recorded a run")
	}
	if _, err := g.RecordResult(Run{}, nil); err != nil {
		t.Errorf("nil RecordResult err = %v", err)
	}
	if _, ok := g.Get("x"); ok {
		t.Error("nil Get found a run")
	}
	if _, ok := g.Resolve("x"); ok {
		t.Error("nil Resolve found a run")
	}
	if g.Runs() != nil || g.Len() != 0 || g.Evicted() != 0 || g.Events() != nil {
		t.Error("nil registry accessors not zero")
	}
	var r *Run
	if r.FinalSnapshot().Len() != 0 {
		t.Error("nil run FinalSnapshot not empty")
	}
	if _, ok := r.SimAggregate("d"); ok {
		t.Error("nil run SimAggregate found something")
	}
}

func TestRecordPublishesRunEvent(t *testing.T) {
	g := NewRegistry(0)
	defer g.Close()
	sub := g.Events().Subscribe(4)
	defer g.Events().Unsubscribe(sub)

	g.Record(Run{ID: "r1", Kind: KindExperiment})
	select {
	case e := <-sub.C:
		if e.Type != EventRun || e.Run != "r1" || e.State != KindExperiment {
			t.Errorf("run event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no run event published")
	}
}
