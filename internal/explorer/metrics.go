package explorer

import "gpuchar/internal/metrics"

// MetricNames are the derived comparative metrics, in output order.
// Each is computed from a run's frame="all" source="sim" snapshot;
// metrics whose denominators were never exercised are omitted from the
// result rather than reported as zero. internal/sweep's pivot tables
// and the compare document share this one definition.
var MetricNames = []string{
	"vcache_hit_pct",
	"zcache_hit_pct",
	"texl0_hit_pct",
	"texl1_hit_pct",
	"colorcache_hit_pct",
	"hz_kill_pct",
	"zst_kill_pct",
	"mem_mb_per_frame",
}

// hitPct derives a hit percentage from a cache's hit/miss counters,
// reporting false when the cache was never accessed.
func hitPct(s metrics.Snapshot, prefix string) (float64, bool) {
	h, _ := s.Get(prefix + "/hits")
	m, _ := s.Get(prefix + "/misses")
	if h+m == 0 {
		return 0, false
	}
	return 100 * float64(h) / float64(h+m), true
}

// memSlugs are the memory controller's client counter segments.
var memSlugs = []string{"vertex", "zstencil", "texture", "color", "dac", "cp"}

// hitPctPrefixes maps each derived cache metric to its counter prefix.
var hitPctPrefixes = map[string]string{
	"vcache_hit_pct":     "cache/vertex",
	"zcache_hit_pct":     "cache/z",
	"texl0_hit_pct":      "cache/tex_l0",
	"texl1_hit_pct":      "cache/tex_l1",
	"colorcache_hit_pct": "cache/color",
}

// DeriveMetrics computes the comparative metrics of one demo's
// aggregate simulated snapshot: cache hit rates, HZ/Z-kill rates, and
// memory traffic normalized per simulated frame. Never-exercised
// denominators leave their metric out of the map.
func DeriveMetrics(s metrics.Snapshot, simFrames int) map[string]float64 {
	out := map[string]float64{}
	for name, prefix := range hitPctPrefixes {
		if v, ok := hitPct(s, prefix); ok {
			out[name] = v
		}
	}
	if in, _ := s.Get("zst/quads_in"); in > 0 {
		hz, _ := s.Get("zst/quads_killed_hz")
		z, _ := s.Get("zst/quads_killed")
		out["hz_kill_pct"] = 100 * float64(hz) / float64(in)
		out["zst_kill_pct"] = 100 * float64(z) / float64(in)
	}
	var traffic int64
	for _, slug := range memSlugs {
		rd, _ := s.Get("mem/" + slug + "/read_bytes")
		wr, _ := s.Get("mem/" + slug + "/write_bytes")
		traffic += rd + wr
	}
	if simFrames < 1 {
		simFrames = 1
	}
	out["mem_mb_per_frame"] = float64(traffic) / float64(simFrames) / (1 << 20)
	return out
}
