package explorer_test

import (
	"testing"

	"gpuchar/internal/core"
	"gpuchar/internal/explorer"
)

// TestLabelVocabularyMatchesCore pins explorer's redeclared snapshot
// label vocabulary to core's. The constants are duplicated so the
// dependency arrow stays serve -> explorer (never explorer -> core);
// this test is what keeps the copies honest.
func TestLabelVocabularyMatchesCore(t *testing.T) {
	pairs := []struct {
		name      string
		got, want string
	}{
		{"LabelDemo", explorer.LabelDemo, core.LabelDemo},
		{"LabelFrame", explorer.LabelFrame, core.LabelFrame},
		{"LabelSource", explorer.LabelSource, core.LabelSource},
		{"SourceAPI", explorer.SourceAPI, core.SourceAPI},
		{"SourceSim", explorer.SourceSim, core.SourceSim},
		{"LabelAllFrames", explorer.LabelAllFrames, core.LabelAllFrames},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("explorer.%s = %q, core's is %q", p.name, p.got, p.want)
		}
	}
}
