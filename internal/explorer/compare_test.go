package explorer

import (
	"math"
	"testing"
)

// TestCompareCountersPinnedToSnapshotDiff is the acceptance contract:
// every per-counter delta in the compare document equals the
// metrics.Snapshot.Diff of the two runs' final snapshots, exactly.
func TestCompareCountersPinnedToSnapshotDiff(t *testing.T) {
	a := simRun("ra", "r520", "aaaa1111aaaa1111", map[string]int64{
		"zst/quads_in":        1000,
		"zst/quads_killed_hz": 200,
		"cache/z/hits":        900,
		"cache/z/misses":      100,
		"only/in_a":           7,
	})
	b := simRun("rb", "no-hz", "bbbb2222bbbb2222", map[string]int64{
		"zst/quads_in":        1000,
		"zst/quads_killed_hz": 0,
		"cache/z/hits":        850,
		"cache/z/misses":      150,
		"only/in_b":           3,
	})

	doc := Compare(a, b)
	if doc.Schema != CompareSchemaID {
		t.Errorf("schema = %q, want %q", doc.Schema, CompareSchemaID)
	}
	if doc.A.ID != "ra" || doc.B.ID != "rb" || doc.A.ConfigDigest == doc.B.ConfigDigest {
		t.Errorf("sides = %+v / %+v", doc.A, doc.B)
	}

	fa, fb := a.FinalSnapshot(), b.FinalSnapshot()
	diff := fb.Diff(fa)
	if len(doc.Counters) != diff.Len() {
		t.Fatalf("counter rows = %d, want the full diff (%d)", len(doc.Counters), diff.Len())
	}
	for i, c := range diff.Counters() {
		row := doc.Counters[i]
		if row.Name != c.Name {
			t.Fatalf("row %d = %q, want diff order (%q)", i, row.Name, c.Name)
		}
		if row.Delta != c.Value() {
			t.Errorf("%s delta = %v, want Snapshot.Diff value %v", row.Name, row.Delta, c.Value())
		}
		av, _ := fa.GetFloat(c.Name)
		bv, _ := fb.GetFloat(c.Name)
		if row.A != av || row.B != bv {
			t.Errorf("%s a/b = %v/%v, want %v/%v", row.Name, row.A, row.B, av, bv)
		}
		if av == 0 {
			if row.Ratio != nil {
				t.Errorf("%s ratio = %v with a==0, want omitted", row.Name, *row.Ratio)
			}
		} else if row.Ratio == nil || *row.Ratio != bv/av {
			t.Errorf("%s ratio wrong", row.Name)
		}
	}
}

// TestCompareDemoMetricsMatchDeriveMetrics pins the demo section to the
// shared derivation the sweep pivot tables use.
func TestCompareDemoMetricsMatchDeriveMetrics(t *testing.T) {
	vals := map[string]int64{
		"zst/quads_in":           2000,
		"zst/quads_killed_hz":    300,
		"zst/quads_killed":       700,
		"cache/z/hits":           90,
		"cache/z/misses":         10,
		"mem/texture/read_bytes": 4 << 20,
	}
	a := simRun("ra", "r520", "aaaa1111aaaa1111", vals)
	b := simRun("rb", "no-hz", "bbbb2222bbbb2222", map[string]int64{
		"zst/quads_in":     2000,
		"zst/quads_killed": 900,
		"cache/z/hits":     80,
		"cache/z/misses":   20,
	})

	doc := Compare(a, b)
	if len(doc.Demos) != 1 || doc.Demos[0].Demo != "Doom3/trdemo2" {
		t.Fatalf("demos = %+v", doc.Demos)
	}
	sa, _ := a.SimAggregate("Doom3/trdemo2")
	sb, _ := b.SimAggregate("Doom3/trdemo2")
	ma := DeriveMetrics(sa, a.SimFrames)
	mb := DeriveMetrics(sb, b.SimFrames)
	for _, row := range doc.Demos[0].Metrics {
		if row.A != ma[row.Name] || row.B != mb[row.Name] {
			t.Errorf("%s = %v/%v, want DeriveMetrics %v/%v",
				row.Name, row.A, row.B, ma[row.Name], mb[row.Name])
		}
		if row.Delta != row.B-row.A {
			t.Errorf("%s delta = %v, want b-a", row.Name, row.Delta)
		}
	}
	// hz_kill_pct: a kills 15%, b never kills via HZ but quads_in > 0 so
	// the metric is present on both sides.
	found := false
	for _, row := range doc.Demos[0].Metrics {
		if row.Name == "hz_kill_pct" {
			found = true
			if row.A != 15 || row.B != 0 {
				t.Errorf("hz_kill_pct = %v/%v, want 15/0", row.A, row.B)
			}
		}
	}
	if !found {
		t.Error("hz_kill_pct row missing")
	}
}

func TestDeriveMetricsGuards(t *testing.T) {
	// Never-exercised denominators omit the metric instead of zeroing it.
	s := snap(map[string]int64{"cache/z/hits": 0, "cache/z/misses": 0})
	m := DeriveMetrics(s, 1)
	if _, ok := m["zcache_hit_pct"]; ok {
		t.Error("zcache_hit_pct present with an idle cache")
	}
	if _, ok := m["hz_kill_pct"]; ok {
		t.Error("hz_kill_pct present without quads")
	}
	// mem_mb_per_frame is always present and per-frame normalized.
	s = snap(map[string]int64{"mem/texture/read_bytes": 8 << 20})
	if v := DeriveMetrics(s, 4)["mem_mb_per_frame"]; math.Abs(v-2) > 1e-12 {
		t.Errorf("mem_mb_per_frame = %v, want 2", v)
	}
	// A zero simFrames normalizes by one rather than dividing by zero.
	if v := DeriveMetrics(s, 0)["mem_mb_per_frame"]; math.Abs(v-8) > 1e-12 {
		t.Errorf("mem_mb_per_frame(0 frames) = %v, want 8", v)
	}
}

func TestCompareTables(t *testing.T) {
	a := simRun("ra", "r520", "aaaa1111aaaa1111", map[string]int64{
		"zst/quads_in": 100, "zst/quads_killed_hz": 20, "zst/quads_killed": 30,
	})
	b := simRun("rb", "no-hz", "bbbb2222bbbb2222", map[string]int64{
		"zst/quads_in": 100, "zst/quads_killed_hz": 0, "zst/quads_killed": 60,
	})
	tables := Compare(a, b).Tables()
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	last := tables[len(tables)-1]
	if last.ID != "compare/counters" {
		t.Errorf("last table = %s, want compare/counters", last.ID)
	}
	// Zero-delta counters (quads_in) are filtered from the movement table.
	for _, row := range last.Rows {
		if row[0] == "zst/quads_in" {
			t.Error("zero-delta counter listed among the movers")
		}
	}
	// Metric tables are headed by the config names.
	first := tables[0]
	if first.Headers[1] != "r520" || first.Headers[2] != "no-hz" {
		t.Errorf("headers = %v, want config-name columns", first.Headers)
	}

	// Identical labels are disambiguated rather than duplicated.
	b2 := simRun("rb2", "r520", "aaaa1111aaaa1111", map[string]int64{"zst/quads_in": 100})
	tables = Compare(a, b2).Tables()
	h := tables[len(tables)-1].Headers
	if h[1] == h[2] {
		t.Errorf("equal side labels not disambiguated: %v", h)
	}
}
