package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/url"
	"sync"

	"gpuchar/internal/core"
	"gpuchar/internal/serve"
)

// Runner computes one cell's metrics document. cached reports whether
// the document came from a result cache rather than a fresh simulation.
type Runner interface {
	RunCell(cell Cell) (doc []byte, cached bool, err error)
}

// Options tunes the orchestrator.
type Options struct {
	// Workers bounds concurrent cells; <= 1 runs them serially. Queue
	// runs can go wide (the daemon owns the compute); local runs should
	// match cores.
	Workers int
	// Progress, when non-nil, receives one line per cell transition.
	Progress func(format string, args ...interface{})
}

func (o Options) progress(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Run expands the spec and computes every cell through r, assembling
// rows in grid order regardless of completion order. A failed cell
// fails the sweep (cells are deduped, never optional).
func Run(spec Spec, r Runner, opts Options) (*Result, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	type outcome struct {
		rows []Row
		err  error
	}
	results := make([]outcome, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cell := cells[i]
			opts.progress("cell %d/%d: %s", i+1, len(cells), cell.Config.Name)
			doc, cached, err := r.RunCell(cell)
			if err != nil {
				results[i] = outcome{err: fmt.Errorf("sweep: %s: %w", cell.Config.Name, err)}
				return
			}
			rows, err := spec.CellRows(cell, doc, cached)
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			state := "computed"
			if cached {
				state = "cache hit"
			}
			opts.progress("cell %d/%d: %s done (%s, %d rows)",
				i+1, len(cells), cell.Config.Name, state, len(rows))
			results[i] = outcome{rows: rows}
		}(i)
	}
	wg.Wait()
	res := &Result{Schema: SchemaID, Spec: spec.normalized()}
	for _, o := range results {
		if o.err != nil {
			return nil, o.err
		}
		res.Rows = append(res.Rows, o.rows...)
	}
	return res, nil
}

// LocalRunner computes cells in-process: every cell seeds a fresh
// core.Context with its hardware variant and runs the sweep's
// experiments, exactly like `characterize -config <name> -json`. No
// cache — every cell simulates.
type LocalRunner struct{}

// RunCell implements Runner.
func (LocalRunner) RunCell(cell Cell) ([]byte, bool, error) {
	cctx := core.NewContext()
	if cell.Job.APIFrames > 0 {
		cctx.APIFrames = cell.Job.APIFrames
	}
	if cell.Job.SimFrames > 0 {
		cctx.SimFrames = cell.Job.SimFrames
	}
	if cell.Job.Width > 0 && cell.Job.Height > 0 {
		cctx.W, cctx.H = cell.Job.Width, cell.Job.Height
	}
	cctx.TileWorkers = cell.Job.TileWorkers
	hw := cell.Config
	cctx.HW = &hw
	if _, err := core.RunExperiments(cctx, cell.Job.Experiments); err != nil {
		return nil, false, err
	}
	var buf bytes.Buffer
	if err := cctx.WriteJSON(&buf); err != nil {
		return nil, false, err
	}
	return buf.Bytes(), false, nil
}

// QueueRunner computes cells through a gpuchard daemon's job API. Do is
// the single HTTP primitive it needs — the gpuchard client plugs in its
// retrying transport, tests plug in httptest — so the runner carries no
// base URL, auth or backoff policy of its own.
type QueueRunner struct {
	// Do performs one request and returns the response body, failing on
	// any status other than wantStatus. contentType is empty for GETs.
	Do func(method, path, contentType string, body []byte, wantStatus int) ([]byte, error)
}

// RunCell submits the cell's job, long-polls it to a terminal state,
// and fetches the result document. The daemon's content-addressed cache
// makes a repeated cell a hit (reported via the job view's cache_hit).
func (q QueueRunner) RunCell(cell Cell) ([]byte, bool, error) {
	payload, err := json.Marshal(cell.Job)
	if err != nil {
		return nil, false, err
	}
	body, err := q.Do("POST", "/jobs", "application/json", payload, 202)
	if err != nil {
		return nil, false, fmt.Errorf("submit: %w", err)
	}
	var view serve.JobView
	if err := json.Unmarshal(body, &view); err != nil {
		return nil, false, fmt.Errorf("submit response: %w", err)
	}
	for view.State != serve.StateDone && view.State != serve.StateFailed &&
		view.State != serve.StateCanceled {
		body, err = q.Do("GET", "/jobs/"+url.PathEscape(view.ID)+"?wait=30s", "", nil, 200)
		if err != nil {
			return nil, false, fmt.Errorf("poll: %w", err)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			return nil, false, fmt.Errorf("poll response: %w", err)
		}
	}
	if view.State != serve.StateDone {
		return nil, false, fmt.Errorf("job %s %s: %s", view.ID, view.State, view.Error)
	}
	doc, err := q.Do("GET", "/jobs/"+url.PathEscape(view.ID)+"/result", "", nil, 200)
	if err != nil {
		return nil, false, fmt.Errorf("result: %w", err)
	}
	return doc, view.CacheHit, nil
}
