package sweep

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeDoc builds a minimal gpuchar/metrics/v1 document with one
// aggregate simulated snapshot per demo, with counters scaled so cells
// are distinguishable per config.
func fakeDoc(scale int, demos ...string) []byte {
	var snaps []string
	for _, d := range demos {
		snaps = append(snaps, fmt.Sprintf(`{
			"labels": {"demo": %q, "frame": "all", "source": "sim"},
			"counters": {
				"cache/z/hits": %d, "cache/z/misses": 10,
				"cache/tex_l0/hits": 80, "cache/tex_l0/misses": 20,
				"zst/quads_in": 100, "zst/quads_killed_hz": 20, "zst/quads_killed": 30,
				"mem/texture/read_bytes": 1048576, "mem/color/write_bytes": 1048576
			}
		}`, d, 90*scale))
	}
	return []byte(`{"schema": "gpuchar/metrics/v1", "snapshots": [` + strings.Join(snaps, ",") + `]}`)
}

func TestExpand(t *testing.T) {
	cells, err := Spec{Configs: []string{"r520", "caches-off", "r520"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2 (duplicate r520 collapsed)", len(cells))
	}
	if cells[0].Config.Name != "r520" || cells[1].Config.Name != "caches-off" {
		t.Errorf("cell order %s, %s", cells[0].Config.Name, cells[1].Config.Name)
	}
	if cells[0].Job.Config != "r520" || len(cells[0].Job.Experiments) == 0 {
		t.Errorf("cell job not filled: %+v", cells[0].Job)
	}
	if cells[0].Digest == cells[1].Digest {
		t.Error("distinct configs share a digest")
	}

	if _, err := (Spec{Configs: []string{"no-such"}}).Expand(); err == nil {
		t.Error("unknown config accepted")
	}
	if _, err := (Spec{}).Expand(); err == nil {
		t.Error("empty config list accepted")
	}
	if _, err := (Spec{Configs: []string{"r520"}, Experiments: []string{"nope"}}).Expand(); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestCellRows(t *testing.T) {
	spec := Spec{Configs: []string{"r520"}, Demos: []string{"A", "B"}, SimFrames: 2}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := spec.CellRows(cells[0], fakeDoc(1, "A", "B", "C"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (demo C not requested)", len(rows))
	}
	r := rows[0]
	if r.Config != "r520" || r.Demo != "A" || !r.CacheHit {
		t.Errorf("row identity: %+v", r)
	}
	if got := r.Metrics["zcache_hit_pct"]; got != 90 {
		t.Errorf("zcache_hit_pct = %g, want 90", got)
	}
	if got := r.Metrics["hz_kill_pct"]; got != 20 {
		t.Errorf("hz_kill_pct = %g, want 20", got)
	}
	if got := r.Metrics["mem_mb_per_frame"]; got != 1 {
		t.Errorf("mem_mb_per_frame = %g, want 1 (2MB over 2 frames)", got)
	}
	if _, ok := r.Metrics["colorcache_hit_pct"]; ok {
		t.Error("unexercised color cache reported a hit rate")
	}
}

// stubRunner serves canned documents per config name.
type stubRunner struct {
	docs   map[string][]byte
	cached map[string]bool
}

func (s stubRunner) RunCell(cell Cell) ([]byte, bool, error) {
	doc, ok := s.docs[cell.Config.Name]
	if !ok {
		return nil, false, fmt.Errorf("no doc for %s", cell.Config.Name)
	}
	return doc, s.cached[cell.Config.Name], nil
}

func TestRunAssemblesGridOrder(t *testing.T) {
	spec := Spec{
		Configs:   []string{"r520", "no-hz", "caches-off"},
		Demos:     []string{"A", "B"},
		SimFrames: 1,
	}
	r := stubRunner{
		docs: map[string][]byte{
			"r520":       fakeDoc(1, "A", "B"),
			"no-hz":      fakeDoc(1, "A", "B"),
			"caches-off": fakeDoc(1, "A", "B"),
		},
		cached: map[string]bool{"no-hz": true},
	}
	res, err := Run(spec, r, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(res.Rows))
	}
	// Grid order: config-major, demo-minor, regardless of completion
	// order under 3 workers.
	want := []string{"r520/A", "r520/B", "no-hz/A", "no-hz/B", "caches-off/A", "caches-off/B"}
	for i, row := range res.Rows {
		if got := row.Config + "/" + row.Demo; got != want[i] {
			t.Errorf("row %d = %s, want %s", i, got, want[i])
		}
	}
	if !res.Rows[2].CacheHit || res.Rows[0].CacheHit {
		t.Error("cache_hit flags not carried through")
	}

	// A failing cell fails the sweep.
	delete(r.docs, "no-hz")
	if _, err := Run(spec, r, Options{}); err == nil {
		t.Error("missing cell did not fail the sweep")
	}
}

func TestPivotAndCSV(t *testing.T) {
	spec := Spec{Configs: []string{"r520", "no-hz"}, Demos: []string{"A", "B"}, SimFrames: 1}
	r := stubRunner{docs: map[string][]byte{
		"r520":  fakeDoc(1, "A", "B"),
		"no-hz": fakeDoc(2, "A", "B"),
	}}
	res, err := Run(spec, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Pivot("zcache_hit_pct")
	if len(p.Headers) != 3 || p.Headers[1] != "r520" || p.Headers[2] != "no-hz" {
		t.Fatalf("pivot headers %v", p.Headers)
	}
	if len(p.Rows) != 2 || p.Rows[0][0] != "A" {
		t.Fatalf("pivot rows %v", p.Rows)
	}
	if p.Rows[0][1] == p.Rows[0][2] {
		t.Errorf("pivot cells identical across configs: %v", p.Rows[0])
	}
	if n := len(res.PivotTables()); n < 4 {
		t.Errorf("PivotTables = %d tables, want one per present metric", n)
	}

	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "config,config_digest,demo,metric,value\n") {
		t.Errorf("csv header: %q", strings.SplitN(csvBuf.String(), "\n", 2)[0])
	}
	if !strings.Contains(csvBuf.String(), "no-hz") {
		t.Error("csv missing no-hz rows")
	}

	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(res.Rows) || back.Schema != SchemaID {
		t.Errorf("round trip: %d rows schema %q", len(back.Rows), back.Schema)
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":"other"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

// TestQueueRunner drives the submit → long-poll → result protocol
// against a fake daemon.
func TestQueueRunner(t *testing.T) {
	polls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method", http.StatusMethodNotAllowed)
			return
		}
		body, _ := io.ReadAll(r.Body)
		if !strings.Contains(string(body), `"config":"no-hz"`) {
			t.Errorf("submitted spec missing config: %s", body)
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id": "j1", "state": "queued"}`)
	})
	mux.HandleFunc("/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		polls++
		state := "running"
		if polls >= 2 {
			state = "done"
		}
		fmt.Fprintf(w, `{"id": "j1", "state": %q, "cache_hit": true}`, state)
	})
	mux.HandleFunc("/jobs/j1/result", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(fakeDoc(1, "A"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	q := QueueRunner{Do: func(method, path, contentType string, body []byte, wantStatus int) ([]byte, error) {
		req, err := http.NewRequest(method, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != wantStatus {
			return nil, fmt.Errorf("status %d, want %d", resp.StatusCode, wantStatus)
		}
		return b, nil
	}}

	spec := Spec{Configs: []string{"no-hz"}, Demos: []string{"A"}, SimFrames: 1}
	res, err := Run(spec, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Rows[0].CacheHit {
		t.Fatalf("rows %+v", res.Rows)
	}
	if polls < 2 {
		t.Errorf("expected the runner to poll to completion, polls = %d", polls)
	}
}
