// Package sweep turns named hardware variants into comparative data: a
// Spec expands a (config × demo × experiment) grid into cells, a Runner
// produces each cell's metrics document — locally or through a gpuchard
// daemon, where the config digest in the cache key dedupes cells across
// submitters — and the Result renders the grid as a long-form CSV plus
// per-metric pivot tables ("Table XIV as a function of texture-L0
// size").
package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"gpuchar/internal/core"
	"gpuchar/internal/explorer"
	"gpuchar/internal/hwconfig"
	"gpuchar/internal/metrics"
	"gpuchar/internal/report"
	"gpuchar/internal/serve"
)

// SchemaID tags the sweep result JSON document.
const SchemaID = "gpuchar/sweep/v1"

// Spec describes a sweep grid. The zero value with Configs filled runs
// every simulated demo under table14 at paper defaults.
type Spec struct {
	// Configs are hwconfig registry names, one column per entry.
	Configs []string `json:"configs"`
	// Demos restricts the comparative rows; empty means every simulated
	// demo (core.SimDemos).
	Demos []string `json:"demos,omitempty"`
	// Experiments are run in every cell; empty means table14 — the
	// cheapest experiment that simulates every demo, which is all the
	// metric extraction needs.
	Experiments []string `json:"experiments,omitempty"`
	// APIFrames/SimFrames/Width/Height/TileWorkers mirror the
	// characterize flags; zero takes the serve defaults (120, 2, 1024,
	// 768, 1).
	APIFrames   int `json:"api_frames,omitempty"`
	SimFrames   int `json:"sim_frames,omitempty"`
	Width       int `json:"width,omitempty"`
	Height      int `json:"height,omitempty"`
	TileWorkers int `json:"tile_workers,omitempty"`
}

// Cell is one column of the sweep: a resolved hardware variant plus the
// job that computes it. Cells with equal digests are deduped by Expand;
// a daemon dedupes them again across sweeps through its result cache.
type Cell struct {
	Config hwconfig.Variant
	Digest string
	Job    serve.JobSpec
}

// normalized fills the spec's defaults in place.
func (s Spec) normalized() Spec {
	if len(s.Demos) == 0 {
		s.Demos = append(append([]string{}, core.SimDemos...), core.ModernDemos...)
	}
	if len(s.Experiments) == 0 {
		// table14 simulates the classic demos, multipass the
		// render-to-texture ones; together they cover the default rows.
		s.Experiments = []string{"table14", "multipass"}
	}
	if s.SimFrames == 0 {
		s.SimFrames = 2
	}
	return s
}

// Expand validates the spec and returns its cells in Configs order,
// keeping the first of any digest-equal duplicates.
func (s Spec) Expand() ([]Cell, error) {
	if len(s.Configs) == 0 {
		return nil, fmt.Errorf("sweep: no configs")
	}
	s = s.normalized()
	for _, id := range s.Experiments {
		if core.ByID(id) == nil {
			return nil, fmt.Errorf("sweep: unknown experiment %q", id)
		}
	}
	seen := map[string]string{}
	var cells []Cell
	for _, name := range s.Configs {
		v, ok := hwconfig.ByName(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown config %q (known: %v)", name, hwconfig.Names())
		}
		d := v.Digest()
		if prev, dup := seen[d]; dup {
			if prev == name {
				continue // exact duplicate: silently collapse
			}
			return nil, fmt.Errorf("sweep: configs %q and %q are behaviorally identical", prev, name)
		}
		seen[d] = name
		cells = append(cells, Cell{
			Config: v,
			Digest: d,
			Job: serve.JobSpec{
				Experiments: append([]string{}, s.Experiments...),
				APIFrames:   s.APIFrames,
				SimFrames:   s.SimFrames,
				Width:       s.Width,
				Height:      s.Height,
				TileWorkers: s.TileWorkers,
				Config:      name,
			},
		})
	}
	return cells, nil
}

// MetricNames are the derived comparative metrics, in output order.
// The definition (and the derivation itself) lives in
// internal/explorer so the sweep pivots and the explorer's compare
// documents can never disagree.
var MetricNames = explorer.MetricNames

// Row is one (config, demo) point of the grid.
type Row struct {
	Config   string             `json:"config"`
	Digest   string             `json:"config_digest"`
	Demo     string             `json:"demo"`
	CacheHit bool               `json:"cache_hit,omitempty"`
	Metrics  map[string]float64 `json:"metrics"`
}

// Result is a completed sweep: the normalized spec and one row per
// (config, demo) cell in grid order.
type Result struct {
	Schema string `json:"schema"`
	Spec   Spec   `json:"spec"`
	Rows   []Row  `json:"rows"`
}

// extractRow derives the comparative metrics for one demo from its
// aggregate simulated snapshot.
func extractRow(cell Cell, s metrics.Snapshot, simFrames int, cached bool) Row {
	return Row{
		Config:   cell.Config.Name,
		Digest:   cell.Digest,
		Demo:     s.Label(core.LabelDemo),
		CacheHit: cached,
		Metrics:  explorer.DeriveMetrics(s, simFrames),
	}
}

// CellRows extracts one Row per requested demo from a cell's metrics
// document (the gpuchar/metrics/v1 payload its job produced). Demos
// absent from the document are skipped — a keep-going run may have
// dropped one.
func (s Spec) CellRows(cell Cell, doc []byte, cached bool) ([]Row, error) {
	s = s.normalized()
	snaps, err := metrics.ReadJSON(bytes.NewReader(doc))
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", cell.Config.Name, err)
	}
	bySim := map[string]metrics.Snapshot{}
	for _, snap := range snaps {
		if snap.Label(core.LabelSource) == core.SourceSim &&
			snap.Label(core.LabelFrame) == core.LabelAllFrames &&
			snap.Label(core.LabelPass) == "" {
			bySim[snap.Label(core.LabelDemo)] = snap
		}
	}
	var rows []Row
	for _, demo := range s.Demos {
		snap, ok := bySim[demo]
		if !ok {
			continue
		}
		rows = append(rows, extractRow(cell, snap, s.SimFrames, cached))
	}
	return rows, nil
}

// metricNames returns MetricNames filtered to those any row carries,
// keeping canonical order, then any unknown extras sorted.
func (r *Result) metricNames() []string {
	present := map[string]bool{}
	for _, row := range r.Rows {
		for name := range row.Metrics {
			present[name] = true
		}
	}
	var names []string
	for _, n := range MetricNames {
		if present[n] {
			names = append(names, n)
			delete(present, n)
		}
	}
	var extra []string
	for n := range present {
		extra = append(extra, n)
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// configOrder returns the distinct configs in first-appearance (grid)
// order.
func (r *Result) configOrder() []string {
	seen := map[string]bool{}
	var out []string
	for _, row := range r.Rows {
		if !seen[row.Config] {
			seen[row.Config] = true
			out = append(out, row.Config)
		}
	}
	return out
}

// demoOrder returns the distinct demos in first-appearance order.
func (r *Result) demoOrder() []string {
	seen := map[string]bool{}
	var out []string
	for _, row := range r.Rows {
		if !seen[row.Demo] {
			seen[row.Demo] = true
			out = append(out, row.Demo)
		}
	}
	return out
}

// Pivot renders one metric as a table: demo rows × config columns.
func (r *Result) Pivot(metric string) *report.Table {
	configs := r.configOrder()
	t := &report.Table{
		ID:      "sweep/" + metric,
		Title:   fmt.Sprintf("%s by hardware config", metric),
		Headers: append([]string{"Game/Timedemo"}, configs...),
	}
	cell := map[[2]string]string{}
	for _, row := range r.Rows {
		if v, ok := row.Metrics[metric]; ok {
			cell[[2]string{row.Demo, row.Config}] = report.F(v)
		}
	}
	for _, demo := range r.demoOrder() {
		cells := []string{demo}
		for _, cfg := range configs {
			cells = append(cells, cell[[2]string{demo, cfg}])
		}
		t.AddRow(cells...)
	}
	return t
}

// PivotTables renders every present metric as a pivot table.
func (r *Result) PivotTables() []*report.Table {
	var out []*report.Table
	for _, name := range r.metricNames() {
		out = append(out, r.Pivot(name))
	}
	return out
}

// WriteCSV writes the long form: one line per (config, demo, metric).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "config_digest", "demo", "metric", "value"}); err != nil {
		return err
	}
	names := r.metricNames()
	for _, row := range r.Rows {
		for _, name := range names {
			v, ok := row.Metrics[name]
			if !ok {
				continue
			}
			if err := cw.Write([]string{row.Config, row.Digest, row.Demo, name,
				strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the result as the gpuchar/sweep/v1 document.
func (r *Result) WriteJSON(w io.Writer) error {
	r.Schema = SchemaID
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadJSON parses a WriteJSON document, rejecting other schemas.
func ReadJSON(rd io.Reader) (*Result, error) {
	var r Result
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("sweep: decode: %w", err)
	}
	if r.Schema != SchemaID {
		return nil, fmt.Errorf("sweep: schema %q, want %q", r.Schema, SchemaID)
	}
	return &r, nil
}
