package gmath

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-4

func near(a, b float32) bool { return math.Abs(float64(a-b)) < eps }

func vecNear(a, b Vec4) bool {
	return near(a.X, b.X) && near(a.Y, b.Y) && near(a.Z, b.Z) && near(a.W, b.W)
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want %v", got, z)
	}
	if got := y.Cross(x); got != z.Scale(-1) {
		t.Errorf("y cross x = %v, want %v", got, z.Scale(-1))
	}
	// Cross product is perpendicular to both operands.
	a, b := V3(1, 2, 3), V3(-4, 5, 0.5)
	c := a.Cross(b)
	if !near(c.Dot(a), 0) || !near(c.Dot(b), 0) {
		t.Errorf("cross product not perpendicular: %v", c)
	}
}

func TestVec3Norm(t *testing.T) {
	v := V3(3, 4, 0).Norm()
	if !near(v.Len(), 1) {
		t.Errorf("normalized length = %v, want 1", v.Len())
	}
	zero := V3(0, 0, 0)
	if zero.Norm() != zero {
		t.Errorf("Norm of zero vector changed it: %v", zero.Norm())
	}
}

func TestVec4CompRoundTrip(t *testing.T) {
	v := V4(1, 2, 3, 4)
	for i := 0; i < 4; i++ {
		if v.Comp(i) != float32(i+1) {
			t.Errorf("Comp(%d) = %v, want %v", i, v.Comp(i), i+1)
		}
		u := v.SetComp(i, 9)
		if u.Comp(i) != 9 {
			t.Errorf("SetComp(%d) did not stick", i)
		}
	}
}

func TestVec4Lerp(t *testing.T) {
	a, b := V4(0, 0, 0, 0), V4(2, 4, 6, 8)
	if got := a.Lerp(b, 0.5); !vecNear(got, V4(1, 2, 3, 4)) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); !vecNear(got, a) {
		t.Errorf("Lerp(0) = %v, want a", got)
	}
	if got := a.Lerp(b, 1); !vecNear(got, b) {
		t.Errorf("Lerp(1) = %v, want b", got)
	}
}

func TestMat4Identity(t *testing.T) {
	v := V4(1, -2, 3, 1)
	if got := Identity().MulVec4(v); got != v {
		t.Errorf("I*v = %v, want %v", got, v)
	}
}

func TestMat4MulAssociativity(t *testing.T) {
	a := Translate(1, 2, 3)
	b := RotateY(0.7)
	c := Scale3(2, 2, 2)
	v := V4(0.5, -1, 4, 1)
	lhs := a.Mul(b).Mul(c).MulVec4(v)
	rhs := a.MulVec4(b.MulVec4(c.MulVec4(v)))
	if !vecNear(lhs, rhs) {
		t.Errorf("(ABC)v = %v, A(B(Cv)) = %v", lhs, rhs)
	}
}

func TestTranslatePoint(t *testing.T) {
	p := Translate(1, 2, 3).MulPoint(V3(10, 20, 30))
	if p != V3(11, 22, 33) {
		t.Errorf("translated point = %v", p)
	}
	// Directions are unaffected by translation.
	d := Translate(1, 2, 3).MulDir(V3(1, 0, 0))
	if d != V3(1, 0, 0) {
		t.Errorf("translated dir = %v", d)
	}
}

func TestRotateYQuarterTurn(t *testing.T) {
	p := RotateY(float32(math.Pi / 2)).MulPoint(V3(1, 0, 0))
	want := V3(0, 0, -1)
	if !near(p.X, want.X) || !near(p.Y, want.Y) || !near(p.Z, want.Z) {
		t.Errorf("rotated = %v, want %v", p, want)
	}
}

func TestPerspectiveMapsNearFar(t *testing.T) {
	m := Perspective(float32(math.Pi/2), 4.0/3.0, 1, 100)
	// A point on the near plane maps to z/w = -1.
	nearPt := m.MulVec4(V4(0, 0, -1, 1))
	if !near(nearPt.Z/nearPt.W, -1) {
		t.Errorf("near plane z/w = %v, want -1", nearPt.Z/nearPt.W)
	}
	farPt := m.MulVec4(V4(0, 0, -100, 1))
	if !near(farPt.Z/farPt.W, 1) {
		t.Errorf("far plane z/w = %v, want 1", farPt.Z/farPt.W)
	}
}

func TestLookAtOrigin(t *testing.T) {
	m := LookAt(V3(0, 0, 10), V3(0, 0, 0), V3(0, 1, 0))
	// The look-at target should land on the -Z axis in eye space.
	p := m.MulPoint(V3(0, 0, 0))
	if !near(p.X, 0) || !near(p.Y, 0) || !near(p.Z, -10) {
		t.Errorf("center in eye space = %v, want (0,0,-10)", p)
	}
	// The eye maps to the origin.
	e := m.MulPoint(V3(0, 0, 10))
	if !near(e.Len(), 0) {
		t.Errorf("eye in eye space = %v, want origin", e)
	}
}

func TestOutcodeInside(t *testing.T) {
	if code := OutcodeOf(V4(0, 0, 0, 1)); code != 0 {
		t.Errorf("origin outcode = %b, want 0", code)
	}
	if code := OutcodeOf(V4(2, 0, 0, 1)); code&(1<<PlaneRight) == 0 {
		t.Errorf("x=2 w=1 should be outside right plane, code=%b", code)
	}
	if code := OutcodeOf(V4(0, 0, -2, 1)); code&(1<<PlaneNear) == 0 {
		t.Errorf("z=-2 w=1 should be outside near plane, code=%b", code)
	}
}

func TestFrustumPlanesAgreeWithOutcode(t *testing.T) {
	planes := FrustumPlanes()
	pts := []Vec4{
		{0, 0, 0, 1}, {2, 0, 0, 1}, {-2, 0, 0, 1}, {0, 2, 0, 1},
		{0, -2, 0, 1}, {0, 0, 2, 1}, {0, 0, -2, 1}, {0.5, -0.5, 0.9, 1},
	}
	for _, p := range pts {
		code := OutcodeOf(p)
		for i := ClipPlane(0); i < NumClipPlanes; i++ {
			outByPlane := planes[i].Dist(p) < 0
			outByCode := code&(1<<i) != 0
			if outByPlane != outByCode {
				t.Errorf("point %v plane %d: plane says out=%v, outcode says %v",
					p, i, outByPlane, outByCode)
			}
		}
	}
}

func TestAABB(t *testing.T) {
	b := NewAABB()
	b.Extend(V3(1, 2, 3))
	b.Extend(V3(-1, 5, 0))
	if b.Min != V3(-1, 2, 0) || b.Max != V3(1, 5, 3) {
		t.Errorf("box = %+v", b)
	}
	if c := b.Center(); !near(c.X, 0) || !near(c.Y, 3.5) || !near(c.Z, 1.5) {
		t.Errorf("center = %v", c)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float32 }{
		{5, 0, 1, 1}, {-5, 0, 1, 0}, {0.5, 0, 1, 0.5},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

// Property: dot product is bilinear.
func TestQuickDotBilinear(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, s float32) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		lhs := a.Scale(s).Dot(b)
		rhs := s * a.Dot(b)
		diff := math.Abs(float64(lhs - rhs))
		mag := math.Abs(float64(lhs)) + math.Abs(float64(rhs)) + 1
		return diff/mag < 1e-3 || math.IsNaN(diff) || math.IsInf(diff, 0)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: matrix transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(vals [16]float32) bool {
		m := Mat4(vals)
		return m.Transpose().Transpose() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
