package gmath

// Plane is the plane a*x + b*y + c*z + d*w = 0 expressed in homogeneous
// coordinates. A point p is inside (on the positive half-space) when
// Plane.Dist(p) >= 0.
type Plane struct{ A, B, C, D float32 }

// Dist returns the signed homogeneous distance of p from the plane.
func (pl Plane) Dist(p Vec4) float32 {
	return pl.A*p.X + pl.B*p.Y + pl.C*p.Z + pl.D*p.W
}

// ClipPlane identifies one of the six view-frustum planes in clip space.
type ClipPlane int

// The six frustum planes. In clip space a vertex is inside the frustum
// when -w <= x,y,z <= w.
const (
	PlaneLeft ClipPlane = iota
	PlaneRight
	PlaneBottom
	PlaneTop
	PlaneNear
	PlaneFar
	NumClipPlanes
)

// FrustumPlanes returns the six clip-space frustum planes for the canonical
// OpenGL clip volume -w <= x,y,z <= w, ordered by ClipPlane.
func FrustumPlanes() [NumClipPlanes]Plane {
	return [NumClipPlanes]Plane{
		PlaneLeft:   {1, 0, 0, 1},  // x >= -w
		PlaneRight:  {-1, 0, 0, 1}, // x <= w
		PlaneBottom: {0, 1, 0, 1},  // y >= -w
		PlaneTop:    {0, -1, 0, 1}, // y <= w
		PlaneNear:   {0, 0, 1, 1},  // z >= -w
		PlaneFar:    {0, 0, -1, 1}, // z <= w
	}
}

// OutcodeOf returns the bitmask of frustum planes that the clip-space
// vertex v is outside of. An outcode of zero means the vertex is inside
// the view frustum.
func OutcodeOf(v Vec4) uint8 {
	var code uint8
	if v.X < -v.W {
		code |= 1 << PlaneLeft
	}
	if v.X > v.W {
		code |= 1 << PlaneRight
	}
	if v.Y < -v.W {
		code |= 1 << PlaneBottom
	}
	if v.Y > v.W {
		code |= 1 << PlaneTop
	}
	if v.Z < -v.W {
		code |= 1 << PlaneNear
	}
	if v.Z > v.W {
		code |= 1 << PlaneFar
	}
	return code
}

// AABB is an axis-aligned bounding box.
type AABB struct{ Min, Max Vec3 }

// NewAABB returns an empty box ready to be extended.
func NewAABB() AABB {
	const inf = float32(3.4e38)
	return AABB{Min: V3(inf, inf, inf), Max: V3(-inf, -inf, -inf)}
}

// Extend grows the box to include point p.
func (b *AABB) Extend(p Vec3) {
	if p.X < b.Min.X {
		b.Min.X = p.X
	}
	if p.Y < b.Min.Y {
		b.Min.Y = p.Y
	}
	if p.Z < b.Min.Z {
		b.Min.Z = p.Z
	}
	if p.X > b.Max.X {
		b.Max.X = p.X
	}
	if p.Y > b.Max.Y {
		b.Max.Y = p.Y
	}
	if p.Z > b.Max.Z {
		b.Max.Z = p.Z
	}
}

// Center returns the box center.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }
