package gmath

import "math"

// Mat4 is a 4x4 float32 matrix stored in row-major order:
// element (r, c) is M[r*4+c]. Vectors are treated as columns, so a point p
// transforms as M.MulVec4(p).
type Mat4 [16]float32

// Identity returns the 4x4 identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Mul returns the matrix product m * n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// MulVec4 returns m * v.
func (m Mat4) MulVec4(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// MulPoint transforms the point p (w assumed 1) and returns the xyz of the
// result without perspective division.
func (m Mat4) MulPoint(p Vec3) Vec3 {
	v := m.MulVec4(p.Vec4(1))
	return v.Vec3()
}

// MulDir transforms the direction d (w assumed 0).
func (m Mat4) MulDir(d Vec3) Vec3 {
	v := m.MulVec4(d.Vec4(0))
	return v.Vec3()
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i*4+j] = m[j*4+i]
		}
	}
	return r
}

// Row returns row r of m as a Vec4.
func (m Mat4) Row(r int) Vec4 {
	return Vec4{m[r*4], m[r*4+1], m[r*4+2], m[r*4+3]}
}

// Translate returns a translation matrix by (x, y, z).
func Translate(x, y, z float32) Mat4 {
	m := Identity()
	m[3], m[7], m[11] = x, y, z
	return m
}

// Scale3 returns a scaling matrix by (x, y, z).
func Scale3(x, y, z float32) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = x, y, z
	return m
}

// RotateY returns a rotation matrix of angle radians about the Y axis.
func RotateY(angle float32) Mat4 {
	s := float32(math.Sin(float64(angle)))
	c := float32(math.Cos(float64(angle)))
	m := Identity()
	m[0], m[2] = c, s
	m[8], m[10] = -s, c
	return m
}

// RotateX returns a rotation matrix of angle radians about the X axis.
func RotateX(angle float32) Mat4 {
	s := float32(math.Sin(float64(angle)))
	c := float32(math.Cos(float64(angle)))
	m := Identity()
	m[5], m[6] = c, -s
	m[9], m[10] = s, c
	return m
}

// RotateZ returns a rotation matrix of angle radians about the Z axis.
func RotateZ(angle float32) Mat4 {
	s := float32(math.Sin(float64(angle)))
	c := float32(math.Cos(float64(angle)))
	m := Identity()
	m[0], m[1] = c, -s
	m[4], m[5] = s, c
	return m
}

// Perspective returns an OpenGL-style perspective projection matrix.
// fovy is the vertical field of view in radians, aspect = width/height,
// and near/far are the positive distances to the clip planes.
func Perspective(fovy, aspect, near, far float32) Mat4 {
	f := float32(1 / math.Tan(float64(fovy)/2))
	var m Mat4
	m[0] = f / aspect
	m[5] = f
	m[10] = (far + near) / (near - far)
	m[11] = 2 * far * near / (near - far)
	m[14] = -1
	return m
}

// LookAt returns a right-handed view matrix with the camera at eye looking
// toward center with the given up vector.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Norm()
	s := f.Cross(up.Norm()).Norm()
	u := s.Cross(f)
	m := Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
	return m
}
