// Package gmath provides the small linear-algebra kernel used by the
// geometry pipeline and shader interpreter: 2/3/4-component float32
// vectors, 4x4 matrices, projection and view transforms, frustum planes
// and axis-aligned bounding boxes.
//
// All types are small value types; operations return new values and never
// allocate. The conventions follow OpenGL: column vectors, right-handed
// eye space, clip space with -w <= x,y,z <= w.
package gmath

import "math"

// Vec2 is a 2-component float32 vector.
type Vec2 struct{ X, Y float32 }

// Vec3 is a 3-component float32 vector.
type Vec3 struct{ X, Y, Z float32 }

// Vec4 is a 4-component float32 vector (homogeneous position or RGBA color).
type Vec4 struct{ X, Y, Z, W float32 }

// V2 constructs a Vec2.
func V2(x, y float32) Vec2 { return Vec2{x, y} }

// V3 constructs a Vec3.
func V3(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// V4 constructs a Vec4.
func V4(x, y, z, w float32) Vec4 { return Vec4{x, y, z, w} }

// Add returns v + u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v - u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns v * s.
func (v Vec2) Scale(s float32) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and u.
func (v Vec2) Dot(u Vec2) float32 { return v.X*u.X + v.Y*u.Y }

// Len returns the Euclidean length of v.
func (v Vec2) Len() float32 { return float32(math.Sqrt(float64(v.Dot(v)))) }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v * s.
func (v Vec3) Scale(s float32) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Dot returns the dot product of v and u.
func (v Vec3) Dot(u Vec3) float32 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v x u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float32 { return float32(math.Sqrt(float64(v.Dot(v)))) }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Vec4 returns v extended with the given w component.
func (v Vec3) Vec4(w float32) Vec4 { return Vec4{v.X, v.Y, v.Z, w} }

// Add returns v + u.
func (v Vec4) Add(u Vec4) Vec4 {
	return Vec4{v.X + u.X, v.Y + u.Y, v.Z + u.Z, v.W + u.W}
}

// Sub returns v - u.
func (v Vec4) Sub(u Vec4) Vec4 {
	return Vec4{v.X - u.X, v.Y - u.Y, v.Z - u.Z, v.W - u.W}
}

// Scale returns v * s.
func (v Vec4) Scale(s float32) Vec4 {
	return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s}
}

// Mul returns the component-wise product of v and u.
func (v Vec4) Mul(u Vec4) Vec4 {
	return Vec4{v.X * u.X, v.Y * u.Y, v.Z * u.Z, v.W * u.W}
}

// Dot returns the 4-component dot product of v and u.
func (v Vec4) Dot(u Vec4) float32 {
	return v.X*u.X + v.Y*u.Y + v.Z*u.Z + v.W*u.W
}

// Dot3 returns the dot product of the xyz parts of v and u.
func (v Vec4) Dot3(u Vec4) float32 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Vec3 returns the xyz part of v.
func (v Vec4) Vec3() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// Lerp returns v + t*(u-v), component-wise.
func (v Vec4) Lerp(u Vec4, t float32) Vec4 {
	return Vec4{
		v.X + t*(u.X-v.X),
		v.Y + t*(u.Y-v.Y),
		v.Z + t*(u.Z-v.Z),
		v.W + t*(u.W-v.W),
	}
}

// Comp returns component i of v (0=X, 1=Y, 2=Z, 3=W).
func (v Vec4) Comp(i int) float32 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	default:
		return v.W
	}
}

// SetComp returns v with component i replaced by x.
func (v Vec4) SetComp(i int, x float32) Vec4 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		v.W = x
	}
	return v
}

// Clamp01 clamps every component of v to [0, 1].
func (v Vec4) Clamp01() Vec4 {
	return Vec4{clamp01(v.X), clamp01(v.Y), clamp01(v.Z), clamp01(v.W)}
}

func clamp01(x float32) float32 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Clamp returns x limited to the range [lo, hi].
func Clamp(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
