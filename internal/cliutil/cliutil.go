// Package cliutil collects the helpers the gpuchar command-line tools
// share: the error-driven exit-code taxonomy, stderr failure and usage
// reporting, and positive-flag validation. Extracting them keeps the
// tools' observable contract — messages that name the offending value,
// scripts that branch on the exit code — identical across attilasim,
// tracetool, characterize and gpuchard.
package cliutil

import (
	"errors"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"gpuchar/internal/trace"
)

// The process exit codes every tool shares.
const (
	ExitOK          = 0
	ExitFailure     = 1 // any error outside the taxonomy below
	ExitUsage       = 2 // flag-validation error
	ExitFormatError = 3 // malformed trace stream (trace.FormatError)
	ExitReplayError = 4 // trace replayed but not cleanly (trace.ReplayError)
)

// ExitCode maps the error taxonomy onto distinct process exit codes so
// scripts can tell a malformed trace (3) from a replay failure (4) from
// everything else (1). Wrapped errors are unwrapped.
func ExitCode(err error) int {
	var fe *trace.FormatError
	var re *trace.ReplayError
	switch {
	case errors.As(err, &fe):
		return ExitFormatError
	case errors.As(err, &re):
		return ExitReplayError
	}
	return ExitFailure
}

// osExit is swapped out by tests that drive Fail/Usagef.
var osExit = os.Exit

// Fail prints "tool: err" to stderr and exits with the taxonomy code
// for err.
func Fail(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	osExit(ExitCode(err))
}

// Usagef prints "tool: message" to stderr and exits with the usage
// code (2).
func Usagef(tool, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	osExit(ExitUsage)
}

// StartCPUProfile starts writing a CPU profile to path and returns the
// stop function to defer. An empty path is a no-op (the flag's
// default), so callers can wire `-cpuprofile` unconditionally:
//
//	stop, err := cliutil.StartCPUProfile(*cpuprofile)
//	if err != nil { cliutil.Fail(tool, err) }
//	defer stop()
//
// This gives every tool single-run profiles without standing up the
// obsv HTTP server.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// Flag is one named integer flag value for PositiveFlags.
type Flag struct {
	Name  string
	Value int
}

// PositiveFlags validates that every flag value is positive. The error
// lists all of them with their values — "-frames 0, -w 1024, -h 768
// must all be positive" — so the offender is visible in context.
func PositiveFlags(flags ...Flag) error {
	ok := true
	parts := make([]string, len(flags))
	for i, f := range flags {
		parts[i] = fmt.Sprintf("%s %d", f.Name, f.Value)
		if f.Value <= 0 {
			ok = false
		}
	}
	if ok {
		return nil
	}
	return fmt.Errorf("%s must all be positive", strings.Join(parts, ", "))
}
