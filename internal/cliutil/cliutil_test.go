package cliutil

import (
	"errors"
	"fmt"
	"testing"

	"gpuchar/internal/trace"
)

// TestExitCode pins the shared taxonomy, including wrapped errors.
func TestExitCode(t *testing.T) {
	format := &trace.FormatError{Cmd: 1, Err: errors.New("bad magic")}
	replay := &trace.ReplayError{Cmd: 2, Err: errors.New("unknown object")}
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("plain failure"), ExitFailure},
		{format, ExitFormatError},
		{fmt.Errorf("wrapped: %w", format), ExitFormatError},
		{replay, ExitReplayError},
		{fmt.Errorf("wrapped: %w", replay), ExitReplayError},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestPositiveFlags pins the message shape the tools' usage errors
// have always had: every flag listed with its value.
func TestPositiveFlags(t *testing.T) {
	if err := PositiveFlags(Flag{"-frames", 10}, Flag{"-w", 1024}); err != nil {
		t.Errorf("all-positive: %v", err)
	}
	err := PositiveFlags(Flag{"-frames", 0}, Flag{"-w", 1024}, Flag{"-h", 768})
	if err == nil {
		t.Fatal("zero flag accepted")
	}
	want := "-frames 0, -w 1024, -h 768 must all be positive"
	if err.Error() != want {
		t.Errorf("message %q, want %q", err, want)
	}
}

// TestFailAndUsagef drives the exit helpers through the test seam.
func TestFailAndUsagef(t *testing.T) {
	var code int
	old := osExit
	osExit = func(c int) { code = c }
	defer func() { osExit = old }()

	Fail("tool", errors.New("boom"))
	if code != ExitFailure {
		t.Errorf("Fail(plain) exited %d, want %d", code, ExitFailure)
	}
	Fail("tool", &trace.FormatError{Cmd: -1, Err: errors.New("bad header")})
	if code != ExitFormatError {
		t.Errorf("Fail(format) exited %d, want %d", code, ExitFormatError)
	}
	Usagef("tool", "-x %d must be positive", -1)
	if code != ExitUsage {
		t.Errorf("Usagef exited %d, want %d", code, ExitUsage)
	}
}
