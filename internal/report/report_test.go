package report

import (
	"bytes"
	"strings"
	"testing"

	"gpuchar/internal/stats"
)

func sampleTable() *Table {
	t := &Table{
		ID: "table9", Title: "Quad kills",
		Headers: []string{"Demo", "HZ", "Blend"},
	}
	t.AddRow("UT2004", "37.5%", "55.9%")
	t.AddRow("Doom3", "34.0%", "17.7%")
	t.Notes = append(t.Notes, "percentages of rasterized quads")
	return t
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Render(&buf)
	out := buf.String()
	for _, want := range []string{"TABLE9", "Quad kills", "UT2004", "37.5%",
		"note: percentages"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Column alignment: every data line has the same number of pipes.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	pipeCount := strings.Count(lines[1], "|")
	for _, ln := range lines[1:4] {
		if strings.HasPrefix(ln, "-") {
			continue
		}
		if strings.Count(ln, "|") != pipeCount {
			t.Errorf("misaligned row %q", ln)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Markdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "### TABLE9") {
		t.Error("markdown missing header")
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("markdown missing separator row")
	}
	if !strings.Contains(out, "| Doom3 | 34.0% | 17.7% |") {
		t.Error("markdown missing data row")
	}
}

func TestFigureCSV(t *testing.T) {
	s1 := stats.NewSeries("a")
	s1.Append(1)
	s1.Append(2)
	s2 := stats.NewSeries("b,with comma")
	s2.Append(10)
	fig := &Figure{ID: "fig1", Title: "Batches", YLabel: "#", Series: []*stats.Series{s1, s2}}
	var buf bytes.Buffer
	fig.RenderCSV(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // comment, header, 2 rows
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[1] != "frame,a,b;with comma" {
		t.Errorf("header = %q (commas must be escaped)", lines[1])
	}
	if lines[2] != "1,1,10" {
		t.Errorf("row 1 = %q", lines[2])
	}
	// Shorter series pad with empty cells.
	if lines[3] != "2,2," {
		t.Errorf("row 2 = %q", lines[3])
	}
}

func TestFigureSummary(t *testing.T) {
	s := stats.NewSeries("x")
	for _, v := range []float64{1, 5, 3} {
		s.Append(v)
	}
	fig := &Figure{ID: "fig2", Title: "T", YLabel: "y", Series: []*stats.Series{s}}
	var buf bytes.Buffer
	fig.Summary(&buf)
	out := buf.String()
	for _, want := range []string{"FIG2", "min=1", "mean=3", "max=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {0.123, "0.12"}, {9.87, "9.87"}, {42.4, "42.4"}, {1234.5, "1234"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if Pct(12.34) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.34))
	}
	if PaperVs(1.5, 2.5) != "1.50 (paper 2.50)" {
		t.Errorf("PaperVs = %q", PaperVs(1.5, 2.5))
	}
}

func TestOptionalFormatters(t *testing.T) {
	if got := FOpt(1.5, true); got != "1.50" {
		t.Errorf("FOpt(1.5, true) = %q", got)
	}
	if got := FOpt(0, false); got != "" {
		t.Errorf("FOpt(_, false) = %q, want empty cell", got)
	}
	if got := PctOpt(12.34, true); got != "12.3%" {
		t.Errorf("PctOpt = %q", got)
	}
	if got := PctOpt(0, false); got != "" {
		t.Errorf("PctOpt(_, false) = %q, want empty cell", got)
	}
	var m stats.Mean
	if got := FMean(&m); got != "" {
		t.Errorf("FMean of empty mean = %q, want empty cell", got)
	}
	m.Add(2)
	m.Add(3)
	if got := FMean(&m); got != "2.50" {
		t.Errorf("FMean = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	s := stats.NewSeries("x")
	for i := 0; i < 64; i++ {
		s.Append(float64(i))
	}
	sp := Sparkline(s, 8)
	if len([]rune(sp)) != 8 {
		t.Fatalf("sparkline runes = %d", len([]rune(sp)))
	}
	runes := []rune(sp)
	if runes[0] != '▁' {
		t.Errorf("ramp should start at the lowest tick: %q", sp)
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("ramp sparkline not monotone: %q", sp)
		}
	}
	// Flat series renders the lowest tick everywhere.
	flat := stats.NewSeries("f")
	flat.Append(5)
	flat.Append(5)
	for _, r := range Sparkline(flat, 4) {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", Sparkline(flat, 4))
		}
	}
	if Sparkline(stats.NewSeries("e"), 4) != "" {
		t.Error("empty series should render empty")
	}
}
