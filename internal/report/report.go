// Package report renders characterization results: ASCII tables in the
// layout of the paper's tables, and CSV series for its figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"gpuchar/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	ID      string // experiment id, e.g. "table7"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row; cells beyond the header count are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned ASCII form.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "| %-*s ", widths[i], c)
			} else {
				fmt.Fprintf(w, "| %s ", c)
			}
		}
		fmt.Fprintln(w, "|")
	}
	line(t.Headers)
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// Markdown writes the table as GitHub-flavoured markdown.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

// Figure is a set of per-frame series sharing an x axis (frame number).
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Series []*stats.Series
}

// RenderCSV writes the figure as CSV: frame, series1, series2, ...
func (f *Figure) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s (%s)\n", strings.ToUpper(f.ID), f.Title, f.YLabel)
	fmt.Fprint(w, "frame")
	maxLen := 0
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", strings.ReplaceAll(s.Name, ",", ";"))
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	fmt.Fprintln(w)
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(w, "%d", i+1)
		for _, s := range f.Series {
			if i < s.Len() {
				fmt.Fprintf(w, ",%g", s.Values[i])
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

// Summary prints per-series min/mean/max, the quick-look form of a
// figure.
func (f *Figure) Summary(w io.Writer) {
	fmt.Fprintf(w, "%s — %s (%s)\n", strings.ToUpper(f.ID), f.Title, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %-28s frames=%-5d min=%-10.4g mean=%-10.4g max=%-10.4g %s\n",
			s.Name, s.Len(), s.Min(), s.Mean(), s.Max(), Sparkline(s, 32))
	}
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// FOpt formats a float cell that may never have been measured: ok
// false renders an empty cell, distinguishing "stage never exercised"
// from a true zero.
func FOpt(v float64, ok bool) string {
	if !ok {
		return ""
	}
	return F(v)
}

// FMean formats a running mean as a table cell, empty when the mean
// accumulated no samples.
func FMean(m *stats.Mean) string { return FOpt(m.Value(), m.Valid()) }

// Pct formats a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// PctOpt formats a percentage cell that may never have been measured:
// ok false renders an empty cell instead of a spurious "0.0%".
func PctOpt(v float64, ok bool) string {
	if !ok {
		return ""
	}
	return Pct(v)
}

// PaperVs formats a "measured (paper X)" comparison cell.
func PaperVs(measured, paper float64) string {
	return fmt.Sprintf("%s (paper %s)", F(measured), F(paper))
}

// Sparkline renders a series as a compact unicode sparkline, the
// terminal-friendly stand-in for the paper's per-frame plots.
func Sparkline(s *stats.Series, width int) string {
	if s.Len() == 0 || width < 1 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	min, max := s.Min(), s.Max()
	span := max - min
	out := make([]rune, 0, width)
	for i := 0; i < width; i++ {
		// Average the bucket of frames mapping to this column.
		lo := i * s.Len() / width
		hi := (i + 1) * s.Len() / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range s.Values[lo:minInt(hi, s.Len())] {
			sum += v
		}
		v := sum / float64(minInt(hi, s.Len())-lo)
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(ticks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ticks) {
			idx = len(ticks) - 1
		}
		out = append(out, ticks[idx])
	}
	return string(out)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
