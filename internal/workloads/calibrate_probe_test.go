package workloads

import (
	"fmt"
	"os"
	"testing"
	"time"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/mem"
	"gpuchar/internal/stats"
)

// TestCalibrationProbe is a development harness: run with
// GPUCHAR_PROBE=<demo name> to print paper-vs-measured for one simulated
// demo. It is skipped in normal test runs.
func TestCalibrationProbe(t *testing.T) {
	name := os.Getenv("GPUCHAR_PROBE")
	if name == "" {
		t.Skip("set GPUCHAR_PROBE to a simulated demo name to run")
	}
	p := ByName(name)
	if p == nil || !p.Simulated {
		t.Fatalf("unknown or unsimulated demo %q", name)
	}
	w, h := 1024, 768
	g := gpu.New(gpu.R520Config(w, h))
	dev := gfxapi.NewDevice(p.API, g)
	wl := New(p, dev, w, h)
	if err := wl.Setup(); err != nil {
		t.Fatal(err)
	}
	frames := 3
	start := time.Now()
	for i := 0; i < frames; i++ {
		wl.RenderFrame()
	}
	dt := time.Since(start)
	fmt.Printf("== %s: %d frames in %v (%.1fs/frame)\n",
		name, frames, dt, dt.Seconds()/float64(frames))

	// Aggregate over frames.
	var agg gpu.FrameStats
	for _, f := range g.Frames() {
		agg.Accumulate(f)
	}
	nf := float64(frames)
	screen := float64(w * h)
	asm := float64(agg.Geom.TrianglesAssembled)
	fmt.Printf("geom: idx/frame %.0f  assembled %.0f  clip %.1f%%  cull %.1f%%  trav %.1f%%\n",
		float64(agg.Geom.Indices)/nf, asm/nf,
		stats.Percent(agg.Geom.TrianglesClipped, agg.Geom.TrianglesAssembled),
		stats.Percent(agg.Geom.TrianglesCulled, agg.Geom.TrianglesAssembled),
		stats.Percent(agg.Geom.TrianglesTraversed, agg.Geom.TrianglesAssembled))
	fmt.Printf("vcache hit %.3f\n",
		float64(agg.VCache.Hits)/float64(agg.VCache.Hits+agg.VCache.Misses))
	fmt.Printf("overdraw: raster %.2f  zst %.2f  shaded %.2f  blend %.2f\n",
		float64(agg.Rast.Fragments)/nf/screen,
		float64(agg.ZSt.FragmentsIn)/nf/screen,
		float64(agg.Frag.FragmentsShaded)/nf/screen,
		float64(agg.Rop.Fragments)/nf/screen)
	totQ := agg.Rast.QuadsEmitted
	fmt.Printf("quads: HZ %.2f%%  zst %.2f%%  alpha %.2f%%  mask %.2f%%  blend %.2f%%\n",
		stats.Percent(agg.ZSt.QuadsKilledHZ, totQ),
		stats.Percent(agg.ZSt.QuadsKilled, totQ),
		stats.Percent(agg.Frag.QuadsKilledAlpha, totQ),
		stats.Percent(agg.Rop.QuadsMasked, totQ),
		stats.Percent(agg.Rop.QuadsOut, totQ))
	fmt.Printf("quad eff: raster %.1f%%\n", agg.Rast.QuadEfficiency())
	fmt.Printf("tri size: raster %.0f frags\n",
		float64(agg.Rast.Fragments)/float64(agg.Geom.TrianglesTraversed))
	fmt.Printf("tex: bilinear/req %.2f  FS instr/frag %.2f  tex/frag %.2f\n",
		agg.Tex.AvgBilinearPerRequest(), agg.FS.AvgInstructions(),
		agg.FS.AvgTexInstructions())
	fmt.Printf("caches: z %.3f  texL0 %.3f  color %.3f\n",
		agg.ZCache.HitRate(), agg.TexL0.HitRate(), agg.ColorCache.HitRate())
	tot := mem.SumTraffic(agg.Mem)
	fmt.Printf("mem: %.1f MB/frame  read %.0f%%  write %.0f%%\n",
		mem.MB(float64(tot.Total())/nf),
		100*float64(tot.ReadBytes)/float64(tot.Total()),
		100*float64(tot.WriteBytes)/float64(tot.Total()))
	for c := mem.Client(0); c < mem.NumClients; c++ {
		fmt.Printf("  %-10s %5.1f%%\n", c,
			100*float64(agg.Mem[c].Total())/float64(tot.Total()))
	}
	fmt.Printf("bytes/vertex %.2f  zst/frag %.2f  tex/frag %.2f  color/frag %.2f\n",
		float64(agg.Mem[mem.ClientVertex].Total())/float64(agg.Geom.VerticesShaded),
		float64(agg.Mem[mem.ClientZStencil].Total())/float64(agg.ZSt.FragmentsIn),
		float64(agg.Mem[mem.ClientTexture].Total())/float64(agg.Frag.FragmentsShaded),
		float64(agg.Mem[mem.ClientColor].Total())/float64(agg.Rop.Fragments))
}
