package workloads

import (
	"math"
	"testing"

	"gpuchar/internal/gfxapi"
)

func TestRegistryMatchesTableI(t *testing.T) {
	reg := Registry()
	if len(reg) != 12 {
		t.Fatalf("registry has %d entries, want 12", len(reg))
	}
	// Spot checks against Table I / Table III.
	ut := ByName("UT2004/Primeval")
	if ut == nil || ut.Frames != 1992 || ut.BytesPerIndex != 2 {
		t.Errorf("UT2004 profile wrong: %+v", ut)
	}
	d3 := ByName("Doom3/trdemo2")
	if d3 == nil || d3.Frames != 3990 || d3.BytesPerIndex != 4 ||
		d3.AvgIndicesPerFrame != 136548 {
		t.Errorf("Doom3 profile wrong: %+v", d3)
	}
	if ByName("nope") != nil {
		t.Error("unknown name should return nil")
	}
	// API split: 7 OpenGL, 5 Direct3D like the paper.
	ogl, d3d := 0, 0
	for _, p := range reg {
		if p.API == gfxapi.OpenGL {
			ogl++
		} else {
			d3d++
		}
	}
	if ogl != 7 || d3d != 5 {
		t.Errorf("API split = %d OGL / %d D3D, want 7/5", ogl, d3d)
	}
	// Primitive mixes sum to 1.
	for _, p := range reg {
		sum := p.PrimMix[0] + p.PrimMix[1] + p.PrimMix[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s prim mix sums to %v", p.Name, sum)
		}
	}
}

func TestSimulatedSet(t *testing.T) {
	sim := Simulated()
	if len(sim) != 3 {
		t.Fatalf("simulated set = %d, want 3", len(sim))
	}
	want := map[string]bool{
		"UT2004/Primeval": true, "Doom3/trdemo2": true, "Quake4/demo4": true,
	}
	for _, p := range sim {
		if !want[p.Name] {
			t.Errorf("unexpected simulated demo %s", p.Name)
		}
	}
}

func TestDurationMatchesTableI(t *testing.T) {
	cases := []struct {
		name     string
		min, sec int
	}{
		{"UT2004/Primeval", 1, 6},
		{"Doom3/trdemo2", 2, 13},
		{"Quake4/demo4", 1, 39},
		{"FEAR/built-in demo", 0, 19},
		{"Half Life 2 LC/built-in", 1, 0},
	}
	for _, c := range cases {
		p := ByName(c.name)
		min, sec := p.DurationAt30FPS()
		if min != c.min || sec != c.sec {
			t.Errorf("%s duration = %d'%02d'', want %d'%02d''",
				c.name, min, sec, c.min, c.sec)
		}
	}
}

// runAPILevel renders n frames of a profile against a null backend and
// returns the device.
func runAPILevel(t *testing.T, name string, n int) *gfxapi.Device {
	t.Helper()
	p := ByName(name)
	if p == nil {
		t.Fatalf("no profile %s", name)
	}
	dev := gfxapi.NewDevice(p.API, gfxapi.NullBackend{})
	wl := New(p, dev, 1024, 768)
	if err := wl.Run(n); err != nil {
		t.Fatal(err)
	}
	return dev
}

// meanOver computes the average of f over frames [skip:].
func meanOver(frames []gfxapi.FrameStats, skip int, f func(gfxapi.FrameStats) float64) float64 {
	var sum float64
	n := 0
	for _, fr := range frames[skip:] {
		sum += f(fr)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestAPILevelIndexCalibration(t *testing.T) {
	for _, name := range []string{"UT2004/Primeval", "Doom3/trdemo2",
		"FEAR/interval2", "Oblivion/Anvil Castle"} {
		p := ByName(name)
		dev := runAPILevel(t, name, 140)
		frames := dev.Frames()
		idxPerFrame := meanOver(frames, 3, func(f gfxapi.FrameStats) float64 {
			return float64(f.Indices)
		})
		target := float64(p.AvgIndicesPerFrame)
		if math.Abs(idxPerFrame-target)/target > 0.10 {
			t.Errorf("%s indices/frame = %.0f, want %.0f +-10%%",
				name, idxPerFrame, target)
		}
		// Indices per batch within a factor of ~2 of Table III (the
		// chunking quantizes batch sizes).
		batches := meanOver(frames, 3, func(f gfxapi.FrameStats) float64 {
			return float64(f.Batches)
		})
		idxPerBatch := idxPerFrame / batches
		ratio := idxPerBatch / float64(p.AvgIndicesPerBatch)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s indices/batch = %.0f, want ~%d",
				name, idxPerBatch, p.AvgIndicesPerBatch)
		}
	}
}

func TestAPILevelShaderCalibration(t *testing.T) {
	for _, name := range []string{"UT2004/Primeval", "Quake4/demo4",
		"Half Life 2 LC/built-in"} {
		p := ByName(name)
		dev := runAPILevel(t, name, 120)
		frames := dev.Frames()
		vs := meanOver(frames, 3, func(f gfxapi.FrameStats) float64 { return f.AvgVSInstr() })
		if math.Abs(vs-p.VSInstr) > 0.2 {
			t.Errorf("%s VS instr = %.2f, want %.2f", name, vs, p.VSInstr)
		}
		fs := meanOver(frames, 3, func(f gfxapi.FrameStats) float64 { return f.AvgFSInstr() })
		if math.Abs(fs-p.FSInstr) > 0.3 {
			t.Errorf("%s FS instr = %.2f, want %.2f", name, fs, p.FSInstr)
		}
		ft := meanOver(frames, 3, func(f gfxapi.FrameStats) float64 { return f.AvgFSTex() })
		if math.Abs(ft-p.FSTex) > 0.2 {
			t.Errorf("%s FS tex = %.2f, want %.2f", name, ft, p.FSTex)
		}
	}
}

func TestOblivionTwoRegions(t *testing.T) {
	p := ByName("Oblivion/Anvil Castle")
	dev := gfxapi.NewDevice(p.API, gfxapi.NullBackend{})
	// Shrink the run: pretend the demo is 80 frames so the region flips
	// at 40.
	prof := *p
	prof.Frames = 80
	wl := New(&prof, dev, 1024, 768)
	if err := wl.Run(80); err != nil {
		t.Fatal(err)
	}
	frames := dev.Frames()
	r1 := meanOver(frames[:40], 3, func(f gfxapi.FrameStats) float64 { return f.AvgVSInstr() })
	r2 := meanOver(frames[40:], 0, func(f gfxapi.FrameStats) float64 { return f.AvgVSInstr() })
	if math.Abs(r1-18.88) > 0.3 {
		t.Errorf("region 1 VS = %.2f, want 18.88", r1)
	}
	if math.Abs(r2-37.72) > 0.6 {
		t.Errorf("region 2 VS = %.2f, want 37.72", r2)
	}
}

func TestPrimitiveMixCalibration(t *testing.T) {
	p := ByName("Splinter Cell 3/first level")
	dev := runAPILevel(t, p.Name, 100)
	var byPrim [3]int64
	var total int64
	for _, f := range dev.Frames()[3:] {
		for i := 0; i < 3; i++ {
			byPrim[i] += f.IndicesByPrim[i]
			total += f.IndicesByPrim[i]
		}
	}
	for i := 0; i < 3; i++ {
		got := float64(byPrim[i]) / float64(total)
		if math.Abs(got-p.PrimMix[i]) > 0.05 {
			t.Errorf("prim %d mix = %.3f, want %.3f", i, got, p.PrimMix[i])
		}
	}
}

func TestStartupSpike(t *testing.T) {
	dev := runAPILevel(t, "Doom3/trdemo2", 30)
	frames := dev.Frames()
	first := float64(frames[0].StateCalls)
	steady := meanOver(frames, 10, func(f gfxapi.FrameStats) float64 {
		return float64(f.StateCalls)
	})
	if first < 5*steady {
		t.Errorf("startup state calls %.0f not much larger than steady %.0f",
			first, steady)
	}
}

func TestTransitionPeaks(t *testing.T) {
	p := ByName("FEAR/interval2")
	dev := gfxapi.NewDevice(p.API, gfxapi.NullBackend{})
	wl := New(p, dev, 1024, 768)
	if err := wl.Setup(); err != nil {
		t.Fatal(err)
	}
	// Jump the frame counter near a transition boundary.
	wl.frameIdx = 418
	for i := 0; i < 5; i++ {
		wl.RenderFrame()
	}
	frames := dev.Frames()
	// Frame index 420 is the 3rd rendered frame (418, 419, 420...). The
	// first rendered frame carries the setup burst, so baseline on the
	// second.
	peak := float64(frames[2].StateCalls)
	base := float64(frames[1].StateCalls)
	if peak < 2*base {
		t.Errorf("transition peak %.0f not above baseline %.0f", peak, base)
	}
}

func TestBatchVariabilityOverTime(t *testing.T) {
	// Figure 1: batches per frame vary substantially across frames.
	dev := runAPILevel(t, "UT2004/Primeval", 140)
	frames := dev.Frames()[3:]
	min, max := frames[0].Batches, frames[0].Batches
	for _, f := range frames {
		if f.Batches < min {
			min = f.Batches
		}
		if f.Batches > max {
			max = f.Batches
		}
	}
	if float64(max) < 1.3*float64(min) {
		t.Errorf("batches range [%d,%d] too flat for Figure 1", min, max)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []gfxapi.FrameStats {
		p := ByName("Quake4/demo4")
		dev := gfxapi.NewDevice(p.API, gfxapi.NullBackend{})
		wl := New(p, dev, 1024, 768)
		if err := wl.Run(20); err != nil {
			t.Fatal(err)
		}
		return dev.Frames()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs between identical runs", i)
		}
	}
}

func TestListVsStripSharing(t *testing.T) {
	// The paper's Table V argument: with the post-transform cache, a
	// well-ordered triangle list shades the same vertices as a strip;
	// the only difference left is index bandwidth (3x vs ~1x).
	st := ListVsStrip(3000, 16)
	if st.ListShades != st.StripShades {
		t.Errorf("list shades %d vs strip shades %d, want equal",
			st.ListShades, st.StripShades)
	}
	if st.ListIndices != 3*st.Triangles {
		t.Errorf("list indices = %d", st.ListIndices)
	}
	if st.StripIndices != st.Triangles+2 {
		t.Errorf("strip indices = %d", st.StripIndices)
	}
	// Hit rate of the list converges to the theoretical 2/3.
	hr := 1 - float64(st.ListShades)/float64(st.ListIndices)
	if hr < 0.66 || hr > 0.67 {
		t.Errorf("list hit rate = %v, want ~0.667", hr)
	}
	// A 1-entry cache breaks the equivalence: the list reshades.
	tiny := ListVsStrip(3000, 1)
	if tiny.ListShades <= tiny.StripShades {
		t.Error("tiny cache should penalize the list")
	}
}
