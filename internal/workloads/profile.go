// Package workloads synthesizes the twelve game timedemos of the paper's
// Table I as parameterized scene generators. Real game traces are not
// redistributable, so each generator is calibrated against the per-demo
// numbers the paper publishes: the API-level statistics (indices per
// batch and frame, primitive mix, shader lengths — Tables III, IV, V,
// XII) are matched by construction, and the scene structure (depth
// layers, draw order, stencil shadow volumes, alpha-tested foliage,
// filter settings) is shaped so that the simulated microarchitectural
// metrics land in the paper's bands (Tables VII-XVII).
package workloads

import "gpuchar/internal/gfxapi"

// RenderStyle selects the frame composition algorithm.
type RenderStyle uint8

// Rendering styles used by the 2004-2006 engines the paper studies.
const (
	// StyleForward is single-pass forward rendering with alpha-tested
	// and blended details (Unreal 2.5, Source, Gamebryo...).
	StyleForward RenderStyle = iota
	// StyleStencilShadow is the Doom3-engine multipass algorithm: depth
	// prepass, stencil shadow volumes, additive per-light passes.
	StyleStencilShadow
	// StyleDeferred is a render-to-texture G-buffer pipeline: one geometry
	// pass into an off-screen target, resolved and sampled by full-screen
	// additive lighting quads on the backbuffer.
	StyleDeferred
	// StyleShadowMap renders N depth-only cascade passes into off-screen
	// targets, then a main pass that samples every cascade.
	StyleShadowMap
	// StyleParticle is an overdraw storm: the scene forward-rendered, then
	// layered additive particle ribbons into a low-resolution off-screen
	// target composited back over the frame.
	StyleParticle
)

// SimParams shapes the simulated scene for the three OpenGL demos the
// paper runs through ATTILA. All "coverage" quantities are in screens
// (multiples of the framebuffer area) of rasterized fragments.
type SimParams struct {
	Style RenderStyle

	// VisibleLayers is the back-to-front-drawn opaque overdraw: every
	// fragment passes the depth test and reaches the color stage.
	VisibleLayers float64
	// HiddenLayers is opaque overdraw drawn behind existing geometry:
	// HZ fodder.
	HiddenLayers float64
	// InterleaveLayers is overdraw at depths between drawn surfaces
	// whose quads escape HZ but die in the fine z test.
	InterleaveLayers float64

	// AlphaCoverage is alpha-tested foliage overdraw (late z);
	// AlphaKillFrac of its fragments fail the alpha test.
	AlphaCoverage float64
	AlphaKillFrac float64

	// Stencil shadow parameters (StyleStencilShadow only).
	Lights             int     // additive lighting passes per frame
	ShadowCoverage     float64 // fraction of the screen in shadow
	VolumePassCoverage float64 // volume quads in front of the scene (pass z)
	VolumeFailCoverage float64 // volume quads behind the scene (z-fail)

	// ClipFrac and CullFrac are the Table VII targets: fractions of
	// assembled triangles fully outside the frustum and back-facing.
	ClipFrac float64
	CullFrac float64

	// FillerCoverage is the share of VisibleLayers carried by the small
	// "filler" triangles that supply the Table III triangle counts.
	FillerCoverage float64

	// AnisoFrac is the fraction of shaded coverage rendered with a 4x
	// anisotropic footprint (Table XIII calibration).
	AnisoFrac float64

	// LODBias sharpens texturing (negative values sample finer mip
	// levels than the footprint warrants — the common "sharpen" driver
	// setting of the era), multiplying unique-texel traffic.
	LODBias float64

	// BigCell is the aligned grid cell in pixels for the large
	// triangles that carry most of the coverage (controls quad
	// efficiency and triangle size).
	BigCell int

	// VertexStride is the per-vertex fetch size in bytes (Table XVII).
	VertexStride int

	// Texturing.
	TexSize     int // texture dimensions (square, power of two)
	NumTextures int // distinct textures cycled across batches

	// Multi-pass parameters (StyleDeferred / StyleShadowMap /
	// StyleParticle). RTSize is the square power-of-two off-screen target
	// dimension (defaults to 256); Cascades counts the depth-only
	// shadow-map passes; ParticleLayers counts the additive ribbon layers
	// blasted into the particle target.
	RTSize         int
	Cascades       int
	ParticleLayers int
}

// Profile is one Table I row plus the calibration targets from the API
// level tables.
type Profile struct {
	Name    string // "Game/timedemo"
	Game    string
	Engine  string
	Release string // engine release date as printed in Table I
	API     gfxapi.API

	Frames         int    // Table I frame count
	TextureQuality string // "High/Anisotropic" or "High/Trilinear"
	AnisoLevel     int    // 16, or 0 for trilinear titles
	UsesShaders    bool   // UT2004 is fixed-function (translated)

	// Table III calibration.
	AvgIndicesPerBatch int
	AvgIndicesPerFrame int
	BytesPerIndex      int

	// Table IV calibration. VSInstr2 is the second-region average for
	// Oblivion (0 when the demo has a single region).
	VSInstr  float64
	VSInstr2 float64

	// Table XII calibration.
	FSInstr float64
	FSTex   float64

	// Table V calibration: fraction of indices per primitive type
	// (TL, TS, TF). Must sum to 1.
	PrimMix [3]float64

	// Figure 3 shape: steady-state state calls per frame scale, and
	// whether the demo shows inter-scene transition peaks (FEAR,
	// Oblivion).
	StateCallsPerBatch float64
	TransitionPeaks    bool

	// Simulated is set for the three OpenGL demos measured with the
	// simulator in the paper; Sim holds their scene shape.
	Simulated bool
	Sim       SimParams
}

// DurationAt30FPS returns the Table I duration string for the demo's
// frame count at 30 fps.
func (p *Profile) DurationAt30FPS() (min, sec int) {
	total := p.Frames / 30
	return total / 60, total % 60
}

// Family names the frame-composition family the profile belongs to:
// "api" for the demos measured at the API level only, otherwise the
// rendering style of the simulated scene.
func (p *Profile) Family() string {
	if !p.Simulated {
		return "api"
	}
	switch p.Sim.Style {
	case StyleStencilShadow:
		return "stencil"
	case StyleDeferred:
		return "deferred"
	case StyleShadowMap:
		return "shadowmap"
	case StyleParticle:
		return "particle"
	}
	return "forward"
}

// PassCount is the number of rendering passes a frame of this profile
// issues (scene or full-screen; resolves not counted).
func (p *Profile) PassCount() int {
	if !p.Simulated {
		return 1
	}
	switch p.Sim.Style {
	case StyleStencilShadow:
		return 1 + p.Sim.Lights
	case StyleDeferred:
		// Geometry pass into the G-buffer + the lighting pass.
		return 2
	case StyleShadowMap:
		return p.Sim.Cascades + 1
	case StyleParticle:
		// Scene pass + particle/composite pass.
		return 2
	}
	return 1
}

// Registry returns the twelve Table I workloads. The order matches the
// paper's tables.
func Registry() []Profile {
	return []Profile{
		{
			Name: "UT2004/Primeval", Game: "UT2004", Engine: "Unreal 2.5",
			Release: "March 2004", API: gfxapi.OpenGL,
			Frames: 1992, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        false,
			AvgIndicesPerBatch: 1110, AvgIndicesPerFrame: 249285, BytesPerIndex: 2,
			VSInstr: 23.46, FSInstr: 4.63, FSTex: 1.54,
			PrimMix:            [3]float64{0.999, 0, 0.001},
			StateCallsPerBatch: 2.0,
			Simulated:          true,
			Sim: SimParams{
				Style:            StyleForward,
				VisibleLayers:    3.84,
				HiddenLayers:     3.32,
				InterleaveLayers: 0.15,
				AlphaCoverage:    1.53,
				AlphaKillFrac:    0.24,
				ClipFrac:         0.30,
				CullFrac:         0.21,
				FillerCoverage:   0.40,
				AnisoFrac:        0.72,
				LODBias:          -0.5,
				BigCell:          128,
				VertexStride:     44,
				TexSize:          1024,
				NumTextures:      24,
			},
		},
		{
			Name: "Doom3/trdemo1", Game: "Doom3", Engine: "Doom3",
			Release: "August 2004", API: gfxapi.OpenGL,
			Frames: 3464, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 275, AvgIndicesPerFrame: 196416, BytesPerIndex: 4,
			VSInstr: 20.31, FSInstr: 12.85, FSTex: 3.98,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.4,
		},
		{
			Name: "Doom3/trdemo2", Game: "Doom3", Engine: "Doom3",
			Release: "August 2004", API: gfxapi.OpenGL,
			Frames: 3990, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 304, AvgIndicesPerFrame: 136548, BytesPerIndex: 4,
			VSInstr: 19.35, FSInstr: 12.95, FSTex: 3.98,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.4,
			Simulated:          true,
			Sim: SimParams{
				Style:              StyleStencilShadow,
				VisibleLayers:      1.15,
				HiddenLayers:       1.39,
				Lights:             5,
				ShadowCoverage:     0.13,
				VolumePassCoverage: 7.0,
				VolumeFailCoverage: 2.6,
				ClipFrac:           0.37,
				CullFrac:           0.28,
				FillerCoverage:     0.15,
				AnisoFrac:          0.40,
				BigCell:            128,
				VertexStride:       36,
				TexSize:            1024,
				NumTextures:        6,
			},
		},
		{
			Name: "Quake4/demo4", Game: "Quake4", Engine: "Doom3",
			Release: "October 2005", API: gfxapi.OpenGL,
			Frames: 2976, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 405, AvgIndicesPerFrame: 172330, BytesPerIndex: 4,
			VSInstr: 27.92, FSInstr: 16.29, FSTex: 4.33,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.4,
			Simulated:          true,
			Sim: SimParams{
				Style:              StyleStencilShadow,
				VisibleLayers:      1.1,
				HiddenLayers:       1.25,
				Lights:             7,
				ShadowCoverage:     0.36,
				VolumePassCoverage: 3.6,
				VolumeFailCoverage: 2.6,
				ClipFrac:           0.51,
				CullFrac:           0.21,
				FillerCoverage:     0.08,
				AnisoFrac:          0.32,
				BigCell:            96,
				VertexStride:       52,
				TexSize:            512,
				NumTextures:        6,
			},
		},
		{
			Name: "Quake4/guru5", Game: "Quake4", Engine: "Doom3",
			Release: "October 2005", API: gfxapi.OpenGL,
			Frames: 3081, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 166, AvgIndicesPerFrame: 135051, BytesPerIndex: 4,
			VSInstr: 24.42, FSInstr: 17.16, FSTex: 4.54,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.4,
		},
		{
			Name: "Riddick/MainFrame", Game: "Riddick", Engine: "Starbreeze",
			Release: "December 2004", API: gfxapi.OpenGL,
			Frames: 1629, TextureQuality: "High/Trilinear", AnisoLevel: 0,
			UsesShaders:        true,
			AvgIndicesPerBatch: 356, AvgIndicesPerFrame: 214965, BytesPerIndex: 2,
			VSInstr: 16.70, FSInstr: 14.64, FSTex: 1.94,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.6,
		},
		{
			Name: "Riddick/PrisonArea", Game: "Riddick", Engine: "Starbreeze",
			Release: "December 2004", API: gfxapi.OpenGL,
			Frames: 2310, TextureQuality: "High/Trilinear", AnisoLevel: 0,
			UsesShaders:        true,
			AvgIndicesPerBatch: 658, AvgIndicesPerFrame: 239425, BytesPerIndex: 2,
			VSInstr: 20.96, FSInstr: 13.63, FSTex: 1.83,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.6,
		},
		{
			Name: "FEAR/built-in demo", Game: "FEAR", Engine: "Monolith",
			Release: "October 2005", API: gfxapi.Direct3D,
			Frames: 576, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 641, AvgIndicesPerFrame: 331374, BytesPerIndex: 2,
			VSInstr: 18.19, FSInstr: 21.30, FSTex: 2.79,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 2.2,
			TransitionPeaks:    true,
		},
		{
			Name: "FEAR/interval2", Game: "FEAR", Engine: "Monolith",
			Release: "October 2005", API: gfxapi.Direct3D,
			Frames: 2102, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 1085, AvgIndicesPerFrame: 307202, BytesPerIndex: 2,
			VSInstr: 21.02, FSInstr: 19.31, FSTex: 2.72,
			PrimMix:            [3]float64{0.967, 0, 0.033},
			StateCallsPerBatch: 2.2,
			TransitionPeaks:    true,
		},
		{
			Name: "Half Life 2 LC/built-in", Game: "Half Life 2 Lost Coast",
			Engine:  "Valve Source",
			Release: "October 2005", API: gfxapi.Direct3D,
			Frames: 1805, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 736, AvgIndicesPerFrame: 328919, BytesPerIndex: 2,
			VSInstr: 27.04, FSInstr: 19.94, FSTex: 3.88,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.8,
		},
		{
			Name: "Oblivion/Anvil Castle", Game: "Oblivion", Engine: "Gamebryo",
			Release: "March 2006", API: gfxapi.Direct3D,
			Frames: 2620, TextureQuality: "High/Trilinear", AnisoLevel: 0,
			UsesShaders:        true,
			AvgIndicesPerBatch: 998, AvgIndicesPerFrame: 711196, BytesPerIndex: 2,
			VSInstr: 18.88, VSInstr2: 37.72,
			FSInstr: 15.48, FSTex: 1.36,
			PrimMix:            [3]float64{0.463, 0.537, 0},
			StateCallsPerBatch: 1.2,
			TransitionPeaks:    true,
		},
		{
			Name: "Splinter Cell 3/first level", Game: "Splinter Cell 3",
			Engine:  "Unreal 2.5++",
			Release: "March 2005", API: gfxapi.Direct3D,
			Frames: 2970, TextureQuality: "High/Anisotropic", AnisoLevel: 16,
			UsesShaders:        true,
			AvgIndicesPerBatch: 308, AvgIndicesPerFrame: 177300, BytesPerIndex: 2,
			VSInstr: 28.36, FSInstr: 4.62, FSTex: 2.13,
			PrimMix:            [3]float64{0.691, 0.267, 0.042},
			StateCallsPerBatch: 1.6,
		},
	}
}

// Modern returns the three synthetic render-to-texture workloads that
// exercise the multi-pass subsystem: a deferred-shading G-buffer scene,
// a cascaded-shadow-map scene, and a particle overdraw storm. They are
// not Table I rows — the paper's 2004-2006 titles predate widespread
// deferred pipelines — but they reuse the same calibration machinery so
// every characterization surface handles them with no special cases.
func Modern() []Profile {
	return []Profile{
		{
			Name: "Deferred/gbuffer", Game: "Deferred", Engine: "gpuchar-mp",
			Release: "synthetic", API: gfxapi.OpenGL,
			Frames: 600, TextureQuality: "High/Trilinear", AnisoLevel: 0,
			UsesShaders:        true,
			AvgIndicesPerBatch: 600, AvgIndicesPerFrame: 180000, BytesPerIndex: 4,
			VSInstr: 18.5, FSInstr: 14.2, FSTex: 2.6,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.5,
			Simulated:          true,
			Sim: SimParams{
				Style:          StyleDeferred,
				VisibleLayers:  1.6,
				HiddenLayers:   0.8,
				Lights:         4,
				ClipFrac:       0.20,
				CullFrac:       0.20,
				FillerCoverage: 0.20,
				BigCell:        96,
				VertexStride:   40,
				TexSize:        256,
				NumTextures:    8,
				RTSize:         256,
			},
		},
		{
			Name: "ShadowMap/cascades", Game: "ShadowMap", Engine: "gpuchar-mp",
			Release: "synthetic", API: gfxapi.OpenGL,
			Frames: 600, TextureQuality: "High/Trilinear", AnisoLevel: 0,
			UsesShaders:        true,
			AvgIndicesPerBatch: 450, AvgIndicesPerFrame: 160000, BytesPerIndex: 4,
			VSInstr: 15.3, FSInstr: 11.7, FSTex: 2.4,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.3,
			Simulated:          true,
			Sim: SimParams{
				Style:          StyleShadowMap,
				VisibleLayers:  1.4,
				HiddenLayers:   0.6,
				ClipFrac:       0.25,
				CullFrac:       0.20,
				FillerCoverage: 0.15,
				BigCell:        128,
				VertexStride:   36,
				TexSize:        256,
				NumTextures:    6,
				RTSize:         128,
				Cascades:       3,
			},
		},
		{
			Name: "ParticleStorm/overdraw", Game: "ParticleStorm", Engine: "gpuchar-mp",
			Release: "synthetic", API: gfxapi.OpenGL,
			Frames: 600, TextureQuality: "High/Trilinear", AnisoLevel: 0,
			UsesShaders:        true,
			AvgIndicesPerBatch: 500, AvgIndicesPerFrame: 150000, BytesPerIndex: 2,
			VSInstr: 12.4, FSInstr: 9.6, FSTex: 1.8,
			PrimMix:            [3]float64{1, 0, 0},
			StateCallsPerBatch: 1.7,
			Simulated:          true,
			Sim: SimParams{
				Style:          StyleParticle,
				VisibleLayers:  1.3,
				HiddenLayers:   0.5,
				AlphaCoverage:  0.8,
				AlphaKillFrac:  0.30,
				ClipFrac:       0.15,
				CullFrac:       0.15,
				FillerCoverage: 0.25,
				BigCell:        96,
				VertexStride:   32,
				TexSize:        256,
				NumTextures:    8,
				RTSize:         128,
				ParticleLayers: 6,
			},
		},
	}
}

// All returns every registered profile: the twelve Table I demos
// followed by the synthetic multi-pass workloads.
func All() []Profile {
	return append(Registry(), Modern()...)
}

// ByName returns the profile with the given name, or nil.
func ByName(name string) *Profile {
	reg := All()
	for i := range reg {
		if reg[i].Name == name {
			return &reg[i]
		}
	}
	return nil
}

// Simulated returns the profiles the paper measures microarchitecturally
// (the OpenGL demos driven through ATTILA): UT2004/Primeval,
// Doom3/trdemo2 and Quake4/demo4.
func Simulated() []Profile {
	var out []Profile
	for _, p := range Registry() {
		if p.Simulated {
			out = append(out, p)
		}
	}
	return out
}
