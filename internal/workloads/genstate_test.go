package workloads

import (
	"testing"

	"gpuchar/internal/gfxapi"
)

// renderFrames runs a demo for n frames against a null backend and
// returns the per-frame API statistics.
func renderFrames(t *testing.T, name string, n int) []gfxapi.FrameStats {
	t.Helper()
	prof := ByName(name)
	if prof == nil {
		t.Fatalf("unknown demo %q", name)
	}
	dev := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
	wl := New(prof, dev, 1024, 768)
	wl.SetRegionBoundary(n / 2)
	if err := wl.Run(n); err != nil {
		t.Fatal(err)
	}
	return dev.Frames()
}

// TestGenStateResumeBitIdentical is the contract the serve layer's
// frame-boundary checkpoints rest on: rendering k frames, capturing
// GenState, and continuing on a fresh workload reproduces the
// continuous run's remaining frames exactly.
func TestGenStateResumeBitIdentical(t *testing.T) {
	const total, cut = 12, 5
	for _, prof := range All() {
		name := prof.Name
		t.Run(name, func(t *testing.T) {
			want := renderFrames(t, name, total)

			prof := ByName(name)
			// First leg: render the frames before the cut and capture state.
			dev1 := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
			wl1 := New(prof, dev1, 1024, 768)
			wl1.SetRegionBoundary(total / 2)
			if err := wl1.Run(cut); err != nil {
				t.Fatal(err)
			}
			st := wl1.GenState()
			if st.FrameIdx != cut {
				t.Fatalf("GenState.FrameIdx = %d, want %d", st.FrameIdx, cut)
			}

			// Second leg: fresh device + workload, Setup, restore, continue.
			dev2 := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
			wl2 := New(prof, dev2, 1024, 768)
			wl2.SetRegionBoundary(total / 2)
			if err := wl2.Setup(); err != nil {
				t.Fatal(err)
			}
			wl2.SetGenState(st)
			// The fresh Setup's creation burst belongs to frame 0, which the
			// first leg already produced: drop it.
			dev2.DropFrame()
			for i := cut; i < total; i++ {
				wl2.RenderFrame()
			}

			got := append(append([]gfxapi.FrameStats{}, dev1.Frames()...), dev2.Frames()...)
			if len(got) != len(want) {
				t.Fatalf("got %d frames, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("frame %d differs after resume:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGenStateRoundTrip pins that SetGenState(GenState()) is a no-op
// mid-run — the two methods cover the same field set.
func TestGenStateRoundTrip(t *testing.T) {
	prof := ByName("Quake4/demo4")
	dev := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
	wl := New(prof, dev, 1024, 768)
	if err := wl.Run(3); err != nil {
		t.Fatal(err)
	}
	st := wl.GenState()
	wl.SetGenState(st)
	if got := wl.GenState(); got != st {
		t.Errorf("round trip changed state:\n got %+v\nwant %+v", got, st)
	}
	wl.RenderFrame()
	if got := wl.GenState(); got == st {
		t.Errorf("state did not advance after a frame")
	}
}
