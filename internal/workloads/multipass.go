package workloads

import (
	"fmt"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// buildMultipass creates the off-screen render targets and the
// full-screen quad for the render-to-texture styles. Everything here is
// a deterministic function of the profile, so a resumed run's Setup
// recreates identical resources at identical device addresses — the
// resume invariant rests on it.
func (wl *Workload) buildMultipass() error {
	p := wl.Prof
	sp := &p.Sim
	if !p.Simulated {
		return nil
	}
	switch sp.Style {
	case StyleDeferred, StyleShadowMap, StyleParticle:
	default:
		return nil
	}

	size := sp.RTSize
	if size == 0 {
		size = 256
	}
	mk := func(name string) error {
		rt, err := wl.Dev.CreateRenderTarget(name, size, size)
		if err != nil {
			return err
		}
		wl.rts = append(wl.rts, rt)
		return nil
	}
	switch sp.Style {
	case StyleDeferred:
		if err := mk(p.Game + "-gbuffer"); err != nil {
			return err
		}
	case StyleShadowMap:
		for i := 0; i < sp.Cascades; i++ {
			if err := mk(fmt.Sprintf("%s-shadow%d", p.Game, i)); err != nil {
				return err
			}
		}
	case StyleParticle:
		if err := mk(p.Game + "-particles"); err != nil {
			return err
		}
	}

	// Full-screen quad over big cells; UVs span the resolve texture once
	// across the screen. Placed in front of every scene layer so its
	// fragments survive the depth test.
	stride := sp.VertexStride
	if stride == 0 {
		stride = 48
	}
	wl.fsQuad = gridMesh(wl.Dev, 0, 0, wl.W, wl.H, 64, 0.12,
		1/float64(wl.W), 1/float64(wl.H), stride, p.BytesPerIndex, wl.W, wl.H)
	return nil
}

// drawPassQuad draws the full-screen quad sampling tex on unit 0. It
// mirrors drawBuffers — program dithering, texture rotation, state-call
// padding — so full-screen passes count in the same calibration
// accumulators as scene batches.
func (wl *Workload) drawPassQuad(tex *texture.Texture) {
	m := wl.fsQuad
	w := float64(len(m.ib.Indices))
	vs := wl.pickVS(w)
	fs := wl.pickFS(w, false)
	if wl.scratch.batchNum%8 == 0 {
		wl.bindNextTextures()
	}
	wl.Dev.BindTexture(0, tex,
		texture.SamplerState{Filter: texture.FilterBilinear})
	wl.scratch.batchNum++
	wl.scratch.stateAcc += wl.Prof.StateCallsPerBatch
	if n := int(wl.scratch.stateAcc); n > 0 {
		wl.emitStateCalls(n)
		wl.scratch.stateAcc -= float64(n)
	}
	wl.Dev.DrawIndexed(m.vb, m.ib, geom.TriangleList, vs, fs)
}

// renderDeferredFrame composes one deferred-shading frame: the scene
// geometry rendered once into the G-buffer target, resolved to a
// texture, then per light a full-screen additive quad on the backbuffer
// sampling it. Each frame resolves before it samples, so a resumed run
// never depends on a previous frame's target contents.
func (wl *Workload) renderDeferredFrame() {
	dev := wl.Dev
	sp := &wl.Prof.Sim
	dev.SetMatrix(0, gmath.Identity())
	wl.setShadingConsts()
	fill, clip, cull := wl.chunkCounts(wl.frameMod(wl.frameIdx))

	// --- Geometry pass into the G-buffer. ---
	rt := wl.rts[0]
	dev.SetRenderTarget(rt)
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	dev.SetCull(geom.CullBack)
	dev.SetZState(zst.DefaultState())
	dev.SetRopState(rop.DefaultState())
	wl.drawScenePass(fill, clip, cull)
	if err := dev.ResolveToTexture(rt); err != nil {
		panic(fmt.Sprintf("workloads: resolve %s: %v", rt.Name, err))
	}
	dev.SetRenderTarget(nil)

	// --- Lighting: additive full-screen quads sampling the G-buffer. ---
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	lightZ := zst.DefaultState()
	lightZ.ZWrite = false
	dev.SetZState(lightZ)
	dev.SetRopState(rop.AdditiveBlend())
	for l := 0; l < sp.Lights; l++ {
		wl.drawPassQuad(rt.Tex)
	}
}

// renderShadowMapFrame composes one cascaded-shadow-map frame: each
// cascade renders the scene depth-only (color masked) into its own
// target with a cascade-tinted clear, then the main pass renders the
// scene forward and composites one sampling quad per cascade.
func (wl *Workload) renderShadowMapFrame() {
	dev := wl.Dev
	dev.SetMatrix(0, gmath.Identity())
	wl.setShadingConsts()
	fill, clip, cull := wl.chunkCounts(wl.frameMod(wl.frameIdx))

	maskOff := rop.State{}

	// --- Depth-only cascade passes. ---
	for i, rt := range wl.rts {
		dev.SetRenderTarget(rt)
		dev.Clear(gfxapi.ClearOp{
			ClearColor: true, ClearDepth: true, Z: 1,
			Color: gmath.V4(float32(i+1)/float32(len(wl.rts)+1), 0, 0, 1),
		})
		dev.SetCull(geom.CullBack)
		dev.SetZState(zst.DefaultState())
		dev.SetRopState(maskOff)
		wl.drawScenePass(fill, clip, cull)
		if err := dev.ResolveToTexture(rt); err != nil {
			panic(fmt.Sprintf("workloads: resolve %s: %v", rt.Name, err))
		}
	}
	dev.SetRenderTarget(nil)

	// --- Main pass: the lit scene, then one sampling quad per cascade. ---
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	dev.SetCull(geom.CullBack)
	dev.SetZState(zst.DefaultState())
	dev.SetRopState(rop.AlphaBlend())
	wl.drawScenePass(fill, clip, cull)

	shadowZ := zst.DefaultState()
	shadowZ.ZWrite = false
	dev.SetZState(shadowZ)
	for _, rt := range wl.rts {
		wl.drawPassQuad(rt.Tex)
	}
}

// renderParticleFrame composes one overdraw-storm frame: the scene
// forward-rendered on the backbuffer, then ParticleLayers additive
// ribbon layers blasted into the low-resolution particle target, which
// is resolved and alpha-composited back over the frame.
func (wl *Workload) renderParticleFrame() {
	dev := wl.Dev
	sp := &wl.Prof.Sim
	dev.SetMatrix(0, gmath.Identity())
	wl.setShadingConsts()
	dev.SetConst(15, gmath.V4(float32(sp.AlphaKillFrac), 0, 0, 0))
	fill, clip, cull := wl.chunkCounts(wl.frameMod(wl.frameIdx))

	// --- Scene pass on the backbuffer. ---
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	dev.SetCull(geom.CullBack)
	dev.SetZState(zst.DefaultState())
	dev.SetRopState(rop.AlphaBlend())
	wl.drawScenePass(fill, clip, cull)
	for i := range wl.foliage {
		wl.drawMesh(wl.foliage[i].mesh, geom.TriangleList, true)
	}

	// --- Particle pass into the off-screen target: additive layers with
	// depth writes off, the classic fill-rate storm. ---
	rt := wl.rts[0]
	dev.SetRenderTarget(rt)
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
	particleZ := zst.DefaultState()
	particleZ.ZWrite = false
	dev.SetZState(particleZ)
	dev.SetRopState(rop.AdditiveBlend())
	for l := 0; l < sp.ParticleLayers; l++ {
		wl.drawRibbonChunks(wl.filler, fill, geom.TriangleList)
	}
	if err := dev.ResolveToTexture(rt); err != nil {
		panic(fmt.Sprintf("workloads: resolve %s: %v", rt.Name, err))
	}
	dev.SetRenderTarget(nil)

	// --- Composite the resolved particles over the frame. ---
	compZ := zst.DefaultState()
	compZ.ZWrite = false
	dev.SetZState(compZ)
	dev.SetRopState(rop.AlphaBlend())
	wl.drawPassQuad(rt.Tex)
}
