package workloads

import (
	"gpuchar/internal/cache"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
)

// Scene geometry is specified directly in clip space (the vertex
// programs transform with an identity model-view-projection), which
// gives exact control over screen coverage, triangle size and depth
// layering — the quantities the paper's microarchitectural tables are
// calibrated against.

// pixelToClipX converts an x pixel coordinate to clip space.
func pixelToClipX(x float64, w int) float32 { return float32(x/float64(w)*2 - 1) }

// pixelToClipY converts a y pixel coordinate to clip space.
func pixelToClipY(y float64, h int) float32 { return float32(y/float64(h)*2 - 1) }

// mesh couples the device buffers of one piece of geometry.
type mesh struct {
	vb   *geom.VertexBuffer
	ib   *geom.IndexBuffer
	tris int
	// flipIB, created on demand, reverses the winding (back faces of
	// shadow volumes).
	flipIB *geom.IndexBuffer
}

// gridMesh builds an axis-aligned rectangular grid covering the pixel
// rectangle [x0,x1) x [y0,y1) at clip depth z, subdivided into cell x
// cell quads (two triangles each). Cells aligned to even pixels keep
// horizontal and vertical edges on quad boundaries, so only the cell
// diagonals produce partial quads — matching the high quad efficiencies
// of the paper's Table X. Indices are emitted row-major so the
// post-transform vertex cache sees the locality of a well-ordered mesh.
//
// uTile and vTile set the texture tiling in texels per pixel; unequal
// values create the anisotropic footprints that drive Table XIII.
func gridMesh(dev *gfxapi.Device, x0, y0, x1, y1, cell int, z float32,
	uTile, vTile float64, stride, idxBytes, screenW, screenH int) mesh {

	if cell < 2 {
		cell = 2
	}
	cols := (x1 - x0 + cell - 1) / cell
	rows := (y1 - y0 + cell - 1) / cell
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	nvx, nvy := cols+1, rows+1
	pos := make([]gmath.Vec4, 0, nvx*nvy)
	uv := make([]gmath.Vec4, 0, nvx*nvy)
	col := make([]gmath.Vec4, 0, nvx*nvy)
	for r := 0; r < nvy; r++ {
		for c := 0; c < nvx; c++ {
			px := float64(minI(x0+c*cell, x1))
			py := float64(minI(y0+r*cell, y1))
			pos = append(pos, gmath.Vec4{
				X: pixelToClipX(px, screenW), Y: pixelToClipY(py, screenH),
				Z: z, W: 1,
			})
			uv = append(uv, gmath.Vec4{
				X: float32(px * uTile), Y: float32(py * vTile), W: 1,
			})
			col = append(col, gmath.V4(0.8, 0.8, 0.8, 1))
		}
	}
	idx := make([]uint32, 0, rows*cols*6)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v00 := uint32(r*nvx + c)
			v10 := v00 + 1
			v01 := v00 + uint32(nvx)
			v11 := v01 + 1
			// CCW winding in window space (y grows upward after the
			// viewport transform).
			idx = append(idx, v00, v10, v11, v00, v11, v01)
		}
	}
	vb := dev.CreateVertexBuffer([][]gmath.Vec4{pos, uv, col}, stride)
	ib := dev.CreateIndexBuffer(idx, idxBytes)
	return mesh{vb: vb, ib: ib, tris: rows * cols * 2}
}

// ribbonKind selects the geometric disposition of a ribbon.
type ribbonKind uint8

const (
	// ribbonVisible places small on-screen triangles that pass all
	// tests — the numerical triangle filler.
	ribbonVisible ribbonKind = iota
	// ribbonClipped places the strip fully outside the view frustum.
	ribbonClipped
	// ribbonCulled winds the strip backward so every triangle is
	// back-face culled.
	ribbonCulled
)

// ribbonMesh builds a strip-ordered triangle list of n triangles:
// triangle i uses vertices (i, i+1, i+2), so each triangle shares two
// vertices with its predecessor and the post-transform vertex cache
// converges to the paper's 66% hit rate. The ribbon serpentines across
// the screen with triangles of roughly triPx pixels; row turns produce
// a couple of degenerate (culled) triangles instead of screen-spanning
// slivers, and a full vertical wrap steps slightly closer in depth so
// re-covered rows still pass the depth test.
func ribbonMesh(dev *gfxapi.Device, n int, kind ribbonKind, z float32,
	triPx float64, seed uint32, stride, idxBytes, screenW, screenH int) mesh {

	if n < 1 {
		n = 1
	}
	nv := n + 2
	pos := make([]gmath.Vec4, nv)
	uv := make([]gmath.Vec4, nv)
	col := make([]gmath.Vec4, nv)
	// dirAt records the horizontal direction in force when each vertex
	// was placed, which determines per-triangle winding.
	dirAt := make([]int8, nv)

	// Triangle legs: width w horizontal step, height h. Area = w*h/2.
	w := 4.0
	h := 2 * triPx / w
	if h < 2 {
		h = 2
	}
	x := float64(2 + int(seed%32)*2)
	y := float64(2 + int(seed/7%32)*2)
	depth := z
	dir := int8(1)
	for i := 0; i < nv; i++ {
		py := y
		if i%2 == 1 {
			py = y + h
		}
		pos[i] = gmath.Vec4{
			X: pixelToClipX(x, screenW), Y: pixelToClipY(py, screenH),
			Z: depth, W: 1,
		}
		// Normalized UVs at roughly half a texel per pixel for typical
		// texture sizes.
		uv[i] = gmath.Vec4{X: float32(x / 1024), Y: float32(py / 1024), W: 1}
		col[i] = gmath.V4(0.5, 0.6, 0.7, 1)
		dirAt[i] = dir
		if i%2 == 1 {
			// Both vertices of this column placed: advance.
			nx := x + float64(dir)*w
			if nx > float64(screenW)-8 || nx < 2 {
				// Turn: next row, reversed direction, same x (the two
				// bridging triangles are degenerate and get culled).
				dir = -dir
				y += h + 2
				if y > float64(screenH)-h-8 {
					// Vertical wrap: restart at the top a hair closer.
					y = 2
					depth -= 0.002
				}
			} else {
				x = nx
			}
		}
	}
	if kind == ribbonClipped {
		// Shift the whole strip beyond the right clip plane.
		for i := range pos {
			pos[i].X += 4
		}
	}

	idx := make([]uint32, 0, 3*n)
	for i := 0; i < n; i++ {
		a, b, c := uint32(i), uint32(i+1), uint32(i+2)
		// On right-going rows the even triangles come out clockwise; on
		// left-going rows the odd ones do. Swap two indices to make
		// every triangle counter-clockwise...
		if (i%2 == 0) == (dirAt[i+2] > 0) {
			a, b = b, a
		}
		// ...and flip all of them for the culled ribbon, so back-face
		// culling removes the whole strip.
		if kind == ribbonCulled {
			a, b = b, a
		}
		idx = append(idx, a, b, c)
	}
	vb := dev.CreateVertexBuffer([][]gmath.Vec4{pos, uv, col}, stride)
	ib := dev.CreateIndexBuffer(idx, idxBytes)
	return mesh{vb: vb, ib: ib, tris: n}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mergeMeshes concatenates two meshes sharing the same attribute layout
// into one vertex buffer and one index buffer, so a split layer still
// issues a single draw call.
func mergeMeshes(dev *gfxapi.Device, a, b mesh, stride, idxBytes int) mesh {
	n := uint32(a.vb.NumVertices())
	attribs := make([][]gmath.Vec4, len(a.vb.Attribs))
	for i := range attribs {
		merged := make([]gmath.Vec4, 0, len(a.vb.Attribs[i])+len(b.vb.Attribs[i]))
		merged = append(merged, a.vb.Attribs[i]...)
		merged = append(merged, b.vb.Attribs[i]...)
		attribs[i] = merged
	}
	vb := dev.CreateVertexBuffer(attribs, stride)
	idx := make([]uint32, 0, len(a.ib.Indices)+len(b.ib.Indices))
	idx = append(idx, a.ib.Indices...)
	for _, x := range b.ib.Indices {
		idx = append(idx, x+n)
	}
	ib := dev.CreateIndexBuffer(idx, idxBytes)
	return mesh{vb: vb, ib: ib, tris: a.tris + b.tris}
}

// SharingStats compares vertex-shading work for the same mesh submitted
// as an indexed triangle list versus a triangle strip — the paper's
// Table V argument: with a post-transform cache, a well-ordered list
// shades almost exactly as few vertices as a strip, so developers pick
// lists for their convenience and pay only index bandwidth.
type SharingStats struct {
	Triangles    int
	ListIndices  int
	StripIndices int
	// ListShades and StripShades are vertex shader executions under a
	// FIFO post-transform cache of the given size.
	ListShades  int
	StripShades int
}

// ListVsStrip runs the comparison for a serpentine mesh of n triangles
// under a vertex cache with cacheSize entries.
func ListVsStrip(n, cacheSize int) SharingStats {
	st := SharingStats{Triangles: n}
	if cacheSize <= 0 {
		cacheSize = 1 // degenerate but valid: every lookup misses
	}
	vc := cache.MustVertexCache(cacheSize)
	// Strip-ordered triangle list: triangle i references (i, i+1, i+2).
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			if !vc.Lookup(uint32(i + k)) {
				st.ListShades++
			}
			st.ListIndices++
		}
	}
	// Strip: each vertex referenced exactly once.
	vc.Clear()
	for i := 0; i < n+2; i++ {
		if !vc.Lookup(uint32(i)) {
			st.StripShades++
		}
		st.StripIndices++
	}
	return st
}
