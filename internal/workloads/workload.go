package workloads

import (
	"fmt"
	"math"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
)

// Workload drives one profile's synthetic timedemo through a device.
// Create it with New, then call RenderFrame repeatedly (or Run).
type Workload struct {
	Prof *Profile
	Dev  *gfxapi.Device
	W, H int

	// OnFrame, when set, is invoked after each frame completes (after
	// Dev.EndFrame) with the zero-based frame index — the progress
	// tracker's per-frame feed.
	OnFrame func(frame int)

	rng uint32

	// Shader program variants. Averages of Tables IV and XII are hit by
	// dithering between the floor and ceiling integer program lengths,
	// weighted by batch indices.
	vsLo, vsHi   *shader.Program
	vsLo2, vsHi2 *shader.Program // Oblivion region 2
	fsVar        [2][2]*shader.Program
	fsAlphaVar   [2][2]*shader.Program
	fsDepth      *shader.Program

	vsSumW, vsHiW                float64
	fsSumW, fsInstrHiW, fsTexHiW float64

	textures  []*texture.Texture
	alphaTex  *texture.Texture
	texCursor int

	// Scene meshes (simulated profiles).
	visFull    []layerMesh
	visPartial layerMesh
	interleave layerMesh
	hidden     []layerMesh
	hiddenPart layerMesh
	foliage    []layerMesh

	// Stencil shadow geometry.
	volShadow   mesh // back-face quad behind the scene over the shadow rect
	volPairBack mesh // balanced fail pair, back then front
	volPairFrnt mesh
	volPass     mesh // quads in front of the scene

	// Multi-pass resources (StyleDeferred/StyleShadowMap/StyleParticle):
	// the off-screen targets created at setup and the full-screen quad
	// that samples their resolves.
	rts    []*gfxapi.RenderTarget
	fsQuad mesh

	// Ribbon chunk pools.
	filler *chunkedRibbon
	clipR  *chunkedRibbon
	cullR  *chunkedRibbon
	// Strip/fan ribbons for non-TL primitive mixes (API-only profiles).
	stripR *chunkedRibbon
	fanR   *chunkedRibbon

	// Per-frame plan.
	passes         int
	fixedTrisPass  int // grid + foliage triangles drawn per pass
	volumeTris     int // volume triangles per frame
	frameIdx       int
	regionBoundary int
	accChunks      [3]float64 // dither carry for filler/clip/cull chunk counts
	scratch        renderScratch

	setupDone bool
}

// layerMesh is a grid layer plus its depth.
type layerMesh struct {
	mesh
	z float32
}

// chunkedRibbon partitions one long ribbon into batch-sized index
// buffers created at setup time.
type chunkedRibbon struct {
	vb       *geom.VertexBuffer
	chunks   []*geom.IndexBuffer
	chunkTri int
}

// New prepares a workload for the given profile on a device rendering
// at w x h (the paper uses 1024x768).
func New(prof *Profile, dev *gfxapi.Device, w, h int) *Workload {
	return &Workload{
		Prof: prof, Dev: dev, W: w, H: h, rng: 0x9E3779B9,
		regionBoundary: prof.Frames / 2,
	}
}

// SetRegionBoundary overrides the frame at which two-region demos
// (Oblivion) switch to their second vertex-shader regime. Short
// characterization runs scale the boundary to the run length so both
// regions are sampled.
func (wl *Workload) SetRegionBoundary(frame int) { wl.regionBoundary = frame }

// Run executes Setup plus n frames (clamped to nothing if n <= 0).
func (wl *Workload) Run(n int) error {
	if err := wl.Setup(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		wl.RenderFrame()
	}
	return nil
}

// nextRand is a small deterministic LCG; the generators avoid math/rand
// so that trace replays and tests are bit-stable across Go versions.
func (wl *Workload) nextRand() uint32 {
	wl.rng = wl.rng*1664525 + 1013904223
	return wl.rng
}

// Setup creates every resource the demo needs: the Figure 3 startup
// spike falls out of the creation burst landing in frame 0.
func (wl *Workload) Setup() error {
	if wl.setupDone {
		return nil
	}
	p := wl.Prof
	if err := wl.buildPrograms(); err != nil {
		return err
	}
	if err := wl.buildTextures(); err != nil {
		return err
	}
	// passes counts how many times the scene geometry is drawn per frame
	// (the chunkCounts budget divisor), not the total pass count: the
	// deferred lighting and particle composite passes draw only
	// full-screen quads.
	wl.passes = 1
	if p.Simulated {
		switch p.Sim.Style {
		case StyleStencilShadow:
			wl.passes = 1 + p.Sim.Lights
		case StyleShadowMap:
			wl.passes = p.Sim.Cascades + 1
		}
	}
	if p.Simulated {
		wl.buildScene()
	}
	wl.buildRibbons()
	if err := wl.buildMultipass(); err != nil {
		return err
	}
	// Level-load burst: games issue thousands of state and creation
	// calls while loading, producing the startup spike of Figure 3.
	wl.emitStateCalls(8000)
	wl.setupDone = true
	return nil
}

func (wl *Workload) buildPrograms() error {
	p := wl.Prof
	mk := func(name string, instr float64) (lo, hi *shader.Program, err error) {
		fl := int(math.Floor(instr))
		if fl < 4 {
			fl = 4
		}
		lo, err = shader.SynthesizeVS(name+"-lo", fl)
		if err != nil {
			return nil, nil, err
		}
		hi, err = shader.SynthesizeVS(name+"-hi", fl+1)
		return lo, hi, err
	}
	var err error
	if wl.vsLo, wl.vsHi, err = mk(p.Game+"-vs", p.VSInstr); err != nil {
		return err
	}
	if p.VSInstr2 > 0 {
		if wl.vsLo2, wl.vsHi2, err = mk(p.Game+"-vs2", p.VSInstr2); err != nil {
			return err
		}
	}

	fi := int(math.Floor(p.FSInstr))
	ft := int(math.Floor(p.FSTex))
	if ft < 1 {
		ft = 1
	}
	units := minI(4, ft+1)
	for ih := 0; ih < 2; ih++ {
		for th := 0; th < 2; th++ {
			total, tex := fi+ih, ft+th
			if total < tex+1 {
				total = tex + 1
			}
			fs, err := shader.SynthesizeFS(
				fmt.Sprintf("%s-fs-%d-%d", p.Game, total, tex), total, tex, units)
			if err != nil {
				return err
			}
			wl.fsVar[ih][th] = fs
			if total < tex+3 {
				total = tex + 3
			}
			afs, err := shader.SynthesizeAlphaFS(
				fmt.Sprintf("%s-afs-%d-%d", p.Game, total, tex), total, tex, units)
			if err != nil {
				return err
			}
			wl.fsAlphaVar[ih][th] = afs
		}
	}
	wl.fsDepth = shader.StencilVolumeFS()
	// Register every program with the device so draws referencing them
	// can be traced and replayed.
	progs := []*shader.Program{wl.vsLo, wl.vsHi, wl.fsDepth}
	if wl.vsLo2 != nil {
		progs = append(progs, wl.vsLo2, wl.vsHi2)
	}
	for ih := 0; ih < 2; ih++ {
		for th := 0; th < 2; th++ {
			progs = append(progs, wl.fsVar[ih][th], wl.fsAlphaVar[ih][th])
		}
	}
	for _, prog := range progs {
		if _, err := wl.Dev.CreateProgram(prog); err != nil {
			return err
		}
	}
	return nil
}

func (wl *Workload) buildTextures() error {
	p := wl.Prof
	n := p.Sim.NumTextures
	if n == 0 {
		n = 8
	}
	size := p.Sim.TexSize
	if size == 0 {
		size = 256
	}
	for i := 0; i < n; i++ {
		// The paper's games mix DXT1/3/5 (§III.E). The Doom3-engine
		// titles lean on DXT1 (normal-map tricks aside), and the
		// 16-byte-block formats double per-texel footprint, so the
		// stencil-shadow profiles stay DXT1-heavy.
		format := texture.FormatDXT1
		if p.Sim.Style != StyleStencilShadow {
			switch i % 4 {
			case 1:
				format = texture.FormatDXT5
			case 3:
				format = texture.FormatDXT3
			}
		}
		tex, err := wl.Dev.CreateTexture(gfxapi.TextureSpec{
			Name:   fmt.Sprintf("%s-tex%d", p.Game, i),
			Format: format, W: size, H: size,
			Kind: gfxapi.KindNoise, Seed: uint32(i)*977 + 13,
		})
		if err != nil {
			return err
		}
		wl.textures = append(wl.textures, tex)
	}
	// Alpha-tested foliage texture: block noise keeps the filtered
	// alpha distribution controllable.
	alpha, err := wl.Dev.CreateTexture(gfxapi.TextureSpec{
		Name:   p.Game + "-foliage",
		Format: texture.FormatDXT5, W: size, H: size,
		Kind: gfxapi.KindBlockNoise, Seed: 0xF01, Cell: 16,
	})
	if err != nil {
		return err
	}
	wl.alphaTex = alpha
	return nil
}

// opaqueSampler returns the Table I filtering configuration.
func (wl *Workload) opaqueSampler() texture.SamplerState {
	bias := float32(wl.Prof.Sim.LODBias)
	if wl.Prof.AnisoLevel > 0 {
		return texture.SamplerState{
			Filter: texture.FilterAniso, MaxAniso: wl.Prof.AnisoLevel,
			LODBias: bias,
		}
	}
	return texture.SamplerState{Filter: texture.FilterTrilinear, LODBias: bias}
}

// buildScene constructs the layered grids and shadow volumes of a
// simulated profile.
func (wl *Workload) buildScene() {
	p := wl.Prof
	sp := &p.Sim
	stride := sp.VertexStride
	if stride == 0 {
		stride = 48
	}
	ib := p.BytesPerIndex

	// Grid UVs are normalized, so one texel per pixel is 1/texSize per
	// pixel. A horizontal AnisoFrac share of every visible layer gets a
	// 4x vertical tiling, giving those fragments the 4-probe anisotropic
	// footprints that drive Table XIII.
	texSize := sp.TexSize
	if texSize == 0 {
		texSize = 256
	}
	// The negative LOD bias only bites when the base footprint is
	// correspondingly denser: 2^-bias texels per pixel biased back to
	// mip level 0.
	baseTile := math.Pow(2, -sp.LODBias) / float64(texSize)
	anisoW := 0
	if p.AnisoLevel > 0 {
		anisoW = int(float64(wl.W)*sp.AnisoFrac) &^ 1
	}

	visGridCov := sp.VisibleLayers - sp.FillerCoverage
	if visGridCov < 0 {
		visGridCov = 0
	}
	nFull := int(visGridCov)
	fracW := int(float64(wl.W)*(visGridCov-float64(nFull))) &^ 1
	zStep := float32(0.02)
	z := float32(0.40) + zStep*float32(nFull)
	for i := 0; i < nFull; i++ {
		wl.visFull = append(wl.visFull, layerMesh{z: z})
		wl.visFull[i].mesh = wl.splitLayer(0, wl.W, z, anisoW, sp.BigCell,
			baseTile, stride, ib)
		z -= zStep
	}
	if fracW > 2 {
		wl.visPartial = layerMesh{z: z}
		wl.visPartial.mesh = wl.splitLayer(0, fracW, z, minI(anisoW, fracW),
			sp.BigCell, baseTile, stride, ib)
	}

	// Interleave layer: depth between the two backmost visible layers,
	// drawn after them so it fails the fine z test but not HZ.
	if sp.InterleaveLayers > 0 && nFull >= 2 {
		iz := wl.visFull[1].z + zStep/2
		iw := int(float64(wl.W)*sp.InterleaveLayers) &^ 1
		wl.interleave = layerMesh{z: iz}
		wl.interleave.mesh = gridMesh(wl.Dev, 0, 0, iw, wl.H, sp.BigCell, iz,
			baseTile, baseTile, stride, ib, wl.W, wl.H)
	}

	// Hidden layers behind everything: HZ fodder.
	nHid := int(sp.HiddenLayers)
	hz := float32(0.60)
	for i := 0; i < nHid; i++ {
		lm := layerMesh{z: hz}
		lm.mesh = gridMesh(wl.Dev, 0, 0, wl.W, wl.H, sp.BigCell, hz,
			baseTile, baseTile, stride, ib, wl.W, wl.H)
		wl.hidden = append(wl.hidden, lm)
		hz += zStep
	}
	if hFrac := sp.HiddenLayers - float64(nHid); hFrac > 0.01 {
		hw := int(float64(wl.W)*hFrac) &^ 1
		wl.hiddenPart = layerMesh{z: hz}
		wl.hiddenPart.mesh = gridMesh(wl.Dev, 0, 0, hw, wl.H, sp.BigCell, hz,
			baseTile, baseTile, stride, ib, wl.W, wl.H)
	}

	// Alpha foliage layers at the front.
	if sp.AlphaCoverage > 0 {
		nFol := int(sp.AlphaCoverage)
		fz := float32(0.22)
		for i := 0; i < nFol; i++ {
			lm := layerMesh{z: fz}
			lm.mesh = gridMesh(wl.Dev, 0, 0, wl.W, wl.H, sp.BigCell, fz,
				baseTile, baseTile, stride, ib, wl.W, wl.H)
			wl.foliage = append(wl.foliage, lm)
			fz -= zStep
		}
		if fFrac := sp.AlphaCoverage - float64(nFol); fFrac > 0.01 {
			fw := int(float64(wl.W)*fFrac) &^ 1
			lm := layerMesh{z: fz}
			lm.mesh = gridMesh(wl.Dev, 0, 0, fw, wl.H, sp.BigCell, fz,
				baseTile, baseTile, stride, ib, wl.W, wl.H)
			wl.foliage = append(wl.foliage, lm)
		}
	}

	// Shadow volumes, sized per frame and drawn once per light.
	if sp.Style == StyleStencilShadow && sp.Lights > 0 {
		volCell := 256
		lights := float64(sp.Lights)
		// Shadow rect: back faces behind the scene over ShadowCoverage.
		// Placed at the right edge so the shadowed (never-lit) region
		// does not preferentially eat the anisotropic strip on the left.
		sw := int(float64(wl.W)*sp.ShadowCoverage) &^ 1
		wl.volShadow = gridMesh(wl.Dev, wl.W-sw, 0, wl.W, wl.H, volCell, 0.85,
			baseTile, baseTile, stride, ib, wl.W, wl.H)
		// Balanced fail pair: +1 then -1 over the same area behind the
		// scene; per-light coverage derived from the frame budget.
		pairCov := (sp.VolumeFailCoverage - sp.ShadowCoverage*lights) / (2 * lights)
		if pairCov < 0 {
			pairCov = 0
		}
		pw := clampI(int(float64(wl.W)*pairCov)&^1, 0, wl.W)
		if pw > 2 {
			wl.volPairBack = gridMesh(wl.Dev, 0, 0, pw, wl.H, volCell, 0.87,
				baseTile, baseTile, stride, ib, wl.W, wl.H)
			wl.volPairFrnt = gridMesh(wl.Dev, 0, 0, pw, wl.H, volCell, 0.88,
				baseTile, baseTile, stride, ib, wl.W, wl.H)
		}
		// Passing volume quads in front of the scene.
		passCov := sp.VolumePassCoverage / lights
		nPass := int(math.Round(passCov))
		if nPass < 1 && passCov > 0.05 {
			nPass = 1
		}
		if nPass >= 1 {
			wl.volPass = gridMesh(wl.Dev, 0, 0, wl.W, wl.H, volCell, 0.18,
				baseTile, baseTile, stride, ib, wl.W, wl.H)
		}
		wl.volumeTris = (wl.volShadow.tris + 2*wl.volPairBack.tris +
			nPass*wl.volPass.tris) * sp.Lights
	}

	for _, lm := range wl.visFull {
		wl.fixedTrisPass += lm.tris
	}
	wl.fixedTrisPass += wl.visPartial.tris + wl.interleave.tris
	for _, lm := range wl.hidden {
		wl.fixedTrisPass += lm.tris
	}
	wl.fixedTrisPass += wl.hiddenPart.tris
	for _, lm := range wl.foliage {
		wl.fixedTrisPass += lm.tris
	}
}

// splitLayer builds one full-height layer as two adjacent grids: an
// anisotropically tiled strip of width anisoW and an isotropic rest.
// Both halves share one draw (their buffers are merged) to keep the
// batch count stable; merging index buffers over two vertex buffers is
// not possible, so the halves are drawn as one mesh with combined
// attributes.
func (wl *Workload) splitLayer(x0, x1 int, z float32, anisoW, cell int,
	baseTile float64, stride, ib int) mesh {

	if anisoW <= 2 {
		return gridMesh(wl.Dev, x0, 0, x1, wl.H, cell, z,
			baseTile, baseTile, stride, ib, wl.W, wl.H)
	}
	if anisoW >= x1-x0 {
		return gridMesh(wl.Dev, x0, 0, x1, wl.H, cell, z,
			baseTile, baseTile*4, stride, ib, wl.W, wl.H)
	}
	a := gridMesh(wl.Dev, x0, 0, x0+anisoW, wl.H, cell, z,
		baseTile, baseTile*4, stride, ib, wl.W, wl.H)
	b := gridMesh(wl.Dev, x0+anisoW, 0, x1, wl.H, cell, z,
		baseTile, baseTile, stride, ib, wl.W, wl.H)
	return mergeMeshes(wl.Dev, a, b, stride, ib)
}

// buildRibbons sizes and creates the chunked filler/clip/cull ribbons.
func (wl *Workload) buildRibbons() {
	p := wl.Prof
	stride := 48
	if p.Simulated && p.Sim.VertexStride != 0 {
		stride = p.Sim.VertexStride
	}
	ib := p.BytesPerIndex

	assembled := wl.assembledTarget(1.0)
	perPass := (assembled - wl.volumeTris) / wl.passes
	clipT := int(p.Sim.ClipFrac * float64(assembled) / float64(wl.passes))
	cullT := int(p.Sim.CullFrac * float64(assembled) / float64(wl.passes))
	fillT := perPass - clipT - cullT - wl.fixedTrisPass
	if fillT < 1 {
		fillT = 1
	}
	// Filler triangle size from the coverage budget.
	triPx := 8.0
	if p.Simulated && p.Sim.FillerCoverage > 0 {
		triPx = p.Sim.FillerCoverage * float64(wl.W*wl.H) / float64(fillT)
		triPx = math.Max(4, math.Min(triPx, 256))
	}

	chunkTri := maxI(p.AvgIndicesPerBatch/3, 8)
	capScale := 1.5 // headroom for the per-frame modulation
	mkChunks := func(total int, kind ribbonKind, z float32, seed uint32) *chunkedRibbon {
		capTris := int(float64(total)*capScale) + chunkTri
		m := ribbonMesh(wl.Dev, capTris, kind, z, triPx, seed, stride, ib, wl.W, wl.H)
		cr := &chunkedRibbon{vb: m.vb, chunkTri: chunkTri}
		for start := 0; start+chunkTri <= m.tris; start += chunkTri {
			idx := m.ib.Indices[3*start : 3*(start+chunkTri)]
			cr.chunks = append(cr.chunks, wl.Dev.CreateIndexBuffer(idx, ib))
		}
		return cr
	}
	wl.filler = mkChunks(fillT, ribbonVisible, 0.24, 11)
	wl.clipR = mkChunks(clipT, ribbonClipped, 0.5, 23)
	wl.cullR = mkChunks(cullT, ribbonCulled, 0.5, 37)

	// Strip and fan chunks use runs of sequential indices over a ribbon:
	// the zig-zag vertex order is exactly a triangle strip.
	mkSeq := func(total int, z float32, seed uint32) *chunkedRibbon {
		// A strip batch of AvgIndicesPerBatch indices holds idx-2
		// triangles, keeping Table III's indices-per-batch on target.
		sChunk := maxI(p.AvgIndicesPerBatch-2, 8)
		capTris := int(float64(total)*capScale) + sChunk
		m := ribbonMesh(wl.Dev, capTris, ribbonVisible, z, triPx, seed, stride, ib, wl.W, wl.H)
		cr := &chunkedRibbon{vb: m.vb, chunkTri: sChunk}
		seq := make([]uint32, m.tris+2)
		for i := range seq {
			seq[i] = uint32(i)
		}
		for start := 0; start+sChunk+2 <= len(seq); start += sChunk {
			cr.chunks = append(cr.chunks,
				wl.Dev.CreateIndexBuffer(seq[start:start+sChunk+2], ib))
		}
		return cr
	}
	if p.PrimMix[1] > 0 {
		wl.stripR = mkSeq(int(p.PrimMix[1]*float64(assembled)), 0.26, 41)
	}
	if p.PrimMix[2] > 0 {
		wl.fanR = wl.buildFanRibbon(assembled, stride, ib, triPx)
	}
}

// buildFanRibbon creates the triangle-fan pool. Fan batches over a
// ribbon path produce long slivers, so for simulated profiles the fan
// geometry is placed off-frustum: the indices still count toward the
// Table V mix (0.1% for UT2004) but the rasterizer never sees the
// slivers. API-only profiles keep on-screen fans sized to the per-batch
// index average.
func (wl *Workload) buildFanRibbon(assembled int, stride, ib int, triPx float64) *chunkedRibbon {
	p := wl.Prof
	kind := ribbonVisible
	chunkIdx := p.AvgIndicesPerBatch
	if p.Simulated {
		kind = ribbonClipped
		chunkIdx = maxI(int(p.PrimMix[2]*float64(p.AvgIndicesPerFrame)), 18)
	}
	sChunk := maxI(chunkIdx-2, 8)
	total := maxI(int(p.PrimMix[2]*float64(assembled)), 4*sChunk)
	m := ribbonMesh(wl.Dev, total+sChunk, kind, 0.28, triPx, 43, stride, ib, wl.W, wl.H)
	cr := &chunkedRibbon{vb: m.vb, chunkTri: sChunk}
	seq := make([]uint32, m.tris+2)
	for i := range seq {
		seq[i] = uint32(i)
	}
	for start := 0; start+sChunk+2 <= len(seq); start += sChunk {
		cr.chunks = append(cr.chunks,
			wl.Dev.CreateIndexBuffer(seq[start:start+sChunk+2], ib))
	}
	return cr
}

// assembledTarget converts the per-frame index target (scaled by the
// frame modulation m) into assembled triangles using the Table V mix.
func (wl *Workload) assembledTarget(m float64) int {
	p := wl.Prof
	idx := float64(p.AvgIndicesPerFrame) * m
	// Triangle lists: 3 indices per triangle. Strips and fans: 1 index
	// per triangle plus 2 per batch (negligible at calibration scale).
	perTri := 3*p.PrimMix[0] + p.PrimMix[1] + p.PrimMix[2]
	if perTri <= 0 {
		perTri = 3
	}
	return int(idx / perTri)
}

// frameMod is the deterministic per-frame activity modulation behind
// the variability of Figures 1 and 2.
func (wl *Workload) frameMod(i int) float64 {
	a := math.Sin(2 * math.Pi * float64(i) / 137)
	b := math.Sin(2*math.Pi*float64(i)/29 + 1.3)
	return 1 + 0.25*a + 0.1*b
}

// pickVS dithers between the floor/ceiling vertex programs so the
// index-weighted average lands on Table IV.
func (wl *Workload) pickVS(weight float64) *shader.Program {
	target := wl.Prof.VSInstr
	lo, hi := wl.vsLo, wl.vsHi
	if wl.Prof.VSInstr2 > 0 && wl.frameIdx >= wl.regionBoundary {
		target = wl.Prof.VSInstr2
		lo, hi = wl.vsLo2, wl.vsHi2
	}
	frac := target - math.Floor(target)
	wl.vsSumW += weight
	if wl.vsHiW < frac*wl.vsSumW {
		wl.vsHiW += weight
		return hi
	}
	return lo
}

// pickFS dithers across the four fragment program variants to land the
// Table XII averages; alpha selects the KIL-bearing variants.
func (wl *Workload) pickFS(weight float64, alpha bool) *shader.Program {
	fracI := wl.Prof.FSInstr - math.Floor(wl.Prof.FSInstr)
	fracT := wl.Prof.FSTex - math.Floor(wl.Prof.FSTex)
	wl.fsSumW += weight
	ih, th := 0, 0
	if wl.fsInstrHiW < fracI*wl.fsSumW {
		wl.fsInstrHiW += weight
		ih = 1
	}
	if wl.fsTexHiW < fracT*wl.fsSumW {
		wl.fsTexHiW += weight
		th = 1
	}
	if alpha {
		return wl.fsAlphaVar[ih][th]
	}
	return wl.fsVar[ih][th]
}

// bindNextTextures rotates the texture set bound to units 0-3.
func (wl *Workload) bindNextTextures() {
	st := wl.opaqueSampler()
	for u := 0; u < minI(4, len(wl.textures)); u++ {
		wl.Dev.BindTexture(u, wl.textures[(wl.texCursor+u)%len(wl.textures)], st)
	}
	wl.texCursor++
}

// emitStateCalls pads the frame's state-call count toward the Figure 3
// steady level: a couple of constant uploads per batch.
func (wl *Workload) emitStateCalls(n int) {
	for i := 0; i < n; i++ {
		slot := 16 + int(wl.nextRand()%32)
		v := float32(wl.nextRand()%1000) / 1000
		wl.Dev.SetConst(slot, gmath.V4(v, v*0.5, 1-v, 1))
	}
}

// RenderFrame issues one frame of API calls (and simulation work when
// the device's backend is the GPU).
func (wl *Workload) RenderFrame() {
	if !wl.setupDone {
		if err := wl.Setup(); err != nil {
			panic(fmt.Sprintf("workloads: setup %s: %v", wl.Prof.Name, err))
		}
	}
	if wl.Prof.Simulated {
		switch wl.Prof.Sim.Style {
		case StyleStencilShadow:
			wl.renderStencilFrame()
		case StyleDeferred:
			wl.renderDeferredFrame()
		case StyleShadowMap:
			wl.renderShadowMapFrame()
		case StyleParticle:
			wl.renderParticleFrame()
		default:
			wl.renderForwardFrame()
		}
	} else {
		wl.renderAPIOnlyFrame()
	}
	wl.frameIdx++
	wl.Dev.EndFrame()
	if wl.OnFrame != nil {
		wl.OnFrame(wl.frameIdx - 1)
	}
}

func clampI(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
