package workloads

// GenState is the complete per-frame mutable state of a workload
// generator — everything RenderFrame reads or writes that survives a
// frame boundary. Capturing it after frame k and restoring it into a
// freshly Setup() workload makes frame k+1 bit-identical to a
// continuous run: the scene geometry, programs and textures are
// deterministic functions of the profile rebuilt by Setup, so the only
// evolving state is this handful of counters and dither accumulators.
//
// It is the unit the serve layer's frame-boundary checkpoints persist
// (JSON tags keep the wire form stable); keep it in sync with the
// Workload fields mutated outside Setup.
type GenState struct {
	// FrameIdx is the next frame to render (frames completed so far).
	FrameIdx int `json:"frame_idx"`
	// Rng is the LCG state behind state-call padding and noise seeds.
	Rng uint32 `json:"rng"`
	// TexCursor is the texture rotation position (bindNextTextures).
	TexCursor int `json:"tex_cursor"`
	// Program dither accumulators (pickVS / pickFS).
	VSSumW     float64 `json:"vs_sum_w"`
	VSHiW      float64 `json:"vs_hi_w"`
	FSSumW     float64 `json:"fs_sum_w"`
	FSInstrHiW float64 `json:"fs_instr_hi_w"`
	FSTexHiW   float64 `json:"fs_tex_hi_w"`
	// AccChunks is the ribbon-chunk dither carry (chunkCounts).
	AccChunks [3]float64 `json:"acc_chunks"`
	// StateAcc / BatchNum are the cross-frame render scratch: fractional
	// state-call carry and the running batch counter that paces texture
	// rotation.
	StateAcc float64 `json:"state_acc"`
	BatchNum int     `json:"batch_num"`
}

// GenState captures the generator's resumable state. Meaningful at
// frame boundaries (after RenderFrame returns, before the next one).
func (wl *Workload) GenState() GenState {
	return GenState{
		FrameIdx:   wl.frameIdx,
		Rng:        wl.rng,
		TexCursor:  wl.texCursor,
		VSSumW:     wl.vsSumW,
		VSHiW:      wl.vsHiW,
		FSSumW:     wl.fsSumW,
		FSInstrHiW: wl.fsInstrHiW,
		FSTexHiW:   wl.fsTexHiW,
		AccChunks:  wl.accChunks,
		StateAcc:   wl.scratch.stateAcc,
		BatchNum:   wl.scratch.batchNum,
	}
}

// SetGenState restores a previously captured generator state. Call it
// after Setup on a fresh workload of the same profile, resolution and
// region boundary (and before DropFrame, so the warm-up state calls it
// issues are shed with the setup burst); subsequent RenderFrame calls
// then reproduce the continuous run's remaining frames exactly.
func (wl *Workload) SetGenState(s GenState) {
	if s.FrameIdx > 0 {
		// A continuous run created these lazily during frame 0; recreate
		// them now so the first resumed frame doesn't pick up the state
		// calls.
		wl.ensureFlipIB(&wl.volShadow)
		wl.ensureFlipIB(&wl.volPairBack)
	}
	wl.frameIdx = s.FrameIdx
	wl.rng = s.Rng
	wl.texCursor = s.TexCursor
	wl.vsSumW = s.VSSumW
	wl.vsHiW = s.VSHiW
	wl.fsSumW = s.FSSumW
	wl.fsInstrHiW = s.FSInstrHiW
	wl.fsTexHiW = s.FSTexHiW
	wl.accChunks = s.AccChunks
	wl.scratch.stateAcc = s.StateAcc
	wl.scratch.batchNum = s.BatchNum
}
