package workloads

import (
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// stateAcc dithers fractional per-batch state calls; declared here next
// to the renderers that consume it.
type renderScratch struct {
	stateAcc float64
	batchNum int
}

// drawMesh issues one batch: program dithering, texture rotation, state
// call padding, then the draw.
func (wl *Workload) drawMesh(m mesh, prim geom.PrimitiveType, alpha bool) {
	wl.drawBuffers(m.vb, m.ib, prim, alpha)
}

func (wl *Workload) drawBuffers(vb *geom.VertexBuffer, ib *geom.IndexBuffer,
	prim geom.PrimitiveType, alpha bool) {

	w := float64(len(ib.Indices))
	vs := wl.pickVS(w)
	fs := wl.pickFS(w, alpha)
	if wl.scratch.batchNum%8 == 0 {
		wl.bindNextTextures()
	}
	if alpha {
		wl.Dev.BindTexture(0, wl.alphaTex,
			texture.SamplerState{Filter: texture.FilterBilinear})
	}
	wl.scratch.batchNum++
	wl.scratch.stateAcc += wl.Prof.StateCallsPerBatch
	if n := int(wl.scratch.stateAcc); n > 0 {
		wl.emitStateCalls(n)
		wl.scratch.stateAcc -= float64(n)
	}
	wl.Dev.DrawIndexed(vb, ib, prim, vs, fs)
}

// chunkCounts converts this frame's index budget into per-pass chunk
// counts for the filler, clip and cull ribbons, carrying rounding error
// across frames so long-run averages hit Table III exactly.
func (wl *Workload) chunkCounts(m float64) (fill, clip, cull int) {
	sp := &wl.Prof.Sim
	a := float64(wl.assembledTarget(m))
	perPass := (a - float64(wl.volumeTris)) / float64(wl.passes)
	clipT := sp.ClipFrac * a / float64(wl.passes)
	cullT := sp.CullFrac * a / float64(wl.passes)
	fillT := perPass - clipT - cullT - float64(wl.fixedTrisPass)
	if fillT < 0 {
		fillT = 0
	}
	take := func(acc *float64, want float64, pool *chunkedRibbon) int {
		*acc += want / float64(pool.chunkTri)
		n := int(*acc)
		*acc -= float64(n)
		return clampI(n, 0, len(pool.chunks))
	}
	fill = take(&wl.accChunks[0], fillT, wl.filler)
	clip = take(&wl.accChunks[1], clipT, wl.clipR)
	cull = take(&wl.accChunks[2], cullT, wl.cullR)
	return fill, clip, cull
}

// drawRibbonChunks draws the first n chunks of a pool.
func (wl *Workload) drawRibbonChunks(pool *chunkedRibbon, n int, prim geom.PrimitiveType) {
	for i := 0; i < n && i < len(pool.chunks); i++ {
		wl.drawBuffers(pool.vb, pool.chunks[i], prim, false)
	}
}

// renderForwardFrame composes one UT2004-style frame: opaque layers back
// to front, an interleaved z-killed layer, filler detail, alpha-tested
// foliage, then hidden geometry that Hierarchical Z rejects.
func (wl *Workload) renderForwardFrame() {
	dev := wl.Dev
	sp := &wl.Prof.Sim
	dev.SetMatrix(0, gmath.Identity())
	wl.setShadingConsts()
	dev.SetConst(15, gmath.V4(float32(sp.AlphaKillFrac), 0, 0, 0))
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})

	dev.SetCull(geom.CullBack)
	dev.SetZState(zst.DefaultState())
	// Blending is always active in the color stage for the simulated
	// benchmarks (paper §III.C).
	dev.SetRopState(rop.AlphaBlend())

	fill, clip, cull := wl.chunkCounts(wl.frameMod(wl.frameIdx))

	// Opaque visible layers, deepest first.
	for i := range wl.visFull {
		wl.drawMesh(wl.visFull[i].mesh, geom.TriangleList, false)
		if i == 1 && wl.interleave.tris > 0 {
			// Sits between the two backmost layers in depth but is drawn
			// after them: passes HZ, dies in the fine z test.
			wl.drawMesh(wl.interleave.mesh, geom.TriangleList, false)
		}
	}
	if wl.visPartial.tris > 0 {
		wl.drawMesh(wl.visPartial.mesh, geom.TriangleList, false)
	}

	// Filler detail at the front.
	wl.drawRibbonChunks(wl.filler, fill, geom.TriangleList)

	// Alpha-tested foliage (late z because of KIL).
	for i := range wl.foliage {
		wl.drawMesh(wl.foliage[i].mesh, geom.TriangleList, true)
	}

	// Hidden geometry behind everything: HZ food.
	for i := range wl.hidden {
		wl.drawMesh(wl.hidden[i].mesh, geom.TriangleList, false)
	}
	if wl.hiddenPart.tris > 0 {
		wl.drawMesh(wl.hiddenPart.mesh, geom.TriangleList, false)
	}

	// Off-frustum and back-facing geometry.
	wl.drawRibbonChunks(wl.clipR, clip, geom.TriangleList)
	wl.drawRibbonChunks(wl.cullR, cull, geom.TriangleList)

	// The occasional triangle-fan batch (Table V's 0.1%).
	if wl.fanR != nil && len(wl.fanR.chunks) > 0 {
		wl.drawBuffers(wl.fanR.vb, wl.fanR.chunks[wl.frameIdx%len(wl.fanR.chunks)],
			geom.TriangleFan, false)
	}
}

// renderStencilFrame composes one Doom3/Quake4-style frame: z prepass
// with color masked, then per light a stencil clear, shadow volumes and
// an equal-z additive lighting pass.
func (wl *Workload) renderStencilFrame() {
	dev := wl.Dev
	sp := &wl.Prof.Sim
	dev.SetMatrix(0, gmath.Identity())
	wl.setShadingConsts()
	dev.Clear(gfxapi.ClearOp{
		ClearColor: true, ClearDepth: true, ClearStencil: true, Z: 1,
	})

	fill, clip, cull := wl.chunkCounts(wl.frameMod(wl.frameIdx))

	maskOff := rop.State{}

	// --- Depth prepass: writes z, color masked off. ---
	dev.SetCull(geom.CullBack)
	dev.SetZState(zst.DefaultState())
	dev.SetRopState(maskOff)
	wl.drawScenePass(fill, clip, cull)

	// --- Per light: stencil volumes then the additive lighting pass. ---
	volZ := zst.DefaultState()
	volZ.ZWrite = false
	volZ.StencilTest = true
	volZ.StencilFunc = zst.CmpAlways
	volZ.Front = zst.FaceOps{Fail: zst.OpKeep, ZFail: zst.OpDecrWrap, ZPass: zst.OpKeep}
	volZ.Back = zst.FaceOps{Fail: zst.OpKeep, ZFail: zst.OpIncrWrap, ZPass: zst.OpKeep}

	lightZ := zst.DefaultState()
	lightZ.ZFunc = zst.CmpEqual
	lightZ.ZWrite = false
	lightZ.StencilTest = true
	lightZ.StencilFunc = zst.CmpEqual
	lightZ.StencilRef = 0

	// Distribute round(VolumePassCoverage) full-screen passing volumes
	// across the lights without rounding inflation.
	totalPass := int(sp.VolumePassCoverage + 0.5)
	for l := 0; l < sp.Lights; l++ {
		nPass := (l+1)*totalPass/sp.Lights - l*totalPass/sp.Lights
		dev.Clear(gfxapi.ClearOp{ClearStencil: true})

		// Shadow volumes: two-sided, z-fail stencil ops, color masked.
		dev.SetZState(volZ)
		dev.SetRopState(maskOff)
		dev.SetCull(geom.CullNone)
		if wl.volShadow.tris > 0 {
			// Back faces behind the scene over the shadow rect: z-fail
			// increments, putting the rect in shadow.
			wl.drawFlipped(&wl.volShadow)
		}
		if wl.volPairBack.tris > 0 {
			// Balanced +1/-1 pair: coverage without net stencil.
			wl.drawFlipped(&wl.volPairBack)
			wl.drawMesh(wl.volPairFrnt, geom.TriangleList, false)
		}
		for i := 0; i < nPass && wl.volPass.tris > 0; i++ {
			wl.drawMesh(wl.volPass, geom.TriangleList, false)
		}

		// Lighting pass: equal z, unshadowed stencil, additive blend.
		dev.SetCull(geom.CullBack)
		dev.SetZState(lightZ)
		dev.SetRopState(rop.AdditiveBlend())
		wl.drawScenePass(fill, clip, cull)
	}
}

// setShadingConsts loads the constant registers the synthesized shader
// chains read (c4..c10): without them the combiner chains collapse to
// zero and every output color degenerates.
func (wl *Workload) setShadingConsts() {
	dev := wl.Dev
	dev.SetConst(4, gmath.V4(0.91, 0.87, 0.83, 1))
	dev.SetConst(5, gmath.V4(0.07, 0.06, 0.08, 0))
	dev.SetConst(6, gmath.V4(0.30, 0.59, 0.11, 0))
	dev.SetConst(7, gmath.V4(0.5, 0.5, 0.5, 1))
	dev.SetConst(8, gmath.V4(0.12, 0.10, 0.08, 0))
	dev.SetConst(9, gmath.V4(0.57, 0.57, 0.57, 0))
	dev.SetConst(10, gmath.V4(0.95, 0.92, 0.9, 1))
}

// drawScenePass draws the scene geometry once: visible and hidden grids
// plus the per-pass ribbon shares.
func (wl *Workload) drawScenePass(fill, clip, cull int) {
	for i := range wl.visFull {
		wl.drawMesh(wl.visFull[i].mesh, geom.TriangleList, false)
	}
	if wl.visPartial.tris > 0 {
		wl.drawMesh(wl.visPartial.mesh, geom.TriangleList, false)
	}
	wl.drawRibbonChunks(wl.filler, fill, geom.TriangleList)
	for i := range wl.hidden {
		wl.drawMesh(wl.hidden[i].mesh, geom.TriangleList, false)
	}
	if wl.hiddenPart.tris > 0 {
		wl.drawMesh(wl.hiddenPart.mesh, geom.TriangleList, false)
	}
	wl.drawRibbonChunks(wl.clipR, clip, geom.TriangleList)
	wl.drawRibbonChunks(wl.cullR, cull, geom.TriangleList)
}

// ensureFlipIB lazily creates the reversed-winding index buffer a
// flipped draw uses. The creation is a state call, so a resumed render
// must issue it before its first counted frame (SetGenState does).
func (wl *Workload) ensureFlipIB(m *mesh) {
	if m.flipIB != nil || m.ib == nil {
		return
	}
	idx := make([]uint32, len(m.ib.Indices))
	for i := 0; i < len(idx); i += 3 {
		idx[i] = m.ib.Indices[i+1]
		idx[i+1] = m.ib.Indices[i]
		idx[i+2] = m.ib.Indices[i+2]
	}
	m.flipIB = wl.Dev.CreateIndexBuffer(idx, m.ib.BytesPerIndex)
}

// drawFlipped draws a grid with reversed winding (its back faces).
func (wl *Workload) drawFlipped(m *mesh) {
	wl.ensureFlipIB(m)
	wl.drawBuffers(m.vb, m.flipIB, geom.TriangleList, false)
}

// renderAPIOnlyFrame issues the batch/state structure of a non-simulated
// demo: ribbon chunks in the Table V primitive mix with the calibrated
// index volume. The geometry is valid but only the API-level statistics
// are consumed (the paper, too, measured the Direct3D titles at the API
// level only).
func (wl *Workload) renderAPIOnlyFrame() {
	dev := wl.Dev
	p := wl.Prof
	dev.SetMatrix(0, gmath.Identity())
	dev.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})

	m := wl.frameMod(wl.frameIdx)
	// Inter-scene transitions reload content (Figure 3 peaks).
	if p.TransitionPeaks && wl.frameIdx > 0 && wl.frameIdx%420 == 0 {
		wl.reloadBurst()
	}

	idxTarget := float64(p.AvgIndicesPerFrame) * m
	chunkTri := wl.filler.chunkTri

	// Triangle lists.
	tlChunks := int(idxTarget * p.PrimMix[0] / float64(3*chunkTri))
	for i := 0; i < tlChunks; i++ {
		wl.drawBuffers(wl.filler.vb, wl.filler.chunks[i%len(wl.filler.chunks)],
			geom.TriangleList, false)
	}
	// Strips and fans use sequential-index chunks over their ribbons.
	if wl.stripR != nil {
		per := float64(wl.stripR.chunkTri + 2)
		n := int(idxTarget * p.PrimMix[1] / per)
		for i := 0; i < n; i++ {
			wl.drawBuffers(wl.stripR.vb, wl.stripR.chunks[i%len(wl.stripR.chunks)],
				geom.TriangleStrip, false)
		}
	}
	if wl.fanR != nil && p.PrimMix[2] > 0 {
		per := float64(wl.fanR.chunkTri + 2)
		n := int(idxTarget * p.PrimMix[2] / per)
		for i := 0; i < n; i++ {
			wl.drawBuffers(wl.fanR.vb, wl.fanR.chunks[i%len(wl.fanR.chunks)],
				geom.TriangleFan, false)
		}
	}
}

// reloadBurst models a scene transition: a burst of texture and buffer
// creation calls.
func (wl *Workload) reloadBurst() {
	wl.emitStateCalls(2600)
	for i := 0; i < 100; i++ {
		spec := gfxapi.TextureSpec{
			Name:   "reload",
			Format: texture.FormatDXT1, W: 64, H: 64,
			Kind: gfxapi.KindNoise, Seed: wl.nextRand(),
		}
		if _, err := wl.Dev.CreateTexture(spec); err != nil {
			break
		}
	}
	wl.emitStateCalls(400)
}
