package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// renderSmallScene drives a device through a representative call
// sequence: creation, state changes, two frames of draws.
func renderSmallScene(t testing.TB, d *gfxapi.Device) {
	t.Helper()
	pos := []gmath.Vec4{
		{X: -1, Y: -1, W: 1}, {X: 1, Y: -1, W: 1}, {X: 0, Y: 1, W: 1},
	}
	uv := []gmath.Vec4{{W: 1}, {X: 1, W: 1}, {X: 0.5, Y: 1, W: 1}}
	col := []gmath.Vec4{{X: 1, W: 1}, {Y: 1, W: 1}, {Z: 1, W: 1}}
	vb := d.CreateVertexBuffer([][]gmath.Vec4{pos, uv, col}, 48)
	ib := d.CreateIndexBuffer([]uint32{0, 1, 2}, 2)
	vs, err := d.CreateProgram(shader.BasicTransformVS())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.CreateProgram(shader.TexturedFS())
	if err != nil {
		t.Fatal(err)
	}
	tex, err := d.CreateTexture(gfxapi.TextureSpec{
		Name: "t", Format: texture.FormatDXT1, W: 64, H: 64,
		Kind: gfxapi.KindChecker, Cell: 8,
		ColorA: texture.RGBA{R: 255, A: 255}, ColorB: texture.RGBA{B: 255, A: 255},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SetMatrix(0, gmath.Identity())
	d.BindTexture(0, tex, texture.SamplerState{
		Filter: texture.FilterAniso, MaxAniso: 16,
	})
	zs := zst.DefaultState()
	zs.ZFunc = zst.CmpLEqual
	d.SetZState(zs)
	d.SetRopState(rop.AlphaBlend())
	d.SetCull(geom.CullNone)
	for frame := 0; frame < 2; frame++ {
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
		d.DrawIndexed(vb, ib, geom.TriangleStrip, vs, fs)
		d.EndFrame()
	}
}

// renderMultipassScene is renderSmallScene plus a render-to-texture
// pass: draw into an off-screen target, resolve it, then composite the
// resolve texture onto the backbuffer — one use of each v2 RT op.
func renderMultipassScene(t testing.TB, d *gfxapi.Device) {
	t.Helper()
	rt, err := d.CreateRenderTarget("scene", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	pos := []gmath.Vec4{
		{X: -1, Y: -1, W: 1}, {X: 1, Y: -1, W: 1}, {X: 0, Y: 1, W: 1},
	}
	uv := []gmath.Vec4{{W: 1}, {X: 1, W: 1}, {X: 0.5, Y: 1, W: 1}}
	vb := d.CreateVertexBuffer([][]gmath.Vec4{pos, uv}, 32)
	ib := d.CreateIndexBuffer([]uint32{0, 1, 2}, 2)
	vs, err := d.CreateProgram(shader.BasicTransformVS())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.CreateProgram(shader.TexturedFS())
	if err != nil {
		t.Fatal(err)
	}
	d.SetMatrix(0, gmath.Identity())
	d.SetZState(zst.DefaultState())
	d.SetRopState(rop.DefaultState())
	d.SetCull(geom.CullNone)
	for frame := 0; frame < 2; frame++ {
		d.SetRenderTarget(rt)
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
		if err := d.ResolveToTexture(rt); err != nil {
			t.Fatal(err)
		}
		d.SetRenderTarget(nil)
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.BindTexture(0, rt.Tex, texture.SamplerState{Filter: texture.FilterBilinear})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
		d.EndFrame()
	}
}

// TestMultipassRecordReplayRoundTrip pins the v2 render-target ops'
// wire format: a trace using OpCreateRT/OpSetRT/OpResolveTex replays
// into identical per-frame API statistics.
func TestMultipassRecordReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		t.Fatal(err)
	}
	src := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	src.SetRecorder(rec)
	renderMultipassScene(t, src)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dst := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	frames, err := NewPlayer(dst).Play(r)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 2 {
		t.Errorf("frames = %d, want 2", frames)
	}
	a, b := src.Frames(), dst.Frames()
	if len(a) != len(b) {
		t.Fatalf("frame counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("frame %d stats differ:\n  src=%+v\n  dst=%+v", i, a[i], b[i])
		}
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		t.Fatal(err)
	}
	src := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	src.SetRecorder(rec)
	renderSmallScene(t, src)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Commands() == 0 {
		t.Fatal("nothing recorded")
	}

	// Replay into a fresh device and compare the API statistics: the
	// replayed stream must produce identical per-frame numbers.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.API() != gfxapi.OpenGL {
		t.Errorf("API = %v", r.API())
	}
	dst := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	frames, err := NewPlayer(dst).Play(r)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 2 {
		t.Errorf("frames = %d, want 2", frames)
	}
	a, b := src.Frames(), dst.Frames()
	if len(a) != len(b) {
		t.Fatalf("frame counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("frame %d stats differ:\n  src=%+v\n  dst=%+v", i, a[i], b[i])
		}
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{'G', 'T', 'R', 'C', 99, 0})); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTruncatedTrace(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf, gfxapi.OpenGL)
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	d.SetRecorder(rec)
	renderSmallScene(t, d)
	rec.Close()

	// Cut the stream mid-command.
	cut := buf.Bytes()[:buf.Len()/2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	dst := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	if _, err := NewPlayer(dst).Play(r); err == nil {
		t.Error("truncated trace replayed without error")
	}
}

func TestProgramRoundTrip(t *testing.T) {
	progs := []*shader.Program{
		shader.BasicTransformVS(),
		shader.AlphaTestedFS(),
		shader.MustAssemble("swz", shader.FragmentProgram,
			"mad r1.xz, -v0.wzyx, c2.y, r0\nmov o0, r1"),
	}
	for _, p := range progs {
		var buf bytes.Buffer
		rec, _ := NewRecorder(&buf, gfxapi.OpenGL)
		rec.Record(gfxapi.Command{Op: gfxapi.OpCreateProgram, ID: 1, Program: p})
		rec.Close()
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		cmd, err := r.Next()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		got := cmd.Program
		if got.Name != p.Name || got.Kind != p.Kind || len(got.Instrs) != len(p.Instrs) {
			t.Fatalf("%s: header mismatch", p.Name)
		}
		for i := range p.Instrs {
			if got.Instrs[i] != p.Instrs[i] {
				t.Errorf("%s instr %d: %+v vs %+v", p.Name, i, got.Instrs[i], p.Instrs[i])
			}
		}
	}
}

func TestZStateRoundTrip(t *testing.T) {
	st := zst.State{
		ZTest: true, ZFunc: zst.CmpGEqual, ZWrite: false,
		StencilTest: true, StencilFunc: zst.CmpNotEqual,
		StencilRef: 42, StencilMask: 0xAB,
		Front: zst.FaceOps{Fail: zst.OpInvert, ZFail: zst.OpIncrWrap, ZPass: zst.OpDecr},
		Back:  zst.FaceOps{Fail: zst.OpZero, ZFail: zst.OpReplace, ZPass: zst.OpIncr},
		HZ:    true,
	}
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf, gfxapi.Direct3D)
	rec.Record(gfxapi.Command{Op: gfxapi.OpSetZState, ZState: &st})
	rec.Close()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	if r.API() != gfxapi.Direct3D {
		t.Error("API dialect lost")
	}
	cmd, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if *cmd.ZState != st {
		t.Errorf("round trip: %+v vs %+v", *cmd.ZState, st)
	}
	// Clean EOF afterwards.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestTextureSpecWithDataRoundTrip(t *testing.T) {
	data := make([]texture.RGBA, 16)
	for i := range data {
		data[i] = texture.RGBA{R: uint8(i), G: uint8(i * 2), B: 3, A: 255}
	}
	spec := gfxapi.TextureSpec{
		Name: "explicit", Format: texture.FormatRGBA8, W: 4, H: 4,
		Kind: gfxapi.KindData, Data: data,
	}
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf, gfxapi.OpenGL)
	rec.Record(gfxapi.Command{Op: gfxapi.OpCreateTex, ID: 5, TexSpec: spec})
	rec.Close()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	cmd, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got := cmd.TexSpec
	if got.Name != "explicit" || len(got.Data) != 16 {
		t.Fatalf("spec = %+v", got)
	}
	for i := range data {
		if got.Data[i] != data[i] {
			t.Errorf("texel %d: %v vs %v", i, got.Data[i], data[i])
		}
	}
}

func TestPlayerRejectsDanglingReferences(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf, gfxapi.OpenGL)
	rec.Record(gfxapi.Command{Op: gfxapi.OpDraw, ID: 99, ID2: 98, ProgID: 97, ProgID2: 96})
	rec.Close()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	if _, err := NewPlayer(d).Play(r); err == nil {
		t.Error("dangling draw replayed without error")
	}
}

// TestSniffHeader pins the upload-validation entry point: a good stream
// reports its dialect and version, header damage is a *FormatError.
func TestSniffHeader(t *testing.T) {
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.Direct3D)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	api, ver, err := SniffHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if api != gfxapi.Direct3D || ver == 0 {
		t.Errorf("SniffHeader = %v, %d", api, ver)
	}
	var fe *FormatError
	if _, _, err := SniffHeader(bytes.NewReader([]byte("nope"))); !errors.As(err, &fe) || fe.Cmd != -1 {
		t.Errorf("bad magic: err = %v, want header *FormatError", err)
	}
}
