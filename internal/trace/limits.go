package trace

// Limits bounds what a trace stream may ask the decoder to materialize.
// Every u32 length in the wire format is checked against a per-field
// cap before anything is allocated, and every allocation the decoder
// does commit is charged against a cumulative budget, so a hostile
// 16-byte file cannot demand gigabytes and a truncated one cannot
// commit a giant make before the missing bytes surface.
type Limits struct {
	// MaxAttrs caps vertex buffer attribute slots.
	MaxAttrs int
	// MaxVertices caps the vertices of one attribute slot.
	MaxVertices int
	// MaxIndices caps one index buffer's length.
	MaxIndices int
	// MaxTexels caps one texture's explicit texel payload.
	MaxTexels int
	// MaxTexDim caps texture width and height.
	MaxTexDim int
	// MaxProgramInstrs caps one shader program's instruction count.
	MaxProgramInstrs int
	// MaxStringBytes caps resource name strings.
	MaxStringBytes int
	// MaxStride caps the vertex/index stride field (bytes).
	MaxStride int
	// MaxAniso caps the sampler anisotropy ratio; the filter loop walks
	// that many probes per fragment, so an unclamped wire value is a
	// denial of service, not just bad data.
	MaxAniso int
	// MaxCommandBytes caps one framed (v2) command payload.
	MaxCommandBytes int64
	// AllocBudget caps the cumulative bytes the decoder materializes
	// across the whole stream. 0 means no cumulative cap.
	AllocBudget int64
}

// DefaultLimits returns caps sized generously above anything the
// synthetic workloads record (the largest legitimate demo trace stays
// far below every cap) while keeping the worst-case decode cost of a
// hostile stream bounded.
func DefaultLimits() Limits {
	return Limits{
		MaxAttrs:         64,
		MaxVertices:      1 << 24,
		MaxIndices:       1 << 26,
		MaxTexels:        1 << 24,
		MaxTexDim:        1 << 14,
		MaxProgramInstrs: 1 << 16,
		MaxStringBytes:   1 << 20,
		MaxStride:        1 << 12,
		MaxAniso:         64,
		MaxCommandBytes:  1 << 30,
		AllocBudget:      1 << 31,
	}
}
