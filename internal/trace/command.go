package trace

import (
	"bufio"
	"fmt"
	"io"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// writeCommand encodes one API call.
func writeCommand(w *bufio.Writer, c *gfxapi.Command) error {
	if err := writeU8(w, uint8(c.Op)); err != nil {
		return err
	}
	switch c.Op {
	case gfxapi.OpCreateVB:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.Stride)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(c.VBData))); err != nil {
			return err
		}
		for _, attr := range c.VBData {
			if err := writeU32(w, uint32(len(attr))); err != nil {
				return err
			}
			for _, v := range attr {
				if err := writeVec4(w, v); err != nil {
					return err
				}
			}
		}
	case gfxapi.OpCreateIB:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.Stride)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(c.IBData))); err != nil {
			return err
		}
		for _, idx := range c.IBData {
			if err := writeU32(w, idx); err != nil {
				return err
			}
		}
	case gfxapi.OpCreateTex:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeTexSpec(w, &c.TexSpec); err != nil {
			return err
		}
	case gfxapi.OpCreateProgram:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeProgram(w, c.Program); err != nil {
			return err
		}
	case gfxapi.OpSetZState:
		return writeZState(w, c.ZState)
	case gfxapi.OpSetRopState:
		return writeRopState(w, c.RopState)
	case gfxapi.OpSetCull:
		return writeU8(w, uint8(c.Cull))
	case gfxapi.OpBindTexture:
		if err := writeU8(w, c.Unit); err != nil {
			return err
		}
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		return writeSampler(w, c.Sampler)
	case gfxapi.OpSetConst:
		if err := writeU8(w, c.Unit); err != nil {
			return err
		}
		return writeVec4(w, c.Vec)
	case gfxapi.OpDraw:
		for _, v := range []uint32{c.ID, c.ID2, c.ProgID, c.ProgID2} {
			if err := writeU32(w, v); err != nil {
				return err
			}
		}
		return writeU8(w, uint8(c.Prim))
	case gfxapi.OpClear:
		return writeClear(w, c.ClearOp)
	case gfxapi.OpEndFrame:
		// no payload
	default:
		return fmt.Errorf("trace: cannot encode op %v", c.Op)
	}
	return nil
}

// readCommand decodes one API call. io.EOF before the op byte is a
// clean end of trace; EOF inside a command payload is reported as
// io.ErrUnexpectedEOF.
func readCommand(r *bufio.Reader) (gfxapi.Command, error) {
	var c gfxapi.Command
	opB, err := readU8(r)
	if err != nil {
		return c, err // io.EOF propagates cleanly here
	}
	c.Op = gfxapi.Op(opB)
	c, err = readPayload(r, c)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return c, err
}

func readPayload(r *bufio.Reader, c gfxapi.Command) (gfxapi.Command, error) {
	var err error
	switch c.Op {
	case gfxapi.OpCreateVB:
		if c.ID, err = readU32(r); err != nil {
			return c, err
		}
		stride, err := readU32(r)
		if err != nil {
			return c, err
		}
		c.Stride = int(stride)
		nAttr, err := readU32(r)
		if err != nil {
			return c, err
		}
		if nAttr > 64 {
			return c, fmt.Errorf("trace: %d attributes", nAttr)
		}
		c.VBData = make([][]gmath.Vec4, nAttr)
		for i := range c.VBData {
			n, err := readU32(r)
			if err != nil {
				return c, err
			}
			if n > 1<<24 {
				return c, fmt.Errorf("trace: %d vertices", n)
			}
			attr := make([]gmath.Vec4, n)
			for j := range attr {
				if attr[j], err = readVec4(r); err != nil {
					return c, err
				}
			}
			c.VBData[i] = attr
		}
	case gfxapi.OpCreateIB:
		if c.ID, err = readU32(r); err != nil {
			return c, err
		}
		stride, err := readU32(r)
		if err != nil {
			return c, err
		}
		c.Stride = int(stride)
		n, err := readU32(r)
		if err != nil {
			return c, err
		}
		if n > 1<<26 {
			return c, fmt.Errorf("trace: %d indices", n)
		}
		c.IBData = make([]uint32, n)
		for i := range c.IBData {
			if c.IBData[i], err = readU32(r); err != nil {
				return c, err
			}
		}
	case gfxapi.OpCreateTex:
		if c.ID, err = readU32(r); err != nil {
			return c, err
		}
		spec, err := readTexSpec(r)
		if err != nil {
			return c, err
		}
		c.TexSpec = spec
	case gfxapi.OpCreateProgram:
		if c.ID, err = readU32(r); err != nil {
			return c, err
		}
		if c.Program, err = readProgram(r); err != nil {
			return c, err
		}
	case gfxapi.OpSetZState:
		st, err := readZState(r)
		if err != nil {
			return c, err
		}
		c.ZState = &st
	case gfxapi.OpSetRopState:
		st, err := readRopState(r)
		if err != nil {
			return c, err
		}
		c.RopState = &st
	case gfxapi.OpSetCull:
		b, err := readU8(r)
		if err != nil {
			return c, err
		}
		c.Cull = geom.CullMode(b)
	case gfxapi.OpBindTexture:
		if c.Unit, err = readU8(r); err != nil {
			return c, err
		}
		if c.ID, err = readU32(r); err != nil {
			return c, err
		}
		st, err := readSampler(r)
		if err != nil {
			return c, err
		}
		c.Sampler = &st
	case gfxapi.OpSetConst:
		if c.Unit, err = readU8(r); err != nil {
			return c, err
		}
		if c.Vec, err = readVec4(r); err != nil {
			return c, err
		}
	case gfxapi.OpDraw:
		for _, dst := range []*uint32{&c.ID, &c.ID2, &c.ProgID, &c.ProgID2} {
			if *dst, err = readU32(r); err != nil {
				return c, err
			}
		}
		b, err := readU8(r)
		if err != nil {
			return c, err
		}
		c.Prim = geom.PrimitiveType(b)
	case gfxapi.OpClear:
		op, err := readClear(r)
		if err != nil {
			return c, err
		}
		c.ClearOp = &op
	case gfxapi.OpEndFrame:
	default:
		return c, fmt.Errorf("trace: unknown op %d", uint8(c.Op))
	}
	return c, nil
}

func writeTexSpec(w *bufio.Writer, s *gfxapi.TextureSpec) error {
	if err := writeString(w, s.Name); err != nil {
		return err
	}
	for _, b := range []uint8{uint8(s.Format), uint8(s.Kind)} {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	for _, v := range []uint32{uint32(s.W), uint32(s.H), uint32(s.Cell), s.Seed} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	for _, c := range []texture.RGBA{s.ColorA, s.ColorB} {
		for _, b := range []uint8{c.R, c.G, c.B, c.A} {
			if err := writeU8(w, b); err != nil {
				return err
			}
		}
	}
	if err := writeU32(w, uint32(len(s.Data))); err != nil {
		return err
	}
	for _, c := range s.Data {
		for _, b := range []uint8{c.R, c.G, c.B, c.A} {
			if err := writeU8(w, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func readTexSpec(r *bufio.Reader) (gfxapi.TextureSpec, error) {
	var s gfxapi.TextureSpec
	var err error
	if s.Name, err = readString(r); err != nil {
		return s, err
	}
	fm, err := readU8(r)
	if err != nil {
		return s, err
	}
	s.Format = texture.Format(fm)
	kd, err := readU8(r)
	if err != nil {
		return s, err
	}
	s.Kind = gfxapi.TextureKind(kd)
	var u [4]uint32
	for i := range u {
		if u[i], err = readU32(r); err != nil {
			return s, err
		}
	}
	s.W, s.H, s.Cell, s.Seed = int(u[0]), int(u[1]), int(u[2]), u[3]
	readRGBA := func() (texture.RGBA, error) {
		var c texture.RGBA
		var b [4]uint8
		for i := range b {
			if b[i], err = readU8(r); err != nil {
				return c, err
			}
		}
		return texture.RGBA{R: b[0], G: b[1], B: b[2], A: b[3]}, nil
	}
	if s.ColorA, err = readRGBA(); err != nil {
		return s, err
	}
	if s.ColorB, err = readRGBA(); err != nil {
		return s, err
	}
	n, err := readU32(r)
	if err != nil {
		return s, err
	}
	if n > 1<<24 {
		return s, fmt.Errorf("trace: %d texels", n)
	}
	if n > 0 {
		s.Data = make([]texture.RGBA, n)
		for i := range s.Data {
			if s.Data[i], err = readRGBA(); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func writeZState(w *bufio.Writer, st *zst.State) error {
	bytes := []uint8{
		boolByte(st.ZTest), uint8(st.ZFunc), boolByte(st.ZWrite),
		boolByte(st.StencilTest), uint8(st.StencilFunc), st.StencilRef,
		st.StencilMask,
		uint8(st.Front.Fail), uint8(st.Front.ZFail), uint8(st.Front.ZPass),
		uint8(st.Back.Fail), uint8(st.Back.ZFail), uint8(st.Back.ZPass),
		boolByte(st.HZ),
	}
	for _, b := range bytes {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	return nil
}

func readZState(r *bufio.Reader) (zst.State, error) {
	var b [14]uint8
	var err error
	for i := range b {
		if b[i], err = readU8(r); err != nil {
			return zst.State{}, err
		}
	}
	return zst.State{
		ZTest: b[0] != 0, ZFunc: zst.CompareFunc(b[1]), ZWrite: b[2] != 0,
		StencilTest: b[3] != 0, StencilFunc: zst.CompareFunc(b[4]),
		StencilRef: b[5], StencilMask: b[6],
		Front: zst.FaceOps{Fail: zst.StencilOp(b[7]), ZFail: zst.StencilOp(b[8]),
			ZPass: zst.StencilOp(b[9])},
		Back: zst.FaceOps{Fail: zst.StencilOp(b[10]), ZFail: zst.StencilOp(b[11]),
			ZPass: zst.StencilOp(b[12])},
		HZ: b[13] != 0,
	}, nil
}

func writeRopState(w *bufio.Writer, st *rop.State) error {
	bytes := []uint8{
		boolByte(st.Blend), uint8(st.SrcFactor), uint8(st.DstFactor),
		boolByte(st.WriteMask[0]), boolByte(st.WriteMask[1]),
		boolByte(st.WriteMask[2]), boolByte(st.WriteMask[3]),
	}
	for _, b := range bytes {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	return nil
}

func readRopState(r *bufio.Reader) (rop.State, error) {
	var b [7]uint8
	var err error
	for i := range b {
		if b[i], err = readU8(r); err != nil {
			return rop.State{}, err
		}
	}
	return rop.State{
		Blend: b[0] != 0, SrcFactor: rop.BlendFactor(b[1]),
		DstFactor: rop.BlendFactor(b[2]),
		WriteMask: [4]bool{b[3] != 0, b[4] != 0, b[5] != 0, b[6] != 0},
	}, nil
}

func writeSampler(w *bufio.Writer, st *texture.SamplerState) error {
	if err := writeU8(w, uint8(st.Filter)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(st.MaxAniso)); err != nil {
		return err
	}
	return writeF32(w, st.LODBias)
}

func readSampler(r *bufio.Reader) (texture.SamplerState, error) {
	var st texture.SamplerState
	f, err := readU8(r)
	if err != nil {
		return st, err
	}
	st.Filter = texture.FilterMode(f)
	ma, err := readU32(r)
	if err != nil {
		return st, err
	}
	st.MaxAniso = int(ma)
	st.LODBias, err = readF32(r)
	return st, err
}

func writeClear(w *bufio.Writer, op *gfxapi.ClearOp) error {
	if err := writeVec4(w, op.Color); err != nil {
		return err
	}
	if err := writeF32(w, op.Z); err != nil {
		return err
	}
	bytes := []uint8{op.Stencil, boolByte(op.ClearColor),
		boolByte(op.ClearDepth), boolByte(op.ClearStencil)}
	for _, b := range bytes {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	return nil
}

func readClear(r *bufio.Reader) (gfxapi.ClearOp, error) {
	var op gfxapi.ClearOp
	var err error
	if op.Color, err = readVec4(r); err != nil {
		return op, err
	}
	if op.Z, err = readF32(r); err != nil {
		return op, err
	}
	var b [4]uint8
	for i := range b {
		if b[i], err = readU8(r); err != nil {
			return op, err
		}
	}
	op.Stencil = b[0]
	op.ClearColor, op.ClearDepth, op.ClearStencil = b[1] != 0, b[2] != 0, b[3] != 0
	return op, nil
}
