package trace

import (
	"bufio"
	"fmt"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/rop"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// writePayload encodes one API call's payload (everything after the op
// byte; the Recorder frames it with a length).
func writePayload(w *bufio.Writer, c *gfxapi.Command) error {
	switch c.Op {
	case gfxapi.OpCreateVB:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.Stride)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(c.VBData))); err != nil {
			return err
		}
		for _, attr := range c.VBData {
			if err := writeU32(w, uint32(len(attr))); err != nil {
				return err
			}
			for _, v := range attr {
				if err := writeVec4(w, v); err != nil {
					return err
				}
			}
		}
	case gfxapi.OpCreateIB:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeU32(w, uint32(c.Stride)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(c.IBData))); err != nil {
			return err
		}
		for _, idx := range c.IBData {
			if err := writeU32(w, idx); err != nil {
				return err
			}
		}
	case gfxapi.OpCreateTex:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeTexSpec(w, &c.TexSpec); err != nil {
			return err
		}
	case gfxapi.OpCreateProgram:
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		if err := writeProgram(w, c.Program); err != nil {
			return err
		}
	case gfxapi.OpSetZState:
		return writeZState(w, c.ZState)
	case gfxapi.OpSetRopState:
		return writeRopState(w, c.RopState)
	case gfxapi.OpSetCull:
		return writeU8(w, uint8(c.Cull))
	case gfxapi.OpBindTexture:
		if err := writeU8(w, c.Unit); err != nil {
			return err
		}
		if err := writeU32(w, c.ID); err != nil {
			return err
		}
		return writeSampler(w, c.Sampler)
	case gfxapi.OpSetConst:
		if err := writeU8(w, c.Unit); err != nil {
			return err
		}
		return writeVec4(w, c.Vec)
	case gfxapi.OpDraw:
		for _, v := range []uint32{c.ID, c.ID2, c.ProgID, c.ProgID2} {
			if err := writeU32(w, v); err != nil {
				return err
			}
		}
		return writeU8(w, uint8(c.Prim))
	case gfxapi.OpClear:
		return writeClear(w, c.ClearOp)
	case gfxapi.OpEndFrame:
		// no payload
	case gfxapi.OpCreateRT:
		for _, v := range []uint32{c.ID, c.ID2, uint32(c.RTW), uint32(c.RTH)} {
			if err := writeU32(w, v); err != nil {
				return err
			}
		}
		return writeString(w, c.RTName)
	case gfxapi.OpSetRT, gfxapi.OpResolveTex:
		return writeU32(w, c.ID)
	default:
		return fmt.Errorf("trace: cannot encode op %v", c.Op)
	}
	return nil
}

// readPayload decodes one API call's payload, validating every length
// and enum field against the decoder's limits before allocating.
func readPayload(d *decoder, c gfxapi.Command) (gfxapi.Command, error) {
	var err error
	switch c.Op {
	case gfxapi.OpCreateVB:
		if c.ID, err = d.readU32(); err != nil {
			return c, err
		}
		stride, err := d.readU32()
		if err != nil {
			return c, err
		}
		if int64(stride) > int64(d.lim.MaxStride) {
			return c, fmt.Errorf("vertex stride %d: %w", stride, ErrLimit)
		}
		c.Stride = int(stride)
		nAttr, err := d.readU32()
		if err != nil {
			return c, err
		}
		if int64(nAttr) > int64(d.lim.MaxAttrs) {
			return c, fmt.Errorf("%d attributes: %w", nAttr, ErrLimit)
		}
		if err := d.charge(int64(nAttr) * 24); err != nil {
			return c, err
		}
		c.VBData = make([][]gmath.Vec4, nAttr)
		for i := range c.VBData {
			n, err := d.readU32()
			if err != nil {
				return c, err
			}
			if int64(n) > int64(d.lim.MaxVertices) {
				return c, fmt.Errorf("%d vertices: %w", n, ErrLimit)
			}
			// Ragged attribute slots would index out of range in the
			// vertex fetch stage; reject them at the wire.
			if i > 0 && int(n) != len(c.VBData[0]) {
				return c, fmt.Errorf("ragged vertex buffer: attr %d has %d vertices, attr 0 has %d",
					i, n, len(c.VBData[0]))
			}
			if c.VBData[i], err = d.readVec4s(int(n)); err != nil {
				return c, err
			}
		}
	case gfxapi.OpCreateIB:
		if c.ID, err = d.readU32(); err != nil {
			return c, err
		}
		stride, err := d.readU32()
		if err != nil {
			return c, err
		}
		if int64(stride) > int64(d.lim.MaxStride) {
			return c, fmt.Errorf("index stride %d: %w", stride, ErrLimit)
		}
		c.Stride = int(stride)
		n, err := d.readU32()
		if err != nil {
			return c, err
		}
		if int64(n) > int64(d.lim.MaxIndices) {
			return c, fmt.Errorf("%d indices: %w", n, ErrLimit)
		}
		if c.IBData, err = d.readU32s(int(n)); err != nil {
			return c, err
		}
	case gfxapi.OpCreateTex:
		if c.ID, err = d.readU32(); err != nil {
			return c, err
		}
		spec, err := readTexSpec(d)
		if err != nil {
			return c, err
		}
		c.TexSpec = spec
	case gfxapi.OpCreateProgram:
		if c.ID, err = d.readU32(); err != nil {
			return c, err
		}
		if c.Program, err = readProgram(d); err != nil {
			return c, err
		}
	case gfxapi.OpSetZState:
		st, err := readZState(d)
		if err != nil {
			return c, err
		}
		c.ZState = &st
	case gfxapi.OpSetRopState:
		st, err := readRopState(d)
		if err != nil {
			return c, err
		}
		c.RopState = &st
	case gfxapi.OpSetCull:
		b, err := d.readU8()
		if err != nil {
			return c, err
		}
		if b > uint8(geom.CullNone) {
			return c, fmt.Errorf("unknown cull mode %d", b)
		}
		c.Cull = geom.CullMode(b)
	case gfxapi.OpBindTexture:
		if c.Unit, err = d.readU8(); err != nil {
			return c, err
		}
		if c.ID, err = d.readU32(); err != nil {
			return c, err
		}
		st, err := readSampler(d)
		if err != nil {
			return c, err
		}
		c.Sampler = &st
	case gfxapi.OpSetConst:
		if c.Unit, err = d.readU8(); err != nil {
			return c, err
		}
		if c.Vec, err = d.readVec4(); err != nil {
			return c, err
		}
	case gfxapi.OpDraw:
		for _, dst := range []*uint32{&c.ID, &c.ID2, &c.ProgID, &c.ProgID2} {
			if *dst, err = d.readU32(); err != nil {
				return c, err
			}
		}
		b, err := d.readU8()
		if err != nil {
			return c, err
		}
		// The per-primitive statistics array is indexed by this byte.
		if b > uint8(geom.TriangleFan) {
			return c, fmt.Errorf("unknown primitive type %d", b)
		}
		c.Prim = geom.PrimitiveType(b)
	case gfxapi.OpClear:
		op, err := readClear(d)
		if err != nil {
			return c, err
		}
		c.ClearOp = &op
	case gfxapi.OpEndFrame:
	case gfxapi.OpCreateRT:
		var u [4]uint32
		for i := range u {
			if u[i], err = d.readU32(); err != nil {
				return c, err
			}
		}
		if int64(u[2]) > int64(d.lim.MaxTexDim) || int64(u[3]) > int64(d.lim.MaxTexDim) {
			return c, fmt.Errorf("render target %dx%d: %w", u[2], u[3], ErrLimit)
		}
		// The replaying device materializes a color plane, a depth plane
		// and a resolve texture for this surface; charge the dominant
		// footprint against the allocation budget before the player can
		// reach the device. Row-by-row, so a hostile dimension claim
		// cannot push the Allocated counter more than one row (MaxTexDim
		// * 4 bytes) past the budget.
		for y := 0; y < int(u[3]); y++ {
			if err := d.charge(int64(u[2]) * 4); err != nil {
				return c, err
			}
		}
		c.ID, c.ID2, c.RTW, c.RTH = u[0], u[1], int(u[2]), int(u[3])
		if c.RTName, err = d.readString(); err != nil {
			return c, err
		}
	case gfxapi.OpSetRT, gfxapi.OpResolveTex:
		if c.ID, err = d.readU32(); err != nil {
			return c, err
		}
	default:
		return c, fmt.Errorf("op %d: %w", uint8(c.Op), ErrUnknownOp)
	}
	return c, nil
}

func writeProgram(w *bufio.Writer, p *shader.Program) error {
	if err := writeString(w, p.Name); err != nil {
		return err
	}
	if err := writeU8(w, uint8(p.Kind)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(p.Instrs))); err != nil {
		return err
	}
	for _, in := range p.Instrs {
		fields := []uint8{
			uint8(in.Op), uint8(in.Dst.File), in.Dst.Index, in.Dst.Mask,
			in.TexUnit,
		}
		for _, f := range fields {
			if err := writeU8(w, f); err != nil {
				return err
			}
		}
		for s := 0; s < 3; s++ {
			src := in.Src[s]
			neg := uint8(0)
			if src.Negate {
				neg = 1
			}
			fields := []uint8{
				uint8(src.File), src.Index, neg,
				src.Swizzle[0], src.Swizzle[1], src.Swizzle[2], src.Swizzle[3],
			}
			for _, f := range fields {
				if err := writeU8(w, f); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readProgram(d *decoder) (*shader.Program, error) {
	name, err := d.readString()
	if err != nil {
		return nil, err
	}
	kind, err := d.readU8()
	if err != nil {
		return nil, err
	}
	if kind > uint8(shader.FragmentProgram) {
		return nil, fmt.Errorf("unknown program kind %d", kind)
	}
	n, err := d.readU32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(d.lim.MaxProgramInstrs) {
		return nil, fmt.Errorf("program length %d: %w", n, ErrLimit)
	}
	if err := d.charge(int64(n) * 32); err != nil {
		return nil, err
	}
	p := &shader.Program{Name: name, Kind: shader.Kind(kind)}
	p.Instrs = make([]shader.Instruction, n)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		var b [5]uint8
		for j := range b {
			if b[j], err = d.readU8(); err != nil {
				return nil, err
			}
		}
		in.Op = shader.Opcode(b[0])
		in.Dst = shader.Dst{File: shader.RegFile(b[1]), Index: b[2], Mask: b[3]}
		in.TexUnit = b[4]
		for s := 0; s < 3; s++ {
			var sb [7]uint8
			for j := range sb {
				if sb[j], err = d.readU8(); err != nil {
					return nil, err
				}
			}
			in.Src[s] = shader.Src{
				File: shader.RegFile(sb[0]), Index: sb[1], Negate: sb[2] != 0,
				Swizzle: shader.Swizzle{sb[3], sb[4], sb[5], sb[6]},
			}
		}
	}
	// The device revalidates on CreateProgram; validating here as well
	// pins the error to the command's stream position.
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func writeTexSpec(w *bufio.Writer, s *gfxapi.TextureSpec) error {
	if err := writeString(w, s.Name); err != nil {
		return err
	}
	for _, b := range []uint8{uint8(s.Format), uint8(s.Kind)} {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	for _, v := range []uint32{uint32(s.W), uint32(s.H), uint32(s.Cell), s.Seed} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	for _, c := range []texture.RGBA{s.ColorA, s.ColorB} {
		for _, b := range []uint8{c.R, c.G, c.B, c.A} {
			if err := writeU8(w, b); err != nil {
				return err
			}
		}
	}
	if err := writeU32(w, uint32(len(s.Data))); err != nil {
		return err
	}
	for _, c := range s.Data {
		for _, b := range []uint8{c.R, c.G, c.B, c.A} {
			if err := writeU8(w, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func readTexSpec(d *decoder) (gfxapi.TextureSpec, error) {
	var s gfxapi.TextureSpec
	var err error
	if s.Name, err = d.readString(); err != nil {
		return s, err
	}
	fm, err := d.readU8()
	if err != nil {
		return s, err
	}
	if fm > uint8(texture.FormatDXT5) {
		return s, fmt.Errorf("unknown texture format %d", fm)
	}
	s.Format = texture.Format(fm)
	kd, err := d.readU8()
	if err != nil {
		return s, err
	}
	if kd > uint8(gfxapi.KindBlockNoise) {
		return s, fmt.Errorf("unknown texture kind %d", kd)
	}
	s.Kind = gfxapi.TextureKind(kd)
	var u [4]uint32
	for i := range u {
		if u[i], err = d.readU32(); err != nil {
			return s, err
		}
	}
	if int64(u[0]) > int64(d.lim.MaxTexDim) || int64(u[1]) > int64(d.lim.MaxTexDim) {
		return s, fmt.Errorf("texture %dx%d: %w", u[0], u[1], ErrLimit)
	}
	s.W, s.H, s.Cell, s.Seed = int(u[0]), int(u[1]), int(u[2]), u[3]
	readRGBA := func() (texture.RGBA, error) {
		var c texture.RGBA
		var b [4]uint8
		for i := range b {
			if b[i], err = d.readU8(); err != nil {
				return c, err
			}
		}
		return texture.RGBA{R: b[0], G: b[1], B: b[2], A: b[3]}, nil
	}
	if s.ColorA, err = readRGBA(); err != nil {
		return s, err
	}
	if s.ColorB, err = readRGBA(); err != nil {
		return s, err
	}
	n, err := d.readU32()
	if err != nil {
		return s, err
	}
	if int64(n) > int64(d.lim.MaxTexels) {
		return s, fmt.Errorf("%d texels: %w", n, ErrLimit)
	}
	const chunk = 4096
	for len(s.Data) < int(n) {
		c := int(n) - len(s.Data)
		if c > chunk {
			c = chunk
		}
		if err := d.charge(int64(c) * 4); err != nil {
			return s, err
		}
		for i := 0; i < c; i++ {
			t, err := readRGBA()
			if err != nil {
				return s, err
			}
			s.Data = append(s.Data, t)
		}
	}
	return s, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func writeZState(w *bufio.Writer, st *zst.State) error {
	bytes := []uint8{
		boolByte(st.ZTest), uint8(st.ZFunc), boolByte(st.ZWrite),
		boolByte(st.StencilTest), uint8(st.StencilFunc), st.StencilRef,
		st.StencilMask,
		uint8(st.Front.Fail), uint8(st.Front.ZFail), uint8(st.Front.ZPass),
		uint8(st.Back.Fail), uint8(st.Back.ZFail), uint8(st.Back.ZPass),
		boolByte(st.HZ),
	}
	for _, b := range bytes {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	return nil
}

func readZState(d *decoder) (zst.State, error) {
	var b [14]uint8
	var err error
	for i := range b {
		if b[i], err = d.readU8(); err != nil {
			return zst.State{}, err
		}
	}
	return zst.State{
		ZTest: b[0] != 0, ZFunc: zst.CompareFunc(b[1]), ZWrite: b[2] != 0,
		StencilTest: b[3] != 0, StencilFunc: zst.CompareFunc(b[4]),
		StencilRef: b[5], StencilMask: b[6],
		Front: zst.FaceOps{Fail: zst.StencilOp(b[7]), ZFail: zst.StencilOp(b[8]),
			ZPass: zst.StencilOp(b[9])},
		Back: zst.FaceOps{Fail: zst.StencilOp(b[10]), ZFail: zst.StencilOp(b[11]),
			ZPass: zst.StencilOp(b[12])},
		HZ: b[13] != 0,
	}, nil
}

func writeRopState(w *bufio.Writer, st *rop.State) error {
	bytes := []uint8{
		boolByte(st.Blend), uint8(st.SrcFactor), uint8(st.DstFactor),
		boolByte(st.WriteMask[0]), boolByte(st.WriteMask[1]),
		boolByte(st.WriteMask[2]), boolByte(st.WriteMask[3]),
	}
	for _, b := range bytes {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	return nil
}

func readRopState(d *decoder) (rop.State, error) {
	var b [7]uint8
	var err error
	for i := range b {
		if b[i], err = d.readU8(); err != nil {
			return rop.State{}, err
		}
	}
	return rop.State{
		Blend: b[0] != 0, SrcFactor: rop.BlendFactor(b[1]),
		DstFactor: rop.BlendFactor(b[2]),
		WriteMask: [4]bool{b[3] != 0, b[4] != 0, b[5] != 0, b[6] != 0},
	}, nil
}

func writeSampler(w *bufio.Writer, st *texture.SamplerState) error {
	if err := writeU8(w, uint8(st.Filter)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(st.MaxAniso)); err != nil {
		return err
	}
	return writeF32(w, st.LODBias)
}

func readSampler(d *decoder) (texture.SamplerState, error) {
	var st texture.SamplerState
	f, err := d.readU8()
	if err != nil {
		return st, err
	}
	if f > uint8(texture.FilterAniso) {
		return st, fmt.Errorf("unknown filter mode %d", f)
	}
	st.Filter = texture.FilterMode(f)
	ma, err := d.readU32()
	if err != nil {
		return st, err
	}
	// The anisotropic filter walks MaxAniso probes per fragment, so an
	// unbounded wire value is a denial of service.
	if int64(ma) > int64(d.lim.MaxAniso) {
		return st, fmt.Errorf("aniso ratio %d: %w", ma, ErrLimit)
	}
	st.MaxAniso = int(ma)
	st.LODBias, err = d.readF32()
	return st, err
}

func writeClear(w *bufio.Writer, op *gfxapi.ClearOp) error {
	if err := writeVec4(w, op.Color); err != nil {
		return err
	}
	if err := writeF32(w, op.Z); err != nil {
		return err
	}
	bytes := []uint8{op.Stencil, boolByte(op.ClearColor),
		boolByte(op.ClearDepth), boolByte(op.ClearStencil)}
	for _, b := range bytes {
		if err := writeU8(w, b); err != nil {
			return err
		}
	}
	return nil
}

func readClear(d *decoder) (gfxapi.ClearOp, error) {
	var op gfxapi.ClearOp
	var err error
	if op.Color, err = d.readVec4(); err != nil {
		return op, err
	}
	if op.Z, err = d.readF32(); err != nil {
		return op, err
	}
	var b [4]uint8
	for i := range b {
		if b[i], err = d.readU8(); err != nil {
			return op, err
		}
	}
	op.Stencil = b[0]
	op.ClearColor, op.ClearDepth, op.ClearStencil = b[1] != 0, b[2] != 0, b[3] != 0
	return op, nil
}
