package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"gpuchar/internal/gfxapi"
)

// goldenTrace records the small representative scene and returns the
// encoded stream.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		t.Fatal(err)
	}
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	d.SetRecorder(rec)
	renderSmallScene(t, d)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzLimits are deliberately tight so the corruption suites exercise
// the allocation budget, not the machine's patience.
func fuzzLimits() Limits {
	lim := DefaultLimits()
	lim.AllocBudget = 1 << 20
	return lim
}

// allocSlack is how far past the budget the Allocated counter may land:
// the decoder charges one chunk before reading it, so the counter can
// overshoot by at most one chunk charge (4096 Vec4s = 64 KiB). The
// over-charged chunk is never retained.
const allocSlack = 1 << 17

// playCorrupt decodes and strictly replays data, requiring that every
// failure is a typed trace error and allocation stays within budget.
func playCorrupt(t *testing.T, data []byte, lim Limits) {
	t.Helper()
	r, err := NewReaderLimits(bytes.NewReader(data), lim)
	if err != nil {
		return // header damage: rejected before any command decodes
	}
	dev := gfxapi.NewDevice(r.API(), gfxapi.NullBackend{})
	_, err = NewPlayer(dev).Play(r)
	if err != nil {
		var fe *FormatError
		var re *ReplayError
		if !errors.As(err, &fe) && !errors.As(err, &re) {
			t.Fatalf("untyped error %T: %v", err, err)
		}
	}
	if got := r.Allocated(); got > lim.AllocBudget+allocSlack {
		t.Fatalf("allocated %d bytes, budget %d", got, lim.AllocBudget)
	}
}

// TestBitFlipNoPanic flips every bit of a golden trace, one at a time,
// and replays each corrupted stream: no input may panic, allocate past
// the budget, or fail with an untyped error.
func TestBitFlipNoPanic(t *testing.T) {
	golden := goldenTrace(t)
	lim := fuzzLimits()
	data := make([]byte, len(golden))
	for i := range golden {
		for bit := 0; bit < 8; bit++ {
			copy(data, golden)
			data[i] ^= 1 << bit
			playCorrupt(t, data, lim)
			if t.Failed() {
				t.Fatalf("at byte %d bit %d", i, bit)
			}
		}
	}
}

// TestTruncationNoPanic cuts a golden trace at every byte offset: the
// reader must fail with a typed error (or replay the surviving prefix
// cleanly) without panicking or blowing the budget.
func TestTruncationNoPanic(t *testing.T) {
	golden := goldenTrace(t)
	lim := fuzzLimits()
	for i := 0; i <= len(golden); i++ {
		playCorrupt(t, golden[:i], lim)
		if t.Failed() {
			t.Fatalf("at cut offset %d", i)
		}
	}
}

// frame encodes one v2 framed command.
func frame(op uint8, payload []byte) []byte {
	out := []byte{op}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	out = append(out, n[:]...)
	return append(out, payload...)
}

func u32le(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// header is a v2 OpenGL trace header.
func header() []byte { return []byte{'G', 'T', 'R', 'C', 2, 0} }

// TestHeaderDamageIsTyped checks that every way a header can be bad —
// truncation, wrong magic, future version, unknown dialect — rejects
// with a *FormatError marked as header damage (Cmd -1).
func TestHeaderDamageIsTyped(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"short":           {'G', 'T', 'R'},
		"magic":           {'X', 'T', 'R', 'C', 2, 0},
		"future version":  {'G', 'T', 'R', 'C', 99, 0},
		"version zero":    {'G', 'T', 'R', 'C', 0, 0},
		"unknown dialect": {'G', 'T', 'R', 'C', 2, 99},
	}
	for name, data := range cases {
		_, err := NewReader(bytes.NewReader(data))
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s header: err = %v (%T), want *FormatError", name, err, err)
			continue
		}
		if fe.Cmd >= 0 {
			t.Errorf("%s header: Cmd = %d, want negative (header damage)", name, fe.Cmd)
		}
	}
}

// TestHostileLengthsBounded replays the motivating attack: a tiny file
// whose length fields demand gigabytes. The decoder must fail on
// truncation or budget without materializing the claim.
func TestHostileLengthsBounded(t *testing.T) {
	// CreateVB claiming 2^24 vertices in 16 payload bytes.
	payload := append(append(append(
		u32le(1),        // ID
		u32le(48)...),   // stride
		u32le(1)...),    // nAttr
		u32le(1<<24)...) // vertices — none follow
	data := append(header(), frame(uint8(gfxapi.OpCreateVB), payload)...)

	lim := fuzzLimits()
	r, err := NewReaderLimits(bytes.NewReader(data), lim)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Next()
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("hostile CreateVB: err = %v, want *FormatError", err)
	}
	if got := r.Allocated(); got > lim.AllocBudget+allocSlack {
		t.Fatalf("allocated %d for a %d-byte file", got, len(data))
	}
}

// TestAllocationBudgetEnforced streams valid oversized commands until
// the cumulative budget trips: the decoder must surface ErrBudget.
func TestAllocationBudgetEnforced(t *testing.T) {
	var buf bytes.Buffer
	rec, _ := NewRecorder(&buf, gfxapi.OpenGL)
	idx := make([]uint32, 1<<16)
	for i := 0; i < 8; i++ {
		rec.Record(gfxapi.Command{Op: gfxapi.OpCreateIB, ID: uint32(i),
			IBData: idx, Stride: 4})
	}
	rec.Close()

	lim := DefaultLimits()
	lim.AllocBudget = 1 << 19 // half a MiB; the stream claims 2 MiB
	r, err := NewReaderLimits(bytes.NewReader(buf.Bytes()), lim)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = r.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// spliceAfterHeader inserts raw bytes at the first command boundary.
func spliceAfterHeader(trace, inject []byte) []byte {
	out := append([]byte{}, trace[:6]...)
	out = append(out, inject...)
	return append(out, trace[6:]...)
}

// lenientTestTrace builds a trace containing, in order: an unknown op,
// a valid frame, a draw with dangling resource IDs, and a draw whose
// index buffer references vertices past the end of its vertex buffer.
func lenientTestTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		t.Fatal(err)
	}
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	d.SetRecorder(rec)
	renderSmallScene(t, d) // 2 clean frames of state + draws
	// Dangling draw: none of these IDs exist.
	rec.Record(gfxapi.Command{Op: gfxapi.OpDraw, ID: 99, ID2: 98,
		ProgID: 97, ProgID2: 96})
	rec.Close()

	data := buf.Bytes()
	// Oversized draw: re-create IB 2 with an out-of-range index, then
	// draw with it. The resource IDs the device assigned in
	// renderSmallScene are 1 (VB), 2 (IB), 3-4 (programs).
	var tail bytes.Buffer
	rec2, _ := NewRecorder(&tail, gfxapi.OpenGL)
	rec2.Record(gfxapi.Command{Op: gfxapi.OpCreateIB, ID: 2,
		IBData: []uint32{0, 1, 40}, Stride: 2})
	rec2.Record(gfxapi.Command{Op: gfxapi.OpDraw, ID: 1, ID2: 2,
		ProgID: 3, ProgID2: 4})
	rec2.Record(gfxapi.Command{Op: gfxapi.OpEndFrame})
	rec2.Close()
	data = append(data, tail.Bytes()[6:]...) // strip tail's header

	// Unknown op 200 with a 3-byte payload, spliced before everything.
	return spliceAfterHeader(data, frame(200, []byte{1, 2, 3}))
}

// TestLenientReplayReport replays the damaged trace leniently and
// checks the report counts every casualty exactly once while the frame
// count matches the undamaged portions.
func TestLenientReplayReport(t *testing.T) {
	data := lenientTestTrace(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dev := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	p := NewPlayer(dev)
	p.SetMode(Lenient)
	frames, err := p.Play(r)
	if err != nil {
		t.Fatalf("lenient replay aborted: %v", err)
	}
	if frames != 3 {
		t.Errorf("frames = %d, want 3 (2 clean + 1 degraded)", frames)
	}
	rep := p.Report()
	if rep.SkippedUnknownOps != 1 {
		t.Errorf("SkippedUnknownOps = %d, want 1", rep.SkippedUnknownOps)
	}
	if rep.SkippedBadCommands != 1 {
		t.Errorf("SkippedBadCommands = %d, want 1 (the dangling draw)",
			rep.SkippedBadCommands)
	}
	if rep.DanglingResources != 1 {
		t.Errorf("DanglingResources = %d, want 1", rep.DanglingResources)
	}
	if rep.DegradedDraws != 1 {
		t.Errorf("DegradedDraws = %d, want 1", rep.DegradedDraws)
	}
	if rep.Clean() {
		t.Error("report claims clean")
	}
	if len(rep.Errs) == 0 {
		t.Error("report retained no errors")
	}
}

// TestStrictReplayAbortsOnUnknownOp pins the strict default: the same
// damaged trace fails on the first bad command with a resynced
// *FormatError wrapping ErrUnknownOp.
func TestStrictReplayAbortsOnUnknownOp(t *testing.T) {
	data := lenientTestTrace(t)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	dev := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	frames, err := NewPlayer(dev).Play(r)
	if frames != 0 {
		t.Errorf("frames = %d before abort, want 0", frames)
	}
	if !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
	var fe *FormatError
	if !errors.As(err, &fe) || !fe.Resynced() {
		t.Fatalf("err = %#v, want resynced *FormatError", err)
	}
	if fe.Cmd != 0 || fe.Offset != 6 {
		t.Errorf("error position = cmd %d offset %d, want cmd 0 offset 6",
			fe.Cmd, fe.Offset)
	}
}

// TestV1ReadCompat checks version negotiation: a v1 (unframed) stream
// still decodes, and its unknown ops are terminal rather than resynced.
func TestV1ReadCompat(t *testing.T) {
	// Hand-encode a v1 stream: header + SetConst + EndFrame + unknown.
	data := []byte{'G', 'T', 'R', 'C', 1, 0}
	data = append(data, uint8(gfxapi.OpSetConst))
	data = append(data, 2) // unit
	for i := 0; i < 4; i++ {
		data = append(data, u32le(0)...)
	}
	data = append(data, uint8(gfxapi.OpEndFrame))
	data = append(data, 250) // unknown op, no framing to resync with

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Fatalf("version = %d", r.Version())
	}
	if cmd, err := r.Next(); err != nil || cmd.Op != gfxapi.OpSetConst {
		t.Fatalf("cmd 0: %v %v", cmd.Op, err)
	}
	if cmd, err := r.Next(); err != nil || cmd.Op != gfxapi.OpEndFrame {
		t.Fatalf("cmd 1: %v %v", cmd.Op, err)
	}
	_, err = r.Next()
	var fe *FormatError
	if !errors.As(err, &fe) || !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("unknown v1 op: err = %v", err)
	}
	if fe.Resynced() {
		t.Error("v1 unknown op claims resynced: nothing frames the skip")
	}
}

// TestReaderOffsetsAreExact replays a trace while checking that Offset
// advances monotonically and errors carry real stream positions.
func TestReaderOffsetsAreExact(t *testing.T) {
	golden := goldenTrace(t)
	r, err := NewReader(bytes.NewReader(golden))
	if err != nil {
		t.Fatal(err)
	}
	last := r.Offset()
	if last != 6 {
		t.Fatalf("post-header offset = %d, want 6", last)
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if off := r.Offset(); off <= last {
			t.Fatalf("offset went from %d to %d", last, off)
		} else {
			last = off
		}
	}
	if last != int64(len(golden)) {
		t.Errorf("final offset %d, trace is %d bytes", last, len(golden))
	}
}
