package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gpuchar/internal/gfxapi"
)

// fuzzSeeds returns representative streams for both fuzz targets:
// a healthy v2 trace, a v1 stream, a hostile-length claim, and some
// structurally broken prefixes.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		f.Fatal(err)
	}
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	d.SetRecorder(rec)
	renderSmallScene(f, d)
	if err := rec.Close(); err != nil {
		f.Fatal(err)
	}
	golden := buf.Bytes()

	hostile := append(header(), frame(uint8(gfxapi.OpCreateVB), append(append(append(
		u32le(1), u32le(48)...), u32le(1)...), u32le(1<<24)...))...)

	// Render-target op seeds: a healthy create/set/resolve sequence, a
	// hostile dimension claim, a hostile name-length claim, a dangling
	// set, and a mid-payload truncation — one per failure mode the v2
	// RT codec must survive.
	createRT := func(id, texID, w, h, nameLen uint32, name string) []byte {
		p := append(append(append(append(u32le(id), u32le(texID)...),
			u32le(w)...), u32le(h)...), u32le(nameLen)...)
		return frame(uint8(gfxapi.OpCreateRT), append(p, name...))
	}
	rtHealthy := append(header(), createRT(1, 2, 64, 64, 2, "rt")...)
	rtHealthy = append(rtHealthy, frame(uint8(gfxapi.OpSetRT), u32le(1))...)
	rtHealthy = append(rtHealthy, frame(uint8(gfxapi.OpResolveTex), u32le(1))...)
	rtHealthy = append(rtHealthy, frame(uint8(gfxapi.OpSetRT), u32le(0))...)
	rtHealthy = append(rtHealthy, frame(uint8(gfxapi.OpEndFrame), nil)...)
	rtHugeDims := append(header(), createRT(1, 2, 1<<30, 1<<30, 2, "rt")...)
	rtHugeName := append(header(), createRT(1, 2, 64, 64, 1<<28, "rt")...)
	rtDangling := append(header(), frame(uint8(gfxapi.OpSetRT), u32le(77))...)
	rtDangling = append(rtDangling, frame(uint8(gfxapi.OpResolveTex), u32le(77))...)
	rtTruncated := append(header(), frame(uint8(gfxapi.OpCreateRT), u32le(1))...)

	return [][]byte{
		golden,
		golden[:len(golden)/2],
		hostile,
		header(),
		{'G', 'T', 'R', 'C', 1, 0, uint8(gfxapi.OpEndFrame)},
		append(header(), frame(200, []byte{1, 2, 3})...),
		rtHealthy,
		rtHugeDims,
		rtHugeName,
		rtDangling,
		rtTruncated,
	}
}

// FuzzReadCommand feeds arbitrary bytes through the decoder. The only
// acceptable failures are typed *FormatError values; allocation must
// respect the budget and resynced errors must not loop forever.
func FuzzReadCommand(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := DefaultLimits()
		lim.AllocBudget = 1 << 22
		r, err := NewReaderLimits(bytes.NewReader(data), lim)
		if err != nil {
			return // invalid header: rejected up front
		}
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("untyped decode error %T: %v", err, err)
				}
				if !fe.Resynced() {
					break
				}
				continue // framing let us skip the bad command
			}
		}
		if got := r.Allocated(); got > lim.AllocBudget+allocSlack {
			t.Fatalf("allocated %d bytes, budget %d", got, lim.AllocBudget)
		}
	})
}

// FuzzPlay replays arbitrary bytes leniently into a full device. No
// input may panic the pipeline; failures must be typed trace errors.
func FuzzPlay(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := DefaultLimits()
		lim.AllocBudget = 1 << 22
		r, err := NewReaderLimits(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		dev := gfxapi.NewDevice(r.API(), gfxapi.NullBackend{})
		p := NewPlayer(dev)
		p.SetMode(Lenient)
		if _, err := p.Play(r); err != nil {
			var fe *FormatError
			var re *ReplayError
			if !errors.As(err, &fe) && !errors.As(err, &re) {
				t.Fatalf("untyped replay error %T: %v", err, err)
			}
		}
		if got := r.Allocated(); got > lim.AllocBudget+allocSlack {
			t.Fatalf("allocated %d bytes, budget %d", got, lim.AllocBudget)
		}
	})
}
