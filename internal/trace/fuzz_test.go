package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gpuchar/internal/gfxapi"
)

// fuzzSeeds returns representative streams for both fuzz targets:
// a healthy v2 trace, a v1 stream, a hostile-length claim, and some
// structurally broken prefixes.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var buf bytes.Buffer
	rec, err := NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		f.Fatal(err)
	}
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	d.SetRecorder(rec)
	renderSmallScene(f, d)
	if err := rec.Close(); err != nil {
		f.Fatal(err)
	}
	golden := buf.Bytes()

	hostile := append(header(), frame(uint8(gfxapi.OpCreateVB), append(append(append(
		u32le(1), u32le(48)...), u32le(1)...), u32le(1<<24)...))...)

	return [][]byte{
		golden,
		golden[:len(golden)/2],
		hostile,
		header(),
		{'G', 'T', 'R', 'C', 1, 0, uint8(gfxapi.OpEndFrame)},
		append(header(), frame(200, []byte{1, 2, 3})...),
	}
}

// FuzzReadCommand feeds arbitrary bytes through the decoder. The only
// acceptable failures are typed *FormatError values; allocation must
// respect the budget and resynced errors must not loop forever.
func FuzzReadCommand(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := DefaultLimits()
		lim.AllocBudget = 1 << 22
		r, err := NewReaderLimits(bytes.NewReader(data), lim)
		if err != nil {
			return // invalid header: rejected up front
		}
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var fe *FormatError
				if !errors.As(err, &fe) {
					t.Fatalf("untyped decode error %T: %v", err, err)
				}
				if !fe.Resynced() {
					break
				}
				continue // framing let us skip the bad command
			}
		}
		if got := r.Allocated(); got > lim.AllocBudget+allocSlack {
			t.Fatalf("allocated %d bytes, budget %d", got, lim.AllocBudget)
		}
	})
}

// FuzzPlay replays arbitrary bytes leniently into a full device. No
// input may panic the pipeline; failures must be typed trace errors.
func FuzzPlay(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := DefaultLimits()
		lim.AllocBudget = 1 << 22
		r, err := NewReaderLimits(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		dev := gfxapi.NewDevice(r.API(), gfxapi.NullBackend{})
		p := NewPlayer(dev)
		p.SetMode(Lenient)
		if _, err := p.Play(r); err != nil {
			var fe *FormatError
			var re *ReplayError
			if !errors.As(err, &fe) && !errors.As(err, &re) {
				t.Fatalf("untyped replay error %T: %v", err, err)
			}
		}
		if got := r.Allocated(); got > lim.AllocBudget+allocSlack {
			t.Fatalf("allocated %d bytes, budget %d", got, lim.AllocBudget)
		}
	})
}
