// Package trace implements API-call tracing: a compact binary format for
// gfxapi command streams, a Recorder that captures a device's calls, and
// a Player that reproduces a captured stream against a fresh device.
//
// This mirrors the paper's methodology (§II.B and ref [4]): a tracer
// intercepts calls at the graphics library boundary and stores them so
// the identical input can be replayed any number of times — on the real
// card for API statistics, or through the simulator for
// microarchitectural ones.
//
// Because the whole capture-once/replay-many methodology collapses if a
// corrupt trace can crash or OOM the player, the decoder is validating:
// every wire length is checked against Limits before allocation, large
// payloads are read in chunks so truncation surfaces before memory is
// committed, and failures carry their command index and byte offset in
// typed *FormatError / *ReplayError values.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
)

// magic identifies a trace stream.
var magic = [4]byte{'G', 'T', 'R', 'C'}

// Trace format versions. Version 1 streamed commands back to back;
// version 2 frames each command as op byte + u32 payload length +
// payload, which lets a reader stay in sync across commands it cannot
// decode (unknown ops from a newer writer, corrupt payloads). The
// reader negotiates: it accepts both, the recorder writes the latest.
const (
	version    = 2
	minVersion = 1
)

// Recorder captures a device's API calls into a writer. Attach with
// Device.SetRecorder.
type Recorder struct {
	w   *bufio.Writer
	err error
	n   int64 // commands written

	// scratch holds one command's encoded payload so its length can be
	// written before its bytes (the v2 framing).
	scratch bytes.Buffer
	sw      *bufio.Writer
}

// NewRecorder creates a recorder writing the trace header for the given
// API dialect.
func NewRecorder(w io.Writer, api gfxapi.API) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(api)); err != nil {
		return nil, err
	}
	r := &Recorder{w: bw}
	r.sw = bufio.NewWriter(&r.scratch)
	return r, nil
}

// Record implements gfxapi.Recorder.
func (r *Recorder) Record(cmd gfxapi.Command) {
	if r.err != nil {
		return
	}
	r.scratch.Reset()
	r.sw.Reset(&r.scratch)
	if r.err = writePayload(r.sw, &cmd); r.err != nil {
		return
	}
	if r.err = r.sw.Flush(); r.err != nil {
		return
	}
	if r.err = writeU8(r.w, uint8(cmd.Op)); r.err != nil {
		return
	}
	if r.err = writeU32(r.w, uint32(r.scratch.Len())); r.err != nil {
		return
	}
	if _, r.err = r.w.Write(r.scratch.Bytes()); r.err != nil {
		return
	}
	r.n++
}

// Commands returns the number of commands recorded so far.
func (r *Recorder) Commands() int64 { return r.n }

// Close flushes the trace; the first write error, if any, surfaces here.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// countingReader tracks how many bytes the buffered reader has pulled
// from the underlying stream, so the decoder can report exact byte
// offsets (underlying count minus what is still buffered).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Reader decodes a trace stream command by command, validating every
// length field against its Limits before allocating.
type Reader struct {
	cr  *countingReader
	br  *bufio.Reader
	api gfxapi.API
	ver uint8

	lim   Limits
	alloc int64 // cumulative bytes materialized, charged against AllocBudget
	cmds  int64 // commands decoded (including failed ones)
}

// NewReader validates the header and prepares to decode commands with
// DefaultLimits.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderLimits(r, DefaultLimits())
}

// NewReaderLimits is NewReader with explicit decode limits. Header
// damage is reported as a *FormatError with Cmd -1, so callers can
// classify a rejected file without caring where the corruption sits.
func NewReaderLimits(r io.Reader, lim Limits) (*Reader, error) {
	headerErr := func(err error) error {
		return &FormatError{Cmd: -1, Err: err}
	}
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, headerErr(fmt.Errorf("truncated: %w", err))
	}
	if m != magic {
		return nil, headerErr(fmt.Errorf("bad magic %q", m))
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, headerErr(fmt.Errorf("truncated: %w", err))
	}
	if ver < minVersion || ver > version {
		return nil, headerErr(fmt.Errorf("unsupported version %d (reader handles %d-%d)",
			ver, minVersion, version))
	}
	apiB, err := br.ReadByte()
	if err != nil {
		return nil, headerErr(fmt.Errorf("truncated: %w", err))
	}
	if apiB > uint8(gfxapi.Direct3D) {
		return nil, headerErr(fmt.Errorf("unknown API dialect %d", apiB))
	}
	return &Reader{cr: cr, br: br, api: gfxapi.API(apiB), ver: ver, lim: lim}, nil
}

// API returns the dialect recorded in the header.
func (r *Reader) API() gfxapi.API { return r.api }

// Version returns the negotiated format version.
func (r *Reader) Version() uint8 { return r.ver }

// Offset returns the byte offset of the next unread trace byte.
func (r *Reader) Offset() int64 { return r.cr.n - int64(r.br.Buffered()) }

// Commands returns how many commands Next has consumed so far,
// including commands that failed to decode.
func (r *Reader) Commands() int64 { return r.cmds }

// Allocated returns the cumulative bytes the decoder has materialized.
func (r *Reader) Allocated() int64 { return r.alloc }

// Next decodes the next command; io.EOF signals a clean end of trace.
// Any other failure is a *FormatError carrying the command index, byte
// offset and op. A stream that ends inside a command wraps
// io.ErrUnexpectedEOF. On a v2 stream, a *FormatError with
// Resynced() == true leaves the reader positioned at the next command,
// so a lenient caller may keep reading.
func (r *Reader) Next() (gfxapi.Command, error) {
	var c gfxapi.Command
	start := r.Offset()
	opB, err := r.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return c, io.EOF // clean end of trace
		}
		return c, r.formatErr(start, c.Op, err)
	}
	c.Op = gfxapi.Op(opB)
	idx := r.cmds
	r.cmds++

	d := decoder{r: r.br, lim: r.lim, alloc: &r.alloc, rem: -1}
	if r.ver >= 2 {
		n, err := d.readU32()
		if err != nil {
			return c, r.cmdErr(idx, start, c.Op, eofToUnexpected(err))
		}
		if int64(n) > r.lim.MaxCommandBytes {
			return c, r.cmdErr(idx, start, c.Op,
				fmt.Errorf("payload of %d bytes: %w", n, ErrLimit))
		}
		d.rem = int64(n)
	}

	c, err = readPayload(&d, c)
	if err == nil && d.rem > 0 {
		// A known op that left payload bytes unread is corrupt (the
		// encoder never writes trailing bytes).
		err = fmt.Errorf("%d trailing payload bytes", d.rem)
	}
	if err == nil {
		return c, nil
	}
	err = eofToUnexpected(err)

	// On a framed stream the payload length is known even when its
	// contents are not decodable, so skip to the next command boundary
	// and mark the error resynced.
	if d.rem > 0 && !isTruncation(err) {
		if _, derr := io.CopyN(io.Discard, r.br, d.rem); derr != nil {
			return c, r.cmdErr(idx, start, c.Op, io.ErrUnexpectedEOF)
		}
		d.rem = 0
	}
	fe := &FormatError{Cmd: idx, Offset: start, Op: c.Op, Err: err}
	fe.resynced = r.ver >= 2 && d.rem == 0 && !isTruncation(err)
	return c, fe
}

func (r *Reader) cmdErr(idx, off int64, op gfxapi.Op, err error) error {
	return &FormatError{Cmd: idx, Offset: off, Op: op, Err: err}
}

func (r *Reader) formatErr(off int64, op gfxapi.Op, err error) error {
	return &FormatError{Cmd: r.cmds, Offset: off, Op: op, Err: err}
}

// eofToUnexpected converts a bare EOF inside a command payload into
// io.ErrUnexpectedEOF: the stream ended where bytes were promised.
func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// isTruncation reports whether err means the underlying stream ran out,
// as opposed to the bytes being present but invalid.
func isTruncation(err error) bool {
	return err == io.ErrUnexpectedEOF || err == io.EOF
}

// --- binary encoding helpers (writer side) ---

func writeU8(w *bufio.Writer, v uint8) error { return w.WriteByte(v) }

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeF32(w *bufio.Writer, v float32) error {
	return writeU32(w, math.Float32bits(v))
}

func writeVec4(w *bufio.Writer, v gmath.Vec4) error {
	if err := writeF32(w, v.X); err != nil {
		return err
	}
	if err := writeF32(w, v.Y); err != nil {
		return err
	}
	if err := writeF32(w, v.Z); err != nil {
		return err
	}
	return writeF32(w, v.W)
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

// --- binary decoding: the budgeted, bounds-checked decoder ---

// decoder reads one command payload. For framed (v2) streams rem holds
// the payload bytes still owed; every read is checked against it so a
// payload cannot read into the next command. rem < 0 disables framing
// (v1 streams). alloc accumulates materialized bytes against
// lim.AllocBudget.
type decoder struct {
	r     *bufio.Reader
	lim   Limits
	alloc *int64
	rem   int64
}

// take accounts n payload bytes about to be read.
func (d *decoder) take(n int) error {
	if d.rem < 0 {
		return nil
	}
	if int64(n) > d.rem {
		return fmt.Errorf("payload overrun: need %d bytes, %d left", n, d.rem)
	}
	d.rem -= int64(n)
	return nil
}

// charge accounts n bytes of decoder-side allocation against the
// cumulative budget.
func (d *decoder) charge(n int64) error {
	*d.alloc += n
	if d.lim.AllocBudget > 0 && *d.alloc > d.lim.AllocBudget {
		return fmt.Errorf("%w: %d bytes over %d",
			ErrBudget, *d.alloc, d.lim.AllocBudget)
	}
	return nil
}

func (d *decoder) readU8() (uint8, error) {
	if err := d.take(1); err != nil {
		return 0, err
	}
	return d.r.ReadByte()
}

func (d *decoder) readU32() (uint32, error) {
	if err := d.take(4); err != nil {
		return 0, err
	}
	var b [4]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (d *decoder) readF32() (float32, error) {
	v, err := d.readU32()
	return math.Float32frombits(v), err
}

func (d *decoder) readVec4() (gmath.Vec4, error) {
	var v gmath.Vec4
	var err error
	if v.X, err = d.readF32(); err != nil {
		return v, err
	}
	if v.Y, err = d.readF32(); err != nil {
		return v, err
	}
	if v.Z, err = d.readF32(); err != nil {
		return v, err
	}
	v.W, err = d.readF32()
	return v, err
}

func (d *decoder) readString() (string, error) {
	n, err := d.readU32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(d.lim.MaxStringBytes) {
		return "", fmt.Errorf("string length %d: %w", n, ErrLimit)
	}
	if err := d.take(int(n)); err != nil {
		return "", err
	}
	if err := d.charge(int64(n)); err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// readVec4s reads n Vec4s, growing the slice in chunks so a length
// field pointing past a truncation cannot commit one giant make.
func (d *decoder) readVec4s(n int) ([]gmath.Vec4, error) {
	const chunk = 4096
	var out []gmath.Vec4
	for len(out) < n {
		c := n - len(out)
		if c > chunk {
			c = chunk
		}
		if err := d.charge(int64(c) * 16); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			v, err := d.readVec4()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// readU32s reads n uint32s in chunks, like readVec4s.
func (d *decoder) readU32s(n int) ([]uint32, error) {
	const chunk = 16384
	var out []uint32
	for len(out) < n {
		c := n - len(out)
		if c > chunk {
			c = chunk
		}
		if err := d.charge(int64(c) * 4); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			v, err := d.readU32()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// SniffHeader validates just the stream header — magic, version and API
// dialect — and reports what it found, without committing to a decode.
// The characterization service uses it to reject a malformed upload at
// submission time, before a worker slot is spent on it; header damage
// comes back as the same *FormatError (Cmd -1) a full read would give.
func SniffHeader(r io.Reader) (api gfxapi.API, ver uint8, err error) {
	rd, err := NewReader(r)
	if err != nil {
		return 0, 0, err
	}
	return rd.API(), rd.Version(), nil
}
