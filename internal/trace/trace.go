// Package trace implements API-call tracing: a compact binary format for
// gfxapi command streams, a Recorder that captures a device's calls, and
// a Player that reproduces a captured stream against a fresh device.
//
// This mirrors the paper's methodology (§II.B and ref [4]): a tracer
// intercepts calls at the graphics library boundary and stores them so
// the identical input can be replayed any number of times — on the real
// card for API statistics, or through the simulator for
// microarchitectural ones.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/shader"
)

// magic identifies a trace stream.
var magic = [4]byte{'G', 'T', 'R', 'C'}

// version is the trace format version.
const version = 1

// Recorder captures a device's API calls into a writer. Attach with
// Device.SetRecorder.
type Recorder struct {
	w   *bufio.Writer
	err error
	n   int64 // commands written
}

// NewRecorder creates a recorder writing the trace header for the given
// API dialect.
func NewRecorder(w io.Writer, api gfxapi.API) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(api)); err != nil {
		return nil, err
	}
	return &Recorder{w: bw}, nil
}

// Record implements gfxapi.Recorder.
func (r *Recorder) Record(cmd gfxapi.Command) {
	if r.err != nil {
		return
	}
	r.err = writeCommand(r.w, &cmd)
	if r.err == nil {
		r.n++
	}
}

// Commands returns the number of commands recorded so far.
func (r *Recorder) Commands() int64 { return r.n }

// Close flushes the trace; the first write error, if any, surfaces here.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Reader decodes a trace stream command by command.
type Reader struct {
	r   *bufio.Reader
	api gfxapi.API
}

// NewReader validates the header and prepares to decode commands.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	apiB, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	return &Reader{r: br, api: gfxapi.API(apiB)}, nil
}

// API returns the dialect recorded in the header.
func (r *Reader) API() gfxapi.API { return r.api }

// Next decodes the next command; io.EOF signals a clean end of trace.
// A stream that ends inside a command reports io.ErrUnexpectedEOF.
func (r *Reader) Next() (gfxapi.Command, error) {
	return readCommand(r.r)
}

// --- binary encoding helpers ---

func writeU8(w *bufio.Writer, v uint8) error { return w.WriteByte(v) }

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeF32(w *bufio.Writer, v float32) error {
	return writeU32(w, math.Float32bits(v))
}

func writeVec4(w *bufio.Writer, v gmath.Vec4) error {
	if err := writeF32(w, v.X); err != nil {
		return err
	}
	if err := writeF32(w, v.Y); err != nil {
		return err
	}
	if err := writeF32(w, v.Z); err != nil {
		return err
	}
	return writeF32(w, v.W)
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readU8(r *bufio.Reader) (uint8, error) { return r.ReadByte() }

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readF32(r *bufio.Reader) (float32, error) {
	v, err := readU32(r)
	return math.Float32frombits(v), err
}

func readVec4(r *bufio.Reader) (gmath.Vec4, error) {
	var v gmath.Vec4
	var err error
	if v.X, err = readF32(r); err != nil {
		return v, err
	}
	if v.Y, err = readF32(r); err != nil {
		return v, err
	}
	if v.Z, err = readF32(r); err != nil {
		return v, err
	}
	v.W, err = readF32(r)
	return v, err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeProgram(w *bufio.Writer, p *shader.Program) error {
	if err := writeString(w, p.Name); err != nil {
		return err
	}
	if err := writeU8(w, uint8(p.Kind)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(p.Instrs))); err != nil {
		return err
	}
	for _, in := range p.Instrs {
		fields := []uint8{
			uint8(in.Op), uint8(in.Dst.File), in.Dst.Index, in.Dst.Mask,
			in.TexUnit,
		}
		for _, f := range fields {
			if err := writeU8(w, f); err != nil {
				return err
			}
		}
		for s := 0; s < 3; s++ {
			src := in.Src[s]
			neg := uint8(0)
			if src.Negate {
				neg = 1
			}
			fields := []uint8{
				uint8(src.File), src.Index, neg,
				src.Swizzle[0], src.Swizzle[1], src.Swizzle[2], src.Swizzle[3],
			}
			for _, f := range fields {
				if err := writeU8(w, f); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readProgram(r *bufio.Reader) (*shader.Program, error) {
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	kind, err := readU8(r)
	if err != nil {
		return nil, err
	}
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable program length %d", n)
	}
	p := &shader.Program{Name: name, Kind: shader.Kind(kind)}
	p.Instrs = make([]shader.Instruction, n)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		var b [5]uint8
		for j := range b {
			if b[j], err = readU8(r); err != nil {
				return nil, err
			}
		}
		in.Op = shader.Opcode(b[0])
		in.Dst = shader.Dst{File: shader.RegFile(b[1]), Index: b[2], Mask: b[3]}
		in.TexUnit = b[4]
		for s := 0; s < 3; s++ {
			var sb [7]uint8
			for j := range sb {
				if sb[j], err = readU8(r); err != nil {
					return nil, err
				}
			}
			in.Src[s] = shader.Src{
				File: shader.RegFile(sb[0]), Index: sb[1], Negate: sb[2] != 0,
				Swizzle: shader.Swizzle{sb[3], sb[4], sb[5], sb[6]},
			}
		}
	}
	return p, nil
}
