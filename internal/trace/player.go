package trace

import (
	"errors"
	"fmt"
	"io"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
)

// Mode selects how the player treats bad commands.
type Mode uint8

// Replay modes.
const (
	// Strict fails fast on the first bad command — the right default
	// for tests and for validating a fresh capture.
	Strict Mode = iota
	// Lenient skips bad commands and keeps replaying, counting what was
	// dropped in a ReplayReport — how PIX-style players tolerate
	// partial or damaged captures while salvaging the rest.
	Lenient
)

// String names the mode.
func (m Mode) String() string {
	if m == Lenient {
		return "lenient"
	}
	return "strict"
}

// ReplayReport accounts for everything a replay skipped or degraded.
// After a Strict replay it is all zeros (the first problem aborts);
// after a Lenient one it is the damage report.
type ReplayReport struct {
	// Commands is the number of commands read from the stream,
	// including ones that failed to decode.
	Commands int64
	// Frames is the number of EndFrame boundaries replayed.
	Frames int
	// SkippedUnknownOps counts framed commands with an opcode this
	// build does not know (newer writer, or corruption).
	SkippedUnknownOps int64
	// SkippedBadCommands counts commands dropped for any other reason:
	// undecodable payloads, rejected resources, recovered panics.
	SkippedBadCommands int64
	// DanglingResources counts references to IDs that were never
	// created (or whose creation was itself skipped).
	DanglingResources int64
	// DegradedDraws counts draws that replayed with out-of-range
	// indices dropped by the vertex fetch stage.
	DegradedDraws int64
	// Errs holds the first few failures, in stream order, for triage.
	Errs []error
}

// maxReportErrs caps how many failures a report retains verbatim.
const maxReportErrs = 16

func (rep *ReplayReport) addErr(err error) {
	if len(rep.Errs) < maxReportErrs {
		rep.Errs = append(rep.Errs, err)
	}
}

// Clean reports whether the replay had nothing to skip or degrade.
func (rep *ReplayReport) Clean() bool {
	return rep.SkippedUnknownOps == 0 && rep.SkippedBadCommands == 0 &&
		rep.DanglingResources == 0 && rep.DegradedDraws == 0
}

// Summary renders the report as one line.
func (rep *ReplayReport) Summary() string {
	return fmt.Sprintf("%d commands, %d frames, %d unknown ops skipped, "+
		"%d bad commands skipped, %d dangling resources, %d degraded draws",
		rep.Commands, rep.Frames, rep.SkippedUnknownOps,
		rep.SkippedBadCommands, rep.DanglingResources, rep.DegradedDraws)
}

// Player replays a recorded trace against a device, re-materializing
// resources and reissuing every call in order — the simulator-driving
// half of the paper's methodology.
type Player struct {
	dev  *gfxapi.Device
	mode Mode

	vbs   map[uint32]*geom.VertexBuffer
	ibs   map[uint32]*geom.IndexBuffer
	texs  map[uint32]*texture.Texture
	progs map[uint32]*shader.Program
	rts   map[uint32]*gfxapi.RenderTarget

	// position of the command currently being applied, for errors.
	cmdIdx int64
	cmdOff int64

	report ReplayReport
}

// NewPlayer creates a player issuing calls into dev, in Strict mode.
func NewPlayer(dev *gfxapi.Device) *Player {
	return &Player{
		dev:   dev,
		vbs:   map[uint32]*geom.VertexBuffer{},
		ibs:   map[uint32]*geom.IndexBuffer{},
		texs:  map[uint32]*texture.Texture{},
		progs: map[uint32]*shader.Program{},
		rts:   map[uint32]*gfxapi.RenderTarget{},
	}
}

// SetMode selects Strict (default) or Lenient replay.
func (p *Player) SetMode(m Mode) { p.mode = m }

// Report returns the accumulated replay report.
func (p *Player) Report() *ReplayReport { return &p.report }

// Play replays the whole trace. It returns the number of frames played.
// In Strict mode the first bad command aborts with a *FormatError or
// *ReplayError; in Lenient mode recoverable problems are counted in the
// Report and only unrecoverable stream damage (truncation, header
// corruption, blown allocation budget on an unframed stream) aborts.
func (p *Player) Play(r *Reader) (int, error) {
	for {
		p.cmdIdx, p.cmdOff = r.Commands(), r.Offset()
		cmd, err := r.Next()
		p.report.Commands = r.Commands()
		if err == io.EOF {
			return p.report.Frames, nil
		}
		if err != nil {
			if p.mode == Lenient {
				var fe *FormatError
				if errors.As(err, &fe) && fe.Resynced() {
					if errors.Is(err, ErrUnknownOp) {
						p.report.SkippedUnknownOps++
					} else {
						p.report.SkippedBadCommands++
					}
					p.report.addErr(err)
					continue
				}
			}
			return p.report.Frames, err
		}
		if err := p.applyGuarded(&cmd); err != nil {
			if p.mode == Lenient {
				p.report.SkippedBadCommands++
				p.report.addErr(err)
				continue
			}
			return p.report.Frames, err
		}
	}
}

// Apply executes a single decoded command. Errors (including panics
// recovered at the device boundary) come back as *ReplayError.
func (p *Player) Apply(c *gfxapi.Command) error {
	return p.applyGuarded(c)
}

// applyGuarded runs apply under a recover guard: any residual panic in
// a pipeline stage (cache, shader, texture, rasterizer) is converted
// into a *ReplayError carrying the command's stream position, so one
// poisoned command cannot kill the process hosting eleven other demos.
func (p *Player) applyGuarded(c *gfxapi.Command) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = p.replayErr(c.Op, fmt.Errorf("panic: %v", rec))
		}
	}()
	return p.apply(c)
}

func (p *Player) replayErr(op gfxapi.Op, err error) error {
	return &ReplayError{Cmd: p.cmdIdx, Offset: p.cmdOff, Op: op, Err: err}
}

func (p *Player) apply(c *gfxapi.Command) error {
	switch c.Op {
	case gfxapi.OpCreateVB:
		p.vbs[c.ID] = p.dev.CreateVertexBuffer(c.VBData, c.Stride)
	case gfxapi.OpCreateIB:
		p.ibs[c.ID] = p.dev.CreateIndexBuffer(c.IBData, c.Stride)
	case gfxapi.OpCreateTex:
		t, err := p.dev.CreateTexture(c.TexSpec)
		if err != nil {
			return p.replayErr(c.Op, fmt.Errorf("texture %d: %w", c.ID, err))
		}
		p.texs[c.ID] = t
	case gfxapi.OpCreateProgram:
		prog, err := p.dev.CreateProgram(c.Program)
		if err != nil {
			return p.replayErr(c.Op, fmt.Errorf("program %d: %w", c.ID, err))
		}
		p.progs[c.ID] = prog
	case gfxapi.OpSetZState:
		p.dev.SetZState(*c.ZState)
	case gfxapi.OpSetRopState:
		p.dev.SetRopState(*c.RopState)
	case gfxapi.OpSetCull:
		p.dev.SetCull(c.Cull)
	case gfxapi.OpBindTexture:
		t := p.texs[c.ID]
		if t == nil && c.ID != 0 {
			p.report.DanglingResources++
			return p.replayErr(c.Op, fmt.Errorf("bind of unknown texture %d", c.ID))
		}
		p.dev.BindTexture(int(c.Unit), t, *c.Sampler)
	case gfxapi.OpSetConst:
		p.dev.SetConst(int(c.Unit), c.Vec)
	case gfxapi.OpDraw:
		vb, ib := p.vbs[c.ID], p.ibs[c.ID2]
		vs, fs := p.progs[c.ProgID], p.progs[c.ProgID2]
		if vb == nil || ib == nil || vs == nil || fs == nil {
			p.report.DanglingResources++
			return p.replayErr(c.Op, fmt.Errorf("draw references missing resources "+
				"(vb=%d ib=%d vs=%d fs=%d)", c.ID, c.ID2, c.ProgID, c.ProgID2))
		}
		if n := oversizedIndices(vb, ib); n > 0 {
			// The vertex fetch stage drops out-of-range indices, so the
			// draw replays with fewer vertices than recorded.
			if p.mode == Strict {
				return p.replayErr(c.Op, fmt.Errorf(
					"draw has %d indices out of range (vb has %d vertices)",
					n, vb.NumVertices()))
			}
			p.report.DegradedDraws++
		}
		p.dev.DrawIndexed(vb, ib, c.Prim, vs, fs)
	case gfxapi.OpClear:
		p.dev.Clear(*c.ClearOp)
	case gfxapi.OpEndFrame:
		p.dev.EndFrame()
		p.report.Frames++
	case gfxapi.OpCreateRT:
		rt, err := p.dev.CreateRenderTarget(c.RTName, c.RTW, c.RTH)
		if err != nil {
			return p.replayErr(c.Op, fmt.Errorf("render target %d: %w", c.ID, err))
		}
		p.rts[c.ID] = rt
		// The resolve texture is addressable by later BindTexture calls.
		p.texs[c.ID2] = rt.Tex
	case gfxapi.OpSetRT:
		if c.ID == 0 {
			p.dev.SetRenderTarget(nil)
			break
		}
		rt := p.rts[c.ID]
		if rt == nil {
			p.report.DanglingResources++
			return p.replayErr(c.Op, fmt.Errorf("bind of unknown render target %d", c.ID))
		}
		p.dev.SetRenderTarget(rt)
	case gfxapi.OpResolveTex:
		rt := p.rts[c.ID]
		if rt == nil {
			p.report.DanglingResources++
			return p.replayErr(c.Op, fmt.Errorf("resolve of unknown render target %d", c.ID))
		}
		if err := p.dev.ResolveToTexture(rt); err != nil {
			return p.replayErr(c.Op, err)
		}
	default:
		return p.replayErr(c.Op, fmt.Errorf("cannot replay op %d", uint8(c.Op)))
	}
	return nil
}

// oversizedIndices counts indices referencing vertices the buffer does
// not have.
func oversizedIndices(vb *geom.VertexBuffer, ib *geom.IndexBuffer) int {
	nv := uint32(vb.NumVertices())
	n := 0
	for _, idx := range ib.Indices {
		if idx >= nv {
			n++
		}
	}
	return n
}
