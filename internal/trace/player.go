package trace

import (
	"fmt"
	"io"

	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/shader"
	"gpuchar/internal/texture"
)

// Player replays a recorded trace against a device, re-materializing
// resources and reissuing every call in order — the simulator-driving
// half of the paper's methodology.
type Player struct {
	dev *gfxapi.Device

	vbs   map[uint32]*geom.VertexBuffer
	ibs   map[uint32]*geom.IndexBuffer
	texs  map[uint32]*texture.Texture
	progs map[uint32]*shader.Program
}

// NewPlayer creates a player issuing calls into dev.
func NewPlayer(dev *gfxapi.Device) *Player {
	return &Player{
		dev:   dev,
		vbs:   map[uint32]*geom.VertexBuffer{},
		ibs:   map[uint32]*geom.IndexBuffer{},
		texs:  map[uint32]*texture.Texture{},
		progs: map[uint32]*shader.Program{},
	}
}

// Play replays the whole trace. It returns the number of frames played.
func (p *Player) Play(r *Reader) (int, error) {
	frames := 0
	for {
		cmd, err := r.Next()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		if cmd.Op == gfxapi.OpEndFrame {
			frames++
		}
		if err := p.Apply(&cmd); err != nil {
			return frames, err
		}
	}
}

// Apply executes a single decoded command.
func (p *Player) Apply(c *gfxapi.Command) error {
	switch c.Op {
	case gfxapi.OpCreateVB:
		p.vbs[c.ID] = p.dev.CreateVertexBuffer(c.VBData, c.Stride)
	case gfxapi.OpCreateIB:
		p.ibs[c.ID] = p.dev.CreateIndexBuffer(c.IBData, c.Stride)
	case gfxapi.OpCreateTex:
		t, err := p.dev.CreateTexture(c.TexSpec)
		if err != nil {
			return fmt.Errorf("trace: replay texture %d: %w", c.ID, err)
		}
		p.texs[c.ID] = t
	case gfxapi.OpCreateProgram:
		prog, err := p.dev.CreateProgram(c.Program)
		if err != nil {
			return fmt.Errorf("trace: replay program %d: %w", c.ID, err)
		}
		p.progs[c.ID] = prog
	case gfxapi.OpSetZState:
		p.dev.SetZState(*c.ZState)
	case gfxapi.OpSetRopState:
		p.dev.SetRopState(*c.RopState)
	case gfxapi.OpSetCull:
		p.dev.SetCull(c.Cull)
	case gfxapi.OpBindTexture:
		t := p.texs[c.ID]
		if t == nil && c.ID != 0 {
			return fmt.Errorf("trace: bind of unknown texture %d", c.ID)
		}
		p.dev.BindTexture(int(c.Unit), t, *c.Sampler)
	case gfxapi.OpSetConst:
		p.dev.SetConst(int(c.Unit), c.Vec)
	case gfxapi.OpDraw:
		vb, ib := p.vbs[c.ID], p.ibs[c.ID2]
		vs, fs := p.progs[c.ProgID], p.progs[c.ProgID2]
		if vb == nil || ib == nil || vs == nil || fs == nil {
			return fmt.Errorf("trace: draw references missing resources "+
				"(vb=%d ib=%d vs=%d fs=%d)", c.ID, c.ID2, c.ProgID, c.ProgID2)
		}
		p.dev.DrawIndexed(vb, ib, c.Prim, vs, fs)
	case gfxapi.OpClear:
		p.dev.Clear(*c.ClearOp)
	case gfxapi.OpEndFrame:
		p.dev.EndFrame()
	default:
		return fmt.Errorf("trace: cannot replay op %v", c.Op)
	}
	return nil
}
