package trace

import (
	"errors"
	"fmt"

	"gpuchar/internal/gfxapi"
)

// Sentinel errors the validating decoder and player wrap. Match with
// errors.Is through the typed *FormatError / *ReplayError wrappers.
var (
	// ErrBudget reports that decoding the trace would exceed the
	// reader's cumulative allocation budget (Limits.AllocBudget).
	ErrBudget = errors.New("allocation budget exceeded")
	// ErrUnknownOp reports a command with an opcode this decoder does
	// not know. In the framed v2 format the payload length is known, so
	// a lenient player can skip the command and continue.
	ErrUnknownOp = errors.New("unknown op")
	// ErrLimit reports a field that exceeds a per-field sanity limit.
	ErrLimit = errors.New("limit exceeded")
)

// FormatError reports a malformed or hostile trace stream. It carries
// the position of the failure so a corrupt capture can be triaged the
// way the paper's tooling would triage a corrupt timedemo: which
// command, at which byte offset, decoding which op.
type FormatError struct {
	// Cmd is the zero-based index of the failing command in the stream.
	Cmd int64
	// Offset is the byte offset at which the command started.
	Offset int64
	// Op is the opcode being decoded (may be unnamed for hostile bytes).
	Op gfxapi.Op
	// Err is the underlying cause.
	Err error

	// resynced records that the reader skipped the rest of the framed
	// payload and is positioned at the next command boundary.
	resynced bool
}

// Resynced reports whether the reader recovered its position after this
// error: the stream was framed (v2), the payload length was intact, and
// the remaining payload bytes were skipped. A lenient player may keep
// reading after a resynced error; a non-resynced one is terminal.
func (e *FormatError) Resynced() bool { return e.resynced }

// Error formats the failure with its stream position. A negative Cmd
// marks damage in the stream header, before any command exists.
func (e *FormatError) Error() string {
	if e.Cmd < 0 {
		return fmt.Sprintf("trace: header: %v", e.Err)
	}
	return fmt.Sprintf("trace: command %d (op %s) at offset %d: %v",
		e.Cmd, e.Op, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *FormatError) Unwrap() error { return e.Err }

// ReplayError reports a decoded command that could not be applied to
// the device: a dangling resource reference, a rejected resource, or a
// recovered panic from a pipeline stage.
type ReplayError struct {
	// Cmd is the zero-based index of the failing command.
	Cmd int64
	// Offset is the byte offset at which the command started.
	Offset int64
	// Op is the command's opcode.
	Op gfxapi.Op
	// Err is the underlying cause.
	Err error
}

// Error formats the failure with its stream position.
func (e *ReplayError) Error() string {
	return fmt.Sprintf("trace: replay command %d (op %s) at offset %d: %v",
		e.Cmd, e.Op, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *ReplayError) Unwrap() error { return e.Err }
