package hwconfig

import "fmt"

// derive copies the default variant and applies a tweak under a new
// name — every registry entry is the r520 point plus one described
// delta, so the families stay honest ablations.
func derive(name, desc string, tweak func(*Variant)) Variant {
	v := Default()
	v.Name, v.Description = name, desc
	tweak(&v)
	return v
}

// All returns the named variant registry in listing order: the r520
// default, the cache-scaled families, the caches-off point, the
// bandwidth-saving ablations, the resolution family and the
// tile-parallel family. Every entry passes Validate (pinned by test).
func All() []Variant {
	return []Variant{
		Default(),

		// Texture L0 scaling — "Table XIV as a function of L0 size".
		derive("texl0-quarter", "texture L0 scaled to 1KB (16 ways)", func(v *Variant) { v.TexL0.Ways = 16 }),
		derive("texl0-half", "texture L0 scaled to 2KB (32 ways)", func(v *Variant) { v.TexL0.Ways = 32 }),
		derive("texl0-2x", "texture L0 scaled to 8KB (128 ways)", func(v *Variant) { v.TexL0.Ways = 128 }),
		derive("texl0-4x", "texture L0 scaled to 16KB (256 ways)", func(v *Variant) { v.TexL0.Ways = 256 }),

		// Texture L1 scaling (set count keeps the 16-way associativity).
		derive("texl1-half", "texture L1 scaled to 8KB (8 sets)", func(v *Variant) { v.TexL1.Sets = 8 }),
		derive("texl1-2x", "texture L1 scaled to 32KB (32 sets)", func(v *Variant) { v.TexL1.Sets = 32 }),

		// Z & stencil and color cache scaling.
		derive("zcache-half", "z & stencil cache scaled to 8KB (32 ways)", func(v *Variant) { v.ZCache.Ways = 32 }),
		derive("zcache-2x", "z & stencil cache scaled to 32KB (128 ways)", func(v *Variant) { v.ZCache.Ways = 128 }),
		derive("colorcache-half", "color cache scaled to 8KB (32 ways)", func(v *Variant) { v.ColorCache.Ways = 32 }),
		derive("colorcache-2x", "color cache scaled to 32KB (128 ways)", func(v *Variant) { v.ColorCache.Ways = 128 }),

		// Minimum-geometry caches: every access thrashes, so hit rates
		// collapse and raw traffic surfaces. Stats move, the framebuffer
		// must not (pinned by the caches-off ablation test).
		derive("caches-off", "minimum-geometry caches everywhere (traffic upper bound)", func(v *Variant) {
			v.ZCache.Ways, v.ZCache.Sets = 1, 1
			v.TexL0.Ways, v.TexL0.Sets = 1, 1
			v.TexL1.Ways, v.TexL1.Sets = 1, 1
			v.ColorCache.Ways, v.ColorCache.Sets = 1, 1
			v.VertexCacheSize = 1
		}),

		// Bandwidth-saving ablations (paper §III.E).
		derive("no-hz", "Hierarchical Z disabled", func(v *Variant) { v.HZ = false }),
		derive("no-zcompression", "z & stencil 2:1 compression disabled", func(v *Variant) { v.ZCompression = false }),
		derive("no-colorcompression", "same-color block compression disabled", func(v *Variant) { v.ColorCompression = false }),
		derive("no-compression", "both compression schemes disabled", func(v *Variant) {
			v.ZCompression, v.ColorCompression = false, false
		}),
		derive("no-fastclear", "fast clear disabled (clears pay full fills)", func(v *Variant) { v.FastClear = false }),
		derive("no-bw-savings", "compression and fast clear disabled (raw traffic)", func(v *Variant) {
			v.ZCompression, v.ColorCompression, v.FastClear = false, false, false
		}),

		// Resolution family: pins the framebuffer size regardless of the
		// caller's -w/-h.
		derive("res-640x480", "640x480 framebuffer", func(v *Variant) { v.Width, v.Height = 640, 480 }),
		derive("res-800x600", "800x600 framebuffer", func(v *Variant) { v.Width, v.Height = 800, 600 }),
		derive("res-1280x1024", "1280x1024 framebuffer", func(v *Variant) { v.Width, v.Height = 1280, 1024 }),

		// Tile-parallel family: pins the fragment-backend fan-out (the
		// framebuffer stays exact; cache counters shard).
		derive("tile-2", "2 tile-parallel fragment workers", func(v *Variant) { v.TileWorkers = 2 }),
		derive("tile-4", "4 tile-parallel fragment workers", func(v *Variant) { v.TileWorkers = 4 }),
		derive("tile-8", "8 tile-parallel fragment workers", func(v *Variant) { v.TileWorkers = 8 }),
		derive("tile-4-bucket-1", "4 workers with single-block buckets (false-sharing study)", func(v *Variant) {
			v.TileWorkers, v.TileBucketBlocks = 4, 1
		}),
	}
}

// ByName returns the named registry variant.
func ByName(name string) (Variant, bool) {
	for _, v := range All() {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

// MustByName is ByName for registry-sourced names (tests, cmd wiring).
func MustByName(name string) Variant {
	v, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("hwconfig: unknown variant %q", name))
	}
	return v
}

// Names returns every registry variant name in listing order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, v := range all {
		names[i] = v.Name
	}
	return names
}
