package hwconfig

import (
	"encoding/json"
	"reflect"
	"testing"

	"gpuchar/internal/gpu"
)

// TestRegistryValid pins that every registry entry validates, names are
// unique, and each non-default entry is behaviorally distinct from the
// default (a registry variant that hashes like r520 is a no-op entry).
func TestRegistryValid(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range All() {
		if v.Name == "" {
			t.Fatal("registry variant with empty name")
		}
		if seen[v.Name] {
			t.Fatalf("duplicate registry name %q", v.Name)
		}
		seen[v.Name] = true
		if err := v.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
		if v.Name != "r520" && v.IsDefault() {
			t.Errorf("%s: digest equals the default's — no behavioral delta", v.Name)
		}
	}
	if !seen["r520"] {
		t.Fatal("registry is missing the r520 default")
	}
}

// TestDefaultMatchesR520Config pins that materializing the default
// variant reproduces gpu.R520Config exactly — the registry cannot drift
// from the simulator's own Table II constructor.
func TestDefaultMatchesR520Config(t *testing.T) {
	got := Default().GPUConfig(1024, 768)
	want := gpu.R520Config(1024, 768)
	if got != want {
		t.Errorf("Default().GPUConfig(1024,768) = %+v, want %+v", got, want)
	}
	if !Default().IsDefault() {
		t.Error("Default().IsDefault() = false")
	}
}

// TestJSONRoundTrip pins that every registry variant survives a
// marshal/unmarshal cycle unchanged.
func TestJSONRoundTrip(t *testing.T) {
	for _, v := range All() {
		doc, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", v.Name, err)
		}
		var back Variant
		if err := json.Unmarshal(doc, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", v.Name, err)
		}
		if back != v {
			t.Errorf("%s: round trip changed the variant:\n got %+v\nwant %+v", v.Name, back, v)
		}
	}
}

// TestJSONOverlay pins the inline-override semantics: absent fields
// keep the r520 value, present fields replace it, and the name never
// inherits.
func TestJSONOverlay(t *testing.T) {
	var v Variant
	if err := json.Unmarshal([]byte(`{"hz": false, "tex_l0": {"ways": 16, "sets": 1, "line_bytes": 64}}`), &v); err != nil {
		t.Fatal(err)
	}
	if v.Name != "" {
		t.Errorf("overlay inherited name %q", v.Name)
	}
	if v.HZ {
		t.Error("overlay kept hz = true")
	}
	if v.TexL0.Ways != 16 {
		t.Errorf("tex_l0.ways = %d, want 16", v.TexL0.Ways)
	}
	// Everything else is the default.
	want := Default()
	want.Name, want.Description = "", ""
	want.HZ = false
	want.TexL0.Ways = 16
	if v != want {
		t.Errorf("overlay = %+v, want %+v", v, want)
	}
}

// TestDigestSemantics pins the content-address contract: the digest
// ignores naming, tracks behavior, and an inline overlay equivalent to
// a named variant shares its digest (the cross-submitter cache-hit
// property).
func TestDigestSemantics(t *testing.T) {
	a := Default()
	b := Default()
	b.Name, b.Description = "renamed", "same machine"
	if a.Digest() != b.Digest() {
		t.Error("renaming changed the digest")
	}
	c := Default()
	c.HZ = false
	if c.Digest() == a.Digest() {
		t.Error("disabling HZ kept the digest")
	}

	var inline Variant
	if err := json.Unmarshal([]byte(`{"hz": false}`), &inline); err != nil {
		t.Fatal(err)
	}
	named := MustByName("no-hz")
	if inline.Digest() != named.Digest() {
		t.Error("inline {\"hz\":false} and named no-hz differ in digest")
	}
}

// TestValidateRejects pins a few representative invalid variants.
func TestValidateRejects(t *testing.T) {
	bad := []func(*Variant){
		func(v *Variant) { v.ZCache.LineBytes = 100 }, // not a power of two
		func(v *Variant) { v.TexL0.Ways = 0 },
		func(v *Variant) { v.VertexCacheSize = 0 },
		func(v *Variant) { v.Width = 640 }, // height missing
		func(v *Variant) { v.TileBucketBlocks = 0 },
		func(v *Variant) { v.MemBytesPerCycle = 0 },
	}
	for i, tweak := range bad {
		v := Default()
		tweak(&v)
		if err := v.Validate(); err == nil {
			t.Errorf("bad variant %d validated", i)
		}
	}
}

// informationalFields are the gpu.Config fields that never change what
// the simulator computes (report labels and bandwidth projections
// only); runtimeFields are observability wiring, not hardware
// parameters. Everything else must be exercised by some registry
// variant.
var (
	informationalFields = map[string]bool{
		"UnifiedShaders":    true,
		"TrianglesPerCycle": true,
		"BilinearsPerCycle": true,
		"ZStencilRate":      true,
		"ColorRate":         true,
		"MemBytesPerCycle":  true,
	}
	runtimeFields = map[string]bool{
		"Trace":        true,
		"TraceProcess": true,
	}
)

// TestRegistryCoversGPUConfig is the exhaustiveness check: every
// gpu.Config field is either varied by at least one registry variant or
// explicitly classified informational/runtime above. Adding a
// behavioral knob to gpu.Config without a sweepable variant (or an
// explicit classification) fails here.
func TestRegistryCoversGPUConfig(t *testing.T) {
	base := reflect.ValueOf(Default().GPUConfig(1024, 768))
	varied := map[string]bool{}
	for _, v := range All() {
		cfg := reflect.ValueOf(v.GPUConfig(1024, 768))
		for i := 0; i < cfg.NumField(); i++ {
			if !cfg.Field(i).Equal(base.Field(i)) {
				varied[cfg.Type().Field(i).Name] = true
			}
		}
	}
	typ := reflect.TypeOf(gpu.Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		switch {
		case varied[name]:
			if informationalFields[name] || runtimeFields[name] {
				t.Errorf("field %s is classified informational/runtime but some variant varies it", name)
			}
		case informationalFields[name], runtimeFields[name]:
			// Explicitly out of sweep scope.
		default:
			t.Errorf("gpu.Config field %s is neither varied by a registry variant nor classified informational/runtime", name)
		}
	}
}
