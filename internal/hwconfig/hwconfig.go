// Package hwconfig turns the simulator's hardware model into a
// first-class, sweepable artifact: a Variant is a complete, validated,
// named set of the gpu.Config parameters (Table II rates, Table XIV
// cache geometries, resolution, tile-parallel fan-out, bandwidth-saving
// toggles), a registry holds the named points a sweep can reference
// ("r520" plus cache-scaled, caches-off, ablation, resolution and
// tile-worker families), and a canonical digest hashes the behavioral
// parameters so equivalent configs — named or inline — share one
// content address. The serve layer folds the digest into its result
// cache key, which is what makes a sweep cell computed anywhere a hit
// everywhere.
package hwconfig

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"gpuchar/internal/cache"
	"gpuchar/internal/geom"
	"gpuchar/internal/gpu"
	"gpuchar/internal/mem"
	"gpuchar/internal/rop"
	"gpuchar/internal/texture"
	"gpuchar/internal/zst"
)

// CacheGeom is a cache geometry in the JSON-facing shape. It mirrors
// cache.Config with stable snake_case field names.
type CacheGeom struct {
	Ways      int `json:"ways"`
	Sets      int `json:"sets"`
	LineBytes int `json:"line_bytes"`
}

// Config converts to the cache package's geometry type.
func (g CacheGeom) Config() cache.Config {
	return cache.Config{Ways: g.Ways, Sets: g.Sets, LineBytes: g.LineBytes}
}

// geomOf converts a cache.Config into the JSON-facing shape.
func geomOf(c cache.Config) CacheGeom {
	return CacheGeom{Ways: c.Ways, Sets: c.Sets, LineBytes: c.LineBytes}
}

// Variant is one named hardware point. Every field is a complete value
// (no zero-means-default ambiguity) except Width/Height and
// TileWorkers, where 0 means "inherit from the caller" — a variant
// normally sweeps the machine, not the workload framing.
//
// JSON documents deserialize as overrides over Default(): absent fields
// keep the r520 value, so an inline config of {"tex_l0":{"ways":16,
// "sets":1,"line_bytes":64}} is the paper's machine with a quarter-size
// texture L0.
type Variant struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`

	// Width/Height pin the rendering resolution; 0 inherits the
	// caller's (the resolution-family variants set these).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`

	// Informational Table II rates (reports and bandwidth projections
	// only — see gpu.Config's behavioral/informational split).
	UnifiedShaders    int `json:"unified_shaders"`
	TrianglesPerCycle int `json:"triangles_per_cycle"`
	BilinearsPerCycle int `json:"bilinears_per_cycle"`
	ZStencilRate      int `json:"zstencil_rate"`
	ColorRate         int `json:"color_rate"`
	MemBytesPerCycle  int `json:"mem_bytes_per_cycle"`

	// VertexCacheSize is the post-transform FIFO depth.
	VertexCacheSize int `json:"vertex_cache_size"`

	// The four Table XIV cache geometries.
	ZCache     CacheGeom `json:"zcache"`
	TexL0      CacheGeom `json:"tex_l0"`
	TexL1      CacheGeom `json:"tex_l1"`
	ColorCache CacheGeom `json:"color_cache"`

	// TileWorkers pins the tile-parallel fan-out; 0 inherits the
	// caller's. TileBucketBlocks is the parallel assignment granularity
	// in 8x8 blocks.
	TileWorkers      int `json:"tile_workers,omitempty"`
	TileBucketBlocks int `json:"tile_bucket_blocks"`

	// Bandwidth-saving feature toggles.
	HZ               bool `json:"hz"`
	ZCompression     bool `json:"z_compression"`
	ColorCompression bool `json:"color_compression"`
	FastClear        bool `json:"fast_clear"`
}

// Default returns the paper's hardware point: Table II rates and Table
// XIV cache geometries, resolution and tile fan-out inherited from the
// caller. Its parameter values are sourced from the stage packages'
// constants, so the registry can never drift from the simulator.
func Default() Variant {
	return Variant{
		Name:              "r520",
		Description:       "ATTILA/R520 reference point (Table II rates, Table XIV caches)",
		UnifiedShaders:    16,
		TrianglesPerCycle: 2,
		BilinearsPerCycle: 16,
		ZStencilRate:      16,
		ColorRate:         16,
		MemBytesPerCycle:  mem.DefaultBytesPerCycle,
		VertexCacheSize:   geom.DefaultVertexCacheSize,
		ZCache:            geomOf(zst.ZCacheConfig),
		TexL0:             geomOf(texture.L0Config),
		TexL1:             geomOf(texture.L1Config),
		ColorCache:        geomOf(rop.ColorCacheConfig),
		TileBucketBlocks:  8,
		HZ:                true,
		ZCompression:      true,
		ColorCompression:  true,
		FastClear:         true,
	}
}

// variantAlias strips Variant's methods so the JSON hooks below can use
// the default struct (de)serialization.
type variantAlias Variant

// UnmarshalJSON decodes a variant document as overrides over Default():
// fields present in the JSON replace the r520 value, absent fields keep
// it. Name and Description never inherit — an inline override without a
// name is anonymous, not a counterfeit "r520".
func (v *Variant) UnmarshalJSON(b []byte) error {
	a := variantAlias(Default())
	a.Name, a.Description = "", ""
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*v = Variant(a)
	return nil
}

// Validate rejects a variant the simulator could not run: invalid cache
// geometries (per cache.New), non-positive sizes or rates, or a
// half-specified resolution.
func (v Variant) Validate() error {
	if (v.Width > 0) != (v.Height > 0) {
		return fmt.Errorf("hwconfig: resolution %dx%d must set both dimensions or neither", v.Width, v.Height)
	}
	if v.Width < 0 || v.Height < 0 {
		return fmt.Errorf("hwconfig: resolution %dx%d must not be negative", v.Width, v.Height)
	}
	for _, c := range []struct {
		name string
		g    CacheGeom
	}{
		{"zcache", v.ZCache}, {"tex_l0", v.TexL0},
		{"tex_l1", v.TexL1}, {"color_cache", v.ColorCache},
	} {
		if _, err := cache.New(c.g.Config()); err != nil {
			return fmt.Errorf("hwconfig: %s: %w", c.name, err)
		}
	}
	if v.VertexCacheSize < 1 {
		return fmt.Errorf("hwconfig: vertex_cache_size %d must be >= 1", v.VertexCacheSize)
	}
	if v.TileWorkers < 0 {
		return fmt.Errorf("hwconfig: tile_workers %d must be >= 0", v.TileWorkers)
	}
	if v.TileBucketBlocks < 1 {
		return fmt.Errorf("hwconfig: tile_bucket_blocks %d must be >= 1", v.TileBucketBlocks)
	}
	for _, r := range []struct {
		name string
		val  int
	}{
		{"unified_shaders", v.UnifiedShaders},
		{"triangles_per_cycle", v.TrianglesPerCycle},
		{"bilinears_per_cycle", v.BilinearsPerCycle},
		{"zstencil_rate", v.ZStencilRate},
		{"color_rate", v.ColorRate},
		{"mem_bytes_per_cycle", v.MemBytesPerCycle},
	} {
		if r.val < 1 {
			return fmt.Errorf("hwconfig: %s %d must be >= 1", r.name, r.val)
		}
	}
	return nil
}

// Digest returns the canonical content address of the variant's
// parameters: the SHA-256 of its canonical JSON with Name and
// Description blanked. Two variants with the same digest run the same
// simulation, whatever they are called — the property the serve layer's
// cache key relies on.
func (v Variant) Digest() string {
	v.Name, v.Description = "", ""
	doc, err := json.Marshal(variantAlias(v))
	if err != nil {
		// A Variant is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("hwconfig: marshal variant: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// defaultDigest is computed once; IsDefault is called per report row.
var defaultDigest = Default().Digest()

// IsDefault reports whether the variant is behaviorally the paper's
// point (its digest matches Default's, whatever the name).
func (v Variant) IsDefault() bool { return v.Digest() == defaultDigest }

// GPUConfig materializes the variant as a simulator configuration at
// the caller's resolution (overridden when the variant pins one).
func (v Variant) GPUConfig(w, h int) gpu.Config {
	if v.Width > 0 {
		w, h = v.Width, v.Height
	}
	return gpu.Config{
		Width: w, Height: h,
		UnifiedShaders:    v.UnifiedShaders,
		TrianglesPerCycle: v.TrianglesPerCycle,
		BilinearsPerCycle: v.BilinearsPerCycle,
		ZStencilRate:      v.ZStencilRate,
		ColorRate:         v.ColorRate,
		MemBytesPerCycle:  v.MemBytesPerCycle,
		VertexCacheSize:   v.VertexCacheSize,
		ZCache:            v.ZCache.Config(),
		TexL0:             v.TexL0.Config(),
		TexL1:             v.TexL1.Config(),
		ColorCache:        v.ColorCache.Config(),
		TileWorkers:       v.TileWorkers,
		TileBucketBlocks:  v.TileBucketBlocks,
		HZ:                v.HZ,
		ZCompression:      v.ZCompression,
		ColorCompression:  v.ColorCompression,
		FastClear:         v.FastClear,
	}
}
