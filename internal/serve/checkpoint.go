package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gpuchar/internal/core"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/metrics"
	"gpuchar/internal/workloads"
)

// Spool file layout, one trio per job under Config.SpoolDir:
//
//	<id>.job.json     the submitted spec (pending-job discovery)
//	<id>.ckpt.json    the latest checkpoint (removed on completion)
//	<id>.result.json  the finished metrics document
//
// All writes go through atomicWrite (tmp + rename), so a kill at any
// instant leaves either the previous file or the new one, never a
// torn read.

// Schema tags pin the wire formats so a future layout change fails
// loudly instead of resuming from a misread file.
const (
	CheckpointSchema = "gpuchar/checkpoint/v1"
	JobFileSchema    = "gpuchar/job/v1"
)

// jobFile is the persisted submission record.
type jobFile struct {
	Schema string  `json:"schema"`
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
}

// checkpointFile is a job's durable mid-run state: every finished demo
// render, plus the in-progress API render at its last frame boundary.
// Frame records are stored as gpuchar/metrics/v1 documents — the same
// serialization the result export uses, with its validation on read.
type checkpointFile struct {
	Schema string `json:"schema"`
	JobID  string `json:"job_id"`
	// Key guards against resuming a checkpoint into a different spec or
	// code version: a mismatch discards the checkpoint.
	Key string `json:"key"`
	// API / Sim hold completed demo renders: demo name -> per-frame
	// snapshot document.
	API map[string]json.RawMessage `json:"api,omitempty"`
	Sim map[string]json.RawMessage `json:"sim,omitempty"`
	// Cur is the API render in flight, if any. Simulated renders carry
	// warm cache state across frames and are only checkpointed whole.
	Cur *curCheckpoint `json:"cur,omitempty"`
}

type curCheckpoint struct {
	Demo   string             `json:"demo"`
	Gen    workloads.GenState `json:"gen"`
	Frames json.RawMessage    `json:"frames"`
}

func newCheckpoint(jobID, key string) *checkpointFile {
	return &checkpointFile{
		Schema: CheckpointSchema, JobID: jobID, Key: key,
		API: map[string]json.RawMessage{}, Sim: map[string]json.RawMessage{},
	}
}

// encodeAPIFrames serializes per-frame API records as a metrics
// document.
func encodeAPIFrames(frames []gfxapi.FrameStats) (json.RawMessage, error) {
	snaps := make([]metrics.Snapshot, len(frames))
	for i := range frames {
		snaps[i] = core.APIFrameSnapshot(frames[i])
	}
	var buf bytes.Buffer
	if err := metrics.WriteJSON(&buf, snaps); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeAPIFrames(raw json.RawMessage) ([]gfxapi.FrameStats, error) {
	snaps, err := metrics.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	frames := make([]gfxapi.FrameStats, len(snaps))
	for i, s := range snaps {
		frames[i] = core.APIFrameFromSnapshot(s)
	}
	return frames, nil
}

// encodeSimFrames serializes per-frame simulator records the same way.
func encodeSimFrames(frames []gpu.FrameStats) (json.RawMessage, error) {
	snaps := make([]metrics.Snapshot, len(frames))
	for i := range frames {
		snaps[i] = frames[i].MetricsSnapshot()
	}
	var buf bytes.Buffer
	if err := metrics.WriteJSON(&buf, snaps); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSimFrames(raw json.RawMessage) ([]gpu.FrameStats, error) {
	snaps, err := metrics.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	frames := make([]gpu.FrameStats, len(snaps))
	for i, s := range snaps {
		frames[i] = gpu.FrameStatsFromSnapshot(s)
	}
	return frames, nil
}

// atomicWrite lands data at path via a temp file and rename, so
// concurrent readers and kills see whole files only.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// spool path helpers. An empty dir (no spool configured) yields "".
func jobPath(dir, id string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, id+".job.json")
}
func ckptPath(dir, id string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, id+".ckpt.json")
}
func resultPath(dir, id string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, id+".result.json")
}

// writeCheckpoint persists ck for job id; a no-op without a spool.
func writeCheckpoint(dir string, ck *checkpointFile) error {
	path := ckptPath(dir, ck.JobID)
	if path == "" {
		return nil
	}
	doc, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return atomicWrite(path, doc)
}

// loadCheckpoint reads a job's checkpoint. Missing file, wrong schema
// or a key mismatch all come back as (nil, nil): the job then simply
// starts over. Only I/O-level surprises are errors.
func loadCheckpoint(dir, id, key string) (*checkpointFile, error) {
	path := ckptPath(dir, id)
	if path == "" {
		return nil, nil
	}
	doc, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(doc, &ck); err != nil || ck.Schema != CheckpointSchema || ck.Key != key {
		// A torn or foreign checkpoint is worth a restart, not a dead job.
		return nil, nil
	}
	if ck.API == nil {
		ck.API = map[string]json.RawMessage{}
	}
	if ck.Sim == nil {
		ck.Sim = map[string]json.RawMessage{}
	}
	return &ck, nil
}

// writeJobFile persists a submission record.
func writeJobFile(dir string, j *Job) error {
	path := jobPath(dir, j.ID)
	if path == "" {
		return nil
	}
	doc, err := json.Marshal(jobFile{Schema: JobFileSchema, ID: j.ID, Spec: j.Spec})
	if err != nil {
		return err
	}
	return atomicWrite(path, doc)
}

// removeJobFiles deletes every spool file of a job (cancel / delete).
func removeJobFiles(dir, id string) {
	if dir == "" {
		return
	}
	os.Remove(jobPath(dir, id))
	os.Remove(ckptPath(dir, id))
	os.Remove(resultPath(dir, id))
}

// scanSpool rediscovers jobs from a spool directory: finished jobs come
// back done with their results, unfinished ones pending (their
// checkpoints picked up when a worker claims them). Malformed files are
// reported but do not block the scan.
func scanSpool(dir string) (jobs []*Job, malformed []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: spool %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".job.json") {
			continue
		}
		doc, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			malformed = append(malformed, name)
			continue
		}
		var jf jobFile
		if err := json.Unmarshal(doc, &jf); err != nil || jf.Schema != JobFileSchema ||
			jf.ID == "" || jf.ID != strings.TrimSuffix(name, ".job.json") {
			malformed = append(malformed, name)
			continue
		}
		spec := jf.Spec.normalized()
		if err := spec.validate(); err != nil {
			malformed = append(malformed, name)
			continue
		}
		j := &Job{
			ID:          jf.ID,
			Spec:        spec,
			key:         spec.key(),
			state:       StateQueued,
			framesTotal: spec.framesTotal(),
			done:        make(chan struct{}),
		}
		if res, err := os.ReadFile(resultPath(dir, jf.ID)); err == nil {
			j.state = StateDone
			j.result = res
			j.framesDone = j.framesTotal
			close(j.done)
		}
		jobs = append(jobs, j)
	}
	return jobs, malformed, nil
}
