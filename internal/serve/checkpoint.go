package serve

import (
	"bytes"
	"encoding/json"

	"gpuchar/internal/core"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/metrics"
	"gpuchar/internal/workloads"
)

// Schema tags pin the spool wire formats so a future layout change
// fails loudly instead of resuming from a misread file. The v1.1
// envelopes (see spool.go) add a SHA-256 over the body — torn, stale or
// bit-rotted files are detected and quarantined on load. Bare v1
// bodies, written before the checksum existed, are still readable.
const (
	CheckpointSchema     = "gpuchar/checkpoint/v1.1"
	checkpointBodySchema = "gpuchar/checkpoint/v1"
	JobFileSchema        = "gpuchar/job/v1.1"
	jobBodySchema        = "gpuchar/job/v1"
	ResultFileSchema     = "gpuchar/result/v1.1"
	resultBodySchema     = metrics.SchemaID // legacy bare result documents
)

// jobFile is the persisted submission record (the envelope body).
type jobFile struct {
	Schema string  `json:"schema"`
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
}

// checkpointFile is a job's durable mid-run state: every finished demo
// render, plus the in-progress API render at its last frame boundary.
// Frame records are stored as gpuchar/metrics/v1 documents — the same
// serialization the result export uses, with its validation on read.
type checkpointFile struct {
	Schema string `json:"schema"`
	JobID  string `json:"job_id"`
	// Key guards against resuming a checkpoint into a different spec or
	// code version: a mismatch discards the checkpoint.
	Key string `json:"key"`
	// API / Sim hold completed demo renders: demo name -> per-frame
	// snapshot document.
	API map[string]json.RawMessage `json:"api,omitempty"`
	Sim map[string]json.RawMessage `json:"sim,omitempty"`
	// Cur is the API render in flight, if any. Simulated renders carry
	// warm cache state across frames and are only checkpointed whole.
	Cur *curCheckpoint `json:"cur,omitempty"`
}

type curCheckpoint struct {
	Demo   string             `json:"demo"`
	Gen    workloads.GenState `json:"gen"`
	Frames json.RawMessage    `json:"frames"`
}

func newCheckpoint(jobID, key string) *checkpointFile {
	return &checkpointFile{
		Schema: checkpointBodySchema, JobID: jobID, Key: key,
		API: map[string]json.RawMessage{}, Sim: map[string]json.RawMessage{},
	}
}

// encodeAPIFrames serializes per-frame API records as a metrics
// document.
func encodeAPIFrames(frames []gfxapi.FrameStats) (json.RawMessage, error) {
	snaps := make([]metrics.Snapshot, len(frames))
	for i := range frames {
		snaps[i] = core.APIFrameSnapshot(frames[i])
	}
	var buf bytes.Buffer
	if err := metrics.WriteJSON(&buf, snaps); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeAPIFrames(raw json.RawMessage) ([]gfxapi.FrameStats, error) {
	snaps, err := metrics.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	frames := make([]gfxapi.FrameStats, len(snaps))
	for i, s := range snaps {
		frames[i] = core.APIFrameFromSnapshot(s)
	}
	return frames, nil
}

// encodeSimFrames serializes per-frame simulator records the same way.
func encodeSimFrames(frames []gpu.FrameStats) (json.RawMessage, error) {
	snaps := make([]metrics.Snapshot, len(frames))
	for i := range frames {
		snaps[i] = frames[i].MetricsSnapshot()
	}
	var buf bytes.Buffer
	if err := metrics.WriteJSON(&buf, snaps); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSimFrames(raw json.RawMessage) ([]gpu.FrameStats, error) {
	snaps, err := metrics.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	frames := make([]gpu.FrameStats, len(snaps))
	for i, s := range snaps {
		frames[i] = gpu.FrameStatsFromSnapshot(s)
	}
	return frames, nil
}
