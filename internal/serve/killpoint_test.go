package serve

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"gpuchar/internal/fault"
)

// killSpec is the workload the crash matrix runs: small enough that a
// full lifecycle is tens of milliseconds, with CheckpointEvery 1 so the
// spool sees the densest possible write schedule.
var killSpec = JobSpec{Experiments: []string{"table3"}, APIFrames: 4}

func killConfig(dir string, fsys fault.FS) Config {
	return Config{
		Workers:         1,
		SpoolDir:        dir,
		CheckpointEvery: 1,
		FS:              fsys,
	}
}

// runLifecycle drives one submit-to-shutdown pass over the given
// filesystem, tolerating failures at every step (that is the point).
func runLifecycle(t *testing.T, dir string, fsys fault.FS) {
	t.Helper()
	s, err := Open(killConfig(dir, fsys))
	if err != nil {
		return // crashed during Open: the restart must cope with the dir as-is
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	v, err := s.Submit(killSpec)
	if err != nil {
		return
	}
	done, err := s.Done(v.ID)
	if err != nil {
		return
	}
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatalf("lifecycle job %s wedged", v.ID)
	}
}

// verifyRecovery restarts on the real filesystem and demands the one
// safety property: whatever the crash left behind, the service comes
// up, never serves a wrong byte, and still completes the workload.
func verifyRecovery(t *testing.T, dir string, want []byte) {
	t.Helper()
	s, err := Open(killConfig(dir, fault.OS{}))
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	defer shutdownNow(t, s)
	// Any job the spool preserved must finish with the exact clean-run
	// bytes (a done job serves its verified stored result; a pending one
	// resumes or re-renders).
	for _, v := range s.Jobs() {
		final := waitJob(t, s, v.ID)
		if final.State == StateDone {
			got, err := s.Result(v.ID)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("job %s: restored result differs from clean run (%v)", v.ID, err)
			}
		}
	}
	// And the service is fully functional: a fresh submission of the
	// same spec completes byte-identically.
	v, err := s.Submit(killSpec)
	if err != nil {
		t.Fatalf("submit after crash recovery: %v", err)
	}
	if final := waitJob(t, s, v.ID); final.State != StateDone {
		t.Fatalf("job after crash recovery = %+v; want done", final)
	}
	got, err := s.Result(v.ID)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("result after crash recovery differs from clean run (%v)", err)
	}
}

// TestKillPointMatrix crashes the spool at every filesystem operation
// of a job lifecycle, in all three crash shapes (before the op, torn
// mid-op, after the op), and requires a clean-filesystem restart to
// recover every time. This is the crash-consistency proof for the
// fsync'd tmp+rename protocol plus checksummed envelopes: a kill at any
// instant may cost work, never correctness.
func TestKillPointMatrix(t *testing.T) {
	want := expectedJSON(t, killSpec)

	// Pass 1: count the operations of a fault-free lifecycle.
	countDir := t.TempDir()
	counter := &fault.CrashFS{Base: fault.OS{}}
	runLifecycle(t, countDir, counter)
	total := counter.Ops()
	if total < 10 {
		t.Fatalf("only %d spool ops in a full lifecycle; the matrix would be vacuous", total)
	}
	t.Logf("lifecycle performs %d spool operations", total)

	// Crashing at all ~170 ops × 3 modes takes minutes; by default the
	// matrix samples kill points evenly across the lifecycle (every op
	// index class still gets hit: writes, syncs, renames, reads).
	// GPUCHAR_KILLPOINT_EXHAUSTIVE=1 restores the full sweep for chaos
	// CI and release qualification.
	stride := total / 15
	if testing.Short() {
		stride = total / 6
	}
	if os.Getenv("GPUCHAR_KILLPOINT_EXHAUSTIVE") != "" {
		stride = 1
	}
	if stride < 1 {
		stride = 1
	}
	modes := []struct {
		name string
		mode fault.CrashMode
	}{
		{"before", fault.CrashBefore},
		{"partial", fault.CrashPartial},
		{"after", fault.CrashAfter},
	}
	for op := 1; op <= total; op += stride {
		for _, m := range modes {
			op, m := op, m
			t.Run(fmt.Sprintf("op%03d_%s", op, m.name), func(t *testing.T) {
				dir := t.TempDir()
				runLifecycle(t, dir, &fault.CrashFS{Base: fault.OS{}, CrashOp: op, Mode: m.mode})
				verifyRecovery(t, dir, want)
			})
		}
	}
}
