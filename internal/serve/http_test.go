package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpuchar/internal/fault"
	"gpuchar/internal/geom"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gmath"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
	"gpuchar/internal/shader"
	"gpuchar/internal/trace"
)

// startDaemon wires a Service into the obsv server the way cmd/gpuchard
// does and returns the base URL.
func startDaemon(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := obsv.StartServer("127.0.0.1:0", obsv.ServerSources{
		Snapshots: s.MetricsSnapshots,
		Mount:     s.Mount,
		Health:    s.Health,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = srv.Close()
		shutdownNow(t, s)
	})
	return s, "http://" + srv.Addr
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode < 300 {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postSpec(t *testing.T, base string, spec JobSpec) (*http.Response, JobView) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	return resp, view
}

// pollDone long-polls GET /jobs/{id}?wait until the job terminates.
func pollDone(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var view JobView
		if code := getJSON(t, base+"/jobs/"+id+"?wait=5s", &view); code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d", code)
		}
		if view.State.terminal() {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish over HTTP", id)
		}
	}
}

// TestHTTPJobLifecycle drives the REST API end to end: submit a spec,
// long-poll to completion, fetch the result, and confirm the document
// matches the single-shot characterize output byte for byte. A
// resubmission is a cache hit, visible both in the job view and in the
// Prometheus counters on /metrics.
func TestHTTPJobLifecycle(t *testing.T) {
	spec := JobSpec{Experiments: []string{"fig1"}, APIFrames: 6}
	want := expectedJSON(t, spec)
	_, base := startDaemon(t, Config{Workers: 2})

	resp, view := postSpec(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: HTTP %d", resp.StatusCode)
	}
	if view.ID == "" || view.State.terminal() {
		t.Fatalf("accepted view: %+v", view)
	}

	final := pollDone(t, base, view.ID)
	if final.State != StateDone {
		t.Fatalf("job = %s (%s)", final.State, final.Error)
	}
	res, err := http.Get(base + "/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d (%s)", res.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Error("HTTP result differs from single-shot characterize output")
	}
	// The document parses under the exported schema.
	if _, err := metrics.ReadJSON(bytes.NewReader(got)); err != nil {
		t.Errorf("result is not a valid metrics document: %v", err)
	}

	// Resubmit: cache hit, reflected on /metrics.
	resp2, view2 := postSpec(t, base, spec)
	if resp2.StatusCode != http.StatusAccepted || !view2.CacheHit {
		t.Fatalf("resubmit: HTTP %d, %+v", resp2.StatusCode, view2)
	}
	mres, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	if !strings.Contains(string(prom), "gpuchar_serve_cache_hits") {
		t.Error("/metrics lacks gpuchar_serve_cache_hits")
	}
	var hits float64
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.HasPrefix(line, "gpuchar_serve_cache_hits") {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &hits)
		}
	}
	if hits < 1 {
		t.Errorf("gpuchar_serve_cache_hits = %g, want >= 1", hits)
	}

	// The job list includes both submissions.
	var list []JobView
	if code := getJSON(t, base+"/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Errorf("GET /jobs: HTTP %d, %d jobs", code, len(list))
	}
}

// TestHTTPBackpressure pins the 429 + Retry-After contract when the
// queue is full.
func TestHTTPBackpressure(t *testing.T) {
	_, base := startDaemon(t, Config{Workers: 1, QueueDepth: 1})

	var got429 bool
	for i := 0; i < 8; i++ {
		resp, _ := postSpec(t, base, JobSpec{Experiments: []string{"fig1"}, APIFrames: 100000 + i})
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = true
			if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
				t.Errorf("429 without a useful Retry-After (%q)", ra)
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d: HTTP %d", i, resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("queue never pushed back with 429")
	}
}

// TestHTTPCancelAndErrors pins DELETE plus the 404/409 edges.
func TestHTTPCancelAndErrors(t *testing.T) {
	_, base := startDaemon(t, Config{Workers: 1})

	_, view := postSpec(t, base, JobSpec{Experiments: []string{"fig1"}, APIFrames: 100000})
	if view.ID == "" {
		t.Fatal("submission failed")
	}
	// Result before completion: 409.
	if code := getJSON(t, base+"/jobs/"+view.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("early result fetch: HTTP %d, want 409", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+view.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled JobView
	_ = json.NewDecoder(resp.Body).Decode(&canceled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	final := pollDone(t, base, view.ID)
	if final.State != StateCanceled {
		t.Errorf("after DELETE job = %s, want canceled", final.State)
	}
	// Unknown job: 404 everywhere.
	for _, path := range []string{"/jobs/j9999-missing", "/jobs/j9999-missing/result"} {
		if code := getJSON(t, base+path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, code)
		}
	}
	// Bad spec: 400.
	resp2, _ := postSpec(t, base, JobSpec{Experiments: []string{"nope"}})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: HTTP %d, want 400", resp2.StatusCode)
	}
}

// recordSmallTrace renders a tiny two-frame scene through a recording
// device and returns the serialized trace stream.
func recordSmallTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, gfxapi.OpenGL)
	if err != nil {
		t.Fatal(err)
	}
	d := gfxapi.NewDevice(gfxapi.OpenGL, gfxapi.NullBackend{})
	d.SetRecorder(rec)
	pos := []gmath.Vec4{
		{X: -1, Y: -1, W: 1}, {X: 1, Y: -1, W: 1}, {X: 0, Y: 1, W: 1},
	}
	vb := d.CreateVertexBuffer([][]gmath.Vec4{pos}, 16)
	ib := d.CreateIndexBuffer([]uint32{0, 1, 2}, 2)
	vs, err := d.CreateProgram(shader.BasicTransformVS())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := d.CreateProgram(shader.TexturedFS())
	if err != nil {
		t.Fatal(err)
	}
	for frame := 0; frame < 2; frame++ {
		d.Clear(gfxapi.ClearOp{ClearColor: true, ClearDepth: true, Z: 1})
		d.DrawIndexed(vb, ib, geom.TriangleList, vs, fs)
		d.EndFrame()
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestHTTPTraceUpload submits a recorded trace as an octet-stream and
// checks the resulting document carries the upload's label.
func TestHTTPTraceUpload(t *testing.T) {
	raw := recordSmallTrace(t)
	_, base := startDaemon(t, Config{Workers: 1})

	resp, err := http.Post(base+"/jobs?name=uploaded-demo", "application/octet-stream",
		bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trace upload: HTTP %d", resp.StatusCode)
	}
	final := pollDone(t, base, view.ID)
	if final.State != StateDone {
		t.Fatalf("trace job = %s (%s)", final.State, final.Error)
	}
	res, err := http.Get(base + "/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	snaps, err := metrics.ReadJSON(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("trace result: %v", err)
	}
	if len(snaps) == 0 {
		t.Fatal("trace result has no snapshots")
	}
	for _, s := range snaps {
		if s.Label("demo") != "uploaded-demo" {
			t.Errorf("snapshot labeled %q, want uploaded-demo", s.Label("demo"))
		}
	}

	// A corrupt stream is rejected at submission, not at run time.
	bad := append([]byte("XXXX"), raw[4:]...)
	resp2, err := http.Post(base+"/jobs", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt trace: HTTP %d, want 400", resp2.StatusCode)
	}
}

// TestHTTPDegradedSheds503 pins the load-shedding surface: while the
// spool is failing, POST /jobs answers 503 + Retry-After (distinct from
// the 429 a merely full queue produces) and /healthz flips to 503; both
// recover once the cooldown passes.
func TestHTTPDegradedSheds503(t *testing.T) {
	inj := fault.New(7,
		fault.Rule{Site: fault.FSWrite, Kind: fault.Err, Prob: 1, After: 1, Count: 2},
		fault.Rule{Site: fault.Exec, Kind: fault.Slow, Prob: 1, Count: 100, Delay: time.Hour})
	defer inj.Close()
	_, base := startDaemon(t, Config{
		Workers: 1, SpoolDir: t.TempDir(),
		FS:            fault.NewFaulty(fault.OS{}, inj),
		Inject:        inj,
		DegradedAfter: 2, DegradedFor: 30 * time.Second,
	})

	spec := JobSpec{Experiments: []string{"table3"}, APIFrames: 4}
	for i := 0; i < 2; i++ {
		resp, _ := postSpec(t, base, JobSpec{Experiments: spec.Experiments, APIFrames: 4 + i})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("priming POST %d: HTTP %d", i, resp.StatusCode)
		}
	}
	resp, _ := postSpec(t, base, JobSpec{Experiments: []string{"fig1"}, APIFrames: 4})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST: HTTP %d; want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("503 without a useful Retry-After (%q)", ra)
	}
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz while degraded = HTTP %d; want 503", code)
	}
}

// TestJobAPIHeadersPinned pins the exact Content-Type (with charset)
// and Cache-Control of the job API's JSON responses, success and error
// paths alike — including the raw result document.
func TestJobAPIHeadersPinned(t *testing.T) {
	_, base := startDaemon(t, Config{Workers: 1, QueueDepth: 4})

	resp, view := postSpec(t, base, JobSpec{Experiments: []string{"fig1"}, APIFrames: 4})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	pollDone(t, base, view.ID)

	paths := []string{
		"/jobs",
		"/jobs/" + view.ID,
		"/jobs/" + view.ID + "/result",
		"/jobs/no-such-job", // 404 error body
		"/configs",
	}
	for _, path := range paths {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s Content-Type = %q, want application/json; charset=utf-8", path, ct)
		}
		if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
			t.Errorf("%s Cache-Control = %q, want no-store", path, cc)
		}
	}
}
