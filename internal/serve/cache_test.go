package serve

import (
	"fmt"
	"testing"

	"gpuchar/internal/metrics"
)

func cacheCounter(t *testing.T, r *metrics.Registry, name string) int64 {
	t.Helper()
	v, ok := r.Snapshot().Get(name)
	if !ok {
		t.Fatalf("counter %s not registered", name)
	}
	return v
}

func TestCacheHitMiss(t *testing.T) {
	c := NewResultCache(4, 0)
	reg := metrics.NewRegistry()
	c.Register(reg, "serve/cache")

	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("result-a"))
	got, ok := c.Get("a")
	if !ok || string(got) != "result-a" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	if h := cacheCounter(t, reg, "serve/cache/hits"); h != 1 {
		t.Errorf("hits = %d, want 1", h)
	}
	if m := cacheCounter(t, reg, "serve/cache/misses"); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewResultCache(3, 0)
	reg := metrics.NewRegistry()
	c.Register(reg, "serve/cache")
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	c.Get("k0") // refresh k0: k1 is now the LRU
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted, want k1 only", k)
		}
	}
	if e := cacheCounter(t, reg, "serve/cache/evictions"); e != 1 {
		t.Errorf("evictions = %d, want 1", e)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewResultCache(0, 10)
	c.Put("a", make([]byte, 6))
	c.Put("b", make([]byte, 6)) // 12 bytes: evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a survived the byte bound")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b evicted")
	}
	// An oversized entry still lands (the cache holds just it).
	c.Put("huge", make([]byte, 64))
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized entry rejected")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived next to an oversized entry")
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := NewResultCache(2, 0)
	c.Put("a", []byte("v1"))
	c.Put("a", []byte("v2"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", c.Len())
	}
	if got, _ := c.Get("a"); string(got) != "v2" {
		t.Errorf("Get(a) = %q, want v2", got)
	}
}

// TestSpecKey pins the content addressing: normalization folds
// equivalent specs together, any parameter or code-version change
// splits them.
func TestSpecKey(t *testing.T) {
	base := JobSpec{Experiments: []string{"table3"}}.normalized()
	same := JobSpec{Experiments: []string{"table3"}, APIFrames: 120,
		SimFrames: 2, Width: 1024, Height: 768, TileWorkers: 1}.normalized()
	if base.key() != same.key() {
		t.Error("defaulted and explicit specs hash differently")
	}
	diff := JobSpec{Experiments: []string{"table3"}, APIFrames: 60}.normalized()
	if base.key() == diff.key() {
		t.Error("different api_frames share a key")
	}
	tr1 := JobSpec{Trace: []byte("stream-one"), TraceName: "x"}.normalized()
	tr2 := JobSpec{Trace: []byte("stream-two"), TraceName: "x"}.normalized()
	if tr1.key() == tr2.key() {
		t.Error("different trace bytes share a key")
	}

	keyV1 := base.key()
	old := CodeVersion
	defer func() { CodeVersion = old }()
	CodeVersion = "gpuchar/other"
	if keyV1 == base.key() {
		t.Error("code version change did not invalidate the key")
	}
}
