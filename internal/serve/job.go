// Package serve turns the characterization engine into a long-running
// service: a bounded job queue feeding a worker pool, a
// content-addressed result cache, and frame-boundary checkpoints that
// let a killed daemon resume mid-demo. cmd/gpuchard mounts it on the
// observability HTTP server.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"gpuchar/internal/core"
	"gpuchar/internal/hwconfig"
	"gpuchar/internal/trace"
	"gpuchar/internal/workloads"
)

// CodeVersion participates in every cache key, so results computed by
// one build are never served for another (the simulator's counters are
// bit-stable only within a build). Bump it when the characterization
// output changes; tests override it to exercise invalidation.
var CodeVersion = "gpuchar/3"

// JobSpec describes one characterization job: either an experiment
// sweep over the synthetic workloads, or a replay of an uploaded trace
// stream. The zero value means "every experiment at paper defaults".
type JobSpec struct {
	// Experiments are the experiment IDs to run (tableN/figN). Empty
	// runs the full registry, matching `characterize -exp all`.
	Experiments []string `json:"experiments,omitempty"`
	// APIFrames / SimFrames / Width / Height mirror the characterize
	// flags; zero takes the paper defaults (120, 2, 1024, 768).
	APIFrames int `json:"api_frames,omitempty"`
	SimFrames int `json:"sim_frames,omitempty"`
	Width     int `json:"width,omitempty"`
	Height    int `json:"height,omitempty"`
	// TileWorkers is the simulator's tile-parallel fan-out (0/1 serial).
	TileWorkers int `json:"tile_workers,omitempty"`
	// Config names a hardware variant from the hwconfig registry
	// ("r520", "texl0-half", ...). Empty means the default point.
	Config string `json:"config,omitempty"`
	// ConfigParams is an inline hardware variant: a JSON document whose
	// fields override the r520 default (hwconfig overlay semantics).
	// Mutually exclusive with Config. Cache keys hash the variant's
	// canonical digest, so an inline document equivalent to a named
	// variant shares its cached results.
	ConfigParams *hwconfig.Variant `json:"config_params,omitempty"`
	// Trace, when non-empty, makes this a replay job: the bytes are a
	// recorded trace stream (v1/v2), validated at submission. Trace jobs
	// run no experiments.
	Trace []byte `json:"trace,omitempty"`
	// TraceName labels the replay's snapshots (default "trace").
	TraceName string `json:"trace_name,omitempty"`
}

// normalized fills defaults so that equivalent requests share one cache
// key.
func (s JobSpec) normalized() JobSpec {
	if len(s.Trace) > 0 {
		if s.TraceName == "" {
			s.TraceName = "trace"
		}
		// Replay jobs ignore the sweep parameters entirely.
		s.Experiments = nil
		s.APIFrames, s.SimFrames, s.Width, s.Height, s.TileWorkers = 0, 0, 0, 0, 0
		s.Config, s.ConfigParams = "", nil
		return s
	}
	if len(s.Experiments) == 0 {
		for _, e := range core.Experiments() {
			s.Experiments = append(s.Experiments, e.ID)
		}
	}
	if s.APIFrames == 0 {
		s.APIFrames = 120
	}
	if s.SimFrames == 0 {
		s.SimFrames = 2
	}
	if s.Width == 0 {
		s.Width = 1024
	}
	if s.Height == 0 {
		s.Height = 768
	}
	if s.TileWorkers == 0 {
		s.TileWorkers = 1
	}
	s.TraceName = ""
	return s
}

// validate rejects a spec a worker could not run. Call on the
// normalized form.
func (s *JobSpec) validate() error {
	if len(s.Trace) > 0 {
		if _, _, err := trace.SniffHeader(bytes.NewReader(s.Trace)); err != nil {
			return fmt.Errorf("serve: trace upload: %w", err)
		}
		return nil
	}
	for _, id := range s.Experiments {
		if core.ByID(id) == nil {
			return fmt.Errorf("serve: unknown experiment %q", id)
		}
	}
	if s.APIFrames <= 0 || s.SimFrames <= 0 || s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("serve: api_frames %d, sim_frames %d, width %d, height %d must all be positive",
			s.APIFrames, s.SimFrames, s.Width, s.Height)
	}
	if s.TileWorkers < 0 {
		return fmt.Errorf("serve: tile_workers %d must be >= 0", s.TileWorkers)
	}
	v, err := s.variant()
	if err != nil {
		return err
	}
	if err := v.Validate(); err != nil {
		return fmt.Errorf("serve: config: %w", err)
	}
	return nil
}

// variant resolves the spec's hardware selection: the named registry
// entry, the inline parameter document, or the r520 default.
func (s JobSpec) variant() (hwconfig.Variant, error) {
	if s.Config != "" && s.ConfigParams != nil {
		return hwconfig.Variant{}, fmt.Errorf("serve: config %q and config_params are mutually exclusive", s.Config)
	}
	if s.Config != "" {
		v, ok := hwconfig.ByName(s.Config)
		if !ok {
			return hwconfig.Variant{}, fmt.Errorf("serve: unknown config %q", s.Config)
		}
		return v, nil
	}
	if s.ConfigParams != nil {
		return *s.ConfigParams, nil
	}
	return hwconfig.Default(), nil
}

// hwVariant is variant() falling back to the default — for paths past
// validation (runner, views) and for jobs restored from an older spool,
// where the selection fields may be absent.
func (s JobSpec) hwVariant() hwconfig.Variant {
	v, err := s.variant()
	if err != nil {
		return hwconfig.Default()
	}
	return v
}

// keySpec is the canonical form hashed into the cache key: the
// normalized spec with the trace bytes replaced by their digest and the
// hardware selection replaced by its canonical digest, plus the code
// version. Hashing the config digest (never the name) is what makes a
// sweep cell computed under an inline config a cache hit for the
// equivalent named one, and vice versa.
type keySpec struct {
	Spec         JobSpec `json:"spec"`
	TraceSHA     string  `json:"trace_sha,omitempty"`
	ConfigDigest string  `json:"config_digest,omitempty"`
	CodeVer      string  `json:"code_version"`
}

// key returns the content address of a normalized spec's result.
func (s JobSpec) key() string {
	ks := keySpec{Spec: s, CodeVer: CodeVersion}
	if len(s.Trace) > 0 {
		sum := sha256.Sum256(s.Trace)
		ks.TraceSHA = hex.EncodeToString(sum[:])
		ks.Spec.Trace = nil
	} else {
		ks.ConfigDigest = s.hwVariant().Digest()
		ks.Spec.Config, ks.Spec.ConfigParams = "", nil
	}
	doc, err := json.Marshal(ks)
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal key spec: %v", err))
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// framesTotal is the job's expected frame count, for progress
// reporting. Replay jobs report 0 (the stream length is unknown until
// played).
func (s JobSpec) framesTotal() int {
	if len(s.Trace) > 0 {
		return 0
	}
	api, micro, err := core.NeededDemos(s.Experiments)
	if err != nil {
		return 0
	}
	return len(api)*s.APIFrames + len(micro)*s.SimFrames
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one submitted characterization run. All mutable fields are
// guarded by the owning Service's mutex; callers observe jobs through
// JobView copies.
type Job struct {
	ID   string
	Spec JobSpec // normalized

	key            string
	state          State
	started        time.Time
	err            string
	errClass       string
	result         []byte
	cacheHit       bool
	framesDone     int
	framesTotal    int
	framesRestored int

	// done closes when the job reaches a terminal state.
	done chan struct{}
	// cancel tears down the running job's context (nil until running);
	// userCancel distinguishes a DELETE from a shutdown drain.
	cancel     func()
	userCancel bool
}

// JobView is the externally visible state of a job — what GET /jobs/id
// returns.
type JobView struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// ErrorClass buckets a failure (hung, panic, injected, timeout,
	// canceled, internal) so clients and chaos suites can branch on the
	// kind without parsing message text.
	ErrorClass string `json:"error_class,omitempty"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	// Frame progress: restored counts frames spliced in from a
	// checkpoint rather than rendered.
	FramesDone     int `json:"frames_done"`
	FramesTotal    int `json:"frames_total"`
	FramesRestored int `json:"frames_restored,omitempty"`
	// Experiments echoes the normalized sweep (empty for replay jobs).
	Experiments []string `json:"experiments,omitempty"`
	// Config and ConfigDigest echo the resolved hardware variant (empty
	// for replay jobs; "inline" when the spec carried a parameter
	// document without a name).
	Config       string `json:"config,omitempty"`
	ConfigDigest string `json:"config_digest,omitempty"`
	// Spec echoes the fully-normalized spec the job runs under — every
	// defaulted parameter made explicit — with the trace bytes elided.
	Spec *JobSpec `json:"spec,omitempty"`
}

// view snapshots a job. Callers hold the service mutex.
func (j *Job) view() JobView {
	echo := j.Spec
	echo.Trace = nil
	v := JobView{
		ID:             j.ID,
		State:          j.state,
		Error:          j.err,
		ErrorClass:     j.errClass,
		CacheHit:       j.cacheHit,
		FramesDone:     j.framesDone,
		FramesTotal:    j.framesTotal,
		FramesRestored: j.framesRestored,
		Experiments:    j.Spec.Experiments,
		Spec:           &echo,
	}
	if len(j.Spec.Trace) == 0 {
		hw := j.Spec.hwVariant()
		v.Config = hw.Name
		if v.Config == "" {
			v.Config = "inline"
		}
		v.ConfigDigest = hw.Digest()
	}
	return v
}

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// profileFor resolves a demo name, shared by the runner paths.
func profileFor(name string) (*workloads.Profile, error) {
	p := workloads.ByName(name)
	if p == nil {
		return nil, fmt.Errorf("serve: unknown demo %q", name)
	}
	return p, nil
}
