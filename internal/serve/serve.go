package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpuchar/internal/explorer"
	"gpuchar/internal/fault"
	"gpuchar/internal/metrics"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull means the bounded queue rejected a submission —
	// backpressure, not failure (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDegraded means the service is shedding load because its own
	// machinery is failing (spool I/O errors), distinct from a merely
	// full queue (HTTP 503 + Retry-After).
	ErrDegraded = errors.New("serve: degraded, shedding load")
	// ErrShutdown means the service no longer accepts work.
	ErrShutdown = errors.New("serve: shutting down")
	// ErrNotFound means the job ID is unknown.
	ErrNotFound = errors.New("serve: no such job")
	// ErrJobHung marks a job whose worker ignored its deadline and was
	// reaped by the watchdog.
	ErrJobHung = errors.New("serve: job hung past its deadline; worker reaped")
	// ErrWorkerPanic marks a job that panicked mid-run; the panic is
	// contained to the job, never the daemon.
	ErrWorkerPanic = errors.New("serve: worker panicked")
)

// Config sizes a Service. Zero values take the documented defaults.
type Config struct {
	// Workers is the number of concurrent job executors (default 1).
	Workers int
	// QueueDepth bounds the pending-job queue (default 16); submissions
	// past it fail with ErrQueueFull.
	QueueDepth int
	// SpoolDir, when set, persists job specs, checkpoints and results
	// so a restarted daemon resumes where it was killed. Empty runs
	// in-memory only (no checkpoint/resume).
	SpoolDir string
	// CacheEntries / CacheBytes bound the result cache (defaults 64
	// entries, 256 MiB; negative disables that bound).
	CacheEntries int
	CacheBytes   int64
	// CheckpointEvery is the frame interval between durable checkpoints
	// of an in-progress API render (default 25; <0 checkpoints only at
	// demo boundaries and cancellation).
	CheckpointEvery int
	// JobTimeout, when positive, bounds each job's wall-clock run time.
	JobTimeout time.Duration
	// HangGrace bounds how long a canceled or expired job may keep
	// running before the watchdog reaps its worker slot (default 30s).
	HangGrace time.Duration
	// DegradedAfter is the consecutive-spool-write-failure threshold
	// that trips load shedding (default 3; negative disables).
	DegradedAfter int
	// DegradedFor is how long load shedding lasts after tripping, if no
	// spool write succeeds sooner (default 5s).
	DegradedFor time.Duration
	// FS is the filesystem the spool writes through; nil means the real
	// OS filesystem. The chaos harness substitutes fault.FS wrappers.
	FS fault.FS
	// Inject, when non-nil, threads deterministic fault injection
	// through the service's execution boundaries (worker exec, trace
	// reads). Spool I/O faults come from wrapping FS instead.
	Inject *fault.Injector
	// Explorer, when non-nil, receives every completed job as a run
	// record and the queue's live progress / frame-boundary counter
	// deltas as SSE events. Recording is observational: a registry
	// failure never fails the job.
	Explorer *explorer.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 25
	}
	if c.HangGrace <= 0 {
		c.HangGrace = 30 * time.Second
	}
	if c.DegradedAfter == 0 {
		c.DegradedAfter = 3
	}
	if c.DegradedFor <= 0 {
		c.DegradedFor = 5 * time.Second
	}
	return c
}

// Service is the characterization job scheduler: a bounded queue, a
// worker pool running jobs through the core engine, a content-addressed
// result cache, and the spool that makes jobs survive restarts.
type Service struct {
	cfg   Config
	spool *spool
	inj   *fault.Injector

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing
	cache *ResultCache
	seq   int
	// closing refuses new work while Shutdown drains the pool.
	closing bool
	// Degraded-mode state: consecutive spool-write failures trip load
	// shedding until degradedUntil (or until a write succeeds).
	spoolFailStreak int
	degradedUntil   time.Time
	degradedReason  string

	queue chan *Job
	wg    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	reg      *metrics.Registry
	counters struct {
		submitted, completed, failed, canceled, resumed       int64
		framesRestored, queueDepth                            int64
		shed, reaped, panics, degraded                        int64
		spoolWriteErrs                                        int64
		quarantinedJobs, quarantinedCkpts, quarantinedResults int64
		faults                                                []int64
	}
}

// Open starts a service: it rescans the spool directory (if any),
// restores finished results into the cache, re-enqueues unfinished
// jobs, and launches the worker pool.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		spool: newSpool(cfg.SpoolDir, cfg.FS),
		inj:   cfg.Inject,
		jobs:  map[string]*Job{},
		cache: NewResultCache(cfg.CacheEntries, cfg.CacheBytes),
		reg:   metrics.NewRegistry(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.reg.Bind("serve/jobs_submitted", &s.counters.submitted)
	s.reg.Bind("serve/jobs_completed", &s.counters.completed)
	s.reg.Bind("serve/jobs_failed", &s.counters.failed)
	s.reg.Bind("serve/jobs_canceled", &s.counters.canceled)
	s.reg.Bind("serve/jobs_resumed", &s.counters.resumed)
	s.reg.Bind("serve/frames_restored", &s.counters.framesRestored)
	s.reg.Bind("serve/queue_depth", &s.counters.queueDepth)
	s.reg.Bind("serve/jobs_shed", &s.counters.shed)
	s.reg.Bind("serve/degraded", &s.counters.degraded)
	s.reg.Bind("serve/spool_write_errors", &s.counters.spoolWriteErrs)
	s.reg.Bind("serve/recovered/jobs_reaped", &s.counters.reaped)
	s.reg.Bind("serve/recovered/worker_panics", &s.counters.panics)
	s.reg.Bind("serve/recovered/jobs_quarantined", &s.counters.quarantinedJobs)
	s.reg.Bind("serve/recovered/checkpoints_quarantined", &s.counters.quarantinedCkpts)
	s.reg.Bind("serve/recovered/results_quarantined", &s.counters.quarantinedResults)
	sites := fault.Sites()
	s.counters.faults = make([]int64, len(sites))
	for i, site := range sites {
		s.reg.Bind("serve/faults/"+string(site), &s.counters.faults[i])
	}
	s.cache.Register(s.reg, "serve/cache")

	var pending []*Job
	if cfg.SpoolDir != "" {
		if err := s.spool.fs.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: spool %s: %w", cfg.SpoolDir, err)
		}
		jobs, err := s.spool.scan()
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			if n := seqOf(j.ID); n > s.seq {
				s.seq = n
			}
			if j.state == StateDone {
				s.cache.Put(j.key, j.result)
			} else {
				pending = append(pending, j)
			}
		}
	}
	// The queue must absorb every rediscovered job plus QueueDepth new
	// ones, or Open itself would block.
	s.queue = make(chan *Job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queue <- j
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// seqOf parses the monotonic sequence number out of a job ID
// ("j0042-<hash>" -> 42); 0 for foreign forms.
func seqOf(id string) int {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	dash := strings.IndexByte(id, '-')
	if dash < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil {
		return 0
	}
	return n
}

// Submit validates and enqueues a job. An identical job with a cached
// result completes instantly (cache hit, no worker involved). A full
// queue returns ErrQueueFull; a degraded service sheds with
// ErrDegraded.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	norm := spec.normalized()
	if err := norm.validate(); err != nil {
		return JobView{}, err
	}
	key := norm.key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return JobView{}, ErrShutdown
	}
	if s.degradedLocked() {
		s.counters.shed++
		return JobView{}, fmt.Errorf("%w (%s)", ErrDegraded, s.degradedReason)
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%04d-%s", s.seq, key[:8]),
		Spec:        norm,
		key:         key,
		framesTotal: norm.framesTotal(),
		done:        make(chan struct{}),
	}
	if res, ok := s.cache.Get(key); ok {
		j.state = StateDone
		j.result = res
		j.cacheHit = true
		j.framesDone = j.framesTotal
		close(j.done)
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.counters.submitted++
		// Persist so a restart still knows this job and its result.
		if err := s.spool.writeJob(j); err == nil {
			s.noteSpoolLocked(s.spool.writeResult(j.ID, res))
		} else {
			s.noteSpoolLocked(err)
		}
		s.recordRunLocked(j)
		return j.view(), nil
	}
	j.state = StateQueued
	select {
	case s.queue <- j:
	default:
		s.seq-- // the rejected job never existed
		return JobView{}, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.counters.submitted++
	// A failed job-file write means the job won't survive a restart; it
	// still runs this process lifetime. Not worth failing the
	// submission, but it does count toward degraded-mode tripping.
	s.noteSpoolLocked(s.spool.writeJob(j))
	return j.view(), nil
}

// RetryAfter is the backoff hint returned with ErrQueueFull and
// ErrDegraded.
const RetryAfter = 2 * time.Second

// Job returns a job's current view.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// Jobs lists every known job in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Result returns a finished job's metrics document.
func (s *Service) Result(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.state != StateDone {
		return nil, fmt.Errorf("serve: job %s is %s, not done", id, j.state)
	}
	return j.result, nil
}

// Done exposes a job's completion channel for long-polling; it closes
// when the job reaches a terminal state.
func (s *Service) Done(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// Cancel stops a job: a queued job is marked canceled in place (the
// worker skips it on dequeue), a running one has its context torn down
// and checkpoints discarded. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch {
	case j.state.terminal():
		return nil
	case j.state == StateQueued:
		j.state = StateCanceled
		j.err = "canceled"
		s.counters.canceled++
		s.spool.removeJob(j.ID)
		close(j.done)
	default: // running
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return nil
}

// Health reports liveness for /healthz: false while the service sheds
// load because its own machinery (spool I/O) is failing.
func (s *Service) Health() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degradedLocked() {
		return false, "degraded: " + s.degradedReason
	}
	return true, "ok"
}

// degradedLocked reports whether load shedding is active. Callers hold
// s.mu.
func (s *Service) degradedLocked() bool {
	if s.degradedUntil.IsZero() || time.Now().After(s.degradedUntil) {
		s.counters.degraded = 0
		return false
	}
	return true
}

// noteSpoolLocked tracks spool-write health: DegradedAfter consecutive
// failures trip load shedding for DegradedFor (a success clears it
// early). Callers hold s.mu.
func (s *Service) noteSpoolLocked(err error) {
	if !s.spool.enabled() {
		return
	}
	if err == nil {
		s.spoolFailStreak = 0
		s.degradedUntil = time.Time{}
		s.counters.degraded = 0
		return
	}
	s.spoolFailStreak++
	if s.cfg.DegradedAfter > 0 && s.spoolFailStreak >= s.cfg.DegradedAfter {
		s.degradedUntil = time.Now().Add(s.cfg.DegradedFor)
		s.degradedReason = fmt.Sprintf("spool: %v", err)
		s.counters.degraded = 1
	}
}

// noteSpool is noteSpoolLocked for callers outside the lock (the
// runner's checkpoint writes).
func (s *Service) noteSpool(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.noteSpoolLocked(err)
}

// Shutdown stops accepting jobs, cancels running ones (they persist a
// final checkpoint and return to the queued state for the next Open),
// and waits for the workers to drain, bounded by ctx. A worker stuck in
// a hung job is reaped by its watchdog after HangGrace, so a drain
// cannot wedge behind it.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	s.mu.Unlock()
	if !already {
		s.baseCancel()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MetricsSnapshots returns the service counters as one labeled
// snapshot — the obsv server's Snapshots source.
func (s *Service) MetricsSnapshots() []metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.queueDepth = int64(len(s.queue))
	s.counters.quarantinedJobs = atomic.LoadInt64(&s.spool.quarantinedJobs)
	s.counters.quarantinedCkpts = atomic.LoadInt64(&s.spool.quarantinedCheckpoints)
	s.counters.quarantinedResults = atomic.LoadInt64(&s.spool.quarantinedResults)
	s.counters.spoolWriteErrs = atomic.LoadInt64(&s.spool.writeErrs)
	if !s.degradedLocked() {
		s.counters.degraded = 0
	}
	for i, site := range fault.Sites() {
		if n, ok := s.inj.Counts()[site]; ok {
			s.counters.faults[i] = n
		}
	}
	return []metrics.Snapshot{s.reg.Snapshot().WithLabels("source", "serve")}
}

// worker drains the queue until shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runOne(j)
		}
	}
}

// runOne executes a dequeued job under the watchdog and classifies its
// outcome.
func (s *Service) runOne(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx, cancel := context.WithCancel(s.baseCtx)
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	}
	j.cancel = cancel
	s.mu.Unlock()

	result, err := s.supervise(ctx, j)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		s.cache.Put(j.key, result)
		s.counters.completed++
		s.noteSpoolLocked(s.spool.writeResult(j.ID, result))
		s.spool.removeCheckpoint(j.ID)
		s.recordRunLocked(j)
		close(j.done)
	case j.userCancel:
		j.state = StateCanceled
		j.err = "canceled"
		s.counters.canceled++
		s.spool.removeJob(j.ID)
		close(j.done)
	case s.closing && errors.Is(err, context.Canceled):
		// Shutdown interrupted the job mid-run. Its checkpoint is on
		// disk; the next Open re-enqueues and resumes it.
		j.state = StateQueued
	default:
		j.state = StateFailed
		j.err = err.Error()
		j.errClass = classifyErr(err)
		s.counters.failed++
		s.spool.removeJob(j.ID)
		close(j.done)
	}
}

// supervise runs the job body in its own goroutine so the worker slot
// survives panics and hangs: a panic becomes an ErrWorkerPanic job
// failure; a job that ignores its canceled/expired context for longer
// than HangGrace is reaped (the runaway goroutine is abandoned — it can
// no longer affect the job record — and the worker moves on).
func (s *Service) supervise(ctx context.Context, j *Job) ([]byte, error) {
	type outcome struct {
		result []byte
		err    error
	}
	out := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.mu.Lock()
				s.counters.panics++
				s.mu.Unlock()
				out <- outcome{err: fmt.Errorf("%w: %v", ErrWorkerPanic, r)}
			}
		}()
		if err := s.execFault(ctx); err != nil {
			out <- outcome{err: err}
			return
		}
		res, err := s.runJob(ctx, j)
		out <- outcome{result: res, err: err}
	}()
	select {
	case o := <-out:
		return o.result, o.err
	case <-ctx.Done():
	}
	// The context is dead (deadline, cancel or shutdown); give the job
	// HangGrace to notice, checkpoint and return before reaping it.
	timer := time.NewTimer(s.cfg.HangGrace)
	defer timer.Stop()
	select {
	case o := <-out:
		return o.result, o.err
	case <-timer.C:
		s.mu.Lock()
		s.counters.reaped++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (grace %s after %v)", ErrJobHung, s.cfg.HangGrace, ctx.Err())
	}
}

// execFault applies an injected worker-execution fault, if armed:
// panic, hang (until the injector is closed — the watchdog's prey),
// slow-down, or a plain typed error.
func (s *Service) execFault(ctx context.Context) error {
	f := s.inj.Decide(fault.Exec)
	if f == nil {
		return nil
	}
	switch f.Kind {
	case fault.Panic:
		panic(&fault.Error{Site: fault.Exec, Kind: fault.Panic, Op: "worker"})
	case fault.Hang:
		<-s.inj.Released()
		return &fault.Error{Site: fault.Exec, Kind: fault.Hang, Op: "worker"}
	case fault.Slow:
		select {
		case <-time.After(f.Delay):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	default:
		return &fault.Error{Site: fault.Exec, Kind: f.Kind, Op: "worker"}
	}
}

// classifyErr buckets a job failure for the error_class view field, so
// chaos runs can assert every failure surfaced as a typed error.
func classifyErr(err error) string {
	switch {
	case errors.Is(err, ErrJobHung):
		return "hung"
	case errors.Is(err, ErrWorkerPanic):
		return "panic"
	case fault.IsInjected(err):
		return "injected"
	case errors.Is(err, fault.ErrCrashed):
		return "crashed"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "internal"
	}
}

// addFrames credits progress (and restored-frame counts) to a job and
// streams the tick to the explorer hub.
func (s *Service) addFrames(j *Job, done, restored int) {
	s.mu.Lock()
	j.framesDone += done
	j.framesRestored += restored
	s.counters.framesRestored += int64(restored)
	fd, ft := j.framesDone, j.framesTotal
	s.mu.Unlock()
	s.cfg.Explorer.Publish(explorer.Event{
		Type:        explorer.EventProgress,
		Run:         j.ID,
		State:       string(StateRunning),
		FramesDone:  fd,
		FramesTotal: ft,
	})
}

// recordRunLocked feeds a completed job into the explorer run registry.
// Callers hold s.mu; the registry has its own lock and never calls back
// into the service, so the nesting is safe. Parse failures are
// swallowed — recording must never fail the job that produced the
// result.
func (s *Service) recordRunLocked(j *Job) {
	if s.cfg.Explorer == nil {
		return
	}
	v := j.view()
	spec, _ := json.Marshal(v.Spec)
	_, _ = s.cfg.Explorer.RecordResult(explorer.Run{
		ID:           j.ID,
		Kind:         explorer.KindJob,
		Config:       v.Config,
		ConfigDigest: v.ConfigDigest,
		Experiments:  v.Experiments,
		Spec:         spec,
		CacheHit:     j.cacheHit,
		SimFrames:    j.Spec.SimFrames,
		Started:      j.started,
	}, j.result)
}

// noteResumed counts a job that picked up a prior checkpoint.
func (s *Service) noteResumed(j *Job) {
	s.mu.Lock()
	s.counters.resumed++
	s.mu.Unlock()
}

// sortedIDs is a test helper: job IDs in lexical order.
func (s *Service) sortedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
