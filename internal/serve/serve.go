package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpuchar/internal/metrics"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull means the bounded queue rejected a submission —
	// backpressure, not failure (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrShutdown means the service no longer accepts work.
	ErrShutdown = errors.New("serve: shutting down")
	// ErrNotFound means the job ID is unknown.
	ErrNotFound = errors.New("serve: no such job")
)

// Config sizes a Service. Zero values take the documented defaults.
type Config struct {
	// Workers is the number of concurrent job executors (default 1).
	Workers int
	// QueueDepth bounds the pending-job queue (default 16); submissions
	// past it fail with ErrQueueFull.
	QueueDepth int
	// SpoolDir, when set, persists job specs, checkpoints and results
	// so a restarted daemon resumes where it was killed. Empty runs
	// in-memory only (no checkpoint/resume).
	SpoolDir string
	// CacheEntries / CacheBytes bound the result cache (defaults 64
	// entries, 256 MiB; negative disables that bound).
	CacheEntries int
	CacheBytes   int64
	// CheckpointEvery is the frame interval between durable checkpoints
	// of an in-progress API render (default 25; <0 checkpoints only at
	// demo boundaries and cancellation).
	CheckpointEvery int
	// JobTimeout, when positive, bounds each job's wall-clock run time.
	JobTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 25
	}
	return c
}

// Service is the characterization job scheduler: a bounded queue, a
// worker pool running jobs through the core engine, a content-addressed
// result cache, and the spool that makes jobs survive restarts.
type Service struct {
	cfg Config

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing
	cache *ResultCache
	seq   int
	// closing refuses new work while Shutdown drains the pool.
	closing bool

	queue chan *Job
	wg    sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	reg      *metrics.Registry
	counters struct {
		submitted, completed, failed, canceled, resumed int64
		framesRestored, queueDepth                      int64
	}
}

// Open starts a service: it rescans the spool directory (if any),
// restores finished results into the cache, re-enqueues unfinished
// jobs, and launches the worker pool.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		jobs:  map[string]*Job{},
		cache: NewResultCache(cfg.CacheEntries, cfg.CacheBytes),
		reg:   metrics.NewRegistry(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.reg.Bind("serve/jobs_submitted", &s.counters.submitted)
	s.reg.Bind("serve/jobs_completed", &s.counters.completed)
	s.reg.Bind("serve/jobs_failed", &s.counters.failed)
	s.reg.Bind("serve/jobs_canceled", &s.counters.canceled)
	s.reg.Bind("serve/jobs_resumed", &s.counters.resumed)
	s.reg.Bind("serve/frames_restored", &s.counters.framesRestored)
	s.reg.Bind("serve/queue_depth", &s.counters.queueDepth)
	s.cache.Register(s.reg, "serve/cache")

	var pending []*Job
	if cfg.SpoolDir != "" {
		if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: spool %s: %w", cfg.SpoolDir, err)
		}
		jobs, _, err := scanSpool(cfg.SpoolDir)
		if err != nil {
			return nil, err
		}
		for _, j := range jobs {
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			if n := seqOf(j.ID); n > s.seq {
				s.seq = n
			}
			if j.state == StateDone {
				s.cache.Put(j.key, j.result)
			} else {
				pending = append(pending, j)
			}
		}
	}
	// The queue must absorb every rediscovered job plus QueueDepth new
	// ones, or Open itself would block.
	s.queue = make(chan *Job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queue <- j
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// seqOf parses the monotonic sequence number out of a job ID
// ("j0042-<hash>" -> 42); 0 for foreign forms.
func seqOf(id string) int {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	dash := strings.IndexByte(id, '-')
	if dash < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil {
		return 0
	}
	return n
}

// Submit validates and enqueues a job. An identical job with a cached
// result completes instantly (cache hit, no worker involved). A full
// queue returns ErrQueueFull.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	norm := spec.normalized()
	if err := norm.validate(); err != nil {
		return JobView{}, err
	}
	key := norm.key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return JobView{}, ErrShutdown
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%04d-%s", s.seq, key[:8]),
		Spec:        norm,
		key:         key,
		framesTotal: norm.framesTotal(),
		done:        make(chan struct{}),
	}
	if res, ok := s.cache.Get(key); ok {
		j.state = StateDone
		j.result = res
		j.cacheHit = true
		j.framesDone = j.framesTotal
		close(j.done)
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.counters.submitted++
		// Persist so a restart still knows this job and its result.
		if err := writeJobFile(s.cfg.SpoolDir, j); err == nil {
			if p := resultPath(s.cfg.SpoolDir, j.ID); p != "" {
				_ = atomicWrite(p, res)
			}
		}
		return j.view(), nil
	}
	j.state = StateQueued
	select {
	case s.queue <- j:
	default:
		s.seq-- // the rejected job never existed
		return JobView{}, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.counters.submitted++
	if err := writeJobFile(s.cfg.SpoolDir, j); err != nil {
		// The job still runs this process lifetime; it just won't
		// survive a restart. Not worth failing the submission.
		_ = err
	}
	return j.view(), nil
}

// RetryAfter is the backoff hint returned with ErrQueueFull.
const RetryAfter = 2 * time.Second

// Job returns a job's current view.
func (s *Service) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// Jobs lists every known job in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Result returns a finished job's metrics document.
func (s *Service) Result(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.state != StateDone {
		return nil, fmt.Errorf("serve: job %s is %s, not done", id, j.state)
	}
	return j.result, nil
}

// Done exposes a job's completion channel for long-polling; it closes
// when the job reaches a terminal state.
func (s *Service) Done(id string) (<-chan struct{}, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// Cancel stops a job: a queued job is marked canceled in place (the
// worker skips it on dequeue), a running one has its context torn down
// and checkpoints discarded. Canceling a terminal job is a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch {
	case j.state.terminal():
		return nil
	case j.state == StateQueued:
		j.state = StateCanceled
		j.err = "canceled"
		s.counters.canceled++
		removeJobFiles(s.cfg.SpoolDir, j.ID)
		close(j.done)
	default: // running
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return nil
}

// Shutdown stops accepting jobs, cancels running ones (they persist a
// final checkpoint and return to the queued state for the next Open),
// and waits for the workers to drain, bounded by ctx.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	s.mu.Unlock()
	if !already {
		s.baseCancel()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MetricsSnapshots returns the service counters as one labeled
// snapshot — the obsv server's Snapshots source.
func (s *Service) MetricsSnapshots() []metrics.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters.queueDepth = int64(len(s.queue))
	return []metrics.Snapshot{s.reg.Snapshot().WithLabels("source", "serve")}
}

// worker drains the queue until shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runOne(j)
		}
	}
}

// runOne executes a dequeued job and classifies its outcome.
func (s *Service) runOne(j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	ctx, cancel := context.WithCancel(s.baseCtx)
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	}
	j.cancel = cancel
	s.mu.Unlock()

	result, err := s.runJob(ctx, j)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		s.cache.Put(j.key, result)
		s.counters.completed++
		if p := resultPath(s.cfg.SpoolDir, j.ID); p != "" {
			_ = atomicWrite(p, result)
			os.Remove(ckptPath(s.cfg.SpoolDir, j.ID))
		}
		close(j.done)
	case j.userCancel:
		j.state = StateCanceled
		j.err = "canceled"
		s.counters.canceled++
		removeJobFiles(s.cfg.SpoolDir, j.ID)
		close(j.done)
	case s.closing && errors.Is(err, context.Canceled):
		// Shutdown interrupted the job mid-run. Its checkpoint is on
		// disk; the next Open re-enqueues and resumes it.
		j.state = StateQueued
	default:
		j.state = StateFailed
		j.err = err.Error()
		s.counters.failed++
		removeJobFiles(s.cfg.SpoolDir, j.ID)
		close(j.done)
	}
}

// addFrames credits progress (and restored-frame counts) to a job.
func (s *Service) addFrames(j *Job, done, restored int) {
	s.mu.Lock()
	j.framesDone += done
	j.framesRestored += restored
	s.counters.framesRestored += int64(restored)
	s.mu.Unlock()
}

// noteResumed counts a job that picked up a prior checkpoint.
func (s *Service) noteResumed(j *Job) {
	s.mu.Lock()
	s.counters.resumed++
	s.mu.Unlock()
}

// sortedIDs is a test helper: job IDs in lexical order.
func (s *Service) sortedIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
