package serve

import (
	"container/list"

	"gpuchar/internal/metrics"
)

// ResultCache is a content-addressed LRU over finished job results:
// key = hash(normalized spec, trace digest, code version), value = the
// job's metrics JSON document. Resubmitting an identical job is served
// from here without touching a worker. The cache is not goroutine-safe;
// the owning Service serializes access under its mutex (which also
// makes the hit/miss counters race-free).
type ResultCache struct {
	maxEntries int
	maxBytes   int64

	entries map[string]*list.Element
	lru     *list.List // front = most recent
	bytes   int64

	hits, misses, evictions, sizeBytes, sizeEntries int64
}

type cacheEntry struct {
	key    string
	result []byte
}

// NewResultCache creates a cache bounded by entry count and total
// result bytes. Zero bounds mean unbounded (on that axis).
func NewResultCache(maxEntries int, maxBytes int64) *ResultCache {
	return &ResultCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[string]*list.Element{},
		lru:        list.New(),
	}
}

// Register binds the cache's counters into a metrics registry under
// prefix (e.g. "serve/cache").
func (c *ResultCache) Register(r *metrics.Registry, prefix string) {
	r.Bind(prefix+"/hits", &c.hits)
	r.Bind(prefix+"/misses", &c.misses)
	r.Bind(prefix+"/evictions", &c.evictions)
	r.Bind(prefix+"/bytes", &c.sizeBytes)
	r.Bind(prefix+"/entries", &c.sizeEntries)
}

// Get returns the cached result for key, counting the hit or miss.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).result, true
}

// Put stores a result, evicting least-recently-used entries past the
// bounds. A single result larger than maxBytes is still stored (the
// cache then holds just it); an existing key is refreshed.
func (c *ResultCache) Put(key string, result []byte) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(result)) - int64(len(e.result))
		e.result = result
		c.lru.MoveToFront(el)
		c.sync()
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, result: result})
	c.bytes += int64(len(result))
	for c.over() {
		el := c.lru.Back()
		if el == nil || el == c.lru.Front() {
			break // never evict the entry just inserted
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.result))
		c.evictions++
	}
	c.sync()
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int { return c.lru.Len() }

// over reports whether either bound is exceeded.
func (c *ResultCache) over() bool {
	if c.maxEntries > 0 && c.lru.Len() > c.maxEntries {
		return true
	}
	if c.maxBytes > 0 && c.bytes > c.maxBytes {
		return true
	}
	return false
}

// sync refreshes the gauge-like size counters.
func (c *ResultCache) sync() {
	c.sizeBytes = c.bytes
	c.sizeEntries = int64(c.lru.Len())
}
