package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gpuchar/internal/hwconfig"
)

// maxUploadBytes bounds a POST /jobs body; a trace upload past it is
// rejected before buffering (413).
const maxUploadBytes = 256 << 20

// uploadReadTimeout bounds how long a submission may dribble its body
// in — a slowloris client holds a connection, never a worker. Long-poll
// GETs are unaffected (the deadline is set only on the upload path).
const uploadReadTimeout = 2 * time.Minute

// Mount registers the job API on a mux, alongside whatever else it
// serves (the obsv endpoints, in the daemon):
//
//	POST   /jobs            submit: JSON JobSpec, or a raw trace stream
//	                        (Content-Type application/octet-stream,
//	                        ?name= labels the snapshots)
//	GET    /jobs            list all jobs
//	GET    /jobs/{id}       status; ?wait=<dur> long-polls completion
//	GET    /jobs/{id}/result  the finished metrics JSON document
//	DELETE /jobs/{id}       cancel (and forget the checkpoint)
//	GET    /configs         the named hardware variants a spec's
//	                        "config" field may reference
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/configs", s.handleConfigs)
}

// configView is one row of GET /configs.
type configView struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Digest      string `json:"digest"`
}

func (s *Service) handleConfigs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var out []configView
	for _, v := range hwconfig.All() {
		out = append(out, configView{Name: v.Name, Description: v.Description, Digest: v.Digest()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Body read hardening: a hard size cap (MaxBytesReader poisons the
	// connection past it, instead of LimitReader silently truncating)
	// plus a read deadline so a stalled upload cannot hold the slot
	// open indefinitely. The deadline is cleared once the body is in so
	// it never bleeds into response writing.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Now().Add(uploadReadTimeout))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	_ = rc.SetReadDeadline(time.Time{})
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", maxUploadBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var spec JobSpec
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/octet-stream") {
		// Raw trace upload; ?name= labels its snapshots.
		spec = JobSpec{Trace: body, TraceName: r.URL.Query().Get("name")}
	} else {
		if len(body) > 0 {
			if err := json.Unmarshal(body, &spec); err != nil {
				httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
				return
			}
		}
		// An empty body is a valid spec: the full default sweep.
	}
	view, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, view)
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the queue is full but the service is healthy.
		w.Header().Set("Retry-After", strconv.Itoa(int(RetryAfter/time.Second)))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDegraded):
		// Load shedding: the service itself is unhealthy (spool I/O
		// failing) — 503, distinct from mere queue pressure.
		w.Header().Set("Retry-After", strconv.Itoa(int(RetryAfter/time.Second)))
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrShutdown):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		httpError(w, http.StatusNotFound, "missing job id")
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		s.handleStatus(w, r, id)
	case sub == "" && r.Method == http.MethodDelete:
		switch err := s.Cancel(id); {
		case err == nil:
			view, _ := s.Job(id)
			writeJSON(w, http.StatusOK, view)
		case errors.Is(err, ErrNotFound):
			httpError(w, http.StatusNotFound, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
	case sub == "result" && r.Method == http.MethodGet:
		res, err := s.Result(id)
		switch {
		case errors.Is(err, ErrNotFound):
			httpError(w, http.StatusNotFound, "%v", err)
		case err != nil:
			httpError(w, http.StatusConflict, "%v", err)
		default:
			// The result body is schema-pinned (gpuchar/metrics/v1), so
			// the effective-spec echo rides response headers instead.
			if view, verr := s.Job(id); verr == nil {
				if view.Config != "" {
					w.Header().Set("X-Gpuchar-Config", view.Config)
					w.Header().Set("X-Gpuchar-Config-Digest", view.ConfigDigest)
				}
				if view.Spec != nil {
					if doc, merr := json.Marshal(view.Spec); merr == nil {
						w.Header().Set("X-Gpuchar-Spec", string(doc))
					}
				}
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Cache-Control", "no-store")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(res)
		}
	default:
		httpError(w, http.StatusNotFound, "no route %s %s", r.Method, r.URL.Path)
	}
}

// handleStatus returns a job view, optionally long-polling completion
// with ?wait=<duration> (capped at 30s; returns the current state on
// expiry rather than an error, so clients just loop).
func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request, id string) {
	if waitS := r.URL.Query().Get("wait"); waitS != "" {
		d, err := time.ParseDuration(waitS)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad wait %q: %v", waitS, err)
			return
		}
		if d > 30*time.Second {
			d = 30 * time.Second
		}
		done, derr := s.Done(id)
		if derr != nil {
			httpError(w, http.StatusNotFound, "%v", derr)
			return
		}
		select {
		case <-done:
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	view, err := s.Job(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}
