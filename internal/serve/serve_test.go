package serve

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"gpuchar/internal/core"
)

// expectedJSON computes the reference result for a spec the way
// `characterize -json` would: a fresh context at the spec's parameters
// with the default parallel fan-out, RunExperiments, WriteJSON.
func expectedJSON(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	spec = spec.normalized()
	c := core.NewContext()
	c.APIFrames = spec.APIFrames
	c.SimFrames = spec.SimFrames
	c.W, c.H = spec.Width, spec.Height
	c.TileWorkers = spec.TileWorkers
	c.Workers = runtime.NumCPU()
	if _, err := core.RunExperiments(c, spec.Experiments); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitJob blocks until the job terminates, with a test-failing timeout.
func waitJob(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	done, err := s.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish", id)
	}
	view, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	return view
}

func shutdownNow(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// serviceCounter reads one serve counter out of the service registry.
func serviceCounter(t *testing.T, s *Service, name string) int64 {
	t.Helper()
	snaps := s.MetricsSnapshots()
	v, ok := snaps[0].Get(name)
	if !ok {
		t.Fatalf("counter %s not in service snapshot", name)
	}
	return v
}

// TestParallelSubmitsByteIdentical is the tentpole acceptance test: N
// clients submit concurrently, every result is byte-identical to the
// single-shot characterize output, and a resubmission after completion
// is served from the cache without re-rendering.
func TestParallelSubmitsByteIdentical(t *testing.T) {
	spec := JobSpec{Experiments: []string{"table3", "fig1"}, APIFrames: 12}
	want := expectedJSON(t, spec)

	s, err := Open(Config{Workers: 4, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	const n = 6
	views := make([]JobView, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if views[i].ID == "" {
			t.Fatal("submission failed")
		}
		final := waitJob(t, s, views[i].ID)
		if final.State != StateDone {
			t.Fatalf("job %s = %s (%s)", final.ID, final.State, final.Error)
		}
		got, err := s.Result(views[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %d result differs from single-shot characterize output", i)
		}
	}

	// Resubmission after completion: instant cache hit, no new frames.
	hitsBefore := serviceCounter(t, s, "serve/cache/hits")
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v.CacheHit || v.State != StateDone {
		t.Errorf("resubmit = %+v, want an instant cache hit", v)
	}
	got, err := s.Result(v.ID)
	if err != nil || !bytes.Equal(got, want) {
		t.Errorf("cached result differs (%v)", err)
	}
	if hits := serviceCounter(t, s, "serve/cache/hits"); hits != hitsBefore+1 {
		t.Errorf("cache hits %d -> %d, want +1", hitsBefore, hits)
	}
}

// TestDistinctSpecsDistinctResults pins that the cache keys do not
// collide across parameters.
func TestDistinctSpecsDistinctResults(t *testing.T) {
	s, err := Open(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	a := JobSpec{Experiments: []string{"table3"}, APIFrames: 8}
	b := JobSpec{Experiments: []string{"table3"}, APIFrames: 16}
	va, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := s.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, va.ID)
	waitJob(t, s, vb.ID)
	ra, _ := s.Result(va.ID)
	rb, _ := s.Result(vb.ID)
	if bytes.Equal(ra, rb) {
		t.Error("different frame counts produced identical documents")
	}
	if !bytes.Equal(ra, expectedJSON(t, a)) || !bytes.Equal(rb, expectedJSON(t, b)) {
		t.Error("results differ from single-shot output")
	}
}

// TestQueueBackpressure pins ErrQueueFull: with one worker stuck and
// the queue at capacity, the next submission is rejected, and distinct
// specs keep distinct identities through it.
func TestQueueBackpressure(t *testing.T) {
	s, err := Open(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	// Large jobs so the worker is busy while we fill the queue.
	mk := func(frames int) JobSpec {
		return JobSpec{Experiments: []string{"fig1"}, APIFrames: frames}
	}
	ids := []string{}
	var full bool
	for i := 0; i < 8; i++ {
		v, err := s.Submit(mk(5000 + i))
		if err == ErrQueueFull {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if !full {
		t.Fatal("queue never filled")
	}
	// 1 running + 1 queued fit; the rest bounced.
	if len(ids) > 2 {
		t.Errorf("%d jobs accepted with QueueDepth 1", len(ids))
	}
	for _, id := range ids {
		if err := s.Cancel(id); err != nil {
			t.Errorf("cancel %s: %v", id, err)
		}
	}
}

// TestCancelQueuedAndRunning pins both cancellation paths.
func TestCancelQueuedAndRunning(t *testing.T) {
	s, err := Open(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	running, err := s.Submit(JobSpec{Experiments: []string{"fig1"}, APIFrames: 100000})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Experiments: []string{"fig1"}, APIFrames: 100001})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first job to actually start.
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := s.Job(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Job(queued.ID); v.State != StateCanceled {
		t.Errorf("queued job = %s, want canceled", v.State)
	}
	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, s, running.ID); v.State != StateCanceled {
		t.Errorf("running job = %s, want canceled", v.State)
	}
	if c := serviceCounter(t, s, "serve/jobs_canceled"); c != 2 {
		t.Errorf("jobs_canceled = %d, want 2", c)
	}
	// A canceled ID stays known but has no result.
	if _, err := s.Result(running.ID); err == nil {
		t.Error("canceled job served a result")
	}
}

// TestSubmitValidation pins spec rejection.
func TestSubmitValidation(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)
	if _, err := s.Submit(JobSpec{Experiments: []string{"nope"}}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := s.Submit(JobSpec{Trace: []byte("not a trace")}); err == nil {
		t.Error("malformed trace accepted")
	}
	if _, err := s.Job("j9999-missing"); err != ErrNotFound {
		t.Errorf("unknown job: %v, want ErrNotFound", err)
	}
}

// TestSubmitAfterShutdown pins ErrShutdown.
func TestSubmitAfterShutdown(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	shutdownNow(t, s)
	if _, err := s.Submit(JobSpec{Experiments: []string{"table3"}}); err != ErrShutdown {
		t.Errorf("submit after shutdown: %v, want ErrShutdown", err)
	}
}
