package serve

import (
	"bytes"
	"context"
	"io"

	"gpuchar/internal/core"
	"gpuchar/internal/explorer"
	"gpuchar/internal/fault"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/metrics"
	"gpuchar/internal/trace"
)

// runJob executes one job to its metrics JSON document. The flow for an
// experiment sweep: render every demo the experiments demand through
// the resumable entry points (splicing in whatever the job's checkpoint
// already holds), seed a single-worker core.Context with the results,
// then run the experiments and export — byte-identical to a one-shot
// `characterize -json` run, because the export reads the same seeded
// cache in the same registry order.
func (s *Service) runJob(ctx context.Context, j *Job) ([]byte, error) {
	if len(j.Spec.Trace) > 0 {
		return s.runTraceJob(ctx, j.Spec)
	}
	spec := j.Spec
	api, micro, err := core.NeededDemos(spec.Experiments)
	if err != nil {
		return nil, err
	}
	ck, err := s.spool.loadCheckpoint(j.ID, j.key)
	if err != nil {
		// An unreadable checkpoint never fails the job: start clean. The
		// read failure still counts toward degraded-mode health.
		s.noteSpool(err)
		ck = nil
	}
	if ck == nil {
		ck = newCheckpoint(j.ID, j.key)
	} else if len(ck.API)+len(ck.Sim) > 0 || ck.Cur != nil {
		s.noteResumed(j)
	}

	cctx := core.NewContext()
	cctx.APIFrames = spec.APIFrames
	cctx.SimFrames = spec.SimFrames
	cctx.W, cctx.H = spec.Width, spec.Height
	cctx.TileWorkers = spec.TileWorkers
	hw := spec.hwVariant()
	cctx.HW = &hw
	cctx.Workers = 1 // everything is pre-seeded; nothing may re-render

	for _, name := range api {
		if done, err := s.seedAPIFromCheckpoint(cctx, j, ck, name); err != nil {
			return nil, err
		} else if done {
			continue
		}
		if err := s.runAPIDemo(ctx, j, ck, cctx, name); err != nil {
			return nil, err
		}
	}
	for _, name := range micro {
		if done, err := s.seedSimFromCheckpoint(cctx, j, ck, name); err != nil {
			return nil, err
		} else if done {
			continue
		}
		if err := s.runSimDemo(ctx, j, ck, cctx, name); err != nil {
			return nil, err
		}
	}

	if _, err := core.RunExperiments(cctx, spec.Experiments); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := cctx.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// seedAPIFromCheckpoint installs a completed API render from the
// checkpoint, reporting whether the demo is fully covered. A corrupt or
// wrong-length entry is dropped and re-rendered.
func (s *Service) seedAPIFromCheckpoint(cctx *core.Context, j *Job, ck *checkpointFile, name string) (bool, error) {
	raw, ok := ck.API[name]
	if !ok {
		return false, nil
	}
	frames, err := decodeAPIFrames(raw)
	if err != nil || len(frames) != j.Spec.APIFrames {
		delete(ck.API, name)
		return false, nil
	}
	prof, err := profileFor(name)
	if err != nil {
		return false, err
	}
	cctx.SeedAPI(name, &core.APIResult{Prof: prof, Frames: frames})
	s.addFrames(j, len(frames), len(frames))
	return true, nil
}

// runAPIDemo renders one API demo resumably, checkpointing every
// CheckpointEvery frames and at cancellation, then seeds the context.
func (s *Service) runAPIDemo(ctx context.Context, j *Job, ck *checkpointFile,
	cctx *core.Context, name string) error {

	prof, err := profileFor(name)
	if err != nil {
		return err
	}
	var start *core.APICheckpoint
	if ck.Cur != nil && ck.Cur.Demo == name {
		if frames, err := decodeAPIFrames(ck.Cur.Frames); err == nil &&
			len(frames) == ck.Cur.Gen.FrameIdx && len(frames) <= j.Spec.APIFrames {
			start = &core.APICheckpoint{Gen: ck.Cur.Gen, Frames: frames}
			s.addFrames(j, len(frames), len(frames))
		}
	}
	ck.Cur = nil

	sinceCkpt := 0
	res, err := core.RunAPIResumable(prof, j.Spec.APIFrames, start, func(c *core.APICheckpoint) error {
		s.addFrames(j, 1, 0)
		sinceCkpt++
		if cerr := ctx.Err(); cerr != nil {
			// Final checkpoint exactly at the kill point: the resumed run
			// loses zero frames. Best effort — the cancellation wins.
			_ = s.persistCur(ck, name, c)
			return cerr
		}
		if s.cfg.CheckpointEvery > 0 && sinceCkpt >= s.cfg.CheckpointEvery &&
			c.Gen.FrameIdx < j.Spec.APIFrames {
			sinceCkpt = 0
			// Checkpoints are best effort: a failed write costs resume
			// coverage, not the render. It feeds degraded-mode health.
			s.noteSpool(s.persistCur(ck, name, c))
		}
		return nil
	})
	if err != nil {
		return err
	}
	raw, err := encodeAPIFrames(res.Frames)
	if err != nil {
		return err
	}
	ck.API[name] = raw
	ck.Cur = nil
	s.noteSpool(s.spool.writeCheckpoint(ck))
	cctx.SeedAPI(name, res)
	return nil
}

// persistCur writes the in-progress render's frame-boundary state.
func (s *Service) persistCur(ck *checkpointFile, demo string, c *core.APICheckpoint) error {
	raw, err := encodeAPIFrames(c.Frames)
	if err != nil {
		return err
	}
	ck.Cur = &curCheckpoint{Demo: demo, Gen: c.Gen, Frames: raw}
	return s.spool.writeCheckpoint(ck)
}

// seedSimFromCheckpoint installs a completed simulated render from the
// checkpoint (simulated demos are stored whole or not at all).
func (s *Service) seedSimFromCheckpoint(cctx *core.Context, j *Job, ck *checkpointFile, name string) (bool, error) {
	raw, ok := ck.Sim[name]
	if !ok {
		return false, nil
	}
	frames, err := decodeSimFrames(raw)
	if err != nil || len(frames) != j.Spec.SimFrames {
		delete(ck.Sim, name)
		return false, nil
	}
	prof, err := profileFor(name)
	if err != nil {
		return false, err
	}
	// The effective resolution may differ from the spec's when the
	// hardware variant pins one (the res-* family).
	cfg := j.Spec.hwVariant().GPUConfig(j.Spec.Width, j.Spec.Height)
	r := &core.MicroResult{Prof: prof, W: cfg.Width, H: cfg.Height, Frames: frames}
	for _, f := range frames {
		r.Agg.Accumulate(f)
	}
	cctx.SeedMicro(name, r)
	s.addFrames(j, len(frames), len(frames))
	return true, nil
}

// runSimDemo simulates one demo with frame-boundary cancellation.
// Warm texture-cache state spans simulated frames, so there is no
// mid-demo checkpoint — the demo lands in the checkpoint only when
// complete, and a cancellation re-simulates it from scratch.
func (s *Service) runSimDemo(ctx context.Context, j *Job, ck *checkpointFile,
	cctx *core.Context, name string) error {

	prof, err := profileFor(name)
	if err != nil {
		return err
	}
	cfg := j.Spec.hwVariant().GPUConfig(j.Spec.Width, j.Spec.Height)
	if cfg.TileWorkers == 0 {
		cfg.TileWorkers = j.Spec.TileWorkers
	}
	// Each frame boundary streams its counter delta (published snapshot
	// vs the previous boundary) to the explorer's SSE hub.
	var prev metrics.Snapshot
	res, err := core.RunMicroObserved(prof, j.Spec.SimFrames, cfg, func(frame int, boundary metrics.Snapshot) error {
		s.addFrames(j, 1, 0)
		if s.cfg.Explorer != nil {
			s.cfg.Explorer.Publish(explorer.FrameEvent(j.ID, name, frame+1, boundary.Diff(prev)))
			prev = boundary
		}
		return ctx.Err()
	})
	if err != nil {
		return err
	}
	raw, err := encodeSimFrames(res.Frames)
	if err != nil {
		return err
	}
	ck.Sim[name] = raw
	s.noteSpool(s.spool.writeCheckpoint(ck))
	cctx.SeedMicro(name, res)
	return nil
}

// runTraceJob replays an uploaded trace against a null backend and
// exports the API-level statistics. Cancellation threads through the
// reader, so a huge stream aborts promptly; the same reader is the
// trace_read injection point (bit flips and truncation must surface as
// the trace package's typed format errors, never a wrong result).
func (s *Service) runTraceJob(ctx context.Context, spec JobSpec) ([]byte, error) {
	var src io.Reader = &ctxReader{ctx: ctx, r: bytes.NewReader(spec.Trace)}
	src = fault.WrapReader(src, s.inj, fault.TraceRead)
	rd, err := trace.NewReader(src)
	if err != nil {
		return nil, err
	}
	dev := gfxapi.NewDevice(rd.API(), gfxapi.NullBackend{})
	p := trace.NewPlayer(dev)
	if _, err := p.Play(rd); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := metrics.WriteJSON(&buf, core.APISnapshotsFor(spec.TraceName, dev.Frames())); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ctxReader aborts reads once its context is done.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}
