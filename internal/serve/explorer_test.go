package serve

import (
	"testing"

	"gpuchar/internal/explorer"
)

// drainEvents empties a subscriber's buffer, counting events by type.
func drainEvents(sub *explorer.Subscriber) map[string]int {
	counts := map[string]int{}
	for {
		select {
		case e := <-sub.C:
			counts[e.Type]++
		default:
			return counts
		}
	}
}

// TestExplorerRecordsJobs wires a registry into the service and pins
// the observability contract end to end: completed jobs land in the
// registry with their config digests, the compare document between two
// differently-configured jobs carries the Snapshot.Diff deltas, the SSE
// hub sees progress/frame/run events, and cache hits are recorded too.
func TestExplorerRecordsJobs(t *testing.T) {
	reg := explorer.NewRegistry(0)
	defer reg.Close()
	s, err := Open(Config{Workers: 2, QueueDepth: 8, Explorer: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	sub := reg.Events().Subscribe(4096)
	defer reg.Events().Unsubscribe(sub)

	specA := JobSpec{Experiments: []string{"table14"}, SimFrames: 1, Width: 128, Height: 96}
	specB := specA
	specB.Config = "no-hz"
	va, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := s.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if fa := waitJob(t, s, va.ID); fa.State != StateDone {
		t.Fatalf("job a = %s (%s)", fa.State, fa.Error)
	}
	if fb := waitJob(t, s, vb.ID); fb.State != StateDone {
		t.Fatalf("job b = %s (%s)", fb.State, fb.Error)
	}

	ra, ok := reg.Get(va.ID)
	if !ok {
		t.Fatal("job a not recorded")
	}
	rb, ok := reg.Get(vb.ID)
	if !ok {
		t.Fatal("job b not recorded")
	}
	if ra.Kind != explorer.KindJob || rb.Kind != explorer.KindJob {
		t.Errorf("kinds = %s/%s", ra.Kind, rb.Kind)
	}
	if ra.ConfigDigest == "" || ra.ConfigDigest == rb.ConfigDigest {
		t.Errorf("config digests not distinct: %q vs %q", ra.ConfigDigest, rb.ConfigDigest)
	}
	if rb.Config != "no-hz" {
		t.Errorf("config = %q, want no-hz", rb.Config)
	}
	if len(ra.Snapshots) == 0 || ra.FinalSnapshot().Len() == 0 {
		t.Error("recorded run carries no snapshots")
	}
	if ra.Started.IsZero() || ra.Finished.Before(ra.Started) {
		t.Errorf("timestamps: started %v finished %v", ra.Started, ra.Finished)
	}

	// The compare document between the two jobs is driven by
	// Snapshot.Diff of their final snapshots — the acceptance pin.
	doc := explorer.Compare(ra, rb)
	diff := rb.FinalSnapshot().Diff(ra.FinalSnapshot())
	if len(doc.Counters) != diff.Len() {
		t.Fatalf("compare counters = %d, want %d", len(doc.Counters), diff.Len())
	}
	for i, c := range diff.Counters() {
		if doc.Counters[i].Name != c.Name || doc.Counters[i].Delta != c.Value() {
			t.Fatalf("counter %d = %+v, want %s %v", i, doc.Counters[i], c.Name, c.Value())
		}
	}
	// no-hz really shows up as a behavioural difference.
	if hz, _ := ra.FinalSnapshot().Get("zst/quads_killed_hz"); hz == 0 {
		t.Error("baseline run killed nothing via HZ; comparison is vacuous")
	}
	if hz, _ := rb.FinalSnapshot().Get("zst/quads_killed_hz"); hz != 0 {
		t.Errorf("no-hz run killed %d quads via HZ", hz)
	}

	counts := drainEvents(sub)
	if counts[explorer.EventProgress] == 0 {
		t.Error("no progress events on the hub")
	}
	if counts[explorer.EventFrame] == 0 {
		t.Error("no frame-boundary events on the hub")
	}
	if counts[explorer.EventRun] < 2 {
		t.Errorf("run events = %d, want >= 2", counts[explorer.EventRun])
	}

	// A cache-hit resubmission is recorded as its own (instant) run.
	before := reg.Len()
	v2, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit {
		t.Fatalf("resubmit = %+v, want a cache hit", v2)
	}
	r2, ok := reg.Get(v2.ID)
	if !ok {
		t.Fatal("cache-hit job not recorded")
	}
	if !r2.CacheHit {
		t.Error("recorded run not flagged as a cache hit")
	}
	if reg.Len() != before+1 {
		t.Errorf("len = %d, want %d", reg.Len(), before+1)
	}
}

// TestExplorerNilRegistryIsOptional pins that the registry is strictly
// observational: a service without one behaves identically.
func TestExplorerNilRegistryIsOptional(t *testing.T) {
	s, err := Open(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)
	v, err := s.Submit(JobSpec{Experiments: []string{"fig1"}, APIFrames: 6})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitJob(t, s, v.ID); final.State != StateDone {
		t.Fatalf("job = %s (%s)", final.State, final.Error)
	}
}
