package serve

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gpuchar/internal/fault"
)

// TestWatchdogReapsHungJob pins the reaper: a worker that ignores its
// expired deadline is abandoned after HangGrace, the job fails with the
// typed ErrJobHung, and the freed worker slot runs the next job to a
// byte-correct completion.
func TestWatchdogReapsHungJob(t *testing.T) {
	spec := JobSpec{Experiments: []string{"table3"}, APIFrames: 4}
	want := expectedJSON(t, spec)
	// One hang: the first job blocks until the injector closes,
	// ignoring its context entirely — exactly what the watchdog is for.
	// JobTimeout is generous enough for the healthy second job; the
	// hung one burns timeout + grace before the reap.
	inj := fault.New(3, fault.Rule{Site: fault.Exec, Kind: fault.Hang, Prob: 1, Count: 1})
	defer inj.Close()
	s, err := Open(Config{
		Workers:    1,
		Inject:     inj,
		JobTimeout: time.Second,
		HangGrace:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	v1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	hung := waitJob(t, s, v1.ID)
	if hung.State != StateFailed || hung.ErrorClass != "hung" {
		t.Fatalf("hung job = %+v; want failed/hung", hung)
	}
	if !strings.Contains(hung.Error, ErrJobHung.Error()) {
		t.Errorf("hung job error %q does not carry ErrJobHung", hung.Error)
	}
	if n := serviceCounter(t, s, "serve/recovered/jobs_reaped"); n != 1 {
		t.Errorf("jobs_reaped = %d; want 1", n)
	}

	// The worker slot survived: the next job completes correctly.
	v2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if final := waitJob(t, s, v2.ID); final.State != StateDone {
		t.Fatalf("job after reap = %+v; want done", final)
	}
	got, err := s.Result(v2.ID)
	if err != nil || !bytes.Equal(got, want) {
		t.Errorf("result after reap differs from clean run (%v)", err)
	}
}

// TestWorkerPanicContained pins panic recovery: an injected panic fails
// only its own job (typed, classified), and the daemon keeps serving.
func TestWorkerPanicContained(t *testing.T) {
	spec := JobSpec{Experiments: []string{"table3"}, APIFrames: 8}
	inj := fault.New(5, fault.Rule{Site: fault.Exec, Kind: fault.Panic, Prob: 1, Count: 1})
	defer inj.Close()
	s, err := Open(Config{Workers: 1, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	v1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	crashed := waitJob(t, s, v1.ID)
	if crashed.State != StateFailed || crashed.ErrorClass != "panic" {
		t.Fatalf("panicked job = %+v; want failed/panic", crashed)
	}
	if n := serviceCounter(t, s, "serve/recovered/worker_panics"); n != 1 {
		t.Errorf("worker_panics = %d; want 1", n)
	}
	v2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if final := waitJob(t, s, v2.ID); final.State != StateDone {
		t.Fatalf("job after panic = %+v; want done", final)
	}
}

// TestInjectedExecErrorTyped pins that a plain injected fault surfaces
// as a typed, classified failure and lands in the per-site metrics.
func TestInjectedExecErrorTyped(t *testing.T) {
	inj := fault.New(9, fault.Rule{Site: fault.Exec, Kind: fault.Err, Prob: 1, Count: 1})
	defer inj.Close()
	s, err := Open(Config{Workers: 1, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	v, err := s.Submit(JobSpec{Experiments: []string{"table3"}, APIFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitJob(t, s, v.ID)
	if failed.State != StateFailed || failed.ErrorClass != "injected" {
		t.Fatalf("job = %+v; want failed/injected", failed)
	}
	if n := serviceCounter(t, s, "serve/faults/exec"); n != 1 {
		t.Errorf("faults/exec = %d; want 1", n)
	}
}

// TestTraceReadFaultTyped pins the trace_read boundary: an I/O fault
// in the replayed stream must fail the job with an error, never hang
// it or produce a silently wrong result.
func TestTraceReadFaultTyped(t *testing.T) {
	raw := recordSmallTrace(t)
	inj := fault.New(11, fault.Rule{Site: fault.TraceRead, Kind: fault.Err, Prob: 1, Count: 1})
	defer inj.Close()
	s, err := Open(Config{Workers: 1, Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	v, err := s.Submit(JobSpec{Trace: raw})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitJob(t, s, v.ID)
	if failed.State != StateFailed {
		t.Fatalf("corrupted replay = %+v; want failed", failed)
	}
	if failed.Error == "" {
		t.Error("corrupted replay failed without an error message")
	}
}

// TestHangGraceAllowsCheckpoint pins the grace window's purpose: a job
// that reacts to cancellation within HangGrace is not reaped.
func TestHangGraceAllowsCheckpoint(t *testing.T) {
	s, err := Open(Config{Workers: 1, HangGrace: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)
	v, err := s.Submit(JobSpec{Experiments: []string{"table3"}, APIFrames: 400})
	if err != nil {
		t.Fatal(err)
	}
	waitFramesAny(t, s, v.ID, 5)
	if err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, s, v.ID)
	if final.State != StateCanceled {
		t.Fatalf("canceled job = %+v; want canceled", final)
	}
	if n := serviceCounter(t, s, "serve/recovered/jobs_reaped"); n != 0 {
		t.Errorf("jobs_reaped = %d for a well-behaved cancel; want 0", n)
	}
}

// waitFramesAny waits until the job reports at least n finished frames.
func waitFramesAny(t *testing.T, s *Service, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.FramesDone >= n || v.State.terminal() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %d frames", id, v.FramesDone)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
