package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gpuchar/internal/fault"
)

// TestSealOpenRoundTrip pins the envelope format: the body round-trips
// byte-identically, a flipped bit fails the checksum, and a foreign
// schema is rejected.
func TestSealOpenRoundTrip(t *testing.T) {
	body := []byte(`{"schema":"gpuchar/job/v1","id":"j0001-aaaa"}`)
	doc, err := seal(JobFileSchema, body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := openSealed(doc, JobFileSchema, jobBodySchema)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("body did not round-trip: %q != %q", got, body)
	}

	// Flip one bit inside the base64 body and the checksum must catch it.
	var env envelope
	if err := json.Unmarshal(doc, &env); err != nil {
		t.Fatal(err)
	}
	env.Body[3] ^= 0x40
	tampered, _ := json.Marshal(env)
	if _, err := openSealed(tampered, JobFileSchema, jobBodySchema); err == nil {
		t.Error("tampered envelope passed its checksum")
	}

	if _, err := openSealed(doc, ResultFileSchema, resultBodySchema); err == nil {
		t.Error("job envelope accepted under the result schema")
	}
}

// TestLegacyBareDocsAccepted pins read-compat with pre-v1.1 spools:
// a bare body document whose own schema field matches the legacy
// schema is accepted verbatim (it carries no checksum to verify).
func TestLegacyBareDocsAccepted(t *testing.T) {
	legacy := []byte(`{"schema":"gpuchar/checkpoint/v1","job_id":"j0001-aaaa","key":"k"}`)
	got, err := openSealed(legacy, CheckpointSchema, checkpointBodySchema)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, legacy) {
		t.Error("legacy document was not returned verbatim")
	}
	// With no legacy schema allowed, the same document is rejected.
	if _, err := openSealed(legacy, CheckpointSchema, ""); err == nil {
		t.Error("bare document accepted with legacy compat disabled")
	}
}

// TestLegacyCheckpointLoads proves an old bare-v1 checkpoint written
// before the envelope existed still resumes.
func TestLegacyCheckpointLoads(t *testing.T) {
	dir := t.TempDir()
	sp := newSpool(dir, nil)
	ck := newCheckpoint("j0001-aaaa", "key1")
	raw, _ := json.Marshal(ck)
	if err := os.WriteFile(sp.ckptPath("j0001-aaaa"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := sp.loadCheckpoint("j0001-aaaa", "key1")
	if err != nil || got == nil {
		t.Fatalf("legacy checkpoint did not load: %+v, %v", got, err)
	}
	if got.JobID != "j0001-aaaa" || got.Key != "key1" {
		t.Errorf("legacy checkpoint fields lost: %+v", got)
	}
}

// TestCorruptResultQuarantinedOnRestart is the quarantine acceptance
// path: a bit-rotted result file is moved aside and counted, never
// served — the restarted service re-renders and the final result is
// byte-identical to a clean run.
func TestCorruptResultQuarantinedOnRestart(t *testing.T) {
	spec := JobSpec{Experiments: []string{"table3"}, APIFrames: 8}
	want := expectedJSON(t, spec)
	dir := t.TempDir()
	cfg := Config{Workers: 1, SpoolDir: dir}

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s1, v.ID)
	shutdownNow(t, s1)

	// Rot one byte mid-file.
	path := filepath.Join(dir, v.ID+".result.json")
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc[len(doc)/2] ^= 0x01
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s2)
	final := waitJob(t, s2, v.ID)
	if final.State != StateDone {
		t.Fatalf("job after quarantine = %+v; want done", final)
	}
	got, err := s2.Result(v.ID)
	if err != nil || !bytes.Equal(got, want) {
		t.Errorf("re-rendered result differs from clean run (%v)", err)
	}
	if n := serviceCounter(t, s2, "serve/recovered/results_quarantined"); n != 1 {
		t.Errorf("results_quarantined = %d; want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", v.ID+".result.json")); err != nil {
		t.Errorf("corrupt result not moved to quarantine: %v", err)
	}
}

// TestCorruptJobFileQuarantined pins the same for submission records:
// scan quarantines a checksum-failing job file and keeps going.
func TestCorruptJobFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	doc, err := seal(JobFileSchema, []byte(`{"schema":"gpuchar/job/v1","id":"j0001-aaaa"}`))
	if err != nil {
		t.Fatal(err)
	}
	doc[len(doc)-10] ^= 0x01
	if err := os.WriteFile(filepath.Join(dir, "j0001-aaaa.job.json"), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{SpoolDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)
	if n := len(s.Jobs()); n != 0 {
		t.Errorf("%d jobs from a corrupt spool file", n)
	}
	if n := serviceCounter(t, s, "serve/recovered/jobs_quarantined"); n != 1 {
		t.Errorf("jobs_quarantined = %d; want 1", n)
	}
}

// TestDegradedShedsLoad drives the spool-failure path: consecutive
// write failures trip load shedding (ErrDegraded, /healthz false), a
// cooldown or a successful write clears it.
func TestDegradedShedsLoad(t *testing.T) {
	spec := JobSpec{Experiments: []string{"table3"}, APIFrames: 4}
	// The deterministic schedule: skip the Open-time MkdirAll (FSWrite
	// op 1), fail exactly the next two writes — the two job files. A
	// Slow exec fault parks the worker so it makes no spool writes of
	// its own during the test window.
	inj := fault.New(7,
		fault.Rule{Site: fault.FSWrite, Kind: fault.Err, Prob: 1, After: 1, Count: 2},
		fault.Rule{Site: fault.Exec, Kind: fault.Slow, Prob: 1, Count: 100, Delay: time.Hour})
	defer inj.Close()
	dir := t.TempDir()
	s, err := Open(Config{
		Workers: 1, SpoolDir: dir,
		FS:            fault.NewFaulty(fault.OS{}, inj),
		DegradedAfter: 2, DegradedFor: 250 * time.Millisecond,
		CheckpointEvery: -1, // keep the worker away from the write budget
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)

	// Two failed job-file writes trip the breaker...
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := s.Submit(JobSpec{Experiments: []string{"fig1"}, APIFrames: 4}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	// ...so the third submission is shed with the typed error.
	if _, err := s.Submit(JobSpec{Experiments: []string{"fig2"}, APIFrames: 4}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit while degraded = %v; want ErrDegraded", err)
	}
	if ok, detail := s.Health(); ok || detail == "ok" {
		t.Errorf("Health() = %v %q while degraded", ok, detail)
	}
	if n := serviceCounter(t, s, "serve/degraded"); n != 1 {
		t.Errorf("degraded gauge = %d; want 1", n)
	}
	if n := serviceCounter(t, s, "serve/jobs_shed"); n != 1 {
		t.Errorf("jobs_shed = %d; want 1", n)
	}

	// The cooldown expires (and the fault rule is exhausted), so the
	// service heals and accepts work again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Submit(JobSpec{Experiments: []string{"fig2"}, APIFrames: 4}); err == nil {
			break
		} else if !errors.Is(err, ErrDegraded) {
			t.Fatalf("submit after cooldown: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("service never recovered from degraded mode")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ok, _ := s.Health(); !ok {
		t.Error("Health() still false after recovery")
	}
}
