package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"gpuchar/internal/fault"
)

// spool owns the on-disk job state. Every byte it writes goes through
// the fault.FS boundary (so chaos runs can fail, tear or crash any
// operation) and through atomicWrite's fsync'd tmp+rename protocol (so
// a real power cut loses at most the newest version of one file, never
// produces a half-file under the final name).
//
// Layout, one trio per job under dir:
//
//	<id>.job.json     the submitted spec (pending-job discovery)
//	<id>.ckpt.json    the latest checkpoint (removed on completion)
//	<id>.result.json  the finished metrics document
//	quarantine/       corrupt files moved aside on load, for autopsy
//
// All three are checksummed envelopes (see seal/openSealed); a file
// that fails its checksum or does not parse is quarantined and counted,
// never trusted and never fatal.
type spool struct {
	dir string
	fs  fault.FS

	// Quarantine/error tallies. Updated atomically from worker
	// goroutines; the Service copies them into its registry-bound
	// counters at snapshot time.
	quarantinedJobs        int64
	quarantinedCheckpoints int64
	quarantinedResults     int64
	writeErrs              int64
}

// newSpool builds the spool; dir may be empty (no persistence — every
// method is then a cheap no-op).
func newSpool(dir string, fsys fault.FS) *spool {
	if fsys == nil {
		fsys = fault.OS{}
	}
	return &spool{dir: dir, fs: fsys}
}

func (sp *spool) enabled() bool { return sp.dir != "" }

func (sp *spool) jobPath(id string) string    { return filepath.Join(sp.dir, id+".job.json") }
func (sp *spool) ckptPath(id string) string   { return filepath.Join(sp.dir, id+".ckpt.json") }
func (sp *spool) resultPath(id string) string { return filepath.Join(sp.dir, id+".result.json") }

// atomicWrite lands data at path durably: write a temp file, fsync it,
// rename over the target, fsync the directory. A kill at any instant
// leaves either the previous file or the new one — and after the
// directory sync, a power cut cannot roll the rename back.
func (sp *spool) atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := sp.fs.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := sp.fs.SyncFile(tmp); err != nil {
		_ = sp.fs.Remove(tmp)
		return err
	}
	if err := sp.fs.Rename(tmp, path); err != nil {
		_ = sp.fs.Remove(tmp)
		return err
	}
	return sp.fs.SyncDir(sp.dir)
}

// writeDoc seals body under schema and writes it atomically, keeping
// the write-error tally.
func (sp *spool) writeDoc(path, schema string, body []byte) error {
	doc, err := seal(schema, body)
	if err == nil {
		err = sp.atomicWrite(path, doc)
	}
	if err != nil {
		atomic.AddInt64(&sp.writeErrs, 1)
	}
	return err
}

// quarantine moves a corrupt file aside and counts it. Best effort: if
// even the move fails (dead disk), the file is left in place — the next
// load will quarantine it again rather than trust it.
func (sp *spool) quarantine(path string, counter *int64) {
	atomic.AddInt64(counter, 1)
	qdir := filepath.Join(sp.dir, "quarantine")
	if err := sp.fs.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	_ = sp.fs.Rename(path, filepath.Join(qdir, filepath.Base(path)))
}

// writeCheckpoint persists ck for its job; a no-op without a spool.
func (sp *spool) writeCheckpoint(ck *checkpointFile) error {
	if !sp.enabled() {
		return nil
	}
	body, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return sp.writeDoc(sp.ckptPath(ck.JobID), CheckpointSchema, body)
}

// loadCheckpoint reads a job's checkpoint. A missing file, a stale key
// or a quarantined corruption all come back as (nil, nil): the job then
// simply starts over. Only I/O-level surprises are errors.
func (sp *spool) loadCheckpoint(id, key string) (*checkpointFile, error) {
	if !sp.enabled() {
		return nil, nil
	}
	path := sp.ckptPath(id)
	doc, err := sp.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	body, err := openSealed(doc, CheckpointSchema, checkpointBodySchema)
	if err != nil {
		sp.quarantine(path, &sp.quarantinedCheckpoints)
		return nil, nil
	}
	var ck checkpointFile
	if err := json.Unmarshal(body, &ck); err != nil || ck.Schema != checkpointBodySchema {
		sp.quarantine(path, &sp.quarantinedCheckpoints)
		return nil, nil
	}
	if ck.Key != key {
		// Stale, not corrupt: written for another spec or code version.
		return nil, nil
	}
	if ck.API == nil {
		ck.API = map[string]json.RawMessage{}
	}
	if ck.Sim == nil {
		ck.Sim = map[string]json.RawMessage{}
	}
	return &ck, nil
}

// writeJob persists a submission record.
func (sp *spool) writeJob(j *Job) error {
	if !sp.enabled() {
		return nil
	}
	body, err := json.Marshal(jobFile{Schema: jobBodySchema, ID: j.ID, Spec: j.Spec})
	if err != nil {
		return err
	}
	return sp.writeDoc(sp.jobPath(j.ID), JobFileSchema, body)
}

// writeResult persists a finished job's metrics document (sealed; the
// raw document is what Result and the cache serve).
func (sp *spool) writeResult(id string, result []byte) error {
	if !sp.enabled() {
		return nil
	}
	return sp.writeDoc(sp.resultPath(id), ResultFileSchema, result)
}

// loadResult reads and verifies a result file; (nil, false) if absent
// or quarantined.
func (sp *spool) loadResult(id string) ([]byte, bool) {
	if !sp.enabled() {
		return nil, false
	}
	path := sp.resultPath(id)
	doc, err := sp.fs.ReadFile(path)
	if err != nil {
		return nil, false
	}
	body, err := openSealed(doc, ResultFileSchema, resultBodySchema)
	if err != nil {
		sp.quarantine(path, &sp.quarantinedResults)
		return nil, false
	}
	return body, true
}

// removeJob deletes every spool file of a job (cancel / failure).
func (sp *spool) removeJob(id string) {
	if !sp.enabled() {
		return
	}
	_ = sp.fs.Remove(sp.jobPath(id))
	_ = sp.fs.Remove(sp.ckptPath(id))
	_ = sp.fs.Remove(sp.resultPath(id))
}

// removeCheckpoint drops just the checkpoint (job finished).
func (sp *spool) removeCheckpoint(id string) {
	if !sp.enabled() {
		return
	}
	_ = sp.fs.Remove(sp.ckptPath(id))
}

// scan rediscovers jobs from the spool: finished jobs come back done
// with their verified results, unfinished ones pending (their
// checkpoints picked up when a worker claims them). Corrupt files are
// quarantined and counted; they never block the scan.
func (sp *spool) scan() ([]*Job, error) {
	if !sp.enabled() {
		return nil, nil
	}
	ents, err := sp.fs.ReadDir(sp.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: spool %s: %w", sp.dir, err)
	}
	var jobs []*Job
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".job.json") {
			continue
		}
		path := filepath.Join(sp.dir, name)
		doc, err := sp.fs.ReadFile(path)
		if err != nil {
			sp.quarantine(path, &sp.quarantinedJobs)
			continue
		}
		body, err := openSealed(doc, JobFileSchema, jobBodySchema)
		if err != nil {
			sp.quarantine(path, &sp.quarantinedJobs)
			continue
		}
		var jf jobFile
		if err := json.Unmarshal(body, &jf); err != nil || jf.Schema != jobBodySchema ||
			jf.ID == "" || jf.ID != strings.TrimSuffix(name, ".job.json") {
			sp.quarantine(path, &sp.quarantinedJobs)
			continue
		}
		spec := jf.Spec.normalized()
		if err := spec.validate(); err != nil {
			sp.quarantine(path, &sp.quarantinedJobs)
			continue
		}
		j := &Job{
			ID:          jf.ID,
			Spec:        spec,
			key:         spec.key(),
			state:       StateQueued,
			framesTotal: spec.framesTotal(),
			done:        make(chan struct{}),
		}
		if res, ok := sp.loadResult(jf.ID); ok {
			j.state = StateDone
			j.result = res
			j.framesDone = j.framesTotal
			close(j.done)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// envelope is the sealed on-disk form of every spool file: the body's
// bytes plus their SHA-256, so torn or bit-rotted files are detected on
// load instead of being trusted to fail json.Unmarshal. The body is
// base64 ([]byte in JSON) rather than embedded JSON so the stored bytes
// round-trip exactly — results must come back byte-identical, and the
// checksum must cover precisely what is served.
type envelope struct {
	Schema string `json:"schema"`
	SHA256 string `json:"sha256"`
	Body   []byte `json:"body"`
}

// seal wraps body in a checksummed envelope under schema.
func seal(schema string, body []byte) ([]byte, error) {
	sum := sha256.Sum256(body)
	return json.Marshal(envelope{Schema: schema, SHA256: hex.EncodeToString(sum[:]), Body: body})
}

// openSealed unwraps and verifies an envelope. A legacySchema (when
// non-empty) accepts a bare pre-v1.1 document whose own top-level
// schema field matches — read-compat for spools written before the
// checksum existed; those carry no checksum to verify.
func openSealed(doc []byte, schema, legacySchema string) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(doc, &env); err != nil {
		return nil, fmt.Errorf("serve: envelope: %w", err)
	}
	switch env.Schema {
	case schema:
		sum := sha256.Sum256(env.Body)
		if hex.EncodeToString(sum[:]) != env.SHA256 {
			return nil, fmt.Errorf("serve: %s: checksum mismatch", schema)
		}
		return env.Body, nil
	case legacySchema:
		if legacySchema != "" {
			return doc, nil
		}
	}
	return nil, fmt.Errorf("serve: schema %q, want %q", env.Schema, schema)
}
