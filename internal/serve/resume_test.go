package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitFrames polls a job until at least n frames completed.
func waitFrames(t *testing.T, s *Service, id string, n int) JobView {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		v, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.FramesDone >= n || v.State.terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %d/%d frames", v.FramesDone, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestKillRestartResumesAPIJob is the acceptance criterion: a daemon
// killed mid-job resumes from its last checkpoint after restart and
// produces a byte-identical final metrics document, without replaying
// the finished frames.
func TestKillRestartResumesAPIJob(t *testing.T) {
	spec := JobSpec{Experiments: []string{"fig1"}, APIFrames: 30}
	want := expectedJSON(t, spec)
	spool := t.TempDir()
	cfg := Config{Workers: 1, SpoolDir: spool, CheckpointEvery: 5}

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it render partway into the sweep (12 demos x 30 frames), then
	// pull the plug.
	mid := waitFrames(t, s1, v.ID, 40)
	if mid.State.terminal() {
		t.Fatalf("job finished before the kill: %+v", mid)
	}
	shutdownNow(t, s1)
	if after, _ := s1.Job(v.ID); after.State != StateQueued {
		t.Fatalf("job after shutdown = %s, want queued for resume", after.State)
	}
	if _, err := os.Stat(filepath.Join(spool, v.ID+".ckpt.json")); err != nil {
		t.Fatalf("no checkpoint on disk after shutdown: %v", err)
	}

	// "Restart the daemon": a new service over the same spool.
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s2)
	final := waitJob(t, s2, v.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job = %s (%s)", final.State, final.Error)
	}
	if final.FramesRestored == 0 {
		t.Error("resume replayed every frame; want restored frames from the checkpoint")
	}
	if final.FramesRestored+36 < mid.FramesDone {
		// The checkpoint interval is 5, plus whole finished demos: the
		// resume may lose at most CheckpointEvery-1 frames of the
		// in-flight demo (and it persists at cancellation, so normally 0).
		t.Errorf("restored only %d of %d pre-kill frames", final.FramesRestored, mid.FramesDone)
	}
	got, err := s2.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed result differs from the uninterrupted single-shot document")
	}
	if c := serviceCounter(t, s2, "serve/jobs_resumed"); c != 1 {
		t.Errorf("jobs_resumed = %d, want 1", c)
	}
	if fr := serviceCounter(t, s2, "serve/frames_restored"); int(fr) != final.FramesRestored {
		t.Errorf("frames_restored counter %d != job view %d", fr, final.FramesRestored)
	}
	// The finished job's checkpoint is gone; its result is durable.
	if _, err := os.Stat(filepath.Join(spool, v.ID+".ckpt.json")); !os.IsNotExist(err) {
		t.Errorf("checkpoint survived completion: %v", err)
	}
	if _, err := os.Stat(filepath.Join(spool, v.ID+".result.json")); err != nil {
		t.Errorf("result not in spool: %v", err)
	}
}

// TestKillRestartResumesSimJob checks demo-granularity resume for
// simulated work: completed sim demos are spliced from the checkpoint,
// not re-simulated, and the final document is byte-identical.
func TestKillRestartResumesSimJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated render in -short mode")
	}
	spec := JobSpec{Experiments: []string{"table7"}, SimFrames: 1, Width: 96, Height: 64}
	want := expectedJSON(t, spec)
	spool := t.TempDir()
	cfg := Config{Workers: 1, SpoolDir: spool}

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Three simulated demos, one frame each: kill after the first lands.
	mid := waitFrames(t, s1, v.ID, 1)
	if mid.State.terminal() {
		t.Fatalf("job finished before the kill: %+v", mid)
	}
	shutdownNow(t, s1)

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s2)
	final := waitJob(t, s2, v.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job = %s (%s)", final.State, final.Error)
	}
	if final.FramesRestored == 0 {
		t.Error("no sim demo restored from the checkpoint")
	}
	got, err := s2.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed sim result differs from the uninterrupted document")
	}
}

// TestRestartRestoresDoneJobsAndCache pins that a restart brings
// finished jobs back as done and re-primes the cache from the spool.
func TestRestartRestoresDoneJobsAndCache(t *testing.T) {
	spec := JobSpec{Experiments: []string{"table3"}, APIFrames: 8}
	spool := t.TempDir()
	cfg := Config{Workers: 1, SpoolDir: spool}

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s1, v.ID)
	want, err := s1.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	shutdownNow(t, s1)

	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s2)
	restored, err := s2.Job(v.ID)
	if err != nil || restored.State != StateDone {
		t.Fatalf("restored job = %+v, %v; want done", restored, err)
	}
	got, err := s2.Result(v.ID)
	if err != nil || !bytes.Equal(got, want) {
		t.Errorf("restored result differs (%v)", err)
	}
	// The cache is warm: the same spec completes instantly as a hit.
	hit, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Error("restarted service missed the cache on a stored result")
	}
	// New IDs keep counting past the restored ones.
	if !strings.HasPrefix(hit.ID, "j0002-") {
		t.Errorf("post-restart ID %s, want sequence to continue at j0002", hit.ID)
	}
}

// TestSpoolIgnoresMalformedFiles pins that junk in the spool does not
// block startup.
func TestSpoolIgnoresMalformedFiles(t *testing.T) {
	spool := t.TempDir()
	if err := os.WriteFile(filepath.Join(spool, "junk.job.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(spool, "x.job.json"),
		[]byte(`{"schema":"wrong/v0","id":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{SpoolDir: spool})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownNow(t, s)
	if n := len(s.Jobs()); n != 0 {
		t.Errorf("%d jobs from malformed spool files", n)
	}
}
