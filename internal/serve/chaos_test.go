package serve

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"gpuchar/internal/fault"
)

// chaosRules derives a deterministic fault schedule from a seed: a
// handful of one-shot rules scattered across the spool and execution
// sites. Prob-1 rules never draw from the shared RNG at decision time,
// so the schedule is reproducible no matter how goroutines interleave.
func chaosRules(r *rand.Rand) []fault.Rule {
	type siteKinds struct {
		site  fault.Site
		kinds []fault.Kind
	}
	menu := []siteKinds{
		{fault.FSWrite, []fault.Kind{fault.Err, fault.Short, fault.Crash}},
		{fault.FSSync, []fault.Kind{fault.Err}},
		{fault.FSRename, []fault.Kind{fault.Err}},
		{fault.FSRead, []fault.Kind{fault.Err, fault.Corrupt, fault.Truncate}},
		{fault.Exec, []fault.Kind{fault.Err, fault.Panic}},
	}
	n := 2 + r.Intn(3)
	rules := make([]fault.Rule, 0, n)
	for i := 0; i < n; i++ {
		m := menu[r.Intn(len(menu))]
		rules = append(rules, fault.Rule{
			Site:  m.site,
			Kind:  m.kinds[r.Intn(len(m.kinds))],
			Prob:  1,
			After: r.Intn(25),
			Count: 1 + r.Intn(2),
		})
	}
	return rules
}

// TestChaosSeededKillRestart is the capstone resilience suite: for each
// seed, derive a fault schedule, run a faulty service through submits
// and a hard kill, then restart clean and demand full recovery — every
// surviving result byte-identical to a fault-free run, every failure a
// classified, typed error, never a wedged daemon or a wrong byte.
func TestChaosSeededKillRestart(t *testing.T) {
	specA := JobSpec{Experiments: []string{"table3"}, APIFrames: 4}
	specB := JobSpec{Experiments: []string{"fig1"}, APIFrames: 4}
	wants := map[string][]byte{
		"table3": expectedJSON(t, specA),
		"fig1":   expectedJSON(t, specB),
	}

	seeds := []int64{1, 7, 42, 1337}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rules := chaosRules(rand.New(rand.NewSource(seed)))
			// The acceptance bar for reproducibility: the same seed must
			// derive the same schedule, run after run.
			if again := chaosRules(rand.New(rand.NewSource(seed))); !reflect.DeepEqual(rules, again) {
				t.Fatalf("seed %d derived two different schedules:\n%+v\n%+v", seed, rules, again)
			}
			t.Logf("schedule: %+v", rules)

			dir := t.TempDir()
			inj := fault.New(seed, rules...)
			s1, err := Open(Config{
				Workers: 2, SpoolDir: dir, CheckpointEvery: 1,
				FS:     fault.NewFaulty(fault.OS{}, inj),
				Inject: inj,
			})
			if err == nil {
				_, errA := s1.Submit(specA)
				_, errB := s1.Submit(specB)
				if errA != nil && errB != nil {
					t.Logf("both submits rejected under faults: %v / %v", errA, errB)
				}
				// Let the chaos play out briefly, then kill mid-flight.
				waitSomeTerminal(s1, 500*time.Millisecond)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				if err := s1.Shutdown(ctx); err != nil {
					t.Fatalf("faulty service failed to shut down: %v", err)
				}
				cancel()
				// Failures observed under injection must be classified.
				for _, v := range s1.Jobs() {
					if v.State == StateFailed && v.ErrorClass == "" {
						t.Errorf("job %s failed without an error class: %q", v.ID, v.Error)
					}
				}
			} else {
				t.Logf("Open failed under faults (restart must cope): %v", err)
			}
			inj.Close()

			// Restart clean on whatever the chaos left behind.
			s2, err := Open(Config{Workers: 2, SpoolDir: dir, CheckpointEvery: 1})
			if err != nil {
				t.Fatalf("clean restart: %v", err)
			}
			defer shutdownNow(t, s2)
			for _, v := range s2.Jobs() {
				final := waitJob(t, s2, v.ID)
				if final.State != StateDone {
					t.Fatalf("restored job %s = %+v; want done on a clean restart", v.ID, final)
				}
				want := wants[final.Experiments[0]]
				got, err := s2.Result(v.ID)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("job %s: surviving result differs from fault-free run (%v)", v.ID, err)
				}
			}
			// The clean service completes both workloads byte-identically.
			for name, spec := range map[string]JobSpec{"table3": specA, "fig1": specB} {
				v, err := s2.Submit(spec)
				if err != nil {
					t.Fatalf("submit %s after restart: %v", name, err)
				}
				if final := waitJob(t, s2, v.ID); final.State != StateDone {
					t.Fatalf("job %s after restart = %+v; want done", name, final)
				}
				got, err := s2.Result(v.ID)
				if err != nil || !bytes.Equal(got, wants[name]) {
					t.Fatalf("%s after restart differs from fault-free run (%v)", name, err)
				}
			}
		})
	}
}

// waitSomeTerminal polls until every job is terminal or the budget
// expires — the chaos run neither needs nor wants a clean finish.
func waitSomeTerminal(s *Service, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		allDone := true
		for _, v := range s.Jobs() {
			if !v.State.terminal() {
				allDone = false
			}
		}
		if allDone {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
