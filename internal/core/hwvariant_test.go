package core

import (
	"bytes"
	"testing"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/hwconfig"
	"gpuchar/internal/workloads"
)

// renderUnder runs a mixed API+micro experiment set under a hardware
// variant (nil = the seed default path) and returns the rendered tables
// plus the metrics JSON export.
func renderUnder(t *testing.T, hw *hwconfig.Variant) (string, string) {
	t.Helper()
	ctx := NewContext()
	ctx.APIFrames = 10
	ctx.SimFrames = 1
	ctx.W, ctx.H = 96, 64
	ctx.HW = hw
	results, err := RunExperiments(ctx, []string{"table2", "table9", "table14"})
	if err != nil {
		t.Fatal(err)
	}
	var tables bytes.Buffer
	for _, res := range results {
		for _, tab := range res.Tables {
			tab.Render(&tables)
		}
	}
	var doc bytes.Buffer
	if err := ctx.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	return tables.String(), doc.String()
}

// TestVariantR520ByteIdentical pins the acceptance criterion: running
// under the named r520 variant is byte-identical to the seed's
// compiled-in default — in the rendered tables and in every exported
// counter.
func TestVariantR520ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	defTables, defDoc := renderUnder(t, nil)
	r520 := hwconfig.MustByName("r520")
	varTables, varDoc := renderUnder(t, &r520)
	if defTables != varTables {
		t.Error("r520 variant tables differ from the default path")
	}
	if defDoc != varDoc {
		t.Error("r520 variant metrics export differs from the default path")
	}
	if defTables == "" {
		t.Error("no tables rendered")
	}
}

// TestVariantCachesOffAblation pins the caches-as-observers property
// behind the caches-off variant: minimum-geometry caches collapse the
// hit rates and move the traffic counters, but the rendered framebuffer
// is byte-identical — caches shape stats, never pixels.
func TestVariantCachesOffAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	const demo, frames, w, h = "Quake4/demo4", 1, 128, 96
	render := func(v hwconfig.Variant) ([]byte, *MicroResult) {
		prof := workloads.ByName(demo)
		cfg := v.GPUConfig(w, h)
		g := gpu.New(cfg)
		dev := gfxapi.NewDevice(prof.API, g)
		wl := workloads.New(prof, dev, w, h)
		if err := wl.Run(frames); err != nil {
			t.Fatal(err)
		}
		return g.Target().Image().Pix, MicroResultFromGPU(prof, g, cfg)
	}
	onPix, on := render(hwconfig.Default())
	offPix, off := render(hwconfig.MustByName("caches-off"))

	if !bytes.Equal(onPix, offPix) {
		t.Fatal("caches-off changed the framebuffer")
	}
	zOn, l0On, _, cOn := on.CacheHitRates()
	zOff, l0Off, _, cOff := off.CacheHitRates()
	if zOff >= zOn || l0Off >= l0On || cOff >= cOn {
		t.Errorf("minimum caches did not lower hit rates: z %.3f->%.3f l0 %.3f->%.3f color %.3f->%.3f",
			zOn, zOff, l0On, l0Off, cOn, cOff)
	}
	mbOn, _, _, _ := on.MemoryProfile()
	mbOff, _, _, _ := off.MemoryProfile()
	if mbOff <= mbOn {
		t.Errorf("minimum caches did not raise memory traffic: %.2f -> %.2f MB/frame", mbOn, mbOff)
	}
}
