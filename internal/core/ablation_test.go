package core

import (
	"testing"

	"gpuchar/internal/gpu"
	"gpuchar/internal/mem"
	"gpuchar/internal/workloads"
)

// runSmall simulates one frame at reduced resolution with a config tweak.
func runSmall(t *testing.T, demo string, tweak func(*gpu.Config)) *MicroResult {
	t.Helper()
	cfg := gpu.R520Config(256, 192)
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := RunMicroConfig(workloads.ByName(demo), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The paper (§III.C): HZ removes a large share of z-killed fragments
// before they consume GDDR bandwidth. Disabling it must push those kills
// into the fine z test and raise z & stencil traffic.
func TestAblationHZ(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	on := runSmall(t, "Doom3/trdemo2", nil)
	off := runSmall(t, "Doom3/trdemo2", func(c *gpu.Config) { c.HZ = false })

	hzOn, zsOn, _, _, _ := on.QuadKillPct()
	hzOff, zsOff, _, _, _ := off.QuadKillPct()
	if hzOff != 0 {
		t.Errorf("HZ kills with HZ off = %v", hzOff)
	}
	if hzOn < 20 {
		t.Errorf("HZ kills only %v%% of quads", hzOn)
	}
	if zsOff < zsOn+hzOn*0.9 {
		t.Errorf("fine z did not absorb HZ kills: on=%v+%v off=%v", hzOn, zsOn, zsOff)
	}
	zOnB := on.Agg.Mem[mem.ClientZStencil].Total()
	zOffB := off.Agg.Mem[mem.ClientZStencil].Total()
	if zOffB <= zOnB {
		t.Errorf("z traffic without HZ (%d) not above with HZ (%d)", zOffB, zOnB)
	}
}

// The paper (§III.E): fast clear + z compression roughly halve the z &
// stencil bandwidth.
func TestAblationZCompression(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	on := runSmall(t, "Quake4/demo4", nil)
	off := runSmall(t, "Quake4/demo4", func(c *gpu.Config) {
		c.ZCompression = false
		c.FastClear = false
	})
	zOn := on.Agg.Mem[mem.ClientZStencil].Total()
	zOff := off.Agg.Mem[mem.ClientZStencil].Total()
	ratio := float64(zOff) / float64(zOn)
	if ratio < 1.7 || ratio > 3.0 {
		t.Errorf("z compression saving ratio = %.2f, want ~2x", ratio)
	}
}

// Color compression only pays off when frame regions stay one color; the
// noise-textured workloads should see little saving, like UT2004 in the
// paper.
func TestAblationColorCompression(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	on := runSmall(t, "UT2004/Primeval", nil)
	off := runSmall(t, "UT2004/Primeval", func(c *gpu.Config) {
		c.ColorCompression = false
	})
	cOn := on.Agg.Mem[mem.ClientColor].Total()
	cOff := off.Agg.Mem[mem.ClientColor].Total()
	ratio := float64(cOff) / float64(cOn)
	if ratio < 1.0 || ratio > 1.6 {
		t.Errorf("UT2004 color compression ratio = %.2f, want ~1 (fails on noise)", ratio)
	}
}

// Vertex cache size: the adjacent-triangle bound of ~2/3 is reached by a
// 16-entry FIFO; a 4-entry cache falls visibly short, a 64-entry one
// gains little — the knee the paper's Figure 5 discussion rests on.
func TestAblationVertexCacheSize(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	rates := map[int]float64{}
	for _, size := range []int{4, 16, 64} {
		r := runSmall(t, "UT2004/Primeval", func(c *gpu.Config) {
			c.VertexCacheSize = size
		})
		rates[size] = r.VertexCacheHitRate()
	}
	if rates[4] >= rates[16] {
		t.Errorf("4-entry (%v) should trail 16-entry (%v)", rates[4], rates[16])
	}
	if rates[16] < 0.60 {
		t.Errorf("16-entry rate = %v, want >= 0.60", rates[16])
	}
	if rates[64]-rates[16] > 0.12 {
		t.Errorf("64-entry gains too much: %v vs %v", rates[64], rates[16])
	}
}

// Resolution scaling: per-pixel ratios (overdraw, kill percentages) stay
// roughly stable across resolutions, which justifies the reduced-frame
// test configuration.
func TestResolutionInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	small := runSmall(t, "UT2004/Primeval", nil)
	big, err := RunMicroConfig(workloads.ByName("UT2004/Primeval"), 1,
		gpu.R520Config(512, 384))
	if err != nil {
		t.Fatal(err)
	}
	odS, _, _, _ := small.Overdraw()
	odB, _, _, _ := big.Overdraw()
	if diff := odS/odB - 1; diff > 0.4 || diff < -0.4 {
		t.Errorf("overdraw varies grossly with resolution: %v vs %v", odS, odB)
	}
}
