package core

import (
	"io"
	"strconv"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/metrics"
	"gpuchar/internal/workloads"
)

// Snapshot labels used by the machine-readable export: every snapshot
// names its demo, its source layer (API replay or GPU simulation) and
// its frame — a 1-based frame number, or LabelAllFrames for the
// whole-run aggregate the tables are computed from.
const (
	LabelDemo   = "demo"
	LabelFrame  = "frame"
	LabelSource = "source"

	// LabelPass marks the per-render-target snapshots of a multi-pass
	// demo (pass=<target name>). Snapshots carrying it are an extra
	// dimension alongside the demo aggregate, never a replacement:
	// consumers keying on (demo, frame="all") must skip them.
	LabelPass = "pass"

	SourceAPI = "api"
	SourceSim = "sim"

	LabelAllFrames = "all"
)

// apiSnapshot converts one API-level frame record into a counter
// snapshot under the "api" namespace.
func apiSnapshot(f gfxapi.FrameStats) metrics.Snapshot {
	r := metrics.NewRegistry()
	f.Register(r, "api")
	return r.Snapshot()
}

// MetricsSnapshots returns the run's counters in machine-readable form:
// the whole-run aggregate (frame="all") followed by one snapshot per
// frame, all labeled with the demo name and source="api".
func (r *APIResult) MetricsSnapshots() []metrics.Snapshot {
	return APISnapshotsFor(r.Prof.Name, r.Frames)
}

// APISnapshotsFor labels a per-frame API record list as an export
// snapshot set under an arbitrary demo name — the shared body behind
// APIResult.MetricsSnapshots and the trace-replay jobs, whose frames
// come from an uploaded stream rather than a registry profile.
func APISnapshotsFor(name string, frames []gfxapi.FrameStats) []metrics.Snapshot {
	out := make([]metrics.Snapshot, 0, len(frames)+1)
	perFrame := make([]metrics.Snapshot, len(frames))
	for i, f := range frames {
		perFrame[i] = apiSnapshot(f)
	}
	agg := metrics.Sum(perFrame...)
	out = append(out, agg.WithLabels(
		LabelDemo, name, LabelSource, SourceAPI, LabelFrame, LabelAllFrames))
	for i, s := range perFrame {
		out = append(out, s.WithLabels(
			LabelDemo, name, LabelSource, SourceAPI,
			LabelFrame, strconv.Itoa(i+1)))
	}
	return out
}

// MetricsSnapshots returns the simulated run's counters: the aggregate
// every table reads (frame="all") followed by the per-frame snapshots,
// labeled with the demo name and source="sim".
func (r *MicroResult) MetricsSnapshots() []metrics.Snapshot {
	out := make([]metrics.Snapshot, 0, len(r.Frames)+len(r.Pass)+1)
	out = append(out, r.Agg.MetricsSnapshot().WithLabels(
		LabelDemo, r.Prof.Name, LabelSource, SourceSim, LabelFrame, LabelAllFrames))
	for i := range r.Frames {
		out = append(out, r.Frames[i].MetricsSnapshot().WithLabels(
			LabelDemo, r.Prof.Name, LabelSource, SourceSim,
			LabelFrame, strconv.Itoa(i+1)))
	}
	// Per-pass snapshots already carry pass=<target>; the demo labels make
	// them addressable alongside the aggregate they were merged into.
	for _, s := range r.Pass {
		out = append(out, s.WithLabels(
			LabelDemo, r.Prof.Name, LabelSource, SourceSim,
			LabelFrame, LabelAllFrames))
	}
	return out
}

// ExportSnapshots collects every counter snapshot the context's cached
// runs produced — API replays first, then simulations, each in Table I
// demo order — so `characterize -json` exports exactly the data its
// tables were computed from, deterministically.
func (c *Context) ExportSnapshots() []metrics.Snapshot {
	c.mu.Lock()
	api := make(map[string]*APIResult, len(c.apiCache))
	for k, v := range c.apiCache {
		api[k] = v
	}
	micro := make(map[string]*MicroResult, len(c.microCache))
	for k, v := range c.microCache {
		micro[k] = v
	}
	c.mu.Unlock()

	var out []metrics.Snapshot
	for _, p := range workloads.All() {
		if r, ok := api[p.Name]; ok {
			out = append(out, r.MetricsSnapshots()...)
		}
	}
	for _, p := range workloads.All() {
		if r, ok := micro[p.Name]; ok {
			out = append(out, r.MetricsSnapshots()...)
		}
	}
	return out
}

// experimentSnapshots collects the export snapshots of exactly the
// demos one experiment demanded — the slice of ExportSnapshots the
// OnExperimentDone hook hands to the explorer registry. Demos whose
// renders failed (keep-going) or were never cached are skipped.
func (c *Context) experimentSnapshots(id string) []metrics.Snapshot {
	wantAPI, wantSim, err := demoDemand([]string{id})
	if err != nil {
		return nil
	}
	c.mu.Lock()
	api := make(map[string]*APIResult, len(wantAPI))
	for _, name := range wantAPI {
		if r, ok := c.apiCache[name]; ok {
			api[name] = r
		}
	}
	micro := make(map[string]*MicroResult, len(wantSim))
	for _, name := range wantSim {
		if r, ok := c.microCache[name]; ok {
			micro[name] = r
		}
	}
	c.mu.Unlock()

	var out []metrics.Snapshot
	for _, p := range workloads.All() {
		if r, ok := api[p.Name]; ok {
			out = append(out, r.MetricsSnapshots()...)
		}
	}
	for _, p := range workloads.All() {
		if r, ok := micro[p.Name]; ok {
			out = append(out, r.MetricsSnapshots()...)
		}
	}
	return out
}

// WriteJSON writes the context's collected snapshots as the
// gpuchar/metrics/v1 JSON document (the `characterize -json` payload).
func (c *Context) WriteJSON(w io.Writer) error {
	return metrics.WriteJSON(w, c.ExportSnapshots())
}
