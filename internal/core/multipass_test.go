package core

import (
	"bytes"
	"reflect"
	"testing"
)

// passExactKeys are the per-pass counters the tile ownership argument
// proves exact at any worker count. Cache hit/miss counters are
// legitimately sharded (they depend on per-worker access interleaving)
// and are excluded, mirroring exactStats for FrameStats.
var passExactKeys = []string{
	"rop/quads_in", "rop/quads_masked", "rop/quads_out", "rop/fragments",
	"zst/quads_in", "zst/quads_killed_hz", "zst/quads_killed", "zst/quads_out",
	"zst/fragments_in", "zst/fragments_out", "zst/z_killed_fragments",
}

// TestMultipassTileParallelDeterminism extends the tentpole guarantee
// to the render-to-texture families: every off-screen pass plus the
// final composite must produce a byte-identical backbuffer and
// identical order-exact kill counts at 1, 4 and 8 tile workers. The
// backbuffer comparison transitively pins the off-screen surfaces too,
// since the composite pass samples each resolved target.
func TestMultipassTileParallelDeterminism(t *testing.T) {
	const frames, w, h = 2, 128, 96
	for _, demo := range ModernDemos {
		t.Run(demo, func(t *testing.T) {
			ref := runGPUWorkers(t, demo, 1, frames, w, h)
			refImg := ref.Target().Image().Pix
			refPass := ref.PassSnapshots()
			if len(refPass) == 0 {
				t.Fatal("no off-screen pass snapshots — demo never left the backbuffer")
			}
			for _, n := range []int{4, 8} {
				g := runGPUWorkers(t, demo, n, frames, w, h)
				if img := g.Target().Image().Pix; !bytes.Equal(img, refImg) {
					t.Errorf("workers=%d: framebuffer differs from serial render", n)
				}
				if len(g.Frames()) != len(ref.Frames()) {
					t.Fatalf("workers=%d: %d frames, want %d", n, len(g.Frames()), len(ref.Frames()))
				}
				for i := range ref.Frames() {
					got, want := exactStats(g.Frames()[i]), exactStats(ref.Frames()[i])
					if !reflect.DeepEqual(got, want) {
						t.Errorf("workers=%d frame %d: order-exact stats differ:\ngot  %+v\nwant %+v",
							n, i, got, want)
					}
				}
				pass := g.PassSnapshots()
				if len(pass) != len(refPass) {
					t.Fatalf("workers=%d: %d pass snapshots, want %d", n, len(pass), len(refPass))
				}
				for i, ps := range pass {
					if name, want := ps.Label("pass"), refPass[i].Label("pass"); name != want {
						t.Errorf("workers=%d: pass %d named %q, want %q", n, i, name, want)
						continue
					}
					for _, key := range passExactKeys {
						got, _ := ps.Get(key)
						want, _ := refPass[i].Get(key)
						if got != want {
							t.Errorf("workers=%d pass %q: %s = %d, want %d",
								n, ps.Label("pass"), key, got, want)
						}
					}
				}
			}
		})
	}
}
