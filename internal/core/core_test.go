package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gpuchar/internal/workloads"
)

func TestPaperDataComplete(t *testing.T) {
	// Every registry demo has a PaperAPI row; all simulated demos have a
	// PaperMicro row.
	for _, p := range workloads.Registry() {
		if _, ok := PaperAPI[p.Name]; !ok {
			t.Errorf("missing PaperAPI row for %s", p.Name)
		}
	}
	for _, name := range SimDemos {
		if _, ok := PaperMicro[name]; !ok {
			t.Errorf("missing PaperMicro row for %s", name)
		}
		if workloads.ByName(name) == nil || !workloads.ByName(name).Simulated {
			t.Errorf("%s not marked simulated", name)
		}
	}
	// Table XVI splits sum to ~100%.
	for name, row := range PaperMicro {
		sum := 0.0
		for _, v := range row.Split {
			sum += v
		}
		if math.Abs(sum-100) > 0.5 {
			t.Errorf("%s split sums to %v", name, sum)
		}
	}
	// Table III cross-check: primitives = indices/3 for pure TL demos.
	for name, row := range PaperAPI {
		if row.TLPct == 100 {
			want := row.IdxPerFrame / 3
			if math.Abs(want-row.PrimsPerFrame) > 1 {
				t.Errorf("%s prims %v != idx/3 %v", name, row.PrimsPerFrame, want)
			}
		}
	}
}

func TestRunAPIMatchesPaper(t *testing.T) {
	prof := workloads.ByName("Quake4/demo4")
	r, err := RunAPI(prof, 100)
	if err != nil {
		t.Fatal(err)
	}
	ref := PaperAPI[prof.Name]
	if got := r.AvgIndicesPerFrame(); math.Abs(got-ref.IdxPerFrame)/ref.IdxPerFrame > 0.1 {
		t.Errorf("idx/frame = %v, want ~%v", got, ref.IdxPerFrame)
	}
	if got := r.AvgVSInstr(0, 0); math.Abs(got-ref.VSInstr) > 0.3 {
		t.Errorf("VS instr = %v, want %v", got, ref.VSInstr)
	}
	if got := r.AvgFSInstr(); math.Abs(got-ref.FSInstr) > 0.3 {
		t.Errorf("FS instr = %v, want %v", got, ref.FSInstr)
	}
	if got := r.ALUTexRatio(); math.Abs(got-ref.Ratio) > 0.25 {
		t.Errorf("ALU/Tex = %v, want %v", got, ref.Ratio)
	}
	// Index BW projection is under 1 GB/s, the paper's headline point.
	if bw := r.IndexBWAt100FPS(); bw <= 0 || bw > 1024 {
		t.Errorf("index BW = %v MB/s", bw)
	}
	// Series lengths match frame count.
	if r.BatchesSeries().Len() != 100 || r.StateCallsSeries().Len() != 100 {
		t.Error("series lengths wrong")
	}
}

func TestRunMicroSmall(t *testing.T) {
	// A reduced-resolution run exercises every derived metric cheaply.
	prof := workloads.ByName("UT2004/Primeval")
	r, err := RunMicro(prof, 2, 256, 192)
	if err != nil {
		t.Fatal(err)
	}
	clip, cull, trav := r.ClipCullPct()
	if math.Abs(clip+cull+trav-100) > 0.1 {
		t.Errorf("clip+cull+trav = %v", clip+cull+trav)
	}
	// Table VII shape survives even at reduced resolution.
	if math.Abs(clip-30) > 4 || math.Abs(cull-21) > 4 {
		t.Errorf("clip/cull = %v/%v, want ~30/21", clip, cull)
	}
	or, oz, os, ob := r.Overdraw()
	if or < oz || os < ob {
		t.Errorf("overdraw ordering broken: %v %v %v %v", or, oz, os, ob)
	}
	if or < 5 || or > 14 {
		t.Errorf("raster overdraw = %v, want UT-like ~9", or)
	}
	hz, zs, alpha, mask, blend := r.QuadKillPct()
	if sum := hz + zs + alpha + mask + blend; math.Abs(sum-100) > 1.5 {
		t.Errorf("quad buckets sum to %v", sum)
	}
	if hr := r.VertexCacheHitRate(); hr < 0.55 || hr > 0.85 {
		t.Errorf("vcache = %v", hr)
	}
	if b := r.BilinearPerRequest(); b < 2 || b > 8 {
		t.Errorf("bilinear/request = %v", b)
	}
	z, l0, _, color := r.CacheHitRates()
	if z < 80 || l0 < 80 || color < 80 {
		t.Errorf("cache hit rates = %v/%v/%v", z, l0, color)
	}
	mb, rd, wr, gbs := r.MemoryProfile()
	if mb <= 0 || gbs <= 0 || math.Abs(rd+wr-100) > 0.1 {
		t.Errorf("memory profile = %v %v %v %v", mb, rd, wr, gbs)
	}
	split := r.TrafficSplit()
	sum := 0.0
	for _, v := range split {
		sum += v
	}
	if math.Abs(sum-100) > 0.5 {
		t.Errorf("traffic split sums to %v", sum)
	}
	v, zb, sh, col := r.BytesPer()
	if v <= 0 || zb <= 0 || sh <= 0 || col <= 0 {
		t.Errorf("bytes per = %v %v %v %v", v, zb, sh, col)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 25 {
		t.Fatalf("experiments = %d, want 25 (18 tables + 7 figures)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil {
			t.Errorf("%s has no runner", e.ID)
		}
	}
	for _, id := range []string{"table1", "table17", "fig1", "fig8"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if ByID("table7") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}

func TestStaticExperiments(t *testing.T) {
	// Table 1, 2, 6 need no workload runs.
	ctx := NewContext()
	for _, id := range []string{"table1", "table2", "table6"} {
		res, err := ByID(id).Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) != 1 || len(res.Tables[0].Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
	// Table 1 lists all twelve demos.
	res, _ := ByID("table1").Run(ctx)
	if len(res.Tables[0].Rows) != 12 {
		t.Errorf("table1 rows = %d", len(res.Tables[0].Rows))
	}
}

func TestAPIExperimentsRender(t *testing.T) {
	ctx := NewContext()
	ctx.APIFrames = 30
	for _, id := range []string{"table3", "table4", "table5", "table12",
		"fig1", "fig2", "fig3", "fig8"} {
		res, err := ByID(id).Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		for _, tb := range res.Tables {
			tb.Render(&buf)
			tb.Markdown(&buf)
		}
		for _, fg := range res.Figures {
			fg.Summary(&buf)
			fg.RenderCSV(&buf)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", id)
		}
		if !strings.Contains(strings.ToUpper(buf.String()), strings.ToUpper(id)) {
			t.Errorf("%s output missing its id", id)
		}
	}
}

func TestMicroExperimentsRenderSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("micro experiments are slow")
	}
	ctx := NewContext()
	ctx.W, ctx.H = 256, 192
	ctx.SimFrames = 1
	for _, id := range []string{"table7", "table9", "table10", "table11",
		"table13", "table14", "table15", "table16", "table17",
		"fig5", "fig6", "fig7"} {
		res, err := ByID(id).Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		for _, tb := range res.Tables {
			tb.Render(&buf)
		}
		for _, fg := range res.Figures {
			fg.Summary(&buf)
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", id)
		}
	}
}
