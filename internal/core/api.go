package core

import (
	"fmt"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/stats"
	"gpuchar/internal/workloads"
)

// APIResult is the API-level characterization of one demo: the per-frame
// records plus derived averages matching the paper's Tables III, IV, V
// and XII and Figures 1-3 and 8.
type APIResult struct {
	Prof   *workloads.Profile
	Frames []gfxapi.FrameStats
}

// RunAPI renders frames of the demo against a null backend, collecting
// API statistics only — the equivalent of replaying a captured trace
// through the paper's statistics gatherer.
func RunAPI(prof *workloads.Profile, frames int) (*APIResult, error) {
	return runAPIHooked(prof, frames, nil)
}

// runAPIHooked is RunAPI plus an optional per-frame completion
// callback, the Context's instrumented path.
func runAPIHooked(prof *workloads.Profile, frames int, onFrame func(frame int)) (*APIResult, error) {
	if prof == nil {
		return nil, fmt.Errorf("core: nil profile")
	}
	dev := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
	wl := workloads.New(prof, dev, 1024, 768)
	wl.OnFrame = onFrame
	// Scale two-region demos so short runs sample both regions.
	wl.SetRegionBoundary(frames / 2)
	if err := runGuarded(prof.Name, dev, wl, frames); err != nil {
		return nil, err
	}
	return &APIResult{Prof: prof, Frames: dev.Frames()}, nil
}

// AvgIndicesPerFrame returns the Table III indices-per-frame average.
func (r *APIResult) AvgIndicesPerFrame() float64 {
	var m stats.Mean
	for _, f := range r.Frames {
		m.Add(float64(f.Indices))
	}
	return m.Value()
}

// AvgIndicesPerBatch returns the Table III indices-per-batch average.
func (r *APIResult) AvgIndicesPerBatch() float64 {
	var idx, batches int64
	for _, f := range r.Frames {
		idx += f.Indices
		batches += f.Batches
	}
	if batches == 0 {
		return 0
	}
	return float64(idx) / float64(batches)
}

// IndexBWAt100FPS returns the Table III bandwidth projection in MB/s.
func (r *APIResult) IndexBWAt100FPS() float64 {
	var m stats.Mean
	for _, f := range r.Frames {
		m.Add(float64(f.IndexBytes))
	}
	return m.Value() * 100 / (1024 * 1024)
}

// AvgVSInstr returns the Table IV vertex shader instruction average over
// the full run (or the [from,to) frame region for Oblivion's split).
func (r *APIResult) AvgVSInstr(from, to int) float64 {
	if to <= 0 || to > len(r.Frames) {
		to = len(r.Frames)
	}
	var wsum, w float64
	for _, f := range r.Frames[from:to] {
		wsum += f.VSInstrWeighted
		w += f.WeightVertices
	}
	if w == 0 {
		return 0
	}
	return wsum / w
}

// AvgFSInstr returns the Table XII fragment program instruction average.
func (r *APIResult) AvgFSInstr() float64 {
	var wsum, w float64
	for _, f := range r.Frames {
		wsum += f.FSInstrWeighted
		w += f.WeightVertices
	}
	if w == 0 {
		return 0
	}
	return wsum / w
}

// AvgFSTex returns the Table XII texture instruction average.
func (r *APIResult) AvgFSTex() float64 {
	var wsum, w float64
	for _, f := range r.Frames {
		wsum += f.FSTexWeighted
		w += f.WeightVertices
	}
	if w == 0 {
		return 0
	}
	return wsum / w
}

// ALUTexRatio returns the Table XII (total-tex)/tex balance ratio.
func (r *APIResult) ALUTexRatio() float64 {
	tex := r.AvgFSTex()
	if tex == 0 {
		return 0
	}
	return (r.AvgFSInstr() - tex) / tex
}

// PrimMixPct returns the Table V per-primitive index share in percent.
func (r *APIResult) PrimMixPct() [3]float64 {
	var byPrim [3]int64
	var total int64
	for _, f := range r.Frames {
		for i := 0; i < 3; i++ {
			byPrim[i] += f.IndicesByPrim[i]
			total += f.IndicesByPrim[i]
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = 100 * stats.Ratio(byPrim[i], total)
	}
	return out
}

// AvgPrimitives returns the Table V primitives-per-frame average.
func (r *APIResult) AvgPrimitives() float64 {
	var m stats.Mean
	for _, f := range r.Frames {
		m.Add(float64(f.Primitives))
	}
	return m.Value()
}

// BatchesSeries returns the Figure 1 per-frame batch counts.
func (r *APIResult) BatchesSeries() *stats.Series {
	s := stats.NewSeries(r.Prof.Name)
	for _, f := range r.Frames {
		s.Append(float64(f.Batches))
	}
	return s
}

// IndexMBSeries returns the Figure 2 per-frame index megabytes.
func (r *APIResult) IndexMBSeries() *stats.Series {
	s := stats.NewSeries(r.Prof.Name)
	for _, f := range r.Frames {
		s.Append(float64(f.IndexBytes) / (1024 * 1024))
	}
	return s
}

// StateCallsSeries returns the Figure 3 per-frame state call counts.
func (r *APIResult) StateCallsSeries() *stats.Series {
	s := stats.NewSeries(r.Prof.Name)
	for _, f := range r.Frames {
		s.Append(float64(f.StateCalls))
	}
	return s
}

// FSInstrSeries returns the Figure 8 per-frame fragment instruction
// averages; the companion texture series comes from FSTexSeries.
func (r *APIResult) FSInstrSeries() *stats.Series {
	s := stats.NewSeries(r.Prof.Name + " instructions")
	for _, f := range r.Frames {
		s.Append(f.AvgFSInstr())
	}
	return s
}

// FSTexSeries returns the Figure 8 per-frame texture instruction
// averages.
func (r *APIResult) FSTexSeries() *stats.Series {
	s := stats.NewSeries(r.Prof.Name + " texture")
	for _, f := range r.Frames {
		s.Append(f.AvgFSTex())
	}
	return s
}
