package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// renderTables renders every table of every non-nil result to text.
func renderTables(results []*Result) string {
	var b bytes.Buffer
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, t := range res.Tables {
			t.Render(&b)
		}
	}
	return b.String()
}

// dropLines removes the lines mentioning substr.
func dropLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// normalize strips the width-dependent table padding (dropping the
// longest demo name narrows every column) so comparisons see only the
// cell contents.
func normalize(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Trim(line, "- ") == "" {
			continue // column-width separator rule
		}
		fields := strings.Split(line, "|")
		for i := range fields {
			fields[i] = strings.TrimSpace(fields[i])
		}
		out = append(out, strings.Join(fields, "|"))
	}
	return strings.Join(out, "\n")
}

// TestKeepGoingPoisonedDemo is the fault-isolation acceptance test: with
// one demo's render deliberately panicking, a keep-going parallel sweep
// must still emit every other demo's rows byte-identical to a clean run
// and report the casualty with its name and crash position.
func TestKeepGoingPoisonedDemo(t *testing.T) {
	const poisoned = "Doom3/trdemo1"
	ids := []string{"table3", "table5", "table12"}

	clean := NewContext()
	clean.APIFrames = 8
	cleanRes, err := RunExperiments(clean, ids)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	setTestRenderHook(func(demo string) {
		if demo == poisoned {
			panic("poisoned for test")
		}
	})
	defer setTestRenderHook(nil)

	ctx := NewContext()
	ctx.APIFrames = 8
	ctx.KeepGoing = true
	ctx.Workers = 4
	gotRes, err := RunExperiments(ctx, ids)
	if err == nil {
		t.Fatal("poisoned keep-going run returned no error")
	}
	var errs ExperimentErrors
	if !errors.As(err, &errs) {
		t.Fatalf("error is %T, want ExperimentErrors", err)
	}
	if len(errs) != 1 || errs[0].Demo != poisoned {
		t.Fatalf("errs = %v, want one failure for %s", errs, poisoned)
	}
	msg := errs.Error()
	if !strings.Contains(msg, poisoned) || !strings.Contains(msg, "panic at frame") {
		t.Errorf("failure report %q lacks demo name or crash position", msg)
	}

	want := normalize(dropLines(renderTables(cleanRes), poisoned))
	got := normalize(renderTables(gotRes))
	if got != want {
		t.Errorf("surviving rows differ from clean run:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestKeepGoingPoisonedSimDemo checks the same isolation on the
// simulated path, where the poisoned demo feeds a Micro experiment.
func TestKeepGoingPoisonedSimDemo(t *testing.T) {
	const poisoned = "UT2004/Primeval"
	ids := []string{"table7"}

	clean := NewContext()
	clean.SimFrames = 1
	clean.W, clean.H = 256, 192
	cleanRes, err := RunExperiments(clean, ids)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	setTestRenderHook(func(demo string) {
		if demo == poisoned {
			panic("poisoned for test")
		}
	})
	defer setTestRenderHook(nil)

	ctx := NewContext()
	ctx.SimFrames = 1
	ctx.W, ctx.H = 256, 192
	ctx.KeepGoing = true
	ctx.Workers = 3
	gotRes, err := RunExperiments(ctx, ids)
	var errs ExperimentErrors
	if !errors.As(err, &errs) {
		t.Fatalf("error is %T (%v), want ExperimentErrors", err, err)
	}
	if len(errs) != 1 || errs[0].Demo != poisoned {
		t.Fatalf("errs = %v, want one failure for %s", errs, poisoned)
	}
	want := normalize(dropLines(renderTables(cleanRes), poisoned))
	if got := normalize(renderTables(gotRes)); got != want {
		t.Errorf("surviving rows differ from clean run:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestStrictAbortsOnPoisonedDemo pins the default behaviour: without
// KeepGoing the first failure aborts with an *ExperimentError.
func TestStrictAbortsOnPoisonedDemo(t *testing.T) {
	const poisoned = "UT2004/Primeval"
	setTestRenderHook(func(demo string) {
		if demo == poisoned {
			panic("poisoned for test")
		}
	})
	defer setTestRenderHook(nil)

	ctx := NewContext()
	ctx.APIFrames = 4
	res, err := RunExperiments(ctx, []string{"table3"})
	if err == nil {
		t.Fatal("strict run returned no error")
	}
	var ee *ExperimentError
	if !errors.As(err, &ee) || ee.ID != "table3" {
		t.Fatalf("error = %v, want *ExperimentError for table3", err)
	}
	if res != nil {
		t.Errorf("strict failure returned partial results")
	}
}

// TestExperimentDeadline checks the per-experiment watchdog: a render
// hook stalls the sweep far past the configured deadline.
func TestExperimentDeadline(t *testing.T) {
	setTestRenderHook(func(string) { time.Sleep(200 * time.Millisecond) })
	defer setTestRenderHook(nil)

	ctx := NewContext()
	ctx.APIFrames = 4
	ctx.Deadline = 5 * time.Millisecond
	ctx.KeepGoing = true
	res, err := RunExperiments(ctx, []string{"table3"})
	var errs ExperimentErrors
	if !errors.As(err, &errs) || len(errs) != 1 {
		t.Fatalf("err = %v, want one deadline failure", err)
	}
	if !strings.Contains(errs[0].Error(), "deadline") {
		t.Errorf("error %q does not mention the deadline", errs[0])
	}
	if len(res) != 1 || res[0] != nil {
		t.Errorf("results = %v, want one nil slot", res)
	}
}
