package core

import (
	"fmt"
	"strings"
)

// ExperimentError records one failure inside an experiment sweep: either
// an experiment that could not run (ID set) or a demo render that failed
// and was dropped from every table that wanted it (Demo set). A failed
// demo surfaces once, not once per experiment that referenced it.
type ExperimentError struct {
	// ID is the experiment ("table7", "fig5"), empty for demo failures.
	ID string
	// Demo is the Table I demo name, empty for experiment failures.
	Demo string
	// Err is the underlying failure. Panics recovered at the render or
	// experiment boundary arrive here as errors carrying the position
	// (frame and batch, or command index and byte offset) of the crash.
	Err error
}

// Error renders the failure with its experiment and/or demo context.
func (e *ExperimentError) Error() string {
	switch {
	case e.ID != "" && e.Demo != "":
		return fmt.Sprintf("core: %s: demo %s: %v", e.ID, e.Demo, e.Err)
	case e.Demo != "":
		return fmt.Sprintf("core: demo %s: %v", e.Demo, e.Err)
	default:
		return fmt.Sprintf("core: %s: %v", e.ID, e.Err)
	}
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *ExperimentError) Unwrap() error { return e.Err }

// ExperimentErrors aggregates every failure of a keep-going sweep. It is
// returned alongside the partial results, so callers can render what
// succeeded and report what did not.
type ExperimentErrors []*ExperimentError

// Error renders one line per failure.
func (es ExperimentErrors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "core: %d failures:", len(es))
	for _, e := range es {
		b.WriteString("\n  ")
		b.WriteString(e.Error())
	}
	return b.String()
}
