package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/trace"
	"gpuchar/internal/workloads"
)

// TestCharacterizeGolden pins the default `characterize` text output
// byte-for-byte against a snapshot taken before the metrics-registry
// refactor: the counter model underneath the tables may change shape,
// but the numbers the paper reproduction reports must not move. The
// render loop below mirrors cmd/characterize's exactly (table, blank
// line, figure summary, blank line).
func TestCharacterizeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "characterize_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext()
	ctx.APIFrames = 40
	ctx.SimFrames = 1
	ctx.W, ctx.H = 256, 192
	ctx.Workers = 4

	var buf bytes.Buffer
	for _, e := range Experiments() {
		res, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		for _, tb := range res.Tables {
			tb.Render(&buf)
			fmt.Fprintln(&buf)
		}
		for _, f := range res.Figures {
			f.Summary(&buf)
			fmt.Fprintln(&buf)
		}
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(filepath.Join("testdata", "characterize_golden.txt"),
			buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden file rewritten")
		return
	}

	if !bytes.Equal(buf.Bytes(), want) {
		gotPath := filepath.Join(t.TempDir(), "got.txt")
		os.WriteFile(gotPath, buf.Bytes(), 0o644)
		gl, wl := bytes.Split(buf.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("output diverges from golden at line %d:\n got: %s\nwant: %s\n(full output at %s)",
					i+1, gl[i], wl[i], gotPath)
			}
		}
		t.Fatalf("output length differs from golden: got %d lines, want %d (full output at %s)",
			len(gl), len(wl), gotPath)
	}
}

// recordTrace runs a demo against a null backend with a recorder
// attached and returns the encoded trace bytes.
func recordTrace(t *testing.T, demo string, frames int) []byte {
	t.Helper()
	prof := workloads.ByName(demo)
	if prof == nil {
		t.Fatalf("unknown demo %q", demo)
	}
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf, prof.API)
	if err != nil {
		t.Fatal(err)
	}
	dev := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
	dev.SetRecorder(rec)
	wl := workloads.New(prof, dev, 256, 192)
	if err := wl.Run(frames); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestForwardTraceUntouchedByRTOps is the golden guard for the trace
// format side of the multi-pass subsystem: a forward-rendered demo's
// trace must contain none of the render-target op codes — the new ops
// ride on unused code points, and forward streams are provably
// byte-compatible with pre-multipass readers. The multipass families
// must use all three, so the guard cannot pass vacuously.
func TestForwardTraceUntouchedByRTOps(t *testing.T) {
	rtOps := func(data []byte) map[gfxapi.Op]int {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		hist := map[gfxapi.Op]int{}
		for {
			cmd, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			switch cmd.Op {
			case gfxapi.OpCreateRT, gfxapi.OpSetRT, gfxapi.OpResolveTex:
				hist[cmd.Op]++
			}
		}
		return hist
	}
	for _, demo := range []string{"Quake4/demo4", "UT2004/Primeval"} {
		if hist := rtOps(recordTrace(t, demo, 2)); len(hist) != 0 {
			t.Errorf("%s: forward-only trace carries RT ops: %v", demo, hist)
		}
	}
	for _, demo := range ModernDemos {
		hist := rtOps(recordTrace(t, demo, 2))
		for _, op := range []gfxapi.Op{gfxapi.OpCreateRT, gfxapi.OpSetRT, gfxapi.OpResolveTex} {
			if hist[op] == 0 {
				t.Errorf("%s: multipass trace never used %v", demo, op)
			}
		}
	}
}
