package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCharacterizeGolden pins the default `characterize` text output
// byte-for-byte against a snapshot taken before the metrics-registry
// refactor: the counter model underneath the tables may change shape,
// but the numbers the paper reproduction reports must not move. The
// render loop below mirrors cmd/characterize's exactly (table, blank
// line, figure summary, blank line).
func TestCharacterizeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "characterize_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}

	ctx := NewContext()
	ctx.APIFrames = 40
	ctx.SimFrames = 1
	ctx.W, ctx.H = 256, 192
	ctx.Workers = 4

	var buf bytes.Buffer
	for _, e := range Experiments() {
		res, err := e.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		for _, tb := range res.Tables {
			tb.Render(&buf)
			fmt.Fprintln(&buf)
		}
		for _, f := range res.Figures {
			f.Summary(&buf)
			fmt.Fprintln(&buf)
		}
	}

	if !bytes.Equal(buf.Bytes(), want) {
		gotPath := filepath.Join(t.TempDir(), "got.txt")
		os.WriteFile(gotPath, buf.Bytes(), 0o644)
		gl, wl := bytes.Split(buf.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("output diverges from golden at line %d:\n got: %s\nwant: %s\n(full output at %s)",
					i+1, gl[i], wl[i], gotPath)
			}
		}
		t.Fatalf("output length differs from golden: got %d lines, want %d (full output at %s)",
			len(gl), len(wl), gotPath)
	}
}
