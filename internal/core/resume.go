package core

import (
	"fmt"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/metrics"
	"gpuchar/internal/workloads"
)

// APICheckpoint is the resumable state of one API-level render at a
// frame boundary: the generator state plus every frame produced so far.
// The serve layer persists it so a killed daemon can pick a job back up
// without replaying the finished frames; TestRunAPIResumableResume pins
// that the spliced run is bit-identical to a continuous one.
type APICheckpoint struct {
	Gen    workloads.GenState
	Frames []gfxapi.FrameStats
}

// RunAPIResumable renders an API-level demo like RunAPI, but frame by
// frame: after each frame onFrame (if non-nil) receives the current
// checkpoint, and a non-nil return aborts the render with that error —
// the cancellation point the job scheduler uses. A non-nil start
// checkpoint skips its completed frames: the workload is Setup fresh
// (scene content is a deterministic function of the profile), the
// generator state restored, the duplicate setup burst dropped, and
// rendering continues at frame start.Gen.FrameIdx.
func RunAPIResumable(prof *workloads.Profile, frames int,
	start *APICheckpoint, onFrame func(ck *APICheckpoint) error) (*APIResult, error) {

	if prof == nil {
		return nil, fmt.Errorf("core: nil profile")
	}
	dev := gfxapi.NewDevice(prof.API, gfxapi.NullBackend{})
	wl := workloads.New(prof, dev, 1024, 768)
	wl.SetRegionBoundary(frames / 2)

	first := 0
	var prior []gfxapi.FrameStats
	if start != nil && start.Gen.FrameIdx > 0 {
		first = start.Gen.FrameIdx
		if len(start.Frames) != first {
			return nil, fmt.Errorf("core: %s: checkpoint has %d frames, frame index %d",
				prof.Name, len(start.Frames), first)
		}
		if first > frames {
			return nil, fmt.Errorf("core: %s: checkpoint frame %d past requested %d",
				prof.Name, first, frames)
		}
		prior = append(prior, start.Frames...)
		if err := resumeSetup(prof.Name, dev, wl, start.Gen); err != nil {
			return nil, err
		}
	}

	all := func() []gfxapi.FrameStats {
		return append(append([]gfxapi.FrameStats{}, prior...), dev.Frames()...)
	}
	for f := first; f < frames; f++ {
		if err := renderOneGuarded(prof.Name, dev, wl, f == 0); err != nil {
			return nil, err
		}
		if onFrame != nil {
			ck := &APICheckpoint{Gen: wl.GenState(), Frames: all()}
			if err := onFrame(ck); err != nil {
				return nil, err
			}
		}
	}
	return &APIResult{Prof: prof, Frames: all()}, nil
}

// resumeSetup rebuilds a workload's resources and splices the
// checkpointed generator state in, under the same recover guard the
// continuous path uses.
func resumeSetup(name string, dev *gfxapi.Device, wl *workloads.Workload,
	gen workloads.GenState) (err error) {

	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: %s: panic during resume setup: %v", name, rec)
		}
	}()
	renderHook(name)
	if err := wl.Setup(); err != nil {
		return fmt.Errorf("core: %s: %w", name, err)
	}
	wl.SetGenState(gen)
	// The fresh setup burst belongs to frame 0, which the checkpoint
	// already carries.
	dev.DropFrame()
	return nil
}

// renderOneGuarded renders a single frame under the runGuarded recover
// contract (panics become errors naming the demo and stream position).
// hook fires the test render hook first — set it on the run's first
// guarded call only, mirroring runGuarded's once-per-render semantics.
func renderOneGuarded(name string, dev *gfxapi.Device, wl *workloads.Workload, hook bool) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: %s: panic at frame %d, batch %d: %v",
				name, len(dev.Frames()), dev.CurrentFrame().Batches, rec)
		}
	}()
	if hook {
		renderHook(name)
	}
	wl.RenderFrame()
	return nil
}

// RunMicroCancelable is RunMicroConfig with a per-frame hook: after
// each simulated frame onFrame (if non-nil) receives the completed
// frame index, and a non-nil return aborts the simulation with that
// error. Simulated renders carry warm texture-cache state across frame
// boundaries, so unlike the API path there is no mid-demo resume — the
// scheduler checkpoints simulated work at whole-demo granularity and
// uses this entry point for frame-boundary cancellation only.
func RunMicroCancelable(prof *workloads.Profile, frames int, cfg gpu.Config,
	onFrame func(frame int) error) (*MicroResult, error) {

	var hook func(int, metrics.Snapshot) error
	if onFrame != nil {
		hook = func(f int, _ metrics.Snapshot) error { return onFrame(f) }
	}
	return RunMicroObserved(prof, frames, cfg, hook)
}

// RunMicroObserved is RunMicroCancelable with the GPU's frame-boundary
// state exposed: each callback also receives the cumulative counter
// snapshot the GPU published at EndFrame (the same snapshot
// PublishedSnapshot serves to concurrent scrapers). Diffing successive
// boundaries gives per-frame counter deltas without tracing — the feed
// behind the explorer's live SSE frame events.
func RunMicroObserved(prof *workloads.Profile, frames int, cfg gpu.Config,
	onFrame func(frame int, boundary metrics.Snapshot) error) (*MicroResult, error) {

	if prof == nil || !prof.Simulated {
		return nil, fmt.Errorf("core: profile not simulated")
	}
	g := gpu.New(cfg)
	dev := gfxapi.NewDevice(prof.API, g)
	wl := workloads.New(prof, dev, cfg.Width, cfg.Height)
	for f := 0; f < frames; f++ {
		if err := renderOneGuarded(prof.Name, dev, wl, f == 0); err != nil {
			return nil, err
		}
		if onFrame != nil {
			boundary, _ := g.PublishedSnapshot()
			if err := onFrame(f, boundary); err != nil {
				return nil, err
			}
		}
	}
	return MicroResultFromGPU(prof, g, cfg), nil
}

// SeedAPI installs a pre-computed API result into the context cache, so
// a subsequent sweep reads it instead of rendering. The serve runner
// uses it to hand resumable, checkpoint-spliced renders to the
// experiment code unchanged.
func (c *Context) SeedAPI(name string, r *APIResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.apiCache == nil {
		c.apiCache = map[string]*APIResult{}
		c.apiErr = map[string]error{}
	}
	c.apiCache[name] = r
}

// SeedMicro installs a pre-computed simulated result into the context
// cache (see SeedAPI).
func (c *Context) SeedMicro(name string, r *MicroResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.microCache == nil {
		c.microCache = map[string]*MicroResult{}
		c.microErr = map[string]error{}
	}
	c.microCache[name] = r
}

// NeededDemos reports the demo renders the given experiments demand:
// the API-level set (union of each experiment's APIDemos, in registry
// order) and the simulated set. It shares demand resolution with
// Prefetch, so a context seeded from these renders exports exactly the
// document a lazy serial sweep would. The serve runner walks the sets
// with the resumable entry points before seeding a context.
func NeededDemos(ids []string) (api, micro []string, err error) {
	return demoDemand(ids)
}

// demoDemand resolves the exact demo sets a list of experiments will
// read through Context.API and Context.Micro.
func demoDemand(ids []string) (api, micro []string, err error) {
	wantAPI := make(map[string]bool)
	wantMicro := make(map[string]bool)
	for _, id := range ids {
		e := ByID(id)
		if e == nil {
			return nil, nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		for _, name := range e.APIDemos {
			wantAPI[name] = true
		}
		if e.Micro {
			demos := e.MicroDemos
			if len(demos) == 0 {
				demos = SimDemos
			}
			for _, name := range demos {
				wantMicro[name] = true
			}
		}
	}
	for _, p := range workloads.All() {
		if wantAPI[p.Name] {
			api = append(api, p.Name)
		}
		if wantMicro[p.Name] {
			micro = append(micro, p.Name)
		}
	}
	return api, micro, nil
}

// APIFrameSnapshot converts one API frame record to a metrics snapshot
// under the "api" prefix — the serialized form checkpoints persist.
func APIFrameSnapshot(f gfxapi.FrameStats) metrics.Snapshot {
	r := metrics.NewRegistry()
	f.Register(r, "api")
	return r.Snapshot()
}

// APIFrameFromSnapshot is the inverse of APIFrameSnapshot.
func APIFrameFromSnapshot(s metrics.Snapshot) gfxapi.FrameStats {
	var f gfxapi.FrameStats
	r := metrics.NewRegistry()
	f.Register(r, "api")
	r.Load(s)
	return f
}
