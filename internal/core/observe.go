// Observability wiring for the experiment sweep: the Context's tracer
// plumbing (shared or per-experiment), the live-GPU registry behind the
// HTTP server's /metrics feed, and the per-experiment trace files.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gpuchar/internal/gpu"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
	"gpuchar/internal/workloads"
)

// LabelState tags the live-export snapshots with the run state of
// their demo.
const (
	LabelState   = "state"
	StateRunning = "running"
	StateDone    = "done"
)

// tracer returns the tracer demo renders should emit into right now:
// the sweep-wide Context.Trace when set, else the current experiment's
// TraceDir tracer, else nil (tracing off).
func (c *Context) tracer() *obsv.Tracer {
	if c.Trace != nil {
		return c.Trace
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expTracer
}

// beginExperimentTrace installs a fresh per-experiment tracer when
// TraceDir (and not Trace) drives the sweep, returning it for the
// matching finishExperimentTrace. It returns nil when per-experiment
// tracing is off.
func (c *Context) beginExperimentTrace() *obsv.Tracer {
	if c.Trace != nil || c.TraceDir == "" {
		return nil
	}
	t := obsv.New(obsv.Options{SampleEvery: c.TraceSample})
	c.mu.Lock()
	c.expTracer = t
	c.mu.Unlock()
	return t
}

// finishExperimentTrace uninstalls the experiment's tracer and writes
// its events to TraceDir/<id>.json.
func (c *Context) finishExperimentTrace(id string, t *obsv.Tracer) error {
	c.mu.Lock()
	c.expTracer = nil
	c.mu.Unlock()
	path := filepath.Join(c.TraceDir, id+".json")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: experiment trace: %w", err)
	}
	if err := t.WriteChromeJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("core: experiment trace %s: %w", path, err)
	}
	return f.Close()
}

// addLiveGPU registers an in-flight simulated render for LiveSnapshots.
func (c *Context) addLiveGPU(demo string, g *gpu.GPU) {
	c.mu.Lock()
	if c.liveGPUs == nil {
		c.liveGPUs = map[string]*gpu.GPU{}
	}
	c.liveGPUs[demo] = g
	c.mu.Unlock()
}

// removeLiveGPU drops a finished render from the live registry (its
// counters remain visible through the cached MicroResult).
func (c *Context) removeLiveGPU(demo string) {
	c.mu.Lock()
	delete(c.liveGPUs, demo)
	c.mu.Unlock()
}

// LiveSnapshots returns the sweep's counters as they stand right now:
// one snapshot per in-flight simulated demo (its last published frame
// boundary, labeled state="running") followed by one aggregate per
// finished demo (state="done", Table I order). It is safe to call
// concurrently with the running sweep — the feed behind the
// observability server's /metrics endpoint.
func (c *Context) LiveSnapshots() []metrics.Snapshot {
	c.mu.Lock()
	live := make(map[string]*gpu.GPU, len(c.liveGPUs))
	for k, v := range c.liveGPUs {
		live[k] = v
	}
	done := make(map[string]*MicroResult, len(c.microCache))
	for k, v := range c.microCache {
		done[k] = v
	}
	c.mu.Unlock()

	var out []metrics.Snapshot
	names := make([]string, 0, len(live))
	for n := range live {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if s, ok := live[n].PublishedSnapshot(); ok {
			out = append(out, s.WithLabels(
				LabelDemo, n, LabelSource, SourceSim, LabelState, StateRunning))
		}
	}
	for _, p := range workloads.Registry() {
		if r, ok := done[p.Name]; ok {
			out = append(out, r.Agg.MetricsSnapshot().WithLabels(
				LabelDemo, p.Name, LabelSource, SourceSim, LabelState, StateDone))
		}
	}
	return out
}
