package core

import (
	"fmt"
	"sync"
	"time"

	"gpuchar/internal/obsv"
)

// prefetchJob is one demo render: an API-level replay or a full
// simulation.
type prefetchJob struct {
	name  string
	micro bool
}

// Prefetch renders every demo the given experiments will need on a
// bounded pool of Workers goroutines, populating the context caches.
// Each demo owns a private GPU/device/workload, so runs are
// embarrassingly parallel; experiments afterwards read the cached
// results in paper order, making the final output independent of
// completion order. With Workers <= 1 it is a no-op (the experiments
// render lazily, exactly as before).
func (c *Context) Prefetch(ids []string) error {
	if c.Workers <= 1 {
		return nil
	}
	api, micro, err := demoDemand(ids)
	if err != nil {
		return err
	}
	var jobs []prefetchJob
	for _, name := range api {
		jobs = append(jobs, prefetchJob{name: name})
	}
	for _, name := range micro {
		jobs = append(jobs, prefetchJob{name: name, micro: true})
	}
	if len(jobs) == 0 {
		return nil
	}

	sem := make(chan struct{}, c.Workers)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j prefetchJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if j.micro {
				_, errs[i] = c.Micro(j.name)
			} else {
				_, errs[i] = c.API(j.name)
			}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		// With KeepGoing the failure is negative-cached in the context;
		// the experiments that want the demo surface and record it.
		if err != nil && !c.KeepGoing {
			return err
		}
	}
	return nil
}

// RunExperiments regenerates the given experiments in order, fanning
// the underlying demo renders out across Context.Workers goroutines
// first. Results arrive in the requested order and are identical to a
// serial run at any worker count.
//
// By default the first failure aborts the sweep. With Context.KeepGoing
// a failed experiment yields a nil slot in the results and the sweep
// continues; the error return is then an ExperimentErrors aggregate
// listing every failed experiment and every dropped demo alongside the
// partial results.
func RunExperiments(c *Context, ids []string) ([]*Result, error) {
	if err := c.Prefetch(ids); err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(ids))
	var errs ExperimentErrors
	for _, id := range ids {
		var res *Result
		var err error
		c.Progress.StartExperiment(id)
		expTr := c.beginExperimentTrace()
		var sp obsv.Span
		if t := c.tracer(); t.Enabled() {
			sp = t.Begin(t.Track("experiments", "sweep"), id)
		}
		if e := ByID(id); e == nil {
			err = fmt.Errorf("unknown experiment %q", id)
		} else {
			res, err = runExperiment(c, e)
		}
		sp.End()
		if expTr != nil {
			if werr := c.finishExperimentTrace(id, expTr); werr != nil && err == nil {
				err = werr
			}
		}
		c.Progress.EndExperiment(id)
		if err != nil {
			ee := &ExperimentError{ID: id, Err: err}
			if !c.KeepGoing {
				return nil, ee
			}
			errs = append(errs, ee)
			out = append(out, nil)
			continue
		}
		out = append(out, res)
		if c.OnExperimentDone != nil {
			c.OnExperimentDone(id, c.experimentSnapshots(id))
		}
	}
	errs = append(errs, c.demoFailures()...)
	if len(errs) > 0 {
		return out, errs
	}
	return out, nil
}

// runExperiment executes one experiment under a recover guard and,
// when Context.Deadline is set, a watchdog timer.
func runExperiment(c *Context, e *Experiment) (*Result, error) {
	if c.Deadline <= 0 {
		return runRecover(c, e)
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := runRecover(c, e)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(c.Deadline):
		return nil, fmt.Errorf("deadline %s exceeded", c.Deadline)
	}
}

// runRecover converts a panic escaping an experiment's run function
// (as opposed to a demo render, which runGuarded already covers) into
// an error, so one broken table generator cannot take down the sweep.
func runRecover(c *Context, e *Experiment) (res *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fmt.Errorf("panic: %v", rec)
		}
	}()
	return e.Run(c)
}
