package core

import (
	"fmt"
	"sync"

	"gpuchar/internal/workloads"
)

// prefetchJob is one demo render: an API-level replay or a full
// simulation.
type prefetchJob struct {
	name  string
	micro bool
}

// Prefetch renders every demo the given experiments will need on a
// bounded pool of Workers goroutines, populating the context caches.
// Each demo owns a private GPU/device/workload, so runs are
// embarrassingly parallel; experiments afterwards read the cached
// results in paper order, making the final output independent of
// completion order. With Workers <= 1 it is a no-op (the experiments
// render lazily, exactly as before).
func (c *Context) Prefetch(ids []string) error {
	if c.Workers <= 1 {
		return nil
	}
	needAPI, needMicro := false, false
	for _, id := range ids {
		e := ByID(id)
		if e == nil {
			return fmt.Errorf("core: unknown experiment %q", id)
		}
		needAPI = needAPI || e.API
		needMicro = needMicro || e.Micro
	}
	var jobs []prefetchJob
	if needAPI {
		for _, p := range workloads.Registry() {
			jobs = append(jobs, prefetchJob{name: p.Name})
		}
	}
	if needMicro {
		for _, name := range SimDemos {
			jobs = append(jobs, prefetchJob{name: name, micro: true})
		}
	}
	if len(jobs) == 0 {
		return nil
	}

	sem := make(chan struct{}, c.Workers)
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j prefetchJob) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if j.micro {
				_, errs[i] = c.Micro(j.name)
			} else {
				_, errs[i] = c.API(j.name)
			}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunExperiments regenerates the given experiments in order, fanning
// the underlying demo renders out across Context.Workers goroutines
// first. Results arrive in the requested order and are identical to a
// serial run at any worker count.
func RunExperiments(c *Context, ids []string) ([]*Result, error) {
	if err := c.Prefetch(ids); err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(ids))
	for _, id := range ids {
		e := ByID(id)
		if e == nil {
			return nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		res, err := e.Run(c)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}
