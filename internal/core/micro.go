package core

import (
	"fmt"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/stats"
	"gpuchar/internal/workloads"
)

// MicroResult is the microarchitectural characterization of one
// simulated demo: per-frame GPU statistics plus the derived metrics of
// the paper's Tables VII-XVII and Figures 5-7.
type MicroResult struct {
	Prof   *workloads.Profile
	W, H   int
	Frames []gpu.FrameStats
	Agg    gpu.FrameStats
	// Pass holds one whole-run counter snapshot per off-screen render
	// target (labeled pass=<name>), nil for single-pass demos — the
	// per-pass dimension of the multi-pass workloads' cache and
	// bandwidth metrics.
	Pass []metrics.Snapshot
}

// RunMicro renders frames of a simulated demo through the GPU simulator
// at the given resolution (the paper's is 1024x768) with the R520-like
// Table II configuration.
func RunMicro(prof *workloads.Profile, frames, w, h int) (*MicroResult, error) {
	return RunMicroConfig(prof, frames, gpu.R520Config(w, h))
}

// RunMicroConfig is RunMicro with an explicit GPU configuration, used by
// the ablation benchmarks.
func RunMicroConfig(prof *workloads.Profile, frames int, cfg gpu.Config) (*MicroResult, error) {
	return runMicroHooked(prof, frames, cfg, microHooks{})
}

// microHooks observe one simulated render: a per-frame completion
// callback and a live-GPU registration hook whose returned func runs
// when the render finishes (however it ends). Either may be nil.
type microHooks struct {
	onFrame func(frame int)
	onGPU   func(g *gpu.GPU) (done func())
}

// runMicroHooked is RunMicroConfig plus observability hooks — the
// shared body behind the public runner and the Context's instrumented
// path.
func runMicroHooked(prof *workloads.Profile, frames int, cfg gpu.Config, h microHooks) (*MicroResult, error) {
	if prof == nil || !prof.Simulated {
		return nil, fmt.Errorf("core: profile not simulated")
	}
	g := gpu.New(cfg)
	dev := gfxapi.NewDevice(prof.API, g)
	wl := workloads.New(prof, dev, cfg.Width, cfg.Height)
	wl.OnFrame = h.onFrame
	if h.onGPU != nil {
		if done := h.onGPU(g); done != nil {
			defer done()
		}
	}
	if err := runGuarded(prof.Name, dev, wl, frames); err != nil {
		return nil, err
	}
	return MicroResultFromGPU(prof, g, cfg), nil
}

// MicroResultFromGPU wraps an already-run GPU's frames as a MicroResult,
// aggregating the per-frame statistics. It is the single place the
// aggregate is computed, shared by RunMicroConfig and callers that drive
// the pipeline themselves (attilasim's -png path).
func MicroResultFromGPU(prof *workloads.Profile, g *gpu.GPU, cfg gpu.Config) *MicroResult {
	r := &MicroResult{Prof: prof, W: cfg.Width, H: cfg.Height, Frames: g.Frames(),
		Pass: g.PassSnapshots()}
	for _, f := range r.Frames {
		r.Agg.Accumulate(f)
	}
	return r
}

func (r *MicroResult) screen() float64 { return float64(r.W * r.H) }

func (r *MicroResult) nframes() float64 { return float64(len(r.Frames)) }

// ClipCullPct returns the Table VII percentages (clipped, culled,
// traversed).
func (r *MicroResult) ClipCullPct() (clip, cull, trav float64) {
	a := r.Agg.Geom.TrianglesAssembled
	return stats.Percent(r.Agg.Geom.TrianglesClipped, a),
		stats.Percent(r.Agg.Geom.TrianglesCulled, a),
		stats.Percent(r.Agg.Geom.TrianglesTraversed, a)
}

// VertexCacheHitRate returns the Figure 5 post-transform hit rate.
func (r *MicroResult) VertexCacheHitRate() float64 {
	return r.Agg.VCache.HitRate()
}

// Overdraw returns the Table XI per-pixel overdraw at the four stages.
// The z & stencil figure excludes quads the Hierarchical Z removed, as
// in the paper (its z&st overdraw is below the raster one by the HZ
// kills).
func (r *MicroResult) Overdraw() (raster, zs, shade, blend float64) {
	den := r.nframes() * r.screen()
	zsFrags := r.Agg.ZSt.FragmentsIn - 4*r.Agg.ZSt.QuadsKilledHZ // conservative: HZ kills whole quads
	return float64(r.Agg.Rast.Fragments) / den,
		float64(zsFrags) / den,
		float64(r.Agg.Frag.FragmentsShaded) / den,
		float64(r.Agg.Rop.Fragments) / den
}

// TriangleSize returns the Table VIII average triangle size (fragments)
// at the four stages, computed as stage fragments over traversed
// triangles.
func (r *MicroResult) TriangleSize() (raster, zs, shade, blend float64) {
	tr := float64(r.Agg.Geom.TrianglesTraversed)
	if tr == 0 {
		return 0, 0, 0, 0
	}
	or, oz, os, ob := r.Overdraw()
	scale := r.nframes() * r.screen() / tr
	return or * scale, oz * scale, os * scale, ob * scale
}

// QuadKillPct returns the Table IX percentages over all rasterized
// quads: removed at HZ, at z & stencil, at alpha test, at the color
// mask, and finally blended.
func (r *MicroResult) QuadKillPct() (hz, zs, alpha, mask, blend float64) {
	tot := r.Agg.Rast.QuadsEmitted
	return stats.Percent(r.Agg.ZSt.QuadsKilledHZ, tot),
		stats.Percent(r.Agg.ZSt.QuadsKilled, tot),
		stats.Percent(r.Agg.Frag.QuadsKilledAlpha, tot),
		stats.Percent(r.Agg.Rop.QuadsMasked, tot),
		stats.Percent(r.Agg.Rop.QuadsOut, tot)
}

// QuadEfficiency returns the Table X complete-quad percentages at the
// rasterizer and after the z & stencil test.
func (r *MicroResult) QuadEfficiency() (raster, zs float64) {
	raster = r.Agg.Rast.QuadEfficiency()
	zs = 100 * stats.Ratio(r.Agg.ZSt.CompleteOut, r.Agg.ZSt.QuadsOut)
	return raster, zs
}

// BilinearPerRequest returns the Table XIII dynamic filtering cost.
func (r *MicroResult) BilinearPerRequest() float64 {
	return r.Agg.Tex.AvgBilinearPerRequest()
}

// ALUPerBilinear returns the Table XIII shader-to-texture throughput
// ratio: executed fragment ALU instructions per bilinear sample.
func (r *MicroResult) ALUPerBilinear() float64 {
	if r.Agg.Tex.BilinearSamples == 0 {
		return 0
	}
	alu := r.Agg.FS.Instructions - r.Agg.FS.TexInstructions
	return float64(alu) / float64(r.Agg.Tex.BilinearSamples)
}

// CacheHitRates returns the Table XIV hit rates in percent (z&stencil,
// texture L0, texture L1, color).
func (r *MicroResult) CacheHitRates() (z, l0, l1, color float64) {
	return 100 * r.Agg.ZCache.HitRate(), 100 * r.Agg.TexL0.HitRate(),
		100 * r.Agg.TexL1.HitRate(), 100 * r.Agg.ColorCache.HitRate()
}

// MemoryProfile returns the Table XV per-frame traffic: MB/frame, read
// and write percentages, and GB/s at 100 fps.
func (r *MicroResult) MemoryProfile() (mbPerFrame, readPct, writePct, gbs float64) {
	tot := mem.SumTraffic(r.Agg.Mem)
	perFrame := float64(tot.Total()) / r.nframes()
	mbPerFrame = mem.MB(perFrame)
	if tot.Total() > 0 {
		readPct = 100 * float64(tot.ReadBytes) / float64(tot.Total())
		writePct = 100 - readPct
	}
	gbs = mem.GBs(mem.BWAtFPS(perFrame, 100))
	return
}

// TrafficSplit returns the Table XVI per-stage share of memory traffic
// in percent, in client order.
func (r *MicroResult) TrafficSplit() [6]float64 {
	tot := mem.SumTraffic(r.Agg.Mem).Total()
	var out [6]float64
	if tot == 0 {
		return out
	}
	for c := 0; c < int(mem.NumClients); c++ {
		out[c] = 100 * float64(r.Agg.Mem[c].Total()) / float64(tot)
	}
	return out
}

// BytesPer returns the Table XVII per-unit traffic: bytes per shaded
// vertex and bytes per fragment at the z & stencil, shading and color
// stages.
func (r *MicroResult) BytesPer() (vertex, zs, shade, color float64) {
	if v := r.Agg.Geom.VerticesShaded; v > 0 {
		vertex = float64(r.Agg.Mem[mem.ClientVertex].Total()) / float64(v)
	}
	zsFrags := r.Agg.ZSt.FragmentsIn - 4*r.Agg.ZSt.QuadsKilledHZ
	if zsFrags > 0 {
		zs = float64(r.Agg.Mem[mem.ClientZStencil].Total()) / float64(zsFrags)
	}
	if f := r.Agg.Frag.FragmentsShaded; f > 0 {
		shade = float64(r.Agg.Mem[mem.ClientTexture].Total()) / float64(f)
	}
	if f := r.Agg.Rop.Fragments; f > 0 {
		color = float64(r.Agg.Mem[mem.ClientColor].Total()) / float64(f)
	}
	return
}

// VCacheSeries returns the Figure 5 per-frame vertex cache hit rate.
func (r *MicroResult) VCacheSeries() *stats.Series {
	s := stats.NewSeries(r.Prof.Name)
	for _, f := range r.Frames {
		s.Append(f.VCache.HitRate())
	}
	return s
}

// TriangleFlowSeries returns the Figure 6 per-frame indices, assembled
// and traversed triangle counts.
func (r *MicroResult) TriangleFlowSeries() (idx, asm, trav *stats.Series) {
	idx = stats.NewSeries(r.Prof.Name + " indices")
	asm = stats.NewSeries(r.Prof.Name + " assembled")
	trav = stats.NewSeries(r.Prof.Name + " traversed")
	for _, f := range r.Frames {
		idx.Append(float64(f.Geom.Indices))
		asm.Append(float64(f.Geom.TrianglesAssembled))
		trav.Append(float64(f.Geom.TrianglesTraversed))
	}
	return
}

// TriangleSizeSeries returns the Figure 7 per-frame average triangle
// size at the raster, z & stencil and shading stages.
func (r *MicroResult) TriangleSizeSeries() (raster, zs, shade *stats.Series) {
	raster = stats.NewSeries(r.Prof.Name + " raster")
	zs = stats.NewSeries(r.Prof.Name + " zst")
	shade = stats.NewSeries(r.Prof.Name + " shaded")
	for _, f := range r.Frames {
		tr := float64(f.Geom.TrianglesTraversed)
		if tr == 0 {
			tr = 1
		}
		raster.Append(float64(f.Rast.Fragments) / tr)
		zs.Append(float64(f.ZSt.FragmentsIn-4*f.ZSt.QuadsKilledHZ) / tr)
		shade.Append(float64(f.Frag.FragmentsShaded) / tr)
	}
	return
}
