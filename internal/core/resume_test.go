package core

import (
	"errors"
	"testing"

	"gpuchar/internal/gpu"
	"gpuchar/internal/workloads"
)

// TestRunAPIResumableMatchesRunAPI pins that the frame-by-frame path
// produces exactly what the one-shot path does.
func TestRunAPIResumableMatchesRunAPI(t *testing.T) {
	prof := workloads.ByName("Doom3/trdemo2")
	want, err := RunAPI(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunAPIResumable(prof, 10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("got %d frames, want %d", len(got.Frames), len(want.Frames))
	}
	for i := range want.Frames {
		if got.Frames[i] != want.Frames[i] {
			t.Errorf("frame %d differs", i)
		}
	}
}

// TestRunAPIResumableResume kills a render mid-run via the hook, then
// restarts from the captured checkpoint and checks the spliced result
// is bit-identical to a continuous run.
func TestRunAPIResumableResume(t *testing.T) {
	const total, cut = 10, 4
	for _, name := range []string{"UT2004/Primeval", "Quake4/demo4", "Oblivion/Anvil Castle"} {
		t.Run(name, func(t *testing.T) {
			prof := workloads.ByName(name)
			if prof == nil {
				t.Fatalf("unknown demo %q", name)
			}
			want, err := RunAPI(prof, total)
			if err != nil {
				t.Fatal(err)
			}

			stop := errors.New("stop")
			var ck *APICheckpoint
			_, err = RunAPIResumable(prof, total, nil, func(c *APICheckpoint) error {
				if c.Gen.FrameIdx == cut {
					ck = c
					return stop
				}
				return nil
			})
			if !errors.Is(err, stop) {
				t.Fatalf("err = %v, want the hook's abort error", err)
			}
			if ck == nil || len(ck.Frames) != cut {
				t.Fatalf("checkpoint = %+v, want %d frames", ck, cut)
			}

			got, err := RunAPIResumable(prof, total, ck, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Frames) != total {
				t.Fatalf("resumed run has %d frames, want %d", len(got.Frames), total)
			}
			for i := range want.Frames {
				if got.Frames[i] != want.Frames[i] {
					t.Errorf("frame %d differs after resume:\n got %+v\nwant %+v",
						i, got.Frames[i], want.Frames[i])
				}
			}
		})
	}
}

// TestRunAPIResumableRejectsBadCheckpoint pins the validation errors.
func TestRunAPIResumableRejectsBadCheckpoint(t *testing.T) {
	prof := workloads.ByName("Doom3/trdemo2")
	bad := &APICheckpoint{Gen: workloads.GenState{FrameIdx: 3}} // 3 frames claimed, 0 carried
	if _, err := RunAPIResumable(prof, 10, bad, nil); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
	ok, err := RunAPIResumable(prof, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	past := &APICheckpoint{Gen: workloads.GenState{FrameIdx: 4}, Frames: ok.Frames}
	if _, err := RunAPIResumable(prof, 2, past, nil); err == nil {
		t.Error("checkpoint past requested frame count accepted")
	}
}

// TestRunMicroCancelable pins that the cancelable simulated path matches
// RunMicroConfig, and that the hook aborts between frames.
func TestRunMicroCancelable(t *testing.T) {
	prof := workloads.ByName("Doom3/trdemo2")
	cfg := gpu.R520Config(160, 120)
	want, err := RunMicroConfig(prof, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	got, err := RunMicroCancelable(prof, 2, cfg, func(f int) error {
		seen = append(seen, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Errorf("hook frames = %v", seen)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("got %d frames, want %d", len(got.Frames), len(want.Frames))
	}
	for i := range want.Frames {
		if got.Frames[i] != want.Frames[i] {
			t.Errorf("frame %d differs", i)
		}
	}
	if got.Agg != want.Agg {
		t.Errorf("aggregate differs")
	}

	stop := errors.New("stop")
	if _, err := RunMicroCancelable(prof, 2, cfg, func(f int) error {
		return stop
	}); !errors.Is(err, stop) {
		t.Errorf("err = %v, want the hook's abort error", err)
	}
}

// TestSeedAPI proves a seeded context serves the result without
// rendering: the seeded name has no profile, so any render attempt
// would fail.
func TestSeedAPI(t *testing.T) {
	c := NewContext()
	want := &APIResult{}
	c.SeedAPI("no/such-demo", want)
	got, err := c.API("no/such-demo")
	if err != nil || got != want {
		t.Errorf("API() = %v, %v; want the seeded result", got, err)
	}
	mw := &MicroResult{}
	c.SeedMicro("no/such-demo", mw)
	gm, err := c.Micro("no/such-demo")
	if err != nil || gm != mw {
		t.Errorf("Micro() = %v, %v; want the seeded result", gm, err)
	}
}

// TestNeededDemos pins the demand logic against Prefetch's.
func TestNeededDemos(t *testing.T) {
	api, micro, err := NeededDemos([]string{"table3"})
	if err != nil {
		t.Fatal(err)
	}
	if len(api) != len(workloads.Registry()) || len(micro) != 0 {
		t.Errorf("table3: %d api, %d micro demos", len(api), len(micro))
	}
	api, micro, err = NeededDemos([]string{"table7"})
	if err != nil {
		t.Fatal(err)
	}
	if len(api) != 0 || len(micro) != len(SimDemos) {
		t.Errorf("table7: %d api, %d micro demos", len(api), len(micro))
	}
	// Figures demand only the demos they plot, not the whole registry:
	// rendering more would change the exported JSON document relative to
	// a lazy serial sweep.
	api, micro, err = NeededDemos([]string{"fig1", "fig8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(api) != len(PlottedDemos) || len(micro) != 0 {
		t.Errorf("fig1+fig8: %d api demos, want the %d plotted", len(api), len(PlottedDemos))
	}
	if _, _, err := NeededDemos([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAPIFrameSnapshotRoundTrip pins the checkpoint serialization form.
func TestAPIFrameSnapshotRoundTrip(t *testing.T) {
	prof := workloads.ByName("FEAR/interval2")
	r, err := RunAPI(prof, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range r.Frames {
		back := APIFrameFromSnapshot(APIFrameSnapshot(f))
		if back != f {
			t.Errorf("frame %d: round trip differs:\n got %+v\nwant %+v", i, back, f)
		}
	}
}
