package core

import (
	"fmt"
	"sync"

	"gpuchar/internal/gfxapi"
	"gpuchar/internal/workloads"
)

// testRenderHook, when non-nil, runs at the start of every demo render.
// Tests use it to poison a specific demo with a panic and prove the
// fault isolation around it; it is never set outside tests. Access goes
// through hookMu because a deadline-abandoned experiment goroutine can
// still be rendering when a test swaps the hook.
var (
	hookMu         sync.Mutex
	testRenderHook func(demo string)
)

func setTestRenderHook(h func(demo string)) {
	hookMu.Lock()
	testRenderHook = h
	hookMu.Unlock()
}

func renderHook(demo string) {
	hookMu.Lock()
	h := testRenderHook
	hookMu.Unlock()
	if h != nil {
		h(demo)
	}
}

// runGuarded drives a workload for the given number of frames under a
// recover guard: a panic escaping the workload generator or the
// pipeline backend is converted into an error naming the demo and the
// API-stream position (frames completed, batches into the current
// frame) where it happened, so a poisoned demo is locatable without a
// debugger and cannot kill the fan-out hosting the other eleven titles.
func runGuarded(name string, dev *gfxapi.Device, wl *workloads.Workload, frames int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("core: %s: panic at frame %d, batch %d: %v",
				name, len(dev.Frames()), dev.CurrentFrame().Batches, rec)
		}
	}()
	renderHook(name)
	if err := wl.Run(frames); err != nil {
		return fmt.Errorf("core: %s: %w", name, err)
	}
	return nil
}
