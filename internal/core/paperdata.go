// Package core is the characterization engine: it runs the synthetic
// workloads at the API level and through the GPU simulator, derives
// every metric the paper reports, and regenerates each table and figure
// with the paper's published values alongside for comparison.
package core

// PaperAPIRow holds one demo's published API-level numbers (Tables III,
// IV, V and XII).
type PaperAPIRow struct {
	IdxPerBatch   float64
	IdxPerFrame   float64
	BytesPerIndex int
	IndexBWMBs    float64 // Table III "BW @100fps" in MB/s

	VSInstr  float64 // Table IV
	VSInstr2 float64 // second region (Oblivion)

	FSInstr float64 // Table XII
	FSTex   float64
	Ratio   float64

	TLPct, TSPct, TFPct float64 // Table V
	PrimsPerFrame       float64
}

// PaperAPI indexes the Table I demo names.
var PaperAPI = map[string]PaperAPIRow{
	"UT2004/Primeval": {
		IdxPerBatch: 1110, IdxPerFrame: 249285, BytesPerIndex: 2, IndexBWMBs: 50,
		VSInstr: 23.46, FSInstr: 4.63, FSTex: 1.54, Ratio: 2.01,
		TLPct: 99.9, TFPct: 0.1, PrimsPerFrame: 83095,
	},
	"Doom3/trdemo1": {
		IdxPerBatch: 275, IdxPerFrame: 196416, BytesPerIndex: 4, IndexBWMBs: 79,
		VSInstr: 20.31, FSInstr: 12.85, FSTex: 3.98, Ratio: 2.23,
		TLPct: 100, PrimsPerFrame: 65472,
	},
	"Doom3/trdemo2": {
		IdxPerBatch: 304, IdxPerFrame: 136548, BytesPerIndex: 4, IndexBWMBs: 55,
		VSInstr: 19.35, FSInstr: 12.95, FSTex: 3.98, Ratio: 2.25,
		TLPct: 100, PrimsPerFrame: 45516,
	},
	"Quake4/demo4": {
		IdxPerBatch: 405, IdxPerFrame: 172330, BytesPerIndex: 4, IndexBWMBs: 69,
		VSInstr: 27.92, FSInstr: 16.29, FSTex: 4.33, Ratio: 2.76,
		TLPct: 100, PrimsPerFrame: 57443,
	},
	"Quake4/guru5": {
		IdxPerBatch: 166, IdxPerFrame: 135051, BytesPerIndex: 4, IndexBWMBs: 54,
		VSInstr: 24.42, FSInstr: 17.16, FSTex: 4.54, Ratio: 2.78,
		TLPct: 100, PrimsPerFrame: 45017,
	},
	"Riddick/MainFrame": {
		IdxPerBatch: 356, IdxPerFrame: 214965, BytesPerIndex: 2, IndexBWMBs: 43,
		VSInstr: 16.70, FSInstr: 14.64, FSTex: 1.94, Ratio: 6.55,
		TLPct: 100, PrimsPerFrame: 71655,
	},
	"Riddick/PrisonArea": {
		IdxPerBatch: 658, IdxPerFrame: 239425, BytesPerIndex: 2, IndexBWMBs: 48,
		VSInstr: 20.96, FSInstr: 13.63, FSTex: 1.83, Ratio: 6.45,
		TLPct: 100, PrimsPerFrame: 79808,
	},
	"FEAR/built-in demo": {
		IdxPerBatch: 641, IdxPerFrame: 331374, BytesPerIndex: 2, IndexBWMBs: 66,
		VSInstr: 18.19, FSInstr: 21.30, FSTex: 2.79, Ratio: 6.63,
		TLPct: 100, PrimsPerFrame: 110458,
	},
	"FEAR/interval2": {
		IdxPerBatch: 1085, IdxPerFrame: 307202, BytesPerIndex: 2, IndexBWMBs: 61,
		VSInstr: 21.02, FSInstr: 19.31, FSTex: 2.72, Ratio: 6.10,
		TLPct: 96.7, TFPct: 3.3, PrimsPerFrame: 102402,
	},
	"Half Life 2 LC/built-in": {
		IdxPerBatch: 736, IdxPerFrame: 328919, BytesPerIndex: 2, IndexBWMBs: 66,
		VSInstr: 27.04, FSInstr: 19.94, FSTex: 3.88, Ratio: 4.14,
		TLPct: 100, PrimsPerFrame: 109640,
	},
	"Oblivion/Anvil Castle": {
		IdxPerBatch: 998, IdxPerFrame: 711196, BytesPerIndex: 2, IndexBWMBs: 142,
		VSInstr: 18.88, VSInstr2: 37.72, FSInstr: 15.48, FSTex: 1.36, Ratio: 10.38,
		TLPct: 46.3, TSPct: 53.7, PrimsPerFrame: 551694,
	},
	"Splinter Cell 3/first level": {
		IdxPerBatch: 308, IdxPerFrame: 177300, BytesPerIndex: 2, IndexBWMBs: 35,
		VSInstr: 28.36, FSInstr: 4.62, FSTex: 2.13, Ratio: 1.17,
		TLPct: 69.1, TSPct: 26.7, TFPct: 4.2, PrimsPerFrame: 107494,
	},
}

// PaperMicroRow holds one simulated demo's published microarchitectural
// numbers (Tables VII-XVII).
type PaperMicroRow struct {
	// Table VII.
	ClipPct, CullPct, TravPct float64
	// Table VIII: average triangle size in fragments per stage.
	TriRaster, TriZSt, TriShade, TriBlend float64
	// Table IX: percentage of quads removed or processed per stage.
	QHZPct, QZStPct, QAlphaPct, QMaskPct, QBlendPct float64
	// Table X: quad efficiency.
	QuadEffRaster, QuadEffZSt float64
	// Table XI: overdraw per pixel per stage.
	ODRaster, ODZSt, ODShade, ODBlend float64
	// Table XIII.
	Bilinear, ALUPerBilinear float64
	// Table XIV hit rates (percent).
	ZCacheHit, TexL0Hit, ColorCacheHit float64
	// Table XV.
	MBPerFrame, ReadPct, WritePct, BWGBs float64
	// Table XVI: Vertex, Z&Stencil, Texture, Color, DAC, CP (percent).
	Split [6]float64
	// Table XVII: bytes per vertex / fragment per stage.
	BVertex, BZSt, BShade, BColor float64
}

// PaperMicro indexes the three simulated demos.
var PaperMicro = map[string]PaperMicroRow{
	"UT2004/Primeval": {
		ClipPct: 30, CullPct: 21, TravPct: 49,
		TriRaster: 652, TriZSt: 417, TriShade: 510, TriBlend: 411,
		QHZPct: 37.50, QZStPct: 2.42, QAlphaPct: 4.15, QMaskPct: 0, QBlendPct: 55.93,
		QuadEffRaster: 91.5, QuadEffZSt: 93.0,
		ODRaster: 8.94, ODZSt: 5.22, ODShade: 5.52, ODBlend: 5.00,
		Bilinear: 5.15, ALUPerBilinear: 0.39,
		ZCacheHit: 93.9, TexL0Hit: 97.7, ColorCacheHit: 93.7,
		MBPerFrame: 81, ReadPct: 73, WritePct: 27, BWGBs: 8,
		Split:   [6]float64{3.9, 15.2, 41.7, 35.2, 3.5, 0.5},
		BVertex: 50.18, BZSt: 3.14, BShade: 7.71, BColor: 7.40,
	},
	"Doom3/trdemo2": {
		ClipPct: 37, CullPct: 28, TravPct: 35,
		TriRaster: 2117, TriZSt: 1651, TriShade: 1027, TriBlend: 1024,
		QHZPct: 33.95, QZStPct: 13.81, QAlphaPct: 0.03, QMaskPct: 34.48, QBlendPct: 17.73,
		QuadEffRaster: 93.1, QuadEffZSt: 95.0,
		ODRaster: 24.58, ODZSt: 16.22, ODShade: 4.38, ODBlend: 4.36,
		Bilinear: 4.37, ALUPerBilinear: 0.52,
		ZCacheHit: 91.0, TexL0Hit: 99.2, ColorCacheHit: 93.2,
		MBPerFrame: 108, ReadPct: 63, WritePct: 37, BWGBs: 11,
		Split:   [6]float64{2.5, 53.5, 26.1, 14.8, 2.1, 1.1},
		BVertex: 50.88, BZSt: 4.61, BShade: 8.31, BColor: 4.60,
	},
	"Quake4/demo4": {
		ClipPct: 51, CullPct: 21, TravPct: 28,
		TriRaster: 1232, TriZSt: 749, TriShade: 411, TriBlend: 406,
		QHZPct: 41.81, QZStPct: 20.57, QAlphaPct: 0.32, QMaskPct: 19.00, QBlendPct: 18.30,
		QuadEffRaster: 92.0, QuadEffZSt: 92.7,
		ODRaster: 24.39, ODZSt: 14.12, ODShade: 4.55, ODBlend: 4.46,
		Bilinear: 4.67, ALUPerBilinear: 0.59,
		ZCacheHit: 93.4, TexL0Hit: 99.3, ColorCacheHit: 93.2,
		MBPerFrame: 101, ReadPct: 62, WritePct: 38, BWGBs: 10,
		Split:   [6]float64{4.2, 51.4, 23.0, 17.4, 2.7, 1.3},
		BVertex: 67.60, BZSt: 4.48, BShade: 6.68, BColor: 5.11,
	},
}

// PlottedDemos lists the eight demos the paper draws in Figures 1-3
// (one timedemo per benchmark, OGL then D3D).
var PlottedDemos = []string{
	"UT2004/Primeval", "Doom3/trdemo2", "Quake4/demo4", "Riddick/PrisonArea",
	"Oblivion/Anvil Castle", "Half Life 2 LC/built-in", "FEAR/interval2",
	"Splinter Cell 3/first level",
}

// SimDemos lists the three microarchitecturally simulated demos.
var SimDemos = []string{"UT2004/Primeval", "Doom3/trdemo2", "Quake4/demo4"}
