package core

import (
	"fmt"
	"sync"
	"time"

	"gpuchar/internal/gpu"
	"gpuchar/internal/hwconfig"
	"gpuchar/internal/mem"
	"gpuchar/internal/metrics"
	"gpuchar/internal/obsv"
	"gpuchar/internal/report"
	"gpuchar/internal/workloads"
)

// Context carries the run parameters and caches workload runs so that a
// full table sweep renders each demo once. The demo caches are
// concurrency-safe: Prefetch renders independent demos on a bounded
// worker pool, after which experiments read the cached results in
// paper order, so output is identical at any worker count.
type Context struct {
	// APIFrames is the number of frames for API-level statistics
	// (cheap; the paper uses each demo's full Table I length).
	APIFrames int
	// SimFrames is the number of microarchitecturally simulated frames
	// (expensive; metrics are stationary after the first frame).
	SimFrames int
	// W, H is the rendering resolution (paper: 1024x768).
	W, H int
	// Workers bounds the experiment fan-out pool: how many demos render
	// concurrently in Prefetch/RunExperiments. <= 1 keeps the serial
	// lazy behaviour.
	Workers int
	// TileWorkers is passed to the GPU simulator's tile-parallel
	// fragment backend (gpu.Config.TileWorkers). The default 0 keeps
	// the serial pipeline, whose counters — including the sharded cache
	// and memory ones — are bit-identical to the seed implementation.
	TileWorkers int
	// HW selects the hardware variant every simulated run uses. nil (and
	// the r520 default variant) keep the seed configuration, so default
	// output stays byte-identical; a sweep builds one Context per
	// variant. A variant that pins resolution or tile fan-out overrides
	// W/H and TileWorkers.
	HW *hwconfig.Variant
	// KeepGoing makes the sweep fault-tolerant: a demo whose render
	// fails (error or recovered panic) is dropped from every table and
	// figure that wanted it, an experiment that fails is skipped, and
	// RunExperiments returns the partial results together with an
	// ExperimentErrors aggregate instead of aborting on the first
	// casualty. The surviving rows are byte-identical to a clean run.
	KeepGoing bool
	// Deadline, when positive, bounds each experiment's wall-clock time
	// in RunExperiments. An overrunning experiment is reported as failed
	// (the simulation has no cancellation points, so its goroutine is
	// abandoned and its eventual result discarded).
	Deadline time.Duration
	// Trace, when non-nil, receives the whole sweep's spans on one
	// timeline: per-experiment spans plus every demo render's frame,
	// stage and draw spans (see internal/obsv). The `characterize
	// -trace` flag binds one.
	Trace *obsv.Tracer
	// TraceDir, when set while Trace is nil, gives each experiment its
	// own tracer and writes TraceDir/<experiment-id>.json as it
	// finishes. Because demo renders are cached, a demo's spans land in
	// the experiment that rendered it first; prefetched renders
	// (Workers > 1) precede all experiments and are not recorded.
	TraceDir string
	// TraceSample is the 1-in-N sampling applied to fine-grained spans
	// by TraceDir's per-experiment tracers (a Trace tracer carries its
	// own sampling). <= 1 records everything.
	TraceSample int
	// Progress, when non-nil, receives experiment start/end and
	// per-frame completion events — the shared feed behind the
	// `-progress` ticker and the HTTP /progress endpoint.
	Progress *obsv.ProgressTracker
	// OnExperimentDone, when non-nil, receives each successfully
	// completed experiment together with the export snapshots of the
	// demos it demanded — the feed `characterize -listen` records into
	// the explorer run registry. Called synchronously from
	// RunExperiments, in experiment order; set it before the run starts.
	OnExperimentDone func(id string, snaps []metrics.Snapshot)

	mu         sync.Mutex
	apiCache   map[string]*APIResult
	microCache map[string]*MicroResult
	// expTracer is the per-experiment tracer while TraceDir drives the
	// sweep; liveGPUs tracks in-flight simulated renders for the
	// observability server's live /metrics feed.
	expTracer *obsv.Tracer
	liveGPUs  map[string]*gpu.GPU
	// apiErr/microErr negative-cache failed renders so a poisoned demo
	// fails once, not once per experiment that references it.
	apiErr   map[string]error
	microErr map[string]error
	// demoErrs records the demos dropped by keep-going experiments.
	demoErrs map[string]error
}

// NewContext returns a context with the paper's resolution and modest
// defaults: enough frames for stable averages at tractable runtimes.
func NewContext() *Context {
	return &Context{APIFrames: 120, SimFrames: 2, W: 1024, H: 768, Workers: 1}
}

// API returns (and caches) the API-level run of a demo. Failures are
// cached too, so a poisoned demo renders (and fails) once per sweep.
func (c *Context) API(name string) (*APIResult, error) {
	c.mu.Lock()
	if c.apiCache == nil {
		c.apiCache = map[string]*APIResult{}
		c.apiErr = map[string]error{}
	}
	if r, ok := c.apiCache[name]; ok {
		c.mu.Unlock()
		return r, nil
	}
	if err, ok := c.apiErr[name]; ok {
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	prof := workloads.ByName(name)
	if prof == nil {
		return nil, fmt.Errorf("core: unknown demo %q", name)
	}
	r, err := runAPIHooked(prof, c.APIFrames, func(frame int) {
		c.Progress.FrameDone(name, frame)
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.apiErr[name] = err
		return nil, err
	}
	c.apiCache[name] = r
	return r, nil
}

// Micro returns (and caches) the simulated run of a demo. Failures are
// cached too, so a poisoned demo simulates (and fails) once per sweep.
func (c *Context) Micro(name string) (*MicroResult, error) {
	c.mu.Lock()
	if c.microCache == nil {
		c.microCache = map[string]*MicroResult{}
		c.microErr = map[string]error{}
	}
	if r, ok := c.microCache[name]; ok {
		c.mu.Unlock()
		return r, nil
	}
	if err, ok := c.microErr[name]; ok {
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	prof := workloads.ByName(name)
	if prof == nil {
		return nil, fmt.Errorf("core: unknown demo %q", name)
	}
	cfg := c.gpuConfig()
	cfg.Trace = c.tracer()
	cfg.TraceProcess = name
	r, err := runMicroHooked(prof, c.SimFrames, cfg, microHooks{
		onFrame: func(frame int) { c.Progress.FrameDone(name, frame) },
		onGPU: func(g *gpu.GPU) func() {
			c.addLiveGPU(name, g)
			return func() { c.removeLiveGPU(name) }
		},
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.microErr[name] = err
		return nil, err
	}
	c.microCache[name] = r
	return r, nil
}

// gpuConfig materializes the context's hardware point. With no variant
// (or the default one) this is exactly the seed's gpu.R520Config +
// TileWorkers wiring; otherwise the variant decides, with the context's
// resolution and tile fan-out filling whatever the variant leaves as
// "inherit".
func (c *Context) gpuConfig() gpu.Config {
	if c.HW == nil {
		cfg := gpu.R520Config(c.W, c.H)
		cfg.TileWorkers = c.TileWorkers
		return cfg
	}
	cfg := c.HW.GPUConfig(c.W, c.H)
	if cfg.TileWorkers == 0 {
		cfg.TileWorkers = c.TileWorkers
	}
	return cfg
}

// skipDemo decides what a failed demo render means for the experiment
// calling it: abort (strict, the default) or drop the demo's rows and
// record the casualty once (KeepGoing). Experiment run functions call
// it on every per-demo error.
func (c *Context) skipDemo(demo string, err error) bool {
	if !c.KeepGoing {
		return false
	}
	c.mu.Lock()
	if c.demoErrs == nil {
		c.demoErrs = map[string]error{}
	}
	if _, ok := c.demoErrs[demo]; !ok {
		c.demoErrs[demo] = err
	}
	c.mu.Unlock()
	return true
}

// demoFailures returns the demos dropped so far, in Table I order so
// reports are deterministic.
func (c *Context) demoFailures() ExperimentErrors {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.demoErrs) == 0 {
		return nil
	}
	var out ExperimentErrors
	for _, p := range workloads.All() {
		if err, ok := c.demoErrs[p.Name]; ok {
			out = append(out, &ExperimentError{Demo: p.Name, Err: err})
		}
	}
	return out
}

// Result is one experiment's regenerated output.
type Result struct {
	Tables  []*report.Table
	Figures []*report.Figure
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	ID    string // "table3", "fig5", ...
	Title string
	// Micro marks experiments that need the GPU simulator.
	Micro bool
	// MicroDemos lists the simulated demos a Micro experiment consumes;
	// empty means the classic SimDemos set, so the Table I experiments
	// need no per-experiment wiring.
	MicroDemos []string
	// API marks experiments that replay demos at the API level.
	API bool
	// APIDemos lists the demos the experiment reads through
	// Context.API. Prefetch and NeededDemos render exactly this set, so
	// the context cache — and with it the exported JSON document — is
	// identical whether the demos were fanned out or rendered lazily.
	APIDemos []string
	Run      func(*Context) (*Result, error)
}

// apiDemoNames is every Table I demo in registry order: the demand of
// the full-table experiments.
func apiDemoNames() []string {
	var names []string
	for _, p := range workloads.Registry() {
		names = append(names, p.Name)
	}
	return names
}

// fig8Demos are the two timedemos the paper plots shader instruction
// counts for in Figure 8.
var fig8Demos = []string{"Quake4/demo4", "FEAR/interval2"}

// ModernDemos lists the synthetic multi-pass demos (workloads.Modern())
// the render-to-texture experiment simulates, in registry order.
var ModernDemos = []string{
	"Deferred/gbuffer", "ShadowMap/cascades", "ParticleStorm/overdraw",
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Game workload description", Run: runTable1},
		{ID: "table2", Title: "ATTILA/R520 configuration", Run: runTable2},
		{ID: "fig1", Title: "Batches per frame", API: true, APIDemos: PlottedDemos, Run: runFig1},
		{ID: "table3", Title: "Indices per batch and frame, index BW", API: true, APIDemos: apiDemoNames(), Run: runTable3},
		{ID: "fig2", Title: "Index BW per frame", API: true, APIDemos: PlottedDemos, Run: runFig2},
		{ID: "fig3", Title: "Average state calls between batches", API: true, APIDemos: PlottedDemos, Run: runFig3},
		{ID: "table4", Title: "Average vertex shader instructions", API: true, APIDemos: apiDemoNames(), Run: runTable4},
		{ID: "table5", Title: "Primitive utilization", API: true, APIDemos: apiDemoNames(), Run: runTable5},
		{ID: "fig5", Title: "Post-transform vertex cache hit rate", Micro: true, Run: runFig5},
		{ID: "table6", Title: "System bus bandwidths", Run: runTable6},
		{ID: "fig6", Title: "Indices, assembled and traversed triangles", Micro: true, Run: runFig6},
		{ID: "table7", Title: "Clipped, culled and traversed triangles", Micro: true, Run: runTable7},
		{ID: "fig7", Title: "Average triangle size per frame and stage", Micro: true, Run: runFig7},
		{ID: "table8", Title: "Average triangle size (fragments)", Micro: true, Run: runTable8},
		{ID: "table9", Title: "Quads removed or processed per stage", Micro: true, Run: runTable9},
		{ID: "table10", Title: "Quad efficiency", Micro: true, Run: runTable10},
		{ID: "table11", Title: "Average overdraw per pixel and stage", Micro: true, Run: runTable11},
		{ID: "table12", Title: "Fragment program instructions and ALU/TEX ratio", API: true, APIDemos: apiDemoNames(), Run: runTable12},
		{ID: "fig8", Title: "Fragment program instructions per frame", API: true, APIDemos: fig8Demos, Run: runFig8},
		{ID: "table13", Title: "Bilinear samples and ALU-to-bilinear ratio", Micro: true, Run: runTable13},
		{ID: "table14", Title: "Cache configuration and hit rates", Micro: true, Run: runTable14},
		{ID: "table15", Title: "Average memory usage profile", Micro: true, Run: runTable15},
		{ID: "table16", Title: "Memory traffic distribution per GPU stage", Micro: true, Run: runTable16},
		{ID: "table17", Title: "Bytes per vertex and fragment", Micro: true, Run: runTable17},
		{ID: "multipass", Title: "Render-to-texture multi-pass characterization",
			Micro: true, MicroDemos: ModernDemos, Run: runMultipass},
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			exp := e
			return &exp
		}
	}
	return nil
}

func runTable1(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table1", Title: "Game workload description (Table I)",
		Headers: []string{"Game/Timedemo", "#Frames", "Duration@30fps",
			"Texture quality", "Aniso", "Shaders", "API", "Engine", "Release"},
	}
	for _, p := range workloads.Registry() {
		min, sec := p.DurationAt30FPS()
		aniso := "-"
		if p.AnisoLevel > 0 {
			aniso = fmt.Sprintf("%dX", p.AnisoLevel)
		}
		sh := "NO"
		if p.UsesShaders {
			sh = "YES"
		}
		t.AddRow(p.Name, fmt.Sprint(p.Frames), fmt.Sprintf("%d'%02d''", min, sec),
			p.TextureQuality, aniso, sh, p.API.String(), p.Engine, p.Release)
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable2(c *Context) (*Result, error) {
	cfg := c.gpuConfig()
	t := &report.Table{
		ID: "table2", Title: "ATTILA configuration vs R520 (Table II)",
		Headers: []string{"Parameter", "R520", "Simulator"},
	}
	if c.HW != nil && !c.HW.IsDefault() {
		name := c.HW.Name
		if name == "" {
			name = "inline"
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("hardware variant: %s (digest %.12s)", name, c.HW.Digest()))
	}
	t.AddRow("Vertex/Fragment shaders", "8/16", fmt.Sprintf("%d (unified)", cfg.UnifiedShaders))
	t.AddRow("Triangle setup", "2 triangles/cycle", fmt.Sprintf("%d triangles/cycle", cfg.TrianglesPerCycle))
	t.AddRow("Texture rate", "16 bilinears/cycle", fmt.Sprintf("%d bilinears/cycle", cfg.BilinearsPerCycle))
	t.AddRow("ZStencil/Color rates", "16/16 fragments/cycle",
		fmt.Sprintf("%d/%d fragments/cycle", cfg.ZStencilRate, cfg.ColorRate))
	t.AddRow("Memory BW", "> 64 bytes/cycle", fmt.Sprintf("%d bytes/cycle", cfg.MemBytesPerCycle))
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig1(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig1", Title: "Batches per frame", YLabel: "# batches"}
	for _, name := range PlottedDemos {
		r, err := c.API(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		fig.Series = append(fig.Series, r.BatchesSeries())
	}
	return &Result{Figures: []*report.Figure{fig}}, nil
}

func runTable3(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table3", Title: "Average indices per batch and frame, index BW (Table III)",
		Headers: []string{"Game/Timedemo", "idx/batch", "paper", "idx/frame",
			"paper", "B/idx", "BW@100fps MB/s", "paper"},
	}
	for _, p := range workloads.Registry() {
		r, err := c.API(p.Name)
		if err != nil {
			if c.skipDemo(p.Name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperAPI[p.Name]
		t.AddRow(p.Name,
			report.F(r.AvgIndicesPerBatch()), report.F(ref.IdxPerBatch),
			report.F(r.AvgIndicesPerFrame()), report.F(ref.IdxPerFrame),
			fmt.Sprint(p.BytesPerIndex),
			report.F(r.IndexBWAt100FPS()), report.F(ref.IndexBWMBs))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig2(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig2", Title: "Index BW per frame", YLabel: "MB"}
	for _, name := range PlottedDemos {
		r, err := c.API(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		fig.Series = append(fig.Series, r.IndexMBSeries())
	}
	return &Result{Figures: []*report.Figure{fig}}, nil
}

func runFig3(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig3", Title: "Average state calls between batches",
		YLabel: "# state calls (log scale in the paper)"}
	for _, name := range PlottedDemos {
		r, err := c.API(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		fig.Series = append(fig.Series, r.StateCallsSeries())
	}
	return &Result{Figures: []*report.Figure{fig}}, nil
}

func runTable4(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table4", Title: "Average vertex shader instructions (Table IV)",
		Headers: []string{"Game/Timedemo", "VS instr", "paper"},
	}
	for _, p := range workloads.Registry() {
		r, err := c.API(p.Name)
		if err != nil {
			if c.skipDemo(p.Name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperAPI[p.Name]
		if p.VSInstr2 > 0 {
			half := len(r.Frames) / 2
			t.AddRow(p.Name,
				fmt.Sprintf("Reg1: %s / Reg2: %s",
					report.F(r.AvgVSInstr(0, half)), report.F(r.AvgVSInstr(half, 0))),
				fmt.Sprintf("Reg1: %s / Reg2: %s",
					report.F(ref.VSInstr), report.F(ref.VSInstr2)))
			continue
		}
		t.AddRow(p.Name, report.F(r.AvgVSInstr(0, 0)), report.F(ref.VSInstr))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable5(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table5", Title: "Primitive utilization (Table V)",
		Headers: []string{"Game/Timedemo", "TL", "TS", "TF",
			"prims/frame", "paper TL/TS/TF", "paper prims"},
	}
	for _, p := range workloads.Registry() {
		r, err := c.API(p.Name)
		if err != nil {
			if c.skipDemo(p.Name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperAPI[p.Name]
		mix := r.PrimMixPct()
		t.AddRow(p.Name, report.Pct(mix[0]), report.Pct(mix[1]), report.Pct(mix[2]),
			report.F(r.AvgPrimitives()),
			fmt.Sprintf("%.1f/%.1f/%.1f", ref.TLPct, ref.TSPct, ref.TFPct),
			report.F(ref.PrimsPerFrame))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig5(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig5", Title: "Post-transform vertex cache hit rate",
		YLabel: "hit rate (theoretical adjacent-triangle bound 0.667)"}
	t := &report.Table{
		ID: "fig5", Title: "Vertex cache hit rate (Figure 5 summary)",
		Headers: []string{"Game/Timedemo", "hit rate", "paper band"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		fig.Series = append(fig.Series, r.VCacheSeries())
		t.AddRow(name,
			report.FOpt(r.VertexCacheHitRate(), r.Agg.VCache.Accesses() > 0),
			"~0.6-0.8, bound 0.667")
	}
	return &Result{Tables: []*report.Table{t}, Figures: []*report.Figure{fig}}, nil
}

func runTable6(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table6", Title: "Current system bus BWs (Table VI)",
		Headers: []string{"Bus", "Width", "Bus speed", "Bus BW"},
	}
	for _, b := range mem.SystemBuses() {
		t.AddRow(b.Name, fmt.Sprintf("%d bits", b.WidthBits), b.ClockDesc,
			fmt.Sprintf("%.3f GB/s", float64(b.BandwidthBytes)/float64(mem.GB)))
	}
	t.Notes = append(t.Notes,
		"PCI Express uses serial links with a 10 bits/byte encoding")
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig6(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig6",
		Title: "Indices, triangles assembled and traversed", YLabel: "count"}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		idx, asm, trav := r.TriangleFlowSeries()
		fig.Series = append(fig.Series, idx, asm, trav)
	}
	return &Result{Figures: []*report.Figure{fig}}, nil
}

func runTable7(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table7", Title: "Percentage of clipped, culled and traversed triangles (Table VII)",
		Headers: []string{"Game/Timedemo", "% clipped", "% culled", "% traversed", "paper c/c/t"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		clip, cull, trav := r.ClipCullPct()
		t.AddRow(name, report.Pct(clip), report.Pct(cull), report.Pct(trav),
			fmt.Sprintf("%.0f/%.0f/%.0f", ref.ClipPct, ref.CullPct, ref.TravPct))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig7(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig7",
		Title:  "Average triangle size per frame at different stages",
		YLabel: "fragments per triangle"}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		raster, zs, shade := r.TriangleSizeSeries()
		fig.Series = append(fig.Series, raster, zs, shade)
	}
	return &Result{Figures: []*report.Figure{fig}}, nil
}

func runTable8(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table8", Title: "Average triangle size in fragments (Table VIII)",
		Headers: []string{"Game/Timedemo", "Raster", "Z&Stencil", "Shading",
			"Blending", "paper r/z/s/b"},
		Notes: []string{
			"The paper's Tables III, VII, VIII and XI are mutually inconsistent " +
				"under a single definition (overdraw x pixels != triangle size x " +
				"traversed); this reproduction pins Tables III, VII and XI, so " +
				"absolute triangle sizes land at the internally consistent values.",
		},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		a, b, cc, d := r.TriangleSize()
		t.AddRow(name, report.F(a), report.F(b), report.F(cc), report.F(d),
			fmt.Sprintf("%.0f/%.0f/%.0f/%.0f", ref.TriRaster, ref.TriZSt,
				ref.TriShade, ref.TriBlend))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable9(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table9", Title: "Percentage of removed or processed quads per stage (Table IX)",
		Headers: []string{"Game/Timedemo", "HZ", "Z&Stencil", "Alpha",
			"Color Mask", "Blending", "paper"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		hz, zs, alpha, mask, blend := r.QuadKillPct()
		t.AddRow(name, report.Pct(hz), report.Pct(zs), report.Pct(alpha),
			report.Pct(mask), report.Pct(blend),
			fmt.Sprintf("%.1f/%.1f/%.1f/%.1f/%.1f", ref.QHZPct, ref.QZStPct,
				ref.QAlphaPct, ref.QMaskPct, ref.QBlendPct))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable10(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table10", Title: "Quad efficiency: % complete quads (Table X)",
		Headers: []string{"Game/Timedemo", "Raster", "Z&Stencil", "paper r/z"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		raster, zs := r.QuadEfficiency()
		t.AddRow(name, report.Pct(raster), report.Pct(zs),
			fmt.Sprintf("%.1f/%.1f", ref.QuadEffRaster, ref.QuadEffZSt))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable11(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table11", Title: "Average overdraw per pixel and stage (Table XI)",
		Headers: []string{"Game/Timedemo", "Raster", "Z&Stencil", "Shading",
			"Blending", "paper r/z/s/b"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		a, b, cc, d := r.Overdraw()
		t.AddRow(name, report.F(a), report.F(b), report.F(cc), report.F(d),
			fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", ref.ODRaster, ref.ODZSt,
				ref.ODShade, ref.ODBlend))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable12(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table12", Title: "Fragment program instructions and ALU-to-texture ratio (Table XII)",
		Headers: []string{"Game/Timedemo", "Instr", "Tex instr", "ALU/Tex",
			"paper i/t/r"},
	}
	for _, p := range workloads.Registry() {
		r, err := c.API(p.Name)
		if err != nil {
			if c.skipDemo(p.Name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperAPI[p.Name]
		t.AddRow(p.Name, report.F(r.AvgFSInstr()), report.F(r.AvgFSTex()),
			report.F(r.ALUTexRatio()),
			fmt.Sprintf("%.2f/%.2f/%.2f", ref.FSInstr, ref.FSTex, ref.Ratio))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runFig8(c *Context) (*Result, error) {
	fig := &report.Figure{ID: "fig8",
		Title:  "Average fragment program instructions per frame",
		YLabel: "instructions"}
	for _, name := range fig8Demos {
		r, err := c.API(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		fig.Series = append(fig.Series, r.FSInstrSeries(), r.FSTexSeries())
	}
	return &Result{Figures: []*report.Figure{fig}}, nil
}

func runTable13(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table13", Title: "Bilinear samples per request and ALU/bilinear ratio (Table XIII)",
		Headers: []string{"Game/Timedemo", "Bilinear/request", "paper",
			"ALU instr/bilinear", "paper"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		t.AddRow(name,
			report.FOpt(r.BilinearPerRequest(), r.Agg.Tex.Requests > 0),
			report.F(ref.Bilinear),
			report.FOpt(r.ALUPerBilinear(), r.Agg.Tex.BilinearSamples > 0),
			report.F(ref.ALUPerBilinear))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable14(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table14", Title: "Cache configuration and hit rates (Table XIV)",
		Headers: []string{"Game/Timedemo", "Z&Stencil (16KB 64wx256B)",
			"Tex L0 (4KB 64wx64B)", "Tex L1 (16KB 16wx16sx64B)",
			"Color (16KB 64wx256B)", "paper z/L0/color"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		z, l0, l1, color := r.CacheHitRates()
		t.AddRow(name,
			report.PctOpt(z, r.Agg.ZCache.Accesses() > 0),
			report.PctOpt(l0, r.Agg.TexL0.Accesses() > 0),
			report.PctOpt(l1, r.Agg.TexL1.Accesses() > 0),
			report.PctOpt(color, r.Agg.ColorCache.Accesses() > 0),
			fmt.Sprintf("%.1f/%.1f/%.1f", ref.ZCacheHit, ref.TexL0Hit, ref.ColorCacheHit))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable15(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table15", Title: "Average memory usage profile (Table XV)",
		Headers: []string{"Game/Timedemo", "MB/frame", "%Read", "%Write",
			"BW@100fps GB/s", "paper mb/r/w/gbs"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		mb, rd, wr, gbs := r.MemoryProfile()
		t.AddRow(name, report.F(mb), report.Pct(rd), report.Pct(wr), report.F(gbs),
			fmt.Sprintf("%.0f/%.0f/%.0f/%.0f", ref.MBPerFrame, ref.ReadPct,
				ref.WritePct, ref.BWGBs))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable16(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table16", Title: "Memory traffic distribution per GPU stage (Table XVI)",
		Headers: []string{"Game/Timedemo", "Vertex", "Z&Stencil", "Texture",
			"Color", "DAC", "CP", "paper v/z/t/c/d/cp"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		s := r.TrafficSplit()
		t.AddRow(name, report.Pct(s[0]), report.Pct(s[1]), report.Pct(s[2]),
			report.Pct(s[3]), report.Pct(s[4]), report.Pct(s[5]),
			fmt.Sprintf("%.1f/%.1f/%.1f/%.1f/%.1f/%.1f", ref.Split[0], ref.Split[1],
				ref.Split[2], ref.Split[3], ref.Split[4], ref.Split[5]))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runTable17(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "table17", Title: "Bytes per vertex and fragment (Table XVII)",
		Headers: []string{"Game/Timedemo", "Vertex", "Z&Stencil", "Shaded",
			"Color", "paper v/z/s/c"},
	}
	for _, name := range SimDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		ref := PaperMicro[name]
		v, zs, sh, col := r.BytesPer()
		t.AddRow(name, report.F(v), report.F(zs), report.F(sh), report.F(col),
			fmt.Sprintf("%.2f/%.2f/%.2f/%.2f", ref.BVertex, ref.BZSt,
				ref.BShade, ref.BColor))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}

func runMultipass(c *Context) (*Result, error) {
	t := &report.Table{
		ID: "multipass", Title: "Render-to-texture multi-pass characterization",
		Headers: []string{"Demo", "Family", "Passes", "Targets",
			"Off-screen frags/frame", "Off-screen z-tests/frame", "Overdraw (blend)"},
		Notes: []string{
			"Off-screen columns sum the per-pass (pass=<target>) counter " +
				"snapshots; the backbuffer keeps its own counters, so the " +
				"Table I demos are untouched by this instrumentation.",
		},
	}
	for _, name := range ModernDemos {
		r, err := c.Micro(name)
		if err != nil {
			if c.skipDemo(name, err) {
				continue
			}
			return nil, err
		}
		var frags, ztests int64
		for _, s := range r.Pass {
			if v, ok := s.Get("rop/fragments"); ok {
				frags += v
			}
			if v, ok := s.Get("zst/fragments_in"); ok {
				ztests += v
			}
		}
		n := r.nframes()
		if n == 0 {
			n = 1
		}
		_, _, _, blend := r.Overdraw()
		t.AddRow(name, r.Prof.Family(),
			fmt.Sprint(r.Prof.PassCount()), fmt.Sprint(len(r.Pass)),
			report.F(float64(frags)/n), report.F(float64(ztests)/n),
			report.F(blend))
	}
	return &Result{Tables: []*report.Table{t}}, nil
}
