package core

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"testing"

	"gpuchar/internal/cache"
	"gpuchar/internal/gfxapi"
	"gpuchar/internal/gpu"
	"gpuchar/internal/mem"
	"gpuchar/internal/workloads"
)

// runGPUWorkers renders a demo through the simulator with the given
// tile-worker count and returns the GPU (framebuffer + stats intact).
func runGPUWorkers(t *testing.T, demo string, tileWorkers, frames, w, h int) *gpu.GPU {
	t.Helper()
	prof := workloads.ByName(demo)
	if prof == nil {
		t.Fatalf("unknown demo %q", demo)
	}
	cfg := gpu.R520Config(w, h)
	cfg.TileWorkers = tileWorkers
	g := gpu.New(cfg)
	dev := gfxapi.NewDevice(prof.API, g)
	wl := workloads.New(prof, dev, w, h)
	if err := wl.Run(frames); err != nil {
		t.Fatal(err)
	}
	return g
}

// exactStats zeroes the counters that are legitimately sharded in the
// parallel backend (cache hit/miss and memory traffic depend on the
// per-worker access interleaving) and keeps everything the tile
// ownership argument proves exact: fragment/quad flows, kill counts,
// shader work, texture sampling work.
func exactStats(f gpu.FrameStats) gpu.FrameStats {
	f.ZCache = cache.Stats{}
	f.TexL0 = cache.Stats{}
	f.TexL1 = cache.Stats{}
	f.ColorCache = cache.Stats{}
	f.Mem = [mem.NumClients]mem.Traffic{}
	return f
}

// TestTileParallelDeterminism checks the tentpole guarantee: the same
// workload produces a byte-identical framebuffer and identical
// order-dependent statistics at 1, 4 and NumCPU tile workers, because
// every 8x8 framebuffer block is owned by exactly one worker and quads
// are processed in submission order within a block. Doom3 is the
// stress case: stencil shadow volumes make z/stencil order-sensitive.
func TestTileParallelDeterminism(t *testing.T) {
	const demo, frames, w, h = "Doom3/trdemo2", 2, 128, 96
	ref := runGPUWorkers(t, demo, 1, frames, w, h)
	refImg := ref.Target().Image().Pix
	counts := []int{4, runtime.NumCPU()}
	if runtime.NumCPU() < 2 {
		counts = []int{4, 3}
	}
	for _, n := range counts {
		g := runGPUWorkers(t, demo, n, frames, w, h)
		if img := g.Target().Image().Pix; !bytes.Equal(img, refImg) {
			t.Errorf("workers=%d: framebuffer differs from serial render", n)
		}
		if len(g.Frames()) != len(ref.Frames()) {
			t.Fatalf("workers=%d: %d frames, want %d", n, len(g.Frames()), len(ref.Frames()))
		}
		for i := range ref.Frames() {
			got, want := exactStats(g.Frames()[i]), exactStats(ref.Frames()[i])
			if !reflect.DeepEqual(got, want) {
				t.Errorf("workers=%d frame %d: order-exact stats differ:\ngot  %+v\nwant %+v",
					n, i, got, want)
			}
		}
	}
}

// TestTileParallelRepeatable checks that for a fixed worker count the
// run is fully deterministic — including the sharded cache and memory
// counters, since each shard sees its own quads in submission order.
func TestTileParallelRepeatable(t *testing.T) {
	const demo, frames, w, h = "Quake4/demo4", 1, 128, 96
	a := runGPUWorkers(t, demo, 4, frames, w, h)
	b := runGPUWorkers(t, demo, 4, frames, w, h)
	if !reflect.DeepEqual(a.Frames(), b.Frames()) {
		t.Error("two identical workers=4 runs produced different statistics")
	}
	if !bytes.Equal(a.Target().Image().Pix, b.Target().Image().Pix) {
		t.Error("two identical workers=4 runs produced different framebuffers")
	}
}

// TestTileParallelRace is the race-detector workout: a short demo at a
// high worker count, so `go test -race` sweeps the binning, shard and
// merge paths. The assertions are minimal on purpose.
func TestTileParallelRace(t *testing.T) {
	g := runGPUWorkers(t, "Doom3/trdemo2", 8, 1, 64, 48)
	if len(g.Frames()) != 1 {
		t.Fatalf("got %d frames, want 1", len(g.Frames()))
	}
}

// TestShardedCacheRatesStayInBand checks the documented merge property
// of the sharded counters: per-worker caches shift hit rates versus the
// single serial cache, but the merged rates must stay close — the
// Table XIV comparisons remain meaningful at any worker count.
func TestShardedCacheRatesStayInBand(t *testing.T) {
	const demo, frames, w, h = "UT2004/Primeval", 1, 128, 96
	rate := func(s cache.Stats) float64 { return s.HitRate() }
	ref := runGPUWorkers(t, demo, 1, frames, w, h)
	par := runGPUWorkers(t, demo, 4, frames, w, h)
	var refAgg, parAgg gpu.FrameStats
	for _, f := range ref.Frames() {
		refAgg.Accumulate(f)
	}
	for _, f := range par.Frames() {
		parAgg.Accumulate(f)
	}
	checks := []struct {
		name     string
		ref, par cache.Stats
	}{
		{"zcache", refAgg.ZCache, parAgg.ZCache},
		{"texL0", refAgg.TexL0, parAgg.TexL0},
		{"texL1", refAgg.TexL1, parAgg.TexL1},
		{"colorcache", refAgg.ColorCache, parAgg.ColorCache},
	}
	for _, c := range checks {
		dr, dp := rate(c.ref), rate(c.par)
		if math.Abs(dr-dp) > 0.15 {
			t.Errorf("%s: sharded hit rate %.3f vs serial %.3f (band ±0.15)", c.name, dp, dr)
		}
	}
}

// TestExperimentFanOutDeterminism checks the coarse level: the same
// experiments produce byte-identical tables with the demo renders
// fanned over a worker pool, because experiments consume the cached
// per-demo results in paper order.
func TestExperimentFanOutDeterminism(t *testing.T) {
	ids := []string{"table3", "table9", "table14"}
	render := func(workers int) string {
		ctx := NewContext()
		ctx.APIFrames = 10
		ctx.SimFrames = 1
		ctx.W, ctx.H = 96, 64
		ctx.Workers = workers
		results, err := RunExperiments(ctx, ids)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, res := range results {
			for _, tab := range res.Tables {
				tab.Render(&buf)
			}
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Error("workers=4 experiment output differs from workers=1")
	}
	if serial == "" {
		t.Error("experiments rendered no tables")
	}
}
