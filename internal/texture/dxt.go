package texture

// S3TC (DXT1/3/5) block codec. The paper's benchmarks store most texture
// data DXT-compressed, which together with the texture cache reduces
// texture bandwidth "almost to a tenth" (paper §III.E); the codec here
// provides the real storage layout so that compressed-space addressing
// and traffic accounting are exact, and encode/decode are implemented in
// full so textures with real data round-trip.

// RGBA is one 8-bit-per-channel texel.
type RGBA struct{ R, G, B, A uint8 }

// pack565 converts an RGBA color to RGB565.
func pack565(c RGBA) uint16 {
	return uint16(c.R>>3)<<11 | uint16(c.G>>2)<<5 | uint16(c.B>>3)
}

// unpack565 expands an RGB565 color to RGBA with full alpha.
func unpack565(v uint16) RGBA {
	r := uint8(v >> 11 & 0x1F)
	g := uint8(v >> 5 & 0x3F)
	b := uint8(v & 0x1F)
	// Standard bit replication.
	return RGBA{
		R: r<<3 | r>>2,
		G: g<<2 | g>>4,
		B: b<<3 | b>>2,
		A: 255,
	}
}

func lerpU8(a, b uint8, num, den int) uint8 {
	return uint8((int(a)*(den-num) + int(b)*num) / den)
}

// EncodeDXT1Block compresses a 4x4 texel block (row-major, 16 texels)
// into 8 bytes. The encoder picks the min/max luminance colors as
// endpoints — not optimal but standard-layout and deterministic.
// Alpha is ignored (DXT1 opaque mode: c0 > c1).
func EncodeDXT1Block(texels *[16]RGBA, out *[8]byte) {
	c0, c1 := blockEndpoints(texels)
	p0, p1 := pack565(c0), pack565(c1)
	if p0 < p1 {
		p0, p1 = p1, p0
		c0, c1 = c1, c0
	}
	if p0 == p1 {
		// Degenerate single-color block: all indices 0.
		out[0], out[1] = byte(p0), byte(p0>>8)
		out[2], out[3] = byte(p1), byte(p1>>8)
		out[4], out[5], out[6], out[7] = 0, 0, 0, 0
		return
	}
	palette := dxt1Palette(p0, p1)
	var bits uint32
	for i := 15; i >= 0; i-- {
		bits = bits<<2 | uint32(nearestIndex(texels[i], &palette))
	}
	out[0], out[1] = byte(p0), byte(p0>>8)
	out[2], out[3] = byte(p1), byte(p1>>8)
	out[4], out[5] = byte(bits), byte(bits>>8)
	out[6], out[7] = byte(bits>>16), byte(bits>>24)
}

// DecodeDXT1Block expands an 8-byte DXT1 block into 16 texels.
func DecodeDXT1Block(block []byte, texels *[16]RGBA) {
	p0 := uint16(block[0]) | uint16(block[1])<<8
	p1 := uint16(block[2]) | uint16(block[3])<<8
	palette := dxt1Palette(p0, p1)
	bits := uint32(block[4]) | uint32(block[5])<<8 |
		uint32(block[6])<<16 | uint32(block[7])<<24
	for i := 0; i < 16; i++ {
		texels[i] = palette[bits>>(2*i)&3]
	}
}

// dxt1Palette builds the 4-color palette for a DXT1 block. When
// p0 > p1 the two interpolants are 1/3 and 2/3 blends; otherwise the
// punch-through mode provides a midpoint and transparent black.
func dxt1Palette(p0, p1 uint16) [4]RGBA {
	c0, c1 := unpack565(p0), unpack565(p1)
	var pal [4]RGBA
	pal[0], pal[1] = c0, c1
	if p0 > p1 {
		pal[2] = RGBA{
			lerpU8(c0.R, c1.R, 1, 3), lerpU8(c0.G, c1.G, 1, 3),
			lerpU8(c0.B, c1.B, 1, 3), 255,
		}
		pal[3] = RGBA{
			lerpU8(c0.R, c1.R, 2, 3), lerpU8(c0.G, c1.G, 2, 3),
			lerpU8(c0.B, c1.B, 2, 3), 255,
		}
	} else {
		pal[2] = RGBA{
			lerpU8(c0.R, c1.R, 1, 2), lerpU8(c0.G, c1.G, 1, 2),
			lerpU8(c0.B, c1.B, 1, 2), 255,
		}
		pal[3] = RGBA{} // transparent black
	}
	return pal
}

func blockEndpoints(texels *[16]RGBA) (lo, hi RGBA) {
	lum := func(c RGBA) int { return 2*int(c.R) + 5*int(c.G) + int(c.B) }
	lo, hi = texels[0], texels[0]
	loL, hiL := lum(lo), lum(hi)
	for _, t := range texels[1:] {
		l := lum(t)
		if l < loL {
			lo, loL = t, l
		}
		if l > hiL {
			hi, hiL = t, l
		}
	}
	return hi, lo // c0 = brighter endpoint by convention
}

func nearestIndex(c RGBA, pal *[4]RGBA) int {
	best, bestD := 0, 1<<30
	for i, p := range pal {
		dr, dg, db := int(c.R)-int(p.R), int(c.G)-int(p.G), int(c.B)-int(p.B)
		d := dr*dr + dg*dg + db*db
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// EncodeDXT3Block compresses a 4x4 block into 16 bytes: 8 bytes of
// explicit 4-bit alpha followed by a DXT1 color block.
func EncodeDXT3Block(texels *[16]RGBA, out *[16]byte) {
	for i := 0; i < 8; i++ {
		a0 := texels[2*i].A >> 4
		a1 := texels[2*i+1].A >> 4
		out[i] = a0 | a1<<4
	}
	var color [8]byte
	EncodeDXT1Block(texels, &color)
	copy(out[8:], color[:])
}

// DecodeDXT3Block expands a 16-byte DXT3 block.
func DecodeDXT3Block(block []byte, texels *[16]RGBA) {
	DecodeDXT1Block(block[8:16], texels)
	for i := 0; i < 8; i++ {
		a0 := block[i] & 0xF
		a1 := block[i] >> 4
		texels[2*i].A = a0<<4 | a0
		texels[2*i+1].A = a1<<4 | a1
	}
}

// EncodeDXT5Block compresses a 4x4 block into 16 bytes: two alpha
// endpoints with 3-bit interpolation indices, then a DXT1 color block.
func EncodeDXT5Block(texels *[16]RGBA, out *[16]byte) {
	aLo, aHi := texels[0].A, texels[0].A
	for _, t := range texels[1:] {
		if t.A < aLo {
			aLo = t.A
		}
		if t.A > aHi {
			aHi = t.A
		}
	}
	// Use the 8-value mode (a0 > a1); degenerate blocks keep a0 == a1.
	a0, a1 := aHi, aLo
	out[0], out[1] = a0, a1
	pal := dxt5AlphaPalette(a0, a1)
	var bits uint64
	for i := 15; i >= 0; i-- {
		bits = bits<<3 | uint64(nearestAlpha(texels[i].A, &pal))
	}
	for i := 0; i < 6; i++ {
		out[2+i] = byte(bits >> (8 * i))
	}
	var color [8]byte
	EncodeDXT1Block(texels, &color)
	copy(out[8:], color[:])
}

// DecodeDXT5Block expands a 16-byte DXT5 block.
func DecodeDXT5Block(block []byte, texels *[16]RGBA) {
	DecodeDXT1Block(block[8:16], texels)
	pal := dxt5AlphaPalette(block[0], block[1])
	var bits uint64
	for i := 0; i < 6; i++ {
		bits |= uint64(block[2+i]) << (8 * i)
	}
	for i := 0; i < 16; i++ {
		texels[i].A = pal[bits>>(3*i)&7]
	}
}

func dxt5AlphaPalette(a0, a1 uint8) [8]uint8 {
	var pal [8]uint8
	pal[0], pal[1] = a0, a1
	if a0 > a1 {
		for i := 1; i <= 6; i++ {
			pal[1+i] = lerpU8(a0, a1, i, 7)
		}
	} else {
		for i := 1; i <= 4; i++ {
			pal[1+i] = lerpU8(a0, a1, i, 5)
		}
		pal[6], pal[7] = 0, 255
	}
	return pal
}

func nearestAlpha(a uint8, pal *[8]uint8) int {
	best, bestD := 0, 1<<30
	for i, p := range pal {
		d := int(a) - int(p)
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
